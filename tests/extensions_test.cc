// Tests for the paper's proposed extensions: the eject operation in the
// analytic model, the bounded free-memory-pool (LRU replica eviction),
// and the sensitivity analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "analytic/closed_form.h"
#include "analytic/sensitivity.h"
#include "analytic/solver.h"
#include "dsm/memory_pool.h"
#include "support/rng.h"
#include "workload/spec.h"

namespace drsm {
namespace {

using protocols::ProtocolKind;
namespace cf = analytic::closed_form;

sim::SystemConfig make_config(std::size_t n, double s, double p) {
  sim::SystemConfig config;
  config.num_clients = n;
  config.costs.s = s;
  config.costs.p = p;
  return config;
}

// ---------------------------------------------------------------------------
// Eject extension in the analytic model.
// ---------------------------------------------------------------------------

TEST(EjectExtension, ChainMatchesDerivedClosedForm) {
  const std::size_t n = 5, a = 2;
  const double s = 100.0, p_cost = 30.0;
  analytic::AccSolver solver(make_config(n, s, p_cost));
  for (double p : {0.0, 0.1, 0.4}) {
    for (double sigma : {0.0, 0.05, 0.1}) {
      for (double e : {0.0, 0.05, 0.2}) {
        if (p + a * sigma + e > 1.0) continue;
        const auto spec =
            workload::read_disturbance_with_eject(p, sigma, a, e);
        EXPECT_NEAR(solver.acc(ProtocolKind::kWriteThrough, spec),
                    cf::wt_read_disturbance_with_eject(p, sigma, a, e, n, s,
                                                       p_cost),
                    1e-9)
            << "p=" << p << " sigma=" << sigma << " e=" << e;
      }
    }
  }
}

TEST(EjectExtension, ZeroEjectReducesToPlainReadDisturbance) {
  const std::size_t n = 5, a = 2;
  analytic::AccSolver solver(make_config(n, 100.0, 30.0));
  for (ProtocolKind kind :
       {ProtocolKind::kWriteThrough, ProtocolKind::kWriteThroughV}) {
    const double with_eject = solver.acc(
        kind, workload::read_disturbance_with_eject(0.3, 0.1, a, 0.0));
    const double plain =
        solver.acc(kind, workload::read_disturbance(0.3, 0.1, a));
    EXPECT_NEAR(with_eject, plain, 1e-9) << protocols::to_string(kind);
  }
}

TEST(EjectExtension, EjectingMonotonicallyIncreasesCost) {
  analytic::AccSolver solver(make_config(5, 100.0, 30.0));
  double prev = -1.0;
  for (double e : {0.0, 0.1, 0.2, 0.3}) {
    const double acc = solver.acc(
        ProtocolKind::kWriteThroughV,
        workload::read_disturbance_with_eject(0.2, 0.1, 2, e));
    EXPECT_GT(acc, prev);
    prev = acc;
  }
}

TEST(EjectExtension, UnsupportedProtocolsAreRejected) {
  analytic::AccSolver solver(make_config(4, 100.0, 30.0));
  const auto spec = workload::read_disturbance_with_eject(0.2, 0.1, 1, 0.1);
  EXPECT_THROW(solver.acc(ProtocolKind::kDragon, spec), Error);
  EXPECT_THROW(solver.acc(ProtocolKind::kBerkeley, spec), Error);
}

// ---------------------------------------------------------------------------
// Bounded free memory pool.
// ---------------------------------------------------------------------------

dsm::CapacityManagedMemory::Options pool_options(std::size_t capacity,
                                                 std::size_t objects) {
  dsm::CapacityManagedMemory::Options options;
  options.memory.protocol = ProtocolKind::kWriteThroughV;
  options.memory.num_clients = 2;
  options.memory.num_objects = objects;
  options.memory.costs.s = 100.0;
  options.memory.costs.p = 30.0;
  options.replicas_per_client = capacity;
  return options;
}

TEST(MemoryPool, EnforcesCapacityWithLruEviction) {
  dsm::CapacityManagedMemory memory(pool_options(2, 4));
  memory.write(0, 0, 1);
  memory.write(0, 1, 2);
  EXPECT_EQ(memory.resident(0), 2u);
  // Touching a third object evicts the LRU one (object 0).
  memory.write(0, 2, 3);
  EXPECT_EQ(memory.resident(0), 2u);
  EXPECT_EQ(memory.evictions(0), 1u);
  EXPECT_STREQ(memory.memory().state_name(0, 0), "INVALID");
  EXPECT_STREQ(memory.memory().state_name(0, 1), "VALID");
  EXPECT_STREQ(memory.memory().state_name(0, 2), "VALID");
  // Recency matters: touch 1, then add 3 -> 2 is the victim.
  memory.read(0, 1);
  memory.write(0, 3, 4);
  EXPECT_STREQ(memory.memory().state_name(0, 2), "INVALID");
  EXPECT_STREQ(memory.memory().state_name(0, 1), "VALID");
}

TEST(MemoryPool, ValuesStayCorrectUnderEviction) {
  dsm::CapacityManagedMemory memory(pool_options(1, 6));
  Rng rng(33);
  std::vector<std::uint64_t> truth(6, 0);
  std::uint64_t value = 0;
  for (int i = 0; i < 3000; ++i) {
    const NodeId node = static_cast<NodeId>(rng.uniform_index(2));
    const ObjectId object = static_cast<ObjectId>(rng.uniform_index(6));
    if (rng.bernoulli(0.5)) {
      memory.write(node, object, ++value);
      truth[object] = value;
    } else if (truth[object] != 0) {
      ASSERT_EQ(memory.read(node, object), truth[object]) << "step " << i;
    }
  }
  EXPECT_GT(memory.total_evictions(), 0u);
}

TEST(MemoryPool, SmallerPoolsCostMore) {
  const auto run = [](std::size_t capacity) {
    dsm::CapacityManagedMemory memory(pool_options(capacity, 8));
    Rng rng(44);
    std::uint64_t value = 0;
    for (int i = 0; i < 4000; ++i) {
      const NodeId node = static_cast<NodeId>(rng.uniform_index(2));
      const ObjectId object = static_cast<ObjectId>(rng.uniform_index(8));
      if (rng.bernoulli(0.2))
        memory.write(node, object, ++value);
      else
        memory.read(node, object);
    }
    return memory.memory().average_cost();
  };
  const double unbounded = run(0);
  const double four = run(4);
  const double one = run(1);
  EXPECT_LT(unbounded, four);
  EXPECT_LT(four, one);
}

TEST(MemoryPool, RejectsProtocolsWithoutEject) {
  auto options = pool_options(2, 4);
  options.memory.protocol = ProtocolKind::kBerkeley;
  EXPECT_THROW(dsm::CapacityManagedMemory memory(options), Error);
}

// ---------------------------------------------------------------------------
// Sensitivity analysis.
// ---------------------------------------------------------------------------

TEST(Sensitivity, MatchesAnalyticDerivativesForWriteThrough) {
  // For WT under read disturbance, acc is affine in S with slope pi2
  // and affine in P with slope p (eqn 3), giving exact expectations.
  const std::size_t n = 6, a = 2;
  const double s = 100.0, p_cost = 30.0;
  const double p = 0.3, sigma = 0.1;
  analytic::OperatingPoint point{analytic::Deviation::kReadDisturbance, p,
                                 sigma, a};
  const auto sens = analytic::acc_sensitivity(
      ProtocolKind::kWriteThrough, make_config(n, s, p_cost), point);

  const auto pi = cf::wt_trace_probabilities_read_disturbance(p, sigma, a);
  EXPECT_NEAR(sens.wrt_s, pi.pi2, 1e-6);
  EXPECT_NEAR(sens.wrt_p_cost, p, 1e-6);

  // d acc / d p via the closed form, central difference with the same step.
  const double h = 1e-4;
  const double expected_dp =
      (cf::wt_read_disturbance(p + h, sigma, a, n, s, p_cost) -
       cf::wt_read_disturbance(p - h, sigma, a, n, s, p_cost)) /
      (2 * h);
  EXPECT_NEAR(sens.wrt_p, expected_dp, 1e-4);
}

TEST(Sensitivity, UpdateProtocolsIgnoreSAndDisturbance) {
  analytic::OperatingPoint point{analytic::Deviation::kReadDisturbance, 0.3,
                                 0.1, 2};
  const auto sens = analytic::acc_sensitivity(
      ProtocolKind::kDragon, make_config(6, 100.0, 30.0), point);
  EXPECT_NEAR(sens.wrt_s, 0.0, 1e-9);
  EXPECT_NEAR(sens.wrt_disturbance, 0.0, 1e-9);
  EXPECT_NEAR(sens.wrt_p, 6 * 31.0, 1e-6);   // acc = p*N*(P+1)
  EXPECT_NEAR(sens.wrt_p_cost, 0.3 * 6, 1e-6);
}

TEST(Sensitivity, ElasticityIsZeroWhereAccVanishes) {
  analytic::OperatingPoint point{analytic::Deviation::kReadDisturbance, 0.3,
                                 0.0, 0};
  const auto el = analytic::acc_elasticity(
      ProtocolKind::kBerkeley, make_config(5, 100.0, 30.0), point);
  EXPECT_DOUBLE_EQ(el.wrt_p, 0.0);
  EXPECT_DOUBLE_EQ(el.wrt_s, 0.0);
}

TEST(Sensitivity, BoundaryOperatingPointsUseOneSidedDifferences) {
  // p at the simplex edge: p + a*sigma = 1.
  analytic::OperatingPoint point{analytic::Deviation::kReadDisturbance, 0.8,
                                 0.1, 2};
  const auto sens = analytic::acc_sensitivity(
      ProtocolKind::kWriteThrough, make_config(5, 100.0, 30.0), point);
  EXPECT_TRUE(std::isfinite(sens.wrt_p));
  EXPECT_TRUE(std::isfinite(sens.wrt_disturbance));
}

}  // namespace
}  // namespace drsm
