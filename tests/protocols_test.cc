// Per-protocol trace-cost tests: each protocol's characteristic operation
// sequences must incur exactly the message costs derived in DESIGN.md
// (Write-Through's are the paper's Section 4.1 traces tr1-tr6), plus a
// randomized sequential-consistency property over all eight protocols.
#include <gtest/gtest.h>

#include "protocols/protocol.h"
#include "sim/sequential.h"
#include "support/rng.h"

namespace drsm {
namespace {

using fsm::OpKind;
using protocols::ProtocolKind;
using sim::SequentialRuntime;

constexpr std::size_t kN = 4;     // clients
constexpr double kS = 100.0;
constexpr double kP = 30.0;
constexpr NodeId kHome = kN;

SequentialRuntime make_runtime(ProtocolKind kind) {
  sim::SystemConfig config;
  config.num_clients = kN;
  config.costs.s = kS;
  config.costs.p = kP;
  return SequentialRuntime(kind, config, {0, 1, 2});
}

double cost(SequentialRuntime& rt, NodeId node, OpKind op,
            std::uint64_t value = 0) {
  static std::uint64_t counter = 1000;
  if (op == OpKind::kWrite && value == 0) value = ++counter;
  return rt.execute(node, op, value).cost;
}

// ---------------------------------------------------------------------------
// Write-Through: the paper's six traces.
// ---------------------------------------------------------------------------

TEST(WriteThrough, PaperTraceCosts) {
  auto rt = make_runtime(ProtocolKind::kWriteThrough);
  // tr2: client read on INVALID copy = S+2.
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kRead), kS + 2);
  EXPECT_STREQ(rt.state_name(0), "VALID");
  // tr1: read on VALID copy is free.
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kRead), 0.0);
  // tr3: write on VALID copy = P+N, copy becomes INVALID.
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kWrite), kP + kN);
  EXPECT_STREQ(rt.state_name(0), "INVALID");
  // tr4: write on INVALID copy = P+N too.
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kWrite), kP + kN);
  // tr5: sequencer read is local.
  EXPECT_DOUBLE_EQ(cost(rt, kHome, OpKind::kRead), 0.0);
  // tr6: sequencer write invalidates all N clients.
  EXPECT_DOUBLE_EQ(cost(rt, kHome, OpKind::kWrite), kN);
}

TEST(WriteThrough, WriteInvalidatesEveryOtherClient) {
  auto rt = make_runtime(ProtocolKind::kWriteThrough);
  cost(rt, 1, OpKind::kRead);
  cost(rt, 2, OpKind::kRead);
  EXPECT_STREQ(rt.state_name(1), "VALID");
  cost(rt, 0, OpKind::kWrite);
  EXPECT_STREQ(rt.state_name(1), "INVALID");
  EXPECT_STREQ(rt.state_name(2), "INVALID");
  // Both re-reads miss.
  EXPECT_DOUBLE_EQ(cost(rt, 1, OpKind::kRead), kS + 2);
  EXPECT_DOUBLE_EQ(cost(rt, 2, OpKind::kRead), kS + 2);
}

TEST(WriteThrough, EjectAndSyncExtensions) {
  auto rt = make_runtime(ProtocolKind::kWriteThrough);
  cost(rt, 0, OpKind::kRead);
  EXPECT_STREQ(rt.state_name(0), "VALID");
  // Eject is a local action: free, copy INVALID, next read misses.
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kEject), 0.0);
  EXPECT_STREQ(rt.state_name(0), "INVALID");
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kRead), kS + 2);
  // Sync is a token round trip through the sequencer.
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kSync), 2.0);
}

// ---------------------------------------------------------------------------
// Write-Through-V: two-phase write, writer's copy stays VALID.
// ---------------------------------------------------------------------------

TEST(WriteThroughV, TraceCosts) {
  auto rt = make_runtime(ProtocolKind::kWriteThroughV);
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kRead), kS + 2);
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kWrite), kP + kN + 2);
  EXPECT_STREQ(rt.state_name(0), "VALID");
  // Read after own write is free — the defining difference from WT.
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kRead), 0.0);
  // Other clients were invalidated.
  EXPECT_DOUBLE_EQ(cost(rt, 1, OpKind::kRead), kS + 2);
  EXPECT_DOUBLE_EQ(cost(rt, kHome, OpKind::kWrite), kN);
}

// ---------------------------------------------------------------------------
// Write-Once.
// ---------------------------------------------------------------------------

TEST(WriteOnce, WriteOnceThenLocal) {
  auto rt = make_runtime(ProtocolKind::kWriteOnce);
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kRead), kS + 2);
  // First write: write-through, P+N+1 (params + N-1 invalidations + ack),
  // copy RESERVED.
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kWrite), kP + kN + 1);
  EXPECT_STREQ(rt.state_name(0), "RESERVED");
  // Second write: local, copy DIRTY.
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kWrite), 0.0);
  EXPECT_STREQ(rt.state_name(0), "DIRTY");
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kWrite), 0.0);
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kRead), 0.0);
}

TEST(WriteOnce, RecallCosts) {
  auto rt = make_runtime(ProtocolKind::kWriteOnce);
  cost(rt, 0, OpKind::kRead);
  cost(rt, 0, OpKind::kWrite);  // RESERVED
  // Read while the owner is RESERVED: recall answered with a clean token.
  EXPECT_DOUBLE_EQ(cost(rt, 1, OpKind::kRead), kS + 4);
  EXPECT_STREQ(rt.state_name(0), "VALID");

  cost(rt, 0, OpKind::kWrite);            // write-through again -> RESERVED
  cost(rt, 0, OpKind::kWrite);            // silent RESERVED -> DIRTY
  // Read while the owner is DIRTY: recall flushes the data.
  EXPECT_DOUBLE_EQ(cost(rt, 2, OpKind::kRead), 2 * kS + 4);
  EXPECT_STREQ(rt.state_name(0), "VALID");
}

TEST(WriteOnce, WriteMissCosts) {
  auto rt = make_runtime(ProtocolKind::kWriteOnce);
  // Write miss with no owner: exclusive fetch.
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kWrite), kS + kN + 1);
  EXPECT_STREQ(rt.state_name(0), "DIRTY");
  // Write miss while another client is DIRTY.
  EXPECT_DOUBLE_EQ(cost(rt, 1, OpKind::kWrite), 2 * kS + kN + 3);
  EXPECT_STREQ(rt.state_name(0), "INVALID");
  EXPECT_STREQ(rt.state_name(1), "DIRTY");
  // Sequencer write recalls the dirty copy then invalidates everyone.
  EXPECT_DOUBLE_EQ(cost(rt, kHome, OpKind::kWrite), kS + kN + 2);
  // No owner anymore: plain invalidation broadcast.
  EXPECT_DOUBLE_EQ(cost(rt, kHome, OpKind::kWrite), kN);
}

// ---------------------------------------------------------------------------
// Synapse: flush + NACK + retry on dirty misses.
// ---------------------------------------------------------------------------

TEST(Synapse, TraceCosts) {
  auto rt = make_runtime(ProtocolKind::kSynapse);
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kRead), kS + 2);
  // Write on VALID: full exclusive acquisition (no invalidate-only path).
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kWrite), kS + kN + 1);
  EXPECT_STREQ(rt.state_name(0), "DIRTY");
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kWrite), 0.0);
  // Dirty read by another client: flush + NACK + retry = 2S+6.
  EXPECT_DOUBLE_EQ(cost(rt, 1, OpKind::kRead), 2 * kS + 6);
  EXPECT_STREQ(rt.state_name(0), "INVALID");  // Synapse owner invalidates
  EXPECT_STREQ(rt.state_name(1), "VALID");
  // Write while another client is dirty: 2S+N+5.
  cost(rt, 1, OpKind::kWrite);  // client 1 -> DIRTY (S+N+1)
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kWrite), 2 * kS + kN + 5);
}

// ---------------------------------------------------------------------------
// Illinois: dirty misses served in one forwarded round; invalidate-only
// write upgrades.
// ---------------------------------------------------------------------------

TEST(Illinois, TraceCosts) {
  auto rt = make_runtime(ProtocolKind::kIllinois);
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kRead), kS + 2);
  // Upgrade in place: bare-token grant.
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kWrite), kN + 1);
  EXPECT_STREQ(rt.state_name(0), "DIRTY");
  // Dirty read: recall keeps the old owner's copy VALID; no retry round.
  EXPECT_DOUBLE_EQ(cost(rt, 1, OpKind::kRead), 2 * kS + 4);
  EXPECT_STREQ(rt.state_name(0), "VALID");
  // Write from VALID again: N+1.
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kWrite), kN + 1);
  // Write miss while dirty elsewhere: 2S+N+3.
  EXPECT_DOUBLE_EQ(cost(rt, 1, OpKind::kWrite), 2 * kS + kN + 3);
  // Write miss with no dirty copy: S+N+1.
  cost(rt, 2, OpKind::kRead);   // 2S+4: flush client 1
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kWrite), kS + kN + 1);
}

// ---------------------------------------------------------------------------
// Berkeley: ownership (and the sequencer role) migrate to the writer.
// ---------------------------------------------------------------------------

TEST(Berkeley, OwnershipMigration) {
  auto rt = make_runtime(ProtocolKind::kBerkeley);
  // Home starts as the DIRTY owner.
  EXPECT_STREQ(rt.state_name(kHome), "DIRTY");
  // Read miss: fetch from the owner, owner -> SHARED-DIRTY.
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kRead), kS + 2);
  EXPECT_STREQ(rt.state_name(kHome), "SHARED-DIRTY");
  // Write from a VALID copy: bare ownership transfer + broadcast = N+2.
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kWrite), kN + 2);
  EXPECT_STREQ(rt.state_name(0), "DIRTY");
  EXPECT_STREQ(rt.state_name(kHome), "INVALID");
  // Owner writes in DIRTY: free.
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kWrite), 0.0);
  // Another client reads from the *new* owner: S+2.
  EXPECT_DOUBLE_EQ(cost(rt, 1, OpKind::kRead), kS + 2);
  EXPECT_STREQ(rt.state_name(0), "SHARED-DIRTY");
  // Owner re-sharpens exclusivity: invalidation broadcast costs N.
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kWrite), kN);
  EXPECT_STREQ(rt.state_name(0), "DIRTY");
  // Write miss elsewhere: data + ownership transfer = S+N+2.
  EXPECT_DOUBLE_EQ(cost(rt, 2, OpKind::kWrite), kS + kN + 2);
  EXPECT_STREQ(rt.state_name(2), "DIRTY");
  EXPECT_STREQ(rt.state_name(0), "INVALID");
}

// ---------------------------------------------------------------------------
// Dragon / Firefly: write-update broadcasts.
// ---------------------------------------------------------------------------

TEST(Dragon, UpdateBroadcastCosts) {
  auto rt = make_runtime(ProtocolKind::kDragon);
  // Reads are always local.
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kRead), 0.0);
  EXPECT_DOUBLE_EQ(cost(rt, 1, OpKind::kRead), 0.0);
  // Client write: params to the sequencer + rebroadcast = N(P+1).
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kWrite), kN * (kP + 1));
  // Sequencer write: broadcast to all N clients.
  EXPECT_DOUBLE_EQ(cost(rt, kHome, OpKind::kWrite), kN * (kP + 1));
}

TEST(Firefly, UpdateBroadcastWithCompletionToken) {
  auto rt = make_runtime(ProtocolKind::kFirefly);
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kRead), 0.0);
  EXPECT_DOUBLE_EQ(cost(rt, 0, OpKind::kWrite), kN * (kP + 1) + 1);
  EXPECT_DOUBLE_EQ(cost(rt, kHome, OpKind::kWrite), kN * (kP + 1));
}

// ---------------------------------------------------------------------------
// Sequential consistency property: under atomic execution, every read at
// every node returns the value of the globally latest write — for all
// eight protocols, over randomized operation sequences.
// ---------------------------------------------------------------------------

class ReadLatestTest
    : public ::testing::TestWithParam<protocols::ProtocolKind> {};

TEST_P(ReadLatestTest, EveryReadReturnsTheLatestWrite) {
  auto rt = make_runtime(GetParam());
  Rng rng(7 + static_cast<std::uint64_t>(GetParam()));
  std::uint64_t value = 0;
  const std::vector<NodeId> nodes = {0, 1, 2, kHome};
  // Seed an initial value so the first read is well-defined.
  rt.execute(kHome, OpKind::kWrite, ++value);
  for (int step = 0; step < 5000; ++step) {
    const NodeId node = nodes[rng.uniform_index(nodes.size())];
    if (rng.bernoulli(0.35)) {
      rt.execute(node, OpKind::kWrite, ++value);
    } else {
      const sim::OpResult result = rt.execute(node, OpKind::kRead);
      ASSERT_EQ(result.read_value, rt.latest_value())
          << protocols::to_string(GetParam()) << " step " << step
          << " node " << node;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ReadLatestTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace drsm
