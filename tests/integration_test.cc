// Integration tests across the whole stack: analytic model vs lockstep
// simulation vs concurrent discrete-event simulation — the paper's
// Section 5.2 methodology (Table 7) as a test.
#include <gtest/gtest.h>

#include <cmath>

#include "analytic/solver.h"
#include "sim/event_sim.h"
#include "sim/sequential.h"
#include "stats/summary.h"
#include "workload/generator.h"

namespace drsm {
namespace {

using protocols::ProtocolKind;

sim::SystemConfig table7_config() {
  // Table 7: N=3 clients, a=2 read disturbers, P=30, S=100, M=20 objects.
  sim::SystemConfig config;
  config.num_clients = 3;
  config.costs.s = 100.0;
  config.costs.p = 30.0;
  config.num_objects = 20;
  return config;
}

/// Lockstep simulation: one sampled global operation at a time, run to
/// quiescence — the regime in which the analysis is exact, so measurement
/// converges to the analytic value with only sampling noise.
double lockstep_acc(ProtocolKind kind, const workload::WorkloadSpec& spec,
                    std::size_t ops, std::size_t warmup,
                    std::uint64_t seed) {
  sim::SystemConfig config = table7_config();
  config.num_objects = 1;
  sim::SequentialRuntime runtime(kind, config, spec.roster());
  workload::GlobalSequenceGenerator gen(spec, seed);
  Cost cost = 0.0;
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < warmup; ++i) {
    const auto op = gen.next();
    runtime.execute(op.node, op.op, ++value);
  }
  for (std::size_t i = 0; i < ops; ++i) {
    const auto op = gen.next();
    cost += runtime.execute(op.node, op.op, ++value).cost;
  }
  return cost / static_cast<double>(ops);
}

class LockstepConvergenceTest
    : public ::testing::TestWithParam<protocols::ProtocolKind> {};

TEST_P(LockstepConvergenceTest, AllDeviationsConvergeToAnalyticAcc) {
  sim::SystemConfig config = table7_config();
  config.num_objects = 1;
  analytic::AccSolver solver(config);
  const ProtocolKind kind = GetParam();

  std::vector<workload::WorkloadSpec> specs = {
      workload::read_disturbance(0.2, 0.2, 2),
      workload::read_disturbance(0.6, 0.1, 2),
      workload::write_disturbance(0.3, 0.1, 2),
      workload::multiple_activity_centers(0.4, 3),
  };
  for (const auto& spec : specs) {
    const double predicted = solver.acc(kind, spec);
    const auto ci = stats::replicate(6, [&](std::uint64_t seed) {
      return lockstep_acc(kind, spec, 20000, 500, seed * 7919);
    });
    EXPECT_TRUE(std::fabs(ci.mean - predicted) <
                std::max(3.0 * ci.half_width, 0.02 * predicted + 1e-6))
        << protocols::to_string(kind) << " workload=" << spec.name
        << " predicted=" << predicted << " measured=" << ci.mean << " +-"
        << ci.half_width;
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, LockstepConvergenceTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(Integration, ConcurrentSimulationStaysWithinPaperDiscrepancyBand) {
  // The paper's Table 7 reports < +-8 % between analysis and its Ada
  // simulator for Write-Once and Write-Through-V at N=3, a=2.
  const sim::SystemConfig config = table7_config();
  analytic::AccSolver solver(
      {config.num_clients, config.costs, 1});
  for (ProtocolKind kind :
       {ProtocolKind::kWriteOnce, ProtocolKind::kWriteThroughV}) {
    for (double p : {0.2, 0.4}) {
      const double sigma = 0.2;
      const auto spec = workload::read_disturbance(p, sigma, 2);
      const double predicted = solver.acc(kind, spec);
      ASSERT_GT(predicted, 0.0);

      sim::SimOptions options;
      options.max_ops = 40000;
      options.warmup_ops = 500;
      options.seed = 101;
      sim::EventSimulator simulator(kind, config, options);
      workload::ConcurrentDriver driver(spec, 102, config.num_objects);
      const sim::SimStats stats = simulator.run(driver);
      const double discrepancy =
          stats::relative_discrepancy_percent(predicted, stats.acc());
      EXPECT_LT(std::fabs(discrepancy), 10.0)
          << protocols::to_string(kind) << " p=" << p
          << " predicted=" << predicted << " measured=" << stats.acc();
    }
  }
}

TEST(Integration, AnalyticVarianceMatchesSimulatedVariance) {
  // The chain's per-operation cost variance must match the empirical
  // variance of lockstep-simulated per-op costs.
  sim::SystemConfig config = table7_config();
  config.num_objects = 1;
  const auto spec = workload::read_disturbance(0.3, 0.2, 2);
  analytic::ProtocolChain chain(ProtocolKind::kWriteOnce, config, spec);
  const auto probs = spec.probabilities();
  const double predicted_var = chain.cost_variance(probs);
  const double predicted_mean = chain.average_cost(probs);
  ASSERT_GT(predicted_var, 0.0);

  sim::SequentialRuntime runtime(ProtocolKind::kWriteOnce, config,
                                 spec.roster());
  workload::GlobalSequenceGenerator gen(spec, 1234);
  stats::RunningStats observed;
  std::uint64_t value = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto op = gen.next();
    runtime.execute(op.node, op.op, ++value);
  }
  for (int i = 0; i < 60000; ++i) {
    const auto op = gen.next();
    observed.add(runtime.execute(op.node, op.op, ++value).cost);
  }
  EXPECT_NEAR(observed.mean(), predicted_mean, 0.03 * predicted_mean);
  EXPECT_NEAR(observed.variance(), predicted_var, 0.05 * predicted_var);
}

TEST(Integration, SimulatorPerObjectCostsFollowSkew) {
  // Zipf-skewed object popularity: the hot object accumulates the most
  // cost in the simulator's per-object attribution.
  sim::SystemConfig config = table7_config();
  config.num_objects = 6;
  const auto spec = workload::read_disturbance(0.4, 0.2, 2);
  sim::SimOptions options;
  options.max_ops = 20000;
  options.warmup_ops = 0;
  options.seed = 5;
  sim::EventSimulator simulator(ProtocolKind::kWriteThroughV, config,
                                options);
  workload::ConcurrentDriver driver(spec, 6, config.num_objects, 64.0,
                                    workload::zipf_weights(6, 1.5));
  const sim::SimStats stats = simulator.run(driver);
  ASSERT_EQ(stats.cost_by_object.size(), 6u);
  double total = 0.0;
  for (Cost c : stats.cost_by_object) total += c;
  EXPECT_DOUBLE_EQ(total, stats.measured_cost + stats.warmup_cost);
  EXPECT_GT(stats.cost_by_object[0], stats.cost_by_object[3]);
  EXPECT_GT(stats.cost_by_object[0], stats.cost_by_object[5]);
}

TEST(Integration, EventCostSharesSumToAcc) {
  sim::SystemConfig config = table7_config();
  config.num_objects = 1;
  const auto spec = workload::read_disturbance(0.3, 0.15, 2);
  for (ProtocolKind kind : protocols::kAllProtocols) {
    analytic::ProtocolChain chain(kind, config, spec);
    const auto probs = spec.probabilities();
    const double acc = chain.average_cost(probs);
    const auto shares = chain.event_cost_shares(probs);
    double total = 0.0;
    for (double s : shares) total += s;
    EXPECT_NEAR(total, acc, 1e-9) << protocols::to_string(kind);
  }
}

TEST(Integration, StationaryDistributionsAreProbabilityVectors) {
  sim::SystemConfig config = table7_config();
  config.num_objects = 1;
  const auto spec = workload::write_disturbance(0.25, 0.1, 2);
  for (ProtocolKind kind : protocols::kAllProtocols) {
    analytic::ProtocolChain chain(kind, config, spec);
    const auto pi = chain.stationary(spec.probabilities());
    double sum = 0.0;
    for (double v : pi) {
      EXPECT_GE(v, -1e-12);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << protocols::to_string(kind);
  }
}

TEST(Integration, ChainCachingReturnsConsistentResults) {
  sim::SystemConfig config = table7_config();
  config.num_objects = 1;
  analytic::AccSolver solver(config);
  const auto spec_a = workload::read_disturbance(0.3, 0.1, 2);
  const auto spec_b = workload::read_disturbance(0.5, 0.05, 2);
  // Same structure, different probabilities: one chain, two solves.
  const double a1 = solver.acc(ProtocolKind::kSynapse, spec_a);
  const double b = solver.acc(ProtocolKind::kSynapse, spec_b);
  const double a2 = solver.acc(ProtocolKind::kSynapse, spec_a);
  EXPECT_DOUBLE_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

}  // namespace
}  // namespace drsm
