// Section 5.1's comparative conclusions, verified against the exact chain
// engine.  Where the paper gives an exact line (WT vs WTV, Dragon vs
// Berkeley) we check it point-wise; where our protocol adaptation can only
// match the *structure* (Synapse vs WTV — the paper's exact Synapse trace
// costs are not recoverable from the text), we verify the region layout and
// monotone boundary (see EXPERIMENTS.md for the quantitative comparison).
#include <gtest/gtest.h>

#include "analytic/closed_form.h"
#include "analytic/solver.h"
#include "workload/spec.h"

namespace drsm {
namespace {

using analytic::AccSolver;
using protocols::ProtocolKind;
namespace cf = analytic::closed_form;

sim::SystemConfig make_config(std::size_t n, double s, double p) {
  sim::SystemConfig config;
  config.num_clients = n;
  config.costs.s = s;
  config.costs.p = p;
  return config;
}

// ---------------------------------------------------------------------------
// "A line p = -a*sigma*S/(S+2) + S/(S+2) separates two regions where
//  Write-Through-V or Write-Through protocol incur minimum acc."
// ---------------------------------------------------------------------------

TEST(Crossover, WtVsWtvLineIsExact) {
  const std::size_t n = 10, a = 2;
  const double s = 100.0, p_cost = 30.0;
  AccSolver solver(make_config(n, s, p_cost));
  for (double sigma : {0.02, 0.05, 0.1}) {
    const double p_star = cf::wt_wtv_boundary(sigma, a, s);
    ASSERT_GT(p_star, 0.0);
    ASSERT_LT(p_star + a * sigma, 1.0);

    const auto at = [&](double p) {
      const auto spec = workload::read_disturbance(p, sigma, a);
      return std::make_pair(solver.acc(ProtocolKind::kWriteThrough, spec),
                            solver.acc(ProtocolKind::kWriteThroughV, spec));
    };

    // On the line the two protocols tie.
    auto [wt_on, wtv_on] = at(p_star);
    EXPECT_NEAR(wt_on, wtv_on, 1e-6) << "sigma=" << sigma;

    // Below the line WTV wins, above WT wins.
    auto [wt_below, wtv_below] = at(p_star * 0.5);
    EXPECT_LT(wtv_below, wt_below);
    auto [wt_above, wtv_above] = at(std::min(1.0 - a * sigma, p_star * 1.5));
    EXPECT_LT(wt_above, wtv_above);
  }
}

// ---------------------------------------------------------------------------
// "Protocol Berkeley incurs the minimum communication cost in comparison
//  with Write-Through, Write-Through-V, Write-Once, Illinois and Synapse."
// ---------------------------------------------------------------------------

TEST(Crossover, BerkeleyMinimalAmongInvalidateProtocolsUnderReadDisturbance) {
  const std::size_t n = 10, a = 3;
  AccSolver solver(make_config(n, 100.0, 30.0));
  const ProtocolKind rivals[] = {
      ProtocolKind::kWriteThrough, ProtocolKind::kWriteThroughV,
      ProtocolKind::kWriteOnce, ProtocolKind::kIllinois,
      ProtocolKind::kSynapse};
  for (double p : {0.05, 0.2, 0.5, 0.8}) {
    for (double sigma : {0.02, 0.05}) {
      if (p + a * sigma > 1.0) continue;
      const auto spec = workload::read_disturbance(p, sigma, a);
      const double berkeley = solver.acc(ProtocolKind::kBerkeley, spec);
      for (ProtocolKind rival : rivals) {
        EXPECT_LE(berkeley, solver.acc(rival, spec) + 1e-9)
            << protocols::to_string(rival) << " p=" << p
            << " sigma=" << sigma;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// "Protocol Illinois incurs acc lower than the Synapse scheme."
// ---------------------------------------------------------------------------

TEST(Crossover, IllinoisNeverWorseThanSynapse) {
  const std::size_t n = 8, a = 2;
  AccSolver solver(make_config(n, 100.0, 30.0));
  for (double p : {0.0, 0.1, 0.3, 0.6, 0.9}) {
    for (double sigma : {0.0, 0.05, 0.15}) {
      if (p + a * sigma > 1.0) continue;
      const auto spec = workload::read_disturbance(p, sigma, a);
      EXPECT_LE(solver.acc(ProtocolKind::kIllinois, spec),
                solver.acc(ProtocolKind::kSynapse, spec) + 1e-9)
          << "p=" << p << " sigma=" << sigma;
    }
  }
}

// ---------------------------------------------------------------------------
// "For Np > S+2 the Berkeley protocol incurs acc lower than the Dragon
//  protocol.  For NP < S+2 and a = 1, the line p = sigma*(S+2-NP)/...
//  separates two regions."
// ---------------------------------------------------------------------------

TEST(Crossover, BerkeleyBeatsDragonEverywhereWhenNpExceedsSPlus2) {
  const std::size_t n = 10;
  const double s = 100.0, p_cost = 30.0;  // N*P = 300 > S+2 = 102
  AccSolver solver(make_config(n, s, p_cost));
  for (double p : {0.05, 0.3, 0.7}) {
    for (double sigma : {0.05, 0.2}) {
      if (p + sigma > 1.0) continue;
      const auto spec = workload::read_disturbance(p, sigma, 1);
      EXPECT_LE(solver.acc(ProtocolKind::kBerkeley, spec),
                solver.acc(ProtocolKind::kDragon, spec) + 1e-9)
          << "p=" << p << " sigma=" << sigma;
    }
  }
}

TEST(Crossover, DragonVsBerkeleyLineWhenNpBelowSPlus2) {
  const std::size_t n = 5;
  const double s = 1000.0, p_cost = 30.0;  // N*P = 150 < S+2 = 1002
  AccSolver solver(make_config(n, s, p_cost));
  for (double sigma : {0.1, 0.3}) {
    const double p_star = cf::dragon_berkeley_boundary(sigma, n, s, p_cost);
    ASSERT_GT(p_star, 0.0);
    if (p_star + sigma >= 1.0) continue;

    const auto at = [&](double p) {
      const auto spec = workload::read_disturbance(p, sigma, 1);
      return std::make_pair(solver.acc(ProtocolKind::kDragon, spec),
                            solver.acc(ProtocolKind::kBerkeley, spec));
    };
    auto [drg_on, ber_on] = at(p_star);
    EXPECT_NEAR(drg_on, ber_on, 1e-6) << "sigma=" << sigma;
    auto [drg_below, ber_below] = at(p_star * 0.5);
    EXPECT_LT(drg_below, ber_below);  // Dragon wins below the line
    auto [drg_above, ber_above] = at(std::min(1.0 - sigma, p_star * 1.5));
    EXPECT_LT(ber_above, drg_above);  // Berkeley wins above
  }
}

// ---------------------------------------------------------------------------
// Synapse vs WTV region structure (paper: a line through the origin with
// WTV winning at small p / large sigma when P < S+N, and Synapse winning
// everywhere once P is large enough).
// ---------------------------------------------------------------------------

TEST(Crossover, SynapseVsWtvRegionStructure) {
  const std::size_t n = 10;
  const double s = 100.0, p_cost = 30.0;  // P < S+N
  AccSolver solver(make_config(n, s, p_cost));

  // Write-heavy, barely disturbed: Synapse executes writes locally and wins.
  {
    const auto spec = workload::read_disturbance(0.6, 0.01, 1);
    EXPECT_LT(solver.acc(ProtocolKind::kSynapse, spec),
              solver.acc(ProtocolKind::kWriteThroughV, spec));
  }
  // Read-disturbance-heavy, few writes: every disturber read hits Synapse's
  // expensive dirty-flush path and WTV wins.
  {
    const auto spec = workload::read_disturbance(0.01, 0.3, 1);
    EXPECT_LT(solver.acc(ProtocolKind::kWriteThroughV, spec),
              solver.acc(ProtocolKind::kSynapse, spec));
  }
}

TEST(Crossover, SynapseBeatsWtvEverywhereForLargeP) {
  const std::size_t n = 5;
  const double s = 20.0, p_cost = 200.0;  // P >> S+N (and > 3S+7)
  AccSolver solver(make_config(n, s, p_cost));
  for (double p : {0.05, 0.3, 0.7}) {
    for (double sigma : {0.02, 0.1, 0.25}) {
      if (p + 2 * sigma > 1.0) continue;
      const auto spec = workload::read_disturbance(p, sigma, 2);
      EXPECT_LE(solver.acc(ProtocolKind::kSynapse, spec),
                solver.acc(ProtocolKind::kWriteThroughV, spec) + 1e-9)
          << "p=" << p << " sigma=" << sigma;
    }
  }
}

// ---------------------------------------------------------------------------
// Monotonicity sanity: for the invalidate protocols acc grows with the
// write probability under a fixed disturbance.
// ---------------------------------------------------------------------------

class MonotonicityTest
    : public ::testing::TestWithParam<protocols::ProtocolKind> {};

TEST_P(MonotonicityTest, AccNondecreasingInPUnderIdealWorkload) {
  AccSolver solver(make_config(6, 100.0, 30.0));
  double prev = -1.0;
  for (double p : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    const double acc =
        solver.acc(GetParam(), workload::ideal_workload(p));
    EXPECT_GE(acc, prev - 1e-12) << "p=" << p;
    prev = acc;
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, MonotonicityTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace drsm
