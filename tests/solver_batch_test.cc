// Differential suite for the batched SoA analytic solver.
//
// The contract under test (linalg/batch.h, analytic/chain.h): every lane
// of a batched solve is bit-for-bit the value the scalar path computes
// for that lane on a freshly built solver — same reachability, same CSR
// duplicate summation order, same LU or power-iteration arithmetic, same
// per-lane convergence cut-off.  "Close" is not good enough here: the
// bench baselines are gated bit-identically by tools/drsm_bench_diff, so
// any batched/scalar divergence, however small, is a regression.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "analytic/solver.h"
#include "exec/batched_sweep.h"
#include "linalg/batch.h"
#include "linalg/sparse.h"
#include "linalg/stationary.h"
#include "protocols/protocol.h"
#include "support/rng.h"
#include "workload/spec.h"

namespace drsm {
namespace {

using protocols::ProtocolKind;

// The Table-6/7 grid: p and sigma in {0.0, 0.2, ..., 1.0}, cells with
// p + a*sigma > 1 invalid.
std::vector<std::pair<double, double>> table_grid(std::size_t a) {
  std::vector<std::pair<double, double>> cells;
  for (double p = 0.0; p <= 1.0 + 1e-12; p += 0.2)
    for (double sigma = 0.0; sigma <= 1.0 + 1e-12; sigma += 0.2)
      if (p + static_cast<double>(a) * sigma <= 1.0 + 1e-12)
        cells.push_back({p, sigma});
  return cells;
}

// Scalar reference: a fresh solver per cell, exactly how the bench's
// per-cell phases construct theirs (cold solves, no warm-start history).
double scalar_acc(const sim::SystemConfig& config, ProtocolKind kind,
                  const workload::WorkloadSpec& spec) {
  analytic::AccSolver solver(config);
  return solver.acc(kind, spec);
}

TEST(SolverBatch, BitIdenticalToScalarAllProtocolsTable7Grid) {
  const sim::SystemConfig config{3, {100.0, 30.0}, 1};
  constexpr std::size_t kA = 2;
  for (ProtocolKind kind : protocols::kAllProtocols) {
    std::vector<workload::WorkloadSpec> specs;
    for (const auto& [p, sigma] : table_grid(kA))
      specs.push_back(workload::read_disturbance(p, sigma, kA));

    analytic::AccSolver solver(config);
    const std::vector<double> batched = solver.acc_batch(kind, specs);
    ASSERT_EQ(batched.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const double scalar = scalar_acc(config, kind, specs[i]);
      EXPECT_EQ(batched[i], scalar)
          << protocols::to_string(kind) << " cell " << i
          << ": batched=" << batched[i] << " scalar=" << scalar;
    }
  }
}

TEST(SolverBatch, BitIdenticalOnWriteDisturbanceGrid) {
  const sim::SystemConfig config{3, {100.0, 30.0}, 1};
  constexpr std::size_t kA = 2;
  for (ProtocolKind kind : protocols::kAllProtocols) {
    std::vector<workload::WorkloadSpec> specs;
    for (const auto& [p, xi] : table_grid(kA))
      specs.push_back(workload::write_disturbance(p, xi, kA));
    analytic::AccSolver solver(config);
    const std::vector<double> batched = solver.acc_batch(kind, specs);
    for (std::size_t i = 0; i < specs.size(); ++i)
      EXPECT_EQ(batched[i], scalar_acc(config, kind, specs[i]))
          << protocols::to_string(kind) << " cell " << i;
  }
}

// Batch results must not depend on cell order (no warm-start coupling):
// a reversed batch returns the same bits for every cell.
TEST(SolverBatch, OrderIndependentWithinBatch) {
  const sim::SystemConfig config{3, {100.0, 30.0}, 1};
  std::vector<workload::WorkloadSpec> specs;
  for (const auto& [p, sigma] : table_grid(2))
    specs.push_back(workload::read_disturbance(p, sigma, 2));
  std::vector<workload::WorkloadSpec> reversed(specs.rbegin(), specs.rend());

  analytic::AccSolver forward(config);
  analytic::AccSolver backward(config);
  const auto f = forward.acc_batch(ProtocolKind::kWriteOnce, specs);
  const auto b = backward.acc_batch(ProtocolKind::kWriteOnce, reversed);
  for (std::size_t i = 0; i < specs.size(); ++i)
    EXPECT_EQ(f[i], b[specs.size() - 1 - i]);
}

// BatchedSweepRunner fans a mixed-protocol grid and must place each
// cell's scalar-identical result in its own slot at any thread count.
TEST(SolverBatch, BatchedSweepRunnerMatchesScalarAtAnyThreadCount) {
  const sim::SystemConfig config{3, {100.0, 30.0}, 1};
  std::vector<exec::AnalyticCell> cells;
  for (ProtocolKind kind :
       {ProtocolKind::kWriteOnce, ProtocolKind::kWriteThroughV,
        ProtocolKind::kDragon}) {
    for (const auto& [p, sigma] : table_grid(2))
      cells.push_back({kind, workload::read_disturbance(p, sigma, 2)});
  }
  std::vector<double> reference;
  for (const auto& cell : cells)
    reference.push_back(scalar_acc(config, cell.kind, cell.spec));

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    analytic::AccSolver solver(config);
    exec::BatchedSweepRunner runner({.threads = threads});
    const std::vector<double> got = runner.acc_grid(solver, cells);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
      EXPECT_EQ(got[i], reference[i]) << "cell " << i;
  }
}

// Batch telemetry decomposes the grid: every lane accounted for, masks
// grouped, and the Table-7 chains small enough for the LU path.
TEST(SolverBatch, TelemetryAccountsForAllLanes) {
  const sim::SystemConfig config{3, {100.0, 30.0}, 1};
  std::vector<workload::WorkloadSpec> specs;
  for (const auto& [p, sigma] : table_grid(2))
    specs.push_back(workload::read_disturbance(p, sigma, 2));

  analytic::AccSolver solver(config);
  const analytic::ProtocolChain& chain =
      solver.chain(ProtocolKind::kWriteOnce, specs.front());
  std::vector<std::vector<double>> probs;
  for (const auto& spec : specs) probs.push_back(spec.probabilities());

  analytic::ProtocolChain::BatchTelemetry tel;
  chain.average_cost_batch(probs, &tel);
  EXPECT_EQ(tel.lanes, specs.size());
  EXPECT_GE(tel.groups, 1u);
  EXPECT_LE(tel.groups, specs.size());
  EXPECT_EQ(tel.direct_lanes, specs.size());  // N=3 chains are tiny
  EXPECT_EQ(tel.power_iterations, 0u);
  EXPECT_GT(tel.max_states, 0u);
}

// The linalg kernel itself, power path included: a random batch of
// row-stochastic matrices above direct_limit must reproduce the scalar
// power iteration bit-for-bit, each lane frozen at its own convergence.
TEST(SolverBatch, BatchedStationaryPowerPathBitIdentical) {
  constexpr std::size_t kStates = 40;
  constexpr std::size_t kLanes = 7;
  Rng rng(20260809);

  // One shared ring-plus-self-loop sparsity pattern.
  linalg::CsrPattern pattern;
  pattern.rows = pattern.cols = kStates;
  pattern.row_ptr.push_back(0);
  for (std::size_t r = 0; r < kStates; ++r) {
    pattern.col_idx.push_back(r);
    pattern.col_idx.push_back((r + 1) % kStates);
    pattern.col_idx.push_back((r + 7) % kStates);
    pattern.row_ptr.push_back(pattern.col_idx.size());
  }
  const std::size_t nnz = pattern.nonzeros();

  // Lane-major SoA values, rows normalized to sum to 1.
  std::vector<double> values(nnz * kLanes);
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    for (std::size_t r = 0; r < kStates; ++r) {
      double w[3];
      double sum = 0.0;
      for (double& v : w) {
        v = 0.05 + rng.uniform();
        sum += v;
      }
      for (std::size_t j = 0; j < 3; ++j)
        values[(pattern.row_ptr[r] + j) * kLanes + lane] = w[j] / sum;
    }
  }

  linalg::StationaryOptions options;
  options.direct_limit = 8;  // force the power path
  linalg::BatchSolveStats stats;
  const std::vector<linalg::Vector> batched =
      linalg::batched_stationary(pattern, values, kLanes, options, &stats);
  EXPECT_FALSE(stats.direct);
  EXPECT_GT(stats.total_iterations, 0u);
  EXPECT_GE(stats.max_iterations, stats.total_iterations / kLanes);

  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    std::vector<linalg::Triplet> trip;
    for (std::size_t r = 0; r < kStates; ++r)
      for (std::size_t k = pattern.row_ptr[r]; k < pattern.row_ptr[r + 1];
           ++k)
        trip.push_back({r, pattern.col_idx[k], values[k * kLanes + lane]});
    const linalg::CsrMatrix m(kStates, kStates, std::move(trip));
    const linalg::Vector scalar =
        linalg::stationary_distribution(m, options);
    ASSERT_EQ(batched[lane].size(), scalar.size());
    for (std::size_t i = 0; i < scalar.size(); ++i)
      EXPECT_EQ(batched[lane][i], scalar[i]) << "lane " << lane << " state "
                                             << i;
  }
}

// Direct path of the kernel: small matrices must match the scalar LU
// solve bit-for-bit.
TEST(SolverBatch, BatchedStationaryDirectPathBitIdentical) {
  linalg::CsrPattern pattern;
  pattern.rows = pattern.cols = 3;
  pattern.row_ptr = {0, 2, 4, 6};
  pattern.col_idx = {0, 1, 1, 2, 0, 2};
  const std::size_t lanes = 3;
  std::vector<double> values(pattern.nonzeros() * lanes);
  const double lane_p[lanes] = {0.25, 0.5, 0.75};
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const double p = lane_p[lane];
    const double row[6] = {1 - p, p, 1 - p, p, p, 1 - p};
    for (std::size_t k = 0; k < 6; ++k)
      values[k * lanes + lane] = row[k];
  }
  const std::vector<linalg::Vector> batched =
      linalg::batched_stationary(pattern, values, lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const double p = lane_p[lane];
    std::vector<linalg::Triplet> trip = {{0, 0, 1 - p}, {0, 1, p},
                                         {1, 1, 1 - p}, {1, 2, p},
                                         {2, 0, p},     {2, 2, 1 - p}};
    const linalg::Vector scalar = linalg::stationary_distribution(
        linalg::CsrMatrix(3, 3, std::move(trip)), {});
    for (std::size_t i = 0; i < 3; ++i)
      EXPECT_EQ(batched[lane][i], scalar[i]);
  }
}

TEST(SolverBatch, RejectsNonStochasticBatch) {
  linalg::CsrPattern pattern;
  pattern.rows = pattern.cols = 2;
  pattern.row_ptr = {0, 2, 4};
  pattern.col_idx = {0, 1, 0, 1};
  std::vector<double> values = {0.5, 0.9, 0.5, 0.4, 0.5, 0.1, 0.5, 0.2};
  EXPECT_THROW(linalg::check_stochastic_batch(pattern, values, 2), Error);
  values = {0.5, 0.9, 0.5, 0.1, 0.5, 0.1, 0.5, 0.9};
  EXPECT_NO_THROW(linalg::check_stochastic_batch(pattern, values, 2));
}

}  // namespace
}  // namespace drsm
