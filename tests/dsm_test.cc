// Tests for the application-facing SharedMemory API.
#include <gtest/gtest.h>

#include "analytic/closed_form.h"
#include "dsm/dsm.h"
#include "support/rng.h"

namespace drsm {
namespace {

using dsm::SharedMemory;
using protocols::ProtocolKind;

SharedMemory::Options make_options(ProtocolKind kind,
                                   std::size_t objects = 4) {
  SharedMemory::Options options;
  options.protocol = kind;
  options.num_clients = 3;
  options.num_objects = objects;
  options.costs.s = 100.0;
  options.costs.p = 30.0;
  return options;
}

TEST(SharedMemory, ReadsSeeWrites) {
  SharedMemory memory(make_options(ProtocolKind::kWriteThrough));
  memory.write(0, 2, 42);
  EXPECT_EQ(memory.read(1, 2), 42u);
  EXPECT_EQ(memory.read(3, 2), 42u);  // the sequencer node
  memory.write(3, 2, 7);
  EXPECT_EQ(memory.read(0, 2), 7u);
}

TEST(SharedMemory, ObjectsAreIndependent) {
  SharedMemory memory(make_options(ProtocolKind::kBerkeley));
  memory.write(0, 0, 11);
  memory.write(1, 1, 22);
  EXPECT_EQ(memory.read(2, 0), 11u);
  EXPECT_EQ(memory.read(2, 1), 22u);
}

TEST(SharedMemory, CostAccountingMatchesTraceCosts) {
  SharedMemory memory(make_options(ProtocolKind::kWriteThrough, 1));
  memory.reset_counters();
  memory.write(0, 0, 1);  // P+N = 33
  EXPECT_DOUBLE_EQ(memory.last_op_cost(), 33.0);
  memory.read(0, 0);  // miss after own write: S+2
  EXPECT_DOUBLE_EQ(memory.last_op_cost(), 102.0);
  memory.read(0, 0);  // hit
  EXPECT_DOUBLE_EQ(memory.last_op_cost(), 0.0);
  EXPECT_DOUBLE_EQ(memory.total_cost(), 135.0);
  EXPECT_EQ(memory.total_ops(), 3u);
  EXPECT_NEAR(memory.average_cost(), 45.0, 1e-12);
  EXPECT_DOUBLE_EQ(memory.object_cost(0), 135.0);
}

TEST(SharedMemory, EjectAndSync) {
  SharedMemory memory(make_options(ProtocolKind::kWriteThroughV, 1));
  memory.write(0, 0, 5);
  EXPECT_STREQ(memory.state_name(0, 0), "VALID");
  memory.eject(0, 0);
  EXPECT_STREQ(memory.state_name(0, 0), "INVALID");
  EXPECT_EQ(memory.read(0, 0), 5u);
  memory.sync(1, 0);
  EXPECT_DOUBLE_EQ(memory.last_op_cost(), 2.0);
  // Extensions are rejected at nodes/protocols that lack them.
  EXPECT_THROW(memory.eject(3, 0), Error);
  memory.switch_protocol(ProtocolKind::kDragon);
  EXPECT_THROW(memory.eject(0, 0), Error);
}

TEST(SharedMemory, SwitchProtocolPreservesValues) {
  SharedMemory memory(make_options(ProtocolKind::kWriteThrough));
  memory.write(0, 1, 1001);
  memory.write(1, 3, 1003);
  memory.reset_counters();
  memory.switch_protocol(ProtocolKind::kBerkeley);
  EXPECT_EQ(memory.protocol(), ProtocolKind::kBerkeley);
  // The migration itself is free; values survive.
  EXPECT_DOUBLE_EQ(memory.total_cost(), 0.0);
  EXPECT_EQ(memory.read(2, 1), 1001u);
  EXPECT_EQ(memory.read(0, 3), 1003u);
}

TEST(SharedMemory, RandomizedCrossProtocolConsistency) {
  // The same operation sequence must yield the same read values under every
  // protocol (sequential consistency of the atomic runtime).
  const auto run = [](ProtocolKind kind) {
    SharedMemory memory(make_options(kind, 3));
    Rng rng(2024);
    std::vector<std::uint64_t> reads;
    std::uint64_t value = 0;
    for (int i = 0; i < 2000; ++i) {
      const NodeId node = static_cast<NodeId>(rng.uniform_index(4));
      const ObjectId object = static_cast<ObjectId>(rng.uniform_index(3));
      if (rng.bernoulli(0.4)) {
        memory.write(node, object, ++value);
      } else {
        reads.push_back(memory.read(node, object));
      }
    }
    return reads;
  };
  const auto reference = run(ProtocolKind::kWriteThrough);
  for (ProtocolKind kind : protocols::kAllProtocols)
    EXPECT_EQ(run(kind), reference) << protocols::to_string(kind);
}

TEST(SharedMemory, RejectsOutOfRangeIndices) {
  SharedMemory memory(make_options(ProtocolKind::kWriteThrough));
  EXPECT_THROW(memory.read(9, 0), Error);
  EXPECT_THROW(memory.write(0, 9, 1), Error);
}

}  // namespace
}  // namespace drsm
