// Tests for the Greenwald–Khanna streaming quantile sketch: exactness on
// small inputs, the epsilon rank-error bound on large streams, the
// zero-heavy latency distributions that motivated it (see obs/quantile.h),
// merging, and the summary-size bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "obs/quantile.h"

namespace drsm {
namespace {

using obs::Quantile;

// Deterministic 64-bit LCG so the large-stream tests are reproducible.
std::uint64_t lcg(std::uint64_t& state) {
  state = state * 6364136223846793005ULL + 1442695040888963407ULL;
  return state >> 33;
}

double exact_quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  std::size_t rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return values[rank - 1];
}

// Rank error of `value` against the sorted sample: distance from the
// target rank to the closest rank at which `value` appears.
double rank_error(std::vector<double> values, double value, double q) {
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  const auto lo = std::lower_bound(values.begin(), values.end(), value);
  const auto hi = std::upper_bound(values.begin(), values.end(), value);
  const double lo_rank = static_cast<double>(lo - values.begin()) + 1.0;
  const double hi_rank = static_cast<double>(hi - values.begin());
  double target = std::ceil(q * n);
  if (target < 1.0) target = 1.0;
  if (target < lo_rank) return lo_rank - target;
  if (target > hi_rank) return target - hi_rank;
  return 0.0;
}

TEST(QuantileTest, EmptySketchReturnsZero) {
  Quantile sketch;
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.query(0.5), 0.0);
  EXPECT_EQ(sketch.min(), 0.0);
  EXPECT_EQ(sketch.max(), 0.0);
  EXPECT_EQ(sketch.mean(), 0.0);
}

TEST(QuantileTest, SmallStreamsAreExact) {
  Quantile sketch;
  std::vector<double> values;
  for (int i = 100; i >= 1; --i) {
    sketch.record(i);
    values.push_back(i);
  }
  ASSERT_EQ(sketch.count(), 100u);
  for (double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0})
    EXPECT_EQ(sketch.query(q), exact_quantile(values, q)) << "q=" << q;
  EXPECT_EQ(sketch.min(), 1.0);
  EXPECT_EQ(sketch.max(), 100.0);
  EXPECT_NEAR(sketch.mean(), 50.5, 1e-12);
}

TEST(QuantileTest, LargeStreamStaysWithinEpsilonRankError) {
  const double epsilon = 0.005;
  Quantile sketch(epsilon);
  std::vector<double> values;
  std::uint64_t state = 42;
  const std::size_t n = 50'000;
  for (std::size_t i = 0; i < n; ++i) {
    // Mixed scale: uniform ints plus a heavy tail, like message costs.
    const double v = static_cast<double>(lcg(state) % 1000) +
                     (i % 97 == 0 ? 10'000.0 : 0.0);
    sketch.record(v);
    values.push_back(v);
  }
  ASSERT_EQ(sketch.count(), n);
  // 2*epsilon: the merge/compress slack documented in obs/quantile.h.
  const double budget = 2.0 * epsilon * static_cast<double>(n);
  for (double q : {0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double got = sketch.query(q);
    EXPECT_LE(rank_error(values, got, q), budget) << "q=" << q;
  }
}

TEST(QuantileTest, QueriesReturnObservedValuesOnZeroHeavyData) {
  // The distribution that exposed the histogram interpolation bug: 90%
  // of latencies are exactly 0, the rest exactly 5.  Every percentile
  // must be one of the two observed values — never a fabricated 0.5.
  Quantile sketch;
  std::uint64_t state = 7;
  for (std::size_t i = 0; i < 10'000; ++i)
    sketch.record(lcg(state) % 10 == 0 ? 5.0 : 0.0);
  EXPECT_EQ(sketch.query(0.5), 0.0);
  EXPECT_EQ(sketch.query(0.99), 5.0);
  for (double q : {0.1, 0.25, 0.75, 0.9, 0.95}) {
    const double got = sketch.query(q);
    EXPECT_TRUE(got == 0.0 || got == 5.0) << "q=" << q << " got " << got;
  }
}

TEST(QuantileTest, PercentilesAreMonotone) {
  Quantile sketch;
  std::uint64_t state = 3;
  for (std::size_t i = 0; i < 20'000; ++i)
    sketch.record(static_cast<double>(lcg(state) % 5000));
  double prev = sketch.query(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = sketch.query(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

TEST(QuantileTest, MergeMatchesConcatenatedStream) {
  const double epsilon = 0.005;
  Quantile left(epsilon);
  Quantile right(epsilon);
  std::vector<double> values;
  std::uint64_t state = 11;
  for (std::size_t i = 0; i < 8'000; ++i) {
    const double v = static_cast<double>(lcg(state) % 300);
    (i % 2 == 0 ? left : right).record(v);
    values.push_back(v);
  }
  left.merge(right);
  ASSERT_EQ(left.count(), values.size());
  EXPECT_EQ(left.min(), exact_quantile(values, 0.0));
  EXPECT_EQ(left.max(), exact_quantile(values, 1.0));
  const double budget = 2.0 * epsilon * static_cast<double>(values.size());
  for (double q : {0.1, 0.5, 0.9, 0.99})
    EXPECT_LE(rank_error(values, left.query(q), q), budget) << "q=" << q;
}

TEST(QuantileTest, MergeWithEmptyIsIdentity) {
  Quantile sketch;
  for (int i = 0; i < 10; ++i) sketch.record(i);
  Quantile empty;
  sketch.merge(empty);
  EXPECT_EQ(sketch.count(), 10u);
  EXPECT_EQ(sketch.query(1.0), 9.0);
  empty.merge(sketch);
  EXPECT_EQ(empty.count(), 10u);
  EXPECT_EQ(empty.query(1.0), 9.0);
}

TEST(QuantileTest, SummarySizeStaysSublinear) {
  Quantile sketch(0.005);
  std::uint64_t state = 99;
  const std::size_t n = 200'000;
  for (std::size_t i = 0; i < n; ++i)
    sketch.record(static_cast<double>(lcg(state)));
  // O((1/eps) * log(eps*n)) tuples; leave generous headroom but stay far
  // below the sample count.
  EXPECT_LT(sketch.tuples(), 5'000u);
  EXPECT_EQ(sketch.count(), n);
}

TEST(QuantileTest, ToJsonCarriesTheSummary) {
  Quantile sketch;
  for (int i = 1; i <= 100; ++i) sketch.record(i);
  const obs::JsonValue json = sketch.to_json();
  ASSERT_TRUE(json.is_object());
  EXPECT_EQ(json.find("count")->as_number(), 100.0);
  EXPECT_EQ(json.find("min")->as_number(), 1.0);
  EXPECT_EQ(json.find("max")->as_number(), 100.0);
  EXPECT_EQ(json.find("p50")->as_number(), 50.0);
  EXPECT_EQ(json.find("p90")->as_number(), 90.0);
  EXPECT_EQ(json.find("p99")->as_number(), 99.0);
  EXPECT_NEAR(json.find("mean")->as_number(), 50.5, 1e-12);
}

}  // namespace
}  // namespace drsm
