// Soundness of the model checker's reductions (src/check/world.h,
// src/check/model_checker.cc):
//
//  * reduction soundness — the default (symmetry + POR, canonical-hash
//    dedup) exploration reaches the same verdict and the same state-name
//    coverage as the exact kFullExpansion reference on every protocol,
//    while visiting no more (and usually far fewer) states;
//  * permutation equivariance — relabeling the clients of a reachable
//    state permutes its behaviour key exactly and never changes its
//    canonical hash, established by driving a random walk and a
//    π-relabeled twin walk in lockstep;
//  * snapshot codec — serialize_world/deserialize_world round-trips
//    every field the search can observe;
//  * StateStore — first-claim semantics hold, including under
//    concurrent claimers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "check/model_checker.h"
#include "check/state_store.h"
#include "check/world.h"
#include "exec/thread_pool.h"
#include "protocols/protocol.h"
#include "support/rng.h"

namespace drsm {
namespace {

using check::CheckConfig;
using check::CheckResult;
using check::StateStore;
using check::StepOutcome;
using check::World;
using protocols::ProtocolKind;

// ---------------------------------------------------------------------------
// Reduced vs full expansion: same verdict, same coverage, fewer states.
// ---------------------------------------------------------------------------

class ReductionSoundnessTest
    : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ReductionSoundnessTest, ReducedMatchesFullExpansionVerdict) {
  CheckConfig reduced;
  reduced.protocol = GetParam();
  reduced.num_clients = 2;
  const CheckResult r = check::check_protocol(reduced);

  CheckConfig full = reduced;
  full.expansion = CheckConfig::Expansion::kFullExpansion;
  const CheckResult f = check::check_protocol(full);

  ASSERT_TRUE(f.ok()) << f.violations.front().detail;
  ASSERT_TRUE(r.ok()) << r.violations.front().detail;
  EXPECT_FALSE(f.hit_state_cap);
  EXPECT_FALSE(r.hit_state_cap);

  // The reductions must not invent or lose machine-state coverage: every
  // orbit representative carries the same state-name multiset, and pure
  // absorptions change no machine at all.
  EXPECT_EQ(r.visited_state_names, f.visited_state_names);

  // Reduction, not inflation.
  EXPECT_LE(r.states, f.states);
  EXPECT_LE(r.transitions, f.transitions);
  EXPECT_TRUE(r.symmetry_applied);
  EXPECT_TRUE(r.por_applied);
  EXPECT_TRUE(r.compact_frontier);
  EXPECT_FALSE(f.symmetry_applied);
  EXPECT_FALSE(f.por_applied);

  // With two interchangeable clients the orbit quotient must actually
  // bite: strictly fewer canonical states than raw states.
  EXPECT_LT(r.states, f.states);
  EXPECT_GT(r.symmetry_hits, 0u);
}

TEST_P(ReductionSoundnessTest, EachReductionAloneIsAlsoSound) {
  CheckConfig base;
  base.protocol = GetParam();
  base.num_clients = 2;

  CheckConfig sym_only = base;
  sym_only.partial_order_reduction = false;
  const CheckResult s = check::check_protocol(sym_only);
  ASSERT_TRUE(s.ok()) << s.violations.front().detail;
  EXPECT_TRUE(s.symmetry_applied);
  EXPECT_FALSE(s.por_applied);
  EXPECT_EQ(s.por_pruned, 0u);

  CheckConfig por_only = base;
  por_only.symmetry_reduction = false;
  const CheckResult p = check::check_protocol(por_only);
  ASSERT_TRUE(p.ok()) << p.violations.front().detail;
  EXPECT_FALSE(p.symmetry_applied);
  EXPECT_TRUE(p.por_applied);
  EXPECT_EQ(p.symmetry_hits, 0u);

  CheckConfig full = base;
  full.expansion = CheckConfig::Expansion::kFullExpansion;
  const CheckResult f = check::check_protocol(full);

  EXPECT_EQ(s.visited_state_names, f.visited_state_names);
  EXPECT_EQ(p.visited_state_names, f.visited_state_names);
  EXPECT_LE(s.states, f.states);
  // POR explores a subgraph: never more states than the full expansion
  // (skipped siblings recur behind the absorbed delivery, minus the
  // already-absorbed message).
  EXPECT_LE(p.states, f.states);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ReductionSoundnessTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// ---------------------------------------------------------------------------
// Permutation equivariance along random walks.
// ---------------------------------------------------------------------------

struct WalkAction {
  bool issue = false;
  NodeId node = 0;  // issue: client.  deliver: destination.
  NodeId src = 0;   // deliver: channel source
  fsm::OpKind op = fsm::OpKind::kRead;
};

/// Enabled actions at `w`, in a fixed order (mirrors the checker's
/// candidate enumeration).
std::vector<WalkAction> enabled_actions(const World& w) {
  std::vector<WalkAction> out;
  const std::size_t nodes = w.num_nodes();
  for (NodeId c = 0; c + 1 < nodes; ++c) {
    if (w.pending[c] != 0 || w.disabled[c] != 0) continue;
    if (w.reads_left[c] > 0)
      out.push_back({true, c, 0, fsm::OpKind::kRead});
    if (w.writes_left[c] > 0)
      out.push_back({true, c, 0, fsm::OpKind::kWrite});
  }
  for (NodeId src = 0; src < nodes; ++src)
    for (NodeId dst = 0; dst < nodes; ++dst)
      if (!w.channels[src * nodes + dst].empty())
        out.push_back({false, dst, src, fsm::OpKind::kRead});
  return out;
}

void apply_action(World& w, const WalkAction& a, std::size_t capacity) {
  StepOutcome out;
  fsm::Message msg;
  if (a.issue)
    check::apply_issue(w, a.node, a.op, capacity, out, msg);
  else
    check::apply_deliver(w, a.src, a.node, capacity, out, msg);
  ASSERT_EQ(out.invariant, nullptr) << out.invariant << ": " << out.detail;
}

NodeId mapped(NodeId id, const std::vector<NodeId>& pi) {
  return id < pi.size() ? pi[id] : id;
}

class PermutationInvarianceTest
    : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(PermutationInvarianceTest, RelabeledTwinWalksShareCanonicalHashes) {
  CheckConfig cfg;
  cfg.protocol = GetParam();
  cfg.num_clients = 3;
  cfg.reads_per_client = 2;
  cfg.writes_per_client = 2;
  const auto perms = check::client_permutations(cfg.num_clients);

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 77);
    // A non-identity permutation pi, applied to every client id the twin
    // walk touches.
    const std::vector<NodeId>& pi = perms[1 + rng.uniform_index(
                                        perms.size() - 1)];

    World a = check::make_initial_world(cfg);
    World b = check::make_initial_world(cfg);
    std::vector<std::uint8_t> key_a, key_b, scratch;

    for (int step = 0; step < 60; ++step) {
      const auto actions = enabled_actions(a);
      if (actions.empty()) break;
      WalkAction act = actions[rng.uniform_index(actions.size())];
      apply_action(a, act, cfg.channel_capacity);

      WalkAction twin = act;
      twin.node = mapped(act.node, pi);
      twin.src = mapped(act.src, pi);
      apply_action(b, twin, cfg.channel_capacity);

      // The twin's identity key is the original's key relabeled by pi...
      ASSERT_TRUE(check::encode_key_relabeled(a, pi.data(), key_a));
      ASSERT_TRUE(check::encode_key_relabeled(b, perms[0].data(), key_b));
      ASSERT_EQ(key_a, key_b) << "protocol "
                              << protocols::to_string(GetParam())
                              << " seed " << seed << " step " << step;

      // ...and both walks canonicalize to the same hash at every step.
      const auto ca = check::canonical_hash(a, perms, scratch);
      const auto cb = check::canonical_hash(b, perms, scratch);
      ASSERT_EQ(ca.hash, cb.hash);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, PermutationInvarianceTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// ---------------------------------------------------------------------------
// Exact snapshot codec.
// ---------------------------------------------------------------------------

class SnapshotCodecTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(SnapshotCodecTest, RoundTripsEveryObservableField) {
  CheckConfig cfg;
  cfg.protocol = GetParam();
  cfg.num_clients = 3;
  cfg.reads_per_client = 2;
  cfg.writes_per_client = 2;

  Rng rng(4242);
  World w = check::make_initial_world(cfg);
  std::vector<std::uint8_t> bytes, bytes2, key, key2;
  for (int step = 0; step < 80; ++step) {
    const auto actions = enabled_actions(w);
    if (actions.empty()) break;
    apply_action(w, actions[rng.uniform_index(actions.size())],
                 cfg.channel_capacity);

    check::serialize_world(w, bytes);
    World back;
    ASSERT_TRUE(check::deserialize_world(
        cfg, bytes.data(), bytes.data() + bytes.size(), back));

    // Bytes fix-point, behaviour key equal, and the path-local oracle
    // history intact.
    check::serialize_world(back, bytes2);
    EXPECT_EQ(bytes, bytes2);
    check::encode_key(w, key);
    check::encode_key(back, key2);
    EXPECT_EQ(key, key2);
    EXPECT_EQ(back.version_counter, w.version_counter);
    EXPECT_EQ(back.issue_counter, w.issue_counter);
    EXPECT_EQ(back.latest_version, w.latest_version);
    EXPECT_EQ(back.latest_value, w.latest_value);
    EXPECT_EQ(back.commit_log, w.commit_log);
    EXPECT_EQ(back.issued, w.issued);
    EXPECT_EQ(back.last_read_version, w.last_read_version);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SnapshotCodecTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// ---------------------------------------------------------------------------
// StateStore.
// ---------------------------------------------------------------------------

TEST(StateStoreTest, FirstClaimWinsExactlyOnce) {
  StateStore store(1000);
  Rng rng(7);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(rng.next());
  for (std::uint64_t k : keys)
    EXPECT_EQ(store.claim(k), StateStore::Claim::kInserted);
  for (std::uint64_t k : keys)
    EXPECT_EQ(store.claim(k), StateStore::Claim::kPresent);
  EXPECT_EQ(store.size(), keys.size());
}

TEST(StateStoreTest, ZeroKeyIsClaimable) {
  StateStore store(16);
  EXPECT_EQ(store.claim(0), StateStore::Claim::kInserted);
  EXPECT_EQ(store.claim(0), StateStore::Claim::kPresent);
}

TEST(StateStoreTest, SkewedKeysStillSpread) {
  // Canonical keys are orbit minima: heavily biased toward small values.
  // The store must absorb far more such keys than a naive top-bit shard
  // split would allow.
  StateStore store(20000);
  for (std::uint64_t k = 1; k <= 20000; ++k)
    ASSERT_EQ(store.claim(k), StateStore::Claim::kInserted) << k;
}

TEST(StateStoreTest, ReserveKeepsEveryClaimedKey) {
  // The checker grows the store at depth barriers; a grown store must
  // still report every previously claimed key as present (a key lost in
  // the rehash would let BFS revisit — and re-expand — a whole subtree).
  StateStore store(16);
  Rng rng(11);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 40000; ++i) keys.push_back(rng.next());
  std::size_t grown = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i == store.capacity()) {  // about to outgrow: barrier-style grow
      store.reserve(2 * store.capacity());
      ++grown;
    }
    ASSERT_EQ(store.claim(keys[i]), StateStore::Claim::kInserted) << i;
    if (i % 97 == 0) {
      ASSERT_EQ(store.claim(keys[i / 2]), StateStore::Claim::kPresent);
    }
  }
  EXPECT_GT(grown, 5u);
  EXPECT_EQ(store.size(), keys.size());
  for (std::uint64_t k : keys)
    ASSERT_EQ(store.claim(k), StateStore::Claim::kPresent) << k;
}

TEST(StateStoreTest, ConcurrentClaimersInsertEachKeyExactlyOnce) {
  const std::size_t kKeys = 20000;
  StateStore store(kKeys);
  exec::ThreadPool pool(4);
  std::atomic<std::size_t> inserted{0};
  // Every key offered by two workers: exactly one wins.
  pool.parallel_for(8, [&](std::size_t) {
    Rng rng(99);  // same stream in every task: all claim the same keys
    for (std::size_t i = 0; i < kKeys; ++i) {
      if (store.claim(rng.next()) == StateStore::Claim::kInserted)
        inserted.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(inserted.load(), kKeys);
  EXPECT_EQ(store.size(), kKeys);
}

// ---------------------------------------------------------------------------
// Parallel exploration equivalence.
// ---------------------------------------------------------------------------

TEST(ParallelCheckTest, ThreadCountDoesNotChangeResults) {
  for (const auto kind :
       {ProtocolKind::kWriteThrough, ProtocolKind::kBerkeley}) {
    CheckConfig cfg;
    cfg.protocol = kind;
    cfg.num_clients = 2;
    cfg.threads = 1;
    const CheckResult serial = check::check_protocol(cfg);
    cfg.threads = 4;
    const CheckResult parallel = check::check_protocol(cfg);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel.threads_used, 4u);
    EXPECT_EQ(serial.states, parallel.states);
    EXPECT_EQ(serial.transitions, parallel.transitions);
    EXPECT_EQ(serial.probes, parallel.probes);
    EXPECT_EQ(serial.max_depth, parallel.max_depth);
    EXPECT_EQ(serial.por_pruned, parallel.por_pruned);
    EXPECT_EQ(serial.visited_state_names, parallel.visited_state_names);
  }
}

}  // namespace
}  // namespace drsm
