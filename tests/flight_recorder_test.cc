// Flight-recorder post-mortem tests (check-labeled: these exercise the
// verification layer's failure paths).  Covers the bounded ring itself,
// the dump file format, and all three triggers: a coherence-oracle
// violation, a model-checker counterexample, and a failing DRSM_CHECK
// through the fatal hook.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "check/model_checker.h"
#include "check/oracle.h"
#include "fsm/mealy.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "support/error.h"

namespace drsm {
namespace {

using obs::FlightRecorder;
using obs::TraceEvent;

TraceEvent message_event(double time, NodeId src, NodeId dst) {
  TraceEvent event;
  event.time = time;
  event.kind = obs::EventKind::kMsgSend;
  event.node = src;
  event.peer = dst;
  event.msg_id = static_cast<std::uint64_t>(time) + 1;
  return event;
}

// First line of a dump, parsed; validates the header grammar as a side
// effect.
obs::JsonValue dump_header(const std::string& dump) {
  const std::size_t eol = dump.find('\n');
  EXPECT_NE(eol, std::string::npos);
  return obs::parse_json(dump.substr(0, eol));
}

TEST(FlightRecorderTest, RingRetainsTheMostRecentEvents) {
  FlightRecorder recorder(4);
  for (int i = 0; i < 10; ++i) recorder.on_event(message_event(i, 0, 1));
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.capacity(), 4u);
  EXPECT_EQ(recorder.total(), 10u);
  // Oldest retained event is #6 (times 6..9 survive).
  EXPECT_EQ(recorder.ring().event(0).time, 6.0);

  const std::string dump = recorder.dump("", "unit test");
  const obs::JsonValue header = dump_header(dump);
  const obs::JsonValue* pm = header.find("postmortem");
  ASSERT_NE(pm, nullptr);
  EXPECT_EQ(pm->find("reason")->as_string(), "unit test");
  EXPECT_EQ(pm->find("retained")->as_number(), 4.0);
  EXPECT_EQ(pm->find("dropped")->as_number(), 6.0);
  EXPECT_EQ(pm->find("total")->as_number(), 10.0);
  // Header plus one JSONL line per retained event.
  std::size_t lines = 0;
  for (char c : dump)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 1u + 4u);
}

TEST(FlightRecorderTest, ForwardsToTheNextSink) {
  FlightRecorder recorder(8);
  obs::TraceRecorder downstream(8);
  recorder.set_next(&downstream);
  recorder.on_event(message_event(0, 0, 1));
  EXPECT_EQ(downstream.total(), 1u);
}

TEST(FlightRecorderTest, OracleViolationDumpsAPostMortem) {
  const std::string path =
      ::testing::TempDir() + "oracle_postmortem.jsonl";
  FlightRecorder recorder(64);
  check::CoherenceOracle oracle(check::OracleMode::kConcurrent);
  oracle.set_flight_recorder(&recorder, path);

  // Some traffic for the dump window, then an impossible history: two
  // issued writes and the sequencer rebinding version 1 between them.
  recorder.on_event(message_event(0, 0, 2));
  recorder.on_event(message_event(1, 2, 0));
  oracle.on_write_issue(0.0, 0, 0, 42);
  oracle.on_write_issue(1.0, 1, 0, 43);
  oracle.on_commit(2.0, 0, 0, 1, 42);
  ASSERT_TRUE(oracle.ok());
  oracle.on_commit(3.0, 1, 0, 1, 43);
  ASSERT_FALSE(oracle.ok());

  EXPECT_EQ(recorder.dumps(), 1u);
  EXPECT_EQ(recorder.last_dump_path(), path);
  const std::string dump = obs::read_file(path);
  const obs::JsonValue header = dump_header(dump);
  ASSERT_NE(header.find("postmortem"), nullptr);
  // The ring got the violation marker, and the dump shows the preceding
  // traffic.
  EXPECT_NE(dump.find("\"violation\""), std::string::npos);
  EXPECT_NE(dump.find("\"msg_send\""), std::string::npos);

  // Only the first violation dumps; later ones extend the list silently.
  oracle.on_write_issue(3.5, 1, 0, 44);
  oracle.on_commit(4.0, 1, 0, 1, 44);
  EXPECT_EQ(recorder.dumps(), 1u);
  EXPECT_GE(oracle.violations().size(), 2u);
}

// Swallows every message, so the checker's first issued operation pends
// forever and the deadlock invariant fires with a one-step trace.
class SwallowingMachine final : public fsm::ProtocolMachine {
 public:
  void on_message(fsm::MachineContext&, const fsm::Message&) override {}
  std::unique_ptr<fsm::ProtocolMachine> clone() const override {
    return std::make_unique<SwallowingMachine>(*this);
  }
  void encode(std::vector<std::uint8_t>& out) const override {
    out.push_back(0);
  }
  const char* state_name() const override { return "SWALLOW"; }
};

TEST(FlightRecorderTest, ModelCheckerCounterexampleDumps) {
  check::CheckConfig config;
  config.machine_factory = [](NodeId) {
    return std::make_unique<SwallowingMachine>();
  };
  config.num_clients = 2;
  config.check_exclusivity = false;
  config.probe_quiescent_reads = false;
  const check::CheckResult result = check::check_protocol(config);
  ASSERT_FALSE(result.ok());

  const std::string path =
      ::testing::TempDir() + "checker_postmortem.jsonl";
  FlightRecorder recorder(64);
  const std::string dump =
      check::dump_counterexample(result, recorder, path);
  ASSERT_FALSE(dump.empty());
  EXPECT_EQ(recorder.dumps(), 1u);
  EXPECT_EQ(obs::read_file(path), dump);

  const obs::JsonValue header = dump_header(dump);
  const obs::JsonValue* pm = header.find("postmortem");
  ASSERT_NE(pm, nullptr);
  // Reason names the violated invariant; the body replays the
  // counterexample steps and ends with the violation marker.
  EXPECT_NE(pm->find("reason")->as_string().find("deadlock"),
            std::string::npos);
  EXPECT_NE(dump.find("\"check_step\""), std::string::npos);
  EXPECT_NE(dump.find("\"violation\""), std::string::npos);
}

TEST(FlightRecorderTest, PassingResultProducesNoDump) {
  check::CheckConfig config;  // default write-through, 2 clients: passes
  const check::CheckResult result = check::check_protocol(config);
  ASSERT_TRUE(result.ok());
  FlightRecorder recorder(64);
  EXPECT_TRUE(
      check::dump_counterexample(result, recorder, "/nonexistent/x.jsonl")
          .empty());
  EXPECT_EQ(recorder.dumps(), 0u);
}

TEST(FlightRecorderTest, FatalCheckDumpsThroughTheHook) {
  const std::string path = ::testing::TempDir() + "fatal_postmortem.jsonl";
  {
    FlightRecorder recorder(16);
    recorder.install_fatal_dump(path);
    recorder.on_event(message_event(0, 1, 2));
    EXPECT_THROW(
        [] { DRSM_CHECK(false, "injected fatal for the recorder test"); }(),
        drsm::Error);
    EXPECT_EQ(recorder.dumps(), 1u);
  }
  const std::string dump = obs::read_file(path);
  EXPECT_NE(
      dump_header(dump).find("postmortem")->find("reason")->as_string().find(
          "injected fatal"),
      std::string::npos);
  EXPECT_NE(dump.find("\"msg_send\""), std::string::npos);

  // The recorder above is destroyed, so the hook is deregistered: a later
  // failure must not touch the file again.
  EXPECT_THROW([] { DRSM_CHECK(false, "post-deregistration"); }(),
               drsm::Error);
  EXPECT_NE(obs::read_file(path).find("injected fatal"), std::string::npos);
}

}  // namespace
}  // namespace drsm
