// Message-sequence regression tests: the exact wire protocol of each
// ownership protocol's characteristic operations, captured through the
// sequential runtime's observer.  These freeze the protocol definitions
// documented in docs/PROTOCOLS.md.
#include <gtest/gtest.h>

#include <vector>

#include "protocols/protocol.h"
#include "sim/sequential.h"

namespace drsm {
namespace {

using fsm::MsgType;
using fsm::OpKind;
using protocols::ProtocolKind;

constexpr std::size_t kN = 3;
constexpr NodeId kHome = kN;

struct Hop {
  MsgType type;
  NodeId src;
  NodeId dst;

  bool operator==(const Hop&) const = default;
};

class Recorder {
 public:
  explicit Recorder(ProtocolKind kind)
      : runtime_(kind, make_config(), {0, 1, 2}) {
    runtime_.set_observer(
        [this](NodeId src, NodeId dst, const fsm::Message& msg) {
          hops_.push_back({msg.token.type, src, dst});
        });
  }

  static sim::SystemConfig make_config() {
    sim::SystemConfig config;
    config.num_clients = kN;
    config.costs.s = 100.0;
    config.costs.p = 30.0;
    return config;
  }

  std::vector<Hop> run(NodeId node, OpKind op) {
    hops_.clear();
    runtime_.execute(node, op, ++value_);
    return hops_;
  }

 private:
  sim::SequentialRuntime runtime_;
  std::vector<Hop> hops_;
  std::uint64_t value_ = 1000;
};

TEST(MessageSequence, SynapseDirtyReadFlushNackRetry) {
  Recorder rec(ProtocolKind::kSynapse);
  rec.run(0, OpKind::kWrite);  // client 0 -> DIRTY
  const auto hops = rec.run(1, OpKind::kRead);
  const std::vector<Hop> expected = {
      {MsgType::kReadPer, 1, kHome},      // ask
      {MsgType::kRecallInval, kHome, 0},  // recall the dirty copy
      {MsgType::kFlushData, 0, kHome},    // flush (S+1)
      {MsgType::kNack, kHome, 1},         // try again
      {MsgType::kReadPer, 1, kHome},      // retry
      {MsgType::kReadGnt, kHome, 1},      // grant (S+1)
  };
  EXPECT_EQ(hops, expected);
}

TEST(MessageSequence, IllinoisDirtyReadForwardedNoRetry) {
  Recorder rec(ProtocolKind::kIllinois);
  rec.run(0, OpKind::kWrite);
  const auto hops = rec.run(1, OpKind::kRead);
  const std::vector<Hop> expected = {
      {MsgType::kReadPer, 1, kHome},
      {MsgType::kRecallShared, kHome, 0},  // old owner keeps VALID
      {MsgType::kFlushData, 0, kHome},
      {MsgType::kReadGnt, kHome, 1},
  };
  EXPECT_EQ(hops, expected);
}

TEST(MessageSequence, IllinoisValidUpgradeIsTokenOnly) {
  Recorder rec(ProtocolKind::kIllinois);
  rec.run(0, OpKind::kRead);  // client 0 -> VALID
  const auto hops = rec.run(0, OpKind::kWrite);
  const std::vector<Hop> expected = {
      {MsgType::kWritePer, 0, kHome},
      {MsgType::kInval, kHome, 1},
      {MsgType::kInval, kHome, 2},
      {MsgType::kWriteGnt, kHome, 0},  // bare token: no data refetch
  };
  EXPECT_EQ(hops, expected);
}

TEST(MessageSequence, BerkeleyOwnershipMigration) {
  Recorder rec(ProtocolKind::kBerkeley);
  rec.run(0, OpKind::kRead);  // fetch from the home owner -> VALID
  const auto hops = rec.run(0, OpKind::kWrite);
  const std::vector<Hop> expected = {
      {MsgType::kWritePer, 0, kHome},   // ask the current owner
      {MsgType::kOwnerXfer, kHome, 0},  // bare transfer (copy was VALID)
      {MsgType::kInval, 0, 1},          // the new owner broadcasts
      {MsgType::kInval, 0, 2},
      {MsgType::kInval, 0, kHome},
  };
  EXPECT_EQ(hops, expected);
}

TEST(MessageSequence, BerkeleyReadsGoStraightToTheOwner) {
  Recorder rec(ProtocolKind::kBerkeley);
  rec.run(0, OpKind::kWrite);  // ownership migrates to client 0
  const auto hops = rec.run(1, OpKind::kRead);
  const std::vector<Hop> expected = {
      {MsgType::kReadPer, 1, 0},  // directly to the owner, not the home
      {MsgType::kReadGnt, 0, 1},
  };
  EXPECT_EQ(hops, expected);
}

TEST(MessageSequence, WriteOnceWriteThroughIsAcknowledged) {
  Recorder rec(ProtocolKind::kWriteOnce);
  rec.run(0, OpKind::kRead);  // -> VALID
  const auto hops = rec.run(0, OpKind::kWrite);
  const std::vector<Hop> expected = {
      {MsgType::kWritePer, 0, kHome},  // carries the write parameters
      {MsgType::kInval, kHome, 1},
      {MsgType::kInval, kHome, 2},
      {MsgType::kWriteGnt, kHome, 0},  // the RESERVED acknowledgement
  };
  EXPECT_EQ(hops, expected);
  // The second write is silent.
  EXPECT_TRUE(rec.run(0, OpKind::kWrite).empty());
}

TEST(MessageSequence, FireflyWriteEndsWithCompletionToken) {
  Recorder rec(ProtocolKind::kFirefly);
  const auto hops = rec.run(0, OpKind::kWrite);
  const std::vector<Hop> expected = {
      {MsgType::kUpdate, 0, kHome},
      {MsgType::kUpdate, kHome, 1},
      {MsgType::kUpdate, kHome, 2},
      {MsgType::kAck, kHome, 0},
  };
  EXPECT_EQ(hops, expected);
}

}  // namespace
}  // namespace drsm
