// Tests for the formal Mealy-machine layer: the cost model of Section 4.1,
// the token five-tuple, and — most importantly — the equivalence of the
// paper's Write-Through transition tables (Tables 1-3) with the hand-coded
// Write-Through machines, exercised over randomized operation sequences.
#include <gtest/gtest.h>

#include "fsm/table.h"
#include "fsm/token.h"
#include "protocols/protocol.h"
#include "sim/sequential.h"
#include "support/rng.h"

namespace drsm {
namespace {

using fsm::CostModel;
using fsm::MsgType;
using fsm::OpKind;
using fsm::ParamPresence;

TEST(CostModel, Section41MessageCosts) {
  CostModel costs;
  costs.s = 5000.0;
  costs.p = 30.0;
  EXPECT_DOUBLE_EQ(costs.message_cost(ParamPresence::kNone), 1.0);
  EXPECT_DOUBLE_EQ(costs.message_cost(ParamPresence::kReadParams), 1.0);
  EXPECT_DOUBLE_EQ(costs.message_cost(ParamPresence::kWriteParams), 31.0);
  EXPECT_DOUBLE_EQ(costs.message_cost(ParamPresence::kUserInfo), 5001.0);
}

TEST(Token, DebugStringsAreStable) {
  fsm::Message msg;
  msg.token.type = MsgType::kReadPer;
  msg.token.initiator = 2;
  msg.token.object = 7;
  msg.token.queue = fsm::QueueKind::kDistributed;
  msg.token.params = ParamPresence::kNone;
  EXPECT_EQ(msg.debug_string(),
            "(R-PER, i=2, j=7, d, 0) value=0 version=0");
}

TEST(TransitionTable, RejectsUnknownTransitions) {
  const fsm::TransitionTable& table = fsm::write_through_client_table();
  // The paper marks e.g. (VALID, R-GNT) as an error.
  EXPECT_FALSE(table.contains(1, MsgType::kReadGnt));
  EXPECT_TRUE(table.contains(0, MsgType::kReadGnt));
  EXPECT_THROW(table.at(1, MsgType::kReadGnt), Error);
}

TEST(TransitionTable, WriteThroughClientShape) {
  const fsm::TransitionTable& table = fsm::write_through_client_table();
  EXPECT_EQ(table.num_states(), 2);
  EXPECT_EQ(table.start_state(), 0);
  EXPECT_EQ(table.state_name(0), "INVALID");
  EXPECT_EQ(table.state_name(1), "VALID");
  // Write from either state lands in INVALID.
  EXPECT_EQ(table.at(0, MsgType::kWriteReq).next_state, 0);
  EXPECT_EQ(table.at(1, MsgType::kWriteReq).next_state, 0);
  // A grant validates the copy.
  EXPECT_EQ(table.at(0, MsgType::kReadGnt).next_state, 1);
}

// ---------------------------------------------------------------------------
// Equivalence: interpreting the formal tables == the hand-written machines,
// over randomized operation sequences, comparing per-operation costs,
// message counts, returned values and copy states.
// ---------------------------------------------------------------------------

sim::SequentialRuntime make_table_runtime(const sim::SystemConfig& config,
                                          std::vector<NodeId> roster) {
  const auto factory = [&config](NodeId node) {
    const bool is_home =
        node == static_cast<NodeId>(config.num_clients);
    return std::make_unique<fsm::TableMachine>(
        is_home ? &fsm::write_through_sequencer_table()
                : &fsm::write_through_client_table());
  };
  return sim::SequentialRuntime(factory, config, std::move(roster));
}

TEST(TableEquivalence, FormalTablesMatchHandWrittenWriteThrough) {
  sim::SystemConfig config;
  config.num_clients = 4;
  config.costs.s = 100.0;
  config.costs.p = 30.0;
  const std::vector<NodeId> roster = {0, 1, 2};

  sim::SequentialRuntime table_rt = make_table_runtime(config, roster);
  sim::SequentialRuntime hand_rt(protocols::ProtocolKind::kWriteThrough,
                                 config, roster);

  Rng rng(42);
  std::uint64_t value = 0;
  for (int step = 0; step < 4000; ++step) {
    // Random node (clients from the roster or the sequencer), random op.
    const NodeId node =
        rng.bernoulli(0.2) ? static_cast<NodeId>(config.num_clients)
                           : static_cast<NodeId>(rng.uniform_index(3));
    const OpKind op = rng.bernoulli(0.4) ? OpKind::kWrite : OpKind::kRead;
    const std::uint64_t write_value = ++value;

    const sim::OpResult a = table_rt.execute(node, op, write_value);
    const sim::OpResult b = hand_rt.execute(node, op, write_value);

    ASSERT_DOUBLE_EQ(a.cost, b.cost) << "step " << step;
    ASSERT_EQ(a.messages, b.messages) << "step " << step;
    if (op == OpKind::kRead) {
      ASSERT_EQ(a.read_value, b.read_value) << "step " << step;
      // Sequential semantics: reads return the latest written value.
      ASSERT_EQ(a.read_value, table_rt.latest_value()) << "step " << step;
    }
    for (NodeId check : roster) {
      ASSERT_STREQ(table_rt.state_name(check), hand_rt.state_name(check))
          << "step " << step << " node " << check;
    }
  }
}

// ---------------------------------------------------------------------------
// The formal paradigm extends to the other buffering-free protocols
// (WTV, Dragon, Firefly): interpreted tables == hand-written machines.
// ---------------------------------------------------------------------------

struct TablePair {
  protocols::ProtocolKind kind;
  const fsm::TransitionTable* client;
  const fsm::TransitionTable* sequencer;
};

class TableParadigmTest : public ::testing::TestWithParam<TablePair> {};

TEST_P(TableParadigmTest, FormalTablesMatchHandWrittenMachines) {
  sim::SystemConfig config;
  config.num_clients = 4;
  config.costs.s = 100.0;
  config.costs.p = 30.0;
  const std::vector<NodeId> roster = {0, 1, 2};
  const TablePair& pair = GetParam();

  const auto factory = [&](NodeId node) {
    const bool is_home = node == static_cast<NodeId>(config.num_clients);
    return std::make_unique<fsm::TableMachine>(is_home ? pair.sequencer
                                                       : pair.client);
  };
  sim::SequentialRuntime table_rt(factory, config, roster);
  sim::SequentialRuntime hand_rt(pair.kind, config, roster);

  Rng rng(91 + static_cast<std::uint64_t>(pair.kind));
  std::uint64_t value = 0;
  for (int step = 0; step < 3000; ++step) {
    const NodeId node =
        rng.bernoulli(0.2) ? static_cast<NodeId>(config.num_clients)
                           : static_cast<NodeId>(rng.uniform_index(3));
    const OpKind op = rng.bernoulli(0.4) ? OpKind::kWrite : OpKind::kRead;
    const std::uint64_t write_value = ++value;

    const sim::OpResult a = table_rt.execute(node, op, write_value);
    const sim::OpResult b = hand_rt.execute(node, op, write_value);
    ASSERT_DOUBLE_EQ(a.cost, b.cost)
        << protocols::to_string(pair.kind) << " step " << step;
    ASSERT_EQ(a.messages, b.messages);
    if (op == OpKind::kRead) {
      ASSERT_EQ(a.read_value, b.read_value) << "step " << step;
      ASSERT_EQ(a.read_value, table_rt.latest_value());
    }
    for (NodeId check : roster)
      ASSERT_STREQ(table_rt.state_name(check), hand_rt.state_name(check))
          << protocols::to_string(pair.kind) << " step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paradigm, TableParadigmTest,
    ::testing::Values(
        TablePair{protocols::ProtocolKind::kWriteThrough,
                  &fsm::write_through_client_table(),
                  &fsm::write_through_sequencer_table()},
        TablePair{protocols::ProtocolKind::kWriteThroughV,
                  &fsm::write_through_v_client_table(),
                  &fsm::write_through_v_sequencer_table()},
        TablePair{protocols::ProtocolKind::kDragon,
                  &fsm::dragon_client_table(),
                  &fsm::dragon_sequencer_table()},
        TablePair{protocols::ProtocolKind::kFirefly,
                  &fsm::firefly_client_table(),
                  &fsm::firefly_sequencer_table()}),
    [](const auto& info) {
      std::string name = protocols::to_string(info.param.kind);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(TableParadigm, EjectAndSyncThroughWtvTables) {
  sim::SystemConfig config;
  config.num_clients = 3;
  config.costs.s = 100.0;
  config.costs.p = 30.0;
  const auto factory = [&](NodeId node) {
    const bool is_home = node == static_cast<NodeId>(config.num_clients);
    return std::make_unique<fsm::TableMachine>(
        is_home ? &fsm::write_through_v_sequencer_table()
                : &fsm::write_through_v_client_table());
  };
  sim::SequentialRuntime rt(factory, config, {0, 1});
  rt.execute(0, OpKind::kWrite, 9);
  EXPECT_STREQ(rt.state_name(0), "VALID");
  EXPECT_DOUBLE_EQ(rt.execute(0, OpKind::kEject).cost, 0.0);
  EXPECT_STREQ(rt.state_name(0), "INVALID");
  EXPECT_EQ(rt.execute(0, OpKind::kRead).read_value, 9u);
  EXPECT_DOUBLE_EQ(rt.execute(1, OpKind::kSync).cost, 2.0);
}

TEST(TableMachine, EncodesCopyState) {
  fsm::TableMachine machine(&fsm::write_through_client_table());
  std::vector<std::uint8_t> out;
  machine.encode(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0);  // INVALID start state
  EXPECT_STREQ(machine.state_name(), "INVALID");
}

TEST(Protocols, NamesRoundTrip) {
  for (protocols::ProtocolKind kind : protocols::kAllProtocols) {
    EXPECT_EQ(protocols::protocol_from_string(protocols::to_string(kind)),
              kind);
  }
  EXPECT_EQ(protocols::protocol_from_string("WT"),
            protocols::ProtocolKind::kWriteThrough);
  EXPECT_EQ(protocols::protocol_from_string("Berkeley"),
            protocols::ProtocolKind::kBerkeley);
  EXPECT_THROW(protocols::protocol_from_string("mesi"), Error);
}

TEST(Protocols, ExtensionSupportMatrix) {
  using protocols::ProtocolKind;
  EXPECT_TRUE(protocols::supports(ProtocolKind::kWriteThrough,
                                  OpKind::kEject));
  EXPECT_TRUE(protocols::supports(ProtocolKind::kWriteThroughV,
                                  OpKind::kSync));
  EXPECT_FALSE(protocols::supports(ProtocolKind::kDragon, OpKind::kEject));
  EXPECT_FALSE(protocols::supports(ProtocolKind::kBerkeley, OpKind::kSync));
  for (protocols::ProtocolKind kind : protocols::kAllProtocols) {
    EXPECT_TRUE(protocols::supports(kind, OpKind::kRead));
    EXPECT_TRUE(protocols::supports(kind, OpKind::kWrite));
  }
}

}  // namespace
}  // namespace drsm
