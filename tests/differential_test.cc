// Cross-protocol and cross-runtime differential tests.
//
// All eight protocols implement the *same* shared-memory contract, so
// under the atomic SequentialRuntime one fixed workload must produce
// identical read-value sequences on every protocol — a silent divergence
// (a protocol returning plausible-but-wrong data) is invisible to the acc
// metrics but fatal here.  The sim-vs-sequential half replays one recorded
// single-issuer trace through both runtimes and requires identical values:
// with one issuing node the event simulator's interleaving collapses to
// program order, so the runtimes are directly comparable.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "check/oracle.h"
#include "check/property.h"
#include "protocols/protocol.h"
#include "sim/event_sim.h"
#include "sim/sequential.h"
#include "workload/generator.h"
#include "workload/spec.h"

namespace drsm {
namespace {

using check::CoherenceOracle;
using check::OracleMode;
using protocols::ProtocolKind;

// (node, value) per read, in completion order.  Versions are excluded on
// purpose: Dragon's optimistic own-write apply legitimately reports a
// stale version for the writer's own reads.
using ReadSequence = std::vector<std::pair<NodeId, std::uint64_t>>;

std::string render(const ReadSequence& reads) {
  std::ostringstream out;
  for (const auto& [node, value] : reads)
    out << node << ":" << value << " ";
  return out.str();
}

TEST(CrossProtocol, AllEightProtocolsReturnIdenticalReadSequences) {
  // One fixed seeded workload (the paper's read-disturbance shape, three
  // clients), executed atomically on every protocol.
  const auto spec = workload::read_disturbance(0.3, 0.2, 2);
  const std::uint64_t kSeed = 20260807;
  const std::size_t kOps = 400;

  ReadSequence reference;
  for (const ProtocolKind kind : protocols::kAllProtocols) {
    sim::SystemConfig system;
    system.num_clients = 3;
    workload::GlobalSequenceGenerator generator(spec, kSeed);
    sim::SequentialRuntime runtime(kind, system, spec.roster());
    CoherenceOracle oracle(OracleMode::kSequential);
    runtime.set_coherence_tap(&oracle);

    std::uint64_t value_counter = 0;
    for (std::size_t i = 0; i < kOps; ++i) {
      const workload::TraceEntry entry = generator.next();
      const std::uint64_t value =
          entry.op == fsm::OpKind::kWrite ? ++value_counter : 0;
      runtime.execute(entry.node, entry.op, value);
    }
    oracle.finish();
    ASSERT_TRUE(oracle.ok()) << protocols::to_string(kind) << ": "
                             << oracle.violations().front();

    ReadSequence reads;
    for (const auto& r : oracle.reads()) reads.emplace_back(r.node, r.value);
    ASSERT_FALSE(reads.empty());
    if (kind == ProtocolKind::kWriteThrough) {
      reference = std::move(reads);
    } else {
      EXPECT_EQ(reads, reference)
          << protocols::to_string(kind) << " diverged\n  got      "
          << render(reads) << "\n  expected " << render(reference);
    }
  }
}

// The same check through the property harness entry point: identical
// PropertyConfig seeds must yield identical sequential read sequences on
// every protocol (guards the harness itself against protocol-dependent
// workload derivation).
TEST(CrossProtocol, PropertyHarnessSequentialRunsAgreeAcrossProtocols) {
  for (std::uint64_t seed : {1ULL, 7ULL, 23ULL}) {
    check::PropertyConfig config;
    config.seed = seed;
    config.ops = 200;

    ReadSequence reference;
    for (const ProtocolKind kind : protocols::kAllProtocols) {
      config.protocol = kind;
      const auto result = check::run_sequential_property(config);
      ASSERT_TRUE(result.ok()) << protocols::to_string(kind);
      ReadSequence reads;
      for (const auto& r : result.reads)
        reads.emplace_back(r.node, r.value);
      if (kind == ProtocolKind::kWriteThrough) {
        reference = std::move(reads);
      } else {
        EXPECT_EQ(reads, reference)
            << protocols::to_string(kind) << " diverged at seed " << seed;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Sim vs sequential on one recorded trace.
// ---------------------------------------------------------------------------

// Forwards to the oracle while recording write-issue order, so runs whose
// write values come from different counters (the simulator numbers writes
// internally; the sequential loop below numbers them itself) compare by
// write *ordinal*: "this read returned the k-th write of the program".
class TeeTap final : public sim::CoherenceTap {
 public:
  explicit TeeTap(CoherenceOracle& oracle) : oracle_(oracle) {}

  void on_write_issue(double time, NodeId node, ObjectId object,
                      std::uint64_t value) override {
    ordinal_.emplace(value, ordinal_.size() + 1);
    oracle_.on_write_issue(time, node, object, value);
  }
  void on_commit(double time, NodeId node, ObjectId object,
                 std::uint64_t version, std::uint64_t value) override {
    oracle_.on_commit(time, node, object, version, value);
  }
  void on_read(double time, NodeId node, ObjectId object,
               std::uint64_t value, std::uint64_t version) override {
    oracle_.on_read(time, node, object, value, version);
  }

  /// 0 = never written; k = the k-th write issued in program order.
  std::uint64_t ordinal(std::uint64_t value) const {
    const auto it = ordinal_.find(value);
    return it == ordinal_.end() ? 0 : it->second;
  }

 private:
  CoherenceOracle& oracle_;
  std::map<std::uint64_t, std::uint64_t> ordinal_;
};

class SimVsSequentialTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(SimVsSequentialTest, SingleIssuerTraceYieldsIdenticalValues) {
  // Record a single-issuer trace (the ideal workload: only client 0 acts).
  // Program order is total order, so both runtimes must return the same
  // write (by ordinal) for every read.
  const auto spec = workload::ideal_workload(0.4);
  workload::GlobalSequenceGenerator generator(spec, 99);
  const workload::OperationTrace trace = generator.record(300, 3);

  sim::SystemConfig system;
  system.num_clients = 3;

  // Sequential execution.
  ReadSequence sequential;
  {
    sim::SequentialRuntime runtime(GetParam(), system, spec.roster());
    CoherenceOracle oracle(OracleMode::kSequential);
    TeeTap tap(oracle);
    runtime.set_coherence_tap(&tap);
    std::uint64_t value_counter = 0;
    for (const auto& entry : trace.entries) {
      const std::uint64_t value =
          entry.op == fsm::OpKind::kWrite ? ++value_counter : 0;
      runtime.execute(entry.node, entry.op, value);
    }
    oracle.finish();
    ASSERT_TRUE(oracle.ok()) << oracle.violations().front();
    for (const auto& r : oracle.reads())
      sequential.emplace_back(r.node, tap.ordinal(r.value));
  }

  // Concurrent replay of the same trace.
  ReadSequence simulated;
  {
    sim::SimOptions options;
    options.max_ops = trace.entries.size();
    options.warmup_ops = 0;
    options.seed = 7;
    options.latency.min_latency = 1;
    options.latency.max_latency = 4;
    options.latency.processing_time = 1;
    sim::EventSimulator simulator(GetParam(), system, options);
    CoherenceOracle oracle(OracleMode::kConcurrent);
    TeeTap tap(oracle);
    simulator.set_coherence_tap(&tap);
    workload::TraceReplayDriver driver(trace);
    simulator.run(driver);
    oracle.finish();
    ASSERT_TRUE(oracle.ok()) << oracle.violations().front();
    for (const auto& r : oracle.reads())
      simulated.emplace_back(r.node, tap.ordinal(r.value));
  }

  ASSERT_FALSE(sequential.empty());
  EXPECT_EQ(simulated, sequential)
      << "sim " << render(simulated) << "\nseq " << render(sequential);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SimVsSequentialTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace drsm
