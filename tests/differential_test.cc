// Cross-protocol and cross-runtime differential tests.
//
// All eight protocols implement the *same* shared-memory contract, so
// under the atomic SequentialRuntime one fixed workload must produce
// identical read-value sequences on every protocol — a silent divergence
// (a protocol returning plausible-but-wrong data) is invisible to the acc
// metrics but fatal here.  The sim-vs-sequential half replays one recorded
// single-issuer trace through both runtimes and requires identical values:
// with one issuing node the event simulator's interleaving collapses to
// program order, so the runtimes are directly comparable.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analytic/solver.h"
#include "check/oracle.h"
#include "check/property.h"
#include "protocols/protocol.h"
#include "sim/event_sim.h"
#include "sim/sequential.h"
#include "workload/generator.h"
#include "workload/spec.h"

namespace drsm {
namespace {

using check::CoherenceOracle;
using check::OracleMode;
using protocols::ProtocolKind;

// (node, value) per read, in completion order.  Versions are excluded on
// purpose: Dragon's optimistic own-write apply legitimately reports a
// stale version for the writer's own reads.
using ReadSequence = std::vector<std::pair<NodeId, std::uint64_t>>;

std::string render(const ReadSequence& reads) {
  std::ostringstream out;
  for (const auto& [node, value] : reads)
    out << node << ":" << value << " ";
  return out.str();
}

TEST(CrossProtocol, AllEightProtocolsReturnIdenticalReadSequences) {
  // One fixed seeded workload (the paper's read-disturbance shape, three
  // clients), executed atomically on every protocol.
  const auto spec = workload::read_disturbance(0.3, 0.2, 2);
  const std::uint64_t kSeed = 20260807;
  const std::size_t kOps = 400;

  ReadSequence reference;
  for (const ProtocolKind kind : protocols::kAllProtocols) {
    sim::SystemConfig system;
    system.num_clients = 3;
    workload::GlobalSequenceGenerator generator(spec, kSeed);
    sim::SequentialRuntime runtime(kind, system, spec.roster());
    CoherenceOracle oracle(OracleMode::kSequential);
    runtime.set_coherence_tap(&oracle);

    std::uint64_t value_counter = 0;
    for (std::size_t i = 0; i < kOps; ++i) {
      const workload::TraceEntry entry = generator.next();
      const std::uint64_t value =
          entry.op == fsm::OpKind::kWrite ? ++value_counter : 0;
      runtime.execute(entry.node, entry.op, value);
    }
    oracle.finish();
    ASSERT_TRUE(oracle.ok()) << protocols::to_string(kind) << ": "
                             << oracle.violations().front();

    ReadSequence reads;
    for (const auto& r : oracle.reads()) reads.emplace_back(r.node, r.value);
    ASSERT_FALSE(reads.empty());
    if (kind == ProtocolKind::kWriteThrough) {
      reference = std::move(reads);
    } else {
      EXPECT_EQ(reads, reference)
          << protocols::to_string(kind) << " diverged\n  got      "
          << render(reads) << "\n  expected " << render(reference);
    }
  }
}

// The same check through the property harness entry point: identical
// PropertyConfig seeds must yield identical sequential read sequences on
// every protocol (guards the harness itself against protocol-dependent
// workload derivation).
TEST(CrossProtocol, PropertyHarnessSequentialRunsAgreeAcrossProtocols) {
  for (std::uint64_t seed : {1ULL, 7ULL, 23ULL}) {
    check::PropertyConfig config;
    config.seed = seed;
    config.ops = 200;

    ReadSequence reference;
    for (const ProtocolKind kind : protocols::kAllProtocols) {
      config.protocol = kind;
      const auto result = check::run_sequential_property(config);
      ASSERT_TRUE(result.ok()) << protocols::to_string(kind);
      ReadSequence reads;
      for (const auto& r : result.reads)
        reads.emplace_back(r.node, r.value);
      if (kind == ProtocolKind::kWriteThrough) {
        reference = std::move(reads);
      } else {
        EXPECT_EQ(reads, reference)
            << protocols::to_string(kind) << " diverged at seed " << seed;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Sim vs sequential on one recorded trace.
// ---------------------------------------------------------------------------

// Forwards to the oracle while recording write-issue order, so runs whose
// write values come from different counters (the simulator numbers writes
// internally; the sequential loop below numbers them itself) compare by
// write *ordinal*: "this read returned the k-th write of the program".
class TeeTap final : public sim::CoherenceTap {
 public:
  explicit TeeTap(CoherenceOracle& oracle) : oracle_(oracle) {}

  void on_write_issue(double time, NodeId node, ObjectId object,
                      std::uint64_t value) override {
    ordinal_.emplace(value, ordinal_.size() + 1);
    oracle_.on_write_issue(time, node, object, value);
  }
  void on_commit(double time, NodeId node, ObjectId object,
                 std::uint64_t version, std::uint64_t value) override {
    oracle_.on_commit(time, node, object, version, value);
  }
  void on_read(double time, NodeId node, ObjectId object,
               std::uint64_t value, std::uint64_t version) override {
    oracle_.on_read(time, node, object, value, version);
  }

  /// 0 = never written; k = the k-th write issued in program order.
  std::uint64_t ordinal(std::uint64_t value) const {
    const auto it = ordinal_.find(value);
    return it == ordinal_.end() ? 0 : it->second;
  }

 private:
  CoherenceOracle& oracle_;
  std::map<std::uint64_t, std::uint64_t> ordinal_;
};

class SimVsSequentialTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(SimVsSequentialTest, SingleIssuerTraceYieldsIdenticalValues) {
  // Record a single-issuer trace (the ideal workload: only client 0 acts).
  // Program order is total order, so both runtimes must return the same
  // write (by ordinal) for every read.
  const auto spec = workload::ideal_workload(0.4);
  workload::GlobalSequenceGenerator generator(spec, 99);
  const workload::OperationTrace trace = generator.record(300, 3);

  sim::SystemConfig system;
  system.num_clients = 3;

  // Sequential execution.
  ReadSequence sequential;
  {
    sim::SequentialRuntime runtime(GetParam(), system, spec.roster());
    CoherenceOracle oracle(OracleMode::kSequential);
    TeeTap tap(oracle);
    runtime.set_coherence_tap(&tap);
    std::uint64_t value_counter = 0;
    for (const auto& entry : trace.entries) {
      const std::uint64_t value =
          entry.op == fsm::OpKind::kWrite ? ++value_counter : 0;
      runtime.execute(entry.node, entry.op, value);
    }
    oracle.finish();
    ASSERT_TRUE(oracle.ok()) << oracle.violations().front();
    for (const auto& r : oracle.reads())
      sequential.emplace_back(r.node, tap.ordinal(r.value));
  }

  // Concurrent replay of the same trace.
  ReadSequence simulated;
  {
    sim::SimOptions options;
    options.max_ops = trace.entries.size();
    options.warmup_ops = 0;
    options.seed = 7;
    options.latency.min_latency = 1;
    options.latency.max_latency = 4;
    options.latency.processing_time = 1;
    sim::EventSimulator simulator(GetParam(), system, options);
    CoherenceOracle oracle(OracleMode::kConcurrent);
    TeeTap tap(oracle);
    simulator.set_coherence_tap(&tap);
    workload::TraceReplayDriver driver(trace);
    simulator.run(driver);
    oracle.finish();
    ASSERT_TRUE(oracle.ok()) << oracle.violations().front();
    for (const auto& r : oracle.reads())
      simulated.emplace_back(r.node, tap.ordinal(r.value));
  }

  ASSERT_FALSE(sequential.empty());
  EXPECT_EQ(simulated, sequential)
      << "sim " << render(simulated) << "\nseq " << render(sequential);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SimVsSequentialTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// ---------------------------------------------------------------------------
// Phase-changing workloads across live migrations.
// ---------------------------------------------------------------------------

// A fixed two-phase operation sequence: a read-disturbance phase flipping
// into a write-disturbance phase, same three-client roster throughout.
std::vector<workload::TraceEntry> phase_change_trace(std::size_t phase_ops,
                                                     std::uint64_t seed) {
  const auto phase_a = workload::read_disturbance(0.2, 0.1, 2);
  const auto phase_b = workload::write_disturbance(0.5, 0.1, 2);
  std::vector<workload::TraceEntry> trace;
  workload::GlobalSequenceGenerator gen_a(phase_a, seed);
  for (std::size_t i = 0; i < phase_ops; ++i) trace.push_back(gen_a.next());
  workload::GlobalSequenceGenerator gen_b(phase_b, seed ^ 0x5EED);
  for (std::size_t i = 0; i < phase_ops; ++i) trace.push_back(gen_b.next());
  return trace;
}

TEST(CrossProtocol, MigratingRuntimeMatchesStaticReadSequences) {
  // The same phase-changing trace, executed (a) statically on every
  // protocol, (b) on a runtime that live-migrates at the phase boundary
  // and twice more mid-phase.  Migration is a performance decision, never
  // a semantic one: every execution must return the identical read-value
  // sequence, and the oracle must stay clean across every switch.
  constexpr std::size_t kPhaseOps = 300;
  const auto trace = phase_change_trace(kPhaseOps, 20260809);
  sim::SystemConfig system;
  system.num_clients = 3;

  ReadSequence reference;
  for (const ProtocolKind kind : protocols::kAllProtocols) {
    sim::SequentialRuntime runtime(kind, system, {0, 1, 2});
    CoherenceOracle oracle(OracleMode::kSequential);
    runtime.set_coherence_tap(&oracle);
    std::uint64_t value_counter = 0;
    for (const auto& entry : trace) {
      const std::uint64_t value =
          entry.op == fsm::OpKind::kWrite ? ++value_counter : 0;
      runtime.execute(entry.node, entry.op, value);
    }
    oracle.finish();
    ASSERT_TRUE(oracle.ok()) << protocols::to_string(kind) << ": "
                             << oracle.violations().front();
    ReadSequence reads;
    for (const auto& r : oracle.reads()) reads.emplace_back(r.node, r.value);
    ASSERT_FALSE(reads.empty());
    if (kind == ProtocolKind::kWriteThrough)
      reference = std::move(reads);
    else
      EXPECT_EQ(reads, reference) << protocols::to_string(kind);
  }

  // The migrating execution: write-through for the read phase, Dragon
  // mid-way through it, Berkeley at the phase flip, Illinois mid-write.
  sim::SequentialRuntime runtime(ProtocolKind::kWriteThrough, system,
                                 {0, 1, 2});
  CoherenceOracle oracle(OracleMode::kSequential);
  runtime.set_coherence_tap(&oracle);
  std::uint64_t value_counter = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i == kPhaseOps / 2) runtime.migrate(ProtocolKind::kDragon);
    if (i == kPhaseOps) runtime.migrate(ProtocolKind::kBerkeley);
    if (i == kPhaseOps + kPhaseOps / 2)
      runtime.migrate(ProtocolKind::kIllinois);
    const std::uint64_t value =
        trace[i].op == fsm::OpKind::kWrite ? ++value_counter : 0;
    runtime.execute(trace[i].node, trace[i].op, value);
  }
  oracle.finish();
  ASSERT_TRUE(oracle.ok()) << "migrating: " << oracle.violations().front();
  ReadSequence migrating;
  for (const auto& r : oracle.reads())
    migrating.emplace_back(r.node, r.value);
  EXPECT_EQ(migrating, reference)
      << "mig " << render(migrating) << "\nref " << render(reference);
}

TEST(CrossProtocol, PerPhaseAccMatchesAnalyticAcrossMigration) {
  // On the migrating runtime, each phase's measured mean cost must agree
  // with the analytic acc of (phase protocol, phase workload) — migrating
  // between phases does not distort either phase's steady-state economics.
  // Sampling one sequential trajectory (no replications), so the bound is
  // looser than agreement_test's replicated 8%.
  constexpr std::size_t kPhaseOps = 20'000;
  const auto phase_a = workload::read_disturbance(0.2, 0.1, 2);
  const auto phase_b = workload::write_disturbance(0.5, 0.1, 2);
  sim::SystemConfig system;
  system.num_clients = 3;
  analytic::AccSolver solver(system);

  sim::SequentialRuntime runtime(ProtocolKind::kDragon, system, {0, 1, 2});
  std::uint64_t value_counter = 0;
  const auto run_phase = [&](const workload::WorkloadSpec& spec,
                             std::uint64_t seed) {
    workload::GlobalSequenceGenerator generator(spec, seed);
    double cost = 0.0;
    for (std::size_t i = 0; i < kPhaseOps; ++i) {
      const workload::TraceEntry entry = generator.next();
      const std::uint64_t value =
          entry.op == fsm::OpKind::kWrite ? ++value_counter : 0;
      cost += runtime.execute(entry.node, entry.op, value).cost;
    }
    return cost / static_cast<double>(kPhaseOps);
  };

  const double measured_a = run_phase(phase_a, 99);
  const double predicted_a = solver.acc(ProtocolKind::kDragon, phase_a);
  EXPECT_LT(std::fabs(measured_a - predicted_a) / predicted_a, 0.10)
      << "phase A: measured " << measured_a << " vs analytic "
      << predicted_a;

  runtime.migrate(ProtocolKind::kBerkeley);
  const double measured_b = run_phase(phase_b, 77);
  const double predicted_b = solver.acc(ProtocolKind::kBerkeley, phase_b);
  EXPECT_LT(std::fabs(measured_b - predicted_b) / predicted_b, 0.10)
      << "phase B: measured " << measured_b << " vs analytic "
      << predicted_b;
}

}  // namespace
}  // namespace drsm
