// Causal span tests: every application operation gets a unique nonzero
// span id at issue, and every event its protocol activity causes —
// messages, queue toggles, state transitions, the completion — carries
// that id.  Checked on both runtimes, plus the span/flow rendering of the
// JSONL and Chrome-trace exporters.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "obs/trace.h"
#include "sim/event_sim.h"
#include "sim/sequential.h"
#include "workload/generator.h"

namespace drsm {
namespace {

using obs::EventKind;
using obs::TraceEvent;
using obs::TraceRecorder;

sim::SystemConfig make_config(std::size_t n, std::size_t objects = 1) {
  sim::SystemConfig config;
  config.num_clients = n;
  config.costs.s = 100.0;
  config.costs.p = 30.0;
  config.num_objects = objects;
  return config;
}

// Walks a recorded trace checking span well-formedness: unique nonzero
// issue spans, and every span-carrying event referring to an operation
// already issued (causality never points forward).
void check_span_wellformedness(const TraceRecorder& recorder) {
  std::set<std::uint64_t> issued;
  std::set<std::uint64_t> completed;
  for (std::size_t i = 0; i < recorder.size(); ++i) {
    const TraceEvent& e = recorder.event(i);
    if (e.kind == EventKind::kOpIssue) {
      ASSERT_NE(e.span, 0u) << "issue without a span at event " << i;
      ASSERT_TRUE(issued.insert(e.span).second)
          << "span " << e.span << " issued twice";
    } else if (e.span != 0) {
      EXPECT_TRUE(issued.count(e.span))
          << obs::to_string(e.kind) << " at event " << i
          << " carries unissued span " << e.span;
    }
    if (e.kind == EventKind::kOpComplete) {
      ASSERT_NE(e.span, 0u) << "completion without a span at event " << i;
      EXPECT_TRUE(completed.insert(e.span).second)
          << "span " << e.span << " completed twice";
    }
  }
  EXPECT_FALSE(issued.empty());
  for (std::uint64_t span : completed) EXPECT_TRUE(issued.count(span));
}

TEST(SpanTest, EventSimulatorThreadsSpansThroughMessageChains) {
  sim::SimOptions options;
  options.max_ops = 300;
  options.warmup_ops = 0;
  options.seed = 5;
  sim::EventSimulator simulator(protocols::ProtocolKind::kWriteOnce,
                                make_config(3, 2), options);
  TraceRecorder recorder(1 << 16);
  simulator.set_sink(&recorder);
  workload::ConcurrentDriver driver(workload::read_disturbance(0.3, 0.2, 2),
                                    6, 2);
  simulator.run(driver);

  ASSERT_EQ(recorder.dropped(), 0u);
  check_span_wellformedness(recorder);

  // Every message is caused by some operation, so no message event may be
  // span-less.
  std::size_t messages = 0;
  for (std::size_t i = 0; i < recorder.size(); ++i) {
    const TraceEvent& e = recorder.event(i);
    if (e.kind == EventKind::kMsgSend || e.kind == EventKind::kMsgRecv) {
      ++messages;
      EXPECT_NE(e.span, 0u) << "message without causal span at event " << i;
    }
  }
  EXPECT_GT(messages, 0u);
}

TEST(SpanTest, SequentialRuntimeScopesEachOperationToOneSpan) {
  sim::SequentialRuntime runtime(protocols::ProtocolKind::kWriteThrough,
                                 make_config(2), {0, 1});
  TraceRecorder recorder;
  runtime.set_sink(&recorder);
  runtime.execute(0, fsm::OpKind::kWrite, 1);
  runtime.execute(1, fsm::OpKind::kRead);
  runtime.execute(1, fsm::OpKind::kWrite, 2);

  check_span_wellformedness(recorder);

  // Sequential semantics: operations are atomic, so the trace is a strict
  // sequence of [issue_k .. complete_k] blocks whose every span-carrying
  // event holds span k.
  std::uint64_t current = 0;
  std::size_t issues = 0;
  for (std::size_t i = 0; i < recorder.size(); ++i) {
    const TraceEvent& e = recorder.event(i);
    if (e.kind == EventKind::kOpIssue) {
      EXPECT_EQ(current, 0u) << "nested issue at event " << i;
      current = e.span;
      ++issues;
    } else if (e.kind == EventKind::kOpComplete) {
      EXPECT_EQ(e.span, current);
      current = 0;
    } else if (e.span != 0) {
      EXPECT_EQ(e.span, current)
          << obs::to_string(e.kind) << " leaked outside its operation";
    }
  }
  EXPECT_EQ(issues, 3u);
  EXPECT_EQ(current, 0u) << "unterminated operation span";
}

TEST(SpanTest, JsonlCarriesSpanIds) {
  sim::SequentialRuntime runtime(protocols::ProtocolKind::kWriteThrough,
                                 make_config(2), {0, 1});
  TraceRecorder recorder;
  runtime.set_sink(&recorder);
  runtime.execute(0, fsm::OpKind::kWrite, 1);
  const std::string jsonl = recorder.to_jsonl();
  EXPECT_NE(jsonl.find("\"span\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"op_issue\""), std::string::npos);
}

TEST(SpanTest, ChromeTraceRendersLanesFlowsAndSpans) {
  sim::SimOptions options;
  options.max_ops = 100;
  options.warmup_ops = 0;
  options.seed = 9;
  sim::EventSimulator simulator(protocols::ProtocolKind::kWriteThrough,
                                make_config(2), options);
  TraceRecorder recorder(1 << 16);
  simulator.set_sink(&recorder);
  workload::ConcurrentDriver driver(workload::ideal_workload(0.4), 10, 1);
  simulator.run(driver);

  TraceRecorder::ChromeTraceOptions chrome;
  chrome.pid = 7;
  chrome.process_name = "sim0";
  const std::string trace = recorder.to_chrome_trace(chrome);

  // Track layout: the runtime's process, one lane per node, a parallel
  // network-lane block.
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"sim0\""), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":7"), std::string::npos);
  EXPECT_NE(trace.find("\"client0\""), std::string::npos);
  EXPECT_NE(trace.find("\"sequencer\""), std::string::npos);
  EXPECT_NE(trace.find("\"net client0\""), std::string::npos);
  // Message activity: async begin/end pairs plus flow arrows.
  EXPECT_NE(trace.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(trace.find("\"msgflow\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"f\""), std::string::npos);
  // Causal spans ride along as slice arguments.
  EXPECT_NE(trace.find("\"span\":"), std::string::npos);

  TraceRecorder::ChromeTraceOptions no_flows;
  no_flows.flow_events = false;
  EXPECT_EQ(recorder.to_chrome_trace(no_flows).find("\"msgflow\""),
            std::string::npos);
}

}  // namespace
}  // namespace drsm
