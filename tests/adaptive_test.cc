// Tests for the self-tuning extension: parameter estimation, the analytic
// classifier, and the protocol-switching shared memory.
#include <gtest/gtest.h>

#include <algorithm>

#include "adaptive/selector.h"
#include "support/rng.h"
#include "workload/generator.h"

namespace drsm {
namespace {

using adaptive::AdaptiveSelector;
using adaptive::AdaptiveSharedMemory;
using adaptive::WorkloadEstimator;
using fsm::OpKind;
using protocols::ProtocolKind;

sim::SystemConfig make_config(std::size_t n, double s, double p) {
  sim::SystemConfig config;
  config.num_clients = n;
  config.costs.s = s;
  config.costs.p = p;
  return config;
}

TEST(WorkloadEstimator, WindowedFrequencies) {
  WorkloadEstimator estimator(2, /*window=*/4);
  estimator.observe(0, OpKind::kWrite);
  estimator.observe(0, OpKind::kWrite);
  estimator.observe(1, OpKind::kRead);
  estimator.observe(0, OpKind::kRead);
  auto spec = estimator.empirical_spec();
  // Node 0: 1 read + 2 writes; node 1: 1 read.
  double node0_write = 0.0, node1_read = 0.0;
  for (const auto& e : spec.events) {
    if (e.node == 0 && e.op == OpKind::kWrite) node0_write = e.probability;
    if (e.node == 1 && e.op == OpKind::kRead) node1_read = e.probability;
  }
  EXPECT_DOUBLE_EQ(node0_write, 0.5);
  EXPECT_DOUBLE_EQ(node1_read, 0.25);

  // Rolling: a fifth observation evicts the first.
  estimator.observe(1, OpKind::kRead);
  spec = estimator.empirical_spec();
  for (const auto& e : spec.events) {
    if (e.node == 0 && e.op == OpKind::kWrite) {
      EXPECT_DOUBLE_EQ(e.probability, 0.25);
    }
  }
}

TEST(AdaptiveSelector, PicksUpdateProtocolForReadSharedWorkload) {
  // Many readers, rare writes, small write parameters, huge objects:
  // broadcasting updates (Dragon) beats every invalidate protocol because
  // re-fetching S-sized objects dominates.
  AdaptiveSelector selector(make_config(4, 10000.0, 1.0));
  const auto spec = workload::read_disturbance(0.05, 0.3, 3);
  const auto decision = selector.classify(spec);
  EXPECT_EQ(decision.protocol, ProtocolKind::kDragon)
      << protocols::to_string(decision.protocol);
}

TEST(AdaptiveSelector, PicksOwnershipProtocolForWriteHeavyWorkload) {
  // A single hot writer: the ownership protocols (Write-Once, Synapse,
  // Illinois, Berkeley) all run it for free; the classifier must pick one
  // of them, never a write-through or update protocol.
  AdaptiveSelector selector(make_config(4, 100.0, 30.0));
  const auto decision = selector.classify(workload::ideal_workload(0.9));
  EXPECT_NEAR(decision.predicted_acc, 0.0, 1e-9);
  const ProtocolKind ownership[] = {
      ProtocolKind::kWriteOnce, ProtocolKind::kSynapse,
      ProtocolKind::kIllinois, ProtocolKind::kBerkeley};
  EXPECT_NE(std::find(std::begin(ownership), std::end(ownership),
                      decision.protocol),
            std::end(ownership))
      << protocols::to_string(decision.protocol);
  // With write disturbance and cheap object transfers (S < P), migrating
  // ownership to each writer beats forwarding every write's parameters:
  // Berkeley is the unique winner.
  AdaptiveSelector cheap_transfer(make_config(4, 4.0, 30.0));
  const auto contended = cheap_transfer.classify(
      workload::write_disturbance(0.6, 0.1, 2));
  EXPECT_EQ(contended.protocol, ProtocolKind::kBerkeley)
      << protocols::to_string(contended.protocol);
}

TEST(AdaptiveSelector, SingleCandidateIsAlwaysChosen) {
  // The selection boundary collapses when only one protocol is eligible:
  // whatever the workload says, the candidate list wins.
  AdaptiveSelector selector(make_config(4, 100.0, 30.0),
                            {ProtocolKind::kSynapse});
  EXPECT_EQ(selector.classify(workload::ideal_workload(0.9)).protocol,
            ProtocolKind::kSynapse);
  EXPECT_EQ(
      selector.classify(workload::read_disturbance(0.05, 0.3, 3)).protocol,
      ProtocolKind::kSynapse);
}

TEST(AdaptiveSelector, DegenerateWorkloadExtremesClassifyCleanly) {
  // p = 0 (reads only) and p = 1 (writes only) at a single activity
  // center are free under every ownership protocol; the classifier must
  // handle both extremes without blowing up and report acc = 0.
  AdaptiveSelector selector(make_config(3, 100.0, 30.0));
  const auto reads_only = selector.classify(workload::ideal_workload(0.0));
  EXPECT_NEAR(reads_only.predicted_acc, 0.0, 1e-9);
  const auto writes_only = selector.classify(workload::ideal_workload(1.0));
  EXPECT_NEAR(writes_only.predicted_acc, 0.0, 1e-9);
}

TEST(AdaptiveSharedMemory, DoesNotSwitchBeforeMinObservations) {
  AdaptiveSharedMemory::Options options;
  options.memory.protocol = ProtocolKind::kWriteThrough;
  options.memory.num_clients = 3;
  options.memory.num_objects = 1;
  options.memory.costs.s = 10000.0;  // strongly favors switching away
  options.memory.costs.p = 1.0;
  options.epoch_ops = 64;            // epochs come and go...
  options.min_observations = 100000; // ...but the floor is never reached
  AdaptiveSharedMemory memory(options);
  workload::GlobalSequenceGenerator gen(
      workload::read_disturbance(0.05, 0.3, 2), 3);
  std::uint64_t value = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto op = gen.next();
    if (op.op == OpKind::kWrite)
      memory.write(op.node, 0, ++value);
    else
      memory.read(op.node, 0);
  }
  EXPECT_EQ(memory.switches(), 0u);
  EXPECT_EQ(memory.current_protocol(), ProtocolKind::kWriteThrough);
}

TEST(AdaptiveSelector, AgreesWithAccSolverBestProtocol) {
  const auto config = make_config(5, 200.0, 30.0);
  AdaptiveSelector selector(config);
  analytic::AccSolver solver(config);
  const auto spec = workload::write_disturbance(0.2, 0.1, 2);
  EXPECT_EQ(selector.classify(spec).protocol, solver.best_protocol(spec));
}

TEST(AdaptiveSharedMemory, SwitchesWhenThePhaseChanges) {
  AdaptiveSharedMemory::Options options;
  options.memory.protocol = ProtocolKind::kWriteThrough;
  options.memory.num_clients = 3;
  options.memory.num_objects = 2;
  options.memory.costs.s = 10000.0;
  options.memory.costs.p = 1.0;
  options.epoch_ops = 256;
  options.window = 512;
  // Restrict to one update and one invalidate/ownership protocol so the
  // expected decisions are unambiguous.
  options.candidates = {ProtocolKind::kDragon, ProtocolKind::kBerkeley};
  AdaptiveSharedMemory memory(options);

  Rng rng(5);
  std::uint64_t value = 0;
  // Phase 1: widely shared reads with occasional writes -> Dragon.
  workload::GlobalSequenceGenerator phase1(
      workload::read_disturbance(0.05, 0.3, 2), 11, 2);
  for (int i = 0; i < 2000; ++i) {
    const auto op = phase1.next();
    if (op.op == OpKind::kWrite)
      memory.write(op.node, op.object, ++value);
    else
      memory.read(op.node, op.object);
  }
  EXPECT_EQ(memory.current_protocol(), ProtocolKind::kDragon);

  // Phase 2: single hot writer -> Berkeley.
  workload::GlobalSequenceGenerator phase2(workload::ideal_workload(0.8),
                                           13, 2);
  for (int i = 0; i < 2000; ++i) {
    const auto op = phase2.next();
    if (op.op == OpKind::kWrite)
      memory.write(op.node, op.object, ++value);
    else
      memory.read(op.node, op.object);
  }
  EXPECT_EQ(memory.current_protocol(), ProtocolKind::kBerkeley);
  EXPECT_GE(memory.switches(), 2u);  // WT -> Dragon -> Berkeley
  EXPECT_GT(memory.epochs(), 0u);
}

TEST(AdaptiveSharedMemory, PerObjectModeSpecializesEachObject) {
  // Object 0: private read-write at client 0; object 1: one writer, broad
  // readers with huge objects.  Per-object adaptation should settle on an
  // ownership protocol for object 0 and an update protocol for object 1.
  AdaptiveSharedMemory::Options options;
  options.memory.protocol = ProtocolKind::kWriteThrough;
  options.memory.num_clients = 4;
  options.memory.num_objects = 2;
  options.memory.costs.s = 8000.0;
  options.memory.costs.p = 2.0;
  options.epoch_ops = 256;
  options.window = 512;
  options.min_observations = 64;
  options.per_object = true;
  AdaptiveSharedMemory memory(options);

  Rng rng(41);
  std::uint64_t value = 0;
  for (int i = 0; i < 8000; ++i) {
    if (rng.bernoulli(0.5)) {
      // Private object.
      if (rng.bernoulli(0.6))
        memory.write(0, 0, ++value);
      else
        memory.read(0, 0);
    } else {
      // Shared object: rare writes by client 0, reads everywhere.
      if (rng.bernoulli(0.08))
        memory.write(0, 1, ++value);
      else
        memory.read(static_cast<NodeId>(rng.uniform_index(4)), 1);
    }
  }
  const ProtocolKind ownership[] = {
      ProtocolKind::kWriteOnce, ProtocolKind::kSynapse,
      ProtocolKind::kIllinois, ProtocolKind::kBerkeley};
  EXPECT_NE(std::find(std::begin(ownership), std::end(ownership),
                      memory.object_protocol(0)),
            std::end(ownership))
      << protocols::to_string(memory.object_protocol(0));
  EXPECT_TRUE(memory.object_protocol(1) == ProtocolKind::kDragon ||
              memory.object_protocol(1) == ProtocolKind::kFirefly)
      << protocols::to_string(memory.object_protocol(1));
  EXPECT_NE(memory.object_protocol(0), memory.object_protocol(1));
}

TEST(AdaptiveSharedMemory, HysteresisHoldsIncumbentOnStationaryWorkload) {
  // A stationary workload with two closely-priced update candidates
  // (Dragon and Firefly differ only by the completion token): after the
  // first decisive switch, epoch-to-epoch sampling noise inside the
  // hysteresis band must never flap the protocol back and forth.
  AdaptiveSharedMemory::Options options;
  options.memory.protocol = ProtocolKind::kWriteThrough;
  options.memory.num_clients = 3;
  options.memory.num_objects = 1;
  options.memory.costs.s = 10000.0;
  options.memory.costs.p = 1.0;
  options.epoch_ops = 128;
  options.window = 256;
  options.hysteresis = 0.05;
  options.candidates = {ProtocolKind::kDragon, ProtocolKind::kFirefly};
  AdaptiveSharedMemory memory(options);

  workload::GlobalSequenceGenerator gen(
      workload::read_disturbance(0.05, 0.3, 2), 23);
  std::uint64_t value = 0;
  for (int i = 0; i < 8000; ++i) {
    const auto op = gen.next();
    if (op.op == OpKind::kWrite)
      memory.write(op.node, 0, ++value);
    else
      memory.read(op.node, 0);
  }
  EXPECT_GT(memory.epochs(), 10u);  // plenty of chances to flap
  EXPECT_LE(memory.switches(), 1u)
      << "flapped to " << protocols::to_string(memory.current_protocol());
}

TEST(AdaptiveSharedMemory, FullHysteresisPinsTheInitialProtocol) {
  // hysteresis = 1.0 demands a challenger with negative predicted acc —
  // impossible — so the memory must never leave its initial protocol no
  // matter how lopsided the workload is.
  AdaptiveSharedMemory::Options options;
  options.memory.protocol = ProtocolKind::kWriteThrough;
  options.memory.num_clients = 3;
  options.memory.num_objects = 1;
  options.memory.costs.s = 10000.0;
  options.memory.costs.p = 1.0;
  options.epoch_ops = 64;
  options.hysteresis = 1.0;
  AdaptiveSharedMemory memory(options);

  workload::GlobalSequenceGenerator gen(
      workload::read_disturbance(0.05, 0.3, 2), 29);
  std::uint64_t value = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto op = gen.next();
    if (op.op == OpKind::kWrite)
      memory.write(op.node, 0, ++value);
    else
      memory.read(op.node, 0);
  }
  EXPECT_EQ(memory.switches(), 0u);
  EXPECT_EQ(memory.current_protocol(), ProtocolKind::kWriteThrough);
  EXPECT_GT(memory.reclassify_ms(), 0.0);  // epochs did run and price
}

TEST(AdaptiveSharedMemory, ValuesSurviveSwitches) {
  AdaptiveSharedMemory::Options options;
  options.memory.protocol = ProtocolKind::kWriteThrough;
  options.memory.num_clients = 2;
  options.memory.num_objects = 1;
  options.epoch_ops = 64;
  options.candidates = {ProtocolKind::kWriteThrough,
                        ProtocolKind::kBerkeley};
  AdaptiveSharedMemory memory(options);
  std::uint64_t latest = 0;
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const NodeId node = static_cast<NodeId>(rng.uniform_index(2));
    if (rng.bernoulli(0.5)) {
      memory.write(node, 0, ++latest);
    } else if (latest != 0) {
      ASSERT_EQ(memory.read(node, 0), latest) << "step " << i;
    }
  }
}

}  // namespace
}  // namespace drsm
