// Analytic-vs-simulation agreement, the paper's Table 7 experiment as a
// regression test: for every protocol, over a small (p, sigma) grid of
// read-disturbance workloads, the replicated simulator's mean acc must
// land within the paper's reported < +-8 % of the analytic prediction.
// Replications (sim::run_replications) keep the sampling noise small
// enough to make 8 % a stable bound.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analytic/solver.h"
#include "protocols/protocol.h"
#include "sim/replication.h"
#include "workload/generator.h"

namespace drsm {
namespace {

using protocols::ProtocolKind;

class Table7AgreementTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(Table7AgreementTest, ReplicatedSimWithinEightPercentOfAnalytic) {
  sim::SystemConfig config;
  config.num_clients = 3;
  config.costs.s = 100.0;
  config.costs.p = 30.0;

  analytic::AccSolver solver(config);

  struct Point {
    double p;
    double sigma;
  };
  // Both points keep p + a*sigma <= 1 (a = 2) and exercise different
  // write intensities.
  const Point grid[] = {{0.2, 0.1}, {0.4, 0.2}};

  for (const Point& point : grid) {
    const auto spec = workload::read_disturbance(point.p, point.sigma, 2);
    const double predicted = solver.acc(GetParam(), spec);
    ASSERT_GT(predicted, 0.0);

    sim::SimOptions options;
    options.max_ops = 12000;
    options.warmup_ops = 1000;

    sim::ReplicationOptions reps;
    reps.replications = 4;
    reps.base_seed = 0x7AB1E7;

    const sim::ReplicatedStats stats = sim::run_replications(
        GetParam(), config, options,
        [&](std::uint64_t seed, std::size_t /*rep*/) {
          return std::make_unique<workload::ConcurrentDriver>(spec,
                                                              seed ^ 0xBEEF);
        },
        reps);

    const double deviation =
        std::fabs(stats.acc.mean - predicted) / predicted;
    EXPECT_LT(deviation, 0.08)
        << protocols::to_string(GetParam()) << " at p=" << point.p
        << " sigma=" << point.sigma << ": simulated " << stats.acc.mean
        << " +- " << stats.acc.half_width << " vs analytic " << predicted;
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, Table7AgreementTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace drsm
