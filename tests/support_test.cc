// Unit tests for support: RNG determinism and statistical sanity,
// categorical (alias-method) sampling, formatting helpers, error checks.
#include <gtest/gtest.h>

#include <set>

#include "support/error.h"
#include "support/rng.h"
#include "support/text.h"

namespace drsm {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 450);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 50000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
  EXPECT_THROW(rng.bernoulli(1.5), Error);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 50000; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / 50000.0, 0.5, 0.02);
  EXPECT_THROW(rng.exponential(0.0), Error);
}

TEST(Rng, SplitStreamsAreIndependentAndReproducible) {
  Rng base(99);
  Rng s1 = base.split(1);
  Rng s2 = base.split(2);
  Rng s1_again = base.split(1);
  EXPECT_NE(s1.next(), s2.next());
  Rng s1_ref = Rng(99).split(1);
  (void)s1_again;
  Rng s1_b = Rng(99).split(1);
  EXPECT_EQ(s1_ref.next(), s1_b.next());
}

TEST(Categorical, MatchesWeights) {
  CategoricalSampler sampler({1.0, 2.0, 7.0});
  EXPECT_NEAR(sampler.probability(0), 0.1, 1e-12);
  EXPECT_NEAR(sampler.probability(1), 0.2, 1e-12);
  EXPECT_NEAR(sampler.probability(2), 0.7, 1e-12);
  Rng rng(23);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 100000; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(counts[0] / 100000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 100000.0, 0.2, 0.01);
  EXPECT_NEAR(counts[2] / 100000.0, 0.7, 0.01);
}

TEST(Categorical, HandlesZeroWeightOutcomes) {
  CategoricalSampler sampler({0.0, 1.0, 0.0});
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sampler.sample(rng), 1u);
}

TEST(Categorical, RejectsDegenerateInput) {
  EXPECT_THROW(CategoricalSampler({}), Error);
  EXPECT_THROW(CategoricalSampler({0.0, 0.0}), Error);
  EXPECT_THROW(CategoricalSampler({-1.0, 2.0}), Error);
}

TEST(Text, Strfmt) {
  EXPECT_EQ(strfmt("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(strfmt("%s", "plain"), "plain");
}

TEST(Text, RenderTableAligns) {
  const std::string table =
      render_table({"a", "bb"}, {{"1", "2"}, {"333", "4"}});
  EXPECT_NE(table.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(table.find("| 333 | 4  |"), std::string::npos);
}

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    DRSM_CHECK(1 == 2, "numbers disagree");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("numbers disagree"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace drsm
