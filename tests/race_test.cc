// Targeted concurrency races in the discrete-event simulator: operations
// issued simultaneously so requests, grants and invalidations genuinely
// cross on the wire.  Each scenario must complete every operation and
// leave the system in an invariant-respecting state (at most one exclusive
// copy; exactly one Berkeley owner).
#include <gtest/gtest.h>

#include <string>

#include "protocols/protocol.h"
#include "sim/event_sim.h"
#include "workload/generator.h"

namespace drsm {
namespace {

using fsm::OpKind;
using protocols::ProtocolKind;
using workload::TraceEntry;

constexpr std::size_t kN = 4;

sim::SystemConfig make_config() {
  sim::SystemConfig config;
  config.num_clients = kN;
  config.costs.s = 100.0;
  config.costs.p = 30.0;
  return config;
}

/// Runs a scripted scenario with every op issued as early as possible
/// (think time 0 -> maximal overlap) and randomized latencies, then checks
/// the exclusivity invariants over the final states.
void run_scenario(ProtocolKind kind,
                  const std::vector<TraceEntry>& script,
                  std::uint64_t seed) {
  sim::SimOptions options;
  options.max_ops = script.size();
  options.warmup_ops = 0;
  options.seed = seed;
  options.latency.min_latency = 1;
  options.latency.max_latency = 6;
  options.latency.processing_time = 1;
  sim::EventSimulator simulator(kind, make_config(), options);

  workload::OperationTrace trace;
  trace.num_clients = kN;
  trace.num_objects = 1;
  trace.entries = script;
  workload::TraceReplayDriver driver(trace, /*think_time=*/0);
  const sim::SimStats stats = simulator.run(driver);
  ASSERT_EQ(stats.measured_ops, script.size())
      << protocols::to_string(kind) << " seed " << seed;

  int dirty = 0, reserved = 0, owners = 0;
  for (NodeId node = 0; node <= kN; ++node) {
    const std::string state = simulator.state_name(node, 0);
    if (state == "DIRTY") ++dirty;
    if (state == "RESERVED") ++reserved;
    if (state == "DIRTY" || state == "SHARED-DIRTY") ++owners;
  }
  EXPECT_LE(dirty, 1) << protocols::to_string(kind);
  EXPECT_LE(reserved, 1) << protocols::to_string(kind);
  EXPECT_LE(dirty + reserved, 1) << protocols::to_string(kind);
  if (kind == ProtocolKind::kBerkeley) {
    EXPECT_EQ(owners, 1) << "Berkeley must have exactly one owner";
  }
}

class RaceTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(RaceTest, SimultaneousWriters) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    run_scenario(GetParam(),
                 {{0, 0, OpKind::kWrite},
                  {1, 0, OpKind::kWrite},
                  {2, 0, OpKind::kWrite}},
                 seed);
  }
}

TEST_P(RaceTest, WritersChaseThroughRounds) {
  std::vector<TraceEntry> script;
  for (int round = 0; round < 6; ++round) {
    script.push_back({0, 0, OpKind::kWrite});
    script.push_back({1, 0, OpKind::kWrite});
    script.push_back({2, 0, OpKind::kRead});
  }
  for (std::uint64_t seed = 1; seed <= 8; ++seed)
    run_scenario(GetParam(), script, seed);
}

TEST_P(RaceTest, StaleValidCopyUpgradeRace) {
  // Both clients first obtain valid copies, then write simultaneously:
  // one of the write requests is decided against a copy that an in-flight
  // invalidation has already revoked (exercises Illinois' data-or-token
  // grant fallback and Berkeley's ship-data-from-DIRTY fallback).
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    run_scenario(GetParam(),
                 {{0, 0, OpKind::kRead},
                  {1, 0, OpKind::kRead},
                  {0, 0, OpKind::kWrite},
                  {1, 0, OpKind::kWrite},
                  {0, 0, OpKind::kRead},
                  {1, 0, OpKind::kRead}},
                 seed);
  }
}

TEST_P(RaceTest, ReadersRaceInvalidations) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    run_scenario(GetParam(),
                 {{0, 0, OpKind::kRead},
                  {1, 0, OpKind::kRead},
                  {2, 0, OpKind::kRead},
                  {3, 0, OpKind::kWrite},
                  {0, 0, OpKind::kRead},
                  {1, 0, OpKind::kRead}},
                 seed);
  }
}

TEST_P(RaceTest, SequencerWritesRaceClientOps) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    run_scenario(GetParam(),
                 {{0, 0, OpKind::kRead},
                  {static_cast<NodeId>(kN), 0, OpKind::kWrite},
                  {1, 0, OpKind::kWrite},
                  {2, 0, OpKind::kRead}},
                 seed);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, RaceTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace drsm
