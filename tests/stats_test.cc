// Unit tests for the statistics module.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/summary.h"
#include "support/error.h"
#include "support/rng.h"

namespace drsm::stats {
namespace {

TEST(RunningStats, MomentsMatchDirectComputation) {
  RunningStats s;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(BatchMeans, CoversTrueMeanOfIidData) {
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 10000; ++i) samples.push_back(rng.uniform(0.0, 2.0));
  const ConfidenceInterval ci = batch_means_ci(samples, 20);
  EXPECT_TRUE(ci.contains(1.0)) << ci.lo() << " .. " << ci.hi();
  EXPECT_LT(ci.half_width, 0.05);
}

TEST(BatchMeans, RejectsDegenerateBatching) {
  EXPECT_THROW(batch_means_ci({1.0, 2.0, 3.0}, 1), Error);
  EXPECT_THROW(batch_means_ci({1.0}, 2), Error);
}

TEST(BatchMeans, DropsTheRemainderWhenBatchesDoNotDivide) {
  // 7 samples, 2 batches -> batch size 3: the 7th sample (1000) must not
  // leak into either batch mean.
  const ConfidenceInterval ci =
      batch_means_ci({1.0, 1.0, 1.0, 3.0, 3.0, 3.0, 1000.0}, 2);
  EXPECT_DOUBLE_EQ(ci.mean, 2.0);
}

TEST(BatchMeans, OneSamplePerBatchIsTheBoundaryCase) {
  const ConfidenceInterval ci = batch_means_ci({2.0, 4.0}, 2);
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_GT(ci.half_width, 0.0);
}

TEST(RunningStats, EmptyStatsReportZeros) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(ReplicationCi, ShrinksWithMoreReplicates) {
  Rng rng(5);
  std::vector<double> few, many;
  for (int i = 0; i < 4; ++i) few.push_back(rng.uniform(0.0, 1.0));
  for (int i = 0; i < 64; ++i) many.push_back(rng.uniform(0.0, 1.0));
  EXPECT_GT(replication_ci(few).half_width,
            replication_ci(many).half_width);
}

TEST(Discrepancy, MatchesTable7Definition) {
  // 100 * (acc_a - acc_s) / acc_a.
  EXPECT_DOUBLE_EQ(relative_discrepancy_percent(100.0, 92.0), 8.0);
  EXPECT_DOUBLE_EQ(relative_discrepancy_percent(100.0, 108.0), -8.0);
  EXPECT_DOUBLE_EQ(relative_discrepancy_percent(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(relative_discrepancy_percent(0.0, 1.0), -100.0);
}

TEST(Replicate, RunsExperimentPerSeed) {
  const ConfidenceInterval ci = replicate(8, [](std::uint64_t seed) {
    return static_cast<double>(seed);
  });
  EXPECT_DOUBLE_EQ(ci.mean, 4.5);  // mean of 1..8
}

}  // namespace
}  // namespace drsm::stats
