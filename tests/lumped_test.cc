// The lumped read-disturbance chains must agree exactly with the generic
// product-space engine (small a), with the paper's closed forms (any a),
// and must scale to disturber counts far beyond the generic engine.
#include <gtest/gtest.h>

#include "analytic/closed_form.h"
#include "analytic/lumped.h"
#include "analytic/solver.h"
#include "workload/spec.h"

namespace drsm {
namespace {

using protocols::ProtocolKind;
namespace cf = analytic::closed_form;

class LumpedVsGenericTest
    : public ::testing::TestWithParam<protocols::ProtocolKind> {};

TEST_P(LumpedVsGenericTest, MatchesProductSpaceEngine) {
  const std::size_t n = 12;
  const double s = 300.0, p_cost = 30.0;
  analytic::AccSolver solver({n, {s, p_cost}, 1});
  for (std::size_t a : {1u, 2u, 4u}) {
    for (double p : {0.0, 0.1, 0.4, 0.8}) {
      for (double sigma : {0.0, 0.02, 0.05}) {
        if (p + a * sigma > 1.0) continue;
        const double generic =
            solver.acc(GetParam(), workload::read_disturbance(p, sigma, a));
        const double lumped = analytic::lumped_read_disturbance_acc(
            GetParam(), n, s, p_cost, p, sigma, a);
        ASSERT_NEAR(generic, lumped, 1e-9)
            << protocols::to_string(GetParam()) << " a=" << a << " p=" << p
            << " sigma=" << sigma;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, LumpedVsGenericTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

class LumpedWdVsGenericTest
    : public ::testing::TestWithParam<protocols::ProtocolKind> {};

TEST_P(LumpedWdVsGenericTest, MatchesProductSpaceEngine) {
  const std::size_t n = 10;
  const double s = 250.0, p_cost = 20.0;
  analytic::AccSolver solver({n, {s, p_cost}, 1});
  for (std::size_t a : {1u, 2u, 4u}) {
    for (double p : {0.0, 0.1, 0.4, 0.7}) {
      for (double xi : {0.0, 0.02, 0.07}) {
        if (p + a * xi > 1.0) continue;
        const double generic =
            solver.acc(GetParam(), workload::write_disturbance(p, xi, a));
        const double lumped = analytic::lumped_write_disturbance_acc(
            GetParam(), n, s, p_cost, p, xi, a);
        ASSERT_NEAR(generic, lumped, 1e-9)
            << protocols::to_string(GetParam()) << " a=" << a << " p=" << p
            << " xi=" << xi;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, LumpedWdVsGenericTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(LumpedWd, MatchesEqn4AndClosedFormsAtLargeA) {
  const std::size_t n = 300, a = 150;
  const double s = 2000.0, p_cost = 30.0;
  for (double p : {0.05, 0.3}) {
    for (double xi : {0.001, 0.003}) {
      EXPECT_NEAR(
          analytic::lumped_write_disturbance_acc(
              ProtocolKind::kWriteThrough, n, s, p_cost, p, xi, a),
          cf::wt_write_disturbance(p, xi, a, n, s, p_cost), 1e-6)
          << "p=" << p << " xi=" << xi;
      EXPECT_NEAR(
          analytic::lumped_write_disturbance_acc(
              ProtocolKind::kWriteThroughV, n, s, p_cost, p, xi, a),
          cf::wtv_write_disturbance(p, xi, a, n, s, p_cost), 1e-6);
    }
  }
}

TEST(LumpedWd, NoDisturbersReducesToIdealWorkload) {
  for (ProtocolKind kind : protocols::kAllProtocols) {
    EXPECT_NEAR(analytic::lumped_write_disturbance_acc(kind, 8, 100.0, 30.0,
                                                       0.4, 0.25, 0),
                cf::ideal_acc(kind, 0.4, 8, 100.0, 30.0), 1e-9)
        << protocols::to_string(kind);
  }
}

class LumpedMacVsGenericTest
    : public ::testing::TestWithParam<protocols::ProtocolKind> {};

TEST_P(LumpedMacVsGenericTest, MatchesProductSpaceEngine) {
  const std::size_t n = 9;
  const double s = 350.0, p_cost = 25.0;
  analytic::AccSolver solver({n, {s, p_cost}, 1});
  for (std::size_t beta : {1u, 2u, 3u}) {
    for (double p : {0.0, 0.15, 0.5, 0.9}) {
      const double generic = solver.acc(
          GetParam(), workload::multiple_activity_centers(p, beta));
      const double lumped = analytic::lumped_multiple_ac_acc(
          GetParam(), n, s, p_cost, p, beta);
      ASSERT_NEAR(generic, lumped, 1e-9)
          << protocols::to_string(GetParam()) << " beta=" << beta
          << " p=" << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, LumpedMacVsGenericTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(LumpedMac, MatchesEqn5AtLargeBeta) {
  const std::size_t n = 600;
  const double s = 2000.0, p_cost = 30.0;
  for (std::size_t beta : {10u, 50u, 400u}) {
    for (double p : {0.05, 0.4, 0.9}) {
      EXPECT_NEAR(analytic::lumped_multiple_ac_acc(
                      ProtocolKind::kWriteThrough, n, s, p_cost, p, beta),
                  cf::wt_multiple_ac(p, beta, n, s, p_cost), 1e-6)
          << "beta=" << beta << " p=" << p;
    }
  }
}

TEST(Lumped, MatchesClosedFormsAtLargeA) {
  // The generic engine cannot reach a = 200 (2^200 states); the closed
  // forms can, and the lumped chains must match them.
  const std::size_t n = 500, a = 200;
  const double s = 5000.0, p_cost = 30.0;
  for (double p : {0.05, 0.3, 0.6}) {
    for (double sigma : {0.0005, 0.001, 0.0015}) {
      EXPECT_NEAR(analytic::lumped_read_disturbance_acc(
                      ProtocolKind::kWriteThrough, n, s, p_cost, p, sigma, a),
                  cf::wt_read_disturbance(p, sigma, a, n, s, p_cost), 1e-6)
          << "p=" << p << " sigma=" << sigma;
      EXPECT_NEAR(analytic::lumped_read_disturbance_acc(
                      ProtocolKind::kWriteThroughV, n, s, p_cost, p, sigma,
                      a),
                  cf::wtv_read_disturbance(p, sigma, a, n, s, p_cost), 1e-6);
      EXPECT_NEAR(analytic::lumped_read_disturbance_acc(
                      ProtocolKind::kBerkeley, n, s, p_cost, p, sigma, a),
                  cf::berkeley_read_disturbance(p, sigma, a, n, s, p_cost),
                  1e-6);
    }
  }
}

TEST(Lumped, HandlesDegenerateProbabilities) {
  for (ProtocolKind kind : protocols::kAllProtocols) {
    // Pure reads: everything converges to free hits.
    EXPECT_NEAR(analytic::lumped_read_disturbance_acc(kind, 8, 100.0, 30.0,
                                                      0.0, 0.1, 3),
                0.0, 1e-9)
        << protocols::to_string(kind);
    // Pure writes (p = 1).
    const double acc = analytic::lumped_read_disturbance_acc(
        kind, 8, 100.0, 30.0, 1.0, 0.0, 3);
    EXPECT_GE(acc, 0.0);
    EXPECT_NEAR(acc, cf::ideal_acc(kind, 1.0, 8, 100.0, 30.0), 1e-9);
  }
}

TEST(Lumped, ScalesToThousandsOfDisturbers) {
  // a = 5000 disturbers: O(a) states, still exact.
  const double acc = analytic::lumped_read_disturbance_acc(
      ProtocolKind::kSynapse, 10000, 1000.0, 30.0, 0.2, 0.0001, 5000);
  EXPECT_GT(acc, 0.0);
  // Sanity: monotone in sigma at this scale.
  const double acc_more = analytic::lumped_read_disturbance_acc(
      ProtocolKind::kSynapse, 10000, 1000.0, 30.0, 0.2, 0.00012, 5000);
  EXPECT_GT(acc_more, acc);
}

TEST(Lumped, RejectsInvalidParameters) {
  EXPECT_THROW(analytic::lumped_read_disturbance_acc(
                   ProtocolKind::kWriteThrough, 8, 100.0, 30.0, 0.8, 0.2, 3),
               Error);
}

}  // namespace
}  // namespace drsm
