// Tests for the zero-allocation event engine: RingQueue FIFO semantics
// and growth, EventQueue (time, seq) pop order under every placement
// path (L0, L1, overflow heap, horizon jump, zero delays), differential
// agreement between the time-wheel and the binary-heap reference, and
// steady-state arena reuse.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "support/rng.h"

namespace drsm {
namespace {

using sim::EventQueue;
using sim::RingQueue;
using sim::SchedulerKind;
using sim::SimEvent;

// ---------------------------------------------------------------------------
// RingQueue
// ---------------------------------------------------------------------------

TEST(RingQueue, FifoOrderAcrossGrowth) {
  RingQueue<int> queue;
  std::deque<int> reference;
  Rng rng(7);
  int next = 0;
  for (int step = 0; step < 20000; ++step) {
    const bool push = reference.empty() || rng.uniform() < 0.55;
    if (push) {
      queue.push_back(next);
      reference.push_back(next);
      ++next;
    } else {
      ASSERT_EQ(queue.front(), reference.front());
      queue.pop_front();
      reference.pop_front();
    }
    ASSERT_EQ(queue.size(), reference.size());
    ASSERT_EQ(queue.empty(), reference.empty());
  }
}

TEST(RingQueue, WrapsWithoutGrowingWhenDrained) {
  RingQueue<int> queue;
  for (int i = 0; i < 8; ++i) queue.push_back(i);
  const std::size_t bytes = queue.capacity_bytes();
  // Pump far more elements than the capacity through the queue while
  // keeping the population small: the buffer must wrap, not grow.
  for (int i = 0; i < 10000; ++i) {
    queue.push_back(100 + i);
    ASSERT_EQ(queue.front(), i < 8 ? i : 100 + i - 8);
    queue.pop_front();
  }
  EXPECT_EQ(queue.capacity_bytes(), bytes);
}

TEST(RingQueue, GrowthPreservesContentsOfNonTrivialType) {
  RingQueue<std::string> queue;
  for (int i = 0; i < 100; ++i) queue.push_back("item-" + std::to_string(i));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(queue.front(), "item-" + std::to_string(i));
    queue.pop_front();
  }
  EXPECT_TRUE(queue.empty());
}

// ---------------------------------------------------------------------------
// EventQueue pop order
// ---------------------------------------------------------------------------

TEST(EventQueue, PopsByTimeThenScheduleOrder) {
  for (SchedulerKind kind :
       {SchedulerKind::kTimeWheel, SchedulerKind::kBinaryHeap}) {
    EventQueue queue(kind);
    // Same time scheduled repeatedly, interleaved with other times.
    queue.schedule(5).node = 0;
    queue.schedule(3).node = 1;
    queue.schedule(5).node = 2;
    queue.schedule(3).node = 3;
    queue.schedule(4).node = 4;

    SimEvent ev;
    std::vector<NodeId> order;
    while (queue.pop(ev)) order.push_back(ev.node);
    EXPECT_EQ(order, (std::vector<NodeId>{1, 3, 4, 0, 2}));
  }
}

TEST(EventQueue, ZeroDelayEventsRunBeforeLaterTimes) {
  EventQueue queue;
  queue.schedule(10).node = 1;
  SimEvent ev;
  ASSERT_TRUE(queue.pop(ev));
  EXPECT_EQ(ev.time, 10u);
  // Schedule at the current time from "inside" the handler.
  queue.schedule(10).node = 2;
  queue.schedule(11).node = 3;
  queue.schedule(10).node = 4;
  ASSERT_TRUE(queue.pop(ev));
  EXPECT_EQ(ev.node, 2u);
  ASSERT_TRUE(queue.pop(ev));
  EXPECT_EQ(ev.node, 4u);
  ASSERT_TRUE(queue.pop(ev));
  EXPECT_EQ(ev.node, 3u);
  EXPECT_FALSE(queue.pop(ev));
}

TEST(EventQueue, OverflowHorizonJumpKeepsOrder) {
  // All events far beyond the 65536-tick wheel horizon, forcing the
  // overflow heap and the wheel-empty jump path.
  EventQueue queue;
  queue.schedule(1'000'000).node = 1;
  queue.schedule(900'000).node = 2;
  queue.schedule(900'000).node = 3;
  queue.schedule(5'000'000).node = 4;

  SimEvent ev;
  std::vector<NodeId> order;
  std::vector<SimTime> times;
  while (queue.pop(ev)) {
    order.push_back(ev.node);
    times.push_back(ev.time);
  }
  EXPECT_EQ(order, (std::vector<NodeId>{2, 3, 1, 4}));
  EXPECT_EQ(times, (std::vector<SimTime>{900'000, 900'000, 1'000'000,
                                         5'000'000}));
}

// The bug the wheel once had: an event scheduled early (low seq) toward a
// distant time cascades into an L0 slot that already holds a later
// schedule (higher seq) for the same tick — pop order must still be seq
// order.
TEST(EventQueue, LateCascadeEventSortsBeforeDirectInsertAtSameTick) {
  EventQueue queue;
  const SimTime target = 2000;      // one L0-window ahead of time 0
  queue.schedule(target).node = 1;  // seq 1: parked in an L1 slot
  queue.schedule(1023).node = 2;    // seq 2: direct L0 insert
  SimEvent ev;
  ASSERT_TRUE(queue.pop(ev));  // cursor moves to 1023
  EXPECT_EQ(ev.node, 2u);
  // Now `target` is within the L0 window: this files seq 3 directly into
  // the L0 slot for tick 2000, *before* seq 1 cascades out of L1 into the
  // same slot.  The cascade must sort seq 1 ahead of it.
  queue.schedule(target).node = 3;
  std::vector<NodeId> order;
  while (queue.pop(ev)) order.push_back(ev.node);
  EXPECT_EQ(order, (std::vector<NodeId>{1, 3}));
}

// ---------------------------------------------------------------------------
// Differential fuzz: the wheel agrees with the heap reference event for
// event over adversarial delay mixes (0-delay, in-slot, cross-L1,
// beyond-horizon, long idle jumps).
// ---------------------------------------------------------------------------

TEST(EventQueue, WheelMatchesHeapReferenceUnderRandomSchedules) {
  Rng rng(0xD1FFu);
  for (int trial = 0; trial < 50; ++trial) {
    EventQueue wheel(SchedulerKind::kTimeWheel);
    EventQueue heap(SchedulerKind::kBinaryHeap);
    SimTime now = 0;
    std::uint32_t id = 0;
    std::size_t pending = 0;

    auto schedule_pair = [&](SimTime delay) {
      wheel.schedule(now + delay).msg_id = id;
      heap.schedule(now + delay).msg_id = id;
      ++id;
      ++pending;
    };

    for (int i = 0; i < 16; ++i) schedule_pair(rng.uniform_index(2000));
    for (int step = 0; step < 4000; ++step) {
      SimEvent a, b;
      ASSERT_TRUE(wheel.pop(a));
      ASSERT_TRUE(heap.pop(b));
      --pending;
      ASSERT_EQ(a.time, b.time) << "trial " << trial << " step " << step;
      ASSERT_EQ(a.seq, b.seq) << "trial " << trial << " step " << step;
      ASSERT_EQ(a.msg_id, b.msg_id);
      ASSERT_GE(a.time, now);
      now = a.time;

      const std::size_t births = rng.uniform_index(3);
      for (std::size_t i = 0; i < births || pending == 0; ++i) {
        const std::uint64_t shape = rng.uniform_index(100);
        SimTime delay;
        if (shape < 25) {
          delay = 0;  // same-tick reschedule
        } else if (shape < 60) {
          delay = rng.uniform_index(1024);  // inside the L0 window
        } else if (shape < 85) {
          delay = rng.uniform_index(60) << 10;  // lands in L1 slots
        } else if (shape < 95) {
          delay = 65'536 + rng.uniform_index(200'000);  // overflow heap
        } else {
          delay = 1'000'000 + rng.uniform_index(1'000'000);  // long idle jump
        }
        schedule_pair(delay);
      }
    }
    // Drain both completely.
    SimEvent a, b;
    while (wheel.pop(a)) {
      ASSERT_TRUE(heap.pop(b));
      ASSERT_EQ(a.time, b.time);
      ASSERT_EQ(a.seq, b.seq);
    }
    EXPECT_FALSE(heap.pop(b));
  }
}

// ---------------------------------------------------------------------------
// Arena reuse: steady-state churn must not grow the slab arena.
// ---------------------------------------------------------------------------

TEST(EventQueue, ArenaStopsGrowingAtSteadyState) {
  EventQueue queue;
  SimTime now = 0;
  // Keep ~64 events pending while pumping 100k events through.
  for (int i = 0; i < 64; ++i) queue.schedule(now + 1 + i);
  SimEvent ev;
  for (int i = 0; i < 100'000; ++i) {
    ASSERT_TRUE(queue.pop(ev));
    now = ev.time;
    queue.schedule(now + 1 + (i % 97));
  }
  EXPECT_EQ(queue.arena_blocks(), 1u);  // 64 live records fit one slab
  EXPECT_EQ(queue.peak_pending(), 64u);
  EXPECT_EQ(queue.scheduled(), 100'064u);
}

}  // namespace
}  // namespace drsm
