// Shared test helpers.
//
// Trajectory is the FNV-1a accumulator the determinism suites use to pin
// full message trajectories into a single golden hash.  The accumulator
// itself lives in support/trajectory.h (the model checker and the
// concurrent runtime's determinism checks fold the same constants); this
// alias keeps the suites' historical spelling.
#ifndef DRSM_TESTS_TEST_UTIL_H_
#define DRSM_TESTS_TEST_UTIL_H_

#include "support/trajectory.h"

namespace drsm::testing {

using Trajectory = drsm::TrajectoryHash;

}  // namespace drsm::testing

#endif  // DRSM_TESTS_TEST_UTIL_H_
