// Shared test helpers.
//
// Trajectory is the FNV-1a accumulator the determinism suites use to pin
// full message trajectories into a single golden hash.  Folding every
// observed message through `mix_message` makes two runs comparable with
// one EXPECT_EQ while keeping mismatch localisation to the (already
// deterministic) replay tooling.
#ifndef DRSM_TESTS_TEST_UTIL_H_
#define DRSM_TESTS_TEST_UTIL_H_

#include <cstdint>

#include "fsm/token.h"
#include "support/types.h"

namespace drsm::testing {

struct Trajectory {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
  std::uint64_t events = 0;

  void mix(std::uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ULL;
  }

  // Folds an observed message into the hash as the (time, src, dst,
  // five-tuple, payload) record the golden constants were captured under.
  void mix_message(std::uint64_t time, NodeId src, NodeId dst,
                   const fsm::Message& msg) {
    mix(time);
    mix(src);
    mix(dst);
    mix(static_cast<std::uint64_t>(msg.token.type));
    mix(msg.token.initiator);
    mix(msg.token.object);
    mix(static_cast<std::uint64_t>(msg.token.params));
    mix(msg.value);
    mix(msg.version);
    mix(msg.hops);
    ++events;
  }
};

}  // namespace drsm::testing

#endif  // DRSM_TESTS_TEST_UTIL_H_
