// Tests for trace persistence.
#include <gtest/gtest.h>

#include <sstream>

#include "support/rng.h"

#include "workload/trace_io.h"

namespace drsm::workload {
namespace {

using fsm::OpKind;

TEST(TraceIo, RoundTrips) {
  GlobalSequenceGenerator gen(read_disturbance(0.3, 0.1, 2), 5, 3);
  const OperationTrace original = gen.record(500, 3);

  std::stringstream buffer;
  save_trace(buffer, original);
  const OperationTrace loaded = load_trace(buffer);

  ASSERT_EQ(loaded.num_clients, original.num_clients);
  ASSERT_EQ(loaded.num_objects, original.num_objects);
  ASSERT_EQ(loaded.entries.size(), original.entries.size());
  for (std::size_t i = 0; i < loaded.entries.size(); ++i) {
    EXPECT_EQ(loaded.entries[i].node, original.entries[i].node);
    EXPECT_EQ(loaded.entries[i].object, original.entries[i].object);
    EXPECT_EQ(loaded.entries[i].op, original.entries[i].op);
  }
}

TEST(TraceIo, AllOpKindsSurvive) {
  OperationTrace trace;
  trace.num_clients = 2;
  trace.num_objects = 1;
  trace.entries = {{0, 0, OpKind::kRead},
                   {1, 0, OpKind::kWrite},
                   {0, 0, OpKind::kEject},
                   {1, 0, OpKind::kSync}};
  std::stringstream buffer;
  save_trace(buffer, trace);
  const OperationTrace loaded = load_trace(buffer);
  ASSERT_EQ(loaded.entries.size(), 4u);
  EXPECT_EQ(loaded.entries[2].op, OpKind::kEject);
  EXPECT_EQ(loaded.entries[3].op, OpKind::kSync);
}

TEST(TraceIo, IgnoresCommentsAndBlankLines) {
  std::stringstream in(
      "drsm-trace v1\n"
      "clients 2\n"
      "objects 1\n"
      "# a comment\n"
      "\n"
      "0 0 w\n");
  const OperationTrace trace = load_trace(in);
  ASSERT_EQ(trace.entries.size(), 1u);
  EXPECT_EQ(trace.entries[0].op, OpKind::kWrite);
}

TEST(TraceIo, RejectsMalformedInput) {
  {
    std::stringstream in("not-a-trace\n");
    EXPECT_THROW(load_trace(in), Error);
  }
  {
    std::stringstream in("drsm-trace v1\n0 0 w\n");  // missing preamble
    EXPECT_THROW(load_trace(in), Error);
  }
  {
    std::stringstream in(
        "drsm-trace v1\nclients 2\nobjects 1\n0 0 x\n");  // bad op code
    EXPECT_THROW(load_trace(in), Error);
  }
  {
    std::stringstream in(
        "drsm-trace v1\nclients 2\nobjects 1\n9 0 w\n");  // bad node
    EXPECT_THROW(load_trace(in), Error);
  }
  EXPECT_THROW(load_trace_file("/nonexistent/trace.txt"), Error);
}

TEST(TraceIo, FuzzedInputNeverCrashes) {
  // Random garbage must either parse or throw drsm::Error — never crash
  // or loop.
  Rng rng(404);
  const std::string charset =
      "drsm-trace v1\nclients objects 0123456789 rwes#\t ";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string payload;
    const std::size_t len = rng.uniform_index(200);
    for (std::size_t i = 0; i < len; ++i)
      payload += charset[rng.uniform_index(charset.size())];
    std::stringstream in(payload);
    try {
      const OperationTrace trace = load_trace(in);
      for (const auto& e : trace.entries) {
        EXPECT_LE(e.node, trace.num_clients);
        EXPECT_LT(e.object, trace.num_objects);
      }
    } catch (const Error&) {
      // expected for malformed inputs
    }
  }
}

TEST(TraceIo, FileRoundTrip) {
  GlobalSequenceGenerator gen(ideal_workload(0.5), 7);
  const OperationTrace original = gen.record(100, 2);
  const std::string path = "/tmp/drsm_trace_io_test.txt";
  save_trace_file(path, original);
  const OperationTrace loaded = load_trace_file(path);
  EXPECT_EQ(loaded.entries.size(), original.entries.size());
}

}  // namespace
}  // namespace drsm::workload
