// Unit tests for the linear-algebra substrate: dense ops, LU solves,
// sparse CSR, and the stationary-distribution solvers (direct and power
// iteration) that the analytic engine rests on.
#include <gtest/gtest.h>

#include "linalg/lu.h"
#include "linalg/sparse.h"
#include "linalg/stationary.h"
#include "support/rng.h"

namespace drsm::linalg {
namespace {

TEST(Matrix, IdentityAndMultiply) {
  Matrix eye = Matrix::identity(3);
  Vector x = {1.0, 2.0, 3.0};
  EXPECT_EQ(eye.multiply(x), x);
  EXPECT_EQ(eye.multiply_transpose(x), x);
}

TEST(Matrix, MultiplyTransposeIsRowVectorTimesMatrix) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  m(1, 1) = 5;
  m(1, 2) = 6;
  const Vector y = m.multiply_transpose({1.0, 10.0});
  EXPECT_DOUBLE_EQ(y[0], 41.0);
  EXPECT_DOUBLE_EQ(y[1], 52.0);
  EXPECT_DOUBLE_EQ(y[2], 63.0);
}

TEST(Matrix, ArithmeticAndNorms) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1;
  a(1, 1) = -5;
  b(0, 0) = 2;
  EXPECT_DOUBLE_EQ((a + b)(0, 0), 3.0);
  EXPECT_DOUBLE_EQ((a - b)(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 5.0);
  EXPECT_DOUBLE_EQ(norm1({3.0, -4.0}), 7.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, -4.0}), 5.0);
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0}, {3.0, 4.0}), 11.0);
}

TEST(Lu, SolvesRandomSystems) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(12);
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 3.0;  // well-conditioned
    Vector x_true(n);
    for (double& v : x_true) v = rng.uniform(-2.0, 2.0);
    const Vector b = a.multiply(x_true);
    const Vector x = solve(a, b);
    EXPECT_LT(max_abs_diff(x, x_true), 1e-9);
  }
}

TEST(Lu, PivotsWhenDiagonalVanishes) {
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const Vector x = solve(a, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(x[0], 4.0);
  EXPECT_DOUBLE_EQ(x[1], 3.0);
}

TEST(Lu, DetectsSingularity) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(Lu{a}, Error);
}

TEST(Lu, Determinant) {
  Matrix a(2, 2);
  a(0, 0) = 3.0;
  a(0, 1) = 1.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_NEAR(Lu(a).determinant(), 10.0, 1e-12);
}

TEST(Csr, SumsDuplicatesAndMultiplies) {
  CsrMatrix m(2, 2,
              {{0, 0, 1.0}, {0, 0, 2.0}, {0, 1, 5.0}, {1, 1, 4.0}});
  EXPECT_EQ(m.nonzeros(), 3u);
  const Vector y = m.multiply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 8.0);
  EXPECT_DOUBLE_EQ(y[1], 4.0);
  const Vector yt = m.multiply_left({1.0, 1.0});
  EXPECT_DOUBLE_EQ(yt[0], 3.0);
  EXPECT_DOUBLE_EQ(yt[1], 9.0);
  const Matrix dense = m.to_dense();
  EXPECT_DOUBLE_EQ(dense(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(dense(0, 1), 5.0);
}

Matrix random_stochastic(std::size_t n, Rng& rng) {
  Matrix p(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      p(r, c) = rng.uniform() + 0.01;  // strictly positive -> ergodic
      sum += p(r, c);
    }
    for (std::size_t c = 0; c < n; ++c) p(r, c) /= sum;
  }
  return p;
}

TEST(Stationary, DirectSolveFixedPoint) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 2 + rng.uniform_index(20);
    const Matrix p = random_stochastic(n, rng);
    const Vector pi = stationary_distribution(p);
    EXPECT_NEAR(norm1(pi), 1.0, 1e-9);
    EXPECT_LT(max_abs_diff(p.multiply_transpose(pi), pi), 1e-9);
  }
}

TEST(Stationary, PowerIterationMatchesDirect) {
  Rng rng(37);
  const Matrix p = random_stochastic(40, rng);
  const Vector direct = stationary_distribution(p);
  StationaryOptions options;
  options.direct_limit = 1;  // force power iteration
  const Vector iterative = stationary_distribution(p, options);
  EXPECT_LT(max_abs_diff(direct, iterative), 1e-8);
}

TEST(Stationary, TwoStateChainHasKnownSolution) {
  // P = [[1-a, a], [b, 1-b]] -> pi = (b, a)/(a+b).
  const double a = 0.3, b = 0.1;
  Matrix p(2, 2);
  p(0, 0) = 1 - a;
  p(0, 1) = a;
  p(1, 0) = b;
  p(1, 1) = 1 - b;
  const Vector pi = stationary_distribution(p);
  EXPECT_NEAR(pi[0], b / (a + b), 1e-12);
  EXPECT_NEAR(pi[1], a / (a + b), 1e-12);
}

TEST(Stationary, HandlesTransientStates) {
  // State 0 drains into the recurrent pair {1, 2}.
  Matrix p(3, 3);
  p(0, 1) = 1.0;
  p(1, 1) = 0.5;
  p(1, 2) = 0.5;
  p(2, 1) = 1.0;
  const Vector pi = stationary_distribution(p);
  EXPECT_NEAR(pi[0], 0.0, 1e-9);
  EXPECT_NEAR(pi[1], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(pi[2], 1.0 / 3.0, 1e-9);
}

TEST(Stationary, PeriodicChainNeedsDampingAndGetsIt) {
  // Two-cycle: without damping power iteration would oscillate.
  Matrix p(2, 2);
  p(0, 1) = 1.0;
  p(1, 0) = 1.0;
  StationaryOptions options;
  options.direct_limit = 1;
  const Vector pi = stationary_distribution(p, options);
  EXPECT_NEAR(pi[0], 0.5, 1e-8);
  EXPECT_NEAR(pi[1], 0.5, 1e-8);
}

TEST(Stationary, WarmStartAgreesWithColdAndCutsIterations) {
  // A mildly sticky 4-state random-walk chain, solved via the power path
  // (direct_limit = 1).  Warm-starting from the converged cold answer must
  // reproduce it to 1e-10 and converge in (far) fewer iterations.
  Matrix p(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    p(i, i) = 0.5;
    p(i, (i + 1) % 4) = 0.3;
    p(i, (i + 3) % 4) = 0.2;
  }
  StationaryOptions options;
  options.direct_limit = 1;
  SolveStats cold_stats;
  options.stats = &cold_stats;
  const Vector cold = stationary_distribution(p, options);
  EXPECT_FALSE(cold_stats.warm_started);
  EXPECT_GT(cold_stats.iterations, 0u);

  SolveStats warm_stats;
  options.stats = &warm_stats;
  options.initial = &cold;
  const Vector warm = stationary_distribution(p, options);
  EXPECT_TRUE(warm_stats.warm_started);
  EXPECT_LE(warm_stats.iterations, cold_stats.iterations);
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < warm.size(); ++i)
    EXPECT_NEAR(warm[i], cold[i], 1e-10);
}

TEST(Stationary, WarmStartIgnoredOnSizeMismatchOrBadVector) {
  Matrix p(2, 2);
  p(0, 1) = 1.0;
  p(1, 0) = 1.0;
  StationaryOptions options;
  options.direct_limit = 1;

  Vector wrong_size(3, 1.0 / 3.0);
  SolveStats stats;
  options.stats = &stats;
  options.initial = &wrong_size;
  Vector pi = stationary_distribution(p, options);
  EXPECT_FALSE(stats.warm_started);
  EXPECT_NEAR(pi[0], 0.5, 1e-8);

  Vector zeros(2, 0.0);  // not normalizable -> cold start
  options.initial = &zeros;
  pi = stationary_distribution(p, options);
  EXPECT_FALSE(stats.warm_started);
  EXPECT_NEAR(pi[1], 0.5, 1e-8);
}

TEST(Stationary, CheckStochasticCatchesBadRows) {
  CsrMatrix good(2, 2, {{0, 0, 0.5}, {0, 1, 0.5}, {1, 0, 1.0}});
  EXPECT_NO_THROW(check_stochastic(good));
  CsrMatrix bad(2, 2, {{0, 0, 0.7}, {1, 1, 1.0}});
  EXPECT_THROW(check_stochastic(bad), Error);
}

}  // namespace
}  // namespace drsm::linalg
