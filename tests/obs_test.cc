// Tests for the observability layer: JSON emission, metrics instruments,
// the trace recorder ring buffer, the Chrome-trace exporter, and the
// zero-overhead (null sink) guarantee of the instrumented runtimes.
#include <cmath>
#include <cstddef>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_sim.h"
#include "sim/sequential.h"
#include "support/error.h"
#include "workload/generator.h"

namespace drsm {
namespace {

// -- tiny JSON well-formedness validator ------------------------------------
// Emission-only library (src/obs has no parser by design), so the tests
// carry their own: a recursive-descent checker that accepts exactly the
// JSON grammar. Returns the position after the value, or npos on error.

std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                          s[i] == '\r'))
    ++i;
  return i;
}

std::size_t check_value(const std::string& s, std::size_t i);

std::size_t check_string(const std::string& s, std::size_t i) {
  if (i >= s.size() || s[i] != '"') return std::string::npos;
  ++i;
  while (i < s.size() && s[i] != '"') {
    if (static_cast<unsigned char>(s[i]) < 0x20) return std::string::npos;
    if (s[i] == '\\') {
      ++i;
      if (i >= s.size()) return std::string::npos;
      const char c = s[i];
      if (c == 'u') {
        for (int k = 0; k < 4; ++k) {
          ++i;
          if (i >= s.size() || !std::isxdigit(static_cast<unsigned char>(s[i])))
            return std::string::npos;
        }
      } else if (c != '"' && c != '\\' && c != '/' && c != 'b' && c != 'f' &&
                 c != 'n' && c != 'r' && c != 't') {
        return std::string::npos;
      }
    }
    ++i;
  }
  return i < s.size() ? i + 1 : std::string::npos;
}

std::size_t check_number(const std::string& s, std::size_t i) {
  const std::size_t start = i;
  if (i < s.size() && s[i] == '-') ++i;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  if (i < s.size() && s[i] == '.') {
    ++i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  }
  return i > start ? i : std::string::npos;
}

std::size_t check_value(const std::string& s, std::size_t i) {
  i = skip_ws(s, i);
  if (i >= s.size()) return std::string::npos;
  const char c = s[i];
  if (c == '"') return check_string(s, i);
  if (c == '{' || c == '[') {
    const char close = c == '{' ? '}' : ']';
    ++i;
    i = skip_ws(s, i);
    if (i < s.size() && s[i] == close) return i + 1;
    for (;;) {
      if (c == '{') {
        i = check_string(s, skip_ws(s, i));
        if (i == std::string::npos) return std::string::npos;
        i = skip_ws(s, i);
        if (i >= s.size() || s[i] != ':') return std::string::npos;
        ++i;
      }
      i = check_value(s, i);
      if (i == std::string::npos) return std::string::npos;
      i = skip_ws(s, i);
      if (i >= s.size()) return std::string::npos;
      if (s[i] == close) return i + 1;
      if (s[i] != ',') return std::string::npos;
      ++i;
    }
  }
  if (s.compare(i, 4, "true") == 0) return i + 4;
  if (s.compare(i, 5, "false") == 0) return i + 5;
  if (s.compare(i, 4, "null") == 0) return i + 4;
  return check_number(s, i);
}

bool valid_json(const std::string& s) {
  const std::size_t end = check_value(s, 0);
  return end != std::string::npos && skip_ws(s, end) == s.size();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

// -- JSON emission ----------------------------------------------------------

TEST(Json, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("x\n\t"), "x\\n\\t");
  EXPECT_EQ(obs::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, NumbersRoundTripAndStayShort) {
  EXPECT_EQ(obs::json_number(0.0), "0");
  EXPECT_EQ(obs::json_number(0.1), "0.1");
  EXPECT_EQ(obs::json_number(-3.0), "-3");
  // Non-finite values have no JSON form.
  EXPECT_EQ(obs::json_number(std::nan("")), "null");
  // A value needing full precision still round-trips.
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::strtod(obs::json_number(v).c_str(), nullptr), v);
}

TEST(Json, ValueTreePreservesInsertionOrder) {
  obs::JsonValue v = obs::JsonValue::object();
  v["zebra"] = 1;
  v["apple"] = obs::JsonValue::array();
  v["apple"].push_back("x");
  v["apple"].push_back(true);
  const std::string text = v.dump();
  EXPECT_EQ(text, "{\"zebra\":1,\"apple\":[\"x\",true]}");
  EXPECT_TRUE(valid_json(text));
  EXPECT_TRUE(valid_json(v.dump(2)));
}

TEST(Json, MutationOfWrongKindThrows) {
  obs::JsonValue v = obs::JsonValue::array();
  EXPECT_THROW(v["key"], Error);
  obs::JsonValue o = obs::JsonValue::object();
  EXPECT_THROW(o.push_back(1), Error);
}

// -- Histogram --------------------------------------------------------------

TEST(Histogram, BucketBoundariesAreRightClosed) {
  // Buckets: (-inf,1], (1,2], (2,4], (4,inf)
  obs::Histogram h(std::vector<double>{1.0, 2.0, 4.0});
  h.record(1.0);  // boundary value lands in the lower bucket
  h.record(1.5);
  h.record(2.0);
  h.record(4.0);
  h.record(4.0001);  // overflow
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0001);
}

TEST(Histogram, PercentilesInterpolateAndClampToObservedRange) {
  obs::Histogram h(std::vector<double>{10.0, 20.0, 40.0});
  for (int i = 0; i < 100; ++i) h.record(15.0);
  // All mass in one bucket: every quantile stays within the observed range.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 15.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 15.0);
  EXPECT_DOUBLE_EQ(obs::Histogram().percentile(0.5), 0.0);  // empty
  EXPECT_THROW(h.percentile(1.5), Error);
}

TEST(Histogram, MergeIsExactForEqualBounds) {
  obs::Histogram a(std::vector<double>{1.0, 10.0});
  obs::Histogram b(std::vector<double>{1.0, 10.0});
  a.record(0.5);
  b.record(5.0);
  b.record(100.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 105.5);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);

  obs::Histogram c(std::vector<double>{2.0});
  EXPECT_THROW(a.merge(c), Error);
}

TEST(Histogram, MergeWithEmptySidesPreservesMoments) {
  // Empty into non-empty: a no-op, min/max untouched.
  obs::Histogram a(std::vector<double>{1.0, 10.0});
  a.record(5.0);
  a.merge(obs::Histogram(std::vector<double>{1.0, 10.0}));
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);

  // Non-empty into empty: the target adopts the source's min/max instead
  // of folding them against its zero-initialized fields.
  obs::Histogram b(std::vector<double>{1.0, 10.0});
  obs::Histogram c(std::vector<double>{1.0, 10.0});
  c.record(3.0);
  c.record(7.0);
  b.merge(c);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.min(), 3.0);
  EXPECT_DOUBLE_EQ(b.max(), 7.0);
  EXPECT_DOUBLE_EQ(b.sum(), 10.0);

  // Empty into empty stays empty.
  obs::Histogram d(std::vector<double>{1.0});
  d.merge(obs::Histogram(std::vector<double>{1.0}));
  EXPECT_EQ(d.count(), 0u);
  EXPECT_DOUBLE_EQ(d.min(), 0.0);
  EXPECT_DOUBLE_EQ(d.max(), 0.0);
  EXPECT_DOUBLE_EQ(d.percentile(0.99), 0.0);
}

TEST(Histogram, SingleBucketHistogramsMerge) {
  // No bounds at all: one overflow bucket, count/sum/min/max still exact.
  obs::Histogram a((std::vector<double>{}));
  obs::Histogram b((std::vector<double>{}));
  ASSERT_EQ(a.buckets().size(), 1u);
  a.record(2.0);
  b.record(8.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.buckets()[0], 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 8.0);
}

TEST(Histogram, ExponentialBoundsFormGeometricLadder) {
  const auto bounds = obs::Histogram::exponential_bounds(1.0, 2.0, 5);
  EXPECT_EQ(bounds, (std::vector<double>{1.0, 2.0, 4.0, 8.0, 16.0}));
  EXPECT_THROW(obs::Histogram::exponential_bounds(0.0, 2.0, 3), Error);
  // Bounds must be strictly increasing.
  EXPECT_THROW(obs::Histogram(std::vector<double>{1.0, 1.0}), Error);
}

// -- TimeSeries -------------------------------------------------------------

TEST(TimeSeries, ThinsByStrideDoublingInsteadOfTruncating) {
  obs::TimeSeries s(8);
  for (int i = 0; i < 100; ++i)
    s.sample(static_cast<double>(i), static_cast<double>(i));
  EXPECT_EQ(s.offered(), 100u);
  EXPECT_LE(s.points().size(), 8u);
  ASSERT_GE(s.points().size(), 2u);
  // Retained points must span the run, not just its head.
  EXPECT_DOUBLE_EQ(s.points().front().time, 0.0);
  EXPECT_GT(s.points().back().time, 50.0);
  EXPECT_DOUBLE_EQ(s.max_value(), 99.0);
  // Strictly increasing times.
  for (std::size_t i = 1; i < s.points().size(); ++i)
    EXPECT_LT(s.points()[i - 1].time, s.points()[i].time);
}

// -- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistry, LookupCreatesOnceAndKeepsReferencesStable) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("a.count");
  c.inc();
  // Force registry growth, then check the original reference still works.
  for (int i = 0; i < 50; ++i)
    registry.gauge("g" + std::to_string(i)).set(i);
  c.inc(2);
  EXPECT_EQ(registry.counter("a.count").value(), 3u);
  EXPECT_EQ(&registry.counter("a.count"), &c);
  EXPECT_EQ(registry.size(), 51u);
}

TEST(MetricsRegistry, KindMismatchThrowsAndFindReturnsNull) {
  obs::MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), Error);
  EXPECT_THROW(registry.histogram("x"), Error);
  EXPECT_THROW(registry.series("x"), Error);
  EXPECT_NE(registry.find_counter("x"), nullptr);
  EXPECT_EQ(registry.find_gauge("x"), nullptr);
  EXPECT_EQ(registry.find_counter("absent"), nullptr);
}

TEST(MetricsRegistry, MergeAccumulatesEveryInstrumentKind) {
  obs::MetricsRegistry a;
  a.counter("ops").inc(5);
  a.gauge("depth").set(2.0);
  a.histogram("lat", {1.0, 10.0}).record(0.5);
  a.series("util").sample(1.0, 0.25);

  obs::MetricsRegistry b;
  b.counter("ops").inc(3);
  b.counter("only_b").inc(1);
  b.gauge("depth").set(7.0);
  b.histogram("lat", {1.0, 10.0}).record(5.0);
  b.series("util").sample(2.0, 0.75);

  a.merge(b);
  EXPECT_EQ(a.counter("ops").value(), 8u);       // counters add
  EXPECT_EQ(a.counter("only_b").value(), 1u);    // absent names created
  EXPECT_DOUBLE_EQ(a.gauge("depth").value(), 7.0);  // gauges take other's
  EXPECT_EQ(a.histogram("lat").count(), 2u);     // histograms merge
  ASSERT_EQ(a.series("util").points().size(), 2u);
  EXPECT_DOUBLE_EQ(a.series("util").points().back().value, 0.75);

  // Merging per-task registries in task-index order is order-sensitive
  // only for gauges, which take the last-merged value by design.
  obs::MetricsRegistry c;
  c.gauge("depth").set(1.0);
  a.merge(c);
  EXPECT_DOUBLE_EQ(a.gauge("depth").value(), 1.0);
  EXPECT_THROW(a.merge(a), Error);  // self-merge is a bug
}

TEST(MetricsRegistry, SnapshotIsValidJsonGroupedByKind) {
  obs::MetricsRegistry registry;
  registry.counter("runs").inc(7);
  registry.gauge("acc").set(3.5);
  registry.histogram("lat").record(12.0);
  registry.series("depth").sample(1.0, 2.0);
  const std::string text = registry.to_json().dump(2);
  EXPECT_TRUE(valid_json(text));
  EXPECT_NE(text.find("\"runs\": 7"), std::string::npos);
  EXPECT_NE(text.find("\"acc\": 3.5"), std::string::npos);
  EXPECT_NE(text.find("\"histograms\""), std::string::npos);
  EXPECT_NE(text.find("\"series\""), std::string::npos);
}

// -- TraceRecorder ring buffer ----------------------------------------------

obs::TraceEvent numbered_event(std::uint64_t i) {
  obs::TraceEvent event;
  event.time = static_cast<double>(i);
  event.msg_id = i;
  return event;
}

TEST(TraceRecorder, RingBufferDropsOldestOnWraparound) {
  obs::TraceRecorder recorder(4);
  for (std::uint64_t i = 0; i < 10; ++i)
    recorder.on_event(numbered_event(i));
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.total(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
  // Oldest-first iteration yields the last four events in order.
  for (std::size_t i = 0; i < recorder.size(); ++i)
    EXPECT_EQ(recorder.event(i).msg_id, 6u + i);
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
  recorder.on_event(numbered_event(42));
  ASSERT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.event(0).msg_id, 42u);
}

TEST(TraceRecorder, ExportsAreWellFormed) {
  obs::TraceRecorder recorder;
  sim::SequentialRuntime runtime(protocols::ProtocolKind::kWriteThrough,
                                 {3, {100.0, 30.0}, 1}, {0, 1});
  runtime.set_sink(&recorder);
  runtime.execute(0, fsm::OpKind::kRead);
  runtime.execute(1, fsm::OpKind::kWrite, 5);
  ASSERT_GT(recorder.size(), 0u);

  EXPECT_TRUE(valid_json(recorder.to_chrome_trace()));
  for (const std::string& line :
       split_lines(recorder.to_jsonl()))
    EXPECT_TRUE(valid_json(line)) << line;
}

// -- runtime integration ----------------------------------------------------

sim::SimStats traced_run(obs::EventSink* sink, obs::MetricsRegistry* metrics,
                         std::size_t ops = 300) {
  sim::SystemConfig config;
  config.num_clients = 3;
  config.costs.s = 100.0;
  config.costs.p = 30.0;
  config.num_objects = 2;
  sim::SimOptions options;
  options.max_ops = ops;
  options.warmup_ops = ops / 4;
  options.seed = 99;
  options.latency.min_latency = 1;
  options.latency.max_latency = 3;
  sim::EventSimulator simulator(protocols::ProtocolKind::kWriteOnce, config,
                                options);
  if (sink != nullptr) simulator.set_sink(sink);
  if (metrics != nullptr) simulator.set_metrics(metrics);
  const auto spec = workload::read_disturbance(0.3, 0.1, 2);
  workload::ConcurrentDriver driver(spec, 5, config.num_objects);
  return simulator.run(driver);
}

TEST(SimulatorTracing, EverySimMessageAppearsAsOneSendRecvPair) {
  obs::TraceRecorder recorder(1 << 20);
  const sim::SimStats stats = traced_run(&recorder, nullptr);
  ASSERT_GT(stats.messages, 0u);

  std::size_t sends = 0, recvs = 0;
  for (std::size_t i = 0; i < recorder.size(); ++i) {
    const obs::TraceEvent& event = recorder.event(i);
    if (event.kind == obs::EventKind::kMsgSend) {
      ++sends;
      EXPECT_NE(event.msg_id, 0u);
    }
    if (event.kind == obs::EventKind::kMsgRecv) ++recvs;
  }
  EXPECT_EQ(sends, stats.messages);
  EXPECT_EQ(recvs, stats.messages);
}

TEST(SimulatorTracing, NullSinkRunIsIdenticalToTracedRun) {
  const sim::SimStats plain = traced_run(nullptr, nullptr);
  obs::TraceRecorder recorder(1 << 20);
  obs::MetricsRegistry metrics;
  const sim::SimStats traced = traced_run(&recorder, &metrics);

  // Tracing must observe, never perturb: identical simulation outcome.
  EXPECT_EQ(plain.measured_ops, traced.measured_ops);
  EXPECT_DOUBLE_EQ(plain.measured_cost, traced.measured_cost);
  EXPECT_EQ(plain.messages, traced.messages);
  EXPECT_EQ(plain.end_time, traced.end_time);
  EXPECT_EQ(plain.message_mix, traced.message_mix);

  // And the published metrics agree with the returned stats.
  ASSERT_NE(metrics.find_counter("sim.messages"), nullptr);
  EXPECT_EQ(metrics.find_counter("sim.messages")->value(), traced.messages);
  ASSERT_NE(metrics.find_gauge("sim.acc"), nullptr);
  EXPECT_DOUBLE_EQ(metrics.find_gauge("sim.acc")->value(), traced.acc());
  ASSERT_NE(metrics.find_histogram("sim.latency"), nullptr);
  EXPECT_EQ(metrics.find_histogram("sim.latency")->count(),
            traced.measured_ops);
}

TEST(SimulatorTracing, LegacyObserverRidesTheSinkChain) {
  sim::SystemConfig config;
  config.num_clients = 2;
  config.costs.s = 100.0;
  config.costs.p = 30.0;
  sim::SimOptions options;
  options.max_ops = 50;
  options.warmup_ops = 0;
  options.seed = 1;
  sim::EventSimulator simulator(protocols::ProtocolKind::kWriteThrough,
                                config, options);
  obs::TraceRecorder recorder;
  std::size_t observed = 0;
  simulator.set_observer([&](SimTime, NodeId, NodeId, const fsm::Message&) {
    ++observed;
  });
  simulator.set_sink(&recorder);
  const auto spec = workload::read_disturbance(0.4, 0.1, 1);
  workload::ConcurrentDriver driver(spec, 3);
  const sim::SimStats stats = simulator.run(driver);
  EXPECT_EQ(observed, stats.messages);
  std::size_t recorded_sends = 0;
  for (std::size_t i = 0; i < recorder.size(); ++i)
    recorded_sends +=
        recorder.event(i).kind == obs::EventKind::kMsgSend ? 1 : 0;
  EXPECT_EQ(recorded_sends, stats.messages);
}

TEST(SequentialTracing, PairsMessagesAndReportsTransitions) {
  obs::TraceRecorder recorder;
  sim::SequentialRuntime runtime(protocols::ProtocolKind::kWriteThrough,
                                 {3, {100.0, 30.0}, 1}, {0, 1});
  runtime.set_sink(&recorder);
  const sim::OpResult read = runtime.execute(0, fsm::OpKind::kRead);

  std::size_t sends = 0, recvs = 0, transitions = 0;
  for (std::size_t i = 0; i < recorder.size(); ++i) {
    switch (recorder.event(i).kind) {
      case obs::EventKind::kMsgSend: ++sends; break;
      case obs::EventKind::kMsgRecv: ++recvs; break;
      case obs::EventKind::kStateTransition: ++transitions; break;
      default: break;
    }
  }
  EXPECT_EQ(sends, read.messages);
  EXPECT_EQ(recvs, read.messages);
  // The cold read flips the reader's copy INVALID -> VALID.
  EXPECT_GE(transitions, 1u);
}

}  // namespace
}  // namespace drsm
