// Unit tests for workload characterization: the three deviations'
// sample spaces, generators, trace recording/replay, and parameter
// estimation from traces.
#include <gtest/gtest.h>

#include "workload/generator.h"
#include "workload/spec.h"

namespace drsm::workload {
namespace {

using fsm::OpKind;

TEST(Spec, IdealWorkloadShape) {
  const WorkloadSpec spec = ideal_workload(0.3);
  ASSERT_EQ(spec.events.size(), 2u);
  EXPECT_EQ(spec.roster(), std::vector<NodeId>{0});
  EXPECT_DOUBLE_EQ(spec.events[0].probability, 0.3);
  EXPECT_DOUBLE_EQ(spec.events[1].probability, 0.7);
}

TEST(Spec, ReadDisturbanceShape) {
  const WorkloadSpec spec = read_disturbance(0.2, 0.1, 3);
  ASSERT_EQ(spec.events.size(), 5u);
  EXPECT_EQ(spec.roster(), (std::vector<NodeId>{0, 1, 2, 3}));
  // Activity-center read probability is 1 - p - a*sigma.
  EXPECT_NEAR(spec.events[1].probability, 1.0 - 0.2 - 3 * 0.1, 1e-12);
  for (std::size_t k = 2; k < 5; ++k) {
    EXPECT_EQ(spec.events[k].op, OpKind::kRead);
    EXPECT_DOUBLE_EQ(spec.events[k].probability, 0.1);
  }
}

TEST(Spec, WriteDisturbanceShape) {
  const WorkloadSpec spec = write_disturbance(0.1, 0.05, 2);
  ASSERT_EQ(spec.events.size(), 4u);
  EXPECT_EQ(spec.events[2].op, OpKind::kWrite);
  EXPECT_EQ(spec.events[3].op, OpKind::kWrite);
}

TEST(Spec, MultipleActivityCentersShape) {
  const WorkloadSpec spec = multiple_activity_centers(0.4, 4);
  ASSERT_EQ(spec.events.size(), 8u);
  double write_total = 0.0;
  for (const EventSpec& e : spec.events)
    if (e.op == OpKind::kWrite) write_total += e.probability;
  EXPECT_NEAR(write_total, 0.4, 1e-12);
}

TEST(Spec, RejectsOverfullProbabilities) {
  EXPECT_THROW(read_disturbance(0.8, 0.2, 2), Error);
  EXPECT_THROW(write_disturbance(0.5, 0.3, 2), Error);
  EXPECT_THROW(ideal_workload(1.5), Error);
  EXPECT_THROW(multiple_activity_centers(0.5, 0), Error);
}

TEST(Generator, FrequenciesMatchSampleSpace) {
  const WorkloadSpec spec = read_disturbance(0.25, 0.1, 2);
  GlobalSequenceGenerator gen(spec, 99);
  std::size_t ac_writes = 0, disturber_reads = 0, total = 100000;
  for (std::size_t i = 0; i < total; ++i) {
    const TraceEntry e = gen.next();
    if (e.node == 0 && e.op == OpKind::kWrite) ++ac_writes;
    if (e.node >= 1 && e.op == OpKind::kRead) ++disturber_reads;
  }
  EXPECT_NEAR(ac_writes / double(total), 0.25, 0.01);
  EXPECT_NEAR(disturber_reads / double(total), 0.2, 0.01);
}

TEST(Generator, SpreadsAccessesOverObjects) {
  GlobalSequenceGenerator gen(ideal_workload(0.5), 3, /*num_objects=*/4);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[gen.next().object];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Generator, ZipfSkewConcentratesAccesses) {
  const auto weights = zipf_weights(8, 1.2);
  ASSERT_EQ(weights.size(), 8u);
  EXPECT_DOUBLE_EQ(weights[0], 1.0);
  EXPECT_GT(weights[0], weights[7]);

  GlobalSequenceGenerator gen(ideal_workload(0.5), 9, 8, weights);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 40000; ++i) ++counts[gen.next().object];
  // Hot object dominates; the popularity ranking is monotone.
  EXPECT_GT(counts[0], 3 * counts[7]);
  EXPECT_GT(counts[0], counts[3]);
  // Expected share of object 0: w0 / sum(w).
  double total_weight = 0.0;
  for (double w : weights) total_weight += w;
  EXPECT_NEAR(counts[0] / 40000.0, 1.0 / total_weight, 0.02);
}

TEST(Generator, ZipfZeroExponentIsUniform) {
  const auto weights = zipf_weights(4, 0.0);
  for (double w : weights) EXPECT_DOUBLE_EQ(w, 1.0);
  EXPECT_THROW(zipf_weights(0, 1.0), Error);
  EXPECT_THROW(GlobalSequenceGenerator(ideal_workload(0.5), 1, 4,
                                       {1.0, 2.0}),
               Error);  // weight/object mismatch
}

TEST(Trace, RecordAndEstimateParameters) {
  const WorkloadSpec spec = read_disturbance(0.3, 0.05, 2);
  GlobalSequenceGenerator gen(spec, 123);
  const OperationTrace trace = gen.record(50000, /*num_clients=*/3);
  ASSERT_EQ(trace.entries.size(), 50000u);
  const auto est = trace.estimate_parameters();
  EXPECT_NEAR(est.write_probability, 0.3, 0.02);
  EXPECT_NEAR(est.node_read_share[1], 0.05, 0.01);
  EXPECT_NEAR(est.node_write_share[0], 0.3, 0.02);
}

TEST(Trace, ReplayPreservesPerNodeProgramOrder) {
  OperationTrace trace;
  trace.num_clients = 2;
  trace.entries = {{0, 0, OpKind::kWrite},
                   {1, 0, OpKind::kRead},
                   {0, 0, OpKind::kRead}};
  TraceReplayDriver driver(trace);
  auto op1 = driver.next_op(0);
  ASSERT_TRUE(op1.has_value());
  EXPECT_EQ(op1->kind, OpKind::kWrite);
  auto op2 = driver.next_op(0);
  ASSERT_TRUE(op2.has_value());
  EXPECT_EQ(op2->kind, OpKind::kRead);
  EXPECT_FALSE(driver.next_op(0).has_value());
  EXPECT_TRUE(driver.next_op(1).has_value());
  EXPECT_FALSE(driver.next_op(5).has_value());
}

TEST(ConcurrentDriver, RatesFollowNodeShares) {
  const WorkloadSpec spec = read_disturbance(0.5, 0.125, 2);
  ConcurrentDriver driver(spec, 7, 1, /*mean_think_time=*/16.0);
  // Node 0 holds share 0.75, nodes 1-2 hold 0.125 each; expected think
  // times are inversely proportional.
  double t0 = 0.0, t1 = 0.0;
  const int reps = 20000;
  for (int i = 0; i < reps; ++i) {
    t0 += static_cast<double>(driver.next_op(0)->think_time);
    t1 += static_cast<double>(driver.next_op(1)->think_time);
  }
  // Ceil-rounding biases small means up slightly; compare loosely.
  EXPECT_NEAR(t0 / reps, 16.0 / 0.75, 2.0);
  EXPECT_NEAR(t1 / reps, 16.0 / 0.125, 6.0);
  EXPECT_FALSE(driver.next_op(3).has_value());  // silent node
}

TEST(ConcurrentDriver, OpMixConditionalOnNode) {
  const WorkloadSpec spec = write_disturbance(0.2, 0.1, 1);
  ConcurrentDriver driver(spec, 11);
  int writes = 0;
  const int reps = 20000;
  for (int i = 0; i < reps; ++i)
    if (driver.next_op(0)->kind == OpKind::kWrite) ++writes;
  // Node 0: P(write | node 0) = 0.2 / (0.2 + 0.7).
  EXPECT_NEAR(writes / double(reps), 0.2 / 0.9, 0.02);
  // Node 1 only writes.
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(driver.next_op(1)->kind, OpKind::kWrite);
}

}  // namespace
}  // namespace drsm::workload
