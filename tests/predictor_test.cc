// Tests for trace-driven prediction and the per-object placement advisor,
// plus sequencer-issued operations in the analytic model (traces tr5/tr6).
#include <gtest/gtest.h>

#include "analytic/predictor.h"
#include "dsm/dsm.h"
#include "workload/generator.h"

namespace drsm {
namespace {

using fsm::OpKind;
using protocols::ProtocolKind;

sim::SystemConfig make_config(std::size_t n, double s = 100.0,
                              double p = 30.0) {
  sim::SystemConfig config;
  config.num_clients = n;
  config.costs.s = s;
  config.costs.p = p;
  return config;
}

// ---------------------------------------------------------------------------
// Sequencer events in the analytic model.
// ---------------------------------------------------------------------------

TEST(SequencerEvents, WriteThroughTr5Tr6Costs) {
  // A workload where only the sequencer operates: reads are tr5 (free),
  // writes are tr6 (N invalidations), so acc = p * N.
  const std::size_t n = 7;
  analytic::AccSolver solver(make_config(n));
  for (double p : {0.0, 0.3, 1.0}) {
    workload::WorkloadSpec spec;
    spec.name = "sequencer-only";
    spec.events = {{static_cast<NodeId>(n), OpKind::kWrite, p},
                   {static_cast<NodeId>(n), OpKind::kRead, 1.0 - p}};
    EXPECT_NEAR(solver.acc(ProtocolKind::kWriteThrough, spec),
                p * static_cast<double>(n), 1e-9)
        << "p=" << p;
  }
}

TEST(SequencerEvents, MixedClientAndSequencerWorkload) {
  // One client and the sequencer alternate writes: every client read
  // misses after a sequencer write and vice versa.
  const std::size_t n = 4;
  analytic::AccSolver solver(make_config(n));
  workload::WorkloadSpec spec;
  spec.name = "client-plus-sequencer";
  spec.events = {{0, OpKind::kWrite, 0.2},
                 {0, OpKind::kRead, 0.4},
                 {static_cast<NodeId>(n), OpKind::kWrite, 0.1},
                 {static_cast<NodeId>(n), OpKind::kRead, 0.3}};
  const double acc = solver.acc(ProtocolKind::kWriteThrough, spec);
  EXPECT_GT(acc, 0.0);
  // Upper bound: every write at full trace cost plus every client read
  // missing.
  EXPECT_LT(acc, 0.2 * (30 + 4) + 0.1 * 4 + 0.4 * 102 + 1e-9);
}

// ---------------------------------------------------------------------------
// Trace-driven prediction.
// ---------------------------------------------------------------------------

TEST(Predictor, SpecFromTraceRecoversGeneratingFrequencies) {
  const auto truth = workload::read_disturbance(0.3, 0.1, 2);
  workload::GlobalSequenceGenerator gen(truth, 5);
  const auto trace = gen.record(60000, 3);
  const auto spec = analytic::spec_from_trace(trace);
  // Compare event probabilities by (node, op).
  for (const auto& expected : truth.events) {
    double found = 0.0;
    for (const auto& e : spec.events)
      if (e.node == expected.node && e.op == expected.op)
        found = e.probability;
    EXPECT_NEAR(found, expected.probability, 0.01)
        << "node " << expected.node;
  }
}

TEST(Predictor, PredictionMatchesTrueWorkloadAcc) {
  const auto config = make_config(3);
  const auto truth = workload::read_disturbance(0.25, 0.15, 2);
  workload::GlobalSequenceGenerator gen(truth, 9, /*num_objects=*/4);
  const auto trace = gen.record(80000, 3);

  analytic::AccSolver solver(config);
  for (ProtocolKind kind :
       {ProtocolKind::kWriteOnce, ProtocolKind::kBerkeley}) {
    const double true_acc = solver.acc(kind, truth);
    const auto prediction =
        analytic::predict_from_trace(kind, config, trace);
    EXPECT_NEAR(prediction.acc, true_acc, 0.03 * true_acc)
        << protocols::to_string(kind);
    // Uniform object access: shares ~ 1/4 each.
    for (double share : prediction.object_share)
      EXPECT_NEAR(share, 0.25, 0.02);
  }
}

TEST(Predictor, PredictionMatchesReplayMeasurement) {
  // Replay the trace through the DSM and compare measured average cost
  // against the trace-driven prediction.
  const auto config = make_config(3);
  const auto truth = workload::read_disturbance(0.3, 0.2, 2);
  workload::GlobalSequenceGenerator gen(truth, 21, /*num_objects=*/2);
  const auto trace = gen.record(30000, 3);

  const auto prediction = analytic::predict_from_trace(
      ProtocolKind::kWriteThroughV, config, trace);

  dsm::SharedMemory::Options options;
  options.protocol = ProtocolKind::kWriteThroughV;
  options.num_clients = 3;
  options.num_objects = 2;
  options.costs = config.costs;
  dsm::SharedMemory memory(options);
  std::uint64_t value = 0;
  // Warm up with a prefix, then measure.
  std::size_t i = 0;
  for (; i < 2000; ++i) {
    const auto& e = trace.entries[i];
    if (e.op == OpKind::kWrite)
      memory.write(e.node, e.object, ++value);
    else
      memory.read(e.node, e.object);
  }
  memory.reset_counters();
  for (; i < trace.entries.size(); ++i) {
    const auto& e = trace.entries[i];
    if (e.op == OpKind::kWrite)
      memory.write(e.node, e.object, ++value);
    else
      memory.read(e.node, e.object);
  }
  EXPECT_NEAR(memory.average_cost(), prediction.acc,
              0.05 * prediction.acc);
}

// ---------------------------------------------------------------------------
// Per-object protocols and the placement advisor.
// ---------------------------------------------------------------------------

workload::OperationTrace heterogeneous_trace(std::size_t ops) {
  // Object 0: single hot writer (client 0) -> ownership protocols free.
  // Object 1: one writer + broad readers with big objects -> update wins.
  workload::OperationTrace trace;
  trace.num_clients = 4;
  trace.num_objects = 2;
  Rng rng(77);
  for (std::size_t i = 0; i < ops; ++i) {
    if (rng.bernoulli(0.5)) {
      trace.entries.push_back(
          {0, 0, rng.bernoulli(0.7) ? OpKind::kWrite : OpKind::kRead});
    } else {
      if (rng.bernoulli(0.1)) {
        trace.entries.push_back({0, 1, OpKind::kWrite});
      } else {
        trace.entries.push_back(
            {static_cast<NodeId>(1 + rng.uniform_index(3)), 1,
             OpKind::kRead});
      }
    }
  }
  return trace;
}

TEST(Placement, PerObjectChoiceBeatsEveryUniformChoice) {
  const auto config = make_config(4, /*s=*/5000.0, /*p=*/10.0);
  const auto trace = heterogeneous_trace(20000);
  const auto rec = analytic::recommend_placement(config, trace);
  ASSERT_EQ(rec.object_protocol.size(), 2u);
  // Object 0 (private writes) wants an ownership protocol; object 1
  // (read-shared, huge S) wants an update protocol.
  EXPECT_TRUE(rec.object_protocol[0] == ProtocolKind::kWriteOnce ||
              rec.object_protocol[0] == ProtocolKind::kSynapse ||
              rec.object_protocol[0] == ProtocolKind::kIllinois ||
              rec.object_protocol[0] == ProtocolKind::kBerkeley)
      << protocols::to_string(rec.object_protocol[0]);
  EXPECT_TRUE(rec.object_protocol[1] == ProtocolKind::kDragon ||
              rec.object_protocol[1] == ProtocolKind::kFirefly)
      << protocols::to_string(rec.object_protocol[1]);
  EXPECT_LT(rec.acc, rec.uniform_best_acc - 1e-9);
}

TEST(Placement, SharedMemoryHonorsPerObjectProtocols) {
  dsm::SharedMemory::Options options;
  options.protocol = ProtocolKind::kWriteThrough;
  options.num_clients = 3;
  options.num_objects = 3;
  dsm::SharedMemory memory(options);
  memory.write(0, 0, 10);
  memory.write(0, 1, 11);

  memory.switch_protocol(1, ProtocolKind::kDragon);
  EXPECT_EQ(memory.object_protocol(0), ProtocolKind::kWriteThrough);
  EXPECT_EQ(memory.object_protocol(1), ProtocolKind::kDragon);
  // Values survive the per-object switch; behaviour follows the protocol.
  EXPECT_EQ(memory.read(2, 1), 11u);
  memory.write(1, 1, 12);
  // Dragon: update broadcast, every replica stays readable for free.
  memory.reset_counters();
  EXPECT_EQ(memory.read(2, 1), 12u);
  EXPECT_DOUBLE_EQ(memory.last_op_cost(), 0.0);
  // Object 0 still runs Write-Through: the read after a write misses.
  memory.write(1, 0, 13);
  EXPECT_EQ(memory.read(1, 0), 13u);
  EXPECT_DOUBLE_EQ(memory.last_op_cost(),
                   memory.options().costs.s + 2.0);
}

TEST(Placement, AppliedRecommendationMatchesPredictedCost) {
  const auto config = make_config(4, 5000.0, 10.0);
  const auto trace = heterogeneous_trace(30000);
  const auto rec = analytic::recommend_placement(config, trace);

  dsm::SharedMemory::Options options;
  options.protocol = rec.object_protocol[0];
  options.num_clients = 4;
  options.num_objects = 2;
  options.costs = config.costs;
  dsm::SharedMemory memory(options);
  for (ObjectId j = 0; j < 2; ++j)
    memory.switch_protocol(j, rec.object_protocol[j]);

  std::uint64_t value = 0;
  std::size_t i = 0;
  for (; i < 3000; ++i) {  // warmup
    const auto& e = trace.entries[i];
    if (e.op == OpKind::kWrite)
      memory.write(e.node, e.object, ++value);
    else
      memory.read(e.node, e.object);
  }
  memory.reset_counters();
  for (; i < trace.entries.size(); ++i) {
    const auto& e = trace.entries[i];
    if (e.op == OpKind::kWrite)
      memory.write(e.node, e.object, ++value);
    else
      memory.read(e.node, e.object);
  }
  EXPECT_NEAR(memory.average_cost(), rec.acc, 0.06 * rec.acc + 1e-9);
}

}  // namespace
}  // namespace drsm
