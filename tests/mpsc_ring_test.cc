// MpscRing: FIFO/capacity semantics single-threaded, a differential check
// against the mutex+deque reference queue, and multi-producer stress with
// per-producer FIFO verification — the property the sharded runtime's
// per-object ordering rests on.  Runs under TSan via the `concurrency`
// ctest label.
#include "sim/mpsc_ring.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "support/rng.h"

namespace drsm::sim {
namespace {

TEST(MpscRingTest, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(1).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(MpscRing<int>(4096).capacity(), 4096u);
}

TEST(MpscRingTest, FifoSingleThreaded) {
  MpscRing<int> ring(16);
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(ring.try_push(i));
  int out[16];
  ASSERT_EQ(ring.pop_batch(out, 16), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], i);
  EXPECT_FALSE(ring.can_pop());
}

TEST(MpscRingTest, FullRingRejectsAndCountsStalls) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_EQ(ring.full_stalls(), 2u);

  int out[4];
  ASSERT_EQ(ring.pop_batch(out, 1), 1u);
  EXPECT_EQ(out[0], 0);
  EXPECT_TRUE(ring.try_push(4));  // freed slot is reusable
  ASSERT_EQ(ring.pop_batch(out, 4), 4u);
  EXPECT_EQ(out[3], 4);
}

TEST(MpscRingTest, WrapsManyTimes) {
  MpscRing<std::uint64_t> ring(8);
  std::uint64_t next_expected = 0;
  std::uint64_t pushed = 0;
  std::uint64_t out[8];
  for (int round = 0; round < 1000; ++round) {
    while (ring.try_push(pushed)) ++pushed;
    const std::size_t n = ring.pop_batch(out, 8);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], next_expected++);
  }
  EXPECT_EQ(next_expected, pushed);
}

// The reference queue and the ring must agree on every accept/reject and
// on every popped value for any interleaving of pushes and batched pops.
TEST(MpscRingTest, DifferentialAgainstMutexQueue) {
  MpscRing<std::uint64_t> ring(8);
  MutexQueue<std::uint64_t> reference(ring.capacity());
  Rng rng(0xd1ffu);
  std::uint64_t next_value = 0;
  std::uint64_t ring_out[8];
  std::uint64_t ref_out[8];
  for (int step = 0; step < 20000; ++step) {
    if (rng.uniform() < 0.55) {
      const std::uint64_t v = next_value++;
      EXPECT_EQ(ring.try_push(v), reference.try_push(v));
    } else {
      const std::size_t max = 1 + rng.uniform_index(8);
      const std::size_t n = ring.pop_batch(ring_out, max);
      ASSERT_EQ(n, reference.pop_batch(ref_out, max));
      for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(ring_out[i], ref_out[i]);
    }
  }
}

// Multi-producer stress through a deliberately small ring: producers use
// the blocking push (parking on the space gate), the consumer parks on the
// empty gate — both wakeup paths and the full/empty transitions get
// hammered.  Per-producer FIFO and exactly-once delivery are asserted.
TEST(MpscRingTest, MultiProducerStressPreservesPerProducerFifo) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  MpscRing<std::uint64_t> ring(64);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i)
        ring.push(p << 32 | i);
    });
  }

  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t received = 0;
  std::uint64_t out[64];
  while (received < kProducers * kPerProducer) {
    const std::size_t n = ring.pop_batch(out, 64);
    if (n == 0) {
      const std::uint32_t ticket = ring.prepare_wait();
      if (ring.can_pop()) {
        ring.cancel_wait();
        continue;
      }
      ring.wait(ticket);
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t p = out[i] >> 32;
      const std::uint64_t seq = out[i] & 0xffffffffu;
      ASSERT_LT(p, kProducers);
      ASSERT_EQ(seq, next_seq[p]) << "producer " << p << " reordered";
      ++next_seq[p];
    }
    received += n;
  }
  for (auto& t : producers) t.join();
  for (std::size_t p = 0; p < kProducers; ++p)
    EXPECT_EQ(next_seq[p], kPerProducer);
  EXPECT_FALSE(ring.can_pop());
}

// poke() must dislodge a consumer parked on an empty ring even though no
// data arrives — the shutdown path of every loop built on the ring.
TEST(MpscRingTest, PokeWakesParkedConsumer) {
  MpscRing<int> ring(8);
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    const std::uint32_t ticket = ring.prepare_wait();
    if (!ring.can_pop()) ring.wait(ticket);
    else ring.cancel_wait();
    woke.store(true);
  });
  while (!woke.load()) {
    ring.poke();
    std::this_thread::yield();
  }
  consumer.join();
  EXPECT_TRUE(woke.load());
}

}  // namespace
}  // namespace drsm::sim
