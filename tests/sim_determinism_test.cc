// Determinism guarantees of the event-engine overhaul:
//
//  * golden trajectories — the time wheel reproduces, message for
//    message, the exact trajectories the pre-overhaul std::function /
//    std::priority_queue engine produced (constants baked from a run of
//    that engine);
//  * scheduler equivalence — full simulations under kTimeWheel and the
//    order-isomorphic kBinaryHeap reference match event for event on all
//    eight protocols;
//  * FIFO channels — per (src, dst) pair, messages are delivered in send
//    order even under random latency;
//  * empty measurement windows — latency statistics degrade to zeros, not
//    garbage, when no operation completes after warmup.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "protocols/protocol.h"
#include "sim/event_sim.h"
#include "test_util.h"
#include "workload/generator.h"

namespace drsm {
namespace {

using protocols::ProtocolKind;
using sim::EventSimulator;
using sim::SimOptions;
using sim::SimStats;
using sim::SystemConfig;

// The fixed scenario the goldens were captured under (N = 3 clients +
// sequencer, 4 objects, random latency 1..5, processing time 2).
SystemConfig golden_config() {
  SystemConfig config;
  config.num_clients = 3;
  config.costs.s = 100.0;
  config.costs.p = 30.0;
  config.num_objects = 4;
  return config;
}

SimOptions golden_options() {
  SimOptions options;
  options.max_ops = 6000;
  options.warmup_ops = 500;
  options.seed = 2026;
  options.latency.min_latency = 1;
  options.latency.max_latency = 5;
  options.latency.processing_time = 2;
  return options;
}

using testing::Trajectory;

// Runs the golden scenario and folds every observed message into an
// FNV-1a hash over (time, src, dst, five-tuple, payload).
std::pair<Trajectory, SimStats> run_golden(
    ProtocolKind kind, sim::SchedulerKind scheduler,
    sim::DispatchKind dispatch = sim::DispatchKind::kDenseTable) {
  SimOptions options = golden_options();
  options.scheduler = scheduler;
  options.dispatch = dispatch;
  EventSimulator simulator(kind, golden_config(), options);
  Trajectory traj;
  simulator.set_observer([&](SimTime time, NodeId src, NodeId dst,
                             const fsm::Message& msg) {
    traj.mix_message(static_cast<std::uint64_t>(time), src, dst, msg);
  });
  workload::ConcurrentDriver driver(workload::read_disturbance(0.3, 0.2, 2),
                                    options.seed ^ 0xBEEF,
                                    golden_config().num_objects);
  SimStats stats = simulator.run(driver);
  return {traj, std::move(stats)};
}

struct Golden {
  ProtocolKind kind;
  std::uint64_t hash;
  std::uint64_t events;
  double measured_cost;
  std::size_t measured_ops;
  std::uint64_t messages;
  double latency_sum;
  std::uint64_t end_time;
};

// Captured from the pre-overhaul engine (std::priority_queue of
// heap-allocated closures) at the commit introducing the time wheel.
// These constants are the bit-identity contract: they change only when a
// protocol machine is intentionally fixed, in which case the entry is
// regenerated and the fix noted next to it.
const Golden kGoldens[] = {
    {ProtocolKind::kWriteThrough, 0x5dea33ffed82effaULL, 10087u, 274913.0,
     5500u, 10087u, 32817.0, 397566u},
    {ProtocolKind::kWriteThroughV, 0x768ae5102a8bda17ULL, 11759u, 192405.0,
     5500u, 11759u, 40796.0, 402624u},
    {ProtocolKind::kWriteOnce, 0x480a06bf1c4644a8ULL, 8992u, 208782.0, 5501u,
     8992u, 42875.0, 400231u},
    {ProtocolKind::kSynapse, 0x5e81a75c5007a66eULL, 12228u, 383670.0, 5500u,
     12228u, 58036.0, 405974u},
    {ProtocolKind::kIllinois, 0x981aca4a7977cde3ULL, 8992u, 233012.0, 5501u,
     8992u, 42875.0, 400231u},
    // Berkeley regenerated after the grant/invalidation race fix (the
    // inval_raced_ handling in berkeley.cc): a crossing W-INV no longer
    // lets a stale R-GNT resurrect a VALID copy, which changes raced
    // schedules.  Both schedulers agree on the new trajectory.
    {ProtocolKind::kBerkeley, 0xcf8b0f26562f9b07ULL, 5891u, 135879.0, 5501u,
     5891u, 24217.0, 392498u},
    {ProtocolKind::kDragon, 0x6de89b935407c69dULL, 5409u, 153326.0, 5500u,
     5409u, 11011.0, 389572u},
    {ProtocolKind::kFirefly, 0x23fb60dc12697463ULL, 7168u, 154254.0, 5500u,
     7168u, 27429.0, 399979u},
};

class GoldenTrajectoryTest : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenTrajectoryTest, TimeWheelReproducesPreOverhaulEngine) {
  const Golden& golden = GetParam();
  const auto [traj, stats] =
      run_golden(golden.kind, sim::SchedulerKind::kTimeWheel);
  EXPECT_EQ(traj.hash, golden.hash);
  EXPECT_EQ(traj.events, golden.events);
  EXPECT_EQ(stats.measured_cost, golden.measured_cost);  // exact, not NEAR
  EXPECT_EQ(stats.measured_ops, golden.measured_ops);
  EXPECT_EQ(stats.messages, golden.messages);
  EXPECT_EQ(stats.latency_sum, golden.latency_sum);
  EXPECT_EQ(stats.end_time, golden.end_time);
}

TEST_P(GoldenTrajectoryTest, BinaryHeapReferenceMatchesGoldens) {
  const Golden& golden = GetParam();
  const auto [traj, stats] =
      run_golden(golden.kind, sim::SchedulerKind::kBinaryHeap);
  EXPECT_EQ(traj.hash, golden.hash);
  EXPECT_EQ(traj.events, golden.events);
  EXPECT_EQ(stats.end_time, golden.end_time);
}

// The dense dispatch table (the production event loop) and the classic
// switch reference must both reproduce the golden trajectories — the
// dispatch restructuring is a pure control-flow change, so any divergence
// in hash, cost, or end time is a bug, not noise.
TEST_P(GoldenTrajectoryTest, DenseDispatchMatchesClassicSwitchGoldens) {
  const Golden& golden = GetParam();
  const auto [dense_traj, dense_stats] = run_golden(
      golden.kind, sim::SchedulerKind::kTimeWheel,
      sim::DispatchKind::kDenseTable);
  const auto [classic_traj, classic_stats] = run_golden(
      golden.kind, sim::SchedulerKind::kTimeWheel,
      sim::DispatchKind::kClassicSwitch);
  EXPECT_EQ(dense_traj.hash, golden.hash);
  EXPECT_EQ(classic_traj.hash, golden.hash);
  EXPECT_EQ(dense_traj.events, classic_traj.events);
  EXPECT_EQ(dense_stats.measured_cost, classic_stats.measured_cost);
  EXPECT_EQ(dense_stats.measured_ops, classic_stats.measured_ops);
  EXPECT_EQ(dense_stats.messages, classic_stats.messages);
  EXPECT_EQ(dense_stats.latency_sum, classic_stats.latency_sum);
  EXPECT_EQ(dense_stats.end_time, classic_stats.end_time);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, GoldenTrajectoryTest,
                         ::testing::ValuesIn(kGoldens),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param.kind);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// ---------------------------------------------------------------------------
// Scheduler equivalence on a different configuration (more nodes, longer
// latency spread) than the goldens, so the equivalence is not an artifact
// of one scenario.
// ---------------------------------------------------------------------------

class SchedulerEquivalenceTest
    : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(SchedulerEquivalenceTest, WheelAndHeapProduceIdenticalTrajectories) {
  SystemConfig config;
  config.num_clients = 5;
  config.num_objects = 3;

  auto run = [&](sim::SchedulerKind scheduler) {
    SimOptions options;
    options.max_ops = 3000;
    options.warmup_ops = 300;
    options.seed = 77;
    options.latency.min_latency = 1;
    options.latency.max_latency = 9;
    options.latency.processing_time = 1;
    options.scheduler = scheduler;
    EventSimulator simulator(GetParam(), config, options);
    std::vector<std::tuple<SimTime, NodeId, NodeId, fsm::MsgType>> log;
    simulator.set_observer([&](SimTime time, NodeId src, NodeId dst,
                               const fsm::Message& msg) {
      log.emplace_back(time, src, dst, msg.token.type);
    });
    workload::ConcurrentDriver driver(
        workload::write_disturbance(0.25, 0.1, 2), 78, config.num_objects);
    const SimStats stats = simulator.run(driver);
    return std::make_pair(std::move(log), stats.end_time);
  };

  const auto wheel = run(sim::SchedulerKind::kTimeWheel);
  const auto heap = run(sim::SchedulerKind::kBinaryHeap);
  ASSERT_EQ(wheel.first.size(), heap.first.size());
  for (std::size_t i = 0; i < wheel.first.size(); ++i)
    ASSERT_EQ(wheel.first[i], heap.first[i]) << "event " << i;
  EXPECT_EQ(wheel.second, heap.second);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SchedulerEquivalenceTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// ---------------------------------------------------------------------------
// FIFO channels: for every (src, dst) pair, kMsgRecv order equals kMsgSend
// order even when per-message latency is random — the simulator models
// order-preserving channels, and the ring-buffer rework must not break
// that.
// ---------------------------------------------------------------------------

class FifoChannelSink final : public obs::EventSink {
 public:
  void on_event(const obs::TraceEvent& event) override {
    if (event.kind == obs::EventKind::kMsgSend) {
      sent_[{event.node, event.peer}].push_back(event.msg_id);
    } else if (event.kind == obs::EventKind::kMsgRecv) {
      received_[{event.peer, event.node}].push_back(event.msg_id);
    }
  }

  void verify() const {
    ASSERT_FALSE(sent_.empty());
    for (const auto& [channel, ids] : received_) {
      const auto it = sent_.find(channel);
      ASSERT_NE(it, sent_.end());
      // Every delivery happened, in exactly the send order.
      ASSERT_EQ(ids, it->second)
          << "channel " << channel.first << "->" << channel.second;
    }
  }

 private:
  std::map<std::pair<NodeId, NodeId>, std::vector<std::uint64_t>> sent_;
  std::map<std::pair<NodeId, NodeId>, std::vector<std::uint64_t>> received_;
};

TEST(SimDeterminism, ChannelsAreFifoUnderRandomLatency) {
  for (ProtocolKind kind : {ProtocolKind::kWriteThrough,
                            ProtocolKind::kBerkeley, ProtocolKind::kDragon}) {
    SystemConfig config;
    config.num_clients = 4;
    config.num_objects = 2;
    SimOptions options;
    options.max_ops = 2000;
    options.warmup_ops = 100;
    options.seed = 91;
    options.latency.min_latency = 1;
    options.latency.max_latency = 12;  // wide spread: reordering pressure
    options.latency.processing_time = 1;
    EventSimulator simulator(kind, config, options);
    FifoChannelSink sink;
    simulator.set_sink(&sink);
    workload::ConcurrentDriver driver(
        workload::read_disturbance(0.35, 0.15, 2), 92, config.num_objects);
    simulator.run(driver);
    sink.verify();
  }
}

// ---------------------------------------------------------------------------
// Empty measurement window: a run whose operations all complete inside
// warmup must report zeroed latency statistics (not stale or garbage
// values) — mean 0, max 0, empty histogram, percentile 0.
// ---------------------------------------------------------------------------

TEST(SimDeterminism, EmptyMeasurementWindowYieldsZeroLatencyStats) {
  SystemConfig config;
  config.num_clients = 2;
  SimOptions options;
  options.max_ops = 50;
  options.warmup_ops = 50;  // everything is warmup
  options.seed = 5;
  EventSimulator simulator(ProtocolKind::kWriteThrough, config, options);
  workload::ConcurrentDriver driver(workload::ideal_workload(0.3), 6);
  const sim::SimStats stats = simulator.run(driver);

  EXPECT_EQ(stats.measured_ops, 0u);
  EXPECT_GT(stats.warmup_ops, 0u);
  EXPECT_EQ(stats.mean_latency(), 0.0);
  EXPECT_EQ(stats.mean_read_latency(), 0.0);
  EXPECT_EQ(stats.mean_write_latency(), 0.0);
  EXPECT_EQ(stats.latency_max, 0u);
  EXPECT_EQ(stats.latency_sum, 0.0);
  EXPECT_EQ(stats.latency_histogram.count(), 0u);
  EXPECT_EQ(stats.latency_histogram.percentile(0.99), 0.0);
  EXPECT_EQ(stats.acc(), 0.0);
}

}  // namespace
}  // namespace drsm
