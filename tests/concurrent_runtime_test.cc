// dsm::ConcurrentSharedMemory under the coherence oracle's referee.
//
// Every workload here runs with real client threads against the sharded
// sequencers while check::ShardedOracle observes each shard live in its
// strict kSequential mode; a run only passes if the oracle is clean and
// the bookkeeping (issued == completed, shard op counts, versions) is
// exact.  Runs under TSan via the `concurrency` ctest label.
#include "dsm/concurrent.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "check/sharded_oracle.h"
#include "dsm/dsm.h"
#include "support/error.h"
#include "support/rng.h"
#include "support/trajectory.h"

namespace drsm::dsm {
namespace {

using protocols::ProtocolKind;

struct RunResult {
  std::uint64_t ops = 0;
  bool oracle_ok = false;
  std::vector<std::string> violations;
};

/// One client thread's workload: seeded mixed ops, eject/sync only where
/// the protocol implements them, unique write values for the oracle.
void client_main(ConcurrentSharedMemory& mem, NodeId node,
                 std::uint64_t seed, std::size_t ops) {
  ConcurrentSharedMemory::Session& session = mem.session(node);
  Rng rng(seed);
  const ProtocolKind kind = mem.options().protocol;
  const std::size_t objects = mem.options().num_objects;
  const bool can_eject = protocols::supports(kind, fsm::OpKind::kEject);
  const bool can_sync = protocols::supports(kind, fsm::OpKind::kSync);
  for (std::size_t i = 0; i < ops; ++i) {
    const ObjectId object = static_cast<ObjectId>(rng.uniform_index(objects));
    const double dice = rng.uniform();
    if (dice < 0.55) {
      session.read(object);
    } else if (dice < 0.90 || (!can_eject && !can_sync)) {
      session.write_unique(object);
    } else if (dice < 0.95 && can_eject) {
      session.eject(object);
    } else if (can_sync) {
      session.sync(object);
    } else {
      session.read(object);
    }
  }
  session.drain();
}

RunResult run_workload(ProtocolKind kind, std::size_t clients,
                       std::size_t shards, std::size_t objects,
                       std::size_t ops_per_client, std::uint64_t seed,
                       std::size_t max_inflight = 64) {
  check::ShardedOracle oracle(shards);
  ConcurrentSharedMemory::Options options;
  options.protocol = kind;
  options.num_clients = clients;
  options.num_objects = objects;
  options.num_shards = shards;
  options.max_inflight = max_inflight;
  options.ring_capacity = 256;
  for (std::size_t s = 0; s < shards; ++s)
    options.shard_taps.push_back(oracle.tap(s));

  ConcurrentSharedMemory mem(options);
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c)
      threads.emplace_back(client_main, std::ref(mem),
                           static_cast<NodeId>(c), seed + c, ops_per_client);
    for (auto& t : threads) t.join();
  }
  mem.stop();
  oracle.finish();

  RunResult result;
  result.ops = mem.stats().ops;
  result.oracle_ok = oracle.ok();
  result.violations = oracle.violations();
  EXPECT_EQ(result.ops, clients * ops_per_client);
  for (std::size_t c = 0; c < clients; ++c) {
    EXPECT_EQ(mem.session(static_cast<NodeId>(c)).in_flight(), 0u);
    EXPECT_EQ(mem.session(static_cast<NodeId>(c)).issued(),
              mem.session(static_cast<NodeId>(c)).completed());
  }
  return result;
}

class AllProtocolsConcurrent : public ::testing::TestWithParam<ProtocolKind> {
};

INSTANTIATE_TEST_SUITE_P(AllProtocols, AllProtocolsConcurrent,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST_P(AllProtocolsConcurrent, OracleRefereesMixedWorkload) {
  const RunResult r =
      run_workload(GetParam(), /*clients=*/4, /*shards=*/4, /*objects=*/16,
                   /*ops_per_client=*/4000, /*seed=*/0xc0ffee);
  EXPECT_TRUE(r.oracle_ok);
  for (const std::string& v : r.violations) ADD_FAILURE() << v;
}

TEST_P(AllProtocolsConcurrent, SingleShardMatchesManyShards) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
    const RunResult r =
        run_workload(GetParam(), /*clients=*/3, shards, /*objects=*/9,
                     /*ops_per_client=*/2000, /*seed=*/42);
    EXPECT_TRUE(r.oracle_ok) << shards << " shards";
    for (const std::string& v : r.violations) ADD_FAILURE() << v;
  }
}

// A tiny window plus a minimum-size request ring forces both backpressure
// paths (window park + submit retry) without losing or reordering ops.
TEST(ConcurrentRuntimeTest, BackpressureWithTinyWindowAndRing) {
  check::ShardedOracle oracle(2);
  ConcurrentSharedMemory::Options options;
  options.protocol = ProtocolKind::kWriteOnce;
  options.num_clients = 4;
  options.num_objects = 8;
  options.num_shards = 2;
  options.max_inflight = 2;
  options.ring_capacity = 4;
  options.max_batch = 2;
  options.shard_taps = {oracle.tap(0), oracle.tap(1)};
  ConcurrentSharedMemory mem(options);
  {
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < 4; ++c)
      threads.emplace_back(client_main, std::ref(mem),
                           static_cast<NodeId>(c), 7 + c, 3000);
    for (auto& t : threads) t.join();
  }
  mem.stop();
  oracle.finish();
  EXPECT_TRUE(oracle.ok());
  EXPECT_EQ(mem.stats().ops, 4u * 3000u);
}

// Per-session-per-object reads must observe non-decreasing versions: the
// session's requests traverse one ring in program order and the shard
// serializes per object.
TEST(ConcurrentRuntimeTest, SessionObservesMonotoneVersionsPerObject) {
  ConcurrentSharedMemory::Options options;
  options.protocol = ProtocolKind::kWriteThroughV;
  options.num_clients = 3;
  options.num_objects = 6;
  options.num_shards = 3;
  options.max_inflight = 32;
  ConcurrentSharedMemory mem(options);
  {
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < 3; ++c) {
      threads.emplace_back([&mem, c] {
        auto& session = mem.session(static_cast<NodeId>(c));
        std::vector<std::uint64_t> last_version(6, 0);
        session.set_grant_handler([&](const sim::ShardGrant& g) {
          if (g.op != fsm::OpKind::kRead) return;
          EXPECT_GE(g.version, last_version[g.object]);
          last_version[g.object] = g.version;
        });
        Rng rng(0xfeedu + c);
        for (int i = 0; i < 5000; ++i) {
          const ObjectId object =
              static_cast<ObjectId>(rng.uniform_index(6));
          if (rng.uniform() < 0.5)
            session.read(object);
          else
            session.write_unique(object);
        }
        session.drain();
      });
    }
    for (auto& t : threads) t.join();
  }
  mem.stop();
}

// sync() as a fence: a session that wrote, synced, and reads back with no
// other writers on that object must see its own last write.
TEST(ConcurrentRuntimeTest, SyncFencesOwnWrites) {
  for (const ProtocolKind kind : protocols::kAllProtocols) {
    if (!protocols::supports(kind, fsm::OpKind::kSync)) continue;
    ConcurrentSharedMemory::Options options;
    options.protocol = kind;
    options.num_clients = 3;
    options.num_objects = 3;  // object c is owned by writer c
    options.num_shards = 3;
    ConcurrentSharedMemory mem(options);
    {
      std::vector<std::thread> threads;
      for (std::size_t c = 0; c < 3; ++c) {
        threads.emplace_back([&mem, c] {
          auto& session = mem.session(static_cast<NodeId>(c));
          const ObjectId own = static_cast<ObjectId>(c);
          std::uint64_t last_written = 0;
          std::uint64_t own_read_value = 0;
          // Cross-reads on other writers' objects complete out of order
          // with the own-object read (different shards), so the fence
          // check keys on the grant's object id.
          session.set_grant_handler([&](const sim::ShardGrant& g) {
            if (g.op == fsm::OpKind::kRead && g.object == own)
              own_read_value = g.value;
          });
          for (int round = 0; round < 200; ++round) {
            for (int burst = 0; burst < 8; ++burst) {
              last_written = 1000 * (c + 1) + round * 8 + burst;
              session.write(own, last_written);
            }
            session.sync(own);
            session.read(own);
            session.drain();
            EXPECT_EQ(own_read_value, last_written);
            session.read(static_cast<ObjectId>((c + 1) % 3));
          }
          session.drain();
        });
      }
      for (auto& t : threads) t.join();
    }
    mem.stop();
  }
}

// Eject under contention: all clients hammer a single hot object per shard
// with read/write/eject; invalidate protocols must stay coherent.
TEST(ConcurrentRuntimeTest, EjectUnderContention) {
  for (const ProtocolKind kind : protocols::kAllProtocols) {
    if (!protocols::supports(kind, fsm::OpKind::kEject)) continue;
    check::ShardedOracle oracle(2);
    ConcurrentSharedMemory::Options options;
    options.protocol = kind;
    options.num_clients = 4;
    options.num_objects = 2;  // one hot object per shard
    options.num_shards = 2;
    options.max_inflight = 16;
    options.shard_taps = {oracle.tap(0), oracle.tap(1)};
    ConcurrentSharedMemory mem(options);
    {
      std::vector<std::thread> threads;
      for (std::size_t c = 0; c < 4; ++c) {
        threads.emplace_back([&mem, c] {
          auto& session = mem.session(static_cast<NodeId>(c));
          Rng rng(0xe1ec7u + c);
          for (int i = 0; i < 3000; ++i) {
            const ObjectId object =
                static_cast<ObjectId>(rng.uniform_index(2));
            const double dice = rng.uniform();
            if (dice < 0.4)
              session.read(object);
            else if (dice < 0.8)
              session.write_unique(object);
            else
              session.eject(object);
          }
          session.drain();
        });
      }
      for (auto& t : threads) t.join();
    }
    mem.stop();
    oracle.finish();
    EXPECT_TRUE(oracle.ok()) << protocols::to_string(kind);
    for (const std::string& v : oracle.violations()) ADD_FAILURE() << v;
  }
}

// With one session and one shard the grant stream is deterministic, so its
// trajectory hash is repeatable — and the per-op read values and total
// cost must match the strictly sequential dsm::SharedMemory executing the
// same program.
TEST(ConcurrentRuntimeTest, SingleSessionMatchesSequentialSharedMemory) {
  for (const ProtocolKind kind : protocols::kAllProtocols) {
    std::uint64_t hashes[2];
    for (int rep = 0; rep < 2; ++rep) {
      SharedMemory::Options seq_options;
      seq_options.protocol = kind;
      seq_options.num_clients = 2;
      seq_options.num_objects = 4;
      SharedMemory reference(seq_options);

      ConcurrentSharedMemory::Options options;
      options.protocol = kind;
      options.num_clients = 2;
      options.num_objects = 4;
      options.num_shards = 1;
      ConcurrentSharedMemory mem(options);
      auto& session = mem.session(0);

      TrajectoryHash trajectory;
      std::vector<sim::ShardGrant> grants;
      session.set_grant_handler([&](const sim::ShardGrant& g) {
        grants.push_back(g);
        trajectory.mix_grant(g.object, static_cast<std::uint64_t>(g.op),
                             g.value, g.version,
                             static_cast<std::uint64_t>(g.cost * 1024.0));
      });

      Rng rng(0xdecaf);
      std::vector<std::pair<bool, std::uint64_t>> program;  // (is_read, arg)
      for (int i = 0; i < 1500; ++i) {
        const ObjectId object = static_cast<ObjectId>(rng.uniform_index(4));
        const bool is_read = rng.uniform() < 0.5;
        program.emplace_back(is_read, object);
        if (is_read)
          session.read(object);
        else
          session.write(object, 0x100000 + i);
      }
      session.drain();
      mem.stop();

      ASSERT_EQ(grants.size(), program.size());
      Cost reference_cost = 0.0;
      for (std::size_t i = 0; i < program.size(); ++i) {
        const auto [is_read, object] = program[i];
        if (is_read) {
          const std::uint64_t expected =
              reference.read(0, static_cast<ObjectId>(object));
          EXPECT_EQ(grants[i].value, expected) << "op " << i;
        } else {
          reference.write(0, static_cast<ObjectId>(object),
                          grants[i].value);
        }
        reference_cost += reference.last_op_cost();
      }
      EXPECT_DOUBLE_EQ(mem.stats().cost, reference_cost);
      hashes[rep] = trajectory.hash;
    }
    EXPECT_EQ(hashes[0], hashes[1]) << protocols::to_string(kind);
  }
}

TEST(ConcurrentRuntimeTest, PublishesRuntimeMetrics) {
  obs::MetricsRegistry metrics;
  ConcurrentSharedMemory::Options options;
  options.protocol = ProtocolKind::kBerkeley;
  options.num_clients = 2;
  options.num_objects = 4;
  options.num_shards = 2;
  options.metrics = &metrics;
  ConcurrentSharedMemory mem(options);
  {
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < 2; ++c)
      threads.emplace_back(client_main, std::ref(mem),
                           static_cast<NodeId>(c), 5 + c, 2000);
    for (auto& t : threads) t.join();
  }
  mem.stop();
  ASSERT_NE(metrics.find_counter("runtime.ops"), nullptr);
  EXPECT_EQ(metrics.find_counter("runtime.ops")->value(), 4000u);
  ASSERT_NE(metrics.find_gauge("runtime.ops_per_sec"), nullptr);
  EXPECT_GT(metrics.find_gauge("runtime.ops_per_sec")->value(), 0.0);
  ASSERT_NE(metrics.find_gauge("runtime.shards"), nullptr);
  EXPECT_EQ(metrics.find_gauge("runtime.shards")->value(), 2.0);
  ASSERT_NE(metrics.find_series("runtime.shard_ops"), nullptr);
  EXPECT_EQ(metrics.find_series("runtime.shard_ops")->points().size(), 2u);
}

TEST(ConcurrentRuntimeTest, RejectsUnsupportedOps) {
  ConcurrentSharedMemory::Options options;
  options.protocol = ProtocolKind::kDragon;  // update protocol: no eject
  options.num_clients = 1;
  options.num_objects = 1;
  options.num_shards = 1;
  ConcurrentSharedMemory mem(options);
  EXPECT_THROW(mem.session(0).eject(0), Error);
  mem.session(0).drain();
  mem.stop();
}

}  // namespace
}  // namespace drsm::dsm
