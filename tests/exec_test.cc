// The sweep engine's determinism contract: parallel_for covers every
// index exactly once, per-task seeds are a pure function of (base, index),
// and a sweep produces bit-identical results at any thread count — for
// both the analytic solver (with its warm-start and chain caches) and the
// discrete-event simulator.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "analytic/solver.h"
#include "exec/sweep.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "sim/event_sim.h"
#include "workload/generator.h"

namespace drsm {
namespace {

using protocols::ProtocolKind;

// ---------------------------------------------------------------------------
// ThreadPool basics.
// ---------------------------------------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    constexpr std::size_t kItems = 1000;
    std::vector<std::atomic<int>> hits(kItems);
    pool.parallel_for(kItems, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kItems; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, ParallelMapCollectsInIndexOrder) {
  exec::ThreadPool pool(4);
  const auto out = pool.parallel_map<std::size_t>(
      257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, EmptyJobReturnsImmediately) {
  exec::ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, RethrowsFirstBodyException) {
  exec::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives a failed job and stays usable.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(50, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50u);
}

TEST(ThreadPool, DefaultThreadsHonoursEnvOverride) {
  ::setenv("DRSM_THREADS", "3", 1);
  EXPECT_EQ(exec::ThreadPool::default_threads(), 3u);
  ::unsetenv("DRSM_THREADS");
  EXPECT_GE(exec::ThreadPool::default_threads(), 1u);
}

// ---------------------------------------------------------------------------
// Seeds.
// ---------------------------------------------------------------------------

TEST(TaskSeed, PureFunctionOfBaseAndIndex) {
  EXPECT_EQ(exec::task_seed(42, 7), exec::task_seed(42, 7));
  EXPECT_NE(exec::task_seed(42, 7), exec::task_seed(42, 8));
  EXPECT_NE(exec::task_seed(42, 7), exec::task_seed(43, 7));
  // Adjacent indices must land far apart; collisions over a modest range
  // would correlate the streams of neighbouring sweep points.
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < 10000; ++i)
    seen.insert(exec::task_seed(0x5EEDBA5EULL, i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(SweepRunner, TaskSeedIndependentOfThreadCount) {
  exec::SweepRunner serial({.threads = 1});
  exec::SweepRunner wide({.threads = 8});
  for (std::size_t i = 0; i < 32; ++i)
    EXPECT_EQ(serial.seed(i), wide.seed(i));
}

// ---------------------------------------------------------------------------
// Determinism under parallelism — the contract the benches rely on.
// ---------------------------------------------------------------------------

TEST(SweepRunner, AnalyticSweepBitIdenticalAcrossThreadCounts) {
  const auto spec = workload::read_disturbance(0.3, 0.05, 2);
  const std::vector<std::size_t> sizes = {3, 5, 8};
  auto sweep = [&](std::size_t threads) {
    exec::SweepRunner runner({.threads = threads});
    return runner.run<std::vector<double>>(
        sizes.size(), [&](const exec::SweepTask& task) {
          analytic::AccSolver solver({sizes[task.index], {100.0, 30.0}, 1});
          std::vector<double> accs;
          for (ProtocolKind kind : protocols::kAllProtocols)
            accs.push_back(solver.acc(kind, spec));
          return accs;
        });
  };
  const auto one = sweep(1);
  const auto two = sweep(2);
  const auto eight = sweep(8);
  ASSERT_EQ(one.size(), sizes.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    ASSERT_EQ(one[i].size(), protocols::kAllProtocols.size());
    for (std::size_t k = 0; k < one[i].size(); ++k) {
      // Bitwise equality, not tolerance: the contract is bit-identical.
      EXPECT_EQ(one[i][k], two[i][k]) << "N=" << sizes[i] << " k=" << k;
      EXPECT_EQ(one[i][k], eight[i][k]) << "N=" << sizes[i] << " k=" << k;
    }
  }
}

TEST(SweepRunner, SimulationSweepBitIdenticalAcrossThreadCounts) {
  const auto spec = workload::read_disturbance(0.2, 0.05, 2);
  auto sweep = [&](std::size_t threads) {
    exec::SweepRunner runner({.threads = threads, .base_seed = 99});
    return runner.run<double>(6, [&](const exec::SweepTask& task) {
      sim::SystemConfig config;
      config.num_clients = 3;
      sim::SimOptions options;
      options.max_ops = 1000;
      options.warmup_ops = 100;
      options.seed = task.seed;  // per-task deterministic stream
      sim::EventSimulator simulator(
          task.index % 2 == 0 ? ProtocolKind::kWriteThrough
                              : ProtocolKind::kBerkeley,
          config, options);
      workload::ConcurrentDriver driver(spec, task.seed ^ 0xD1CE, 1);
      return simulator.run(driver).acc();
    });
  };
  const auto one = sweep(1);
  const auto eight = sweep(8);
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t i = 0; i < one.size(); ++i) EXPECT_EQ(one[i], eight[i]);
}

// ---------------------------------------------------------------------------
// Metrics publication.
// ---------------------------------------------------------------------------

TEST(SweepRunner, PublishesExecMetrics) {
  obs::MetricsRegistry metrics;
  exec::SweepRunner runner({.threads = 2, .metrics = &metrics});
  runner.run<int>(5, [](const exec::SweepTask& task) {
    return static_cast<int>(task.index);
  });
  runner.for_each(3, [](const exec::SweepTask&) {});
  EXPECT_EQ(metrics.counter("exec.tasks").value(), 8u);
  EXPECT_EQ(metrics.counter("exec.sweeps").value(), 2u);
  EXPECT_DOUBLE_EQ(metrics.gauge("exec.threads").value(), 2.0);
  EXPECT_EQ(runner.tasks_run(), 8u);
}

}  // namespace
}  // namespace drsm
