// Tests for the replication harness: SimStats merging, seed derivation,
// thread-count invariance (the determinism contract of
// sim::run_replications), and confidence-interval arithmetic.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "exec/sweep.h"
#include "obs/metrics.h"
#include "sim/replication.h"
#include "workload/generator.h"

namespace drsm {
namespace {

using protocols::ProtocolKind;
using sim::ReplicatedStats;
using sim::ReplicationOptions;
using sim::SimOptions;
using sim::SimStats;
using sim::SystemConfig;

// ---------------------------------------------------------------------------
// merge_stats
// ---------------------------------------------------------------------------

TEST(MergeStats, SumsCountsMaxesMaximaAndMergesHistograms) {
  SimStats a;
  a.measured_cost = 10.0;
  a.measured_ops = 4;
  a.reads = 3;
  a.writes = 1;
  a.messages = 7;
  a.end_time = 100;
  a.latency_sum = 20.0;
  a.latency_max = 9;
  a.latency_histogram.record(3.0);
  a.message_mix[fsm::MsgType::kInval] = 2;
  a.cost_by_object = {1.0, 2.0};

  SimStats b;
  b.measured_cost = 5.0;
  b.measured_ops = 2;
  b.reads = 1;
  b.writes = 1;
  b.messages = 3;
  b.end_time = 50;
  b.latency_sum = 8.0;
  b.latency_max = 15;
  b.latency_histogram.record(7.0);
  b.message_mix[fsm::MsgType::kInval] = 1;
  b.message_mix[fsm::MsgType::kUpdate] = 4;
  b.cost_by_object = {0.5, 0.5, 2.0};  // longer vector: merge must resize

  sim::merge_stats(a, b);
  EXPECT_DOUBLE_EQ(a.measured_cost, 15.0);
  EXPECT_EQ(a.measured_ops, 6u);
  EXPECT_EQ(a.reads, 4u);
  EXPECT_EQ(a.writes, 2u);
  EXPECT_EQ(a.messages, 10u);
  EXPECT_EQ(a.end_time, 150u);
  EXPECT_DOUBLE_EQ(a.latency_sum, 28.0);
  EXPECT_EQ(a.latency_max, 15u);
  EXPECT_EQ(a.latency_histogram.count(), 2u);
  EXPECT_DOUBLE_EQ(a.latency_histogram.sum(), 10.0);
  EXPECT_EQ(a.message_mix[fsm::MsgType::kInval], 3u);
  EXPECT_EQ(a.message_mix[fsm::MsgType::kUpdate], 4u);
  ASSERT_EQ(a.cost_by_object.size(), 3u);
  EXPECT_DOUBLE_EQ(a.cost_by_object[0], 1.5);
  EXPECT_DOUBLE_EQ(a.cost_by_object[2], 2.0);
  EXPECT_DOUBLE_EQ(a.acc(), 15.0 / 6.0);  // pooled mean
}

// ---------------------------------------------------------------------------
// Confidence intervals
// ---------------------------------------------------------------------------

TEST(ConfidenceInterval, ZQuantileMatchesRequestedLevel) {
  EXPECT_DOUBLE_EQ(sim::z_for_confidence(0.90), 1.6449);
  EXPECT_DOUBLE_EQ(sim::z_for_confidence(0.95), 1.9600);
  EXPECT_DOUBLE_EQ(sim::z_for_confidence(0.99), 2.5758);
}

// ---------------------------------------------------------------------------
// run_replications
// ---------------------------------------------------------------------------

ReplicatedStats run(std::size_t reps, std::size_t threads,
                    obs::MetricsRegistry* metrics = nullptr,
                    std::uint64_t base_seed = 0xABCDEF) {
  SystemConfig config;
  config.num_clients = 3;
  config.num_objects = 2;

  SimOptions sim;
  sim.max_ops = 1500;
  sim.warmup_ops = 200;
  sim.latency.min_latency = 1;
  sim.latency.max_latency = 4;
  sim.latency.processing_time = 1;

  ReplicationOptions options;
  options.replications = reps;
  options.base_seed = base_seed;
  options.threads = threads;
  options.metrics = metrics;

  const auto spec = workload::read_disturbance(0.3, 0.2, 2);
  return sim::run_replications(
      ProtocolKind::kBerkeley, config, sim,
      [&](std::uint64_t seed, std::size_t /*rep*/) {
        return std::make_unique<workload::ConcurrentDriver>(
            spec, seed ^ 0xBEEF, config.num_objects);
      },
      options);
}

TEST(RunReplications, MergedTotalsEqualSerialLoopAndAreThreadInvariant) {
  const ReplicatedStats serial = run(6, /*threads=*/1);
  const ReplicatedStats parallel = run(6, /*threads=*/4);

  // Bit-identical regardless of thread count.
  EXPECT_EQ(serial.merged.measured_cost, parallel.merged.measured_cost);
  EXPECT_EQ(serial.merged.measured_ops, parallel.merged.measured_ops);
  EXPECT_EQ(serial.merged.messages, parallel.merged.messages);
  EXPECT_EQ(serial.merged.end_time, parallel.merged.end_time);
  EXPECT_EQ(serial.merged.latency_sum, parallel.merged.latency_sum);
  EXPECT_EQ(serial.merged.latency_max, parallel.merged.latency_max);
  EXPECT_EQ(serial.merged.latency_histogram.buckets(),
            parallel.merged.latency_histogram.buckets());
  ASSERT_EQ(serial.acc_samples, parallel.acc_samples);
  EXPECT_EQ(serial.acc.mean, parallel.acc.mean);
  EXPECT_EQ(serial.acc.half_width, parallel.acc.half_width);

  // Replications are genuinely independent runs: distinct seeds, distinct
  // trajectories.
  ASSERT_EQ(serial.acc_samples.size(), 6u);
  EXPECT_NE(serial.acc_samples[0], serial.acc_samples[1]);

  // The interval is centered on the sample mean and brackets it.
  EXPECT_GT(serial.acc.half_width, 0.0);
  EXPECT_LT(serial.acc.lo(), serial.acc.mean);
  EXPECT_GT(serial.acc.hi(), serial.acc.mean);
  // Pooled (merged) acc and unweighted mean of per-rep accs agree closely
  // (equal ops per rep up to in-flight stragglers).
  EXPECT_NEAR(serial.merged.acc(), serial.acc.mean,
              0.01 * serial.acc.mean);
}

TEST(RunReplications, SeedsDeriveFromBaseSeedOnly) {
  const ReplicatedStats a = run(4, 1, nullptr, /*base_seed=*/123);
  const ReplicatedStats b = run(4, 2, nullptr, /*base_seed=*/123);
  const ReplicatedStats c = run(4, 1, nullptr, /*base_seed=*/124);
  EXPECT_EQ(a.acc_samples, b.acc_samples);
  EXPECT_NE(a.acc_samples, c.acc_samples);
}

TEST(RunReplications, SingleReplicationHasDegenerateInterval) {
  const ReplicatedStats one = run(1, 1);
  EXPECT_EQ(one.replications, 1u);
  ASSERT_EQ(one.acc_samples.size(), 1u);
  EXPECT_DOUBLE_EQ(one.acc.mean, one.acc_samples[0]);
  EXPECT_EQ(one.acc.half_width, 0.0);
  EXPECT_EQ(one.acc.stddev, 0.0);
}

TEST(RunReplications, PublishesMergedMetricsInReplicationOrder) {
  obs::MetricsRegistry metrics;
  const ReplicatedStats stats = run(3, 2, &metrics);

  const obs::Counter* runs = metrics.find_counter("replication.runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(runs->value(), 3u);

  // Per-replication simulator counters merged across all replications.
  const obs::Counter* messages = metrics.find_counter("sim.messages");
  ASSERT_NE(messages, nullptr);
  EXPECT_EQ(messages->value(), stats.merged.messages);

  const obs::Gauge* mean = metrics.find_gauge("replication.acc_mean");
  ASSERT_NE(mean, nullptr);
  EXPECT_DOUBLE_EQ(mean->value(), stats.acc.mean);
}

TEST(RunReplications, ExternalRunnerGivesSameResultsAsInternal) {
  exec::SweepRunner runner({.threads = 3, .base_seed = 999});  // ignored base
  SystemConfig config;
  config.num_clients = 3;
  config.num_objects = 2;
  SimOptions sim;
  sim.max_ops = 800;
  sim.warmup_ops = 100;
  ReplicationOptions internal;
  internal.replications = 4;
  internal.base_seed = 0xABCDEF;
  internal.threads = 1;
  ReplicationOptions external = internal;
  external.runner = &runner;

  const auto spec = workload::read_disturbance(0.25, 0.1, 2);
  auto factory = [&](std::uint64_t seed, std::size_t /*rep*/) {
    return std::make_unique<workload::ConcurrentDriver>(spec, seed ^ 0xBEEF,
                                                        config.num_objects);
  };
  const ReplicatedStats a = sim::run_replications(
      ProtocolKind::kWriteOnce, config, sim, factory, internal);
  const ReplicatedStats b = sim::run_replications(
      ProtocolKind::kWriteOnce, config, sim, factory, external);
  EXPECT_EQ(a.acc_samples, b.acc_samples);
  EXPECT_EQ(a.merged.measured_cost, b.merged.measured_cost);
  EXPECT_EQ(a.merged.end_time, b.merged.end_time);
}

}  // namespace
}  // namespace drsm
