// Tests for the per-object access telemetry (obs/access_stats.h): hot-set
// extraction, activity-center drift detection on a scripted phase change,
// the per-node recent mix, metric publication, and the adaptive selector's
// telemetry-driven observe-path classification.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "adaptive/selector.h"
#include "obs/access_stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"

namespace drsm {
namespace {

using obs::AccessStats;
using obs::AccessStatsOptions;

AccessStatsOptions small_windows() {
  AccessStatsOptions options;
  options.window_ops = 64;
  return options;
}

// Scripted phase: `ops` accesses to `object`, 7 of 8 from `center` (every
// fourth one a write), the rest reads from `disturber`.
void run_phase(AccessStats& stats, ObjectId object, NodeId center,
               NodeId disturber, std::size_t ops) {
  for (std::size_t i = 0; i < ops; ++i) {
    const NodeId node = i % 8 == 7 ? disturber : center;
    const fsm::OpKind op =
        node == center && i % 4 == 0 ? fsm::OpKind::kWrite
                                     : fsm::OpKind::kRead;
    stats.on_access(node, object, op);
  }
}

TEST(TelemetryTest, CountsAndWindows) {
  AccessStats stats(small_windows());
  run_phase(stats, 3, 0, 1, 256);
  EXPECT_EQ(stats.accesses(), 256u);
  EXPECT_EQ(stats.reads() + stats.writes(), 256u);
  EXPECT_EQ(stats.windows(), 256u / 64u);
  EXPECT_EQ(stats.num_objects(), 4u);  // grown on demand up to id 3
  const auto& object = stats.object(3);
  EXPECT_EQ(object.reads + object.writes, 256u);
  EXPECT_GT(object.writes, 0u);
  EXPECT_GT(object.rate, 0.0);
}

TEST(TelemetryTest, ActivityCenterAndDriftOnPhaseChange) {
  AccessStats stats(small_windows());
  run_phase(stats, 3, /*center=*/0, /*disturber=*/1, 256);
  EXPECT_EQ(stats.activity_center(3), NodeId{0});
  EXPECT_GT(stats.object(3).center_share, 0.5);

  const std::size_t drifts_before = stats.drift_events().size();
  run_phase(stats, 3, /*center=*/2, /*disturber=*/1, 256);
  EXPECT_EQ(stats.activity_center(3), NodeId{2});

  // Exactly one 0 -> 2 move for the object must be in the drift log.
  std::size_t moves = 0;
  for (const auto& d : stats.drift_events()) {
    if (d.object == 3 && d.from == NodeId{0} && d.to == NodeId{2}) ++moves;
  }
  EXPECT_EQ(moves, 1u);
  EXPECT_GT(stats.drift_events().size(), drifts_before);
}

TEST(TelemetryTest, HotSetOrdersByRate) {
  AccessStats stats(small_windows());
  // Object 5 hot, object 1 lukewarm, object 7 touched once long ago.
  stats.on_access(2, 7, fsm::OpKind::kRead);
  for (std::size_t i = 0; i < 512; ++i) {
    stats.on_access(0, 5, fsm::OpKind::kRead);
    if (i % 4 == 0) stats.on_access(1, 1, fsm::OpKind::kRead);
  }
  const auto hot = stats.hot_set(2);
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_EQ(hot[0].object, ObjectId{5});
  EXPECT_EQ(hot[1].object, ObjectId{1});
  EXPECT_GT(hot[0].rate, hot[1].rate);
  EXPECT_GE(stats.hot_set(8).size(), 2u);
}

TEST(TelemetryTest, NodeMixTracksTheRecentWindow) {
  AccessStats stats(small_windows());
  run_phase(stats, 2, /*center=*/1, /*disturber=*/0, 128);
  const auto mix = stats.node_mix(2);
  ASSERT_GE(mix.size(), 2u);
  EXPECT_GT(mix[1].reads, mix[0].reads);  // center dominates
  EXPECT_GT(mix[1].writes, 0u);
  EXPECT_EQ(mix[0].writes, 0u);  // disturber only reads
}

TEST(TelemetryTest, WriterLocalitySeparatesSingleWriterObjects) {
  AccessStats stats(small_windows());
  // Object 0: node 1 is the only writer.  Object 4: writes alternate.
  for (std::size_t i = 0; i < 128; ++i) {
    stats.on_access(1, 0, fsm::OpKind::kWrite);
    stats.on_access(i % 2, 4, fsm::OpKind::kWrite);
  }
  EXPECT_EQ(stats.object(0).top_writer, NodeId{1});
  EXPECT_EQ(stats.object(0).writer_locality, 1.0);
  EXPECT_NEAR(stats.object(4).writer_locality, 0.5, 0.1);
}

TEST(TelemetryTest, ConsumesOpIssueEventsAndForwards) {
  AccessStats stats(small_windows());
  obs::TraceRecorder downstream(16);
  stats.set_next(&downstream);

  obs::TraceEvent event;
  event.kind = obs::EventKind::kOpIssue;
  event.node = 2;
  event.object = 6;
  event.op = fsm::OpKind::kWrite;
  stats.on_event(event);
  event.op = fsm::OpKind::kRead;
  stats.on_event(event);
  event.kind = obs::EventKind::kMsgSend;  // not an access
  stats.on_event(event);

  EXPECT_EQ(stats.accesses(), 2u);
  EXPECT_EQ(stats.writes(), 1u);
  EXPECT_EQ(stats.object(6).writes, 1u);
  EXPECT_EQ(downstream.total(), 3u);  // everything forwarded, access or not
}

TEST(TelemetryTest, PublishEmitsTheTelemetryMetrics) {
  AccessStats stats(small_windows());
  run_phase(stats, 3, 0, 1, 256);
  obs::MetricsRegistry metrics;
  stats.publish(metrics);

  const obs::Counter* accesses = metrics.find_counter("telemetry.accesses");
  ASSERT_NE(accesses, nullptr);
  EXPECT_EQ(accesses->value(), 256u);
  ASSERT_NE(metrics.find_counter("telemetry.windows"), nullptr);
  const obs::Gauge* hot = metrics.find_gauge("telemetry.hot_object");
  ASSERT_NE(hot, nullptr);
  EXPECT_EQ(hot->value(), 3.0);
}

TEST(TelemetryTest, ToJsonDescribesTheHotSet) {
  AccessStats stats(small_windows());
  run_phase(stats, 3, 0, 1, 256);
  const obs::JsonValue json = stats.to_json(4);
  ASSERT_TRUE(json.is_object());
  EXPECT_EQ(json.find("accesses")->as_number(), 256.0);
  const obs::JsonValue* hot_set = json.find("hot_set");
  ASSERT_NE(hot_set, nullptr);
  ASSERT_TRUE(hot_set->is_array());
  ASSERT_GE(hot_set->size(), 1u);
  EXPECT_EQ(hot_set->at(0).find("object")->as_number(), 3.0);
}

TEST(TelemetryTest, SpecFromTelemetryMatchesTheObservedMix) {
  AccessStats stats(small_windows());
  run_phase(stats, 0, /*center=*/1, /*disturber=*/0, 128);
  const workload::WorkloadSpec spec =
      adaptive::AdaptiveSelector::spec_from_telemetry(stats, 0,
                                                      /*num_clients=*/3);
  double total = 0.0;
  double center_share = 0.0;
  for (const auto& event : spec.events) {
    total += event.probability;
    if (event.node == 1) center_share += event.probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(center_share, 0.5);
}

TEST(TelemetryTest, SpecFromTelemetryRejectsUntouchedObjects) {
  AccessStats stats(small_windows());
  stats.on_access(0, 0, fsm::OpKind::kRead);
  EXPECT_THROW(adaptive::AdaptiveSelector::spec_from_telemetry(stats, 5, 3),
               drsm::Error);
}

TEST(TelemetryTest, ClassifyObjectPrefersInvalidationForWriteHeavy) {
  sim::SystemConfig config;
  config.num_clients = 3;
  config.costs.s = 100.0;
  config.costs.p = 30.0;
  config.num_objects = 2;
  adaptive::AdaptiveSelector selector(config);

  AccessStats stats(small_windows());
  // Object 0: node 0 writes exclusively.  Object 1: all nodes read.
  for (std::size_t i = 0; i < 256; ++i) {
    stats.on_access(0, 0, fsm::OpKind::kWrite);
    stats.on_access(i % 3, 1, fsm::OpKind::kRead);
  }
  const auto writer = selector.classify_object(stats, 0);
  const auto readers = selector.classify_object(stats, 1);
  EXPECT_GE(writer.predicted_acc, 0.0);
  // An all-read workload costs nothing under any replication protocol.
  EXPECT_NEAR(readers.predicted_acc, 0.0, 1e-9);
}

TEST(TelemetryTest, AdaptiveMemoryExposesLiveTelemetry) {
  adaptive::AdaptiveSharedMemory::Options options;
  options.memory.protocol = protocols::ProtocolKind::kWriteThrough;
  options.memory.num_clients = 2;
  options.memory.num_objects = 2;
  adaptive::AdaptiveSharedMemory memory(options);
  memory.write(0, 1, 42);
  EXPECT_EQ(memory.read(1, 1), 42u);
  EXPECT_EQ(memory.telemetry().accesses(), 2u);
  EXPECT_EQ(memory.telemetry().object(1).writes, 1u);
  EXPECT_EQ(memory.telemetry().object(1).reads, 1u);
}

}  // namespace
}  // namespace drsm
