// Tests for the explicit-state model checker (src/check): exhaustive
// verification of all eight protocols at small configurations, state-name
// coverage, determinism of the exploration, and — through deliberately
// broken machines — that each invariant actually fires and produces a
// minimal, exportable counterexample.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "check/model_checker.h"
#include "obs/trace.h"
#include "protocols/protocol.h"
#include "support/error.h"
#include "test_util.h"

namespace drsm {
namespace {

using check::CheckConfig;
using check::CheckResult;
using protocols::ProtocolKind;

// ---------------------------------------------------------------------------
// Exhaustive verification of the real protocols.
// ---------------------------------------------------------------------------

class ExhaustiveCheckTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ExhaustiveCheckTest, TwoClientsOneReadOneWriteIsViolationFree) {
  CheckConfig config;
  config.protocol = GetParam();
  config.num_clients = 2;
  config.reads_per_client = 1;
  config.writes_per_client = 1;
  const CheckResult result = check::check_protocol(config);
  ASSERT_TRUE(result.ok()) << result.violations.front().invariant << ": "
                           << result.violations.front().detail;
  EXPECT_FALSE(result.hit_state_cap);
  EXPECT_GT(result.states, 1u);
  EXPECT_GT(result.transitions, result.states - 1);  // BFS tree + dedups
  EXPECT_GT(result.probes, 0u);
  EXPECT_GT(result.max_depth, 1u);
}

TEST_P(ExhaustiveCheckTest, VisitsExactlyTheDocumentedCopyStates) {
  CheckConfig config;
  config.protocol = GetParam();
  config.num_clients = 2;
  const CheckResult result = check::check_protocol(config);
  ASSERT_TRUE(result.ok());

  // The union of client and sequencer state names, sorted unique — the
  // exploration must reach every state copy_state_names documents, and
  // must never see one it does not.
  std::vector<std::string> expected =
      protocols::copy_state_names(GetParam(), /*sequencer=*/false);
  for (auto& name :
       protocols::copy_state_names(GetParam(), /*sequencer=*/true))
    expected.push_back(std::move(name));
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  EXPECT_EQ(result.visited_state_names, expected);
}

TEST_P(ExhaustiveCheckTest, ExplorationIsDeterministic) {
  CheckConfig config;
  config.protocol = GetParam();
  config.num_clients = 2;
  const CheckResult a = check::check_protocol(config);
  const CheckResult b = check::check_protocol(config);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.max_depth, b.max_depth);
  EXPECT_EQ(a.visited_state_names, b.visited_state_names);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ExhaustiveCheckTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// N = 3 blows the full state space up by two orders of magnitude; the
// acceptance bar requires it for the fixed-sequencer write-through and the
// migrating-owner Berkeley, the two structurally extreme protocols.  The
// default (reduced) mode must both stay exhaustive — symmetry and POR
// applied, no cap — and actually earn its keep: at least a 10x shrink of
// the canonical space versus the full expansion's known counts (33,897
// states for WT, 296,634 for Berkeley).
TEST(ExhaustiveCheckLarge, WriteThroughThreeClients) {
  CheckConfig config;
  config.protocol = ProtocolKind::kWriteThrough;
  config.num_clients = 3;
  const CheckResult result = check::check_protocol(config);
  ASSERT_TRUE(result.ok()) << result.violations.front().detail;
  EXPECT_FALSE(result.hit_state_cap);
  EXPECT_TRUE(result.symmetry_applied);
  EXPECT_TRUE(result.por_applied);
  EXPECT_TRUE(result.compact_frontier);
  EXPECT_GT(result.states, 1'000u);
  EXPECT_LT(result.states, 33'897u / 10);
  EXPECT_GT(result.symmetry_hits, 0u);
}

TEST(ExhaustiveCheckLarge, BerkeleyThreeClients) {
  CheckConfig config;
  config.protocol = ProtocolKind::kBerkeley;
  config.num_clients = 3;
  const CheckResult result = check::check_protocol(config);
  ASSERT_TRUE(result.ok()) << result.violations.front().detail;
  EXPECT_FALSE(result.hit_state_cap);
  EXPECT_GT(result.states, 10'000u);
  EXPECT_LT(result.states, 296'634u / 10);
}

// Full expansion of the same configuration is the reference the reduced
// counts above are measured against.
TEST(ExhaustiveCheckLarge, WriteThroughThreeClientsFullExpansion) {
  CheckConfig config;
  config.protocol = ProtocolKind::kWriteThrough;
  config.num_clients = 3;
  config.expansion = CheckConfig::Expansion::kFullExpansion;
  const CheckResult result = check::check_protocol(config);
  ASSERT_TRUE(result.ok()) << result.violations.front().detail;
  EXPECT_FALSE(result.symmetry_applied);
  EXPECT_FALSE(result.por_applied);
  EXPECT_EQ(result.states, 33'897u);
}

// ---------------------------------------------------------------------------
// Broken machines: every invariant must fire, with a minimal trace.
// ---------------------------------------------------------------------------

// Swallows every message: the first issued operation pends forever.
class BlackHoleMachine final : public fsm::ProtocolMachine {
 public:
  void on_message(fsm::MachineContext&, const fsm::Message&) override {}
  std::unique_ptr<fsm::ProtocolMachine> clone() const override {
    return std::make_unique<BlackHoleMachine>(*this);
  }
  void encode(std::vector<std::uint8_t>& out) const override {
    out.push_back(0);
  }
  const char* state_name() const override { return "HOLE"; }
};

// Rejects writes the way the real machines reject undefined transitions.
class WriteRejectingMachine final : public fsm::ProtocolMachine {
 public:
  void on_message(fsm::MachineContext& ctx,
                  const fsm::Message& msg) override {
    DRSM_CHECK(msg.token.type != fsm::MsgType::kWriteReq,
               "no transition for W-REQ");
    ctx.return_read(0, 0);
  }
  std::unique_ptr<fsm::ProtocolMachine> clone() const override {
    return std::make_unique<WriteRejectingMachine>(*this);
  }
  void encode(std::vector<std::uint8_t>& out) const override {
    out.push_back(0);
  }
  const char* state_name() const override { return "REJECT"; }
};

// Claims an exclusive copy state on every node simultaneously.
class AlwaysDirtyMachine final : public fsm::ProtocolMachine {
 public:
  void on_message(fsm::MachineContext&, const fsm::Message&) override {}
  std::unique_ptr<fsm::ProtocolMachine> clone() const override {
    return std::make_unique<AlwaysDirtyMachine>(*this);
  }
  void encode(std::vector<std::uint8_t>& out) const override {
    out.push_back(0);
  }
  const char* state_name() const override { return "DIRTY"; }
};

CheckConfig broken_config(CheckConfig::MachineFactory factory) {
  CheckConfig config;
  config.machine_factory = std::move(factory);
  config.num_clients = 2;
  config.check_exclusivity = false;   // non-protocol state names
  config.probe_quiescent_reads = false;
  return config;
}

TEST(BrokenMachine, SwallowedRequestIsReportedAsDeadlock) {
  CheckConfig config = broken_config(
      [](NodeId) { return std::make_unique<BlackHoleMachine>(); });
  const CheckResult result = check::check_protocol(config);
  ASSERT_FALSE(result.ok());
  EXPECT_STREQ(result.violations.front().invariant, "deadlock");
  // BFS: the minimal counterexample is the single issue step.
  ASSERT_EQ(result.counterexample.size(), 1u);
  EXPECT_EQ(result.counterexample.front().kind,
            check::CheckStep::Kind::kIssue);
}

TEST(BrokenMachine, UndefinedTransitionIsCaughtNotFatal) {
  CheckConfig config = broken_config(
      [](NodeId) { return std::make_unique<WriteRejectingMachine>(); });
  config.reads_per_client = 0;  // only writes: first issue must trip it
  const CheckResult result = check::check_protocol(config);
  ASSERT_FALSE(result.ok());
  EXPECT_STREQ(result.violations.front().invariant, "defined-transition");
  EXPECT_NE(result.violations.front().detail.find("no transition"),
            std::string::npos);
  EXPECT_EQ(result.counterexample.size(), 1u);
}

TEST(BrokenMachine, DoubleExclusiveCopyViolatesExclusivity) {
  CheckConfig config = broken_config(
      [](NodeId) { return std::make_unique<AlwaysDirtyMachine>(); });
  // DIRTY classifies as exclusive under Synapse; two clients hold it from
  // the start, so the violation is found in the initial state.
  config.protocol = ProtocolKind::kSynapse;
  config.check_exclusivity = true;
  config.reads_per_client = 0;
  config.writes_per_client = 0;
  const CheckResult result = check::check_protocol(config);
  ASSERT_FALSE(result.ok());
  EXPECT_STREQ(result.violations.front().invariant, "exclusivity");
  EXPECT_TRUE(result.counterexample.empty());  // initial state: zero steps
}

// ---------------------------------------------------------------------------
// Counterexample export.
// ---------------------------------------------------------------------------

TEST(Counterexample, ExportsStepsAndViolationAsJsonl) {
  CheckConfig config = broken_config(
      [](NodeId) { return std::make_unique<BlackHoleMachine>(); });
  const CheckResult result = check::check_protocol(config);
  ASSERT_FALSE(result.ok());

  obs::TraceRecorder recorder;
  check::export_counterexample(result, recorder);
  const std::string jsonl = recorder.to_jsonl();
  EXPECT_NE(jsonl.find("\"check_step\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"violation\""), std::string::npos);
  EXPECT_NE(jsonl.find("deadlock"), std::string::npos);
  // One line per step plus the violation line.
  const std::size_t lines =
      static_cast<std::size_t>(std::count(jsonl.begin(), jsonl.end(), '\n'));
  EXPECT_EQ(lines, result.counterexample.size() + 1);
}

TEST(Counterexample, ExportIsNoOpWhenOk) {
  CheckConfig config;
  config.protocol = ProtocolKind::kWriteThrough;
  const CheckResult result = check::check_protocol(config);
  ASSERT_TRUE(result.ok());
  obs::TraceRecorder recorder;
  check::export_counterexample(result, recorder);
  EXPECT_TRUE(recorder.to_jsonl().empty());
}

// The shared Trajectory helper pins counterexample determinism the same
// way the simulator goldens are pinned: fold every step's message into an
// FNV hash and require identical hashes across repeated checks.
TEST(Counterexample, TraceIsDeterministic) {
  const auto hash_run = [] {
    CheckConfig config = broken_config(
        [](NodeId) { return std::make_unique<WriteRejectingMachine>(); });
    config.reads_per_client = 0;
    const CheckResult result = check::check_protocol(config);
    testing::Trajectory traj;
    for (std::size_t i = 0; i < result.counterexample.size(); ++i) {
      const check::CheckStep& step = result.counterexample[i];
      traj.mix_message(i, step.src, step.node, step.msg);
      traj.mix(static_cast<std::uint64_t>(step.kind));
    }
    return traj;
  };
  const auto a = hash_run();
  const auto b = hash_run();
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.events, b.events);
  EXPECT_GT(a.events, 0u);
}

}  // namespace
}  // namespace drsm
