// Live migration under real concurrency, and the online self-tuning loop.
//
//  * forced migrations from client threads while traffic is in flight,
//    with check::ShardedOracle refereeing every serialized history across
//    the switches (including the ISSUE's thousand-seeded-runs bar);
//  * adaptive::OnlineController end to end: telemetry recorded from grant
//    handlers, decision passes pricing the hot set with the analytic
//    solver, migrations issued into the running DSM — deterministically
//    via poll(), and with the background thread under load (the TSan
//    stage runs this binary: ctest -L concurrency).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "adaptive/online.h"
#include "check/sharded_oracle.h"
#include "dsm/concurrent.h"
#include "protocols/protocol.h"
#include "support/rng.h"

namespace drsm {
namespace {

using check::OracleMode;
using check::ShardedOracle;
using dsm::ConcurrentSharedMemory;
using protocols::ProtocolKind;

TEST(ConcurrentMigration, StressWithForcedMigrationsStaysCoherent) {
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kShards = 2;
  constexpr std::size_t kObjects = 8;
  constexpr std::size_t kOpsPerClient = 20'000;
  constexpr std::size_t kMigrateEvery = 256;
  const ProtocolKind cycle[] = {
      ProtocolKind::kWriteThrough, ProtocolKind::kBerkeley,
      ProtocolKind::kDragon, ProtocolKind::kFirefly};

  ShardedOracle oracle(kShards, OracleMode::kSequential);
  ConcurrentSharedMemory::Options options;
  options.protocol = ProtocolKind::kWriteThrough;
  options.num_clients = kClients;
  options.num_objects = kObjects;
  options.num_shards = kShards;
  for (std::size_t s = 0; s < kShards; ++s)
    options.shard_taps.push_back(oracle.tap(s));
  ConcurrentSharedMemory memory(options);

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto& session = memory.session(static_cast<NodeId>(c));
      Rng rng(1000003 * (c + 1));
      std::size_t cycle_at = c;  // threads force different protocols
      for (std::size_t i = 1; i <= kOpsPerClient; ++i) {
        const ObjectId object =
            static_cast<ObjectId>(rng.uniform_index(kObjects));
        if (rng.bernoulli(0.4))
          session.write_unique(object);
        else
          session.read(object);
        if (i % kMigrateEvery == 0) {
          memory.migrate(object, cycle[cycle_at % std::size(cycle)]);
          ++cycle_at;
        }
      }
      session.drain();
    });
  }
  for (auto& t : clients) t.join();
  memory.stop();
  ASSERT_FALSE(memory.failed()) << memory.error();

  oracle.finish();
  EXPECT_TRUE(oracle.ok()) << oracle.violations().front();
  const auto stats = memory.stats();
  EXPECT_EQ(stats.ops, kClients * kOpsPerClient);
  EXPECT_GT(stats.migrations, 0u);
}

TEST(ConcurrentMigration, ThousandSeededMigratingRunsAreClean) {
  // The ISSUE acceptance bar: >= 1000 seeded runs with forced migrations,
  // zero oracle violations.  Each run is small; both sessions are driven
  // from this thread (a session is confined to the thread that uses it,
  // and here that is the same one).
  constexpr std::size_t kRuns = 1000;
  const ProtocolKind cycle[] = {ProtocolKind::kWriteThrough,
                                ProtocolKind::kBerkeley,
                                ProtocolKind::kDragon};
  std::uint64_t total_migrations = 0;
  for (std::uint64_t seed = 0; seed < kRuns; ++seed) {
    ShardedOracle oracle(2, OracleMode::kSequential);
    ConcurrentSharedMemory::Options options;
    options.protocol = cycle[seed % std::size(cycle)];
    options.num_clients = 2;
    options.num_objects = 4;
    options.num_shards = 2;
    options.shard_taps = {oracle.tap(0), oracle.tap(1)};
    ConcurrentSharedMemory memory(options);

    Rng rng(seed * 2654435761u + 17);
    for (std::size_t i = 1; i <= 128; ++i) {
      auto& session =
          memory.session(static_cast<NodeId>(rng.uniform_index(2)));
      const ObjectId object = static_cast<ObjectId>(rng.uniform_index(4));
      if (rng.bernoulli(0.5))
        session.write_unique(object);
      else
        session.read(object);
      if (i % 16 == 0)
        memory.migrate(object, cycle[rng.uniform_index(std::size(cycle))]);
    }
    memory.session(0).drain();
    memory.session(1).drain();
    memory.stop();
    ASSERT_FALSE(memory.failed())
        << "seed " << seed << ": " << memory.error();
    oracle.finish();
    ASSERT_TRUE(oracle.ok())
        << "seed " << seed << ": " << oracle.violations().front();
    total_migrations += memory.stats().migrations;
  }
  EXPECT_GT(total_migrations, kRuns);  // migrations actually executed
}

// ---------------------------------------------------------------------------
// OnlineController: telemetry -> pricing -> live migration.
// ---------------------------------------------------------------------------

// Wires a session's completions into the controller's telemetry ring, the
// way a real client would.
void wire(ConcurrentSharedMemory& memory, NodeId node,
          adaptive::OnlineController& controller) {
  memory.session(node).set_grant_handler(
      [&controller, node](const sim::ShardGrant& grant) {
        controller.record(node, grant.object, grant.op);
      });
}

TEST(OnlineController, PhaseChangeDrivesVerifiedMigrations) {
  // One hot object through two workload phases under the default cost
  // model (s=100, p=30):
  //   phase 1 — shared read-heavy: interleaved reads by both clients,
  //     sparse writes.  Invalidation would force a ~s refetch per reader
  //     per write; Dragon's ~p updates win.
  //   phase 2 — producer/consumer write runs: client 0 writes in long
  //     runs, client 1 reads rarely.  Updating the reader's copy on every
  //     write now loses to Berkeley's owner-local writes plus a rare ~s
  //     refetch.
  // The controller must follow the phase flip with exactly one migration
  // each — and not flap while a phase is stationary.
  ShardedOracle oracle(1, OracleMode::kSequential);
  ConcurrentSharedMemory::Options options;
  options.protocol = ProtocolKind::kWriteThrough;
  options.num_clients = 2;
  options.num_objects = 4;
  options.num_shards = 1;
  options.shard_taps = {oracle.tap(0)};
  ConcurrentSharedMemory memory(options);

  adaptive::OnlineController::Options copts;
  copts.decide_every = 128;
  copts.hot_k = 4;
  copts.min_observations = 64;
  copts.hysteresis = 0.05;
  copts.cooldown_passes = 1;
  copts.window = 256;
  copts.candidates = {ProtocolKind::kBerkeley, ProtocolKind::kDragon};
  adaptive::OnlineController controller(memory, copts);
  wire(memory, 0, controller);
  wire(memory, 1, controller);

  auto& s0 = memory.session(0);
  auto& s1 = memory.session(1);
  // Operations run synchronously (issue + drain) so completions — and with
  // them the controller's telemetry records — interleave across nodes the
  // way the workload does, instead of batching per session.
  const auto run_phase1 = [&](std::size_t ops) {
    for (std::size_t i = 0; i < ops; ++i) {
      if (i % 20 == 7) {
        s1.write_unique(0);
        s1.drain();
      } else if (i % 2 == 0) {
        s0.read_sync(0);
      } else {
        s1.read_sync(0);
      }
    }
  };

  run_phase1(512);
  controller.poll();
  EXPECT_EQ(controller.object_protocol(0), ProtocolKind::kDragon);
  EXPECT_EQ(controller.migrations(), 1u);

  // Stationary workload: the hysteresis band holds the incumbent.
  run_phase1(512);
  controller.poll();
  EXPECT_EQ(controller.object_protocol(0), ProtocolKind::kDragon);
  EXPECT_EQ(controller.migrations(), 1u) << "controller flapped";

  // Phase flip.
  for (std::size_t i = 0; i < 512; ++i) {
    if (i % 10 == 3) {
      s1.read_sync(0);
    } else {
      s0.write_unique(0);
      s0.drain();
    }
  }
  controller.poll();
  EXPECT_EQ(controller.object_protocol(0), ProtocolKind::kBerkeley);
  EXPECT_EQ(controller.migrations(), 2u);

  memory.stop();
  ASSERT_FALSE(memory.failed()) << memory.error();
  // The controller's view converged with the shard's ground truth.
  EXPECT_EQ(memory.object_protocol(0), controller.object_protocol(0));
  oracle.finish();
  EXPECT_TRUE(oracle.ok()) << oracle.violations().front();
  EXPECT_GT(controller.records(), 0u);
  EXPECT_GE(controller.passes(), 3u);
  EXPECT_GT(controller.reclassify_ms(), 0.0);
}

TEST(OnlineController, BackgroundThreadUnderConcurrentLoad) {
  // The controller thread races four real client threads: records stream
  // through the ring, decisions run concurrently with traffic, and every
  // migration lands in a live shard — the oracle referees throughout.
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kOpsPerClient = 10'000;

  ShardedOracle oracle(2, OracleMode::kSequential);
  ConcurrentSharedMemory::Options options;
  options.protocol = ProtocolKind::kWriteThrough;
  options.num_clients = kClients;
  options.num_objects = 8;
  options.num_shards = 2;
  options.shard_taps = {oracle.tap(0), oracle.tap(1)};
  ConcurrentSharedMemory memory(options);

  adaptive::OnlineController::Options copts;
  copts.decide_every = 512;
  copts.min_observations = 128;
  adaptive::OnlineController controller(memory, copts);
  for (std::size_t c = 0; c < kClients; ++c)
    wire(memory, static_cast<NodeId>(c), controller);
  controller.start();

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto& session = memory.session(static_cast<NodeId>(c));
      Rng rng(0xC0FFEE + c);
      for (std::size_t i = 1; i <= kOpsPerClient; ++i) {
        const ObjectId object = static_cast<ObjectId>(rng.uniform_index(8));
        // Zipf-ish hotspot that migrates between thread-dependent homes.
        const ObjectId hot = static_cast<ObjectId>((i / 2500) % 8);
        const ObjectId target = rng.bernoulli(0.6) ? hot : object;
        if (rng.bernoulli(c == 0 ? 0.7 : 0.1))
          session.write_unique(target);
        else
          session.read(target);
      }
      session.drain();
    });
  }
  for (auto& t : clients) t.join();
  controller.stop();
  memory.stop();
  ASSERT_FALSE(memory.failed()) << memory.error();

  oracle.finish();
  EXPECT_TRUE(oracle.ok()) << oracle.violations().front();
  EXPECT_GT(controller.records(), 0u);
  EXPECT_GT(controller.passes(), 0u);
  // Records either landed in telemetry or were counted as dropped.
  EXPECT_EQ(controller.records() + controller.dropped(),
            kClients * kOpsPerClient);
}

}  // namespace
}  // namespace drsm
