// Anchor tests: the exact Markov-chain engine must reproduce every closed
// form the paper states (and every closed form we derived with the paper's
// methodology) to near machine precision.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "analytic/chain.h"
#include "analytic/closed_form.h"
#include "analytic/interner.h"
#include "analytic/solver.h"
#include "sim/sequential.h"
#include "workload/spec.h"

namespace drsm {
namespace {

using analytic::AccSolver;
using analytic::ProtocolChain;
using protocols::ProtocolKind;
namespace cf = analytic::closed_form;

sim::SystemConfig make_config(std::size_t n, double s, double p) {
  sim::SystemConfig config;
  config.num_clients = n;
  config.costs.s = s;
  config.costs.p = p;
  return config;
}

constexpr double kTol = 1e-9;

// ---------------------------------------------------------------------------
// Write-Through: eqn (3), read disturbance.
// ---------------------------------------------------------------------------

TEST(ChainVsClosedForm, WriteThroughReadDisturbanceMatchesEqn3) {
  const std::size_t n = 5, a = 2;
  const double s = 100.0, p_cost = 30.0;
  AccSolver solver(make_config(n, s, p_cost));
  for (double p : {0.0, 0.1, 0.3, 0.5, 0.8}) {
    for (double sigma : {0.0, 0.05, 0.1, 0.2}) {
      if (p + a * sigma > 1.0) continue;
      const auto spec = workload::read_disturbance(p, sigma, a);
      const double chain_acc = solver.acc(ProtocolKind::kWriteThrough, spec);
      const double closed =
          cf::wt_read_disturbance(p, sigma, a, n, s, p_cost);
      EXPECT_NEAR(chain_acc, closed, kTol)
          << "p=" << p << " sigma=" << sigma;
    }
  }
}

TEST(ChainVsClosedForm, WriteThroughWriteDisturbanceMatchesEqn4) {
  const std::size_t n = 6, a = 3;
  const double s = 50.0, p_cost = 10.0;
  AccSolver solver(make_config(n, s, p_cost));
  for (double p : {0.0, 0.2, 0.4, 0.6}) {
    for (double xi : {0.0, 0.05, 0.1}) {
      if (p + a * xi > 1.0) continue;
      const auto spec = workload::write_disturbance(p, xi, a);
      const double chain_acc = solver.acc(ProtocolKind::kWriteThrough, spec);
      const double closed =
          cf::wt_write_disturbance(p, xi, a, n, s, p_cost);
      EXPECT_NEAR(chain_acc, closed, kTol) << "p=" << p << " xi=" << xi;
    }
  }
}

TEST(ChainVsClosedForm, WriteThroughMultipleAcMatchesEqn5) {
  const std::size_t n = 6;
  const double s = 100.0, p_cost = 30.0;
  AccSolver solver(make_config(n, s, p_cost));
  for (std::size_t beta : {1u, 2u, 4u}) {
    for (double p : {0.0, 0.1, 0.3, 0.7, 1.0}) {
      const auto spec = workload::multiple_activity_centers(p, beta);
      const double chain_acc = solver.acc(ProtocolKind::kWriteThrough, spec);
      const double closed = cf::wt_multiple_ac(p, beta, n, s, p_cost);
      EXPECT_NEAR(chain_acc, closed, kTol) << "p=" << p << " beta=" << beta;
    }
  }
}

// ---------------------------------------------------------------------------
// Ideal workload: Section 5.1 limits for all eight protocols.
// ---------------------------------------------------------------------------

class IdealWorkloadTest
    : public ::testing::TestWithParam<protocols::ProtocolKind> {};

TEST_P(IdealWorkloadTest, ChainMatchesSection51Limit) {
  const std::size_t n = 4;
  const double s = 100.0, p_cost = 30.0;
  AccSolver solver(make_config(n, s, p_cost));
  for (double p : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    const auto spec = workload::ideal_workload(p);
    const double chain_acc = solver.acc(GetParam(), spec);
    const double closed = cf::ideal_acc(GetParam(), p, n, s, p_cost);
    EXPECT_NEAR(chain_acc, closed, kTol)
        << protocols::to_string(GetParam()) << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, IdealWorkloadTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// ---------------------------------------------------------------------------
// p = 0: every protocol reaches an all-valid steady state with acc = 0.
// ---------------------------------------------------------------------------

class ZeroWriteTest
    : public ::testing::TestWithParam<protocols::ProtocolKind> {};

TEST_P(ZeroWriteTest, ReadOnlyWorkloadCostsNothing) {
  AccSolver solver(make_config(6, 1000.0, 30.0));
  const auto spec = workload::read_disturbance(0.0, 0.2, 3);
  EXPECT_NEAR(solver.acc(GetParam(), spec), 0.0, kTol)
      << protocols::to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ZeroWriteTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// ---------------------------------------------------------------------------
// Derived closed forms vs chain.
// ---------------------------------------------------------------------------

TEST(ChainVsClosedForm, WtvReadDisturbance) {
  const std::size_t n = 5, a = 2;
  const double s = 100.0, p_cost = 30.0;
  AccSolver solver(make_config(n, s, p_cost));
  for (double p : {0.0, 0.1, 0.4, 0.8}) {
    for (double sigma : {0.0, 0.05, 0.1}) {
      if (p + a * sigma > 1.0) continue;
      const auto spec = workload::read_disturbance(p, sigma, a);
      EXPECT_NEAR(solver.acc(ProtocolKind::kWriteThroughV, spec),
                  cf::wtv_read_disturbance(p, sigma, a, n, s, p_cost), kTol)
          << "p=" << p << " sigma=" << sigma;
    }
  }
}

TEST(ChainVsClosedForm, WtvWriteDisturbance) {
  const std::size_t n = 5, a = 2;
  const double s = 100.0, p_cost = 30.0;
  AccSolver solver(make_config(n, s, p_cost));
  for (double p : {0.0, 0.1, 0.4}) {
    for (double xi : {0.0, 0.05, 0.15}) {
      if (p + a * xi > 1.0) continue;
      const auto spec = workload::write_disturbance(p, xi, a);
      EXPECT_NEAR(solver.acc(ProtocolKind::kWriteThroughV, spec),
                  cf::wtv_write_disturbance(p, xi, a, n, s, p_cost), kTol)
          << "p=" << p << " xi=" << xi;
    }
  }
}

TEST(ChainVsClosedForm, BerkeleyReadDisturbance) {
  const std::size_t n = 7, a = 3;
  const double s = 200.0, p_cost = 30.0;
  AccSolver solver(make_config(n, s, p_cost));
  for (double p : {0.0, 0.1, 0.3, 0.6}) {
    for (double sigma : {0.0, 0.05, 0.1}) {
      if (p + a * sigma > 1.0) continue;
      const auto spec = workload::read_disturbance(p, sigma, a);
      EXPECT_NEAR(
          solver.acc(ProtocolKind::kBerkeley, spec),
          cf::berkeley_read_disturbance(p, sigma, a, n, s, p_cost), kTol)
          << "p=" << p << " sigma=" << sigma;
    }
  }
}

TEST(ChainVsClosedForm, DragonAndFireflyAreFlatInSigma) {
  const std::size_t n = 5, a = 2;
  const double s = 100.0, p_cost = 30.0;
  AccSolver solver(make_config(n, s, p_cost));
  for (double p : {0.1, 0.4}) {
    for (double sigma : {0.0, 0.1, 0.2}) {
      if (p + a * sigma > 1.0) continue;
      const auto spec = workload::read_disturbance(p, sigma, a);
      EXPECT_NEAR(solver.acc(ProtocolKind::kDragon, spec),
                  cf::dragon_acc(p, n, p_cost), kTol);
      EXPECT_NEAR(solver.acc(ProtocolKind::kFirefly, spec),
                  cf::firefly_acc(p, n, p_cost), kTol);
    }
  }
}

TEST(ChainVsClosedForm, SynapseReadDisturbanceSingleDisturber) {
  const std::size_t n = 5;
  const double s = 100.0, p_cost = 30.0;
  AccSolver solver(make_config(n, s, p_cost));
  for (double p : {0.05, 0.2, 0.5, 0.8}) {
    for (double sigma : {0.05, 0.1, 0.19}) {
      if (p + sigma > 1.0) continue;
      const auto spec = workload::read_disturbance(p, sigma, 1);
      EXPECT_NEAR(
          solver.acc(ProtocolKind::kSynapse, spec),
          cf::synapse_read_disturbance_a1(p, sigma, n, s, p_cost), kTol)
          << "p=" << p << " sigma=" << sigma;
    }
  }
}

TEST(ChainVsClosedForm, IllinoisReadDisturbanceSingleDisturber) {
  const std::size_t n = 5;
  const double s = 100.0, p_cost = 30.0;
  AccSolver solver(make_config(n, s, p_cost));
  for (double p : {0.05, 0.2, 0.5, 0.8}) {
    for (double sigma : {0.05, 0.1, 0.19}) {
      if (p + sigma > 1.0) continue;
      const auto spec = workload::read_disturbance(p, sigma, 1);
      EXPECT_NEAR(
          solver.acc(ProtocolKind::kIllinois, spec),
          cf::illinois_read_disturbance_a1(p, sigma, n, s, p_cost), kTol)
          << "p=" << p << " sigma=" << sigma;
    }
  }
}

// ---------------------------------------------------------------------------
// The general (heterogeneous) disturbance model of Section 4.2, before the
// paper's homogeneous simplification.
// ---------------------------------------------------------------------------

TEST(ChainVsClosedForm, WtHeterogeneousReadDisturbance) {
  const std::size_t n = 6;
  const double s = 100.0, p_cost = 30.0;
  AccSolver solver(make_config(n, s, p_cost));
  const std::vector<std::vector<double>> sigma_sets = {
      {0.1}, {0.05, 0.15}, {0.02, 0.08, 0.2}, {0.0, 0.1, 0.0}};
  for (const auto& sigmas : sigma_sets) {
    for (double p : {0.0, 0.1, 0.3}) {
      double total = 0.0;
      for (double sigma : sigmas) total += sigma;
      if (p + total > 1.0) continue;
      const auto spec = workload::read_disturbance_heterogeneous(p, sigmas);
      EXPECT_NEAR(solver.acc(ProtocolKind::kWriteThrough, spec),
                  cf::wt_read_disturbance_heterogeneous(p, sigmas, n, s,
                                                        p_cost),
                  kTol)
          << "p=" << p << " |sigmas|=" << sigmas.size();
    }
  }
}

TEST(ChainVsClosedForm, HeterogeneousReducesToHomogeneous) {
  const std::size_t n = 6, a = 3;
  AccSolver solver(make_config(n, 100.0, 30.0));
  const double p = 0.25, sigma = 0.08;
  const auto hetero = workload::read_disturbance_heterogeneous(
      p, std::vector<double>(a, sigma));
  const auto homo = workload::read_disturbance(p, sigma, a);
  for (ProtocolKind kind : protocols::kAllProtocols) {
    EXPECT_NEAR(solver.acc(kind, hetero), solver.acc(kind, homo), kTol)
        << protocols::to_string(kind);
  }
}

TEST(ChainVsClosedForm, HeterogeneousWriteDisturbanceReducesToHomogeneous) {
  const std::size_t n = 6, a = 3;
  AccSolver solver(make_config(n, 100.0, 30.0));
  const double p = 0.2, xi = 0.06;
  const auto hetero = workload::write_disturbance_heterogeneous(
      p, std::vector<double>(a, xi));
  const auto homo = workload::write_disturbance(p, xi, a);
  for (ProtocolKind kind : protocols::kAllProtocols) {
    EXPECT_NEAR(solver.acc(kind, hetero), solver.acc(kind, homo), kTol)
        << protocols::to_string(kind);
  }
  // Skew matters: concentrating the same total write disturbance on one
  // client is cheaper for the ownership protocols (fewer owner changes).
  const auto skewed = workload::write_disturbance_heterogeneous(
      p, {3 * xi, 0.0, 0.0});
  EXPECT_LT(solver.acc(ProtocolKind::kBerkeley, skewed),
            solver.acc(ProtocolKind::kBerkeley, homo));
}

// ---------------------------------------------------------------------------
// Trace probabilities (Section 4.3) sum to one.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Per-trace probabilities pi_1..pi_4 (Section 4.3), extracted from the
// chain's stationary distribution by classifying each (state, event) pair
// into the paper's traces, and compared with the derived formulas.
// ---------------------------------------------------------------------------

TEST(TraceProbabilities, ChainRecoversSection43TraceProbabilities) {
  const std::size_t n = 6, a = 2;
  const sim::SystemConfig config = make_config(n, 100.0, 30.0);
  for (double p : {0.2, 0.5}) {
    for (double sigma : {0.1, 0.2}) {
      if (p + a * sigma > 1.0) continue;
      const auto spec = workload::read_disturbance(p, sigma, a);
      analytic::ProtocolChain chain(ProtocolKind::kWriteThrough, config,
                                    spec);
      const auto probs = spec.probabilities();
      const auto pi_states = chain.stationary(probs);

      // WT state keys: one byte per machine (clients 0..a ascending, then
      // the sequencer); byte 0 is the activity center (0=INVALID,
      // 1=VALID), bytes 1..a the disturbers.
      double pi1 = 0.0, pi2 = 0.0, pi3 = 0.0, pi4 = 0.0;
      for (std::size_t s = 0; s < chain.num_states(); ++s) {
        if (pi_states[s] == 0.0) continue;
        const auto& key = chain.state_key(s);
        for (std::size_t e = 0; e < spec.events.size(); ++e) {
          const auto& event = spec.events[e];
          const double weight = pi_states[s] * probs[e];
          const bool issuer_valid = key[event.node] != 0;
          if (event.op == fsm::OpKind::kRead) {
            (issuer_valid ? pi1 : pi2) += weight;
          } else {
            (issuer_valid ? pi3 : pi4) += weight;
          }
        }
      }
      const auto expected =
          cf::wt_trace_probabilities_read_disturbance(p, sigma, a);
      EXPECT_NEAR(pi1, expected.pi1, 1e-9) << "p=" << p << " s=" << sigma;
      EXPECT_NEAR(pi2, expected.pi2, 1e-9);
      EXPECT_NEAR(pi3, expected.pi3, 1e-9);
      EXPECT_NEAR(pi4, expected.pi4, 1e-9);
    }
  }
}

TEST(TraceProbabilities, ReadDisturbanceSumsToOne) {
  for (double p : {0.0, 0.2, 0.5}) {
    for (double sigma : {0.0, 0.1, 0.2}) {
      if (p + 2 * sigma > 1.0) continue;
      const auto pi = cf::wt_trace_probabilities_read_disturbance(p, sigma, 2);
      EXPECT_NEAR(pi.pi1 + pi.pi2 + pi.pi3 + pi.pi4, 1.0, kTol);
    }
  }
}

TEST(TraceProbabilities, WriteDisturbanceSumsToOne) {
  for (double p : {0.0, 0.2, 0.5}) {
    for (double xi : {0.0, 0.1}) {
      if (p + 2 * xi > 1.0) continue;
      const auto pi = cf::wt_trace_probabilities_write_disturbance(p, xi, 2);
      EXPECT_NEAR(pi.pi1 + pi.pi2 + pi.pi3 + pi.pi4, 1.0, kTol);
    }
  }
}

TEST(TraceProbabilities, MultipleAcSumsToOne) {
  for (double p : {0.0, 0.3, 1.0}) {
    for (std::size_t beta : {1u, 3u, 5u}) {
      const auto pi = cf::wt_trace_probabilities_multiple_ac(p, beta);
      EXPECT_NEAR(pi.pi1 + pi.pi2 + pi.pi3 + pi.pi4, 1.0, kTol);
    }
  }
}

// ---------------------------------------------------------------------------
// State interning: the hashed interner must enumerate exactly the state
// set the original std::map-based BFS found.
// ---------------------------------------------------------------------------

TEST(StateInterner, DedupsAndRoundTripsBeyondInitialCapacity) {
  analytic::StateInterner interner;
  std::vector<std::vector<std::uint8_t>> keys;
  for (std::uint8_t hi = 0; hi < 20; ++hi)
    for (std::uint8_t lo = 0; lo < 20; ++lo)
      keys.push_back({hi, lo, static_cast<std::uint8_t>(hi ^ lo)});
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto [index, inserted] = interner.intern(keys[i]);
    EXPECT_EQ(index, i);
    EXPECT_TRUE(inserted);
  }
  EXPECT_EQ(interner.size(), keys.size());  // forces several grow() rounds
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto [index, inserted] = interner.intern(keys[i]);
    EXPECT_EQ(index, i);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(interner.key(static_cast<std::uint32_t>(i)), keys[i]);
  }
}

TEST(ChainEnumeration, InternerMatchesMapBasedEnumerationAllProtocols) {
  // Reference enumeration: the original approach — a std::map over encoded
  // keys, one deep runtime snapshot per state.
  const auto spec = workload::read_disturbance(0.3, 0.1, 2);
  sim::SystemConfig config = make_config(3, 100.0, 30.0);
  for (ProtocolKind kind : protocols::kAllProtocols) {
    std::vector<NodeId> roster;
    for (NodeId node : spec.roster())
      if (node < config.num_clients) roster.push_back(node);
    sim::SequentialRuntime initial(kind, config, std::move(roster));

    std::map<std::vector<std::uint8_t>, std::uint32_t> index_of;
    std::vector<sim::SequentialRuntime> snapshots;
    std::vector<std::uint8_t> key;
    initial.encode_state(key);
    index_of[key] = 0;
    snapshots.push_back(initial);
    std::deque<std::uint32_t> frontier = {0};
    std::uint64_t value_counter = 0;
    while (!frontier.empty()) {
      const std::uint32_t s = frontier.front();
      frontier.pop_front();
      for (const auto& event : spec.events) {
        sim::SequentialRuntime next = snapshots[s];
        next.execute(event.node, event.op, ++value_counter);
        next.encode_state(key);
        if (index_of.emplace(key, static_cast<std::uint32_t>(snapshots.size()))
                .second) {
          frontier.push_back(static_cast<std::uint32_t>(snapshots.size()));
          snapshots.push_back(std::move(next));
        }
      }
    }

    const ProtocolChain chain(kind, config, spec);
    EXPECT_EQ(chain.num_states(), index_of.size())
        << protocols::to_string(kind);
    for (std::size_t s = 0; s < chain.num_states(); ++s)
      EXPECT_TRUE(index_of.count(chain.state_key(s)))
          << protocols::to_string(kind) << " state " << s;
  }
}

}  // namespace
}  // namespace drsm
