// Microbenchmark-style checks of the event engine, run under the ctest
// `perf` label (ctest -L perf).  Asserts the structural properties that
// make the engine fast — bounded arena growth, steady-state reuse —
// and prints the measured throughput for the numbers quoted in
// docs/PERFORMANCE.md.  Wall-clock thresholds are deliberately loose:
// the structural assertions are the regression guard, the printed rates
// are informational.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>

#include "obs/metrics.h"
#include "protocols/protocol.h"
#include "sim/event_sim.h"
#include "sim/replication.h"
#include "workload/generator.h"

namespace drsm {
namespace {

using protocols::ProtocolKind;

TEST(SimPerf, EventEngineThroughputAndArenaBound) {
  sim::SystemConfig config;
  config.num_clients = 8;
  config.num_objects = 8;

  sim::SimOptions options;
  options.max_ops = 100'000;
  options.warmup_ops = 1000;
  options.seed = 404;
  options.latency.min_latency = 1;
  options.latency.max_latency = 5;
  options.latency.processing_time = 1;

  obs::MetricsRegistry metrics;
  sim::EventSimulator simulator(ProtocolKind::kBerkeley, config, options);
  simulator.set_metrics(&metrics);
  workload::ConcurrentDriver driver(workload::read_disturbance(0.3, 0.1, 2),
                                    405, config.num_objects);

  const auto start = std::chrono::steady_clock::now();
  const sim::SimStats stats = simulator.run(driver);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const obs::Counter* events = metrics.find_counter("sim.events");
  const obs::Counter* alloc = metrics.find_counter("sim.alloc_bytes");
  const obs::Gauge* peak = metrics.find_gauge("sim.peak_pending_events");
  ASSERT_NE(events, nullptr);
  ASSERT_NE(alloc, nullptr);
  ASSERT_NE(peak, nullptr);

  EXPECT_GT(stats.messages, 100'000u);
  EXPECT_GT(events->value(), stats.messages);

  // The zero-allocation claim: the engine's footprint is the peak-pending
  // working set, not the event volume.  A closed-loop run of this size
  // schedules ~1M events; the arena + ring buffers must stay under 1 MB.
  EXPECT_LT(alloc->value(), 1u << 20)
      << "arena grew with event volume, not with peak pending";
  EXPECT_LT(peak->value(), 4096.0);

  std::printf("[sim_perf] %llu events, %zu messages in %.3f s: %.2fM "
              "events/s, %.2fM msgs/s, %llu alloc bytes, peak pending %g\n",
              static_cast<unsigned long long>(events->value()),
              stats.messages, seconds,
              static_cast<double>(events->value()) / seconds / 1e6,
              static_cast<double>(stats.messages) / seconds / 1e6,
              static_cast<unsigned long long>(alloc->value()),
              peak->value());
}

TEST(SimPerf, ReplicationHarnessScalesAndStaysDeterministic) {
  sim::SystemConfig config;
  config.num_clients = 4;
  config.num_objects = 4;

  sim::SimOptions options;
  options.max_ops = 20'000;
  options.warmup_ops = 500;
  options.latency.min_latency = 1;
  options.latency.max_latency = 4;
  options.latency.processing_time = 1;

  const auto spec = workload::read_disturbance(0.3, 0.1, 2);
  auto factory = [&](std::uint64_t seed, std::size_t /*rep*/) {
    return std::make_unique<workload::ConcurrentDriver>(spec, seed ^ 0xBEEF,
                                                        config.num_objects);
  };

  auto timed = [&](std::size_t threads) {
    sim::ReplicationOptions reps;
    reps.replications = 8;
    reps.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    sim::ReplicatedStats stats = sim::run_replications(
        ProtocolKind::kWriteThrough, config, options, factory, reps);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    return std::make_pair(seconds, std::move(stats));
  };

  const auto [serial_s, serial] = timed(1);
  const auto [parallel_s, parallel] = timed(0);  // hardware concurrency

  // Determinism across thread counts is the hard requirement; speedup
  // depends on the host's core count and is only reported.
  EXPECT_EQ(serial.acc_samples, parallel.acc_samples);
  EXPECT_EQ(serial.merged.measured_cost, parallel.merged.measured_cost);
  EXPECT_EQ(serial.merged.end_time, parallel.merged.end_time);

  std::printf("[sim_perf] replication x8: serial %.3f s, parallel %.3f s, "
              "speedup %.2fx\n",
              serial_s, parallel_s, serial_s / parallel_s);
}

}  // namespace
}  // namespace drsm
