// Exhaustive safety invariants: breadth-first exploration of every
// protocol state reachable under a rich multi-writer workload, checking at
// each state that
//   * at most one copy is exclusive (DIRTY), and for Write-Once at most
//     one is RESERVED, and the two never coexist;
//   * Berkeley has exactly one owner (DIRTY or SHARED-DIRTY);
//   * every read at every node returns the latest written value (checked
//     on separate clones so probing does not perturb the exploration);
//   * per-operation trace costs stay within the protocol's documented
//     worst case.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <string>

#include "protocols/protocol.h"
#include "sim/sequential.h"

namespace drsm {
namespace {

using fsm::OpKind;
using protocols::ProtocolKind;

constexpr std::size_t kN = 4;       // clients
constexpr double kS = 50.0;
constexpr double kP = 10.0;
constexpr NodeId kHome = kN;

sim::SystemConfig make_config() {
  sim::SystemConfig config;
  config.num_clients = kN;
  config.costs.s = kS;
  config.costs.p = kP;
  return config;
}

struct Explorer {
  explicit Explorer(ProtocolKind kind)
      : kind(kind), initial(kind, make_config(), {0, 1, 2}) {}

  ProtocolKind kind;
  sim::SequentialRuntime initial;
  std::map<std::vector<std::uint8_t>, sim::SequentialRuntime> states;
  std::size_t transitions = 0;
  double max_cost = 0.0;

  // Which nodes act: three clients plus the sequencer.
  static constexpr NodeId kNodes[] = {0, 1, 2, kHome};

  void check_exclusivity(const sim::SequentialRuntime& rt) {
    int dirty = 0, reserved = 0, shared_dirty = 0;
    for (NodeId node : kNodes) {
      const std::string name = rt.state_name(node);
      if (name == "DIRTY") ++dirty;
      if (name == "RESERVED") ++reserved;
      if (name == "SHARED-DIRTY") ++shared_dirty;
    }
    ASSERT_LE(dirty, 1) << protocols::to_string(kind);
    ASSERT_LE(reserved, 1) << protocols::to_string(kind);
    ASSERT_LE(dirty + reserved, 1)
        << protocols::to_string(kind) << ": two exclusive copies";
    if (kind == ProtocolKind::kBerkeley) {
      // Exactly one owner at all times.
      ASSERT_EQ(dirty + shared_dirty, 1) << "Berkeley owner count";
    }
  }

  void check_reads_latest(const sim::SequentialRuntime& rt) {
    for (NodeId node : kNodes) {
      sim::SequentialRuntime probe = rt;  // reads may mutate state
      const auto result = probe.execute(node, OpKind::kRead);
      ASSERT_EQ(result.read_value, rt.latest_value())
          << protocols::to_string(kind) << " node " << node;
    }
  }

  void run() {
    // Seed a first write so latest_value is defined everywhere.
    initial.execute(kHome, OpKind::kWrite, 1);
    std::uint64_t value = 1;

    std::deque<std::vector<std::uint8_t>> frontier;
    const auto add = [&](sim::SequentialRuntime&& rt) {
      auto key = rt.encode_state();
      if (states.emplace(key, std::move(rt)).second) frontier.push_back(key);
    };
    add(std::move(initial));

    // Worst-case single trace: dirty write-miss steal (Synapse) plus
    // generous slack for the retry round.
    const double bound = 2 * kS + kN + kP + 8;

    while (!frontier.empty()) {
      const auto key = frontier.front();
      frontier.pop_front();
      const sim::SequentialRuntime& current = states.at(key);

      check_exclusivity(current);
      check_reads_latest(current);

      for (NodeId node : kNodes) {
        for (OpKind op : {OpKind::kRead, OpKind::kWrite}) {
          sim::SequentialRuntime next = current;
          const auto result = next.execute(node, op, ++value);
          ++transitions;
          max_cost = std::max(max_cost, result.cost);
          ASSERT_LE(result.cost, bound)
              << protocols::to_string(kind) << " op " << fsm::to_string(op)
              << " at node " << node;
          add(std::move(next));
        }
      }
    }
  }
};

class InvariantTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(InvariantTest, AllReachableStatesSatisfySafetyInvariants) {
  Explorer explorer(GetParam());
  explorer.run();
  // Sanity that the walk did work.  The update protocols collapse to a
  // single always-valid state; the invalidate protocols have several.
  const bool update_protocol = GetParam() == ProtocolKind::kDragon ||
                               GetParam() == ProtocolKind::kFirefly;
  EXPECT_GE(explorer.states.size(), update_protocol ? 1u : 4u)
      << protocols::to_string(GetParam());
  EXPECT_GE(explorer.transitions, 8u);
  EXPECT_GT(explorer.max_cost, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, InvariantTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace drsm
