// Verified live protocol migration (dsm/migration.h, ROADMAP item 2):
//
//  * exhaustive model checks of the drain/fence/flush/switch/seed/release
//    handoff — every ordered protocol pair at N=2, the acceptance pairs
//    (write-through <-> Berkeley / Dragon) at N=3 — in the reduced engine
//    (symmetry + POR over the wrapper's trusted codecs);
//  * reduction soundness for the migration worlds: the reduced verdicts,
//    state-name coverage, and (pinned) reference counts must match the
//    exact kFullExpansion exploration;
//  * fault injection: the two classic handoff bugs (no fence, no seed)
//    re-introduced via MigrationWorldOptions::Fault must be *caught*, with
//    counterexamples exported through the flight recorder;
//  * the runtime half: SequentialRuntime::migrate keeps the serialized
//    history contiguous under the live coherence oracle.
//
// The concurrent-runtime stress half (forced migrations under real client
// threads, the online controller) lives in migration_stress_test.cc so the
// TSan stage rebuilds only the thread tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "check/model_checker.h"
#include "check/oracle.h"
#include "dsm/migration.h"
#include "obs/flight_recorder.h"
#include "protocols/protocol.h"
#include "sim/sequential.h"

namespace drsm {
namespace {

using check::CheckConfig;
using check::CheckResult;
using check::CoherenceOracle;
using check::OracleMode;
using dsm::MigrationWorldOptions;
using protocols::ProtocolKind;

CheckResult run_migration_check(const MigrationWorldOptions& options,
                                bool full_expansion = false) {
  CheckConfig config = dsm::migration_check_config(options);
  if (full_expansion)
    config.expansion = CheckConfig::Expansion::kFullExpansion;
  return check::check_protocol(config);
}

std::string pair_name(ProtocolKind from, ProtocolKind to) {
  return std::string(protocols::to_string(from)) + " -> " +
         protocols::to_string(to);
}

// The four ISSUE acceptance pairs: write-through <-> Berkeley and Dragon.
const std::pair<ProtocolKind, ProtocolKind> kAcceptancePairs[] = {
    {ProtocolKind::kWriteThrough, ProtocolKind::kBerkeley},
    {ProtocolKind::kBerkeley, ProtocolKind::kWriteThrough},
    {ProtocolKind::kWriteThrough, ProtocolKind::kDragon},
    {ProtocolKind::kDragon, ProtocolKind::kWriteThrough},
};

// ---------------------------------------------------------------------------
// Exhaustive safety at N=2: every ordered pair of the eight protocols.
// ---------------------------------------------------------------------------

TEST(MigrationCheck, EveryOrderedPairSafeAtN2) {
  for (const ProtocolKind from : protocols::kAllProtocols) {
    for (const ProtocolKind to : protocols::kAllProtocols) {
      MigrationWorldOptions options;
      options.from = from;
      options.to = to;
      options.num_clients = 2;
      const CheckResult result = run_migration_check(options);
      ASSERT_TRUE(result.ok())
          << pair_name(from, to) << ": "
          << result.violations.front().invariant << " — "
          << result.violations.front().detail;
      EXPECT_FALSE(result.hit_state_cap) << pair_name(from, to);
      // trust_factory_encodings must actually lift the factory gate.
      EXPECT_TRUE(result.symmetry_applied) << pair_name(from, to);
      EXPECT_TRUE(result.por_applied) << pair_name(from, to);
    }
  }
}

TEST(MigrationCheck, ReducedMatchesFullExpansionAtN2) {
  std::size_t reduced_total = 0;
  std::size_t full_total = 0;
  for (const ProtocolKind from : protocols::kAllProtocols) {
    for (const ProtocolKind to : protocols::kAllProtocols) {
      MigrationWorldOptions options;
      options.from = from;
      options.to = to;
      options.num_clients = 2;
      const CheckResult reduced = run_migration_check(options);
      const CheckResult full =
          run_migration_check(options, /*full_expansion=*/true);
      ASSERT_TRUE(full.ok()) << pair_name(from, to) << ": "
                             << full.violations.front().detail;
      ASSERT_TRUE(reduced.ok()) << pair_name(from, to) << ": "
                                << reduced.violations.front().detail;
      // Same machine-state coverage, never more states than the reference.
      EXPECT_EQ(reduced.visited_state_names, full.visited_state_names)
          << pair_name(from, to);
      EXPECT_LE(reduced.states, full.states) << pair_name(from, to);
      EXPECT_FALSE(full.symmetry_applied);
      EXPECT_FALSE(full.por_applied);
      reduced_total += reduced.states;
      full_total += full.states;
    }
  }
  // Across the sweep the reductions must actually bite.
  EXPECT_LT(reduced_total, full_total);
}

TEST(MigrationCheck, HandoffPhasesAreAllReachable) {
  // Phases visible at state boundaries.  kFlushing is observable only
  // when the source protocol's home flush-read needs a recall chain
  // (ownership protocols — the second configuration below); kSeeding
  // never is: the seed write runs through a *fresh* new-protocol inner
  // whose home always holds the authoritative copy, so it applies within
  // one atomic dispatch and post_dispatch advances past it.
  const auto visited = [](const CheckResult& result, const char* phase) {
    return std::find(result.visited_state_names.begin(),
                     result.visited_state_names.end(),
                     phase) != result.visited_state_names.end();
  };

  MigrationWorldOptions options;
  options.from = ProtocolKind::kWriteThrough;
  options.to = ProtocolKind::kBerkeley;
  options.num_clients = 2;
  const CheckResult result = run_migration_check(options);
  ASSERT_TRUE(result.ok());
  for (const char* phase : {"MIG-DRAINING", "MIG-DRAINED", "MIG-FENCING",
                            "MIG-SWITCHING", "MIG-SWITCHED"})
    EXPECT_TRUE(visited(result, phase)) << phase << " never visited";
  EXPECT_FALSE(visited(result, "MIG-FLUSHING"));  // home read hits locally

  options.from = ProtocolKind::kBerkeley;
  options.to = ProtocolKind::kWriteThrough;
  const CheckResult owner = run_migration_check(options);
  ASSERT_TRUE(owner.ok());
  EXPECT_TRUE(visited(owner, "MIG-FLUSHING"))
      << "recall-chain flush never visible";
}

TEST(MigrationCheck, DeeperTriggerStillSafeAndEquivalent) {
  // trigger=3 starts the handoff mid-workload, with protocol state and
  // application operations genuinely in flight.
  MigrationWorldOptions options;
  options.from = ProtocolKind::kDragon;
  options.to = ProtocolKind::kWriteThrough;
  options.num_clients = 2;
  options.trigger = 3;
  const CheckResult reduced = run_migration_check(options);
  const CheckResult full =
      run_migration_check(options, /*full_expansion=*/true);
  ASSERT_TRUE(full.ok()) << full.violations.front().detail;
  ASSERT_TRUE(reduced.ok()) << reduced.violations.front().detail;
  EXPECT_EQ(reduced.visited_state_names, full.visited_state_names);
  EXPECT_LE(reduced.states, full.states);
}

// ---------------------------------------------------------------------------
// The acceptance configuration: N=3, reduced == full expansion.
// ---------------------------------------------------------------------------

class MigrationN3Test
    : public ::testing::TestWithParam<std::pair<ProtocolKind, ProtocolKind>> {
};

TEST_P(MigrationN3Test, ReducedEngineProvesHandoffSafe) {
  MigrationWorldOptions options;
  options.from = GetParam().first;
  options.to = GetParam().second;
  options.num_clients = 3;
  const CheckResult result = run_migration_check(options);
  ASSERT_TRUE(result.ok()) << result.violations.front().invariant << " — "
                           << result.violations.front().detail;
  EXPECT_FALSE(result.hit_state_cap);
  EXPECT_TRUE(result.symmetry_applied);
  EXPECT_TRUE(result.por_applied);
  EXPECT_GT(result.symmetry_hits, 0u);
  EXPECT_GT(result.probes, 0u);  // quiescent read probes ran post-release
}

INSTANTIATE_TEST_SUITE_P(
    AcceptancePairs, MigrationN3Test, ::testing::ValuesIn(kAcceptancePairs),
    [](const auto& info) {
      std::string name = std::string(protocols::to_string(info.param.first)) +
                         "_to_" + protocols::to_string(info.param.second);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(MigrationCheckN3, ReducedMatchesFullExpansion) {
  // The exact reference for the three acceptance pairs that full-expand in
  // seconds; berkeley -> write-through is covered by the pinned test
  // below.
  const std::pair<ProtocolKind, ProtocolKind> pairs[] = {
      {ProtocolKind::kWriteThrough, ProtocolKind::kBerkeley},
      {ProtocolKind::kWriteThrough, ProtocolKind::kDragon},
      {ProtocolKind::kDragon, ProtocolKind::kWriteThrough},
  };
  for (const auto& [from, to] : pairs) {
    MigrationWorldOptions options;
    options.from = from;
    options.to = to;
    options.num_clients = 3;
    const CheckResult reduced = run_migration_check(options);
    const CheckResult full =
        run_migration_check(options, /*full_expansion=*/true);
    ASSERT_TRUE(full.ok()) << pair_name(from, to) << ": "
                           << full.violations.front().detail;
    ASSERT_TRUE(reduced.ok()) << pair_name(from, to) << ": "
                              << reduced.violations.front().detail;
    EXPECT_EQ(reduced.visited_state_names, full.visited_state_names)
        << pair_name(from, to);
    EXPECT_LT(reduced.states, full.states) << pair_name(from, to);
    EXPECT_EQ(reduced.max_depth, full.max_depth) << pair_name(from, to);
  }
}

TEST(MigrationCheckN3, BerkeleyToWriteThroughMatchesPinnedReference) {
  // The kFullExpansion reference for berkeley -> write-through at N=3 is
  // 4'654'997 states / 22'458'516 transitions at depth 57 (all counts are
  // schedule-independent).  The live cross-check costs minutes, so it
  // runs only with DRSM_DEEP_CHECKS=1; the reduced run is held to the
  // pinned verdict and depth unconditionally.
  MigrationWorldOptions options;
  options.from = ProtocolKind::kBerkeley;
  options.to = ProtocolKind::kWriteThrough;
  options.num_clients = 3;
  const CheckResult reduced = run_migration_check(options);
  ASSERT_TRUE(reduced.ok()) << reduced.violations.front().detail;
  EXPECT_FALSE(reduced.hit_state_cap);
  EXPECT_EQ(reduced.max_depth, 57u);
  EXPECT_LT(reduced.states, 4'654'997u);

  const char* deep = std::getenv("DRSM_DEEP_CHECKS");
  if (deep == nullptr || std::string(deep) != "1") {
    GTEST_LOG_(INFO) << "DRSM_DEEP_CHECKS!=1: pinned reference not re-run";
    return;
  }
  const CheckResult full =
      run_migration_check(options, /*full_expansion=*/true);
  ASSERT_TRUE(full.ok()) << full.violations.front().detail;
  EXPECT_EQ(full.states, 4'654'997u);
  EXPECT_EQ(full.transitions, 22'458'516u);
  EXPECT_EQ(full.max_depth, 57u);
  EXPECT_EQ(reduced.visited_state_names, full.visited_state_names);
}

// ---------------------------------------------------------------------------
// Fault injection: the checker must bite on the classic handoff bugs.
// ---------------------------------------------------------------------------

TEST(MigrationFaults, SkippedFenceIsCaught) {
  // Without the fence, the home switches machines while old-protocol
  // traffic is still in flight; a straggler reaching a new-epoch machine
  // must surface as a violation — and export a minimal counterexample via
  // the recorder.  The straggler needs a peer-to-peer message leg, so the
  // bug bites migrating *out of* an ownership protocol (a Berkeley recall
  // conversation is mid-flight between clients when the switch lands);
  // write-through sources are saved by per-channel FIFO — their only data
  // leg is client->home, the same channel that carries the drain-ack.
  MigrationWorldOptions options;
  options.from = ProtocolKind::kBerkeley;
  options.to = ProtocolKind::kDragon;
  options.num_clients = 2;
  options.fault = MigrationWorldOptions::Fault::kSkipFence;
  const CheckResult result = run_migration_check(options);
  ASSERT_FALSE(result.ok()) << "fenceless handoff was not caught";
  EXPECT_STREQ(result.violations.front().invariant, "defined-transition");
  ASSERT_FALSE(result.counterexample.empty());

  obs::FlightRecorder recorder;
  const std::string path =
      ::testing::TempDir() + "/migration_skip_fence.jsonl";
  const std::string dump =
      check::dump_counterexample(result, recorder, path);
  EXPECT_FALSE(dump.empty());
  EXPECT_NE(dump.find("violation"), std::string::npos);
}

TEST(MigrationFaults, SkippedSeedIsCaught) {
  // Without re-committing the flushed value, the pre-migration history is
  // lost: a post-release quiescent read probe sees unserialized data.
  MigrationWorldOptions options;
  options.from = ProtocolKind::kWriteThrough;
  options.to = ProtocolKind::kBerkeley;
  options.num_clients = 2;
  options.fault = MigrationWorldOptions::Fault::kNoSeed;
  const CheckResult result = run_migration_check(options);
  ASSERT_FALSE(result.ok()) << "seedless handoff was not caught";
  EXPECT_FALSE(result.counterexample.empty());
}

// ---------------------------------------------------------------------------
// Runtime half: SequentialRuntime::migrate under the live referee.
// ---------------------------------------------------------------------------

TEST(LiveMigration, ReseedPreservesSerializedHistory) {
  sim::SystemConfig config;
  config.num_clients = 2;
  sim::SequentialRuntime runtime(ProtocolKind::kWriteThrough, config,
                                 {0, 1});
  CoherenceOracle oracle(OracleMode::kSequential);
  runtime.set_coherence_tap(&oracle);

  runtime.execute(0, fsm::OpKind::kWrite, 11);
  runtime.execute(1, fsm::OpKind::kRead);
  runtime.execute(1, fsm::OpKind::kWrite, 12);
  const std::uint64_t version_before = runtime.latest_version();

  const sim::OpResult seed = runtime.migrate(ProtocolKind::kBerkeley);
  EXPECT_EQ(runtime.protocol(), ProtocolKind::kBerkeley);
  // The seed re-commits, never re-serializes: version continuity.
  EXPECT_EQ(runtime.latest_version(), version_before);
  EXPECT_EQ(runtime.latest_value(), 12u);
  EXPECT_TRUE(seed.completed);  // the seed write really ran

  // Post-switch reads see the migrated value; new writes extend the same
  // version sequence.
  EXPECT_EQ(runtime.execute(0, fsm::OpKind::kRead).read_value, 12u);
  runtime.execute(0, fsm::OpKind::kWrite, 13);
  EXPECT_EQ(runtime.latest_version(), version_before + 1);
  EXPECT_EQ(runtime.execute(1, fsm::OpKind::kRead).read_value, 13u);

  oracle.finish();
  EXPECT_TRUE(oracle.ok()) << oracle.violations().front();
}

TEST(LiveMigration, MigrateBeforeAnyWriteNeedsNoSeed) {
  sim::SystemConfig config;
  config.num_clients = 2;
  sim::SequentialRuntime runtime(ProtocolKind::kWriteThrough, config,
                                 {0, 1});
  const sim::OpResult seed = runtime.migrate(ProtocolKind::kDragon);
  EXPECT_EQ(seed.messages, 0u);  // nothing serialized, nothing to seed
  EXPECT_EQ(runtime.latest_version(), 0u);
  runtime.execute(0, fsm::OpKind::kWrite, 5);
  EXPECT_EQ(runtime.execute(1, fsm::OpKind::kRead).read_value, 5u);
}

TEST(LiveMigration, ChainThroughAllEightProtocols) {
  // Walk the object through every protocol in sequence with traffic
  // between hops; the oracle referees one unbroken history.
  sim::SystemConfig config;
  config.num_clients = 3;
  sim::SequentialRuntime runtime(ProtocolKind::kWriteThrough, config,
                                 {0, 1, 2});
  CoherenceOracle oracle(OracleMode::kSequential);
  runtime.set_coherence_tap(&oracle);

  std::uint64_t value = 100;
  for (const ProtocolKind kind : protocols::kAllProtocols) {
    runtime.migrate(kind);
    const NodeId writer = static_cast<NodeId>(value % 3);
    runtime.execute(writer, fsm::OpKind::kWrite, ++value);
    for (NodeId reader = 0; reader < 3; ++reader)
      EXPECT_EQ(runtime.execute(reader, fsm::OpKind::kRead).read_value,
                value)
          << protocols::to_string(kind);
  }
  oracle.finish();
  EXPECT_TRUE(oracle.ok()) << oracle.violations().front();
}

}  // namespace
}  // namespace drsm
