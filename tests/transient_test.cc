// Transient (warm-up) analysis tests: the expected cost profile from the
// cold all-INVALID start, which the paper's simulation methodology
// discards ("the first 500 operations are neglected").
#include <gtest/gtest.h>

#include <cmath>

#include "analytic/chain.h"
#include "analytic/closed_form.h"
#include "workload/spec.h"

namespace drsm {
namespace {

using analytic::ProtocolChain;
using protocols::ProtocolKind;

sim::SystemConfig make_config(std::size_t n, double s, double p) {
  sim::SystemConfig config;
  config.num_clients = n;
  config.costs.s = s;
  config.costs.p = p;
  return config;
}

TEST(Transient, FirstOperationCostFromColdStart) {
  // From the cold state every WT read misses (S+2) and every write costs
  // P+N, so E[cost of op 1] = (1-p)(S+2)... with disturbance:
  // p*(P+N) + (1-p)(S+2) since *all* reads (center or disturber) miss.
  const std::size_t n = 5, a = 2;
  const double s = 100.0, p_cost = 30.0;
  const double p = 0.3, sigma = 0.1;
  const auto spec = workload::read_disturbance(p, sigma, a);
  ProtocolChain chain(ProtocolKind::kWriteThrough,
                      make_config(n, s, p_cost), spec);
  const auto costs = chain.transient_costs(spec.probabilities(), 3);
  ASSERT_EQ(costs.size(), 3u);
  EXPECT_NEAR(costs[0],
              p * (p_cost + n) + (1.0 - p) * (s + 2.0), 1e-9);
}

TEST(Transient, ConvergesToSteadyStateAcc) {
  const std::size_t n = 5, a = 2;
  const auto config = make_config(n, 100.0, 30.0);
  const auto spec = workload::read_disturbance(0.25, 0.1, a);
  for (ProtocolKind kind :
       {ProtocolKind::kWriteThrough, ProtocolKind::kWriteOnce,
        ProtocolKind::kBerkeley, ProtocolKind::kSynapse}) {
    ProtocolChain chain(kind, config, spec);
    const auto probs = spec.probabilities();
    const double steady = chain.average_cost(probs);
    const auto costs = chain.transient_costs(probs, 400);
    EXPECT_NEAR(costs.back(), steady, 1e-6 * std::max(steady, 1.0))
        << protocols::to_string(kind);
  }
}

TEST(Transient, OwnershipProtocolsDecayToZeroUnderIdealWorkload) {
  // Berkeley's steady-state ideal cost is 0; the transient profile must
  // start positive (cold misses + the first ownership migration) and
  // decay to zero.
  const auto config = make_config(6, 100.0, 30.0);
  const auto spec = workload::ideal_workload(0.4);
  ProtocolChain chain(ProtocolKind::kBerkeley, config, spec);
  const auto costs = chain.transient_costs(spec.probabilities(), 200);
  EXPECT_GT(costs.front(), 0.0);
  EXPECT_NEAR(costs.back(), 0.0, 1e-6);
  // Decay is (eventually) monotone for this single-writer chain.
  EXPECT_LT(costs[50], costs[0]);
}

TEST(Transient, WarmupLengthIsFiniteAndOrderedByMixing) {
  const auto config = make_config(5, 100.0, 30.0);
  const auto spec = workload::read_disturbance(0.3, 0.1, 2);
  ProtocolChain chain(ProtocolKind::kWriteThrough, config, spec);
  const auto probs = spec.probabilities();
  const std::size_t tight = chain.warmup_length(probs, 0.001);
  const std::size_t loose = chain.warmup_length(probs, 0.05);
  EXPECT_LT(tight, 100000u);
  EXPECT_LE(loose, tight);
  // Well under the paper's 500-operation cut for this small system.
  EXPECT_LT(tight, 500u);
}

TEST(Transient, PaperWarmupCutIsGenerous) {
  // For the Table 7 configuration the analytic warm-up (0.1 % band) is
  // far below the 500 operations the paper discards.
  const auto config = make_config(3, 100.0, 30.0);
  for (double p : {0.2, 0.6}) {
    const auto spec = workload::read_disturbance(p, 0.2, 2);
    for (ProtocolKind kind :
         {ProtocolKind::kWriteOnce, ProtocolKind::kWriteThroughV}) {
      ProtocolChain chain(kind, config, spec);
      EXPECT_LT(chain.warmup_length(spec.probabilities(), 0.001), 500u)
          << protocols::to_string(kind) << " p=" << p;
    }
  }
}

}  // namespace
}  // namespace drsm
