// Cross-cutting property tests:
//  * determinism — identical seeds produce identical results in both
//    runtimes and all generators;
//  * symmetry — relabeling exchangeable clients never changes acc (the
//    property the lumped chains rely on);
//  * accounting — reported operation costs equal the sum of the observed
//    messages' costs, in both runtimes;
//  * snapshot independence — copying a SequentialRuntime yields two fully
//    independent systems.
#include <gtest/gtest.h>

#include "analytic/solver.h"
#include "sim/event_sim.h"
#include "sim/sequential.h"
#include "support/rng.h"
#include "workload/generator.h"

namespace drsm {
namespace {

using fsm::OpKind;
using protocols::ProtocolKind;

sim::SystemConfig make_config(std::size_t n) {
  sim::SystemConfig config;
  config.num_clients = n;
  config.costs.s = 150.0;
  config.costs.p = 30.0;
  return config;
}

// ---------------------------------------------------------------------------
// Determinism.
// ---------------------------------------------------------------------------

TEST(Property, EventSimulatorIsDeterministicPerSeed) {
  const auto spec = workload::write_disturbance(0.3, 0.1, 2);
  const auto run = [&](std::uint64_t seed) {
    sim::SimOptions options;
    options.max_ops = 5000;
    options.warmup_ops = 200;
    options.seed = seed;
    options.latency.min_latency = 1;
    options.latency.max_latency = 5;
    sim::EventSimulator simulator(ProtocolKind::kBerkeley, make_config(4),
                                  options);
    workload::ConcurrentDriver driver(spec, seed * 31);
    return simulator.run(driver);
  };
  const sim::SimStats a = run(7);
  const sim::SimStats b = run(7);
  EXPECT_EQ(a.measured_cost, b.measured_cost);
  EXPECT_EQ(a.measured_ops, b.measured_ops);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.end_time, b.end_time);
  const sim::SimStats c = run(8);
  EXPECT_NE(a.measured_cost, c.measured_cost);  // different seed differs
}

TEST(Property, GeneratorsAreDeterministicPerSeed) {
  const auto spec = workload::read_disturbance(0.3, 0.1, 3);
  workload::GlobalSequenceGenerator g1(spec, 5, 4), g2(spec, 5, 4);
  for (int i = 0; i < 1000; ++i) {
    const auto a = g1.next();
    const auto b = g2.next();
    ASSERT_EQ(a.node, b.node);
    ASSERT_EQ(a.object, b.object);
    ASSERT_EQ(a.op, b.op);
  }
}

// ---------------------------------------------------------------------------
// Symmetry: which client indices host the disturbers must not matter.
// ---------------------------------------------------------------------------

TEST(Property, AccInvariantUnderClientRelabeling) {
  const sim::SystemConfig config = make_config(8);
  analytic::AccSolver solver(config);
  for (ProtocolKind kind : protocols::kAllProtocols) {
    // Canonical roster: center 0, disturbers {1, 2}.
    const double canonical =
        solver.acc(kind, workload::read_disturbance(0.3, 0.1, 2));
    // Relabeled roster: center 5, disturbers {2, 7}.
    workload::WorkloadSpec relabeled;
    relabeled.name = "relabeled";
    relabeled.events = {{5, OpKind::kWrite, 0.3},
                        {5, OpKind::kRead, 0.5},
                        {2, OpKind::kRead, 0.1},
                        {7, OpKind::kRead, 0.1}};
    EXPECT_NEAR(solver.acc(kind, relabeled), canonical, 1e-9)
        << protocols::to_string(kind);
  }
}

TEST(Property, AccInvariantUnderEventOrderPermutation) {
  const sim::SystemConfig config = make_config(6);
  analytic::AccSolver solver(config);
  workload::WorkloadSpec forward = workload::write_disturbance(0.2, 0.1, 2);
  workload::WorkloadSpec reversed = forward;
  std::reverse(reversed.events.begin(), reversed.events.end());
  for (ProtocolKind kind : protocols::kAllProtocols) {
    EXPECT_NEAR(solver.acc(kind, forward), solver.acc(kind, reversed), 1e-9)
        << protocols::to_string(kind);
  }
}

// ---------------------------------------------------------------------------
// Accounting: reported per-operation cost == sum of observed messages.
// ---------------------------------------------------------------------------

TEST(Property, SequentialCostsMatchObservedMessages) {
  for (ProtocolKind kind : protocols::kAllProtocols) {
    sim::SequentialRuntime runtime(kind, make_config(4), {0, 1, 2});
    double observed = 0.0;
    std::size_t observed_messages = 0;
    runtime.set_observer(
        [&](NodeId, NodeId, const fsm::Message& msg) {
          observed += runtime.config().costs.message_cost(msg.token.params);
          ++observed_messages;
        });
    Rng rng(11 + static_cast<std::uint64_t>(kind));
    std::uint64_t value = 0;
    const NodeId nodes[] = {0, 1, 2, /*home=*/4};
    for (int i = 0; i < 1000; ++i) {
      const NodeId node = nodes[rng.uniform_index(4)];
      observed = 0.0;
      observed_messages = 0;
      const sim::OpResult result =
          rng.bernoulli(0.4)
              ? runtime.execute(node, OpKind::kWrite, ++value)
              : runtime.execute(node, OpKind::kRead);
      ASSERT_DOUBLE_EQ(result.cost, observed)
          << protocols::to_string(kind) << " step " << i;
      ASSERT_EQ(result.messages, observed_messages);
    }
  }
}

TEST(Property, EventSimCostsMatchObservedMessages) {
  const auto spec = workload::read_disturbance(0.4, 0.15, 2);
  sim::SimOptions options;
  options.max_ops = 3000;
  options.warmup_ops = 0;
  options.seed = 13;
  sim::EventSimulator simulator(ProtocolKind::kIllinois, make_config(4),
                                options);
  double observed = 0.0;
  std::size_t observed_messages = 0;
  simulator.set_observer([&](SimTime, NodeId, NodeId,
                             const fsm::Message& msg) {
    observed += make_config(4).costs.message_cost(msg.token.params);
    ++observed_messages;
  });
  workload::ConcurrentDriver driver(spec, 14);
  const sim::SimStats stats = simulator.run(driver);
  EXPECT_DOUBLE_EQ(stats.measured_cost + stats.warmup_cost, observed);
  EXPECT_EQ(stats.messages, observed_messages);
}

// ---------------------------------------------------------------------------
// Snapshot independence.
// ---------------------------------------------------------------------------

TEST(Property, CopiedRuntimesEvolveIndependently) {
  sim::SequentialRuntime original(ProtocolKind::kWriteOnce, make_config(4),
                                  {0, 1});
  original.execute(0, OpKind::kWrite, 41);
  sim::SequentialRuntime snapshot = original;
  ASSERT_EQ(snapshot.encode_state(), original.encode_state());

  // Divergence after the copy must not leak across.
  original.execute(1, OpKind::kWrite, 42);
  EXPECT_NE(snapshot.encode_state(), original.encode_state());
  EXPECT_EQ(snapshot.execute(1, OpKind::kRead).read_value, 41u);
  EXPECT_EQ(original.execute(0, OpKind::kRead).read_value, 42u);
}

TEST(Property, EncodeStateIsStableAcrossClones) {
  for (ProtocolKind kind : protocols::kAllProtocols) {
    sim::SequentialRuntime runtime(kind, make_config(5), {0, 1, 2});
    Rng rng(17);
    std::uint64_t value = 0;
    for (int i = 0; i < 200; ++i) {
      const NodeId node = static_cast<NodeId>(rng.uniform_index(3));
      runtime.execute(node,
                      rng.bernoulli(0.5) ? OpKind::kWrite : OpKind::kRead,
                      ++value);
      const sim::SequentialRuntime clone = runtime;
      ASSERT_EQ(clone.encode_state(), runtime.encode_state())
          << protocols::to_string(kind) << " step " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Chain structure sanity: documented state-space sizes.
// ---------------------------------------------------------------------------

TEST(Property, ChainStateSpaceSizes) {
  sim::SystemConfig config = make_config(12);
  const auto spec = workload::read_disturbance(0.3, 0.05, 3);
  // Write-Through: center {V, I} x disturbers {V, I}^3 = 16 states.
  analytic::ProtocolChain wt(ProtocolKind::kWriteThrough, config, spec);
  EXPECT_EQ(wt.num_states(), 16u);
  // Dragon: a single always-valid global state.
  analytic::ProtocolChain dragon(ProtocolKind::kDragon, config, spec);
  EXPECT_EQ(dragon.num_states(), 1u);
  // Berkeley: strictly more states (ownership location matters), but
  // bounded by owner-choices x copy-state product.
  analytic::ProtocolChain berkeley(ProtocolKind::kBerkeley, config, spec);
  EXPECT_GT(berkeley.num_states(), 16u);
  EXPECT_LE(berkeley.num_states(), 2u * 16u);
}

}  // namespace
}  // namespace drsm
