// Tests for the threaded runtime: the eight protocols under genuine
// parallel execution (one thread per node, real mutex/cv message passing —
// the paper's multitasking-simulator design point).
#include <gtest/gtest.h>

#include "analytic/solver.h"
#include "sim/threaded.h"
#include "workload/generator.h"

namespace drsm {
namespace {

using protocols::ProtocolKind;

sim::SystemConfig make_config(std::size_t n, std::size_t objects = 1) {
  sim::SystemConfig config;
  config.num_clients = n;
  config.costs.s = 100.0;
  config.costs.p = 30.0;
  config.num_objects = objects;
  return config;
}

class ThreadedTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ThreadedTest, CompletesMixedWorkloadWithCoherenceChecksOn) {
  const sim::SystemConfig config = make_config(4, 3);
  const auto spec = workload::write_disturbance(0.25, 0.1, 3);
  workload::GlobalSequenceGenerator gen(
      spec, 17 + static_cast<std::uint64_t>(GetParam()),
      config.num_objects);
  const auto trace = gen.record(5000, config.num_clients);

  for (int run = 0; run < 3; ++run) {
    workload::TraceReplayDriver driver(trace);
    sim::ThreadedOptions options;
    options.total_ops = trace.entries.size();
    options.warmup_ops = 200;
    const sim::ThreadedStats stats =
        sim::run_threaded(GetParam(), config, options, driver);
    EXPECT_EQ(stats.total_ops, trace.entries.size())
        << protocols::to_string(GetParam()) << " run " << run;
    EXPECT_GE(stats.acc(), 0.0);
    EXPECT_GT(stats.messages, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ThreadedTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(Threaded, BatchingCollapsesConflictMissesButNotFixedWriteCosts) {
  // With zero think time each node drains its own operation stream as
  // fast as the scheduler allows, so consecutive same-node operations
  // batch together.  The workload *mix* is preserved but the global
  // interleaving the analysis assumes is not: conflict misses (whose cost
  // depends on what other nodes did in between) nearly vanish for the
  // ownership protocols, while per-write fixed costs (WT-V's P+N+2 per
  // write, paid regardless of interleaving) survive intact.  This is the
  // threaded runtime's characteristic deviation from the model — the
  // opposite end of the spectrum from the lockstep driver.
  const sim::SystemConfig config = make_config(3);
  const auto spec = workload::read_disturbance(0.4, 0.2, 2);
  analytic::AccSolver solver(config);

  const auto run = [&](ProtocolKind kind) {
    workload::GlobalSequenceGenerator gen(spec, 23);
    const auto trace = gen.record(20000, config.num_clients);
    workload::TraceReplayDriver driver(trace);
    sim::ThreadedOptions options;
    options.total_ops = trace.entries.size();
    options.warmup_ops = 500;
    return sim::run_threaded(kind, config, options, driver);
  };

  // Ownership protocols: batching makes almost everything an owner hit.
  for (ProtocolKind kind :
       {ProtocolKind::kWriteOnce, ProtocolKind::kBerkeley}) {
    const double predicted = solver.acc(kind, spec);
    const double measured = run(kind).acc();
    EXPECT_LT(measured, 0.2 * predicted)
        << protocols::to_string(kind) << " predicted " << predicted;
  }

  // WT-V: every write still costs P+N+2 = 36, so acc >= p * 36 whatever
  // the interleaving; only the read-miss share can collapse.
  const double wtv = run(ProtocolKind::kWriteThroughV).acc();
  EXPECT_GT(wtv, 0.4 * (config.costs.p + 3 + 2) * 0.9);
  EXPECT_LT(wtv, solver.acc(ProtocolKind::kWriteThroughV, spec));
}

TEST(Threaded, SingleIssuerMatchesAnalyticClosely) {
  // One issuing node -> no overlap even with threads: the measurement
  // should sit near the analytic ideal-workload cost.
  const sim::SystemConfig config = make_config(4);
  const auto spec = workload::ideal_workload(0.3);
  analytic::AccSolver solver(config);
  const double predicted =
      solver.acc(ProtocolKind::kWriteThrough, spec);

  workload::GlobalSequenceGenerator gen(spec, 29);
  const auto trace = gen.record(20000, config.num_clients);
  workload::TraceReplayDriver driver(trace);
  sim::ThreadedOptions options;
  options.total_ops = trace.entries.size();
  options.warmup_ops = 500;
  const sim::ThreadedStats stats = sim::run_threaded(
      ProtocolKind::kWriteThrough, config, options, driver);
  EXPECT_NEAR(stats.acc(), predicted, 0.05 * predicted);
}

TEST(Threaded, UnsupportedOperationSurfacesAsError) {
  workload::OperationTrace trace;
  trace.num_clients = 2;
  trace.num_objects = 1;
  trace.entries = {{0, 0, fsm::OpKind::kEject}};  // Dragon: unsupported
  workload::TraceReplayDriver driver(trace);
  sim::ThreadedOptions options;
  options.total_ops = 1;
  EXPECT_THROW(sim::run_threaded(ProtocolKind::kDragon, make_config(2),
                                 options, driver),
               Error);
}

TEST(Threaded, DriverExhaustionTerminatesCleanly) {
  // The trace is shorter than the ops budget: quiescence must still be
  // detected through the exhausted-driver path.
  workload::OperationTrace trace;
  trace.num_clients = 2;
  trace.num_objects = 1;
  trace.entries = {{0, 0, fsm::OpKind::kWrite}, {1, 0, fsm::OpKind::kRead}};
  workload::TraceReplayDriver driver(trace);
  sim::ThreadedOptions options;
  options.total_ops = 100;  // more than the trace holds
  const sim::ThreadedStats stats = sim::run_threaded(
      ProtocolKind::kWriteThrough, make_config(2), options, driver);
  EXPECT_EQ(stats.total_ops, 2u);
}

}  // namespace
}  // namespace drsm
