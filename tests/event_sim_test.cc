// Tests for the discrete-event simulator: agreement with the analytic model
// when operations do not overlap, robustness (coherence, completion) when
// they do, message-level traces, and trace replay.
#include <gtest/gtest.h>

#include <cmath>

#include "analytic/solver.h"
#include "sim/event_sim.h"
#include "workload/generator.h"

namespace drsm {
namespace {

using protocols::ProtocolKind;
using sim::EventSimulator;
using sim::SimOptions;
using sim::SimStats;
using sim::SystemConfig;

SystemConfig make_config(std::size_t n, std::size_t objects = 1) {
  SystemConfig config;
  config.num_clients = n;
  config.costs.s = 100.0;
  config.costs.p = 30.0;
  config.num_objects = objects;
  return config;
}

// ---------------------------------------------------------------------------
// Single-issuer workloads never overlap, so the simulator must agree with
// the analytic prediction up to sampling noise.
// ---------------------------------------------------------------------------

class IdealAgreementTest
    : public ::testing::TestWithParam<protocols::ProtocolKind> {};

TEST_P(IdealAgreementTest, SimulationMatchesAnalyticIdealAcc) {
  const SystemConfig config = make_config(4);
  const auto spec = workload::ideal_workload(0.3);

  analytic::AccSolver solver(config);
  const double predicted = solver.acc(GetParam(), spec);

  SimOptions options;
  options.max_ops = 20000;
  options.warmup_ops = 500;
  options.seed = 21;
  EventSimulator simulator(GetParam(), config, options);
  workload::ConcurrentDriver driver(spec, 22);
  const SimStats stats = simulator.run(driver);

  ASSERT_EQ(stats.measured_ops, options.max_ops - options.warmup_ops);
  if (predicted < 1e-9) {
    EXPECT_LT(stats.acc(), 0.5);  // only transient cost may leak past warmup
  } else {
    EXPECT_NEAR(stats.acc(), predicted, 0.05 * predicted)
        << protocols::to_string(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, IdealAgreementTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// ---------------------------------------------------------------------------
// Concurrent multi-issuer runs: every protocol completes the requested
// operations with the coherence checker enabled, across latency regimes and
// multiple objects.
// ---------------------------------------------------------------------------

class ConcurrentRobustnessTest
    : public ::testing::TestWithParam<protocols::ProtocolKind> {};

TEST_P(ConcurrentRobustnessTest, CompletesUnderConcurrencyAndRandomLatency) {
  const SystemConfig config = make_config(3, /*objects=*/4);
  const auto spec = workload::write_disturbance(0.2, 0.15, 2);

  for (SimTime max_latency : {SimTime{1}, SimTime{8}}) {
    SimOptions options;
    options.max_ops = 4000;
    options.warmup_ops = 400;
    options.seed = 33 + max_latency;
    options.latency.min_latency = 1;
    options.latency.max_latency = max_latency;
    options.latency.processing_time = 1;
    EventSimulator simulator(GetParam(), config, options);
    workload::ConcurrentDriver driver(spec, 44 + max_latency,
                                      config.num_objects);
    const SimStats stats = simulator.run(driver);
    // Operations already in flight when the target is reached still finish,
    // so the measured count can slightly exceed the target.
    EXPECT_GE(stats.measured_ops, options.max_ops - options.warmup_ops)
        << protocols::to_string(GetParam());
    EXPECT_GE(stats.acc(), 0.0);
    EXPECT_GT(stats.messages, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ConcurrentRobustnessTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// ---------------------------------------------------------------------------
// Read disturbance through the concurrent driver lands near the analytic
// prediction — the paper's Table 7 experiment reports < ±8 %; allow a bit
// more for our smaller run.
// ---------------------------------------------------------------------------

TEST(EventSim, ReadDisturbanceWithinTable7Discrepancy) {
  const SystemConfig config = make_config(3);
  const auto spec = workload::read_disturbance(0.4, 0.2, 2);

  analytic::AccSolver solver(config);
  for (ProtocolKind kind :
       {ProtocolKind::kWriteOnce, ProtocolKind::kWriteThroughV}) {
    const double predicted = solver.acc(kind, spec);
    ASSERT_GT(predicted, 0.0);

    SimOptions options;
    options.max_ops = 30000;
    options.warmup_ops = 1000;
    options.seed = 55;
    EventSimulator simulator(kind, config, options);
    workload::ConcurrentDriver driver(spec, 56);
    const SimStats stats = simulator.run(driver);
    const double deviation =
        std::fabs(stats.acc() - predicted) / predicted;
    EXPECT_LT(deviation, 0.12) << protocols::to_string(kind)
                               << " predicted=" << predicted
                               << " measured=" << stats.acc();
  }
}

// ---------------------------------------------------------------------------
// Message-level traces: a Write-Through read miss is exactly R-PER followed
// by R-GNT (the paper's Figure 2).
// ---------------------------------------------------------------------------

TEST(EventSim, WriteThroughReadMissTraceMatchesFigure2) {
  const SystemConfig config = make_config(3);
  SimOptions options;
  options.max_ops = 1;
  options.warmup_ops = 0;
  EventSimulator simulator(ProtocolKind::kWriteThrough, config, options);

  std::vector<fsm::MsgType> observed;
  simulator.set_observer([&](SimTime, NodeId, NodeId,
                             const fsm::Message& msg) {
    observed.push_back(msg.token.type);
  });

  workload::OperationTrace trace;
  trace.num_clients = 3;
  trace.entries = {{0, 0, fsm::OpKind::kRead}};
  workload::TraceReplayDriver driver(trace);
  const SimStats stats = simulator.run(driver);

  EXPECT_EQ(stats.measured_ops, 1u);
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0], fsm::MsgType::kReadPer);
  EXPECT_EQ(observed[1], fsm::MsgType::kReadGnt);
  EXPECT_DOUBLE_EQ(stats.measured_cost, config.costs.s + 2);
}

// Client write: W-PER(w) to the sequencer, then N-1 invalidations (Fig. 3).
TEST(EventSim, WriteThroughWriteTraceMatchesFigure3) {
  const SystemConfig config = make_config(3);
  SimOptions options;
  options.max_ops = 1;
  options.warmup_ops = 0;
  EventSimulator simulator(ProtocolKind::kWriteThrough, config, options);

  std::vector<std::pair<fsm::MsgType, NodeId>> observed;
  simulator.set_observer([&](SimTime, NodeId, NodeId dst,
                             const fsm::Message& msg) {
    observed.emplace_back(msg.token.type, dst);
  });

  workload::OperationTrace trace;
  trace.num_clients = 3;
  trace.entries = {{0, 0, fsm::OpKind::kWrite}};
  workload::TraceReplayDriver driver(trace);
  const SimStats stats = simulator.run(driver);

  ASSERT_EQ(observed.size(), 3u);  // W-PER + 2 invalidations (N-1 = 2)
  EXPECT_EQ(observed[0].first, fsm::MsgType::kWritePer);
  EXPECT_EQ(observed[0].second, 3u);  // to the sequencer
  EXPECT_EQ(observed[1].first, fsm::MsgType::kInval);
  EXPECT_EQ(observed[2].first, fsm::MsgType::kInval);
  EXPECT_DOUBLE_EQ(stats.measured_cost,
                   config.costs.p + static_cast<double>(config.num_clients));
}

// ---------------------------------------------------------------------------
// Message mix: the per-token-type counts must match the trace structure.
// ---------------------------------------------------------------------------

TEST(EventSim, WriteThroughMessageMixMatchesTraceStructure) {
  const SystemConfig config = make_config(3);
  // Single issuer -> strictly sequential traces, exact counts.
  workload::OperationTrace trace;
  trace.num_clients = 3;
  // read miss (R-PER + R-GNT), write (W-PER + 2x W-INV), read miss again,
  // then a hit.
  trace.entries = {{0, 0, fsm::OpKind::kRead},
                   {0, 0, fsm::OpKind::kWrite},
                   {0, 0, fsm::OpKind::kRead},
                   {0, 0, fsm::OpKind::kRead}};
  SimOptions options;
  options.max_ops = trace.entries.size();
  options.warmup_ops = 0;
  EventSimulator simulator(ProtocolKind::kWriteThrough, config, options);
  workload::TraceReplayDriver driver(trace);
  const SimStats stats = simulator.run(driver);

  EXPECT_EQ(stats.message_mix.at(fsm::MsgType::kReadPer), 2u);
  EXPECT_EQ(stats.message_mix.at(fsm::MsgType::kReadGnt), 2u);
  EXPECT_EQ(stats.message_mix.at(fsm::MsgType::kWritePer), 1u);
  EXPECT_EQ(stats.message_mix.at(fsm::MsgType::kInval), 2u);  // N-1
  std::size_t total = 0;
  for (const auto& [type, count] : stats.message_mix) total += count;
  EXPECT_EQ(total, stats.messages);
}

TEST(EventSim, CostAttributionFollowsTheActivityCenter) {
  // Read disturbance: the activity center's writes dominate the bill.
  const SystemConfig config = make_config(3);
  const auto spec = workload::read_disturbance(0.5, 0.1, 2);
  SimOptions options;
  options.max_ops = 8000;
  options.warmup_ops = 0;
  options.seed = 91;
  EventSimulator simulator(ProtocolKind::kWriteThrough, config, options);
  workload::ConcurrentDriver driver(spec, 92);
  const SimStats stats = simulator.run(driver);
  ASSERT_EQ(stats.cost_by_initiator.size(), 4u);
  double total = 0.0;
  for (Cost c : stats.cost_by_initiator) total += c;
  EXPECT_DOUBLE_EQ(total, stats.measured_cost + stats.warmup_cost);
  // The center (node 0) pays more than each disturber.
  EXPECT_GT(stats.cost_by_initiator[0], stats.cost_by_initiator[1]);
  EXPECT_GT(stats.cost_by_initiator[0], stats.cost_by_initiator[2]);
  // The sequencer initiates nothing in this workload.
  EXPECT_DOUBLE_EQ(stats.cost_by_initiator[3], 0.0);
}

// ---------------------------------------------------------------------------
// Operation latency: fire-and-forget vs blocking writes.
// ---------------------------------------------------------------------------

TEST(EventSim, LatencyDistinguishesBlockingFromFireAndForget) {
  const SystemConfig config = make_config(4);
  const auto spec = workload::ideal_workload(0.5);

  const auto run = [&](ProtocolKind kind) {
    SimOptions options;
    options.max_ops = 4000;
    options.warmup_ops = 100;
    options.seed = 77;
    options.latency.min_latency = 3;
    options.latency.max_latency = 3;
    EventSimulator simulator(kind, config, options);
    workload::ConcurrentDriver driver(spec, 78);
    return simulator.run(driver);
  };

  // Dragon writes are fire-and-forget: the client completes locally.
  const SimStats dragon = run(ProtocolKind::kDragon);
  EXPECT_DOUBLE_EQ(dragon.mean_write_latency(), 0.0);
  EXPECT_DOUBLE_EQ(dragon.mean_read_latency(), 0.0);

  // Firefly writes block on the sequencer's completion token: at least a
  // full round trip (2 x latency).
  const SimStats firefly = run(ProtocolKind::kFirefly);
  EXPECT_GE(firefly.mean_write_latency(), 6.0);
  EXPECT_DOUBLE_EQ(firefly.mean_read_latency(), 0.0);
  EXPECT_GE(static_cast<double>(firefly.latency_max),
            firefly.mean_write_latency());

  // Write-Through-V blocks until the slot grant arrives (one round trip);
  // the parameter transfer itself is asynchronous.
  const SimStats wtv = run(ProtocolKind::kWriteThroughV);
  EXPECT_GE(wtv.mean_write_latency(), 6.0);
  // Write-Through is fire-and-forget like Dragon.
  const SimStats wt = run(ProtocolKind::kWriteThrough);
  EXPECT_DOUBLE_EQ(wt.mean_write_latency(), 0.0);
  // ...but its read after a write misses: one round trip.
  EXPECT_GE(wt.mean_read_latency(), 1.0);
}

// ---------------------------------------------------------------------------
// Replaying a recorded trace completes every recorded operation.
// ---------------------------------------------------------------------------

TEST(EventSim, TraceReplayRunsToCompletion) {
  const SystemConfig config = make_config(3, 2);
  const auto spec = workload::read_disturbance(0.3, 0.2, 2);
  workload::GlobalSequenceGenerator gen(spec, 77, config.num_objects);
  const workload::OperationTrace trace = gen.record(2000, 3);

  SimOptions options;
  options.max_ops = trace.entries.size();
  options.warmup_ops = 0;
  EventSimulator simulator(ProtocolKind::kBerkeley, config, options);
  workload::TraceReplayDriver driver(trace);
  const SimStats stats = simulator.run(driver);
  EXPECT_EQ(stats.measured_ops, trace.entries.size());
}

}  // namespace
}  // namespace drsm
