// CoherenceOracle unit tests — every rule of the referee must fire on a
// hand-built bad history and stay silent on the matching good one — plus
// the property-based harness: 1000 seeded random workloads per protocol
// through both the event simulator (kConcurrent rules) and the sequential
// runtime (kSequential rules).
#include <gtest/gtest.h>

#include <cstdint>

#include "check/oracle.h"
#include "check/property.h"
#include "protocols/protocol.h"
#include "sim/sequential.h"
#include "support/rng.h"

namespace drsm {
namespace {

using check::CoherenceOracle;
using check::OracleMode;
using protocols::ProtocolKind;

// ---------------------------------------------------------------------------
// Issue / commit bookkeeping.
// ---------------------------------------------------------------------------

TEST(Oracle, CleanSequentialHistoryPasses) {
  CoherenceOracle oracle(OracleMode::kSequential);
  oracle.on_write_issue(0, 0, 0, 10);
  oracle.on_commit(1, 2, 0, 1, 10);
  oracle.on_read(2, 1, 0, 10, 1);
  oracle.on_write_issue(3, 1, 0, 20);
  oracle.on_commit(4, 2, 0, 2, 20);
  oracle.on_read(5, 0, 0, 20, 2);
  oracle.finish();
  EXPECT_TRUE(oracle.ok()) << oracle.violations().front();
  EXPECT_EQ(oracle.issues(), 2u);
  EXPECT_EQ(oracle.commits(), 2u);
  EXPECT_EQ(oracle.reads().size(), 2u);
  EXPECT_EQ(oracle.value_at(0, 1), 10u);
  EXPECT_EQ(oracle.value_at(0, 2), 20u);
  EXPECT_EQ(oracle.value_at(0, 3), 0u);  // never serialized
}

TEST(Oracle, ValueZeroAndDuplicateIssuesAreViolations) {
  CoherenceOracle oracle;
  oracle.on_write_issue(0, 0, 0, 0);  // 0 is reserved
  EXPECT_EQ(oracle.violations().size(), 1u);
  oracle.on_write_issue(1, 0, 0, 5);
  oracle.on_write_issue(2, 1, 0, 5);  // same value from another node
  EXPECT_EQ(oracle.violations().size(), 2u);
}

TEST(Oracle, CommitOfUnissuedValueIsAViolation) {
  CoherenceOracle oracle;
  oracle.on_commit(0, 2, 0, 1, 99);  // 99 never entered via a write
  EXPECT_FALSE(oracle.ok());
}

TEST(Oracle, VersionRebindIsAViolationButDuplicateReportIsNot) {
  CoherenceOracle oracle;
  oracle.on_write_issue(0, 0, 0, 10);
  oracle.on_write_issue(0, 1, 0, 11);
  oracle.on_commit(1, 2, 0, 1, 10);
  oracle.on_commit(2, 0, 0, 1, 10);  // two-phase: both ends report
  EXPECT_TRUE(oracle.ok());
  oracle.on_commit(3, 2, 0, 1, 11);  // rebinding version 1
  EXPECT_FALSE(oracle.ok());
}

// ---------------------------------------------------------------------------
// Read rules, sequential mode.
// ---------------------------------------------------------------------------

TEST(Oracle, SequentialReadMustReturnLatestWrite) {
  CoherenceOracle oracle(OracleMode::kSequential);
  oracle.on_write_issue(0, 0, 0, 10);
  oracle.on_commit(1, 2, 0, 1, 10);
  oracle.on_write_issue(2, 1, 0, 20);
  oracle.on_commit(3, 2, 0, 2, 20);
  oracle.on_read(4, 0, 0, 10, 1);  // stale: latest is (20, 2)
  ASSERT_EQ(oracle.violations().size(), 1u);
  EXPECT_NE(oracle.violations().front().find("latest serialized write"),
            std::string::npos);
}

TEST(Oracle, SequentialOwnWriteMayCarryStaleVersion) {
  // Dragon: the writer applies its value optimistically and keeps the old
  // version until the next foreign update.  Value must match, version may
  // lag — but only for the issuing node.
  CoherenceOracle oracle(OracleMode::kSequential);
  oracle.on_write_issue(0, 0, 0, 10);
  oracle.on_commit(1, 2, 0, 1, 10);
  oracle.on_read(2, 0, 0, 10, 0);  // own write, stale version: fine
  EXPECT_TRUE(oracle.ok());
  oracle.on_read(3, 1, 0, 10, 0);  // foreign reader must see version 1
  EXPECT_FALSE(oracle.ok());
}

// ---------------------------------------------------------------------------
// Read rules, concurrent mode.
// ---------------------------------------------------------------------------

TEST(Oracle, ConcurrentReadsMayBeStaleButNotFabricated) {
  CoherenceOracle oracle(OracleMode::kConcurrent);
  oracle.on_write_issue(0, 0, 0, 10);
  oracle.on_commit(1, 2, 0, 1, 10);
  oracle.on_write_issue(2, 1, 0, 20);
  oracle.on_commit(3, 2, 0, 2, 20);
  oracle.on_read(4, 0, 0, 10, 1);  // stale but serialized: fine
  EXPECT_TRUE(oracle.ok());
  oracle.on_read(5, 0, 0, 33, 2);  // version 2 serialized 20, not 33
  EXPECT_FALSE(oracle.ok());
}

TEST(Oracle, ConcurrentReadOfUnserializedVersionIsAViolation) {
  CoherenceOracle oracle(OracleMode::kConcurrent);
  oracle.on_write_issue(0, 0, 0, 10);
  oracle.on_commit(1, 2, 0, 1, 10);
  oracle.on_read(2, 1, 0, 10, 7);  // version 7 does not exist
  EXPECT_FALSE(oracle.ok());
}

TEST(Oracle, ConcurrentNeverWrittenReadsAreFine) {
  CoherenceOracle oracle(OracleMode::kConcurrent);
  oracle.on_read(0, 0, 0, 0, 0);  // (0, 0) = "never written": fine
  EXPECT_TRUE(oracle.ok());
  oracle.on_read(1, 0, 0, 42, 0);  // nonzero value without a version
  EXPECT_FALSE(oracle.ok());
}

TEST(Oracle, ConcurrentOwnWriteVisibleBeforeCommit) {
  CoherenceOracle oracle(OracleMode::kConcurrent);
  oracle.on_write_issue(0, 0, 0, 10);
  oracle.on_read(1, 0, 0, 10, 0);  // writer sees its in-flight write
  EXPECT_TRUE(oracle.ok());
  oracle.on_read(2, 1, 0, 10, 0);  // another node must not
  EXPECT_FALSE(oracle.ok());
}

TEST(Oracle, ConcurrentPerNodeVersionsAreMonotone) {
  CoherenceOracle oracle(OracleMode::kConcurrent);
  oracle.on_write_issue(0, 0, 0, 10);
  oracle.on_commit(1, 2, 0, 1, 10);
  oracle.on_write_issue(2, 0, 0, 20);
  oracle.on_commit(3, 2, 0, 2, 20);
  oracle.on_read(4, 1, 0, 20, 2);
  oracle.on_read(5, 1, 0, 10, 1);  // node 1 travels back in time
  ASSERT_FALSE(oracle.ok());
  EXPECT_NE(oracle.violations().front().find("after version"),
            std::string::npos);
}

TEST(Oracle, FinishFlagsVersionGaps) {
  CoherenceOracle oracle;
  oracle.on_write_issue(0, 0, 0, 10);
  oracle.on_write_issue(1, 1, 0, 20);
  oracle.on_commit(2, 2, 0, 1, 10);
  oracle.on_commit(3, 2, 0, 3, 20);  // version 2 never serialized
  EXPECT_TRUE(oracle.ok());
  oracle.finish();
  ASSERT_FALSE(oracle.ok());
  EXPECT_NE(oracle.violations().front().find("gap"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Histories that cross a live protocol migration.
// ---------------------------------------------------------------------------

TEST(Oracle, DuplicateSeedCommitAcrossMigrationSeamIsClean) {
  // A live migration re-commits the latest (version, value) pair through
  // the new protocol's machines (SequentialRuntime::migrate).  The oracle
  // treats the identical duplicate as a benign re-report — reads on both
  // sides of the seam still referee against one contiguous history.
  CoherenceOracle oracle(OracleMode::kSequential);
  oracle.on_write_issue(0, 0, 0, 10);
  oracle.on_commit(1, 2, 0, 1, 10);
  oracle.on_read(2, 1, 0, 10, 1);
  oracle.on_commit(3, 2, 0, 1, 10);  // the migration seed
  oracle.on_read(4, 1, 0, 10, 1);    // post-switch read, same version
  oracle.on_write_issue(5, 1, 0, 20);
  oracle.on_commit(6, 2, 0, 2, 20);  // history continues contiguously
  oracle.on_read(7, 0, 0, 20, 2);
  oracle.finish();
  EXPECT_TRUE(oracle.ok()) << oracle.violations().front();
}

TEST(Oracle, MigratingPhaseChangeHistoryIsClean) {
  // A phase-changing workload with migrations at the phase boundaries:
  // read-heavy under write-through, flip to write-heavy under Dragon,
  // then single-writer runs under Berkeley.  The sequential referee sees
  // one unbroken serialized history across both switches.
  sim::SystemConfig config;
  config.num_clients = 3;
  sim::SequentialRuntime runtime(ProtocolKind::kWriteThrough, config,
                                 {0, 1, 2});
  CoherenceOracle oracle(OracleMode::kSequential);
  runtime.set_coherence_tap(&oracle);
  Rng rng(2026);
  std::uint64_t value = 0;

  for (std::size_t i = 0; i < 200; ++i) {  // read-heavy, sparse writes
    const NodeId node = static_cast<NodeId>(rng.uniform_index(3));
    if (rng.bernoulli(0.1))
      runtime.execute(node, fsm::OpKind::kWrite, ++value);
    else
      runtime.execute(node, fsm::OpKind::kRead);
  }
  runtime.migrate(ProtocolKind::kDragon);
  for (std::size_t i = 0; i < 200; ++i) {  // write-heavy, shared
    const NodeId node = static_cast<NodeId>(rng.uniform_index(3));
    if (rng.bernoulli(0.7))
      runtime.execute(node, fsm::OpKind::kWrite, ++value);
    else
      runtime.execute(node, fsm::OpKind::kRead);
  }
  runtime.migrate(ProtocolKind::kBerkeley);
  for (std::size_t i = 0; i < 200; ++i) {  // single-writer runs
    if (rng.bernoulli(0.8))
      runtime.execute(0, fsm::OpKind::kWrite, ++value);
    else
      runtime.execute(static_cast<NodeId>(1 + rng.uniform_index(2)),
                      fsm::OpKind::kRead);
  }

  oracle.finish();
  EXPECT_TRUE(oracle.ok()) << oracle.violations().front();
  EXPECT_EQ(runtime.latest_version(), value);  // contiguous, no gaps
  EXPECT_EQ(runtime.latest_value(),
            oracle.value_at(0, runtime.latest_version()));
}

// ---------------------------------------------------------------------------
// Property harness: 1000 seeded random workloads per protocol, through
// both runtimes (the acceptance bar of the verification subsystem).
// ---------------------------------------------------------------------------

class PropertyHarnessTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(PropertyHarnessTest, ThousandSeededWorkloadsPerProtocol) {
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    check::PropertyConfig config;
    config.protocol = GetParam();
    config.seed = seed;
    config.num_clients = 3;
    config.ops = 150;
    const auto sim = check::run_simulator_property(config);
    ASSERT_TRUE(sim.ok())
        << "simulator seed " << seed << ": " << sim.violations.front();
    ASSERT_GT(sim.reads.size() + sim.issues, 0u) << "empty run, seed "
                                                 << seed;
    const auto seq = check::run_sequential_property(config);
    ASSERT_TRUE(seq.ok())
        << "sequential seed " << seed << ": " << seq.violations.front();
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, PropertyHarnessTest,
                         ::testing::ValuesIn(protocols::kAllProtocols),
                         [](const auto& info) {
                           std::string name =
                               protocols::to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace drsm
