#!/usr/bin/env bash
# Reproduce everything: build, run the full test suite, and regenerate
# every table/figure of the paper's evaluation plus the extension
# experiments.  Outputs land in test_output.txt and bench_output.txt at
# the repository root (the files EXPERIMENTS.md refers to).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# The concurrency label (threaded runtime, MPSC ring, sharded concurrent
# runtime, protocol race suite, live-migration stress) once more under
# ThreadSanitizer (skipped with DRSM_SKIP_TSAN=1, e.g. on hosts without
# TSan runtime support).  migration_stress_test exercises the
# drain/fence/switch/seed handoff and the OnlineController's ring + stats
# pipeline with real client threads — the racy half of the migration
# world (tests labeled both `migration` and `concurrency`).
if [ "${DRSM_SKIP_TSAN:-0}" != "1" ]; then
  cmake -B build-tsan -G Ninja -DDRSM_SANITIZE=thread
  cmake --build build-tsan --target threaded_test race_test \
    mpsc_ring_test concurrent_runtime_test migration_stress_test
  ctest --test-dir build-tsan -L concurrency 2>&1 | tee -a test_output.txt
fi

# Verification stage: exhaustive model check of all eight protocols plus
# the property-based coherence harness (see docs/TESTING.md).  N=3 covers
# the acceptance configurations; the tests' N=2 sweep already ran in ctest.
./build/tools/drsm_check --clients=3 --seeds=200 2>&1 | tee -a test_output.txt

# Migration worlds: every ordered protocol pair's live handoff
# (drain -> fence -> flush -> switch -> seed -> release) checked
# exhaustively at N=2 — all 64 pairs in under a second with the reduced
# frontier.  The `migration` ctest label (already run above) carries the
# N=3 acceptance pairs and the reduced-vs-full equivalence proof.
./build/tools/drsm_check --migration=all --clients=2 2>&1 \
  | tee -a test_output.txt

# One verification pass under ThreadSanitizer as well: the checker and
# oracle share the simulator hot path, so a data race in the tap wiring
# would surface here.  Reduced configuration — TSan is ~10x slower.
# --threads=4 forces the parallel frontier (per-depth workers over the
# lock-free visited set) even on small hosts, so the CAS-claim and
# snapshot-merge paths run under TSan every time.
if [ "${DRSM_SKIP_TSAN:-0}" != "1" ]; then
  cmake -B build-tsan -G Ninja -DDRSM_SANITIZE=thread
  cmake --build build-tsan --target drsm_check
  ./build-tsan/tools/drsm_check --clients=2 --seeds=25 --threads=4 \
    2>&1 | tee -a test_output.txt
fi

# The zero-allocation event engine once more under AddressSanitizer +
# UndefinedBehaviorSanitizer: the slab arena, free-list recycling and
# ring-buffer index arithmetic are exactly the code a use-after-recycle
# or wraparound bug would hide in.  Skipped with DRSM_SKIP_ASAN=1.
if [ "${DRSM_SKIP_ASAN:-0}" != "1" ]; then
  cmake -B build-asan -G Ninja -DDRSM_SANITIZE=address,undefined
  cmake --build build-asan --target event_queue_test sim_determinism_test \
    replication_test
  ./build-asan/tests/event_queue_test 2>&1 | tee -a test_output.txt
  ./build-asan/tests/sim_determinism_test 2>&1 | tee -a test_output.txt
  ./build-asan/tests/replication_test 2>&1 | tee -a test_output.txt
fi

# Bench smoke stage: the microbenchmarks under a Release build.  A crash
# (or nonzero exit) here fails reproduction before the full bench sweep.
# No -G: build-release is shared with scripts/bench_all.sh, which uses
# the default generator.
cmake -B build-release -DCMAKE_BUILD_TYPE=Release
cmake --build build-release --target bench_micro bench_runtime
if ! ./build-release/bench/bench_micro >/dev/null; then
  echo "bench smoke failed: bench_micro crashed in Release" >&2
  exit 1
fi
echo "bench smoke: bench_micro (Release) OK"

# bench_runtime smoke: shrunken phases, real threads, live oracle — a
# nonzero exit means a coherence violation under concurrency.  Run in a
# scratch directory so the smoke-size report cannot clobber the committed
# BENCH_runtime.json before the baseline snapshot below.
SMOKE_DIR=$(mktemp -d)
if ! (cd "$SMOKE_DIR" && DRSM_BENCH_SMOKE=1 \
      "$OLDPWD"/build-release/bench/bench_runtime >/dev/null); then
  rm -rf "$SMOKE_DIR"
  echo "bench smoke failed: bench_runtime (oracle or crash)" >&2
  exit 1
fi
rm -rf "$SMOKE_DIR"
echo "bench smoke: bench_runtime (Release, oracle-refereed) OK"

# Batched-vs-scalar bit-equality gate: the benches below answer their
# analytic grids through the SoA batched solver, and the regenerated
# reports are diffed bit-for-bit against the committed baselines — so
# prove the batched path is bit-identical to the scalar reference
# *before* regenerating anything (solver_batch_test is the differential
# suite; see docs/PERFORMANCE.md).
cmake --build build --target solver_batch_test
if ! ./build/tests/solver_batch_test >/dev/null; then
  echo "bench gate: batched solver diverges from scalar reference" >&2
  exit 1
fi
echo "bench gate: batched solver bit-identical to scalar reference OK"

# Snapshot the committed BENCH_*.json baselines before the sweep
# overwrites them in place — the regression gate below diffs the fresh
# reports against this snapshot.
BASELINE_DIR=$(mktemp -d)
trap 'rm -rf "$BASELINE_DIR"' EXIT
cp BENCH_*.json "$BASELINE_DIR"/ 2>/dev/null || true

{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      echo "===== $(basename "$b") ====="
      "$b"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt

# Regression gate: every regenerated report must match its committed
# baseline bit for bit on the accuracy fields (see
# tools/drsm_bench_diff.cc).  The sweep above runs the default (Debug)
# build against Release-generated baselines, so the wall-ratio limit is
# raised to a runaway-only backstop here; scripts/bench_all.sh is the
# like-for-like timing comparison.
cmake --build build --target drsm_bench_diff
for baseline in "$BASELINE_DIR"/BENCH_*.json; do
  [ -f "$baseline" ] || continue
  fresh=$(basename "$baseline")
  if [ -f "$fresh" ]; then
    ./build/tools/drsm_bench_diff --baseline="$baseline" --fresh="$fresh" \
      --max-wall-ratio=100 2>&1 | tee -a bench_output.txt
  else
    echo "bench gate: $fresh not regenerated by the sweep" >&2
    exit 1
  fi
done
