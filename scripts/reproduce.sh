#!/usr/bin/env bash
# Reproduce everything: build, run the full test suite, and regenerate
# every table/figure of the paper's evaluation plus the extension
# experiments.  Outputs land in test_output.txt and bench_output.txt at
# the repository root (the files EXPERIMENTS.md refers to).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# The concurrency-heavy suites once more under ThreadSanitizer (skipped
# with DRSM_SKIP_TSAN=1, e.g. on hosts without TSan runtime support).
if [ "${DRSM_SKIP_TSAN:-0}" != "1" ]; then
  cmake -B build-tsan -G Ninja -DDRSM_SANITIZE=thread
  cmake --build build-tsan --target threaded_test race_test
  ./build-tsan/tests/threaded_test 2>&1 | tee -a test_output.txt
  ./build-tsan/tests/race_test 2>&1 | tee -a test_output.txt
fi

# Verification stage: exhaustive model check of all eight protocols plus
# the property-based coherence harness (see docs/TESTING.md).  N=3 covers
# the acceptance configurations; the tests' N=2 sweep already ran in ctest.
./build/tools/drsm_check --clients=3 --seeds=200 2>&1 | tee -a test_output.txt

# One verification pass under ThreadSanitizer as well: the checker and
# oracle share the simulator hot path, so a data race in the tap wiring
# would surface here.  Reduced configuration — TSan is ~10x slower.
if [ "${DRSM_SKIP_TSAN:-0}" != "1" ]; then
  cmake -B build-tsan -G Ninja -DDRSM_SANITIZE=thread
  cmake --build build-tsan --target drsm_check
  ./build-tsan/tools/drsm_check --clients=2 --seeds=25 2>&1 | tee -a test_output.txt
fi

# The zero-allocation event engine once more under AddressSanitizer +
# UndefinedBehaviorSanitizer: the slab arena, free-list recycling and
# ring-buffer index arithmetic are exactly the code a use-after-recycle
# or wraparound bug would hide in.  Skipped with DRSM_SKIP_ASAN=1.
if [ "${DRSM_SKIP_ASAN:-0}" != "1" ]; then
  cmake -B build-asan -G Ninja -DDRSM_SANITIZE=address,undefined
  cmake --build build-asan --target event_queue_test sim_determinism_test \
    replication_test
  ./build-asan/tests/event_queue_test 2>&1 | tee -a test_output.txt
  ./build-asan/tests/sim_determinism_test 2>&1 | tee -a test_output.txt
  ./build-asan/tests/replication_test 2>&1 | tee -a test_output.txt
fi

# Bench smoke stage: the microbenchmarks under a Release build.  A crash
# (or nonzero exit) here fails reproduction before the full bench sweep.
# No -G: build-release is shared with scripts/bench_all.sh, which uses
# the default generator.
cmake -B build-release -DCMAKE_BUILD_TYPE=Release
cmake --build build-release --target bench_micro
if ! ./build-release/bench/bench_micro >/dev/null; then
  echo "bench smoke failed: bench_micro crashed in Release" >&2
  exit 1
fi
echo "bench smoke: bench_micro (Release) OK"

{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      echo "===== $(basename "$b") ====="
      "$b"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt
