#!/usr/bin/env bash
# Reproduce everything: build, run the full test suite, and regenerate
# every table/figure of the paper's evaluation plus the extension
# experiments.  Outputs land in test_output.txt and bench_output.txt at
# the repository root (the files EXPERIMENTS.md refers to).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      echo "===== $(basename "$b") ====="
      "$b"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt
