#!/usr/bin/env bash
# Build Release and run every experiment bench, collecting the
# machine-readable BENCH_<name>.json reports at the repository root
# (console output goes to bench_output.txt as in scripts/reproduce.sh).
#
# Usage: scripts/bench_all.sh [bench ...]   (default: every bench binary)
set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$PWD"

BUILD_DIR=build-release
cmake -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target all

if [ "$#" -gt 0 ]; then
  benches=()
  for name in "$@"; do benches+=("$BUILD_DIR/bench/$name"); done
else
  benches=("$BUILD_DIR"/bench/*)
fi

# First "sim.events_per_sec" gauge in a BENCH report (the simulator's
# wall-clock event-loop throughput), or "-" when the bench has none.
events_per_sec() {
  local json="$1"
  [ -f "$json" ] || { echo "-"; return; }
  local v
  v=$(grep -m1 '"sim.events_per_sec"\|"events_per_sec"' "$json" \
        | sed 's/.*: *//; s/[ ,].*//') || true
  if [ -n "${v:-}" ]; then printf '%.0f' "$v"; else echo "-"; fi
}

# Serial/parallel speedup recorded under "parallelism" in the report
# (benches that run a phase twice, serial then parallel), or "-".
speedup() {
  local json="$1"
  [ -f "$json" ] || { echo "-"; return; }
  local v
  v=$(grep -m1 '"speedup"' "$json" | sed 's/.*: *//; s/[ ,].*//') || true
  if [ -n "${v:-}" ]; then printf '%.2fx' "$v"; else echo "-"; fi
}

# Peak operation throughput of the concurrent runtime ("peak_ops_per_sec"
# in BENCH_runtime.json), or "-" for benches without one.
ops_per_sec() {
  local json="$1"
  [ -f "$json" ] || { echo "-"; return; }
  local v
  v=$(grep -m1 '"peak_ops_per_sec"' "$json" \
        | sed 's/.*: *//; s/[ ,].*//') || true
  if [ -n "${v:-}" ]; then printf '%.0f' "$v"; else echo "-"; fi
}

{
  names=()
  times_ms=()
  events=()
  speedups=()
  ops=()
  for b in "${benches[@]}"; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      echo "===== $(basename "$b") ====="
      # Benches write BENCH_<name>.json into the working directory; run
      # them at the repo root so the reports land there.
      start_ns=$(date +%s%N)
      (cd "$ROOT" && "$b")
      elapsed_ms=$(( ($(date +%s%N) - start_ns) / 1000000 ))
      names+=("$(basename "$b")")
      times_ms+=("$elapsed_ms")
      events+=("$(events_per_sec "$ROOT/BENCH_${b##*/bench_}.json")")
      speedups+=("$(speedup "$ROOT/BENCH_${b##*/bench_}.json")")
      ops+=("$(ops_per_sec "$ROOT/BENCH_${b##*/bench_}.json")")
      echo
    fi
  done

  # Per-bench wall-clock summary (printed inside the group so it reaches
  # both the console and bench_output.txt).
  echo "===== wall-clock summary ====="
  printf '%-28s %12s %16s %10s %16s\n' "bench" "wall (ms)" "sim events/s" \
    "speedup" "peak ops/s"
  total_ms=0
  for i in "${!names[@]}"; do
    printf '%-28s %12s %16s %10s %16s\n' "${names[$i]}" "${times_ms[$i]}" \
      "${events[$i]}" "${speedups[$i]}" "${ops[$i]}"
    total_ms=$(( total_ms + times_ms[i] ))
  done
  printf '%-28s %12s\n' "total" "$total_ms"
} 2>&1 | tee bench_output.txt

echo "reports:"
ls -1 BENCH_*.json 2>/dev/null || echo "  (none emitted)"
