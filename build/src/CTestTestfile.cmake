# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("linalg")
subdirs("fsm")
subdirs("sim")
subdirs("protocols")
subdirs("dsm")
subdirs("workload")
subdirs("analytic")
subdirs("stats")
subdirs("adaptive")
