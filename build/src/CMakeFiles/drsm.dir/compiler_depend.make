# Empty compiler generated dependencies file for drsm.
# This may be replaced when dependencies are built.
