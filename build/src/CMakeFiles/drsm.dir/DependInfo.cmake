
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adaptive/selector.cc" "src/CMakeFiles/drsm.dir/adaptive/selector.cc.o" "gcc" "src/CMakeFiles/drsm.dir/adaptive/selector.cc.o.d"
  "/root/repo/src/analytic/chain.cc" "src/CMakeFiles/drsm.dir/analytic/chain.cc.o" "gcc" "src/CMakeFiles/drsm.dir/analytic/chain.cc.o.d"
  "/root/repo/src/analytic/closed_form.cc" "src/CMakeFiles/drsm.dir/analytic/closed_form.cc.o" "gcc" "src/CMakeFiles/drsm.dir/analytic/closed_form.cc.o.d"
  "/root/repo/src/analytic/lumped.cc" "src/CMakeFiles/drsm.dir/analytic/lumped.cc.o" "gcc" "src/CMakeFiles/drsm.dir/analytic/lumped.cc.o.d"
  "/root/repo/src/analytic/predictor.cc" "src/CMakeFiles/drsm.dir/analytic/predictor.cc.o" "gcc" "src/CMakeFiles/drsm.dir/analytic/predictor.cc.o.d"
  "/root/repo/src/analytic/sensitivity.cc" "src/CMakeFiles/drsm.dir/analytic/sensitivity.cc.o" "gcc" "src/CMakeFiles/drsm.dir/analytic/sensitivity.cc.o.d"
  "/root/repo/src/analytic/solver.cc" "src/CMakeFiles/drsm.dir/analytic/solver.cc.o" "gcc" "src/CMakeFiles/drsm.dir/analytic/solver.cc.o.d"
  "/root/repo/src/dsm/dsm.cc" "src/CMakeFiles/drsm.dir/dsm/dsm.cc.o" "gcc" "src/CMakeFiles/drsm.dir/dsm/dsm.cc.o.d"
  "/root/repo/src/dsm/memory_pool.cc" "src/CMakeFiles/drsm.dir/dsm/memory_pool.cc.o" "gcc" "src/CMakeFiles/drsm.dir/dsm/memory_pool.cc.o.d"
  "/root/repo/src/fsm/table.cc" "src/CMakeFiles/drsm.dir/fsm/table.cc.o" "gcc" "src/CMakeFiles/drsm.dir/fsm/table.cc.o.d"
  "/root/repo/src/fsm/token.cc" "src/CMakeFiles/drsm.dir/fsm/token.cc.o" "gcc" "src/CMakeFiles/drsm.dir/fsm/token.cc.o.d"
  "/root/repo/src/linalg/lu.cc" "src/CMakeFiles/drsm.dir/linalg/lu.cc.o" "gcc" "src/CMakeFiles/drsm.dir/linalg/lu.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/drsm.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/drsm.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/sparse.cc" "src/CMakeFiles/drsm.dir/linalg/sparse.cc.o" "gcc" "src/CMakeFiles/drsm.dir/linalg/sparse.cc.o.d"
  "/root/repo/src/linalg/stationary.cc" "src/CMakeFiles/drsm.dir/linalg/stationary.cc.o" "gcc" "src/CMakeFiles/drsm.dir/linalg/stationary.cc.o.d"
  "/root/repo/src/protocols/berkeley.cc" "src/CMakeFiles/drsm.dir/protocols/berkeley.cc.o" "gcc" "src/CMakeFiles/drsm.dir/protocols/berkeley.cc.o.d"
  "/root/repo/src/protocols/dragon.cc" "src/CMakeFiles/drsm.dir/protocols/dragon.cc.o" "gcc" "src/CMakeFiles/drsm.dir/protocols/dragon.cc.o.d"
  "/root/repo/src/protocols/firefly.cc" "src/CMakeFiles/drsm.dir/protocols/firefly.cc.o" "gcc" "src/CMakeFiles/drsm.dir/protocols/firefly.cc.o.d"
  "/root/repo/src/protocols/illinois.cc" "src/CMakeFiles/drsm.dir/protocols/illinois.cc.o" "gcc" "src/CMakeFiles/drsm.dir/protocols/illinois.cc.o.d"
  "/root/repo/src/protocols/protocol.cc" "src/CMakeFiles/drsm.dir/protocols/protocol.cc.o" "gcc" "src/CMakeFiles/drsm.dir/protocols/protocol.cc.o.d"
  "/root/repo/src/protocols/synapse.cc" "src/CMakeFiles/drsm.dir/protocols/synapse.cc.o" "gcc" "src/CMakeFiles/drsm.dir/protocols/synapse.cc.o.d"
  "/root/repo/src/protocols/write_once.cc" "src/CMakeFiles/drsm.dir/protocols/write_once.cc.o" "gcc" "src/CMakeFiles/drsm.dir/protocols/write_once.cc.o.d"
  "/root/repo/src/protocols/write_through.cc" "src/CMakeFiles/drsm.dir/protocols/write_through.cc.o" "gcc" "src/CMakeFiles/drsm.dir/protocols/write_through.cc.o.d"
  "/root/repo/src/protocols/write_through_v.cc" "src/CMakeFiles/drsm.dir/protocols/write_through_v.cc.o" "gcc" "src/CMakeFiles/drsm.dir/protocols/write_through_v.cc.o.d"
  "/root/repo/src/sim/event_sim.cc" "src/CMakeFiles/drsm.dir/sim/event_sim.cc.o" "gcc" "src/CMakeFiles/drsm.dir/sim/event_sim.cc.o.d"
  "/root/repo/src/sim/sequential.cc" "src/CMakeFiles/drsm.dir/sim/sequential.cc.o" "gcc" "src/CMakeFiles/drsm.dir/sim/sequential.cc.o.d"
  "/root/repo/src/sim/threaded.cc" "src/CMakeFiles/drsm.dir/sim/threaded.cc.o" "gcc" "src/CMakeFiles/drsm.dir/sim/threaded.cc.o.d"
  "/root/repo/src/stats/summary.cc" "src/CMakeFiles/drsm.dir/stats/summary.cc.o" "gcc" "src/CMakeFiles/drsm.dir/stats/summary.cc.o.d"
  "/root/repo/src/support/error.cc" "src/CMakeFiles/drsm.dir/support/error.cc.o" "gcc" "src/CMakeFiles/drsm.dir/support/error.cc.o.d"
  "/root/repo/src/support/rng.cc" "src/CMakeFiles/drsm.dir/support/rng.cc.o" "gcc" "src/CMakeFiles/drsm.dir/support/rng.cc.o.d"
  "/root/repo/src/support/text.cc" "src/CMakeFiles/drsm.dir/support/text.cc.o" "gcc" "src/CMakeFiles/drsm.dir/support/text.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/drsm.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/drsm.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/spec.cc" "src/CMakeFiles/drsm.dir/workload/spec.cc.o" "gcc" "src/CMakeFiles/drsm.dir/workload/spec.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "src/CMakeFiles/drsm.dir/workload/trace_io.cc.o" "gcc" "src/CMakeFiles/drsm.dir/workload/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
