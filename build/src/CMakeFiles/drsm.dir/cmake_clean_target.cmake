file(REMOVE_RECURSE
  "libdrsm.a"
)
