file(REMOVE_RECURSE
  "CMakeFiles/race_test.dir/race_test.cc.o"
  "CMakeFiles/race_test.dir/race_test.cc.o.d"
  "race_test"
  "race_test.pdb"
  "race_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
