# Empty dependencies file for message_sequence_test.
# This may be replaced when dependencies are built.
