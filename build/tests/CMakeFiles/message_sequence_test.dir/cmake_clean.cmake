file(REMOVE_RECURSE
  "CMakeFiles/message_sequence_test.dir/message_sequence_test.cc.o"
  "CMakeFiles/message_sequence_test.dir/message_sequence_test.cc.o.d"
  "message_sequence_test"
  "message_sequence_test.pdb"
  "message_sequence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_sequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
