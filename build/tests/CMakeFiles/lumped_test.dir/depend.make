# Empty dependencies file for lumped_test.
# This may be replaced when dependencies are built.
