file(REMOVE_RECURSE
  "CMakeFiles/lumped_test.dir/lumped_test.cc.o"
  "CMakeFiles/lumped_test.dir/lumped_test.cc.o.d"
  "lumped_test"
  "lumped_test.pdb"
  "lumped_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumped_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
