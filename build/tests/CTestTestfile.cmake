# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/chain_test[1]_include.cmake")
include("/root/repo/build/tests/crossover_test[1]_include.cmake")
include("/root/repo/build/tests/fsm_test[1]_include.cmake")
include("/root/repo/build/tests/protocols_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/event_sim_test[1]_include.cmake")
include("/root/repo/build/tests/dsm_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/lumped_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/predictor_test[1]_include.cmake")
include("/root/repo/build/tests/invariant_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/race_test[1]_include.cmake")
include("/root/repo/build/tests/transient_test[1]_include.cmake")
include("/root/repo/build/tests/message_sequence_test[1]_include.cmake")
include("/root/repo/build/tests/threaded_test[1]_include.cmake")
