# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_protocol_shootout "/root/repo/build/examples/protocol_shootout")
set_tests_properties(example_protocol_shootout PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adaptive_dsm "/root/repo/build/examples/adaptive_dsm")
set_tests_properties(example_adaptive_dsm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_parallel_sum "/root/repo/build/examples/parallel_sum")
set_tests_properties(example_parallel_sum PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_inspector "/root/repo/build/examples/trace_inspector")
set_tests_properties(example_trace_inspector PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stencil "/root/repo/build/examples/stencil")
set_tests_properties(example_stencil PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_advisor "/root/repo/build/examples/trace_advisor")
set_tests_properties(example_trace_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_state_diagrams "/root/repo/build/examples/state_diagrams")
set_tests_properties(example_state_diagrams PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shootout_lumped "/root/repo/build/examples/protocol_shootout" "read" "0.2" "0.002" "100" "102" "2000" "30")
set_tests_properties(example_shootout_lumped PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
