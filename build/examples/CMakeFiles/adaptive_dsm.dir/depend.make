# Empty dependencies file for adaptive_dsm.
# This may be replaced when dependencies are built.
