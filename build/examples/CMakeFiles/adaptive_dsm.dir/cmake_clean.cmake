file(REMOVE_RECURSE
  "CMakeFiles/adaptive_dsm.dir/adaptive_dsm.cpp.o"
  "CMakeFiles/adaptive_dsm.dir/adaptive_dsm.cpp.o.d"
  "adaptive_dsm"
  "adaptive_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
