# Empty compiler generated dependencies file for parallel_sum.
# This may be replaced when dependencies are built.
