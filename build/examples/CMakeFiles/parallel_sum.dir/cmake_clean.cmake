file(REMOVE_RECURSE
  "CMakeFiles/parallel_sum.dir/parallel_sum.cpp.o"
  "CMakeFiles/parallel_sum.dir/parallel_sum.cpp.o.d"
  "parallel_sum"
  "parallel_sum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
