file(REMOVE_RECURSE
  "CMakeFiles/trace_advisor.dir/trace_advisor.cpp.o"
  "CMakeFiles/trace_advisor.dir/trace_advisor.cpp.o.d"
  "trace_advisor"
  "trace_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
