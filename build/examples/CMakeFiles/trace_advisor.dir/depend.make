# Empty dependencies file for trace_advisor.
# This may be replaced when dependencies are built.
