# Empty dependencies file for state_diagrams.
# This may be replaced when dependencies are built.
