file(REMOVE_RECURSE
  "CMakeFiles/state_diagrams.dir/state_diagrams.cpp.o"
  "CMakeFiles/state_diagrams.dir/state_diagrams.cpp.o.d"
  "state_diagrams"
  "state_diagrams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_diagrams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
