file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_pool.dir/bench_memory_pool.cc.o"
  "CMakeFiles/bench_memory_pool.dir/bench_memory_pool.cc.o.d"
  "bench_memory_pool"
  "bench_memory_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
