# Empty compiler generated dependencies file for bench_memory_pool.
# This may be replaced when dependencies are built.
