# Empty dependencies file for bench_multi_ac.
# This may be replaced when dependencies are built.
