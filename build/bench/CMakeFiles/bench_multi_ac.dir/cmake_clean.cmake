file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_ac.dir/bench_multi_ac.cc.o"
  "CMakeFiles/bench_multi_ac.dir/bench_multi_ac.cc.o.d"
  "bench_multi_ac"
  "bench_multi_ac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_ac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
