file(REMOVE_RECURSE
  "CMakeFiles/bench_disturbers.dir/bench_disturbers.cc.o"
  "CMakeFiles/bench_disturbers.dir/bench_disturbers.cc.o.d"
  "bench_disturbers"
  "bench_disturbers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disturbers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
