# Empty compiler generated dependencies file for bench_disturbers.
# This may be replaced when dependencies are built.
