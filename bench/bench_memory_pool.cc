// Extension bench — "the influence of some distributed system parameters,
// such as the size of the free memory pool" (paper conclusion).
//
// Two views of the same trade-off:
//  1. measured: a bounded per-client replica pool with LRU eviction
//     (dsm::CapacityManagedMemory) under a uniform multi-object workload —
//     acc and eviction counts vs pool size;
//  2. analytic: the eject-extended read-disturbance workload, where the
//     activity center ejects its replica with probability e per operation
//     — acc(e) from the exact model and the derived closed form.
#include <cstdio>
#include <optional>

#include "analytic/closed_form.h"
#include "analytic/solver.h"
#include "bench_util.h"
#include "dsm/memory_pool.h"
#include "support/rng.h"
#include "workload/generator.h"
#include "workload/spec.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;

constexpr std::size_t kClients = 4;
constexpr std::size_t kObjects = 16;
constexpr std::size_t kOps = 40000;

double run_pool(ProtocolKind kind, std::size_t capacity,
                std::size_t* evictions, double zipf_s = 0.0) {
  dsm::CapacityManagedMemory::Options options;
  options.memory.protocol = kind;
  options.memory.num_clients = kClients;
  options.memory.num_objects = kObjects;
  options.memory.costs.s = 100.0;
  options.memory.costs.p = 30.0;
  options.replicas_per_client = capacity;
  dsm::CapacityManagedMemory memory(options);

  Rng rng(7);
  std::optional<CategoricalSampler> skew;
  if (zipf_s > 0.0) skew.emplace(workload::zipf_weights(kObjects, zipf_s));
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < kOps; ++i) {
    const NodeId node = static_cast<NodeId>(rng.uniform_index(kClients));
    const ObjectId object =
        skew.has_value()
            ? static_cast<ObjectId>(skew->sample(rng))
            : static_cast<ObjectId>(rng.uniform_index(kObjects));
    if (rng.bernoulli(0.2))
      memory.write(node, object, ++value);
    else
      memory.read(node, object);
  }
  *evictions = memory.total_evictions();
  return memory.memory().average_cost();
}

}  // namespace

int main() {
  std::printf(
      "Free memory pool: %zu clients, %zu objects, %zu ops, S=100, P=30, "
      "20%% writes, uniform access\n\n",
      kClients, kObjects, kOps);

  std::printf("measured: acc vs per-client replica capacity\n");
  std::vector<std::vector<std::string>> rows;
  for (ProtocolKind kind :
       {ProtocolKind::kWriteThrough, ProtocolKind::kWriteThroughV}) {
    std::vector<std::string> row = {bench::short_name(kind)};
    for (std::size_t capacity : {0ul, 16ul, 8ul, 4ul, 2ul, 1ul}) {
      std::size_t evictions = 0;
      const double acc = run_pool(kind, capacity, &evictions);
      row.push_back(strfmt("%.1f (%zuev)", acc, evictions));
    }
    rows.push_back(std::move(row));
  }
  std::printf("%s\n",
              render_table({"protocol", "unbounded", "cap=16", "cap=8",
                            "cap=4", "cap=2", "cap=1"},
                           rows)
                  .c_str());

  std::printf(
      "measured: the same sweep under Zipf(1.2) object popularity — skew\n"
      "keeps the hot objects resident, so small pools hurt less:\n");
  std::vector<std::vector<std::string>> skew_rows;
  for (ProtocolKind kind :
       {ProtocolKind::kWriteThrough, ProtocolKind::kWriteThroughV}) {
    std::vector<std::string> row = {bench::short_name(kind)};
    for (std::size_t capacity : {0ul, 16ul, 8ul, 4ul, 2ul, 1ul}) {
      std::size_t evictions = 0;
      const double acc = run_pool(kind, capacity, &evictions, 1.2);
      row.push_back(strfmt("%.1f (%zuev)", acc, evictions));
    }
    skew_rows.push_back(std::move(row));
  }
  std::printf("%s\n",
              render_table({"protocol", "unbounded", "cap=16", "cap=8",
                            "cap=4", "cap=2", "cap=1"},
                           skew_rows)
                  .c_str());

  std::printf(
      "analytic: eject-extended read disturbance (N=4, a=2, p=0.2, "
      "sigma=0.1), Write-Through\n");
  analytic::AccSolver solver({4, {100.0, 30.0}, 1});
  std::vector<std::vector<std::string>> rows2;
  for (double e : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    const auto spec = workload::read_disturbance_with_eject(0.2, 0.1, 2, e);
    rows2.push_back(
        {strfmt("%.2f", e),
         strfmt("%.2f", solver.acc(ProtocolKind::kWriteThrough, spec)),
         strfmt("%.2f", analytic::closed_form::wt_read_disturbance_with_eject(
                            0.2, 0.1, 2, e, 4, 100.0, 30.0))});
  }
  std::printf("%s",
              render_table({"eject prob e", "exact model", "closed form"},
                           rows2)
                  .c_str());
  std::printf(
      "Shrinking the pool (or raising e) converts free replica hits into "
      "S+2 misses; the effect saturates once every center read misses.\n");
  return 0;
}
