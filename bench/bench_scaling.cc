// Extension bench — system-size scaling: acc(N) for all eight protocols
// at a fixed workload, from the exact analytic model, plus the simulator's
// wall-clock scaling.  The paper's formulas make N-dependence explicit
// (invalidation broadcasts cost ~N, update broadcasts ~N(P+1)); this bench
// renders those growth laws side by side.
//
// The analytic phase runs twice through the sweep engine (exec/sweep.h):
// once serially (1 thread) and once at the host's default thread count.
// Both runs must produce bit-identical acc values — each task owns its
// solver, so warm-start and cache state is task-local — and the report
// records both wall times plus the resulting speedup.
#include <array>
#include <chrono>
#include <cstdio>
#include <memory>

#include "analytic/solver.h"
#include "bench_util.h"
#include "exec/sweep.h"
#include "sim/event_sim.h"
#include "workload/generator.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;

constexpr std::array<std::size_t, 6> kSizes = {4, 8, 16, 32, 64, 128};

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct AnalyticResult {
  std::vector<double> accs;  // by protocol, kAllProtocols order
  std::unique_ptr<obs::MetricsRegistry> metrics;
};

/// One sweep task per system size N: the task-local solver reuses chains
/// across the eight protocols, and metrics land in a task-local registry
/// merged in task order afterwards.
std::vector<AnalyticResult> run_analytic(const workload::WorkloadSpec& spec,
                                         std::size_t threads,
                                         obs::MetricsRegistry* metrics) {
  exec::SweepRunner runner({.threads = threads, .metrics = metrics});
  return runner.run<AnalyticResult>(
      kSizes.size(), [&](const exec::SweepTask& task) {
        AnalyticResult out;
        out.metrics = std::make_unique<obs::MetricsRegistry>();
        analytic::AccSolver solver({kSizes[task.index], {200.0, 30.0}, 1});
        solver.set_metrics(out.metrics.get());
        out.accs.reserve(protocols::kAllProtocols.size());
        for (ProtocolKind kind : protocols::kAllProtocols)
          out.accs.push_back(solver.acc(kind, spec));
        return out;
      });
}

}  // namespace

int main() {
  std::printf(
      "Scaling with system size N (read disturbance p=0.3, sigma=0.05, "
      "a=3, S=200, P=30)\n\n");
  const auto spec = workload::read_disturbance(0.3, 0.05, 3);
  bench::Report report("scaling");

  // Serial baseline: the same sweep, one thread.
  report.phase("analytic_serial");
  auto start = std::chrono::steady_clock::now();
  const auto serial = run_analytic(spec, 1, nullptr);
  const double serial_ms = ms_since(start);

  // Parallel run: default thread count, must agree bit-for-bit.
  obs::MetricsRegistry exec_metrics;
  const std::size_t threads = exec::ThreadPool::default_threads();
  report.phase("analytic_parallel");
  start = std::chrono::steady_clock::now();
  const auto parallel = run_analytic(spec, threads, &exec_metrics);
  const double parallel_ms = ms_since(start);

  bool identical = true;
  for (std::size_t i = 0; i < kSizes.size(); ++i)
    for (std::size_t k = 0; k < protocols::kAllProtocols.size(); ++k)
      if (serial[i].accs[k] != parallel[i].accs[k]) identical = false;

  {
    std::printf("analytic acc vs N:\n");
    obs::MetricsRegistry solver_metrics;
    std::vector<std::vector<std::string>> rows;
    for (std::size_t i = 0; i < kSizes.size(); ++i) {
      solver_metrics.merge(*parallel[i].metrics);
      std::vector<std::string> row = {strfmt("%zu", kSizes[i])};
      for (std::size_t k = 0; k < protocols::kAllProtocols.size(); ++k) {
        const double acc = parallel[i].accs[k];
        auto& result = report.add_result();
        result["phase"] = "analytic";
        result["n"] = kSizes[i];
        result["protocol"] = bench::short_name(protocols::kAllProtocols[k]);
        result["acc_analytic"] = acc;
        row.push_back(strfmt("%.0f", acc));
      }
      rows.push_back(std::move(row));
    }
    report.root()["solver_metrics"] = solver_metrics.to_json();
    std::vector<std::string> header = {"N"};
    for (ProtocolKind kind : protocols::kAllProtocols)
      header.push_back(bench::short_name(kind));
    std::printf("%s\n", render_table(header, rows).c_str());
    std::printf(
        "Growth laws: the invalidate protocols grow ~p*N (broadcast "
        "tokens); the update protocols grow ~p*N*(P+1); read-miss terms "
        "(S+2) are N-independent, so large-S regimes flatten the curves.\n\n");
  }

  std::printf(
      "sweep engine: %zu thread(s), serial %.1f ms, parallel %.1f ms, "
      "speedup %.2fx, results %s\n\n",
      threads, serial_ms, parallel_ms,
      parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0,
      identical ? "bit-identical" : "MISMATCH");
  {
    auto& parallelism = report.root()["parallelism"];
    parallelism["threads"] = threads;
    parallelism["serial_wall_ms"] = serial_ms;
    parallelism["parallel_wall_ms"] = parallel_ms;
    parallelism["speedup"] =
        parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
    parallelism["identical"] = identical;
  }

  report.phase("simulator");
  {
    std::printf("simulator wall-clock per operation vs N (write-once):\n");
    const std::array<std::size_t, 3> sim_sizes = {4, 16, 64};
    struct SimResult {
      sim::SimStats stats;
      double elapsed_us = 0.0;
      // Task-local engine metrics (sim.events_per_sec and friends);
      // merged in task order below so the report is thread-count
      // independent.
      std::unique_ptr<obs::MetricsRegistry> metrics;
    };
    exec::SweepRunner runner({.metrics = &exec_metrics});
    const auto sims = runner.run<SimResult>(
        sim_sizes.size(), [&](const exec::SweepTask& task) {
          sim::SystemConfig config;
          config.num_clients = sim_sizes[task.index];
          config.costs.s = 200.0;
          config.costs.p = 30.0;
          sim::SimOptions options;
          options.max_ops = 20000;
          options.warmup_ops = 500;
          options.seed = 3;
          sim::EventSimulator simulator(ProtocolKind::kWriteOnce, config,
                                        options);
          SimResult out;
          out.metrics = std::make_unique<obs::MetricsRegistry>();
          simulator.set_metrics(out.metrics.get());
          workload::ConcurrentDriver driver(spec, 4);
          const auto sim_start = std::chrono::steady_clock::now();
          out.stats = simulator.run(driver);
          out.elapsed_us = std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - sim_start)
                               .count();
          return out;
        });
    obs::MetricsRegistry sim_metrics;
    for (const auto& s : sims) sim_metrics.merge(*s.metrics);
    report.root()["sim_metrics"] = sim_metrics.to_json();
    std::vector<std::vector<std::string>> rows;
    for (std::size_t i = 0; i < sim_sizes.size(); ++i) {
      const sim::SimStats& stats = sims[i].stats;
      const double per_op =
          sims[i].elapsed_us /
          static_cast<double>(stats.measured_ops + stats.warmup_ops);
      auto& result = report.add_result();
      result["phase"] = "simulator";
      result["n"] = sim_sizes[i];
      result["protocol"] = bench::short_name(ProtocolKind::kWriteOnce);
      result["wall_us_per_op"] = per_op;
      result["sim"] = bench::sim_stats_json(stats);
      rows.push_back({strfmt("%zu", sim_sizes[i]),
                      strfmt("%.2f", stats.acc()),
                      strfmt("%.2f us", per_op)});
    }
    std::printf("%s",
                render_table({"N", "simulated acc", "time/op"}, rows)
                    .c_str());
    std::printf(
        "Broadcasts deliver to all N+1 nodes, so simulation time per "
        "operation grows with N while the analytic solve depends only on "
        "the number of *active* nodes.\n");
  }
  report.root()["exec_metrics"] = exec_metrics.to_json();
  report.write();
  return 0;
}
