// Extension bench — system-size scaling: acc(N) for all eight protocols
// at a fixed workload, from the exact analytic model, plus the simulator's
// wall-clock scaling.  The paper's formulas make N-dependence explicit
// (invalidation broadcasts cost ~N, update broadcasts ~N(P+1)); this bench
// renders those growth laws side by side.
#include <chrono>
#include <cstdio>

#include "analytic/solver.h"
#include "bench_util.h"
#include "sim/event_sim.h"
#include "workload/generator.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;

}  // namespace

int main() {
  std::printf(
      "Scaling with system size N (read disturbance p=0.3, sigma=0.05, "
      "a=3, S=200, P=30)\n\n");
  const auto spec = workload::read_disturbance(0.3, 0.05, 3);
  bench::Report report("scaling");

  {
    std::printf("analytic acc vs N:\n");
    obs::MetricsRegistry solver_metrics;
    std::vector<std::vector<std::string>> rows;
    for (std::size_t n : {4ul, 8ul, 16ul, 32ul, 64ul, 128ul}) {
      analytic::AccSolver solver({n, {200.0, 30.0}, 1});
      solver.set_metrics(&solver_metrics);
      std::vector<std::string> row = {strfmt("%zu", n)};
      for (ProtocolKind kind : protocols::kAllProtocols) {
        const double acc = solver.acc(kind, spec);
        auto& result = report.add_result();
        result["phase"] = "analytic";
        result["n"] = n;
        result["protocol"] = bench::short_name(kind);
        result["acc_analytic"] = acc;
        row.push_back(strfmt("%.0f", acc));
      }
      rows.push_back(std::move(row));
    }
    report.root()["solver_metrics"] = solver_metrics.to_json();
    std::vector<std::string> header = {"N"};
    for (ProtocolKind kind : protocols::kAllProtocols)
      header.push_back(bench::short_name(kind));
    std::printf("%s\n", render_table(header, rows).c_str());
    std::printf(
        "Growth laws: the invalidate protocols grow ~p*N (broadcast "
        "tokens); the update protocols grow ~p*N*(P+1); read-miss terms "
        "(S+2) are N-independent, so large-S regimes flatten the curves.\n\n");
  }

  {
    std::printf("simulator wall-clock per operation vs N (write-once):\n");
    std::vector<std::vector<std::string>> rows;
    for (std::size_t n : {4ul, 16ul, 64ul}) {
      sim::SystemConfig config;
      config.num_clients = n;
      config.costs.s = 200.0;
      config.costs.p = 30.0;
      sim::SimOptions options;
      options.max_ops = 20000;
      options.warmup_ops = 500;
      options.seed = 3;
      sim::EventSimulator simulator(ProtocolKind::kWriteOnce, config,
                                    options);
      workload::ConcurrentDriver driver(spec, 4);
      const auto start = std::chrono::steady_clock::now();
      const sim::SimStats stats = simulator.run(driver);
      const double elapsed_us =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - start)
              .count();
      auto& result = report.add_result();
      result["phase"] = "simulator";
      result["n"] = n;
      result["protocol"] = bench::short_name(ProtocolKind::kWriteOnce);
      result["wall_us_per_op"] =
          elapsed_us /
          static_cast<double>(stats.measured_ops + stats.warmup_ops);
      result["sim"] = bench::sim_stats_json(stats);
      rows.push_back({strfmt("%zu", n), strfmt("%.2f", stats.acc()),
                      strfmt("%.2f us",
                             elapsed_us / static_cast<double>(
                                              stats.measured_ops +
                                              stats.warmup_ops))});
    }
    std::printf("%s",
                render_table({"N", "simulated acc", "time/op"}, rows)
                    .c_str());
    std::printf(
        "Broadcasts deliver to all N+1 nodes, so simulation time per "
        "operation grows with N while the analytic solve depends only on "
        "the number of *active* nodes.\n");
  }
  report.write();
  return 0;
}
