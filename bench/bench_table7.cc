// Experiment E2 — the paper's Table 7: "a comparison of analytical and
// simulation results for Write-Once and Write-Through-V protocol",
// N=3, a=2, P=30, S=100, M=20 shared objects.
//
// The paper's Ada simulator generated operations per node "in concordance
// to specified stochastic steady-state workload parameters", neglected the
// first 500 operations and measured ~1500 steady-state operations per
// parameter pair, observing a maximum discrepancy below +-8 %.  We
// reproduce the setup with the discrete-event simulator and the concurrent
// closed-loop driver, and also report a 40x longer run to show the
// discrepancy is sampling noise, not model error.
//
// Grid cells fan out through the sweep engine, one task per (p, sigma)
// cell.  Each cell's simulation keeps its original fixed seed (a function
// of p and sigma only) and each task owns its solver, so the table is
// bit-identical at any thread count.
#include <cmath>
#include <cstdio>

#include "analytic/solver.h"
#include "bench_util.h"
#include "exec/sweep.h"
#include "sim/event_sim.h"
#include "stats/summary.h"
#include "workload/generator.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;

constexpr std::size_t kN = 3;
constexpr std::size_t kA = 2;
constexpr double kPcost = 30.0;
constexpr double kScost = 100.0;
constexpr std::size_t kM = 20;

sim::SystemConfig make_config() {
  sim::SystemConfig config;
  config.num_clients = kN;
  config.costs.s = kScost;
  config.costs.p = kPcost;
  config.num_objects = kM;
  return config;
}

sim::SimStats simulate(ProtocolKind kind, const workload::WorkloadSpec& spec,
                       std::size_t warmup_ops, std::size_t measured_ops,
                       std::uint64_t seed) {
  sim::SimOptions options;
  options.warmup_ops = warmup_ops;
  options.max_ops = warmup_ops + measured_ops;
  options.seed = seed;
  sim::EventSimulator simulator(kind, make_config(), options);
  workload::ConcurrentDriver driver(spec, seed ^ 0xBEEF, kM);
  return simulator.run(driver);
}

struct CellResult {
  bool valid = false;
  double analytic_acc = 0.0;
  sim::SimStats sim_stats;
};

void run_table(bench::Report& report, exec::SweepRunner& runner,
               ProtocolKind kind, std::size_t warmup_ops,
               std::size_t measured_ops, const char* label) {
  std::printf(
      "%s protocol — %s (%zu warmup + %zu measured operations)\n",
      protocols::to_string(kind), label, warmup_ops, measured_ops);

  const std::vector<double> grid = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  std::vector<std::pair<double, double>> cells;  // (p, sigma), row-major
  for (double p : grid)
    for (double sigma : grid) cells.push_back({p, sigma});

  const auto results = runner.run<CellResult>(
      cells.size(), [&](const exec::SweepTask& task) {
        const auto [p, sigma] = cells[task.index];
        CellResult out;
        if (p + static_cast<double>(kA) * sigma > 1.0 + 1e-12) return out;
        out.valid = true;
        const auto spec = workload::read_disturbance(p, sigma, kA);
        analytic::AccSolver solver({kN, {kScost, kPcost}, 1});
        out.analytic_acc = solver.acc(kind, spec);
        out.sim_stats =
            simulate(kind, spec, warmup_ops, measured_ops,
                     static_cast<std::uint64_t>(1000 * p + 10 * sigma + 17));
        return out;
      });

  std::vector<std::string> header = {"p \\ sigma"};
  for (double sigma : grid) header.push_back(strfmt("%.1f", sigma));
  std::vector<std::vector<std::string>> rows;
  double max_abs_disc = 0.0;

  for (std::size_t r = 0; r < grid.size(); ++r) {
    std::vector<std::string> row = {strfmt("%.1f", grid[r])};
    for (std::size_t c = 0; c < grid.size(); ++c) {
      const CellResult& cell = results[r * grid.size() + c];
      if (!cell.valid) {
        row.push_back("-");
        continue;
      }
      const double analytic_acc = cell.analytic_acc;
      const double sim_acc = cell.sim_stats.acc();

      auto& result = report.add_result();
      result["protocol"] = bench::short_name(kind);
      result["run"] = label;
      result["p"] = grid[r];
      result["sigma"] = grid[c];
      result["acc_analytic"] = analytic_acc;
      result["sim"] = bench::sim_stats_json(cell.sim_stats);

      if (analytic_acc <= 1e-9) {
        // Zero-cost steady state; any simulated residue is transient cost
        // that leaked past the warmup cut, not a model discrepancy.
        row.push_back(strfmt("0.0/%.1f (n/a)", sim_acc));
        continue;
      }
      const double disc =
          stats::relative_discrepancy_percent(analytic_acc, sim_acc);
      result["discrepancy_percent"] = disc;
      max_abs_disc = std::max(max_abs_disc, std::fabs(disc));
      row.push_back(strfmt("%.1f/%.1f (%+.1f%%)", analytic_acc, sim_acc,
                           disc));
    }
    rows.push_back(std::move(row));
  }
  std::printf("%s", render_table(header, rows).c_str());
  std::printf("cells: analytic/simulated (discrepancy %%)\n");
  std::printf("max |discrepancy| over non-trivial cells: %.1f %% "
              "(paper reports < 8 %%)\n\n",
              max_abs_disc);
}

}  // namespace

int main() {
  std::printf(
      "Table 7: analytical vs simulation, N=%zu, a=%zu, P=%.0f, S=%.0f, "
      "M=%zu\n\n",
      kN, kA, kPcost, kScost, kM);
  bench::Report report("table7");
  obs::MetricsRegistry exec_metrics;
  exec::SweepRunner runner({.metrics = &exec_metrics});
  for (ProtocolKind kind :
       {ProtocolKind::kWriteOnce, ProtocolKind::kWriteThroughV}) {
    report.phase(std::string(bench::short_name(kind)) + "_paper_run");
    run_table(report, runner, kind, 500, 1500, "paper-sized run");
    report.phase(std::string(bench::short_name(kind)) + "_long_run");
    run_table(report, runner, kind, 5000, 60000, "40x longer run");
  }
  report.root()["exec_metrics"] = exec_metrics.to_json();
  report.write();
  return 0;
}
