// Experiment E2 — the paper's Table 7: "a comparison of analytical and
// simulation results for Write-Once and Write-Through-V protocol",
// N=3, a=2, P=30, S=100, M=20 shared objects.
//
// The paper's Ada simulator generated operations per node "in concordance
// to specified stochastic steady-state workload parameters", neglected the
// first 500 operations and measured ~1500 steady-state operations per
// parameter pair, observing a maximum discrepancy below +-8 %.  We
// reproduce the setup with the discrete-event simulator and the concurrent
// closed-loop driver, and also report a 20x longer run to show the
// discrepancy is sampling noise, not model error.
#include <cmath>
#include <cstdio>

#include "analytic/solver.h"
#include "bench_util.h"
#include "sim/event_sim.h"
#include "stats/summary.h"
#include "workload/generator.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;

constexpr std::size_t kN = 3;
constexpr std::size_t kA = 2;
constexpr double kPcost = 30.0;
constexpr double kScost = 100.0;
constexpr std::size_t kM = 20;

sim::SystemConfig make_config() {
  sim::SystemConfig config;
  config.num_clients = kN;
  config.costs.s = kScost;
  config.costs.p = kPcost;
  config.num_objects = kM;
  return config;
}

sim::SimStats simulate(ProtocolKind kind, const workload::WorkloadSpec& spec,
                       std::size_t warmup_ops, std::size_t measured_ops,
                       std::uint64_t seed) {
  sim::SimOptions options;
  options.warmup_ops = warmup_ops;
  options.max_ops = warmup_ops + measured_ops;
  options.seed = seed;
  sim::EventSimulator simulator(kind, make_config(), options);
  workload::ConcurrentDriver driver(spec, seed ^ 0xBEEF, kM);
  return simulator.run(driver);
}

void run_table(bench::Report& report, ProtocolKind kind,
               std::size_t warmup_ops, std::size_t measured_ops,
               const char* label) {
  std::printf(
      "%s protocol — %s (%zu warmup + %zu measured operations)\n",
      protocols::to_string(kind), label, warmup_ops, measured_ops);

  analytic::AccSolver solver({kN, {kScost, kPcost}, 1});
  const std::vector<double> grid = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

  std::vector<std::string> header = {"p \\ sigma"};
  for (double sigma : grid) header.push_back(strfmt("%.1f", sigma));
  std::vector<std::vector<std::string>> rows;
  double max_abs_disc = 0.0;

  for (double p : grid) {
    std::vector<std::string> row = {strfmt("%.1f", p)};
    for (double sigma : grid) {
      if (p + static_cast<double>(kA) * sigma > 1.0 + 1e-12) {
        row.push_back("-");
        continue;
      }
      const auto spec = workload::read_disturbance(p, sigma, kA);
      const double analytic_acc = solver.acc(kind, spec);
      const sim::SimStats sim_stats =
          simulate(kind, spec, warmup_ops, measured_ops,
                   static_cast<std::uint64_t>(1000 * p + 10 * sigma + 17));
      const double sim_acc = sim_stats.acc();

      auto& result = report.add_result();
      result["protocol"] = bench::short_name(kind);
      result["run"] = label;
      result["p"] = p;
      result["sigma"] = sigma;
      result["acc_analytic"] = analytic_acc;
      result["sim"] = bench::sim_stats_json(sim_stats);

      if (analytic_acc <= 1e-9) {
        // Zero-cost steady state; any simulated residue is transient cost
        // that leaked past the warmup cut, not a model discrepancy.
        row.push_back(strfmt("0.0/%.1f (n/a)", sim_acc));
        continue;
      }
      const double disc =
          stats::relative_discrepancy_percent(analytic_acc, sim_acc);
      result["discrepancy_percent"] = disc;
      max_abs_disc = std::max(max_abs_disc, std::fabs(disc));
      row.push_back(strfmt("%.1f/%.1f (%+.1f%%)", analytic_acc, sim_acc,
                           disc));
    }
    rows.push_back(std::move(row));
  }
  std::printf("%s", render_table(header, rows).c_str());
  std::printf("cells: analytic/simulated (discrepancy %%)\n");
  std::printf("max |discrepancy| over non-trivial cells: %.1f %% "
              "(paper reports < 8 %%)\n\n",
              max_abs_disc);
}

}  // namespace

int main() {
  std::printf(
      "Table 7: analytical vs simulation, N=%zu, a=%zu, P=%.0f, S=%.0f, "
      "M=%zu\n\n",
      kN, kA, kPcost, kScost, kM);
  bench::Report report("table7");
  for (ProtocolKind kind :
       {ProtocolKind::kWriteOnce, ProtocolKind::kWriteThroughV}) {
    run_table(report, kind, 500, 1500, "paper-sized run");
    run_table(report, kind, 5000, 60000, "40x longer run");
  }
  report.write();
  return 0;
}
