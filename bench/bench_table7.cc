// Experiment E2 — the paper's Table 7: "a comparison of analytical and
// simulation results for Write-Once and Write-Through-V protocol",
// N=3, a=2, P=30, S=100, M=20 shared objects.
//
// The paper's Ada simulator generated operations per node "in concordance
// to specified stochastic steady-state workload parameters", neglected the
// first 500 operations and measured ~1500 steady-state operations per
// parameter pair, observing a maximum discrepancy below +-8 %.  Two
// phases per protocol:
//
//  * paper-sized run — one simulation per (p, sigma) cell with the
//    original fixed seed, fanned across the sweep engine exactly as
//    before (bit-identical at any thread count);
//  * replicated run — every cell repeated R=8 times through
//    sim::run_replications with independent seeds, reported as mean
//    acc +- 95 % confidence interval.  The replicated pass runs twice,
//    serial then parallel, and the report records both wall times plus a
//    bit-identity check between them — the determinism contract of the
//    replication harness, measured rather than assumed.
#include <cmath>
#include <cstdio>
#include <memory>

#include "analytic/solver.h"
#include "bench_util.h"
#include "exec/batched_sweep.h"
#include "exec/sweep.h"
#include "exec/thread_pool.h"
#include "sim/event_sim.h"
#include "sim/replication.h"
#include "stats/summary.h"
#include "workload/generator.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;

constexpr std::size_t kN = 3;
constexpr std::size_t kA = 2;
constexpr double kPcost = 30.0;
constexpr double kScost = 100.0;
constexpr std::size_t kM = 20;
constexpr std::size_t kReplications = 8;

sim::SystemConfig make_config() {
  sim::SystemConfig config;
  config.num_clients = kN;
  config.costs.s = kScost;
  config.costs.p = kPcost;
  config.num_objects = kM;
  return config;
}

const std::vector<double>& grid() {
  static const std::vector<double> g = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  return g;
}

std::uint64_t cell_seed(double p, double sigma) {
  return static_cast<std::uint64_t>(1000 * p + 10 * sigma + 17);
}

sim::SimStats simulate(ProtocolKind kind, const workload::WorkloadSpec& spec,
                       std::size_t warmup_ops, std::size_t measured_ops,
                       std::uint64_t seed) {
  sim::SimOptions options;
  options.warmup_ops = warmup_ops;
  options.max_ops = warmup_ops + measured_ops;
  options.seed = seed;
  sim::EventSimulator simulator(kind, make_config(), options);
  workload::ConcurrentDriver driver(spec, seed ^ 0xBEEF, kM);
  return simulator.run(driver);
}

struct CellResult {
  bool valid = false;
  double analytic_acc = 0.0;
  sim::SimStats sim_stats;
};

// Phase 1: the paper's setup verbatim — one fixed-seed run per cell.
// `analytic_acc` holds the batched analytic answers, row-major over the
// grid (invalid cells 0) — see the BatchedSweepRunner call in main().
void run_table(bench::Report& report, exec::SweepRunner& runner,
               const std::vector<double>& analytic_acc, ProtocolKind kind,
               std::size_t warmup_ops, std::size_t measured_ops,
               const char* label) {
  std::printf(
      "%s protocol — %s (%zu warmup + %zu measured operations)\n",
      protocols::to_string(kind), label, warmup_ops, measured_ops);

  std::vector<std::pair<double, double>> cells;  // (p, sigma), row-major
  for (double p : grid())
    for (double sigma : grid()) cells.push_back({p, sigma});

  const auto results = runner.run<CellResult>(
      cells.size(), [&](const exec::SweepTask& task) {
        const auto [p, sigma] = cells[task.index];
        CellResult out;
        if (p + static_cast<double>(kA) * sigma > 1.0 + 1e-12) return out;
        out.valid = true;
        const auto spec = workload::read_disturbance(p, sigma, kA);
        out.analytic_acc = analytic_acc[task.index];
        out.sim_stats = simulate(kind, spec, warmup_ops, measured_ops,
                                 cell_seed(p, sigma));
        return out;
      });

  std::vector<std::string> header = {"p \\ sigma"};
  for (double sigma : grid()) header.push_back(strfmt("%.1f", sigma));
  std::vector<std::vector<std::string>> rows;
  double max_abs_disc = 0.0;

  for (std::size_t r = 0; r < grid().size(); ++r) {
    std::vector<std::string> row = {strfmt("%.1f", grid()[r])};
    for (std::size_t c = 0; c < grid().size(); ++c) {
      const CellResult& cell = results[r * grid().size() + c];
      if (!cell.valid) {
        row.push_back("-");
        continue;
      }
      const double analytic_acc = cell.analytic_acc;
      const double sim_acc = cell.sim_stats.acc();

      auto& result = report.add_result();
      result["protocol"] = bench::short_name(kind);
      result["run"] = label;
      result["p"] = grid()[r];
      result["sigma"] = grid()[c];
      result["acc_analytic"] = analytic_acc;
      result["sim"] = bench::sim_stats_json(cell.sim_stats);

      if (analytic_acc <= 1e-9) {
        // Zero-cost steady state; any simulated residue is transient cost
        // that leaked past the warmup cut, not a model discrepancy.
        row.push_back(strfmt("0.0/%.1f (n/a)", sim_acc));
        continue;
      }
      const double disc =
          stats::relative_discrepancy_percent(analytic_acc, sim_acc);
      result["discrepancy_percent"] = disc;
      max_abs_disc = std::max(max_abs_disc, std::fabs(disc));
      row.push_back(strfmt("%.1f/%.1f (%+.1f%%)", analytic_acc, sim_acc,
                           disc));
    }
    rows.push_back(std::move(row));
  }
  std::printf("%s", render_table(header, rows).c_str());
  std::printf("cells: analytic/simulated (discrepancy %%)\n");
  std::printf("max |discrepancy| over non-trivial cells: %.1f %% "
              "(paper reports < 8 %%)\n\n",
              max_abs_disc);
}

// Phase 2: the same grid through the replication harness.
struct ReplicatedCell {
  bool valid = false;
  double p = 0.0;
  double sigma = 0.0;
  double analytic_acc = 0.0;
  sim::ReplicatedStats stats;
};

std::vector<ReplicatedCell> run_replicated(
    const std::vector<double>& analytic_acc, ProtocolKind kind,
    std::size_t threads, obs::MetricsRegistry* metrics) {
  std::vector<ReplicatedCell> cells;
  for (double p : grid()) {
    for (double sigma : grid()) {
      ReplicatedCell cell;
      cell.p = p;
      cell.sigma = sigma;
      if (p + static_cast<double>(kA) * sigma > 1.0 + 1e-12) {
        cells.push_back(std::move(cell));
        continue;
      }
      cell.valid = true;
      const auto spec = workload::read_disturbance(p, sigma, kA);
      cell.analytic_acc = analytic_acc[cells.size()];

      sim::SimOptions options;
      options.warmup_ops = 500;
      options.max_ops = 500 + 1500;

      sim::ReplicationOptions reps;
      reps.replications = kReplications;
      reps.base_seed = cell_seed(p, sigma);
      reps.threads = threads;
      reps.metrics = metrics;
      cell.stats = sim::run_replications(
          kind, make_config(), options,
          [&](std::uint64_t seed, std::size_t /*rep*/) {
            return std::make_unique<workload::ConcurrentDriver>(
                spec, seed ^ 0xBEEF, kM);
          },
          reps);
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

void print_replicated(ProtocolKind kind,
                      const std::vector<ReplicatedCell>& cells) {
  std::printf("%s protocol — replicated run (%zu x (500 warmup + 1500 "
              "measured), mean +- 95%% CI)\n",
              protocols::to_string(kind), kReplications);
  std::vector<std::string> header = {"p \\ sigma"};
  for (double sigma : grid()) header.push_back(strfmt("%.1f", sigma));
  std::vector<std::vector<std::string>> rows;
  double max_abs_disc = 0.0;
  for (std::size_t r = 0; r < grid().size(); ++r) {
    std::vector<std::string> row = {strfmt("%.1f", grid()[r])};
    for (std::size_t c = 0; c < grid().size(); ++c) {
      const ReplicatedCell& cell = cells[r * grid().size() + c];
      if (!cell.valid) {
        row.push_back("-");
        continue;
      }
      if (cell.analytic_acc <= 1e-9) {
        row.push_back(strfmt("0.0/%.1f (n/a)", cell.stats.acc.mean));
        continue;
      }
      const double disc = stats::relative_discrepancy_percent(
          cell.analytic_acc, cell.stats.acc.mean);
      max_abs_disc = std::max(max_abs_disc, std::fabs(disc));
      row.push_back(strfmt("%.1f/%.1f±%.1f (%+.1f%%)", cell.analytic_acc,
                           cell.stats.acc.mean, cell.stats.acc.half_width,
                           disc));
    }
    rows.push_back(std::move(row));
  }
  std::printf("%s", render_table(header, rows).c_str());
  std::printf("cells: analytic/simulated mean±CI (discrepancy of mean %%)\n");
  std::printf("max |discrepancy| of replicated means: %.1f %%\n\n",
              max_abs_disc);
}

// Phase 3: latency profile — all eight protocols under one representative
// workload with a non-degenerate timing model (message latency uniform in
// [1,3], one unit of per-message processing), so operation response times
// are nonzero and the sketch percentiles are meaningful.  The default
// Table-7 timing (latency 1, processing 0) completes every local
// operation in zero simulated time, which is why the latency percentile
// rows used to read all-zero for the fire-and-forget protocols.
void run_latency_profile(bench::Report& report) {
  constexpr double kP = 0.4;
  constexpr double kSigma = 0.2;
  const auto spec = workload::read_disturbance(kP, kSigma, kA);
  std::printf("latency profile — all protocols, p=%.1f sigma=%.1f, "
              "latency U[1,3], processing 1\n",
              kP, kSigma);
  std::vector<std::vector<std::string>> rows;
  for (ProtocolKind kind : protocols::kAllProtocols) {
    sim::SimOptions options;
    options.warmup_ops = 500;
    options.max_ops = 500 + 1500;
    options.seed = cell_seed(kP, kSigma);
    options.latency.min_latency = 1;
    options.latency.max_latency = 3;
    options.latency.processing_time = 1;
    sim::EventSimulator simulator(kind, make_config(), options);
    workload::ConcurrentDriver driver(spec, options.seed ^ 0xBEEF, kM);
    const sim::SimStats stats = simulator.run(driver);

    auto& result = report.add_result();
    result["protocol"] = bench::short_name(kind);
    result["run"] = "latency_profile";
    result["p"] = kP;
    result["sigma"] = kSigma;
    result["sim"] = bench::sim_stats_json(stats);

    rows.push_back({std::string(protocols::to_string(kind)),
                    strfmt("%.2f", stats.mean_latency()),
                    strfmt("%.0f", stats.latency_quantiles.query(0.50)),
                    strfmt("%.0f", stats.latency_quantiles.query(0.90)),
                    strfmt("%.0f", stats.latency_quantiles.query(0.99)),
                    strfmt("%llu", static_cast<unsigned long long>(
                                       stats.latency_max))});
  }
  std::printf("%s\n", render_table(
                          {"protocol", "mean", "p50", "p90", "p99", "max"},
                          rows)
                          .c_str());
}

}  // namespace

int main() {
  std::printf(
      "Table 7: analytical vs simulation, N=%zu, a=%zu, P=%.0f, S=%.0f, "
      "M=%zu\n\n",
      kN, kA, kPcost, kScost, kM);
  bench::Report report("table7");
  obs::MetricsRegistry exec_metrics;
  obs::MetricsRegistry sim_metrics;
  exec::SweepRunner runner({.metrics = &exec_metrics});
  // Both protocols' analytic grids answered up front by one
  // BatchedSweepRunner call: cells are grouped per protocol, each group
  // goes through one SoA stationary solve — bit-identical to the former
  // per-cell scalar solvers (tests/solver_batch_test.cc).
  analytic::AccSolver analytic_solver({kN, {kScost, kPcost}, 1});
  analytic_solver.set_metrics(&exec_metrics);
  const std::vector<ProtocolKind> kinds = {ProtocolKind::kWriteOnce,
                                           ProtocolKind::kWriteThroughV};
  std::vector<exec::AnalyticCell> analytic_cells;
  std::vector<std::pair<std::size_t, std::size_t>> slots;  // (kind, cell)
  for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
    std::size_t index = 0;
    for (double p : grid()) {
      for (double sigma : grid()) {
        if (p + static_cast<double>(kA) * sigma <= 1.0 + 1e-12) {
          analytic_cells.push_back(
              {kinds[ki], workload::read_disturbance(p, sigma, kA)});
          slots.push_back({ki, index});
        }
        ++index;
      }
    }
  }
  exec::BatchedSweepRunner batched_runner({.metrics = &exec_metrics});
  const std::vector<double> batched_acc =
      batched_runner.acc_grid(analytic_solver, analytic_cells);
  std::vector<std::vector<double>> analytic_acc(
      kinds.size(), std::vector<double>(grid().size() * grid().size(), 0.0));
  for (std::size_t i = 0; i < slots.size(); ++i)
    analytic_acc[slots[i].first][slots[i].second] = batched_acc[i];

  double serial_ms_total = 0.0;
  double parallel_ms_total = 0.0;
  bool identical = true;

  for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
    const ProtocolKind kind = kinds[ki];
    const std::vector<double>& acc_grid = analytic_acc[ki];
    report.phase(std::string(bench::short_name(kind)) + "_paper_run");
    run_table(report, runner, acc_grid, kind, 500, 1500,
              "paper-sized run");

    // Serial reference pass (threads = 1): timing baseline and the
    // bit-identity reference for the parallel pass.
    auto& serial_phase = report.phase(
        std::string(bench::short_name(kind)) + "_replicated_serial");
    const auto t0 = std::chrono::steady_clock::now();
    const auto serial =
        run_replicated(acc_grid, kind, /*threads=*/1, nullptr);
    const double serial_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    serial_phase["note"] = "timing/identity reference; results not emitted";
    serial_ms_total += serial_ms;

    // Parallel pass (default thread count): the emitted results.
    report.phase(std::string(bench::short_name(kind)) + "_replicated");
    const auto t1 = std::chrono::steady_clock::now();
    const auto cells =
        run_replicated(acc_grid, kind, /*threads=*/0, &sim_metrics);
    const double parallel_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t1)
            .count();
    parallel_ms_total += parallel_ms;

    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (!cells[i].valid) continue;
      identical = identical &&
                  cells[i].stats.acc_samples == serial[i].stats.acc_samples &&
                  cells[i].stats.merged.measured_cost ==
                      serial[i].stats.merged.measured_cost &&
                  cells[i].stats.merged.end_time ==
                      serial[i].stats.merged.end_time;
      auto& result = report.add_result();
      result["protocol"] = bench::short_name(kind);
      result["run"] = "replicated";
      result["p"] = cells[i].p;
      result["sigma"] = cells[i].sigma;
      result["acc_analytic"] = cells[i].analytic_acc;
      result["replications"] =
          static_cast<double>(cells[i].stats.replications);
      result["acc_mean"] = cells[i].stats.acc.mean;
      result["acc_ci_half_width"] = cells[i].stats.acc.half_width;
      result["mean_latency"] = cells[i].stats.mean_latency.mean;
      result["latency_ci_half_width"] =
          cells[i].stats.mean_latency.half_width;
      if (cells[i].analytic_acc > 1e-9)
        result["discrepancy_percent"] = stats::relative_discrepancy_percent(
            cells[i].analytic_acc, cells[i].stats.acc.mean);
      result["sim"] = bench::sim_stats_json(cells[i].stats.merged);
    }
    print_replicated(kind, cells);
  }

  report.phase("latency_profile");
  run_latency_profile(report);

  // The determinism contract, measured: the parallel pass must reproduce
  // the serial pass bit for bit, whatever the speedup this host allows.
  auto& par = report.root()["parallelism"];
  par["threads"] = static_cast<double>(exec::ThreadPool::default_threads());
  par["serial_wall_ms"] = serial_ms_total;
  par["parallel_wall_ms"] = parallel_ms_total;
  par["speedup"] = serial_ms_total / parallel_ms_total;
  par["identical"] = identical;
  std::printf("replicated phases: serial %.0f ms, parallel %.0f ms "
              "(%zu threads) — speedup %.2fx, bit-identical: %s\n",
              serial_ms_total, parallel_ms_total,
              exec::ThreadPool::default_threads(),
              serial_ms_total / parallel_ms_total,
              identical ? "yes" : "NO");

  report.root()["exec_metrics"] = exec_metrics.to_json();
  report.root()["sim_metrics"] = sim_metrics.to_json();
  report.write();
  return !identical;
}
