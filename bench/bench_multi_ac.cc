// Experiment E8 (extension) — multiple activity centers (eqn 5).
//
// The paper derives the Write-Through cost for the multiple-activity-
// centers deviation but plots no surface for it; we regenerate the
// Write-Through closed form (validated against the exact model) and
// extend the comparison to all eight protocols over (p, beta).
#include <cmath>
#include <cstdio>

#include "analytic/closed_form.h"
#include "analytic/solver.h"
#include "bench_util.h"
#include "workload/spec.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;
namespace cf = analytic::closed_form;

constexpr std::size_t kN = 50;
constexpr double kP = 30.0;
constexpr double kS = 5000.0;

}  // namespace

int main() {
  std::printf(
      "Multiple activity centers (eqn 5 and its extension to all eight "
      "protocols); N=%zu, S=%.0f, P=%.0f\n\n",
      kN, kS, kP);

  analytic::AccSolver solver({kN, {kS, kP}, 1});
  const std::vector<double> p_values = {0.05, 0.1, 0.3, 0.5, 0.8};
  const std::vector<std::size_t> betas = {1, 2, 4, 8};

  // Eqn (5) check for Write-Through.
  {
    std::printf("Write-Through: exact model vs eqn (5)\n");
    std::vector<std::vector<std::string>> rows;
    double max_gap = 0.0;
    for (double p : p_values) {
      std::vector<std::string> row = {strfmt("%.2f", p)};
      for (std::size_t beta : betas) {
        const double acc = solver.acc(
            ProtocolKind::kWriteThrough,
            workload::multiple_activity_centers(p, beta));
        const double closed = cf::wt_multiple_ac(p, beta, kN, kS, kP);
        max_gap = std::max(max_gap, std::fabs(acc - closed));
        row.push_back(strfmt("%.1f", acc));
      }
      rows.push_back(std::move(row));
    }
    std::vector<std::string> header = {"p \\ beta"};
    for (std::size_t beta : betas) header.push_back(strfmt("%zu", beta));
    std::printf("%s", render_table(header, rows).c_str());
    std::printf("max |eqn5 - exact| = %.3g\n\n", max_gap);
  }

  // All eight protocols at a fixed p, sweeping beta.
  for (double p : {0.1, 0.5}) {
    std::printf("acc vs beta at p=%.1f (all protocols):\n", p);
    std::vector<std::vector<std::string>> rows;
    for (ProtocolKind kind : protocols::kAllProtocols) {
      std::vector<std::string> row = {bench::short_name(kind)};
      for (std::size_t beta : betas)
        row.push_back(bench::fmt(solver.acc(
            kind, workload::multiple_activity_centers(p, beta))));
      rows.push_back(std::move(row));
    }
    std::vector<std::string> header = {"protocol"};
    for (std::size_t beta : betas)
      header.push_back(strfmt("beta=%zu", beta));
    std::printf("%s\n", render_table(header, rows).c_str());
  }

  std::printf(
      "Observations: with beta=1 the ownership protocols are free (ideal "
      "workload); as beta grows every protocol pays for the write sharing, "
      "and the migrating-ownership (Berkeley) and update (Dragon/Firefly) "
      "protocols trade places depending on S vs N(P+1).\n");
  return 0;
}
