// Extension bench — the sequencer as a queueing bottleneck.
//
// The paper's metric counts messages; it is blind to *where* they are
// processed.  With a per-message processing time, the fixed-sequencer
// protocols funnel every coherence action through node N, whose
// utilization — and with it operation latency — explodes as load rises.
// Berkeley migrates the sequencer role with ownership and sidesteps the
// funnel.  This bench sweeps the offered load (shrinking think times) and
// reports sequencer utilization and mean operation latency.
#include <cstdio>

#include "bench_util.h"
#include "sim/event_sim.h"
#include "workload/generator.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;

constexpr std::size_t kN = 16;
constexpr NodeId kHome = kN;

obs::MetricsRegistry& registry() {
  static obs::MetricsRegistry instance;
  return instance;
}

sim::SimStats run(ProtocolKind kind, double mean_think_time,
                  const workload::WorkloadSpec& spec) {
  sim::SystemConfig config;
  config.num_clients = kN;
  config.costs.s = 100.0;
  config.costs.p = 30.0;

  sim::SimOptions options;
  options.max_ops = 20000;
  options.warmup_ops = 1000;
  options.seed = 31;
  options.latency.min_latency = 2;
  options.latency.max_latency = 2;
  options.latency.processing_time = 4;  // the sequencer is a real server
  sim::EventSimulator simulator(kind, config, options);
  simulator.set_metrics(&registry());
  workload::ConcurrentDriver driver(spec, 32, 1, mean_think_time);
  return simulator.run(driver);
}

}  // namespace

void sweep(bench::Report& report, const char* title, const char* tag,
           const workload::WorkloadSpec& spec) {
  std::printf("%s\n", title);
  std::vector<std::vector<std::string>> rows;
  for (double think : {1024.0, 64.0, 16.0}) {
    for (ProtocolKind kind :
         {ProtocolKind::kWriteThrough, ProtocolKind::kBerkeley}) {
      const sim::SimStats stats = run(kind, think, spec);
      double peak = 0.0;
      for (NodeId node = 0; node <= kN; ++node)
        peak = std::max(peak, stats.utilization(node, 4));

      auto& result = report.add_result();
      result["workload"] = tag;
      result["mean_think"] = think;
      result["protocol"] = bench::short_name(kind);
      result["sequencer_utilization"] = stats.utilization(kHome, 4);
      result["peak_utilization"] = peak;
      result["sim"] = bench::sim_stats_json(stats);

      rows.push_back({strfmt("%.0f", think), bench::short_name(kind),
                      strfmt("%.2f", stats.acc()),
                      strfmt("%.1f", stats.mean_latency()),
                      strfmt("%.0f%%", 100.0 * stats.utilization(kHome, 4)),
                      strfmt("%.0f%%", 100.0 * peak)});
    }
  }
  std::printf(
      "%s\n",
      render_table({"mean think", "protocol", "acc", "mean latency",
                    "sequencer util", "peak node util"},
                   rows)
          .c_str());
}

int main() {
  std::printf(
      "Sequencer queueing: N=%zu clients, S=100, P=30, processing time = 4 "
      "per message\n\n",
      kN);
  bench::Report report("queueing");
  sweep(report,
        "read disturbance (p=0.2, sigma=0.05, a=15) — Berkeley's home turf:",
        "read_disturbance", workload::read_disturbance(0.2, 0.05, kN - 1));
  sweep(report,
        "write disturbance (p=0.2, xi=0.05, a=15) — ownership ping-pong:",
        "write_disturbance", workload::write_disturbance(0.2, 0.05, kN - 1));
  // Cumulative registry snapshot across all runs: message mix, latency
  // histogram, and the sequencer queue-depth/utilization time series.
  report.root()["metrics"] = registry().to_json();
  report.write();
  std::printf(
      "Observations the paper's cost metric cannot show: (1) acc is flat\n"
      "in offered load, but utilization and queueing latency are not;\n"
      "(2) the fixed sequencer is the hotspot for WT, while Berkeley\n"
      "moves the hotspot to the current owner — decentralization shifts\n"
      "the serialization point rather than removing it; (3) under write\n"
      "disturbance Berkeley pays twice: its migrations block the writer\n"
      "(high latency) while WT's fire-and-forget writes hide theirs.\n");
  return 0;
}
