// Extension bench — the sequencer as a queueing bottleneck.
//
// The paper's metric counts messages; it is blind to *where* they are
// processed.  With a per-message processing time, the fixed-sequencer
// protocols funnel every coherence action through node N, whose
// utilization — and with it operation latency — explodes as load rises.
// Berkeley migrates the sequencer role with ownership and sidesteps the
// funnel.  This bench sweeps the offered load (shrinking think times) and
// reports sequencer utilization and mean operation latency.
//
// Each (think time x protocol) point runs R independent replications
// through sim::run_replications — seeds derived from (point seed,
// replication index), replications fanned across the thread pool, stats
// merged in replication order — so every acc/latency figure carries a
// 95 % confidence interval and is bit-identical at any thread count.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "sim/event_sim.h"
#include "sim/replication.h"
#include "workload/generator.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;

constexpr std::size_t kN = 16;
constexpr NodeId kHome = kN;
constexpr std::size_t kReplications = 6;

sim::ReplicatedStats run(ProtocolKind kind, double mean_think_time,
                         const workload::WorkloadSpec& spec,
                         std::uint64_t base_seed,
                         obs::MetricsRegistry* metrics) {
  sim::SystemConfig config;
  config.num_clients = kN;
  config.costs.s = 100.0;
  config.costs.p = 30.0;

  sim::SimOptions options;
  options.max_ops = 20000;
  options.warmup_ops = 1000;
  options.latency.min_latency = 2;
  options.latency.max_latency = 2;
  options.latency.processing_time = 4;  // the sequencer is a real server

  sim::ReplicationOptions reps;
  reps.replications = kReplications;
  reps.base_seed = base_seed;
  reps.metrics = metrics;
  return sim::run_replications(
      kind, config, options,
      [&](std::uint64_t seed, std::size_t /*rep*/) {
        return std::make_unique<workload::ConcurrentDriver>(
            spec, seed ^ 0xBEEF, 1, mean_think_time);
      },
      reps);
}

}  // namespace

void sweep(bench::Report& report, obs::MetricsRegistry& registry,
           const char* title, const char* tag,
           const workload::WorkloadSpec& spec) {
  std::printf("%s\n", title);
  const std::vector<double> thinks = {1024.0, 64.0, 16.0};
  const std::vector<ProtocolKind> kinds = {ProtocolKind::kWriteThrough,
                                           ProtocolKind::kBerkeley};

  std::vector<std::vector<std::string>> rows;
  std::size_t point = 0;
  for (double think : thinks) {
    for (ProtocolKind kind : kinds) {
      // Per-point metrics registry, merged into the cumulative one in
      // point order: the snapshot is independent of scheduling.
      obs::MetricsRegistry point_metrics;
      const sim::ReplicatedStats stats =
          run(kind, think, spec, /*base_seed=*/31 + 1000 * point++,
              &point_metrics);
      registry.merge(point_metrics);

      const sim::SimStats& merged = stats.merged;
      double peak = 0.0;
      for (NodeId node = 0; node <= kN; ++node)
        peak = std::max(peak, merged.utilization(node, 4));

      auto& result = report.add_result();
      result["workload"] = tag;
      result["mean_think"] = think;
      result["protocol"] = bench::short_name(kind);
      result["replications"] = static_cast<double>(stats.replications);
      result["acc_mean"] = stats.acc.mean;
      result["acc_ci_half_width"] = stats.acc.half_width;
      result["mean_latency"] = stats.mean_latency.mean;
      result["latency_ci_half_width"] = stats.mean_latency.half_width;
      result["sequencer_utilization"] = merged.utilization(kHome, 4);
      result["peak_utilization"] = peak;
      result["sim"] = bench::sim_stats_json(merged);

      rows.push_back(
          {strfmt("%.0f", think), bench::short_name(kind),
           strfmt("%.2f±%.2f", stats.acc.mean, stats.acc.half_width),
           strfmt("%.1f±%.1f", stats.mean_latency.mean,
                  stats.mean_latency.half_width),
           strfmt("%.0f%%", 100.0 * merged.utilization(kHome, 4)),
           strfmt("%.0f%%", 100.0 * peak)});
    }
  }
  std::printf(
      "%s\n",
      render_table({"mean think", "protocol", "acc (95% CI)",
                    "mean latency (95% CI)", "sequencer util",
                    "peak node util"},
                   rows)
          .c_str());
}

int main() {
  std::printf(
      "Sequencer queueing: N=%zu clients, S=100, P=30, processing time = 4 "
      "per message, %zu replications per point\n\n",
      kN, kReplications);
  bench::Report report("queueing");
  obs::MetricsRegistry registry;
  report.phase("read_disturbance");
  sweep(report, registry,
        "read disturbance (p=0.2, sigma=0.05, a=15) — Berkeley's home turf:",
        "read_disturbance", workload::read_disturbance(0.2, 0.05, kN - 1));
  report.phase("write_disturbance");
  sweep(report, registry,
        "write disturbance (p=0.2, xi=0.05, a=15) — ownership ping-pong:",
        "write_disturbance", workload::write_disturbance(0.2, 0.05, kN - 1));
  // Cumulative registry snapshot across all runs: message mix, latency
  // histogram, event-engine counters (sim.events / sim.alloc_bytes /
  // sim.events_per_sec), and the sequencer queue-depth/utilization time
  // series.
  report.root()["sim_metrics"] = registry.to_json();
  report.write();
  std::printf(
      "Observations the paper's cost metric cannot show: (1) acc is flat\n"
      "in offered load, but utilization and queueing latency are not;\n"
      "(2) the fixed sequencer is the hotspot for WT, while Berkeley\n"
      "moves the hotspot to the current owner — decentralization shifts\n"
      "the serialization point rather than removing it; (3) under write\n"
      "disturbance Berkeley pays twice: its migrations block the writer\n"
      "(high latency) while WT's fire-and-forget writes hide theirs.\n");
  return 0;
}
