// Extension bench — the sequencer as a queueing bottleneck.
//
// The paper's metric counts messages; it is blind to *where* they are
// processed.  With a per-message processing time, the fixed-sequencer
// protocols funnel every coherence action through node N, whose
// utilization — and with it operation latency — explodes as load rises.
// Berkeley migrates the sequencer role with ownership and sidesteps the
// funnel.  This bench sweeps the offered load (shrinking think times) and
// reports sequencer utilization and mean operation latency.
//
// The (think time x protocol) points of each sweep fan out through the
// sweep engine; every task publishes into a private metrics registry and
// the registries merge in point order, so the cumulative snapshot is
// schedule-independent.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "exec/sweep.h"
#include "sim/event_sim.h"
#include "workload/generator.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;

constexpr std::size_t kN = 16;
constexpr NodeId kHome = kN;

sim::SimStats run(ProtocolKind kind, double mean_think_time,
                  const workload::WorkloadSpec& spec,
                  obs::MetricsRegistry* metrics) {
  sim::SystemConfig config;
  config.num_clients = kN;
  config.costs.s = 100.0;
  config.costs.p = 30.0;

  sim::SimOptions options;
  options.max_ops = 20000;
  options.warmup_ops = 1000;
  options.seed = 31;
  options.latency.min_latency = 2;
  options.latency.max_latency = 2;
  options.latency.processing_time = 4;  // the sequencer is a real server
  sim::EventSimulator simulator(kind, config, options);
  simulator.set_metrics(metrics);
  workload::ConcurrentDriver driver(spec, 32, 1, mean_think_time);
  return simulator.run(driver);
}

struct PointResult {
  sim::SimStats stats;
  std::unique_ptr<obs::MetricsRegistry> metrics;
};

}  // namespace

void sweep(bench::Report& report, exec::SweepRunner& runner,
           obs::MetricsRegistry& registry, const char* title,
           const char* tag, const workload::WorkloadSpec& spec) {
  std::printf("%s\n", title);
  const std::vector<double> thinks = {1024.0, 64.0, 16.0};
  const std::vector<ProtocolKind> kinds = {ProtocolKind::kWriteThrough,
                                           ProtocolKind::kBerkeley};
  const auto results = runner.run<PointResult>(
      thinks.size() * kinds.size(), [&](const exec::SweepTask& task) {
        PointResult out;
        out.metrics = std::make_unique<obs::MetricsRegistry>();
        out.stats = run(kinds[task.index % kinds.size()],
                        thinks[task.index / kinds.size()], spec,
                        out.metrics.get());
        return out;
      });

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double think = thinks[i / kinds.size()];
    const ProtocolKind kind = kinds[i % kinds.size()];
    const sim::SimStats& stats = results[i].stats;
    registry.merge(*results[i].metrics);
    double peak = 0.0;
    for (NodeId node = 0; node <= kN; ++node)
      peak = std::max(peak, stats.utilization(node, 4));

    auto& result = report.add_result();
    result["workload"] = tag;
    result["mean_think"] = think;
    result["protocol"] = bench::short_name(kind);
    result["sequencer_utilization"] = stats.utilization(kHome, 4);
    result["peak_utilization"] = peak;
    result["sim"] = bench::sim_stats_json(stats);

    rows.push_back({strfmt("%.0f", think), bench::short_name(kind),
                    strfmt("%.2f", stats.acc()),
                    strfmt("%.1f", stats.mean_latency()),
                    strfmt("%.0f%%", 100.0 * stats.utilization(kHome, 4)),
                    strfmt("%.0f%%", 100.0 * peak)});
  }
  std::printf(
      "%s\n",
      render_table({"mean think", "protocol", "acc", "mean latency",
                    "sequencer util", "peak node util"},
                   rows)
          .c_str());
}

int main() {
  std::printf(
      "Sequencer queueing: N=%zu clients, S=100, P=30, processing time = 4 "
      "per message\n\n",
      kN);
  bench::Report report("queueing");
  obs::MetricsRegistry registry;
  obs::MetricsRegistry exec_metrics;
  exec::SweepRunner runner({.metrics = &exec_metrics});
  report.phase("read_disturbance");
  sweep(report, runner, registry,
        "read disturbance (p=0.2, sigma=0.05, a=15) — Berkeley's home turf:",
        "read_disturbance", workload::read_disturbance(0.2, 0.05, kN - 1));
  report.phase("write_disturbance");
  sweep(report, runner, registry,
        "write disturbance (p=0.2, xi=0.05, a=15) — ownership ping-pong:",
        "write_disturbance", workload::write_disturbance(0.2, 0.05, kN - 1));
  // Cumulative registry snapshot across all runs: message mix, latency
  // histogram, and the sequencer queue-depth/utilization time series.
  report.root()["metrics"] = registry.to_json();
  report.root()["exec_metrics"] = exec_metrics.to_json();
  report.write();
  std::printf(
      "Observations the paper's cost metric cannot show: (1) acc is flat\n"
      "in offered load, but utilization and queueing latency are not;\n"
      "(2) the fixed sequencer is the hotspot for WT, while Berkeley\n"
      "moves the hotspot to the current owner — decentralization shifts\n"
      "the serialization point rather than removing it; (3) under write\n"
      "disturbance Berkeley pays twice: its migrations block the writer\n"
      "(high latency) while WT's fire-and-forget writes hide theirs.\n");
  return 0;
}
