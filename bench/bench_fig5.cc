// Experiment E3 — the paper's Figure 5: "characteristic surfaces of the
// steady-state average communication cost per operation and per shared
// object for read disturbance deviation from ideal workload
// (N=50, a=10, P=30)":
//   (a) Write-Once, Synapse, Illinois, Berkeley       (S=5000)
//   (b) Write-Through-V                               (S=100)
//   (c) Dragon, Firefly                               (S=5000)
//   (d) Dragon vs Berkeley                            (S=5000)
//
// Each surface is printed as a (p, sigma) grid of acc values from the
// exact analytic model; panel (d) prints the winner at each grid point,
// which renders the crossover region the paper discusses.
#include <cstdio>
#include <string>

#include "analytic/solver.h"
#include "bench_util.h"
#include "workload/spec.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;

constexpr std::size_t kN = 50;
constexpr std::size_t kA = 10;
constexpr double kP = 30.0;

const std::vector<double> kPGrid = {0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9};
const std::vector<double> kSigmaGrid = {0.0,   0.002, 0.005, 0.01,
                                        0.02,  0.04,  0.08};

bool g_csv = false;  // --csv: emit plottable protocol,p,sigma,acc records

analytic::AccSolver make_solver(double s_cost) {
  sim::SystemConfig config;
  config.num_clients = kN;
  config.costs.s = s_cost;
  config.costs.p = kP;
  return analytic::AccSolver(config);
}

void surface(analytic::AccSolver& solver, ProtocolKind kind, double s_cost,
             const char* panel) {
  std::vector<std::vector<std::string>> cells;
  if (g_csv) {
    for (double p : kPGrid) {
      for (double sigma : kSigmaGrid) {
        if (p + static_cast<double>(kA) * sigma > 1.0) continue;
        std::printf("fig5%s,%s,%.0f,%.4f,%.4f,%.6f\n", panel,
                    protocols::to_string(kind), s_cost, p, sigma,
                    solver.acc(kind, workload::read_disturbance(p, sigma, kA)));
      }
    }
    return;
  }
  for (double p : kPGrid) {
    std::vector<std::string> row;
    for (double sigma : kSigmaGrid) {
      if (p + static_cast<double>(kA) * sigma > 1.0) {
        row.push_back("-");
        continue;
      }
      row.push_back(bench::fmt(
          solver.acc(kind, workload::read_disturbance(p, sigma, kA))));
    }
    cells.push_back(std::move(row));
  }
  bench::print_surface(
      strfmt("Fig. 5%s — %s (S=%.0f): acc over (p, sigma)", panel,
             protocols::to_string(kind), s_cost),
      "sigma", kPGrid, kSigmaGrid, cells);
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--csv") g_csv = true;
  if (g_csv)
    std::printf("panel,protocol,S,p,sigma,acc\n");
  if (!g_csv)
    std::printf(
      "Figure 5: read disturbance characteristic surfaces "
      "(N=%zu, a=%zu, P=%.0f)\n\n",
      kN, kA, kP);

  auto solver5000 = make_solver(5000.0);
  auto solver100 = make_solver(100.0);

  // (a) the ownership/invalidate family at S=5000.
  for (ProtocolKind kind :
       {ProtocolKind::kWriteOnce, ProtocolKind::kSynapse,
        ProtocolKind::kIllinois, ProtocolKind::kBerkeley})
    surface(solver5000, kind, 5000.0, "a");

  // (b) Write-Through-V at S=100.
  surface(solver100, ProtocolKind::kWriteThroughV, 100.0, "b");

  // (c) the update family at S=5000 (flat in sigma).
  for (ProtocolKind kind : {ProtocolKind::kDragon, ProtocolKind::kFirefly})
    surface(solver5000, kind, 5000.0, "c");

  if (g_csv) return 0;

  // (d) Dragon vs Berkeley: winner per grid point.
  {
    std::vector<std::vector<std::string>> cells;
    for (double p : kPGrid) {
      std::vector<std::string> row;
      for (double sigma : kSigmaGrid) {
        if (p + static_cast<double>(kA) * sigma > 1.0) {
          row.push_back("-");
          continue;
        }
        const auto spec = workload::read_disturbance(p, sigma, kA);
        const double drg = solver5000.acc(ProtocolKind::kDragon, spec);
        const double ber = solver5000.acc(ProtocolKind::kBerkeley, spec);
        row.push_back(strfmt("%s %.0f/%.0f", ber <= drg ? "BER" : "DRG",
                             drg, ber));
      }
      cells.push_back(std::move(row));
    }
    bench::print_surface(
        "Fig. 5d — Dragon vs Berkeley (S=5000): winner, acc_DRG/acc_BER",
        "sigma", kPGrid, kSigmaGrid, cells);
    std::printf(
        "Paper: for N*P > S+2 Berkeley always wins; here N*P=%.0f < "
        "S+2=%.0f, so a sigma-proportional boundary separates the "
        "regions.\n",
        kN * kP, 5002.0);
  }
  return 0;
}
