// Experiment E7 (ablation) — where does Table 7's discrepancy come from?
//
// The analysis treats operations as a global sequence of independent
// trials executed atomically.  The paper's simulator (and ours) lets
// operations from different nodes overlap.  This bench measures the same
// workload three ways:
//   1. analytic (exact),
//   2. lockstep simulation (one sampled operation at a time -> only
//      sampling noise),
//   3. concurrent simulation at increasing concurrency (shorter think
//      times -> more overlap -> larger deviation).
#include <cmath>
#include <cstdio>

#include "analytic/solver.h"
#include "bench_util.h"
#include "sim/event_sim.h"
#include "sim/sequential.h"
#include "stats/summary.h"
#include "workload/generator.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;

constexpr std::size_t kN = 3;
constexpr std::size_t kA = 2;

sim::SystemConfig make_config() {
  sim::SystemConfig config;
  config.num_clients = kN;
  config.costs.s = 100.0;
  config.costs.p = 30.0;
  return config;
}

double lockstep_acc(ProtocolKind kind, const workload::WorkloadSpec& spec,
                    std::size_t ops, std::uint64_t seed) {
  sim::SequentialRuntime runtime(kind, make_config(), spec.roster());
  workload::GlobalSequenceGenerator gen(spec, seed);
  std::uint64_t value = 0;
  Cost cost = 0.0;
  for (std::size_t i = 0; i < 500; ++i) {
    const auto op = gen.next();
    runtime.execute(op.node, op.op, ++value);
  }
  for (std::size_t i = 0; i < ops; ++i) {
    const auto op = gen.next();
    cost += runtime.execute(op.node, op.op, ++value).cost;
  }
  return cost / static_cast<double>(ops);
}

sim::SimStats concurrent_run(ProtocolKind kind,
                             const workload::WorkloadSpec& spec,
                             double mean_think_time, std::uint64_t seed,
                             obs::MetricsRegistry* metrics) {
  sim::SimOptions options;
  options.max_ops = 40000;
  options.warmup_ops = 1000;
  options.seed = seed;
  options.latency.min_latency = 1;
  options.latency.max_latency = 4;
  sim::EventSimulator simulator(kind, make_config(), options);
  simulator.set_metrics(metrics);
  workload::ConcurrentDriver driver(spec, seed ^ 0x5EED, 1,
                                    mean_think_time);
  return simulator.run(driver);
}

}  // namespace

int main() {
  std::printf(
      "Ablation: operation overlap vs analytic accuracy "
      "(N=%zu, a=%zu, S=100, P=30, read disturbance p=0.4, sigma=0.2)\n\n",
      kN, kA);

  const auto spec = workload::read_disturbance(0.4, 0.2, kA);
  analytic::AccSolver solver(make_config());
  bench::Report report("ablation_concurrency");
  obs::MetricsRegistry sim_metrics;

  std::vector<std::vector<std::string>> rows;
  for (ProtocolKind kind :
       {ProtocolKind::kWriteOnce, ProtocolKind::kWriteThroughV,
        ProtocolKind::kBerkeley}) {
    const double exact = solver.acc(kind, spec);
    const double lockstep = lockstep_acc(kind, spec, 40000, 9);
    std::vector<std::string> row = {bench::short_name(kind),
                                    strfmt("%.2f", exact),
                                    strfmt("%+.1f%%",
                                           stats::relative_discrepancy_percent(
                                               exact, lockstep))};
    for (double think : {512.0, 64.0, 8.0}) {
      const sim::SimStats sim_stats =
          concurrent_run(kind, spec, think, 10, &sim_metrics);
      const double concurrent = sim_stats.acc();
      auto& result = report.add_result();
      result["protocol"] = bench::short_name(kind);
      result["mean_think"] = think;
      result["acc_analytic"] = exact;
      result["acc_lockstep"] = lockstep;
      result["discrepancy_percent"] =
          stats::relative_discrepancy_percent(exact, concurrent);
      result["sim"] = bench::sim_stats_json(sim_stats);
      row.push_back(strfmt("%+.1f%%", stats::relative_discrepancy_percent(
                                          exact, concurrent)));
    }
    rows.push_back(std::move(row));
  }
  std::printf(
      "%s\n",
      render_table({"protocol", "analytic acc", "lockstep", "think=512",
                    "think=64", "think=8"},
                   rows)
          .c_str());
  std::printf(
      "Columns show the relative discrepancy vs the analytic value.  The\n"
      "lockstep driver (no overlap) agrees to sampling noise; shrinking\n"
      "think times increase operation overlap and move the measurement\n"
      "away from the independent-trials assumption — this is the source of\n"
      "the paper's +-8%% band, not model error.\n");
  report.root()["sim_metrics"] = sim_metrics.to_json();
  report.write();
  return 0;
}
