// Shared helpers for the experiment benches: short protocol names and
// paper-style grid/table printing.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "protocols/protocol.h"
#include "support/text.h"

namespace drsm::bench {

inline const char* short_name(protocols::ProtocolKind kind) {
  using protocols::ProtocolKind;
  switch (kind) {
    case ProtocolKind::kWriteThrough: return "WT";
    case ProtocolKind::kWriteThroughV: return "WT-V";
    case ProtocolKind::kWriteOnce: return "WO";
    case ProtocolKind::kSynapse: return "SYN";
    case ProtocolKind::kIllinois: return "ILL";
    case ProtocolKind::kBerkeley: return "BER";
    case ProtocolKind::kDragon: return "DRG";
    case ProtocolKind::kFirefly: return "FF";
  }
  return "?";
}

inline std::string fmt(double v) { return strfmt("%.2f", v); }

/// Prints one surface (rows = p values, columns = second-parameter values).
inline void print_surface(const std::string& title,
                          const char* col_param_name,
                          const std::vector<double>& p_values,
                          const std::vector<double>& col_values,
                          const std::vector<std::vector<std::string>>& cells) {
  std::printf("%s\n", title.c_str());
  std::vector<std::string> header = {std::string("p \\ ") + col_param_name};
  for (double c : col_values) header.push_back(strfmt("%.3g", c));
  std::vector<std::vector<std::string>> rows;
  for (std::size_t r = 0; r < p_values.size(); ++r) {
    std::vector<std::string> row = {strfmt("%.2f", p_values[r])};
    row.insert(row.end(), cells[r].begin(), cells[r].end());
    rows.push_back(std::move(row));
  }
  std::printf("%s\n", render_table(header, rows).c_str());
}

}  // namespace drsm::bench
