// Shared helpers for the experiment benches: short protocol names,
// paper-style grid/table printing, and machine-readable BENCH_*.json
// report emission (schema in docs/OBSERVABILITY.md).
#pragma once

#include <array>
#include <chrono>
#include <string>
#include <vector>

#include "obs/json.h"
#include "protocols/protocol.h"
#include "sim/event_sim.h"
#include "support/text.h"  // strfmt/render_table, used by every bench

namespace drsm::bench {

/// Compact protocol tags, parallel to protocols::kAllProtocols.
inline constexpr std::array<const char*, protocols::kAllProtocols.size()>
    kShortNames = {"WT", "WT-V", "WO", "SYN", "ILL", "BER", "DRG", "FF"};

// The table above is indexed by the numeric enum value; this holds only
// while kAllProtocols enumerates the kinds in declaration order with no
// gaps.  A new protocol kind fails here until it gets a tag.
static_assert(
    [] {
      for (std::size_t i = 0; i < protocols::kAllProtocols.size(); ++i)
        if (static_cast<std::size_t>(protocols::kAllProtocols[i]) != i)
          return false;
      return true;
    }(),
    "kShortNames must parallel kAllProtocols");

inline const char* short_name(protocols::ProtocolKind kind) {
  return kShortNames[static_cast<std::size_t>(kind)];
}

/// Default numeric cell format for the paper-style tables.
std::string fmt(double v);

/// Prints one surface (rows = p values, columns = second-parameter values).
void print_surface(const std::string& title, const char* col_param_name,
                   const std::vector<double>& p_values,
                   const std::vector<double>& col_values,
                   const std::vector<std::vector<std::string>>& cells);

/// SimStats rendered as a JSON object: acc, counts, the message mix, and
/// the latency distribution summary (mean/max and p50/p90/p99 from the
/// post-warmup histogram).  The standard "sim" block of a bench report.
obs::JsonValue sim_stats_json(const sim::SimStats& stats);

/// Accumulates one bench's machine-readable report and writes it as
/// BENCH_<name>.json in the current working directory:
///
///   Report report("table7");
///   auto& row = report.add_result();
///   row["protocol"] = short_name(kind);
///   row["acc_analytic"] = acc;
///   row["sim"] = sim_stats_json(stats);
///   ...
///   report.write();   // also records total wall time
///
/// Everything is ordered, so successive runs diff cleanly.
class Report {
 public:
  explicit Report(std::string name);

  /// The whole document, for bench-specific top-level fields.
  obs::JsonValue& root() { return root_; }

  /// Appends an empty object to the "results" array and returns it.
  obs::JsonValue& add_result();

  /// Marks the start of a named bench phase.  The wall-clock time from
  /// this call until the next phase() (or write()) lands in the report as
  /// root["phases"][name]["wall_ms"], so per-phase timings survive into
  /// the machine-readable output.  Returns the phase's JSON object for
  /// extra phase-level fields.
  obs::JsonValue& phase(const std::string& name);

  /// Writes BENCH_<name>.json (current directory) and prints the path.
  void write();

 private:
  void close_phase();

  std::string name_;
  obs::JsonValue root_;
  std::chrono::steady_clock::time_point start_;
  std::string open_phase_;  // empty = no phase in progress
  std::chrono::steady_clock::time_point phase_start_;
};

}  // namespace drsm::bench
