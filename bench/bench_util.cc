#include "bench_util.h"

#include <cstdio>

#include "support/text.h"

namespace drsm::bench {

std::string fmt(double v) { return strfmt("%.2f", v); }

void print_surface(const std::string& title, const char* col_param_name,
                   const std::vector<double>& p_values,
                   const std::vector<double>& col_values,
                   const std::vector<std::vector<std::string>>& cells) {
  std::printf("%s\n", title.c_str());
  std::vector<std::string> header = {std::string("p \\ ") + col_param_name};
  for (double c : col_values) header.push_back(strfmt("%.3g", c));
  std::vector<std::vector<std::string>> rows;
  for (std::size_t r = 0; r < p_values.size(); ++r) {
    std::vector<std::string> row = {strfmt("%.2f", p_values[r])};
    row.insert(row.end(), cells[r].begin(), cells[r].end());
    rows.push_back(std::move(row));
  }
  std::printf("%s\n", render_table(header, rows).c_str());
}

obs::JsonValue sim_stats_json(const sim::SimStats& stats) {
  obs::JsonValue out = obs::JsonValue::object();
  out["acc"] = stats.acc();
  out["measured_ops"] = stats.measured_ops;
  out["measured_cost"] = stats.measured_cost;
  out["reads"] = stats.reads;
  out["writes"] = stats.writes;
  out["messages"] = stats.messages;
  out["end_time"] = static_cast<double>(stats.end_time);

  obs::JsonValue mix = obs::JsonValue::object();
  for (const auto& [type, count] : stats.message_mix)
    mix[fsm::to_string(type)] = count;
  out["message_mix"] = std::move(mix);

  obs::JsonValue latency = obs::JsonValue::object();
  latency["mean"] = stats.mean_latency();
  latency["mean_read"] = stats.mean_read_latency();
  latency["mean_write"] = stats.mean_write_latency();
  latency["max"] = static_cast<double>(stats.latency_max);
  // Percentiles come from the GK sketch: actual observed latencies, not
  // the histogram's within-bucket interpolation (which fabricated
  // fractional p50s for zero-heavy distributions).
  latency["p50"] = stats.latency_quantiles.query(0.50);
  latency["p90"] = stats.latency_quantiles.query(0.90);
  latency["p99"] = stats.latency_quantiles.query(0.99);
  latency["samples"] =
      static_cast<double>(stats.latency_quantiles.count());
  out["latency"] = std::move(latency);
  return out;
}

Report::Report(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
  root_["bench"] = name_;
  root_["results"] = obs::JsonValue::array();
}

obs::JsonValue& Report::add_result() {
  return root_["results"].push_back(obs::JsonValue::object());
}

obs::JsonValue& Report::phase(const std::string& name) {
  close_phase();
  root_["phases"][name] = obs::JsonValue::object();
  open_phase_ = name;
  phase_start_ = std::chrono::steady_clock::now();
  return root_["phases"][name];
}

void Report::close_phase() {
  if (open_phase_.empty()) return;
  root_["phases"][open_phase_]["wall_ms"] =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - phase_start_)
          .count();
  open_phase_.clear();
}

void Report::write() {
  close_phase();
  root_["wall_ms"] = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
  const std::string path = "BENCH_" + name_ + ".json";
  obs::write_file(path, root_.dump(2) + "\n");
  std::printf("report: %s\n", path.c_str());
}

}  // namespace drsm::bench
