// Experiment E10 — microbenchmarks of the substrates (google-benchmark):
// per-operation cost of the sequential runtime and the discrete-event
// simulator, chain enumeration and re-solve, and the linear-algebra
// kernels underneath.
#include <benchmark/benchmark.h>

#include "analytic/chain.h"
#include "linalg/lu.h"
#include "linalg/stationary.h"
#include "sim/event_sim.h"
#include "sim/sequential.h"
#include "sim/threaded.h"
#include "analytic/lumped.h"
#include "support/rng.h"
#include "workload/generator.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;

sim::SystemConfig small_config() {
  sim::SystemConfig config;
  config.num_clients = 8;
  config.costs.s = 100.0;
  config.costs.p = 30.0;
  return config;
}

void BM_SequentialRuntimeOp(benchmark::State& state) {
  const auto kind = static_cast<ProtocolKind>(state.range(0));
  sim::SequentialRuntime runtime(kind, small_config(), {0, 1, 2});
  Rng rng(1);
  std::uint64_t value = 0;
  for (auto _ : state) {
    const NodeId node = static_cast<NodeId>(rng.uniform_index(3));
    if (rng.bernoulli(0.3)) {
      benchmark::DoNotOptimize(
          runtime.execute(node, fsm::OpKind::kWrite, ++value));
    } else {
      benchmark::DoNotOptimize(runtime.execute(node, fsm::OpKind::kRead));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SequentialRuntimeOp)
    ->DenseRange(0, 7, 1)
    ->ArgName("protocol");

void BM_EventSimulatorThroughput(benchmark::State& state) {
  const auto spec = workload::read_disturbance(0.3, 0.1, 2);
  for (auto _ : state) {
    sim::SimOptions options;
    options.max_ops = 2000;
    options.warmup_ops = 0;
    options.seed = 5;
    sim::EventSimulator simulator(ProtocolKind::kWriteOnce, small_config(),
                                  options);
    workload::ConcurrentDriver driver(spec, 6);
    benchmark::DoNotOptimize(simulator.run(driver));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_EventSimulatorThroughput);

void BM_ChainBuild(benchmark::State& state) {
  const auto kind = static_cast<ProtocolKind>(state.range(0));
  sim::SystemConfig config;
  config.num_clients = 50;
  config.costs.s = 5000.0;
  config.costs.p = 30.0;
  const auto spec = workload::read_disturbance(0.3, 0.02, 10);
  for (auto _ : state) {
    analytic::ProtocolChain chain(kind, config, spec);
    benchmark::DoNotOptimize(chain.num_states());
  }
}
BENCHMARK(BM_ChainBuild)
    ->Arg(static_cast<int>(ProtocolKind::kWriteThrough))
    ->Arg(static_cast<int>(ProtocolKind::kSynapse))
    ->Arg(static_cast<int>(ProtocolKind::kBerkeley))
    ->ArgName("protocol");

void BM_ChainResolve(benchmark::State& state) {
  sim::SystemConfig config;
  config.num_clients = 50;
  config.costs.s = 5000.0;
  config.costs.p = 30.0;
  const auto spec = workload::read_disturbance(0.3, 0.02, 10);
  analytic::ProtocolChain chain(ProtocolKind::kSynapse, config, spec);
  Rng rng(3);
  for (auto _ : state) {
    const double p = rng.uniform(0.05, 0.7);
    const double sigma = rng.uniform(0.001, 0.02);
    const auto probs =
        workload::read_disturbance(p, sigma, 10).probabilities();
    benchmark::DoNotOptimize(chain.average_cost(probs));
  }
}
BENCHMARK(BM_ChainResolve);

void BM_ThreadedRuntimeThroughput(benchmark::State& state) {
  const auto spec = workload::read_disturbance(0.3, 0.1, 2);
  for (auto _ : state) {
    state.PauseTiming();
    workload::GlobalSequenceGenerator gen(spec, 7);
    const auto trace = gen.record(2000, small_config().num_clients);
    workload::TraceReplayDriver driver(trace);
    state.ResumeTiming();
    sim::ThreadedOptions options;
    options.total_ops = trace.entries.size();
    benchmark::DoNotOptimize(sim::run_threaded(
        protocols::ProtocolKind::kWriteOnce, small_config(), options,
        driver));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_ThreadedRuntimeThroughput);

void BM_LumpedSolve(benchmark::State& state) {
  const std::size_t a = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytic::lumped_read_disturbance_acc(
        protocols::ProtocolKind::kSynapse, a + 2, 1000.0, 30.0, 0.2,
        0.3 / static_cast<double>(a), a));
  }
}
BENCHMARK(BM_LumpedSolve)->Arg(10)->Arg(100)->Arg(1000)->ArgName("a");

void BM_LuSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  linalg::Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 4.0;
  linalg::Vector b(n, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(linalg::solve(a, b));
}
BENCHMARK(BM_LuSolve)->Arg(16)->Arg(64)->Arg(256)->ArgName("n");

void BM_StationaryPowerIteration(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  std::vector<linalg::Triplet> trip;
  // Sparse random walk with ~8 transitions per state.
  for (std::size_t r = 0; r < n; ++r) {
    double total = 0.0;
    std::vector<std::pair<std::size_t, double>> row;
    for (int k = 0; k < 8; ++k) {
      row.emplace_back(rng.uniform_index(n), rng.uniform() + 0.1);
      total += row.back().second;
    }
    for (auto& [c, w] : row) trip.push_back({r, c, w / total});
  }
  linalg::CsrMatrix p(n, n, std::move(trip));
  linalg::StationaryOptions options;
  options.direct_limit = 1;
  options.tolerance = 1e-10;
  for (auto _ : state)
    benchmark::DoNotOptimize(linalg::stationary_distribution(p, options));
}
BENCHMARK(BM_StationaryPowerIteration)->Arg(1024)->Arg(8192)->ArgName("n");

}  // namespace

BENCHMARK_MAIN();
