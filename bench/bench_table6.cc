// Experiment E1 — the paper's Table 6: "the steady-state average
// communication cost per operation and per shared object for read
// disturbance deviation from ideal workload" for all eight coherence
// protocols.
//
// The paper states the costs as closed-form expressions; we evaluate the
// exact analytic model (the Markov-chain engine that automates the paper's
// Section 4.3 derivation) on a parameter grid, and cross-check every cell
// against the closed forms that are recoverable from the text
// (Write-Through eqn (3), plus the derived WTV/Berkeley/Dragon/Firefly
// forms — see src/analytic/closed_form.h).
//
// The grid fans out through the sweep engine with one task per protocol:
// each task owns its solver, so its chain is enumerated once and each
// stationary solve warm-starts from the previous grid cell's vector —
// task-local state that keeps the results independent of thread count.
#include <cmath>
#include <cstdio>
#include <memory>

#include "analytic/closed_form.h"
#include "analytic/solver.h"
#include "bench_util.h"
#include "exec/sweep.h"
#include "sim/event_sim.h"
#include "workload/generator.h"
#include "workload/spec.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;
namespace cf = analytic::closed_form;

constexpr std::size_t kN = 50;
constexpr std::size_t kA = 10;
constexpr double kP = 30.0;
constexpr double kS = 5000.0;

struct Cell {
  double p = 0.0;
  double sigma = 0.0;
};

struct ProtocolColumn {
  std::vector<double> acc;          // by grid cell
  std::vector<double> closed_form;  // -1 where no closed form exists
  std::unique_ptr<obs::MetricsRegistry> metrics;
};

}  // namespace

int main() {
  std::printf(
      "Table 6: steady-state average communication cost per operation,\n"
      "read disturbance deviation (exact analytic model).\n"
      "Parameters: N=%zu, a=%zu, P=%.0f, S=%.0f\n\n",
      kN, kA, kP, kS);

  sim::SystemConfig config;
  config.num_clients = kN;
  config.costs.s = kS;
  config.costs.p = kP;
  bench::Report report("table6");

  const std::vector<double> p_values = {0.05, 0.1, 0.2, 0.4, 0.6, 0.8};
  const std::vector<double> sigma_values = {0.0, 0.005, 0.01, 0.02, 0.05};

  std::vector<Cell> cells;
  for (double p : p_values)
    for (double sigma : sigma_values)
      if (p + static_cast<double>(kA) * sigma <= 1.0)
        cells.push_back({p, sigma});

  report.phase("analytic_grid");
  obs::MetricsRegistry exec_metrics;
  exec::SweepRunner runner({.metrics = &exec_metrics});
  const auto columns = runner.run<ProtocolColumn>(
      protocols::kAllProtocols.size(), [&](const exec::SweepTask& task) {
        const ProtocolKind kind = protocols::kAllProtocols[task.index];
        ProtocolColumn column;
        column.metrics = std::make_unique<obs::MetricsRegistry>();
        analytic::AccSolver solver(config);
        solver.set_metrics(column.metrics.get());
        for (const Cell& cell : cells) {
          const auto spec =
              workload::read_disturbance(cell.p, cell.sigma, kA);
          column.acc.push_back(solver.acc(kind, spec));
          double closed = -1.0;
          switch (kind) {
            case ProtocolKind::kWriteThrough:
              closed = cf::wt_read_disturbance(cell.p, cell.sigma, kA, kN,
                                               kS, kP);
              break;
            case ProtocolKind::kWriteThroughV:
              closed = cf::wtv_read_disturbance(cell.p, cell.sigma, kA, kN,
                                                kS, kP);
              break;
            case ProtocolKind::kBerkeley:
              closed = cf::berkeley_read_disturbance(cell.p, cell.sigma, kA,
                                                     kN, kS, kP);
              break;
            case ProtocolKind::kDragon:
              closed = cf::dragon_acc(cell.p, kN, kP);
              break;
            case ProtocolKind::kFirefly:
              closed = cf::firefly_acc(cell.p, kN, kP);
              break;
            default:
              break;
          }
          column.closed_form.push_back(closed);
        }
        return column;
      });

  obs::MetricsRegistry solver_metrics;
  for (const ProtocolColumn& column : columns)
    solver_metrics.merge(*column.metrics);

  std::vector<std::string> header = {"p", "sigma"};
  for (ProtocolKind kind : protocols::kAllProtocols)
    header.push_back(bench::short_name(kind));
  std::vector<std::vector<std::string>> rows;

  double max_closed_form_gap = 0.0;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    std::vector<std::string> row = {strfmt("%.2f", cells[c].p),
                                    strfmt("%.3f", cells[c].sigma)};
    for (std::size_t k = 0; k < protocols::kAllProtocols.size(); ++k) {
      const double acc = columns[k].acc[c];
      auto& result = report.add_result();
      result["protocol"] = bench::short_name(protocols::kAllProtocols[k]);
      result["p"] = cells[c].p;
      result["sigma"] = cells[c].sigma;
      result["acc_analytic"] = acc;
      row.push_back(bench::fmt(acc));
      const double closed = columns[k].closed_form[c];
      if (closed >= 0.0) {
        result["acc_closed_form"] = closed;
        max_closed_form_gap =
            std::max(max_closed_form_gap, std::fabs(closed - acc));
      }
    }
    rows.push_back(std::move(row));
  }
  std::printf("%s\n", render_table(header, rows).c_str());
  std::printf(
      "Max |closed-form - chain| over all checked cells: %.3g "
      "(machine precision expected)\n",
      max_closed_form_gap);

  // Simulator spot-check of one mid-table cell, so the report also carries
  // a measured message mix and latency distribution for these parameters.
  report.phase("sim_spot_check");
  obs::MetricsRegistry sim_metrics;
  {
    const double p = 0.2, sigma = 0.01;
    const auto spec = workload::read_disturbance(p, sigma, kA);
    analytic::AccSolver solver(config);
    for (ProtocolKind kind :
         {ProtocolKind::kWriteThrough, ProtocolKind::kBerkeley}) {
      sim::SimOptions options;
      options.max_ops = 4000;
      options.warmup_ops = 500;
      options.seed = 6;
      sim::EventSimulator simulator(kind, config, options);
      simulator.set_metrics(&sim_metrics);
      workload::ConcurrentDriver driver(spec, 61);
      const sim::SimStats sim_stats = simulator.run(driver);
      auto& result = report.add_result();
      result["protocol"] = bench::short_name(kind);
      result["p"] = p;
      result["sigma"] = sigma;
      result["acc_analytic"] = solver.acc(kind, spec);
      result["sim"] = bench::sim_stats_json(sim_stats);
      std::printf(
          "sim spot-check %s (p=%.2f, sigma=%.3f): analytic %.2f, "
          "simulated %.2f\n",
          bench::short_name(kind), p, sigma, solver.acc(kind, spec),
          sim_stats.acc());
    }
  }
  report.root()["solver_metrics"] = solver_metrics.to_json();
  report.root()["exec_metrics"] = exec_metrics.to_json();
  report.root()["sim_metrics"] = sim_metrics.to_json();
  report.write();
  return 0;
}
