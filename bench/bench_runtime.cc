// Experiment E11 (concurrent runtime) — throughput of the sharded
// concurrent DSM (dsm::ConcurrentSharedMemory) under real client threads,
// and the channel/runtime baselines it is built on.
//
// Phases:
//
//  * channel:       the MPSC ring against the mutex+deque inbox it
//                   replaced in sim::ThreadedRuntime (before/after line);
//  * baseline:      strictly sequential dsm::SharedMemory and the
//                   message-per-node ThreadedRuntime, for context;
//  * shard_sweep:   Zipf(0.99)-skewed read-mostly sessions against
//                   S = 1, 2, 4 shards; median-of-3 ops/sec per point.  The
//                   acceptance criteria live here: throughput must rise
//                   monotonically with S and peak at >= 1M ops/sec;
//  * thread_sweep:  session count 1..8 at the best shard count;
//  * closed_loop:   a tiny window (W=8) for the latency-oriented regime,
//                   with GK-sketch per-op latency percentiles;
//  * protocol_sweep: all eight protocols at the sweet spot;
//  * oracle:        the same workload with check::ShardedOracle attached
//                   to every shard — the bench fails (nonzero exit) on any
//                   coherence violation.
//
// Throughput numbers are wall-clock and thus machine-dependent; the
// regression gate (tools/drsm_bench_diff) only pins the accuracy fields of
// other reports and the wall-time ratio, so nothing here is bit-compared.
// Report: BENCH_runtime.json.  DRSM_BENCH_SMOKE=1 shrinks every phase
// (CI smoke); DRSM_BENCH_RUNTIME_OPS overrides the per-session op count.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "check/sharded_oracle.h"
#include "dsm/concurrent.h"
#include "dsm/dsm.h"
#include "sim/mpsc_ring.h"
#include "sim/threaded.h"
#include "support/rng.h"
#include "workload/generator.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;

constexpr double kZipfSkew = 0.99;
constexpr std::size_t kObjects = 256;
constexpr double kReadRatio = 0.9;

// The capacity-constrained regime the shard sweep measures: windows much
// larger than one shard's request ring, so with few shards the sessions
// live in backpressure (pump/yield/park churn) and every added shard both
// adds aggregate ring capacity (S x ring) and spreads the Zipf-hot head
// objects (modulo placement puts consecutive ids on distinct shards).
// Env-overridable for regime exploration: DRSM_BENCH_RUNTIME_RING/BATCH.
std::size_t g_ring_capacity = 64;
std::size_t g_max_batch = 64;
// One yield before parking measured best on a single hardware thread,
// where every extra spinning shard steals the producers' quantum; the
// library default (4) favors multi-core.  DRSM_BENCH_RUNTIME_SPINS.
std::size_t g_idle_spins = 1;
constexpr std::size_t kWindow = 4096;

struct SweepPoint {
  double ops_per_sec = 0.0;
  dsm::ConcurrentSharedMemory::Stats stats;
};

double elapsed_sec(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One open-loop (window-limited) session: Zipf-skewed object choice,
/// read-mostly mix, unique write values.
void session_main(dsm::ConcurrentSharedMemory& mem, NodeId node,
                  const CategoricalSampler& zipf, std::size_t ops,
                  std::uint64_t seed) {
  auto& session = mem.session(node);
  Rng rng(seed);
  for (std::size_t i = 0; i < ops; ++i) {
    const ObjectId object = static_cast<ObjectId>(zipf.sample(rng));
    if (rng.uniform() < kReadRatio)
      session.read(object);
    else
      session.write_unique(object);
  }
  session.drain();
}

SweepPoint run_concurrent(ProtocolKind kind, std::size_t sessions,
                          std::size_t shards, std::size_t ops_per_session,
                          std::size_t window, std::uint64_t seed,
                          check::ShardedOracle* oracle = nullptr) {
  dsm::ConcurrentSharedMemory::Options options;
  options.protocol = kind;
  options.num_clients = sessions;
  options.num_objects = kObjects;
  options.num_shards = shards;
  options.ring_capacity = g_ring_capacity;
  options.max_batch = g_max_batch;
  options.idle_spins = g_idle_spins;
  options.max_inflight = window;
  if (oracle != nullptr)
    for (std::size_t s = 0; s < shards; ++s)
      options.shard_taps.push_back(oracle->tap(s));

  const CategoricalSampler zipf(workload::zipf_weights(kObjects, kZipfSkew));
  dsm::ConcurrentSharedMemory mem(options);
  {
    std::vector<std::thread> threads;
    threads.reserve(sessions);
    for (std::size_t c = 0; c < sessions; ++c)
      threads.emplace_back(session_main, std::ref(mem),
                           static_cast<NodeId>(c), std::cref(zipf),
                           ops_per_session, seed + c);
    for (auto& t : threads) t.join();
  }
  mem.stop();

  SweepPoint point;
  point.stats = mem.stats();
  point.ops_per_sec = point.stats.ops_per_sec();
  return point;
}

/// Median ops/sec over `reps` runs (each rep re-creates the runtime), with
/// the stats of the median rep.
SweepPoint median_point(ProtocolKind kind, std::size_t sessions,
                        std::size_t shards, std::size_t ops_per_session,
                        std::size_t window, int reps) {
  std::vector<SweepPoint> points;
  for (int rep = 0; rep < reps; ++rep)
    points.push_back(run_concurrent(kind, sessions, shards, ops_per_session,
                                    window, 0x5eed + 97 * rep));
  std::sort(points.begin(), points.end(),
            [](const SweepPoint& a, const SweepPoint& b) {
              return a.ops_per_sec < b.ops_per_sec;
            });
  return points[points.size() / 2];
}

obs::JsonValue point_json(const SweepPoint& point) {
  obs::JsonValue row;
  row["ops_per_sec"] = point.ops_per_sec;
  row["wall_ms"] = point.stats.wall_ms;
  row["ops"] = static_cast<double>(point.stats.ops);
  row["cost_per_op"] = point.stats.acc();
  row["messages"] = static_cast<double>(point.stats.messages);
  row["batches"] = static_cast<double>(point.stats.batches);
  row["max_batch"] = static_cast<double>(point.stats.max_batch);
  row["shard_parks"] = static_cast<double>(point.stats.shard_parks);
  row["ring_full_stalls"] =
      static_cast<double>(point.stats.ring_full_stalls);
  row["submit_stalls"] = static_cast<double>(point.stats.submit_stalls);
  row["window_stalls"] = static_cast<double>(point.stats.window_stalls);
  return row;
}

void merge_point(obs::JsonValue& row, const SweepPoint& point) {
  const obs::JsonValue fields = point_json(point);
  for (std::size_t i = 0; i < fields.size(); ++i)
    row[fields.key(i)] = fields.at(i);
}

// -- channel micro: ring vs the mutex inbox it replaced ---------------------

template <class Queue>
double channel_items_per_sec(std::size_t producers,
                             std::size_t per_producer) {
  Queue queue(1 << 10);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&queue, per_producer] {
      for (std::size_t i = 0; i < per_producer; ++i)
        while (!queue.try_push(i)) std::this_thread::yield();
    });
  }
  std::uint64_t received = 0;
  std::uint64_t out[256];
  const std::uint64_t expected = producers * per_producer;
  while (received < expected) {
    const std::size_t n = queue.pop_batch(out, 256);
    if (n == 0) std::this_thread::yield();
    received += n;
  }
  for (auto& t : threads) t.join();
  return static_cast<double>(expected) / elapsed_sec(start);
}

// -- threaded-runtime baseline ----------------------------------------------

class MixDriver final : public sim::WorkloadDriver {
 public:
  MixDriver(std::size_t total_ops, std::uint64_t seed)
      : remaining_(total_ops),
        zipf_(workload::zipf_weights(kObjects, kZipfSkew)),
        rng_(seed) {}

  std::optional<Op> next_op(NodeId /*node*/) override {
    if (remaining_ == 0) return std::nullopt;
    --remaining_;
    Op op;
    op.object = static_cast<ObjectId>(zipf_.sample(rng_));
    op.kind = rng_.uniform() < kReadRatio ? fsm::OpKind::kRead
                                          : fsm::OpKind::kWrite;
    return op;
  }

 private:
  std::size_t remaining_;
  CategoricalSampler zipf_;
  Rng rng_;
};

}  // namespace

int main() {
  const bool smoke = std::getenv("DRSM_BENCH_SMOKE") != nullptr;
  std::size_t ops_per_session = smoke ? 8000 : 150000;
  if (const char* env = std::getenv("DRSM_BENCH_RUNTIME_OPS"))
    ops_per_session = static_cast<std::size_t>(std::atoll(env));
  const int reps = smoke ? 1 : 3;
  const ProtocolKind kind = ProtocolKind::kIllinois;
  if (const char* env = std::getenv("DRSM_BENCH_RUNTIME_RING"))
    g_ring_capacity = static_cast<std::size_t>(std::atoll(env));
  if (const char* env = std::getenv("DRSM_BENCH_RUNTIME_BATCH"))
    g_max_batch = static_cast<std::size_t>(std::atoll(env));
  if (const char* env = std::getenv("DRSM_BENCH_RUNTIME_SPINS"))
    g_idle_spins = static_cast<std::size_t>(std::atoll(env));

  std::printf(
      "Concurrent sharded DSM runtime (M=%zu objects, Zipf %.2f, "
      "%.0f%% reads, ring=%zu, batch=%zu, window=%zu, "
      "%zu ops/session x %d reps)\n\n",
      kObjects, kZipfSkew, kReadRatio * 100.0, g_ring_capacity, g_max_batch,
      kWindow, ops_per_session, reps);
  bench::Report report("runtime");

  // -- channel: before/after for the threaded-runtime inbox swap ---------
  report.phase("channel");
  const std::size_t channel_items = smoke ? 40000 : 400000;
  const double mutex_rate =
      channel_items_per_sec<sim::MutexQueue<std::uint64_t>>(
          3, channel_items / 3);
  const double ring_rate =
      channel_items_per_sec<sim::MpscRing<std::uint64_t>>(
          3, channel_items / 3);
  std::printf("inbox channel (3 producers): mutex+deque %.2fM items/s -> "
              "mpsc ring %.2fM items/s (%.2fx)\n\n",
              mutex_rate / 1e6, ring_rate / 1e6, ring_rate / mutex_rate);
  {
    auto& row = report.add_result();
    row["phase"] = "channel";
    row["mutex_items_per_sec"] = mutex_rate;
    row["ring_items_per_sec"] = ring_rate;
    row["ring_speedup"] = ring_rate / mutex_rate;
  }

  // -- baselines: sequential facade and the per-node threaded runtime ----
  report.phase("baseline");
  {
    dsm::SharedMemory::Options options;
    options.protocol = kind;
    options.num_clients = 4;
    options.num_objects = kObjects;
    dsm::SharedMemory mem(options);
    const CategoricalSampler zipf(
        workload::zipf_weights(kObjects, kZipfSkew));
    Rng rng(0xba5e);
    const std::size_t ops = smoke ? 20000 : 200000;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < ops; ++i) {
      const ObjectId object = static_cast<ObjectId>(zipf.sample(rng));
      const NodeId node = static_cast<NodeId>(i % 4);
      if (rng.uniform() < kReadRatio)
        mem.read(node, object);
      else
        mem.write(node, object, i);
    }
    const double seq_rate = static_cast<double>(ops) / elapsed_sec(start);

    sim::SystemConfig config;
    config.num_clients = 4;
    config.num_objects = kObjects;
    MixDriver driver(smoke ? 5000 : 40000, 0x7ead);
    sim::ThreadedOptions threaded_options;
    threaded_options.total_ops = smoke ? 5000 : 40000;
    const auto threaded_start = std::chrono::steady_clock::now();
    const sim::ThreadedStats threaded_stats =
        sim::run_threaded(kind, config, threaded_options, driver);
    const double threaded_rate =
        static_cast<double>(threaded_stats.total_ops) /
        elapsed_sec(threaded_start);

    std::printf("baselines: sequential facade %.2fM ops/s, threaded "
                "runtime (msg/node) %.2fK ops/s\n\n",
                seq_rate / 1e6, threaded_rate / 1e3);
    auto& row = report.add_result();
    row["phase"] = "baseline";
    row["sequential_ops_per_sec"] = seq_rate;
    row["threaded_ops_per_sec"] = threaded_rate;
  }

  // -- shard sweep: the tentpole numbers ---------------------------------
  report.phase("shard_sweep");
  const std::size_t sweep_sessions = 8;
  std::printf("shard sweep (T=%zu sessions, W=%zu):\n", sweep_sessions,
              kWindow);
  std::printf("  %6s %14s %10s %12s %14s %12s\n", "shards", "ops/sec",
              "wall ms", "cost/op", "ring stalls", "parks");
  double peak_ops_per_sec = 0.0;
  std::size_t best_shards = 1;
  bool monotone = true;
  double previous = 0.0;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    const SweepPoint point = median_point(kind, sweep_sessions, shards,
                                          ops_per_session, kWindow, reps);
    std::printf("  %6zu %14.0f %10.1f %12.3f %14llu %12llu\n", shards,
                point.ops_per_sec, point.stats.wall_ms, point.stats.acc(),
                static_cast<unsigned long long>(
                    point.stats.ring_full_stalls),
                static_cast<unsigned long long>(point.stats.shard_parks));
    if (point.ops_per_sec < previous) monotone = false;
    previous = point.ops_per_sec;
    if (point.ops_per_sec > peak_ops_per_sec) {
      peak_ops_per_sec = point.ops_per_sec;
      best_shards = shards;
    }
    auto& row = report.add_result();
    row["phase"] = "shard_sweep";
    row["shards"] = static_cast<double>(shards);
    row["sessions"] = static_cast<double>(sweep_sessions);
    merge_point(row, point);
  }
  std::printf("  -> peak %.2fM ops/s @ %zu shards, scaling %s\n\n",
              peak_ops_per_sec / 1e6, best_shards,
              monotone ? "monotone" : "NOT monotone");

  // -- thread sweep at the best shard count ------------------------------
  report.phase("thread_sweep");
  std::printf("session sweep (S=%zu shards):\n", best_shards);
  std::printf("  %8s %14s %10s\n", "sessions", "ops/sec", "wall ms");
  for (const std::size_t sessions : {1u, 2u, 4u, 8u}) {
    const SweepPoint point = median_point(kind, sessions, best_shards,
                                          ops_per_session, kWindow, reps);
    std::printf("  %8zu %14.0f %10.1f\n", sessions, point.ops_per_sec,
                point.stats.wall_ms);
    auto& row = report.add_result();
    row["phase"] = "thread_sweep";
    row["sessions"] = static_cast<double>(sessions);
    row["shards"] = static_cast<double>(best_shards);
    merge_point(row, point);
  }
  std::printf("\n");

  // -- closed loop: small window, per-op latency -------------------------
  report.phase("closed_loop");
  {
    const SweepPoint point =
        median_point(kind, sweep_sessions, best_shards,
                     std::max<std::size_t>(ops_per_session / 4, 1), 8, reps);
    std::printf("closed loop (W=8): %.2fM ops/s, latency p50 %.0fns "
                "p99 %.0fns (n=%llu sampled)\n\n",
                point.ops_per_sec / 1e6, point.stats.latency_ns.query(0.5),
                point.stats.latency_ns.query(0.99),
                static_cast<unsigned long long>(
                    point.stats.latency_ns.count()));
    auto& row = report.add_result();
    row["phase"] = "closed_loop";
    row["window"] = 8.0;
    merge_point(row, point);
    row["latency_ns"] = point.stats.latency_ns.to_json();
  }

  // -- protocol sweep ----------------------------------------------------
  report.phase("protocol_sweep");
  std::printf("protocol sweep (T=%zu, S=%zu):\n", sweep_sessions,
              best_shards);
  std::printf("  %6s %14s %12s\n", "proto", "ops/sec", "cost/op");
  for (const ProtocolKind protocol : protocols::kAllProtocols) {
    const SweepPoint point = run_concurrent(
        protocol, sweep_sessions, best_shards,
        std::max<std::size_t>(ops_per_session / 4, 1), kWindow, 0x9807);
    std::printf("  %6s %14.0f %12.3f\n", bench::short_name(protocol),
                point.ops_per_sec, point.stats.acc());
    auto& row = report.add_result();
    row["phase"] = "protocol_sweep";
    row["protocol"] = bench::short_name(protocol);
    merge_point(row, point);
  }
  std::printf("\n");

  // -- oracle-refereed run ------------------------------------------------
  report.phase("oracle");
  bool oracle_ok = true;
  {
    check::ShardedOracle oracle(best_shards);
    const SweepPoint point = run_concurrent(
        kind, sweep_sessions, best_shards,
        std::max<std::size_t>(ops_per_session / 4, 1), kWindow, 0x0c1e,
        &oracle);
    oracle.finish();
    oracle_ok = oracle.ok();
    std::printf("oracle-refereed run: %.2fM ops/s with live referee, "
                "%zu commits / %zu reads checked -> %s\n\n",
                point.ops_per_sec / 1e6, oracle.commits(), oracle.reads(),
                oracle_ok ? "clean" : "VIOLATIONS");
    for (const std::string& violation : oracle.violations())
      std::printf("  violation: %s\n", violation.c_str());
    auto& row = report.add_result();
    row["phase"] = "oracle";
    row["oracle_ok"] = oracle_ok;
    row["oracle_commits"] = static_cast<double>(oracle.commits());
    row["oracle_reads"] = static_cast<double>(oracle.reads());
    merge_point(row, point);
  }

  report.root()["peak_ops_per_sec"] = peak_ops_per_sec;
  report.root()["peak_shards"] = static_cast<double>(best_shards);
  report.root()["monotone_shard_scaling"] = monotone;
  report.root()["oracle_ok"] = oracle_ok;
  report.write();

  if (!oracle_ok) {
    std::fprintf(stderr, "bench_runtime: coherence violations detected\n");
    return 1;
  }
  return 0;
}
