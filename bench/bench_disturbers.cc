// Extension bench — disturbance at scale: acc as the number of disturbing
// clients grows into the thousands, computed with the exact lumped chains
// (O(a) states; the generic product-space engine stops near a ~ 20).
//
// The total disturbance a*sigma is held constant, so the sweep isolates
// the effect of *spreading* the same read pressure over more clients —
// the regime the paper's activity-center model is built to reason about.
#include <chrono>
#include <cstdio>

#include "analytic/lumped.h"
#include "bench_util.h"
#include "support/text.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;

constexpr double kTotalDisturbance = 0.3;  // a * sigma held fixed
constexpr double kP = 0.2;                 // center write probability
constexpr double kScost = 1000.0;
constexpr double kPcost = 30.0;

}  // namespace

int main() {
  std::printf(
      "Disturbers at scale: a*sigma = %.2f fixed, p = %.2f, S = %.0f, "
      "P = %.0f, N = a+2\n\n",
      kTotalDisturbance, kP, kScost, kPcost);

  const std::vector<std::size_t> a_values = {1,  2,   5,   10,  50,
                                             200, 1000, 5000};
  std::vector<std::vector<std::string>> rows;
  double total_ms = 0.0;
  for (std::size_t a : a_values) {
    const double sigma = kTotalDisturbance / static_cast<double>(a);
    const std::size_t n = a + 2;
    std::vector<std::string> row = {strfmt("%zu", a)};
    const auto start = std::chrono::steady_clock::now();
    for (ProtocolKind kind : protocols::kAllProtocols) {
      row.push_back(strfmt("%.1f", analytic::lumped_read_disturbance_acc(
                                       kind, n, kScost, kPcost, kP, sigma,
                                       a)));
    }
    total_ms += std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    rows.push_back(std::move(row));
  }
  std::vector<std::string> header = {"a"};
  for (ProtocolKind kind : protocols::kAllProtocols)
    header.push_back(bench::short_name(kind));
  std::printf("%s\n", render_table(header, rows).c_str());
  std::printf(
      "all %zu rows x 8 protocols solved in %.1f ms total.\n"
      "Reading: spreading fixed read pressure over more clients hurts the\n"
      "invalidate protocols (each client's first re-read after a write is\n"
      "a separate S+2 miss, and each spread client is colder), while the\n"
      "update protocols only feel N growing with a (broadcast width).\n\n",
      a_values.size(), total_ms);

  // -- write disturbance at scale -------------------------------------------
  std::printf(
      "Write disturbance at scale: a*xi = 0.30 fixed, p = %.2f, same "
      "costs\n\n",
      kP);
  std::vector<std::vector<std::string>> wd_rows;
  for (std::size_t a : a_values) {
    const double xi = kTotalDisturbance / static_cast<double>(a);
    const std::size_t n = a + 2;
    std::vector<std::string> row = {strfmt("%zu", a)};
    for (ProtocolKind kind : protocols::kAllProtocols)
      row.push_back(strfmt("%.1f", analytic::lumped_write_disturbance_acc(
                                       kind, n, kScost, kPcost, kP, xi, a)));
    wd_rows.push_back(std::move(row));
  }
  std::printf("%s\n", render_table(header, wd_rows).c_str());

  // -- multiple activity centers at scale -----------------------------------
  std::printf(
      "Multiple activity centers at scale: total write probability p = "
      "%.2f, N = beta+2\n\n",
      kP);
  std::vector<std::vector<std::string>> mac_rows;
  for (std::size_t beta : {1ul, 2ul, 8ul, 32ul, 128ul, 512ul, 2048ul}) {
    const std::size_t n = beta + 2;
    std::vector<std::string> row = {strfmt("%zu", beta)};
    for (ProtocolKind kind : protocols::kAllProtocols)
      row.push_back(strfmt("%.1f", analytic::lumped_multiple_ac_acc(
                                       kind, n, kScost, kPcost, kP, beta)));
    mac_rows.push_back(std::move(row));
  }
  std::vector<std::string> mac_header = {"beta"};
  for (ProtocolKind kind : protocols::kAllProtocols)
    mac_header.push_back(bench::short_name(kind));
  std::printf("%s\n", render_table(mac_header, mac_rows).c_str());
  std::printf(
      "With many centers the ownership protocols pay a steal per foreign\n"
      "write while write-through pays a constant P+N per write: sharing\n"
      "breadth, not write volume, decides the winner.\n");
  return 0;
}
