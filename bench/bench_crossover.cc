// Experiment E5 — Section 5.1's qualitative conclusions, regenerated:
// ideal-workload limits, protocol dominance relations, and the crossover
// lines, extracted *numerically* from the exact analytic model and
// compared with the paper's stated formulas.
#include <cmath>
#include <cstdio>
#include <functional>

#include "analytic/closed_form.h"
#include "analytic/solver.h"
#include "bench_util.h"
#include "workload/spec.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;
namespace cf = analytic::closed_form;

/// Bisects for the p at which two protocols tie under read disturbance.
double find_boundary(analytic::AccSolver& solver, ProtocolKind a,
                     ProtocolKind b, double sigma, std::size_t disturbers,
                     double p_lo, double p_hi) {
  const auto diff = [&](double p) {
    const auto spec = workload::read_disturbance(p, sigma, disturbers);
    return solver.acc(a, spec) - solver.acc(b, spec);
  };
  double lo = p_lo, hi = p_hi;
  double f_lo = diff(lo);
  if (f_lo * diff(hi) > 0.0) return -1.0;  // no crossing in range
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double f_mid = diff(mid);
    if ((f_mid < 0.0) == (f_lo < 0.0)) {
      lo = mid;
      f_lo = f_mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

int main() {
  std::printf("Section 5.1 conclusions, regenerated\n\n");

  // -- Ideal workload limits (sigma = 0) -----------------------------------
  {
    const std::size_t n = 50;
    const double s = 5000.0, p_cost = 30.0;
    analytic::AccSolver solver({n, {s, p_cost}, 1});
    std::printf("Ideal workload (a=0), N=%zu, S=%.0f, P=%.0f:\n", n, s,
                p_cost);
    std::vector<std::vector<std::string>> rows;
    for (ProtocolKind kind : protocols::kAllProtocols) {
      std::vector<std::string> row = {bench::short_name(kind)};
      for (double p : {0.1, 0.5, 0.9}) {
        const double acc = solver.acc(kind, workload::ideal_workload(p));
        const double closed = cf::ideal_acc(kind, p, n, s, p_cost);
        row.push_back(strfmt("%.1f (closed %.1f)", acc, closed));
      }
      rows.push_back(std::move(row));
    }
    std::printf("%s\n",
                render_table({"protocol", "p=0.1", "p=0.5", "p=0.9"}, rows)
                    .c_str());
  }

  // -- WT vs WT-V line ------------------------------------------------------
  {
    const std::size_t n = 50, a = 10;
    const double s = 100.0, p_cost = 30.0;
    analytic::AccSolver solver({n, {s, p_cost}, 1});
    std::printf(
        "WT vs WT-V boundary (paper: p* = S/(S+2) - a*sigma*S/(S+2)); "
        "N=%zu, a=%zu, S=%.0f, P=%.0f:\n",
        n, a, s, p_cost);
    std::vector<std::vector<std::string>> rows;
    for (double sigma : {0.01, 0.03, 0.05, 0.08}) {
      const double paper = cf::wt_wtv_boundary(sigma, a, s);
      const double measured = find_boundary(
          solver, ProtocolKind::kWriteThrough, ProtocolKind::kWriteThroughV,
          sigma, a, 1e-4, 1.0 - a * sigma - 1e-6);
      rows.push_back({strfmt("%.2f", sigma), strfmt("%.4f", paper),
                      strfmt("%.4f", measured),
                      strfmt("%.2g", std::fabs(paper - measured))});
    }
    std::printf("%s\n",
                render_table({"sigma", "paper p*", "measured p*", "|diff|"},
                             rows)
                    .c_str());
  }

  // -- Dragon vs Berkeley line ----------------------------------------------
  {
    const std::size_t n = 5;
    const double s = 1000.0, p_cost = 30.0;  // N*P < S+2
    analytic::AccSolver solver({n, {s, p_cost}, 1});
    std::printf(
        "Dragon vs Berkeley boundary, a=1 (paper: Berkeley everywhere for "
        "N*P > S+2; otherwise p* proportional to sigma*(S+2-N*P)); "
        "N=%zu, S=%.0f, P=%.0f:\n",
        n, s, p_cost);
    std::vector<std::vector<std::string>> rows;
    for (double sigma : {0.02, 0.05, 0.08, 0.12}) {
      const double line = cf::dragon_berkeley_boundary(sigma, n, s, p_cost);
      if (line + sigma >= 1.0) {
        rows.push_back({strfmt("%.2f", sigma), strfmt("%.4f", line),
                        "outside feasible p range", "-"});
        continue;
      }
      const double measured =
          find_boundary(solver, ProtocolKind::kDragon,
                        ProtocolKind::kBerkeley, sigma, 1, 1e-4,
                        std::min(0.999, 1.0 - sigma - 1e-6));
      rows.push_back({strfmt("%.2f", sigma), strfmt("%.4f", line),
                      strfmt("%.4f", measured),
                      strfmt("%.2g", std::fabs(line - measured))});
    }
    std::printf(
        "%s\n",
        render_table({"sigma", "derived p*", "measured p*", "|diff|"}, rows)
            .c_str());
  }

  // -- Synapse vs WT-V region structure --------------------------------------
  {
    const std::size_t n = 50, a = 10;
    const double s = 100.0, p_cost = 30.0;  // P < S+N
    analytic::AccSolver solver({n, {s, p_cost}, 1});
    std::printf(
        "Synapse vs WT-V boundary (paper: p* = a*sigma*(S+N-P)/(P+N+2) for "
        "P < S+N).  Our Synapse adaptation pays 2S+6 per dirty read, so the "
        "measured boundary keeps the paper's shape (through the origin, "
        "~linear in sigma) with a different slope — see EXPERIMENTS.md.\n");
    std::vector<std::vector<std::string>> rows;
    double slope_sum = 0.0;
    int slope_count = 0;
    for (double sigma : {0.005, 0.01, 0.02, 0.03}) {
      const double paper = cf::synapse_wtv_boundary(sigma, a, n, s, p_cost);
      const double measured = find_boundary(
          solver, ProtocolKind::kSynapse, ProtocolKind::kWriteThroughV,
          sigma, a, 1e-4, 1.0 - a * sigma - 1e-6);
      if (measured > 0.0) {
        slope_sum += measured / sigma;
        ++slope_count;
      }
      rows.push_back({strfmt("%.3f", sigma), strfmt("%.4f", paper),
                      strfmt("%.4f", measured)});
    }
    std::printf(
        "%s",
        render_table({"sigma", "paper p*", "measured p*"}, rows).c_str());
    if (slope_count > 1)
      std::printf(
          "measured boundary slope p*/sigma ~ %.1f per unit sigma "
          "(approximately constant => linear through the origin)\n\n",
          slope_sum / slope_count);
  }

  // -- Dominance relations ----------------------------------------------------
  {
    const std::size_t n = 50, a = 10;
    analytic::AccSolver solver({n, {5000.0, 30.0}, 1});
    int berkeley_violations = 0, illinois_violations = 0, cells = 0;
    for (double p : {0.05, 0.1, 0.3, 0.5, 0.7, 0.9}) {
      for (double sigma : {0.001, 0.005, 0.01, 0.03, 0.06}) {
        if (p + a * sigma > 1.0) continue;
        ++cells;
        const auto spec = workload::read_disturbance(p, sigma, a);
        const double ber = solver.acc(ProtocolKind::kBerkeley, spec);
        const double syn = solver.acc(ProtocolKind::kSynapse, spec);
        const double ill = solver.acc(ProtocolKind::kIllinois, spec);
        for (ProtocolKind rival :
             {ProtocolKind::kWriteThrough, ProtocolKind::kWriteThroughV,
              ProtocolKind::kWriteOnce, ProtocolKind::kIllinois,
              ProtocolKind::kSynapse})
          if (ber > solver.acc(rival, spec) + 1e-9) ++berkeley_violations;
        if (ill > syn + 1e-9) ++illinois_violations;
      }
    }
    std::printf(
        "Dominance over %d read-disturbance grid cells (N=50, a=10, "
        "S=5000, P=30):\n"
        "  Berkeley minimal among {WT, WT-V, WO, ILL, SYN}: %d violations\n"
        "  Illinois <= Synapse:                             %d violations\n",
        cells, berkeley_violations, illinois_violations);
  }
  return 0;
}
