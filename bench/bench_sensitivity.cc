// Ablation bench: how the cost-model parameters S (object transfer) and
// P (write parameters) re-rank the protocols — the design-choice study
// behind the paper's Fig. 5 panels using S=100 vs S=5000, plus parameter
// sensitivities/elasticities at a representative operating point.
//
// Each sweep fans out through the sweep engine: one task per cost point
// (S sweep, P sweep) or per protocol (elasticities).  Every task owns its
// solver, so the numbers are independent of thread count.
#include <cstdio>
#include <memory>

#include "analytic/sensitivity.h"
#include "analytic/solver.h"
#include "bench_util.h"
#include "exec/sweep.h"
#include "workload/spec.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;

constexpr std::size_t kN = 16;
constexpr std::size_t kA = 3;

struct CostPoint {
  std::vector<double> accs;  // by protocol, kAllProtocols order
  std::unique_ptr<obs::MetricsRegistry> metrics;
};

// Sweep one cost axis: one task per cost value, each evaluating all eight
// protocols with a task-local solver so chains are shared across the
// column.  Prints the table and records one report result per cell.
void sweep_costs(bench::Report& report, exec::SweepRunner& runner,
                 obs::MetricsRegistry& solver_metrics,
                 const workload::WorkloadSpec& spec, const char* axis,
                 const std::vector<double>& values,
                 fsm::CostModel (*costs_at)(double)) {
  std::printf("Sweep %s: acc per protocol and the winner\n", axis);
  const auto points =
      runner.run<CostPoint>(values.size(), [&](const exec::SweepTask& task) {
        CostPoint out;
        out.metrics = std::make_unique<obs::MetricsRegistry>();
        analytic::AccSolver solver({kN, costs_at(values[task.index]), 1});
        solver.set_metrics(out.metrics.get());
        for (ProtocolKind kind : protocols::kAllProtocols)
          out.accs.push_back(solver.acc(kind, spec));
        return out;
      });

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < values.size(); ++i) {
    solver_metrics.merge(*points[i].metrics);
    std::vector<std::string> row = {strfmt("%.0f", values[i])};
    double best = -1.0;
    ProtocolKind winner = ProtocolKind::kWriteThrough;
    for (std::size_t k = 0; k < protocols::kAllProtocols.size(); ++k) {
      const double acc = points[i].accs[k];
      row.push_back(strfmt("%.0f", acc));
      if (best < 0 || acc < best) {
        best = acc;
        winner = protocols::kAllProtocols[k];
      }
      auto& result = report.add_result();
      result["axis"] = axis;
      result["value"] = values[i];
      result["protocol"] = bench::short_name(protocols::kAllProtocols[k]);
      result["acc_analytic"] = acc;
    }
    row.push_back(bench::short_name(winner));
    rows.push_back(std::move(row));
  }
  std::vector<std::string> header = {axis};
  for (ProtocolKind kind : protocols::kAllProtocols)
    header.push_back(bench::short_name(kind));
  header.push_back("winner");
  std::printf("%s\n", render_table(header, rows).c_str());
}

fsm::CostModel s_axis(double s) { return {s, 30.0}; }
fsm::CostModel p_axis(double p_cost) { return {500.0, p_cost}; }

}  // namespace

int main() {
  std::printf(
      "Parameter ablation (N=%zu, a=%zu, read disturbance p=0.3, "
      "sigma=0.05)\n\n",
      kN, kA);
  const auto spec = workload::read_disturbance(0.3, 0.05, kA);
  bench::Report report("sensitivity");
  obs::MetricsRegistry solver_metrics;
  obs::MetricsRegistry exec_metrics;
  exec::SweepRunner runner({.metrics = &exec_metrics});

  report.phase("sweep_S");
  sweep_costs(report, runner, solver_metrics, spec, "S",
              {10.0, 50.0, 100.0, 500.0, 2000.0, 10000.0}, s_axis);

  report.phase("sweep_P");
  sweep_costs(report, runner, solver_metrics, spec, "P",
              {1.0, 10.0, 30.0, 100.0, 400.0}, p_axis);

  // -- elasticities at the operating point ----------------------------------
  report.phase("elasticities");
  {
    std::printf(
        "Elasticities at (p=0.3, sigma=0.05, S=500, P=30): relative acc "
        "change per relative parameter change\n");
    analytic::OperatingPoint point{analytic::Deviation::kReadDisturbance,
                                   0.3, 0.05, kA};
    const auto els = runner.run<analytic::Sensitivity>(
        protocols::kAllProtocols.size(), [&](const exec::SweepTask& task) {
          return analytic::acc_elasticity(protocols::kAllProtocols[task.index],
                                          {kN, {500.0, 30.0}, 1}, point);
        });
    std::vector<std::vector<std::string>> rows;
    for (std::size_t k = 0; k < protocols::kAllProtocols.size(); ++k) {
      const analytic::Sensitivity& el = els[k];
      const ProtocolKind kind = protocols::kAllProtocols[k];
      auto& result = report.add_result();
      result["axis"] = "elasticity";
      result["protocol"] = bench::short_name(kind);
      result["e_p"] = el.wrt_p;
      result["e_sigma"] = el.wrt_disturbance;
      result["e_S"] = el.wrt_s;
      result["e_P"] = el.wrt_p_cost;
      rows.push_back({bench::short_name(kind), strfmt("%.2f", el.wrt_p),
                      strfmt("%.2f", el.wrt_disturbance),
                      strfmt("%.2f", el.wrt_s),
                      strfmt("%.2f", el.wrt_p_cost)});
    }
    std::printf("%s", render_table({"protocol", "e(p)", "e(sigma)", "e(S)",
                                    "e(P)"},
                                   rows)
                         .c_str());
    std::printf(
        "reading: e(S)~1 means acc is dominated by object transfers "
        "(invalidate protocols); e(P)~1 means it is dominated by parameter "
        "broadcasts (update protocols).\n");
  }
  report.root()["solver_metrics"] = solver_metrics.to_json();
  report.root()["exec_metrics"] = exec_metrics.to_json();
  report.write();
  return 0;
}
