// Ablation bench: how the cost-model parameters S (object transfer) and
// P (write parameters) re-rank the protocols — the design-choice study
// behind the paper's Fig. 5 panels using S=100 vs S=5000, plus parameter
// sensitivities/elasticities at a representative operating point.
#include <cstdio>

#include "analytic/sensitivity.h"
#include "analytic/solver.h"
#include "bench_util.h"
#include "workload/spec.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;

constexpr std::size_t kN = 16;
constexpr std::size_t kA = 3;

}  // namespace

int main() {
  std::printf(
      "Parameter ablation (N=%zu, a=%zu, read disturbance p=0.3, "
      "sigma=0.05)\n\n",
      kN, kA);
  const auto spec = workload::read_disturbance(0.3, 0.05, kA);

  // -- acc and winner as S sweeps (P fixed) --------------------------------
  {
    std::printf("Sweep S (P=30): acc per protocol and the winner\n");
    std::vector<std::vector<std::string>> rows;
    for (double s : {10.0, 50.0, 100.0, 500.0, 2000.0, 10000.0}) {
      analytic::AccSolver solver({kN, {s, 30.0}, 1});
      std::vector<std::string> row = {strfmt("%.0f", s)};
      double best = -1.0;
      ProtocolKind winner = ProtocolKind::kWriteThrough;
      for (ProtocolKind kind : protocols::kAllProtocols) {
        const double acc = solver.acc(kind, spec);
        row.push_back(strfmt("%.0f", acc));
        if (best < 0 || acc < best) {
          best = acc;
          winner = kind;
        }
      }
      row.push_back(bench::short_name(winner));
      rows.push_back(std::move(row));
    }
    std::vector<std::string> header = {"S"};
    for (ProtocolKind kind : protocols::kAllProtocols)
      header.push_back(bench::short_name(kind));
    header.push_back("winner");
    std::printf("%s\n", render_table(header, rows).c_str());
  }

  // -- acc and winner as P sweeps (S fixed) --------------------------------
  {
    std::printf("Sweep P (S=500): acc per protocol and the winner\n");
    std::vector<std::vector<std::string>> rows;
    for (double p_cost : {1.0, 10.0, 30.0, 100.0, 400.0}) {
      analytic::AccSolver solver({kN, {500.0, p_cost}, 1});
      std::vector<std::string> row = {strfmt("%.0f", p_cost)};
      double best = -1.0;
      ProtocolKind winner = ProtocolKind::kWriteThrough;
      for (ProtocolKind kind : protocols::kAllProtocols) {
        const double acc = solver.acc(kind, spec);
        row.push_back(strfmt("%.0f", acc));
        if (best < 0 || acc < best) {
          best = acc;
          winner = kind;
        }
      }
      row.push_back(bench::short_name(winner));
      rows.push_back(std::move(row));
    }
    std::vector<std::string> header = {"P"};
    for (ProtocolKind kind : protocols::kAllProtocols)
      header.push_back(bench::short_name(kind));
    header.push_back("winner");
    std::printf("%s\n", render_table(header, rows).c_str());
  }

  // -- elasticities at the operating point ----------------------------------
  {
    std::printf(
        "Elasticities at (p=0.3, sigma=0.05, S=500, P=30): relative acc "
        "change per relative parameter change\n");
    analytic::OperatingPoint point{analytic::Deviation::kReadDisturbance,
                                   0.3, 0.05, kA};
    std::vector<std::vector<std::string>> rows;
    for (ProtocolKind kind : protocols::kAllProtocols) {
      const auto el = analytic::acc_elasticity(
          kind, {kN, {500.0, 30.0}, 1}, point);
      rows.push_back({bench::short_name(kind), strfmt("%.2f", el.wrt_p),
                      strfmt("%.2f", el.wrt_disturbance),
                      strfmt("%.2f", el.wrt_s),
                      strfmt("%.2f", el.wrt_p_cost)});
    }
    std::printf("%s", render_table({"protocol", "e(p)", "e(sigma)", "e(S)",
                                    "e(P)"},
                                   rows)
                         .c_str());
    std::printf(
        "reading: e(S)~1 means acc is dominated by object transfers "
        "(invalidate protocols); e(P)~1 means it is dominated by parameter "
        "broadcasts (update protocols).\n");
  }
  return 0;
}
