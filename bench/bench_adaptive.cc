// Experiment E9 (extension) — the paper's proposed self-tuning classifier:
// "a classifier for the development of adaptive data replication coherence
// protocols with self-tuning capability based on run-time information".
//
// A workload that changes phase (shared-read -> single hot writer ->
// write-contended) is run against every static protocol and against the
// adaptive shared memory; the adaptive run should track the best static
// protocol per phase and beat every single static choice overall.
#include <cstdio>

#include "adaptive/selector.h"
#include "bench_util.h"
#include "workload/generator.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;

constexpr std::size_t kClients = 4;
constexpr std::size_t kObjects = 4;
constexpr std::size_t kPhaseOps = 6000;

dsm::SharedMemory::Options memory_options(ProtocolKind kind) {
  dsm::SharedMemory::Options options;
  options.protocol = kind;
  options.num_clients = kClients;
  options.num_objects = kObjects;
  options.costs.s = 400.0;
  options.costs.p = 30.0;
  return options;
}

std::vector<workload::WorkloadSpec> phases() {
  return {
      workload::read_disturbance(0.04, 0.3, 3),   // widely shared reads
      workload::ideal_workload(0.8),              // single hot writer
      workload::write_disturbance(0.4, 0.15, 2),  // write contention
  };
}

template <typename ReadFn, typename WriteFn>
void drive(ReadFn&& do_read, WriteFn&& do_write) {
  std::uint64_t value = 0;
  std::uint64_t seed = 40;
  for (const auto& phase : phases()) {
    workload::GlobalSequenceGenerator gen(phase, ++seed, kObjects);
    for (std::size_t i = 0; i < kPhaseOps; ++i) {
      const auto op = gen.next();
      if (op.op == fsm::OpKind::kWrite)
        do_write(op.node, op.object, ++value);
      else
        do_read(op.node, op.object);
    }
  }
}

}  // namespace

int main() {
  std::printf(
      "Adaptive protocol selection on a phase-changing workload\n"
      "(N=%zu clients, M=%zu objects, S=400, P=30; 3 phases x %zu ops)\n\n",
      kClients, kObjects, kPhaseOps);

  std::vector<std::vector<std::string>> rows;
  double best_static = -1.0;

  for (ProtocolKind kind : protocols::kAllProtocols) {
    dsm::SharedMemory memory(memory_options(kind));
    drive([&](NodeId n, ObjectId j) { memory.read(n, j); },
          [&](NodeId n, ObjectId j, std::uint64_t v) {
            memory.write(n, j, v);
          });
    const double acc = memory.average_cost();
    if (best_static < 0.0 || acc < best_static) best_static = acc;
    rows.push_back({std::string("static ") + bench::short_name(kind),
                    strfmt("%.2f", acc), strfmt("%.0f", memory.total_cost()),
                    "-"});
  }

  adaptive::AdaptiveSharedMemory::Options options;
  options.memory = memory_options(ProtocolKind::kWriteThrough);
  options.epoch_ops = 512;
  options.window = 1024;
  adaptive::AdaptiveSharedMemory adaptive_memory(options);
  drive([&](NodeId n, ObjectId j) { adaptive_memory.read(n, j); },
        [&](NodeId n, ObjectId j, std::uint64_t v) {
          adaptive_memory.write(n, j, v);
        });
  const double adaptive_acc = adaptive_memory.memory().average_cost();
  rows.push_back({"adaptive", strfmt("%.2f", adaptive_acc),
                  strfmt("%.0f", adaptive_memory.memory().total_cost()),
                  strfmt("%zu switches", adaptive_memory.switches())});

  std::printf(
      "%s\n",
      render_table({"configuration", "avg cost/op", "total cost", "notes"},
                   rows)
          .c_str());
  std::printf("best static: %.2f; adaptive: %.2f (%s)\n", best_static,
              adaptive_acc,
              adaptive_acc <= best_static * 1.02
                  ? "adaptive matches or beats the best static choice"
                  : "adaptive trails the best static choice on this run");
  return 0;
}
