// Experiment E9 (extension) — the paper's proposed self-tuning classifier:
// "a classifier for the development of adaptive data replication coherence
// protocols with self-tuning capability based on run-time information".
//
// A workload that changes phase (shared-read -> single hot writer ->
// write-contended) is run three ways:
//
//   static P        every static protocol over all three phases — the
//                   cost of committing to one protocol up front;
//   oracle-static   per phase, the cheapest static protocol *for that
//                   phase* (continuing each protocol's state across the
//                   run) — the hindsight bound an online controller
//                   chases;
//   online          the telemetry-driven adaptive memory, reclassifying
//                   from live obs::AccessStats at epoch boundaries.
//
// The acceptance bar (ISSUE 10): online acc within 10% of oracle-static.
// All three are deterministic, so their acc figures are gated bit-exact
// by tools/drsm_bench_diff.  A final phase drives the same shape through
// dsm::ConcurrentSharedMemory under adaptive::OnlineController — real
// client threads, live migrations — and reports throughput and the
// adaptive.migrations / adaptive.reclassify_ms telemetry (wall-clock
// figures, not gated).
#include <cstdio>
#include <thread>

#include "adaptive/online.h"
#include "adaptive/selector.h"
#include "bench_util.h"
#include "check/sharded_oracle.h"
#include "dsm/concurrent.h"
#include "workload/generator.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;

constexpr std::size_t kClients = 4;
constexpr std::size_t kObjects = 4;
constexpr std::size_t kPhaseOps = 20000;
constexpr double kS = 400.0;
constexpr double kP = 30.0;

dsm::SharedMemory::Options memory_options(ProtocolKind kind) {
  dsm::SharedMemory::Options options;
  options.protocol = kind;
  options.num_clients = kClients;
  options.num_objects = kObjects;
  options.costs.s = kS;
  options.costs.p = kP;
  return options;
}

std::vector<workload::WorkloadSpec> phases() {
  return {
      workload::read_disturbance(0.04, 0.3, 3),   // widely shared reads
      workload::ideal_workload(0.8),              // single hot writer
      workload::write_disturbance(0.4, 0.15, 2),  // write contention
  };
}

/// Runs the three phases in sequence; `phase_cost` (sized 3) receives the
/// accumulated cost of each phase as reported by `cost_now`.
template <typename ReadFn, typename WriteFn, typename CostFn>
void drive(ReadFn&& do_read, WriteFn&& do_write, CostFn&& cost_now,
           std::vector<double>& phase_cost) {
  std::uint64_t value = 0;
  std::uint64_t seed = 40;
  std::size_t index = 0;
  for (const auto& phase : phases()) {
    const double before = cost_now();
    workload::GlobalSequenceGenerator gen(phase, ++seed, kObjects);
    for (std::size_t i = 0; i < kPhaseOps; ++i) {
      const auto op = gen.next();
      if (op.op == fsm::OpKind::kWrite)
        do_write(op.node, op.object, ++value);
      else
        do_read(op.node, op.object);
    }
    phase_cost[index++] = cost_now() - before;
  }
}

}  // namespace

int main() {
  const std::size_t total_ops = phases().size() * kPhaseOps;
  std::printf(
      "Adaptive protocol selection on a phase-changing workload\n"
      "(N=%zu clients, M=%zu objects, S=%.0f, P=%.0f; 3 phases x %zu "
      "ops)\n\n",
      kClients, kObjects, kS, kP, kPhaseOps);

  bench::Report report("adaptive");
  std::vector<std::vector<std::string>> rows;

  // -- static protocols, with per-phase cost attribution ---------------------
  report.phase("static");
  double best_static = -1.0;
  const char* best_static_name = "";
  std::vector<double> oracle_phase_cost(phases().size(), -1.0);
  std::vector<std::string> oracle_phase_pick(phases().size());
  for (ProtocolKind kind : protocols::kAllProtocols) {
    dsm::SharedMemory memory(memory_options(kind));
    std::vector<double> phase_cost(phases().size(), 0.0);
    drive([&](NodeId n, ObjectId j) { memory.read(n, j); },
          [&](NodeId n, ObjectId j, std::uint64_t v) {
            memory.write(n, j, v);
          },
          [&] { return memory.total_cost(); }, phase_cost);
    const double acc = memory.average_cost();
    if (best_static < 0.0 || acc < best_static) {
      best_static = acc;
      best_static_name = bench::short_name(kind);
    }
    for (std::size_t p = 0; p < phase_cost.size(); ++p) {
      if (oracle_phase_cost[p] < 0.0 ||
          phase_cost[p] < oracle_phase_cost[p]) {
        oracle_phase_cost[p] = phase_cost[p];
        oracle_phase_pick[p] = bench::short_name(kind);
      }
    }
    auto& row = report.add_result();
    row["configuration"] = std::string("static ") + bench::short_name(kind);
    row["acc"] = acc;
    rows.push_back({std::string("static ") + bench::short_name(kind),
                    strfmt("%.2f", acc), "-"});
  }

  // -- oracle-static: the per-phase hindsight bound --------------------------
  double oracle_cost = 0.0;
  std::string oracle_picks;
  for (std::size_t p = 0; p < oracle_phase_cost.size(); ++p) {
    oracle_cost += oracle_phase_cost[p];
    if (p > 0) oracle_picks += " ";
    oracle_picks += oracle_phase_pick[p];
  }
  const double oracle_acc = oracle_cost / static_cast<double>(total_ops);
  {
    auto& row = report.add_result();
    row["configuration"] = "oracle-static";
    row["acc"] = oracle_acc;
    row["picks"] = oracle_picks;
    rows.push_back(
        {"oracle-static", strfmt("%.2f", oracle_acc), oracle_picks});
  }

  // -- online: telemetry-driven reclassification -----------------------------
  report.phase("online");
  adaptive::AdaptiveSharedMemory::Options options;
  options.memory = memory_options(ProtocolKind::kWriteThrough);
  options.epoch_ops = 128;
  options.window = 256;
  adaptive::AdaptiveSharedMemory adaptive_memory(options);
  std::vector<double> adaptive_phase_cost(phases().size(), 0.0);
  drive([&](NodeId n, ObjectId j) { adaptive_memory.read(n, j); },
        [&](NodeId n, ObjectId j, std::uint64_t v) {
          adaptive_memory.write(n, j, v);
        },
        [&] { return adaptive_memory.memory().total_cost(); },
        adaptive_phase_cost);
  const double online_acc = adaptive_memory.memory().average_cost();
  const double vs_oracle = online_acc / oracle_acc;
  {
    auto& row = report.add_result();
    row["configuration"] = "online";
    row["acc"] = online_acc;
    row["switches"] = static_cast<double>(adaptive_memory.switches());
    row["reclassify_ms"] = adaptive_memory.reclassify_ms();
    rows.push_back({"online", strfmt("%.2f", online_acc),
                    strfmt("%zu switches", adaptive_memory.switches())});
  }

  std::printf("%s\n",
              render_table({"configuration", "avg cost/op", "notes"}, rows)
                  .c_str());
  std::printf(
      "best static: %.2f (%s); oracle-static: %.2f (%s); online: %.2f "
      "(%.1f%% of oracle)\n\n",
      best_static, best_static_name, oracle_acc, oracle_picks.c_str(),
      online_acc, 100.0 * vs_oracle);
  report.root()["online_within_oracle_10pct"] = vs_oracle <= 1.10;

  // -- concurrent: OnlineController migrating a live sharded DSM ------------
  report.phase("concurrent");
  check::ShardedOracle sharded_oracle(2);
  dsm::ConcurrentSharedMemory::Options copts;
  copts.protocol = ProtocolKind::kWriteThrough;
  copts.num_clients = kClients;
  copts.num_objects = kObjects;
  copts.num_shards = 2;
  copts.costs.s = kS;
  copts.costs.p = kP;
  copts.shard_taps = {sharded_oracle.tap(0), sharded_oracle.tap(1)};
  dsm::ConcurrentSharedMemory concurrent(copts);

  adaptive::OnlineController::Options conopts;
  conopts.decide_every = 1024;
  conopts.window = 2048;
  adaptive::OnlineController controller(concurrent, conopts);
  for (std::size_t c = 0; c < kClients; ++c) {
    const NodeId node = static_cast<NodeId>(c);
    concurrent.session(node).set_grant_handler(
        [&controller, node](const sim::ShardGrant& grant) {
          controller.record(node, grant.object, grant.op);
        });
  }
  controller.start();

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto& session = concurrent.session(static_cast<NodeId>(c));
      std::uint64_t seed = 80 + c;
      for (const auto& phase : phases()) {
        // Each thread samples the phase's global sequence and executes
        // the operations belonging to its own node.
        workload::GlobalSequenceGenerator gen(phase, ++seed, kObjects);
        for (std::size_t i = 0; i < 4 * kPhaseOps; ++i) {
          const auto op = gen.next();
          if (op.node != static_cast<NodeId>(c)) continue;
          if (op.op == fsm::OpKind::kWrite)
            session.write_unique(op.object);
          else
            session.read(op.object);
        }
        session.drain();
      }
    });
  }
  for (auto& t : clients) t.join();
  controller.stop();
  concurrent.stop();
  sharded_oracle.finish();

  const auto stats = concurrent.stats();
  auto& live = report.root()["concurrent"];
  live["ops"] = static_cast<double>(stats.ops);
  live["ops_per_sec"] = stats.ops_per_sec();
  live["cost_per_op"] = stats.acc();
  live["migrations"] = static_cast<double>(stats.migrations);
  live["adaptive.records"] = static_cast<double>(controller.records());
  live["adaptive.dropped"] = static_cast<double>(controller.dropped());
  live["adaptive.passes"] = static_cast<double>(controller.passes());
  live["adaptive.migrations"] =
      static_cast<double>(controller.migrations());
  live["adaptive.reclassify_ms"] = controller.reclassify_ms();
  live["oracle_ok"] = sharded_oracle.ok();
  std::printf(
      "concurrent: %llu ops at %.0f ops/s, cost/op %.2f, %llu live "
      "migrations (%llu decision passes, %.2f ms pricing), oracle %s\n",
      static_cast<unsigned long long>(stats.ops), stats.ops_per_sec(),
      stats.acc(),
      static_cast<unsigned long long>(controller.migrations()),
      static_cast<unsigned long long>(controller.passes()),
      controller.reclassify_ms(),
      sharded_oracle.ok() ? "clean" : "VIOLATED");

  report.write();
  return sharded_oracle.ok() && vs_oracle <= 1.10 ? 0 : 1;
}
