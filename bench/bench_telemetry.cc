// Experiment E10 (observability) — live telemetry on a phase-changing
// workload.
//
// Two questions, two phases:
//
//  * phase_change: drive an AdaptiveSharedMemory through an abrupt
//    activity-center move (client 0 dominates every object, then client 1
//    takes over).  The built-in AccessStats telemetry must see it: the
//    drift log records one center move per object, the hot set tracks the
//    EWMA access rates, and classify_object() — the selector's
//    observe-path hook — produces a protocol recommendation per object
//    from nothing but the live per-node mix.
//
//  * sim_stream: attach the same telemetry as an EventSink to a full
//    EventSimulator run (it consumes the kOpIssue stream), proving the
//    sensor needs no cooperation from the workload code, and record the
//    simulator's wall-clock event throughput (sim.events_per_sec).
//
// Report: BENCH_telemetry.json.
#include <cstdio>

#include "adaptive/selector.h"
#include "bench_util.h"
#include "obs/access_stats.h"
#include "workload/generator.h"

namespace {

using namespace drsm;
using protocols::ProtocolKind;

constexpr std::size_t kClients = 3;
constexpr std::size_t kObjects = 8;
constexpr std::size_t kPhaseOps = 4096;

/// A sample space dominated by `center` (reads 0.55 + writes 0.35), with a
/// light read disturbance from the next client over.
workload::WorkloadSpec centered_workload(NodeId center) {
  workload::WorkloadSpec spec;
  spec.name = strfmt("center%u", center);
  const NodeId disturber = (center + 1) % kClients;
  spec.events.push_back({center, fsm::OpKind::kRead, 0.55});
  spec.events.push_back({center, fsm::OpKind::kWrite, 0.35});
  spec.events.push_back({disturber, fsm::OpKind::kRead, 0.10});
  spec.validate();
  return spec;
}

}  // namespace

int main() {
  std::printf("Live telemetry on a phase-changing workload\n"
              "(N=%zu clients, M=%zu objects; 2 phases x %zu ops)\n\n",
              kClients, kObjects, kPhaseOps);
  bench::Report report("telemetry");

  // -- phase_change: activity-center drift through the dsm facade --------
  report.phase("phase_change");
  adaptive::AdaptiveSharedMemory::Options options;
  options.memory.protocol = ProtocolKind::kWriteThrough;
  options.memory.num_clients = kClients;
  options.memory.num_objects = kObjects;
  options.memory.costs.s = 100.0;
  options.memory.costs.p = 30.0;
  adaptive::AdaptiveSharedMemory memory(options);

  std::uint64_t value = 0;
  std::uint64_t seed = 7;
  for (NodeId center : {NodeId{0}, NodeId{1}}) {
    workload::GlobalSequenceGenerator gen(centered_workload(center), ++seed,
                                          kObjects);
    for (std::size_t i = 0; i < kPhaseOps; ++i) {
      const auto op = gen.next();
      if (op.op == fsm::OpKind::kWrite)
        memory.write(op.node, op.object, ++value);
      else
        memory.read(op.node, op.object);
    }
  }

  const obs::AccessStats& telemetry = memory.telemetry();
  adaptive::AdaptiveSelector selector(
      {kClients, options.memory.costs, 1});

  std::vector<std::vector<std::string>> rows;
  auto& objects = report.root()["objects"];
  objects = obs::JsonValue::array();
  for (ObjectId j = 0; j < kObjects; ++j) {
    const auto& stats = telemetry.object(j);
    const auto decision = selector.classify_object(telemetry, j);
    auto& row = objects.push_back(obs::JsonValue::object());
    row["object"] = static_cast<std::size_t>(j);
    row["reads"] = static_cast<double>(stats.reads);
    row["writes"] = static_cast<double>(stats.writes);
    row["rate"] = stats.rate;
    row["center"] = stats.center == kNoNode
                        ? obs::JsonValue()
                        : obs::JsonValue(static_cast<std::size_t>(stats.center));
    row["center_share"] = stats.center_share;
    row["writer_locality"] = stats.writer_locality;
    row["classified_protocol"] = bench::short_name(decision.protocol);
    row["predicted_acc"] = decision.predicted_acc;
    rows.push_back(
        {strfmt("%u", j), strfmt("%llu", (unsigned long long)stats.reads),
         strfmt("%llu", (unsigned long long)stats.writes),
         strfmt("%.1f", stats.rate),
         stats.center == kNoNode ? std::string("-")
                                 : strfmt("%u", stats.center),
         strfmt("%.2f", stats.center_share),
         strfmt("%.2f", stats.writer_locality),
         bench::short_name(decision.protocol)});
  }
  std::printf("%s\n",
              render_table({"object", "reads", "writes", "rate", "center",
                            "share", "w-local", "classified"},
                           rows)
                  .c_str());

  const auto& drifts = telemetry.drift_events();
  std::printf("windows closed: %llu, drift events: %zu, protocol "
              "switches: %zu\n\n",
              (unsigned long long)telemetry.windows(), drifts.size(),
              memory.switches());
  report.root()["telemetry"] = telemetry.to_json(kObjects);
  report.root()["switches"] = memory.switches();

  obs::MetricsRegistry telemetry_metrics;
  telemetry.publish(telemetry_metrics);
  report.root()["telemetry_metrics"] = telemetry_metrics.to_json();

  // -- sim_stream: the same sensor on the event simulator's stream ------
  report.phase("sim_stream");
  obs::AccessStats stream_stats;
  obs::MetricsRegistry sim_metrics;
  sim::SimOptions sim_options;
  sim_options.warmup_ops = 500;
  sim_options.max_ops = 500 + 1500;
  sim_options.seed = 23;
  sim::SystemConfig config{kClients, {100.0, 30.0}, kObjects};
  sim::EventSimulator simulator(ProtocolKind::kWriteOnce, config,
                                sim_options);
  simulator.set_sink(&stream_stats);
  simulator.set_metrics(&sim_metrics);
  workload::ConcurrentDriver driver(workload::read_disturbance(0.3, 0.2, 2),
                                    sim_options.seed ^ 0xBEEF, kObjects);
  const sim::SimStats sim_stats = simulator.run(driver);

  auto& stream = report.root()["sim_stream"];
  stream["accesses_seen"] = static_cast<double>(stream_stats.accesses());
  stream["objects_seen"] = stream_stats.num_objects();
  stream["hot_set"] = stream_stats.to_json(4)["hot_set"];
  const obs::Gauge* eps = sim_metrics.find_gauge("sim.events_per_sec");
  stream["events_per_sec"] = eps == nullptr ? 0.0 : eps->value();
  stream["sim"] = bench::sim_stats_json(sim_stats);
  report.root()["sim_metrics"] = sim_metrics.to_json();
  std::printf("sim_stream: %llu accesses over %zu objects, %.0f events/s\n",
              (unsigned long long)stream_stats.accesses(),
              stream_stats.num_objects(),
              eps == nullptr ? 0.0 : eps->value());

  report.write();
  return 0;
}
