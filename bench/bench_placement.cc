// Extension bench — workload-aware data placement: per-object protocol
// selection from a recorded trace vs the best single protocol.
//
// The paper analyses each shared object independently, which means the
// protocol choice can be made per object; this bench quantifies how much
// that buys on a workload whose objects have opposing sharing patterns.
#include <cstdio>

#include "analytic/predictor.h"
#include "bench_util.h"
#include "dsm/dsm.h"
#include "support/rng.h"
#include "workload/generator.h"

namespace {

using namespace drsm;
using fsm::OpKind;
using protocols::ProtocolKind;

constexpr std::size_t kClients = 4;
constexpr std::size_t kObjects = 6;
constexpr std::size_t kOps = 60000;

/// Six objects spanning the paper's workload archetypes.
workload::OperationTrace make_trace() {
  workload::OperationTrace trace;
  trace.num_clients = kClients;
  trace.num_objects = kObjects;
  Rng rng(2718);
  for (std::size_t i = 0; i < kOps; ++i) {
    const ObjectId object =
        static_cast<ObjectId>(rng.uniform_index(kObjects));
    workload::TraceEntry entry;
    entry.object = object;
    switch (object % 3) {
      case 0:  // private read-write at one client (ideal workload)
        entry.node = static_cast<NodeId>(object % kClients);
        entry.op = rng.bernoulli(0.5) ? OpKind::kWrite : OpKind::kRead;
        break;
      case 1:  // producer/consumers: rare writes, broad reads
        if (rng.bernoulli(0.06)) {
          entry.node = 0;
          entry.op = OpKind::kWrite;
        } else {
          entry.node = static_cast<NodeId>(rng.uniform_index(kClients));
          entry.op = OpKind::kRead;
        }
        break;
      default:  // write-contended: several writers, some reads
        entry.node = static_cast<NodeId>(rng.uniform_index(kClients));
        entry.op = rng.bernoulli(0.55) ? OpKind::kWrite : OpKind::kRead;
        break;
    }
    trace.entries.push_back(entry);
  }
  return trace;
}

double replay(dsm::SharedMemory& memory,
              const workload::OperationTrace& trace) {
  std::uint64_t value = 0;
  std::size_t i = 0;
  for (; i < 4000; ++i) {
    const auto& e = trace.entries[i];
    if (e.op == OpKind::kWrite)
      memory.write(e.node, e.object, ++value);
    else
      memory.read(e.node, e.object);
  }
  memory.reset_counters();
  for (; i < trace.entries.size(); ++i) {
    const auto& e = trace.entries[i];
    if (e.op == OpKind::kWrite)
      memory.write(e.node, e.object, ++value);
    else
      memory.read(e.node, e.object);
  }
  return memory.average_cost();
}

}  // namespace

int main() {
  std::printf(
      "Data placement: %zu objects with mixed sharing archetypes, "
      "%zu clients, S=800, P=15\n\n",
      kObjects, kClients);

  sim::SystemConfig config;
  config.num_clients = kClients;
  config.costs.s = 800.0;
  config.costs.p = 15.0;
  const auto trace = make_trace();
  const auto rec = analytic::recommend_placement(config, trace);

  std::printf("per-object recommendation:\n");
  std::vector<std::vector<std::string>> rows;
  for (ObjectId j = 0; j < kObjects; ++j) {
    const auto p = analytic::predict_from_trace(rec.object_protocol[j],
                                                config, trace);
    rows.push_back({strfmt("%u", j),
                    j % 3 == 0 ? "private" : (j % 3 == 1 ? "producer/"
                                                           "consumers"
                                                         : "contended"),
                    protocols::to_string(rec.object_protocol[j]),
                    strfmt("%.1f", p.object_acc[j])});
  }
  std::printf("%s\n",
              render_table({"object", "archetype", "protocol",
                            "predicted acc"},
                           rows)
                  .c_str());

  // Measure: best uniform protocol vs the recommended placement.
  dsm::SharedMemory::Options options;
  options.num_clients = kClients;
  options.num_objects = kObjects;
  options.costs = config.costs;

  options.protocol = rec.uniform_best;
  dsm::SharedMemory uniform(options);
  const double uniform_measured = replay(uniform, trace);

  dsm::SharedMemory placed(options);
  for (ObjectId j = 0; j < kObjects; ++j)
    placed.switch_protocol(j, rec.object_protocol[j]);
  const double placed_measured = replay(placed, trace);

  std::printf(
      "best uniform protocol: %s — predicted acc %.1f, measured %.1f\n",
      protocols::to_string(rec.uniform_best), rec.uniform_best_acc,
      uniform_measured);
  std::printf(
      "per-object placement:      predicted acc %.1f, measured %.1f "
      "(%.0f%% of uniform)\n",
      rec.acc, placed_measured,
      100.0 * placed_measured / uniform_measured);
  return 0;
}
