// Experiment: model-checker scaling — how far the canonicalized +
// partial-order-reduced engine pushes exhaustive exploration past the
// full-expansion reference.
//
// Three phases:
//
//  * reduction_n2: every protocol at N=2, both engines.  Full expansion
//    is cheap here, so each row records the exact state-space reduction
//    factor and cross-checks that both modes reach the same verdict.
//
//  * reduced_n3: every protocol at N=3 (1 read + 1 write per client),
//    reduced engine only — the configuration that full expansion needs
//    ~300k states for on Berkeley.  Rows record states, states/sec,
//    symmetry hits and POR-pruned siblings.
//
//  * reference_n3: full expansion of write-through at N=3, giving one
//    exact large-configuration reduction factor (the headline ">=10x"
//    number, recorded under root["reduction"]).
//
//  * depth_n4: write-through at N=4 — a depth exhaustively out of reach
//    for the full engine — to show the reduced engine closes it within
//    the default state cap.
//
// "states" is a gated key in tools/drsm_bench_diff: the counts are
// schedule-independent (see src/check/model_checker.h), so any drift in
// a regenerated report is a real exploration change, not noise.
// symmetry_hits is recorded but NOT gated — which orbit member wins the
// visited-set insert race is the one thread-schedule-sensitive count.
//
// Report: BENCH_check.json.
#include <cstdio>

#include "bench_util.h"
#include "check/model_checker.h"
#include "support/error.h"

namespace {

using namespace drsm;
using check::CheckConfig;
using check::CheckResult;

CheckConfig base_config(protocols::ProtocolKind kind, std::size_t clients) {
  CheckConfig config;
  config.protocol = kind;
  config.num_clients = clients;
  config.reads_per_client = 1;
  config.writes_per_client = 1;
  return config;
}

/// One result row: the exploration counts that must reproduce exactly
/// ("states") plus the throughput numbers that may not (wall-clock).
void fill_row(obs::JsonValue& row, protocols::ProtocolKind kind,
              std::size_t clients, const char* mode, const CheckResult& r) {
  row["protocol"] = bench::short_name(kind);
  row["clients"] = clients;
  row["mode"] = mode;
  row["states"] = r.states;
  row["transitions"] = r.transitions;
  row["max_depth"] = r.max_depth;
  row["probes"] = r.probes;
  row["por_pruned"] = r.por_pruned;
  row["symmetry_hits"] = r.symmetry_hits;
  row["states_per_sec"] = r.states_per_sec();
  row["wall_ms"] = r.wall_seconds * 1e3;
  row["ok"] = r.ok();
  DRSM_CHECK(!r.hit_state_cap, "bench configuration hit the state cap");
}

void print_row(protocols::ProtocolKind kind, const CheckResult& r,
               double reduction) {
  std::printf("  %-5s %9zu states %9zu trans  depth %2zu  %8.0f st/s"
              "  sym %7zu  por %7zu",
              bench::short_name(kind), r.states, r.transitions, r.max_depth,
              r.states_per_sec(), r.symmetry_hits, r.por_pruned);
  if (reduction > 0.0) std::printf("  %5.1fx smaller", reduction);
  std::printf("%s\n", r.ok() ? "" : "  VIOLATION");
}

}  // namespace

int main() {
  std::printf("Model-checker scaling: canonicalized + POR engine vs the\n"
              "full-expansion reference (budgets: 1 read + 1 write per "
              "client)\n\n");
  bench::Report report("check");

  // -- reduction_n2: exact reduction factors, verdict cross-check -------
  report.phase("reduction_n2");
  std::printf("N=2, reduced engine (vs full expansion):\n");
  for (protocols::ProtocolKind kind : protocols::kAllProtocols) {
    CheckConfig full = base_config(kind, 2);
    full.expansion = CheckConfig::Expansion::kFullExpansion;
    const CheckResult f = check_protocol(full);
    const CheckResult r = check_protocol(base_config(kind, 2));
    DRSM_CHECK(f.ok() == r.ok(),
               "reduced and full expansion disagree on the verdict");
    auto& row = report.add_result();
    fill_row(row, kind, 2, "reduced", r);
    row["states_full"] = f.states;
    row["reduction"] =
        static_cast<double>(f.states) / static_cast<double>(r.states);
    print_row(kind, r, static_cast<double>(f.states) /
                           static_cast<double>(r.states));
  }

  // -- reduced_n3: the scaled engine on the large configuration ---------
  report.phase("reduced_n3");
  std::printf("\nN=3, reduced engine:\n");
  std::size_t wt3_reduced = 0;
  for (protocols::ProtocolKind kind : protocols::kAllProtocols) {
    const CheckResult r = check_protocol(base_config(kind, 3));
    if (kind == protocols::ProtocolKind::kWriteThrough) wt3_reduced = r.states;
    fill_row(report.add_result(), kind, 3, "reduced", r);
    print_row(kind, r, 0.0);
  }

  // -- reference_n3: one exact large reduction factor (write-through) ---
  report.phase("reference_n3");
  CheckConfig wt_full = base_config(protocols::ProtocolKind::kWriteThrough, 3);
  wt_full.expansion = CheckConfig::Expansion::kFullExpansion;
  const CheckResult wt3_full = check_protocol(wt_full);
  fill_row(report.add_result(), protocols::ProtocolKind::kWriteThrough, 3,
           "full", wt3_full);
  const double factor = static_cast<double>(wt3_full.states) /
                        static_cast<double>(wt3_reduced);
  {
    obs::JsonValue reduction = obs::JsonValue::object();
    reduction["protocol"] = "WT";
    reduction["clients"] = std::size_t{3};
    reduction["states_full"] = wt3_full.states;
    reduction["states_reduced"] = wt3_reduced;
    reduction["factor"] = factor;
    report.root()["reduction"] = std::move(reduction);
  }
  std::printf("\nN=3 write-through full expansion: %zu states -> "
              "reduction factor %.1fx\n",
              wt3_full.states, factor);

  // -- depth_n4: beyond the full engine's reach -------------------------
  report.phase("depth_n4");
  std::printf("\nN=4, reduced engine:\n");
  const CheckResult wt4 =
      check_protocol(base_config(protocols::ProtocolKind::kWriteThrough, 4));
  fill_row(report.add_result(), protocols::ProtocolKind::kWriteThrough, 4,
           "reduced", wt4);
  print_row(protocols::ProtocolKind::kWriteThrough, wt4, 0.0);

  report.write();
  return 0;
}
