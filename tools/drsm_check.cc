// drsm_check: standalone protocol verification driver.
//
// Runs the explicit-state model checker and the property-based coherence
// harness from the command line, printing one summary row per protocol.
// Exits nonzero on any violation; with --trace=FILE the first violation's
// minimal counterexample is written as JSONL (see docs/TESTING.md for how
// to read it).
//
// Usage:
//   drsm_check [--protocol=all|wt|wtv|wo|syn|ill|ber|drg|ff]
//              [--clients=N] [--reads=K] [--writes=K]
//              [--seeds=S] [--ops=OPS] [--no-probes] [--trace=FILE]
//              [--postmortem=FILE] [--threads=T] [--max-states=M]
//              [--full-expansion] [--no-symmetry] [--no-por]
//
// Defaults: all protocols, 2 clients, 1 read + 1 write per client, 25
// property seeds of 150 operations each, reduced exploration (symmetry +
// partial-order reduction) with --threads=0 (auto).  --full-expansion
// switches to the exact reference mode.  --postmortem dumps the first
// violation's counterexample through the flight recorder as a JSONL
// post-mortem (header line + events; see docs/OBSERVABILITY.md).
//
// Exit status: 0 all checks passed and complete, 1 violation found, 2 bad
// invocation, 3 exploration hit the state cap (the verdict is PARTIAL —
// raise --max-states or shrink the configuration).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "check/model_checker.h"
#include "check/property.h"
#include "dsm/migration.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "protocols/protocol.h"
#include "support/error.h"
#include "support/text.h"

namespace {

using namespace drsm;

struct Args {
  std::vector<protocols::ProtocolKind> kinds{protocols::kAllProtocols.begin(),
                                             protocols::kAllProtocols.end()};
  std::size_t clients = 2;
  std::size_t reads = 1;
  std::size_t writes = 1;
  std::size_t seeds = 25;
  std::size_t ops = 150;
  bool probes = true;
  std::size_t threads = 0;  // 0 = ThreadPool::default_threads()
  std::size_t max_states = 0;  // 0 = CheckConfig default
  bool full_expansion = false;
  bool symmetry = true;
  bool por = true;
  std::string trace_path;
  std::string postmortem_path;
  // --migration: check drain/handoff worlds instead of single protocols.
  bool migration = false;
  std::vector<std::pair<protocols::ProtocolKind, protocols::ProtocolKind>>
      pairs;  // empty = the acceptance pairs (wt<->ber, wt<->drg)
  std::size_t trigger = 1;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--protocol=all|NAME] [--clients=N] [--reads=K] "
               "[--writes=K] [--seeds=S] [--ops=OPS] [--no-probes] "
               "[--trace=FILE] [--postmortem=FILE] [--threads=T] "
               "[--max-states=M] [--full-expansion] [--no-symmetry] "
               "[--no-por] [--migration[=FROM:TO|all]] [--trigger=T]\n",
               argv0);
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> std::string {
      return arg.substr(std::string(prefix).size());
    };
    if (arg.rfind("--protocol=", 0) == 0) {
      const std::string name = value("--protocol=");
      if (name != "all")
        args.kinds = {protocols::protocol_from_string(name)};
    } else if (arg.rfind("--clients=", 0) == 0) {
      args.clients = std::stoul(value("--clients="));
    } else if (arg.rfind("--reads=", 0) == 0) {
      args.reads = std::stoul(value("--reads="));
    } else if (arg.rfind("--writes=", 0) == 0) {
      args.writes = std::stoul(value("--writes="));
    } else if (arg.rfind("--seeds=", 0) == 0) {
      args.seeds = std::stoul(value("--seeds="));
    } else if (arg.rfind("--ops=", 0) == 0) {
      args.ops = std::stoul(value("--ops="));
    } else if (arg == "--no-probes") {
      args.probes = false;
    } else if (arg.rfind("--threads=", 0) == 0) {
      args.threads = std::stoul(value("--threads="));
    } else if (arg.rfind("--max-states=", 0) == 0) {
      args.max_states = std::stoul(value("--max-states="));
    } else if (arg == "--full-expansion") {
      args.full_expansion = true;
    } else if (arg == "--no-symmetry") {
      args.symmetry = false;
    } else if (arg == "--no-por") {
      args.por = false;
    } else if (arg.rfind("--trace=", 0) == 0) {
      args.trace_path = value("--trace=");
    } else if (arg.rfind("--postmortem=", 0) == 0) {
      args.postmortem_path = value("--postmortem=");
    } else if (arg == "--migration") {
      args.migration = true;
    } else if (arg.rfind("--migration=", 0) == 0) {
      args.migration = true;
      const std::string spec = value("--migration=");
      if (spec == "all") {
        for (const auto from : protocols::kAllProtocols)
          for (const auto to : protocols::kAllProtocols)
            args.pairs.emplace_back(from, to);
      } else {
        const auto colon = spec.find(':');
        if (colon == std::string::npos) usage(argv[0]);
        args.pairs.emplace_back(
            protocols::protocol_from_string(spec.substr(0, colon)),
            protocols::protocol_from_string(spec.substr(colon + 1)));
      }
    } else if (arg.rfind("--trigger=", 0) == 0) {
      args.trigger = std::stoul(value("--trigger="));
    } else {
      usage(argv[0]);
    }
  }
  return args;
}

void dump_counterexample(const check::CheckResult& result,
                         const std::string& path) {
  obs::TraceRecorder recorder;
  check::export_counterexample(result, recorder);
  recorder.write_jsonl(path);
  std::printf("  counterexample (%zu steps) written to %s\n",
              result.counterexample.size(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) try {
  const Args args = parse(argc, argv);
  bool failed = false;
  bool capped = false;

  if (args.migration) {
    auto pairs = args.pairs;
    if (pairs.empty()) {
      using PK = protocols::ProtocolKind;
      pairs = {{PK::kWriteThrough, PK::kBerkeley},
               {PK::kBerkeley, PK::kWriteThrough},
               {PK::kWriteThrough, PK::kDragon},
               {PK::kDragon, PK::kWriteThrough}};
    }
    std::printf("migration checker: %zu clients, %zu read(s) + %zu "
                "write(s) per client, trigger %zu, %s\n",
                args.clients, args.reads, args.writes, args.trigger,
                args.full_expansion ? "full expansion (reference mode)"
                                    : "reduced (symmetry + POR)");
    for (const auto& [from, to] : pairs) {
      dsm::MigrationWorldOptions opts;
      opts.from = from;
      opts.to = to;
      opts.num_clients = args.clients;
      opts.trigger = args.trigger;
      check::CheckConfig config = dsm::migration_check_config(opts);
      config.reads_per_client = args.reads;
      config.writes_per_client = args.writes;
      config.probe_quiescent_reads = args.probes;
      config.threads = args.threads;
      if (args.max_states > 0) config.max_states = args.max_states;
      if (args.full_expansion)
        config.expansion = check::CheckConfig::Expansion::kFullExpansion;
      config.symmetry_reduction = args.symmetry;
      config.partial_order_reduction = args.por;
      const check::CheckResult result = check::check_protocol(config);
      std::printf("  %-13s-> %-13s %8zu states %9zu transitions depth "
                  "%3zu %8.0f st/s  %s\n",
                  protocols::to_string(from), protocols::to_string(to),
                  result.states, result.transitions, result.max_depth,
                  result.states_per_sec(),
                  result.ok() ? (result.hit_state_cap ? "PARTIAL" : "ok")
                              : "VIOLATION");
      if (result.hit_state_cap) {
        capped = true;
        std::printf("    *** STATE CAP HIT: exploration stopped at %zu "
                    "states — the verdict above is PARTIAL, not a proof. "
                    "***\n",
                    result.states);
      }
      if (!result.ok()) {
        failed = true;
        for (const auto& v : result.violations)
          std::printf("    %s: %s\n", v.invariant, v.detail.c_str());
        if (!args.trace_path.empty())
          dump_counterexample(result, args.trace_path);
        if (!args.postmortem_path.empty()) {
          obs::FlightRecorder recorder;
          check::dump_counterexample(result, recorder,
                                     args.postmortem_path);
          std::printf("  post-mortem written to %s\n",
                      args.postmortem_path.c_str());
        }
      }
    }
    if (failed) return 1;
    if (capped) {
      std::printf("RESULT: PARTIAL — at least one exploration hit its "
                  "state cap; nothing was proved for those "
                  "configurations.\n");
      return 3;
    }
    return 0;
  }

  std::printf("model checker: %zu clients, %zu read(s) + %zu write(s) per "
              "client, probes %s, %s\n",
              args.clients, args.reads, args.writes,
              args.probes ? "on" : "off",
              args.full_expansion ? "full expansion (reference mode)"
                                  : "reduced (symmetry + POR)");
  for (const auto kind : args.kinds) {
    check::CheckConfig config;
    config.protocol = kind;
    config.num_clients = args.clients;
    config.reads_per_client = args.reads;
    config.writes_per_client = args.writes;
    config.probe_quiescent_reads = args.probes;
    config.threads = args.threads;
    if (args.max_states > 0) config.max_states = args.max_states;
    if (args.full_expansion)
      config.expansion = check::CheckConfig::Expansion::kFullExpansion;
    config.symmetry_reduction = args.symmetry;
    config.partial_order_reduction = args.por;
    const check::CheckResult result = check::check_protocol(config);
    std::printf("  %-16s %8zu states %9zu transitions %6zu probes "
                "depth %3zu %8.0f st/s  %s\n",
                protocols::to_string(kind), result.states,
                result.transitions, result.probes, result.max_depth,
                result.states_per_sec(),
                result.ok() ? (result.hit_state_cap ? "PARTIAL" : "ok")
                            : "VIOLATION");
    if (result.symmetry_applied || result.por_applied)
      std::printf("    reductions: %zu symmetry hits, %zu POR-pruned "
                  "siblings, %zu threads%s\n",
                  result.symmetry_hits, result.por_pruned,
                  result.threads_used,
                  result.compact_frontier ? ", compact frontier" : "");
    if (result.hit_state_cap) {
      capped = true;
      std::printf("    *** STATE CAP HIT: exploration stopped at %zu "
                  "states — the verdict above is PARTIAL, not a proof. "
                  "Raise --max-states (current cap %zu) or shrink the "
                  "configuration. ***\n",
                  result.states, config.max_states);
    }
    if (!result.ok()) {
      failed = true;
      for (const auto& v : result.violations)
        std::printf("    %s: %s\n", v.invariant, v.detail.c_str());
      if (!args.trace_path.empty())
        dump_counterexample(result, args.trace_path);
      if (!args.postmortem_path.empty()) {
        obs::FlightRecorder recorder;
        check::dump_counterexample(result, recorder, args.postmortem_path);
        std::printf("  post-mortem written to %s\n",
                    args.postmortem_path.c_str());
      }
    }
  }

  if (args.seeds > 0) {
    std::printf("property harness: %zu seed(s), %zu ops each\n", args.seeds,
                args.ops);
    for (const auto kind : args.kinds) {
      std::size_t bad_seed = 0;
      std::vector<std::string> violations;
      for (std::uint64_t seed = 1; seed <= args.seeds; ++seed) {
        check::PropertyConfig config;
        config.protocol = kind;
        config.seed = seed;
        config.ops = args.ops;
        const auto sim = check::run_simulator_property(config);
        const auto seq = check::run_sequential_property(config);
        if (!sim.ok() || !seq.ok()) {
          bad_seed = seed;
          violations = sim.ok() ? seq.violations : sim.violations;
          break;
        }
      }
      if (bad_seed != 0) {
        failed = true;
        std::printf("  %-16s FAILED at seed %zu\n",
                    protocols::to_string(kind),
                    static_cast<std::size_t>(bad_seed));
        for (const auto& v : violations)
          std::printf("    %s\n", v.c_str());
      } else {
        std::printf("  %-16s ok\n", protocols::to_string(kind));
      }
    }
  }

  if (failed) return 1;
  if (capped) {
    std::printf("RESULT: PARTIAL — at least one exploration hit its state "
                "cap; nothing was proved for those configurations.\n");
    return 3;
  }
  return 0;
} catch (const drsm::Error& e) {
  std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
  return 2;
}
