// drsm_bench_diff: regression gate over BENCH_*.json reports.
//
// Compares a freshly generated report against a committed baseline:
//
//  * accuracy — every numeric acc field (acc, acc_analytic, acc_mean,
//    discrepancy_percent, plus the model checker's "states" counts) in
//    the "results" array must match the baseline bit for bit, in order.
//    The sweeps are deterministic by contract, so
//    any difference is a real behaviour change, not noise.  --acc-tol
//    relaxes this to a relative tolerance when comparing across
//    configurations that are allowed to differ.
//  * wall time — the fresh report's total wall_ms must stay within
//    --max-wall-ratio times the baseline (default 5.0: generous, because
//    bench hosts vary wildly; the gate catches order-of-magnitude
//    regressions, not percent-level ones).  The same ratio limit applies
//    to every phase's wall_ms in the "phases" object, so a regression
//    confined to one phase can't hide inside an otherwise-fast total.
//    Ratio checks are skipped when either side's wall_ms is missing or
//    zero (and, for phases, below --min-phase-ms — sub-millisecond
//    phases are all scheduler noise).
//
// Exit codes: 0 = pass, 1 = usage / I/O / parse error, 2 = accuracy
// mismatch, 3 = wall-time regression.
//
// Usage:
//   drsm_bench_diff --baseline=OLD.json --fresh=NEW.json
//                   [--max-wall-ratio=R] [--acc-tol=T]
//                   [--min-phase-ms=MS] [--quiet]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/json.h"
#include "support/error.h"
#include "support/text.h"

namespace {

using namespace drsm;

struct Args {
  std::string baseline;
  std::string fresh;
  double max_wall_ratio = 5.0;
  double acc_tol = 0.0;       // 0 = bit equality
  double min_phase_ms = 1.0;  // phases faster than this are not gated
  bool quiet = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --baseline=OLD.json --fresh=NEW.json "
               "[--max-wall-ratio=R] [--acc-tol=T] [--min-phase-ms=MS] "
               "[--quiet]\n",
               argv0);
  std::exit(1);
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> std::string {
      return arg.substr(std::string(prefix).size());
    };
    if (arg.rfind("--baseline=", 0) == 0) {
      args.baseline = value("--baseline=");
    } else if (arg.rfind("--fresh=", 0) == 0) {
      args.fresh = value("--fresh=");
    } else if (arg.rfind("--max-wall-ratio=", 0) == 0) {
      args.max_wall_ratio = std::stod(value("--max-wall-ratio="));
    } else if (arg.rfind("--acc-tol=", 0) == 0) {
      args.acc_tol = std::stod(value("--acc-tol="));
    } else if (arg.rfind("--min-phase-ms=", 0) == 0) {
      args.min_phase_ms = std::stod(value("--min-phase-ms="));
    } else if (arg == "--quiet") {
      args.quiet = true;
    } else {
      usage(argv[0]);
    }
  }
  if (args.baseline.empty() || args.fresh.empty()) usage(argv[0]);
  return args;
}

/// One accuracy sample: where it came from plus the value.
struct AccSample {
  std::string where;
  double value = 0.0;
};

bool is_acc_key(const std::string& key) {
  // "states" is the model checker's exhaustive visited-state count
  // (BENCH_check.json): schedule-independent by design, so it is held to
  // the same bit-exact standard as the analytic accuracy figures.
  return key == "acc" || key == "acc_analytic" || key == "acc_mean" ||
         key == "discrepancy_percent" || key == "states";
}

/// Collects the accuracy fields of every object in the report's "results"
/// array, in document order (one level deep plus the nested "sim" block —
/// the schema all benches share).
void collect_acc(const obs::JsonValue& report,
                 std::vector<AccSample>& out) {
  const obs::JsonValue* results = report.find("results");
  if (results == nullptr || !results->is_array()) return;
  for (std::size_t i = 0; i < results->size(); ++i) {
    const obs::JsonValue& row = results->at(i);
    if (!row.is_object()) continue;
    for (std::size_t f = 0; f < row.size(); ++f) {
      const std::string& key = row.key(f);
      const obs::JsonValue& field = row.at(f);
      if (field.is_number() && is_acc_key(key)) {
        out.push_back({strfmt("results[%zu].%s", i, key.c_str()),
                       field.as_number()});
      } else if (key == "sim" && field.is_object()) {
        const obs::JsonValue* acc = field.find("acc");
        if (acc != nullptr && acc->is_number())
          out.push_back({strfmt("results[%zu].sim.acc", i),
                         acc->as_number()});
      }
    }
  }
}

double wall_ms(const obs::JsonValue& report) {
  const obs::JsonValue* wall = report.find("wall_ms");
  return wall == nullptr ? 0.0 : wall->as_number();
}

/// One phase's wall-time comparison (baseline vs fresh, same phase name).
struct PhaseWall {
  std::string name;
  double base_ms = 0.0;
  double fresh_ms = 0.0;
};

/// Pairs up per-phase wall_ms values from both reports' "phases" objects,
/// in baseline document order.  Phases missing on either side (renamed or
/// added — a schema change, not a perf regression) are skipped.
std::vector<PhaseWall> collect_phase_walls(const obs::JsonValue& baseline,
                                           const obs::JsonValue& fresh) {
  std::vector<PhaseWall> out;
  const obs::JsonValue* base_phases = baseline.find("phases");
  const obs::JsonValue* fresh_phases = fresh.find("phases");
  if (base_phases == nullptr || !base_phases->is_object() ||
      fresh_phases == nullptr || !fresh_phases->is_object()) {
    return out;
  }
  for (std::size_t i = 0; i < base_phases->size(); ++i) {
    const std::string& name = base_phases->key(i);
    const obs::JsonValue& base_phase = base_phases->at(i);
    const obs::JsonValue* fresh_phase = fresh_phases->find(name);
    if (!base_phase.is_object() || fresh_phase == nullptr ||
        !fresh_phase->is_object()) {
      continue;
    }
    const obs::JsonValue* base_wall = base_phase.find("wall_ms");
    const obs::JsonValue* fresh_wall = fresh_phase->find("wall_ms");
    if (base_wall == nullptr || !base_wall->is_number() ||
        fresh_wall == nullptr || !fresh_wall->is_number()) {
      continue;
    }
    out.push_back({name, base_wall->as_number(), fresh_wall->as_number()});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) try {
  const Args args = parse(argc, argv);

  obs::JsonValue baseline;
  obs::JsonValue fresh;
  try {
    baseline = obs::parse_json(obs::read_file(args.baseline));
    fresh = obs::parse_json(obs::read_file(args.fresh));
  } catch (const drsm::Error& e) {
    std::fprintf(stderr, "drsm_bench_diff: %s\n", e.what());
    return 1;
  }

  std::vector<AccSample> base_acc;
  std::vector<AccSample> fresh_acc;
  collect_acc(baseline, base_acc);
  collect_acc(fresh, fresh_acc);

  std::size_t mismatches = 0;
  if (base_acc.size() != fresh_acc.size()) {
    std::fprintf(stderr,
                 "FAIL: %zu accuracy samples in baseline, %zu in fresh "
                 "(different result sets)\n",
                 base_acc.size(), fresh_acc.size());
    ++mismatches;
  } else {
    for (std::size_t i = 0; i < base_acc.size(); ++i) {
      const double a = base_acc[i].value;
      const double b = fresh_acc[i].value;
      const bool ok =
          args.acc_tol <= 0.0
              ? a == b
              : std::fabs(a - b) <=
                    args.acc_tol * std::max(1.0, std::fabs(a));
      if (!ok) {
        if (mismatches < 10)
          std::fprintf(stderr, "FAIL: %s: baseline %.17g, fresh %.17g\n",
                       base_acc[i].where.c_str(), a, b);
        ++mismatches;
      }
    }
  }

  const double base_wall = wall_ms(baseline);
  const double fresh_wall = wall_ms(fresh);
  const double ratio =
      base_wall > 0.0 && fresh_wall > 0.0 ? fresh_wall / base_wall : 0.0;
  bool wall_regressed = ratio > args.max_wall_ratio;

  // Per-phase gate: same ratio limit, applied to every phase big enough
  // to measure on both sides.
  const std::vector<PhaseWall> phases = collect_phase_walls(baseline, fresh);
  std::size_t phase_regressions = 0;
  for (const PhaseWall& phase : phases) {
    if (phase.base_ms < args.min_phase_ms || phase.fresh_ms <= 0.0) continue;
    const double phase_ratio = phase.fresh_ms / phase.base_ms;
    if (phase_ratio > args.max_wall_ratio) {
      std::fprintf(stderr,
                   "FAIL: phase %s: baseline %.1f ms, fresh %.1f ms, "
                   "ratio %.2f > %.2f\n",
                   phase.name.c_str(), phase.base_ms, phase.fresh_ms,
                   phase_ratio, args.max_wall_ratio);
      ++phase_regressions;
      wall_regressed = true;
    }
  }

  if (!args.quiet) {
    std::printf("bench diff: %s vs %s\n", args.baseline.c_str(),
                args.fresh.c_str());
    std::printf("  accuracy: %zu samples, %zu mismatch(es)%s\n",
                base_acc.size(), mismatches,
                args.acc_tol > 0.0
                    ? strfmt(" (tol %.3g)", args.acc_tol).c_str()
                    : " (bit equality)");
    if (ratio > 0.0)
      std::printf("  wall: baseline %.0f ms, fresh %.0f ms, ratio %.2f "
                  "(limit %.2f)\n",
                  base_wall, fresh_wall, ratio, args.max_wall_ratio);
    else
      std::printf("  wall: not comparable (missing wall_ms)\n");
    std::printf("  phases: %zu compared, %zu regression(s)\n",
                phases.size(), phase_regressions);
  }

  if (mismatches > 0) {
    std::fprintf(stderr, "drsm_bench_diff: accuracy mismatch\n");
    return 2;
  }
  if (wall_regressed) {
    std::fprintf(stderr,
                 "drsm_bench_diff: wall-time regression (%.2fx > %.2fx)\n",
                 ratio, args.max_wall_ratio);
    return 3;
  }
  if (!args.quiet) std::printf("  PASS\n");
  return 0;
} catch (const drsm::Error& e) {
  std::fprintf(stderr, "drsm_bench_diff: %s\n", e.what());
  return 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "drsm_bench_diff: %s\n", e.what());
  return 1;
}
