// StateInterner: byte-string -> dense index interning for the chain
// enumerator's Markov states.
//
// The original enumerator kept a std::map<std::vector<uint8_t>, uint32_t>,
// paying a full lexicographic key comparison per tree level on every
// transition.  The interner replaces it with an open-addressing hash
// table over 64-bit key hashes: a probe compares one word per slot and
// touches the key bytes only on a hash match (collision verification), so
// the common lookup is O(1) with a single memcmp.  Interned keys are
// stored once, in insertion order, and handed out as dense indices —
// exactly the chain-state numbering the transition table wants.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace drsm::analytic {

class StateInterner {
 public:
  StateInterner();

  /// Returns (index, inserted): the dense index of `key`, inserting it if
  /// unseen.  Indices are assigned 0, 1, 2, ... in first-seen order.
  std::pair<std::uint32_t, bool> intern(const std::vector<std::uint8_t>& key);

  /// The interned key bytes for a dense index.
  const std::vector<std::uint8_t>& key(std::uint32_t index) const {
    return keys_[index];
  }

  std::size_t size() const { return keys_.size(); }

 private:
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;

  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t index = kEmpty;
  };

  void grow();

  std::vector<Slot> slots_;  // power-of-two size
  std::size_t mask_ = 0;     // slots_.size() - 1
  std::vector<std::vector<std::uint8_t>> keys_;  // by dense index
};

}  // namespace drsm::analytic
