#include "analytic/lumped.h"

#include <deque>
#include <map>
#include <tuple>
#include <vector>

#include "analytic/closed_form.h"
#include "linalg/stationary.h"
#include "support/error.h"

namespace drsm::analytic {

namespace {

/// Small helper to assemble and solve a lumped chain.  States are created
/// lazily by key; arcs carry (probability, cost); the solver restricts to
/// the states reachable from the initial one (transient phases included)
/// and returns the stationary expected cost per step.
class LumpedBuilder {
 public:
  using Key = std::tuple<int, int, int>;  // (phase/ac-state, k, spare)

  std::size_t state(int ac, int k, int extra = 0) {
    const Key key{ac, k, extra};
    auto [it, inserted] = index_.emplace(key, index_.size());
    if (inserted) arcs_.emplace_back();
    return it->second;
  }

  void arc(std::size_t from, std::size_t to, double prob, double cost) {
    DRSM_CHECK(prob >= -1e-12, "lumped: negative probability");
    if (prob <= 0.0) return;
    arcs_[from].push_back({to, prob, cost});
  }

  double solve(std::size_t initial) {
    const std::size_t n = arcs_.size();
    // Reachability from the initial state.
    std::vector<std::uint32_t> local(n, UINT32_MAX);
    std::vector<std::size_t> reach;
    std::deque<std::size_t> frontier;
    local[initial] = 0;
    reach.push_back(initial);
    frontier.push_back(initial);
    while (!frontier.empty()) {
      const std::size_t s = frontier.front();
      frontier.pop_front();
      for (const Arc& arc : arcs_[s]) {
        if (local[arc.to] == UINT32_MAX) {
          local[arc.to] = static_cast<std::uint32_t>(reach.size());
          reach.push_back(arc.to);
          frontier.push_back(arc.to);
        }
      }
    }

    std::vector<linalg::Triplet> trip;
    std::vector<double> expected(reach.size(), 0.0);
    for (std::size_t r = 0; r < reach.size(); ++r) {
      double total = 0.0;
      for (const Arc& arc : arcs_[reach[r]]) {
        trip.push_back({r, local[arc.to], arc.prob});
        expected[r] += arc.prob * arc.cost;
        total += arc.prob;
      }
      DRSM_CHECK(std::abs(total - 1.0) < 1e-9,
                 "lumped: state probabilities do not sum to 1");
    }
    linalg::CsrMatrix matrix(reach.size(), reach.size(), std::move(trip));
    const linalg::Vector pi = linalg::stationary_distribution(matrix);
    double acc = 0.0;
    for (std::size_t r = 0; r < reach.size(); ++r)
      acc += pi[r] * expected[r];
    return acc;
  }

 private:
  struct Arc {
    std::size_t to;
    double prob;
    double cost;
  };
  std::map<Key, std::size_t> index_;
  std::vector<std::vector<Arc>> arcs_;
};

struct Params {
  double n;      // N
  double s;      // S
  double pc;     // P
  double p;      // write probability at the activity center
  double sigma;  // per-disturber read probability
  int a;         // number of disturbers
  double r;      // activity-center read probability
};

// Activity-center copy states shared by the invalidate protocols.
enum AcState : int { kI = 0, kV = 1, kR = 2, kD = 3 };

double solve_write_through(const Params& q, bool v_variant) {
  LumpedBuilder b;
  const double write_cost = v_variant ? q.pc + q.n + 2.0 : q.pc + q.n;
  const int write_ac = v_variant ? kV : kI;
  for (int ac : {kI, kV}) {
    for (int k = 0; k <= q.a; ++k) {
      const std::size_t s = b.state(ac, k);
      b.arc(s, b.state(write_ac, 0), q.p, write_cost);
      if (ac == kV)
        b.arc(s, s, q.r, 0.0);
      else
        b.arc(s, b.state(kV, k), q.r, q.s + 2.0);
      b.arc(s, s, k * q.sigma, 0.0);  // valid disturbers re-read
      if (k < q.a)
        b.arc(s, b.state(ac, k + 1), (q.a - k) * q.sigma, q.s + 2.0);
      else
        b.arc(s, s, 0.0, 0.0);
    }
  }
  return b.solve(b.state(kI, 0));
}

double solve_write_once(const Params& q) {
  LumpedBuilder b;
  // Invariant: RESERVED/DIRTY at the center implies no valid disturbers.
  for (int ac : {kI, kV}) {
    for (int k = 0; k <= q.a; ++k) {
      const std::size_t s = b.state(ac, k);
      // Write: from VALID it is a write-through (-> RESERVED); from
      // INVALID an exclusive fetch (-> DIRTY); no owner can exist here.
      if (ac == kV)
        b.arc(s, b.state(kR, 0), q.p, q.pc + q.n + 1.0);
      else
        b.arc(s, b.state(kD, 0), q.p, q.s + q.n + 1.0);
      if (ac == kV)
        b.arc(s, s, q.r, 0.0);
      else
        b.arc(s, b.state(kV, k), q.r, q.s + 2.0);
      b.arc(s, s, k * q.sigma, 0.0);
      if (k < q.a)
        b.arc(s, b.state(ac, k + 1), (q.a - k) * q.sigma, q.s + 2.0);
    }
  }
  for (int ac : {kR, kD}) {
    const std::size_t s = b.state(ac, 0);
    // Local writes: RESERVED silently hardens to DIRTY, DIRTY stays.
    b.arc(s, b.state(kD, 0), q.p, 0.0);
    b.arc(s, s, q.r, 0.0);  // center reads hit
    // A disturber read recalls the copy (clean token from RESERVED, data
    // flush from DIRTY); the center keeps a VALID copy.
    const double recall = ac == kD ? 2.0 * q.s + 4.0 : q.s + 4.0;
    b.arc(s, b.state(kV, 1), q.a * q.sigma, recall);
  }
  return b.solve(b.state(kI, 0));
}

double solve_synapse(const Params& q) {
  LumpedBuilder b;
  for (int ac : {kI, kV}) {
    for (int k = 0; k <= q.a; ++k) {
      const std::size_t s = b.state(ac, k);
      b.arc(s, b.state(kD, 0), q.p, q.s + q.n + 1.0);
      if (ac == kV)
        b.arc(s, s, q.r, 0.0);
      else
        b.arc(s, b.state(kV, k), q.r, q.s + 2.0);
      b.arc(s, s, k * q.sigma, 0.0);
      if (k < q.a)
        b.arc(s, b.state(ac, k + 1), (q.a - k) * q.sigma, q.s + 2.0);
    }
  }
  {
    const std::size_t s = b.state(kD, 0);
    b.arc(s, s, q.p + q.r, 0.0);  // owner reads and writes are free
    // Dirty miss: flush + NACK + retry; the owner's copy is invalidated.
    b.arc(s, b.state(kI, 1), q.a * q.sigma, 2.0 * q.s + 6.0);
  }
  return b.solve(b.state(kI, 0));
}

double solve_illinois(const Params& q) {
  LumpedBuilder b;
  for (int ac : {kI, kV}) {
    for (int k = 0; k <= q.a; ++k) {
      const std::size_t s = b.state(ac, k);
      // Write upgrade: bare-token grant from VALID, data grant from
      // INVALID.
      const double write_cost =
          ac == kV ? q.n + 1.0 : q.s + q.n + 1.0;
      b.arc(s, b.state(kD, 0), q.p, write_cost);
      if (ac == kV)
        b.arc(s, s, q.r, 0.0);
      else
        b.arc(s, b.state(kV, k), q.r, q.s + 2.0);
      b.arc(s, s, k * q.sigma, 0.0);
      if (k < q.a)
        b.arc(s, b.state(ac, k + 1), (q.a - k) * q.sigma, q.s + 2.0);
    }
  }
  {
    const std::size_t s = b.state(kD, 0);
    b.arc(s, s, q.p + q.r, 0.0);
    // Dirty miss: forwarded recall; the old owner keeps a VALID copy.
    b.arc(s, b.state(kV, 1), q.a * q.sigma, 2.0 * q.s + 4.0);
  }
  return b.solve(b.state(kI, 0));
}

double solve_berkeley(const Params& q) {
  LumpedBuilder b;
  // Phase 0: the home node owns.  State key: (phase*4 + center-valid, k).
  // Phase 1: the center owns; DIRTY iff k == 0.
  const int kHomeInvalid = 10, kHomeValid = 11, kCenter = 12;
  for (int ac : {kHomeInvalid, kHomeValid}) {
    for (int k = 0; k <= q.a; ++k) {
      const std::size_t s = b.state(ac, k);
      // Center write migrates ownership: bare transfer from a VALID copy,
      // data transfer from INVALID; then an invalidation broadcast.
      const double migrate =
          ac == kHomeValid ? q.n + 2.0 : q.s + q.n + 2.0;
      b.arc(s, b.state(kCenter, 0), q.p, migrate);
      if (ac == kHomeValid)
        b.arc(s, s, q.r, 0.0);
      else
        b.arc(s, b.state(kHomeValid, k), q.r, q.s + 2.0);
      b.arc(s, s, k * q.sigma, 0.0);
      if (k < q.a)
        b.arc(s, b.state(ac, k + 1), (q.a - k) * q.sigma, q.s + 2.0);
    }
  }
  for (int k = 0; k <= q.a; ++k) {
    const std::size_t s = b.state(kCenter, k);
    // Owner write: free while DIRTY (k == 0), else invalidate broadcast.
    if (k == 0)
      b.arc(s, s, q.p, 0.0);
    else
      b.arc(s, b.state(kCenter, 0), q.p, q.n);
    b.arc(s, s, q.r, 0.0);  // owner reads always hit
    b.arc(s, s, k * q.sigma, 0.0);
    if (k < q.a)
      b.arc(s, b.state(kCenter, k + 1), (q.a - k) * q.sigma, q.s + 2.0);
  }
  return b.solve(b.state(kHomeInvalid, 0));
}

// ---------------------------------------------------------------------------
// Write disturbance.  Disturbers never read, so their copies are INVALID
// except for (at most) the current owner and, in the protocols whose
// recall leaves the flushed copy valid (Write-Once, Illinois), one
// "ex-owner" holding a VALID copy.  The owner's identity within the
// disturber group is exchangeable, so each chain has O(1) states; the
// only distinction that matters is owner-writes-again (probability xi)
// vs another-disturber-writes (probability (a-1)*xi).
// ---------------------------------------------------------------------------

// State tags for the write-disturbance chains.
enum WdState : int {
  kNoneAcI = 0,   // no owner, center INVALID
  kNoneAcV,       // no owner, center VALID
  kNoneAcVExV,    // no owner, center VALID, one ex-owner disturber VALID
  kOwnerAcR,      // center owns, RESERVED (Write-Once)
  kOwnerAc,       // center owns (DIRTY)
  kOwnerDistR,    // a disturber owns, RESERVED (Write-Once)
  kOwnerDist,     // a disturber owns (DIRTY), center INVALID
  kOwnerDistAcV,  // a disturber owns (SHARED-DIRTY), center VALID (Berkeley)
  kHomeAcI,       // home owns (Berkeley start), center INVALID
  kHomeAcV,       // home owns, center VALID
};

struct WdParams {
  double n, s, pc;  // N, S, P
  double p;         // center write probability
  double xi;        // per-disturber write probability
  double a;         // number of disturbers
  double r;         // center read probability = 1 - p - a*xi
};

double solve_wd_write_through(const WdParams& q, bool v_variant) {
  LumpedBuilder b;
  const double w = v_variant ? q.pc + q.n + 2.0 : q.pc + q.n;
  const std::size_t sI = b.state(kNoneAcI, 0), sV = b.state(kNoneAcV, 0);
  const std::size_t after_own_write = v_variant ? sV : sI;
  for (std::size_t s : {sI, sV}) {
    b.arc(s, after_own_write, q.p, w);       // center write
    b.arc(s, sI, q.a * q.xi, w);             // disturber write invalidates
  }
  b.arc(sI, sV, q.r, q.s + 2.0);
  b.arc(sV, sV, q.r, 0.0);
  return b.solve(sI);
}

double solve_wd_write_once(const WdParams& q) {
  LumpedBuilder b;
  const std::size_t none_i = b.state(kNoneAcI, 0);
  const std::size_t none_v = b.state(kNoneAcV, 0);
  const std::size_t none_v_ex = b.state(kNoneAcVExV, 0);
  const std::size_t ac_r = b.state(kOwnerAcR, 0);
  const std::size_t ac_d = b.state(kOwnerAc, 0);
  const std::size_t dist_r = b.state(kOwnerDistR, 0);
  const std::size_t dist_d = b.state(kOwnerDist, 0);

  b.arc(none_i, ac_d, q.p, q.s + q.n + 1.0);   // write miss, no owner
  b.arc(none_i, none_v, q.r, q.s + 2.0);
  b.arc(none_i, dist_d, q.a * q.xi, q.s + q.n + 1.0);

  b.arc(none_v, ac_r, q.p, q.pc + q.n + 1.0);  // write-through
  b.arc(none_v, none_v, q.r, 0.0);
  b.arc(none_v, dist_d, q.a * q.xi, q.s + q.n + 1.0);

  // Ex-owner disturber still VALID: its own write is a write-through.
  b.arc(none_v_ex, ac_r, q.p, q.pc + q.n + 1.0);
  b.arc(none_v_ex, none_v_ex, q.r, 0.0);
  b.arc(none_v_ex, dist_r, q.xi, q.pc + q.n + 1.0);
  b.arc(none_v_ex, dist_d, (q.a - 1.0) * q.xi, q.s + q.n + 1.0);

  b.arc(ac_r, ac_d, q.p, 0.0);  // silent RESERVED -> DIRTY
  b.arc(ac_r, ac_r, q.r, 0.0);
  b.arc(ac_r, dist_d, q.a * q.xi, q.s + q.n + 3.0);  // recall clean

  b.arc(ac_d, ac_d, q.p + q.r, 0.0);
  b.arc(ac_d, dist_d, q.a * q.xi, 2.0 * q.s + q.n + 3.0);  // recall dirty

  b.arc(dist_r, ac_d, q.p, q.s + q.n + 3.0);
  b.arc(dist_r, none_v_ex, q.r, q.s + 4.0);  // read recalls a clean owner
  b.arc(dist_r, dist_d, q.xi, 0.0);          // owner hardens silently
  b.arc(dist_r, dist_d, (q.a - 1.0) * q.xi, q.s + q.n + 3.0);

  b.arc(dist_d, ac_d, q.p, 2.0 * q.s + q.n + 3.0);
  b.arc(dist_d, none_v_ex, q.r, 2.0 * q.s + 4.0);  // flush, owner keeps V
  b.arc(dist_d, dist_d, q.xi, 0.0);
  b.arc(dist_d, dist_d, (q.a - 1.0) * q.xi, 2.0 * q.s + q.n + 3.0);

  return b.solve(none_i);
}

double solve_wd_synapse(const WdParams& q) {
  LumpedBuilder b;
  const std::size_t none_i = b.state(kNoneAcI, 0);
  const std::size_t none_v = b.state(kNoneAcV, 0);
  const std::size_t ac_d = b.state(kOwnerAc, 0);
  const std::size_t dist_d = b.state(kOwnerDist, 0);
  const double acquire = q.s + q.n + 1.0;
  const double steal = 2.0 * q.s + q.n + 5.0;  // recall + NACK + retry

  b.arc(none_i, ac_d, q.p, acquire);
  b.arc(none_i, none_v, q.r, q.s + 2.0);
  b.arc(none_i, dist_d, q.a * q.xi, acquire);

  b.arc(none_v, ac_d, q.p, acquire);
  b.arc(none_v, none_v, q.r, 0.0);
  b.arc(none_v, dist_d, q.a * q.xi, acquire);

  b.arc(ac_d, ac_d, q.p + q.r, 0.0);
  b.arc(ac_d, dist_d, q.a * q.xi, steal);

  b.arc(dist_d, ac_d, q.p, steal);
  b.arc(dist_d, none_v, q.r, 2.0 * q.s + 6.0);  // flush invalidates owner
  b.arc(dist_d, dist_d, q.xi, 0.0);
  b.arc(dist_d, dist_d, (q.a - 1.0) * q.xi, steal);

  return b.solve(none_i);
}

double solve_wd_illinois(const WdParams& q) {
  LumpedBuilder b;
  const std::size_t none_i = b.state(kNoneAcI, 0);
  const std::size_t none_v = b.state(kNoneAcV, 0);
  const std::size_t none_v_ex = b.state(kNoneAcVExV, 0);
  const std::size_t ac_d = b.state(kOwnerAc, 0);
  const std::size_t dist_d = b.state(kOwnerDist, 0);
  const double miss_acquire = q.s + q.n + 1.0;
  const double upgrade = q.n + 1.0;  // bare-token grant from VALID
  const double steal = 2.0 * q.s + q.n + 3.0;

  b.arc(none_i, ac_d, q.p, miss_acquire);
  b.arc(none_i, none_v, q.r, q.s + 2.0);
  b.arc(none_i, dist_d, q.a * q.xi, miss_acquire);

  b.arc(none_v, ac_d, q.p, upgrade);
  b.arc(none_v, none_v, q.r, 0.0);
  b.arc(none_v, dist_d, q.a * q.xi, miss_acquire);

  // Ex-owner disturber still VALID: its write is a bare upgrade.
  b.arc(none_v_ex, ac_d, q.p, upgrade);
  b.arc(none_v_ex, none_v_ex, q.r, 0.0);
  b.arc(none_v_ex, dist_d, q.xi, upgrade);
  b.arc(none_v_ex, dist_d, (q.a - 1.0) * q.xi, miss_acquire);

  b.arc(ac_d, ac_d, q.p + q.r, 0.0);
  b.arc(ac_d, dist_d, q.a * q.xi, steal);

  b.arc(dist_d, ac_d, q.p, steal);
  b.arc(dist_d, none_v_ex, q.r, 2.0 * q.s + 4.0);  // owner keeps VALID
  b.arc(dist_d, dist_d, q.xi, 0.0);
  b.arc(dist_d, dist_d, (q.a - 1.0) * q.xi, steal);

  return b.solve(none_i);
}

double solve_wd_berkeley(const WdParams& q) {
  LumpedBuilder b;
  const std::size_t home_i = b.state(kHomeAcI, 0);
  const std::size_t home_v = b.state(kHomeAcV, 0);
  const std::size_t ac = b.state(kOwnerAc, 0);
  const std::size_t dist_i = b.state(kOwnerDist, 0);
  const std::size_t dist_v = b.state(kOwnerDistAcV, 0);
  const double migrate_data = q.s + q.n + 2.0;  // from an INVALID copy
  const double migrate_token = q.n + 2.0;       // from a VALID copy

  b.arc(home_i, ac, q.p, migrate_data);
  b.arc(home_i, home_v, q.r, q.s + 2.0);
  b.arc(home_i, dist_i, q.a * q.xi, migrate_data);

  b.arc(home_v, ac, q.p, migrate_token);
  b.arc(home_v, home_v, q.r, 0.0);
  b.arc(home_v, dist_i, q.a * q.xi, migrate_data);

  b.arc(ac, ac, q.p + q.r, 0.0);  // owner center: reads and writes free
  b.arc(ac, dist_i, q.a * q.xi, migrate_data);

  b.arc(dist_i, ac, q.p, migrate_data);
  b.arc(dist_i, dist_v, q.r, q.s + 2.0);  // center read, owner -> SD
  b.arc(dist_i, dist_i, q.xi, 0.0);
  b.arc(dist_i, dist_i, (q.a - 1.0) * q.xi, migrate_data);

  b.arc(dist_v, ac, q.p, migrate_token);
  b.arc(dist_v, dist_v, q.r, 0.0);
  b.arc(dist_v, dist_i, q.xi, q.n);  // SD owner re-sharpens: broadcast
  b.arc(dist_v, dist_i, (q.a - 1.0) * q.xi, migrate_data);

  return b.solve(home_i);
}

// ---------------------------------------------------------------------------
// Multiple activity centers: beta exchangeable centers, each writing with
// probability p/beta and reading with (1-p)/beta.  Lumped state: owner
// class (none / a center, with Write-Once's RESERVED distinguished) plus
// the number of centers holding a valid non-owned copy.
// ---------------------------------------------------------------------------

struct MacParams {
  double n, s, pc;
  double beta;
  double w;   // per-center write probability = p / beta
  double rr;  // per-center read probability  = (1-p) / beta
};

// Owner-class tags for the MAC chains (distinct from WdState values).
enum MacOwner : int { kMacNone = 20, kMacR, kMacD, kMacHome };

double solve_mac_write_through(const MacParams& q, bool v_variant) {
  LumpedBuilder b;
  const int beta = static_cast<int>(q.beta);
  for (int k = 0; k <= beta; ++k) {
    const std::size_t s = b.state(kMacNone, k);
    // Any center's write invalidates everyone; WTV keeps the writer valid.
    const double write_cost = v_variant ? q.pc + q.n + 2.0 : q.pc + q.n;
    b.arc(s, b.state(kMacNone, v_variant ? 1 : 0), q.beta * q.w,
          write_cost);
    b.arc(s, s, k * q.rr, 0.0);  // valid centers re-read
    if (k < beta)
      b.arc(s, b.state(kMacNone, k + 1), (q.beta - k) * q.rr, q.s + 2.0);
    else
      b.arc(s, s, 0.0, 0.0);
  }
  return b.solve(b.state(kMacNone, 0));
}

double solve_mac_write_once(const MacParams& q) {
  LumpedBuilder b;
  const int beta = static_cast<int>(q.beta);
  for (int k = 0; k <= beta; ++k) {
    const std::size_t s = b.state(kMacNone, k);
    b.arc(s, b.state(kMacR, 0), k * q.w, q.pc + q.n + 1.0);  // write-through
    b.arc(s, b.state(kMacD, 0), (q.beta - k) * q.w,
          q.s + q.n + 1.0);  // write miss
    b.arc(s, s, k * q.rr, 0.0);
    if (k < beta)
      b.arc(s, b.state(kMacNone, k + 1), (q.beta - k) * q.rr, q.s + 2.0);
  }
  {
    const std::size_t s = b.state(kMacR, 0);
    b.arc(s, b.state(kMacD, 0), q.w, 0.0);  // owner hardens silently
    b.arc(s, b.state(kMacD, 0), (q.beta - 1.0) * q.w, q.s + q.n + 3.0);
    b.arc(s, s, q.rr, 0.0);  // owner reads hit
    // A read recalls the clean owner; reader and ex-owner end up VALID.
    if (beta >= 2)
      b.arc(s, b.state(kMacNone, 2), (q.beta - 1.0) * q.rr, q.s + 4.0);
  }
  {
    const std::size_t s = b.state(kMacD, 0);
    b.arc(s, s, q.w, 0.0);
    b.arc(s, b.state(kMacD, 0), (q.beta - 1.0) * q.w,
          2.0 * q.s + q.n + 3.0);
    b.arc(s, s, q.rr, 0.0);
    if (beta >= 2)
      b.arc(s, b.state(kMacNone, 2), (q.beta - 1.0) * q.rr,
            2.0 * q.s + 4.0);
  }
  return b.solve(b.state(kMacNone, 0));
}

double solve_mac_synapse(const MacParams& q) {
  LumpedBuilder b;
  const int beta = static_cast<int>(q.beta);
  for (int k = 0; k <= beta; ++k) {
    const std::size_t s = b.state(kMacNone, k);
    b.arc(s, b.state(kMacD, 0), q.beta * q.w, q.s + q.n + 1.0);
    b.arc(s, s, k * q.rr, 0.0);
    if (k < beta)
      b.arc(s, b.state(kMacNone, k + 1), (q.beta - k) * q.rr, q.s + 2.0);
  }
  {
    const std::size_t s = b.state(kMacD, 0);
    b.arc(s, s, q.w + q.rr, 0.0);  // owner operations are free
    b.arc(s, b.state(kMacD, 0), (q.beta - 1.0) * q.w,
          2.0 * q.s + q.n + 5.0);
    // Flush invalidates the old owner: only the reader ends up valid.
    if (beta >= 2)
      b.arc(s, b.state(kMacNone, 1), (q.beta - 1.0) * q.rr,
            2.0 * q.s + 6.0);
  }
  return b.solve(b.state(kMacNone, 0));
}

double solve_mac_illinois(const MacParams& q) {
  LumpedBuilder b;
  const int beta = static_cast<int>(q.beta);
  for (int k = 0; k <= beta; ++k) {
    const std::size_t s = b.state(kMacNone, k);
    b.arc(s, b.state(kMacD, 0), k * q.w, q.n + 1.0);  // upgrade in place
    b.arc(s, b.state(kMacD, 0), (q.beta - k) * q.w, q.s + q.n + 1.0);
    b.arc(s, s, k * q.rr, 0.0);
    if (k < beta)
      b.arc(s, b.state(kMacNone, k + 1), (q.beta - k) * q.rr, q.s + 2.0);
  }
  {
    const std::size_t s = b.state(kMacD, 0);
    b.arc(s, s, q.w + q.rr, 0.0);
    b.arc(s, b.state(kMacD, 0), (q.beta - 1.0) * q.w,
          2.0 * q.s + q.n + 3.0);
    // The recalled owner keeps a VALID copy: reader + ex-owner valid.
    if (beta >= 2)
      b.arc(s, b.state(kMacNone, 2), (q.beta - 1.0) * q.rr,
            2.0 * q.s + 4.0);
  }
  return b.solve(b.state(kMacNone, 0));
}

double solve_mac_berkeley(const MacParams& q) {
  LumpedBuilder b;
  const int beta = static_cast<int>(q.beta);
  // Home-owner phase (transient once any center writes).
  for (int k = 0; k <= beta; ++k) {
    const std::size_t s = b.state(kMacHome, k);
    b.arc(s, b.state(kMacD, 0), k * q.w, q.n + 2.0);
    b.arc(s, b.state(kMacD, 0), (q.beta - k) * q.w, q.s + q.n + 2.0);
    b.arc(s, s, k * q.rr, 0.0);
    if (k < beta)
      b.arc(s, b.state(kMacHome, k + 1), (q.beta - k) * q.rr, q.s + 2.0);
  }
  // Center-owner phase: k valid non-owner centers; owner DIRTY iff k == 0.
  for (int k = 0; k + 1 <= beta; ++k) {
    const std::size_t s = b.state(kMacD, k);
    if (k == 0)
      b.arc(s, s, q.w, 0.0);  // exclusive owner writes locally
    else
      b.arc(s, b.state(kMacD, 0), q.w, q.n);  // re-sharpen: broadcast
    b.arc(s, b.state(kMacD, 0), k * q.w, q.n + 2.0);  // valid center steals
    b.arc(s, b.state(kMacD, 0), (q.beta - 1.0 - k) * q.w,
          q.s + q.n + 2.0);  // invalid center steals with data
    b.arc(s, s, (k + 1) * q.rr, 0.0);  // owner + valid centers read free
    if (k + 1 < beta)
      b.arc(s, b.state(kMacD, k + 1), (q.beta - 1.0 - k) * q.rr,
            q.s + 2.0);
  }
  return b.solve(b.state(kMacHome, 0));
}

}  // namespace

double lumped_multiple_ac_acc(protocols::ProtocolKind kind, std::size_t n,
                              double s_cost, double p_cost, double p,
                              std::size_t beta) {
  using protocols::ProtocolKind;
  DRSM_CHECK(beta >= 1, "lumped_multiple_ac_acc: beta must be >= 1");
  DRSM_CHECK(p >= 0.0 && p <= 1.0 + 1e-12,
             "lumped_multiple_ac_acc: p out of [0,1]");
  const double b = static_cast<double>(beta);
  const MacParams q{static_cast<double>(n), s_cost, p_cost, b,
                    p / b,                  (1.0 - p) / b};
  switch (kind) {
    case ProtocolKind::kWriteThrough:
      return solve_mac_write_through(q, /*v_variant=*/false);
    case ProtocolKind::kWriteThroughV:
      return solve_mac_write_through(q, /*v_variant=*/true);
    case ProtocolKind::kWriteOnce:
      return solve_mac_write_once(q);
    case ProtocolKind::kSynapse:
      return solve_mac_synapse(q);
    case ProtocolKind::kIllinois:
      return solve_mac_illinois(q);
    case ProtocolKind::kBerkeley:
      return solve_mac_berkeley(q);
    case ProtocolKind::kDragon:
      return closed_form::dragon_acc(p, n, p_cost);
    case ProtocolKind::kFirefly:
      return closed_form::firefly_acc(p, n, p_cost);
  }
  DRSM_CHECK(false, "unreachable");
  return 0.0;
}

double lumped_write_disturbance_acc(protocols::ProtocolKind kind,
                                    std::size_t n, double s_cost,
                                    double p_cost, double p, double xi,
                                    std::size_t a) {
  using protocols::ProtocolKind;
  if (a == 0) xi = 0.0;  // no disturbers: ideal workload
  const double r = 1.0 - p - static_cast<double>(a) * xi;
  DRSM_CHECK(p >= 0.0 && xi >= 0.0 && r >= -1e-12,
             "lumped_write_disturbance_acc: invalid probabilities");
  const WdParams q{static_cast<double>(n),
                   s_cost,
                   p_cost,
                   p,
                   xi,
                   static_cast<double>(a),
                   std::max(0.0, r)};
  const double total_writes = p + static_cast<double>(a) * xi;
  switch (kind) {
    case ProtocolKind::kWriteThrough:
      return solve_wd_write_through(q, /*v_variant=*/false);
    case ProtocolKind::kWriteThroughV:
      return solve_wd_write_through(q, /*v_variant=*/true);
    case ProtocolKind::kWriteOnce:
      return solve_wd_write_once(q);
    case ProtocolKind::kSynapse:
      return solve_wd_synapse(q);
    case ProtocolKind::kIllinois:
      return solve_wd_illinois(q);
    case ProtocolKind::kBerkeley:
      return solve_wd_berkeley(q);
    case ProtocolKind::kDragon:
      return closed_form::dragon_acc(total_writes, n, p_cost);
    case ProtocolKind::kFirefly:
      return closed_form::firefly_acc(total_writes, n, p_cost);
  }
  DRSM_CHECK(false, "unreachable");
  return 0.0;
}

double lumped_read_disturbance_acc(protocols::ProtocolKind kind,
                                   std::size_t n, double s_cost,
                                   double p_cost, double p, double sigma,
                                   std::size_t a) {
  using protocols::ProtocolKind;
  const double r = 1.0 - p - static_cast<double>(a) * sigma;
  DRSM_CHECK(p >= 0.0 && sigma >= 0.0 && r >= -1e-12,
             "lumped_read_disturbance_acc: invalid probabilities");
  const Params q{static_cast<double>(n), s_cost,
                 p_cost,                 p,
                 sigma,                  static_cast<int>(a),
                 std::max(0.0, r)};
  switch (kind) {
    case ProtocolKind::kWriteThrough:
      return solve_write_through(q, /*v_variant=*/false);
    case ProtocolKind::kWriteThroughV:
      return solve_write_through(q, /*v_variant=*/true);
    case ProtocolKind::kWriteOnce:
      return solve_write_once(q);
    case ProtocolKind::kSynapse:
      return solve_synapse(q);
    case ProtocolKind::kIllinois:
      return solve_illinois(q);
    case ProtocolKind::kBerkeley:
      return solve_berkeley(q);
    case ProtocolKind::kDragon:
      return closed_form::dragon_acc(p, n, p_cost);
    case ProtocolKind::kFirefly:
      return closed_form::firefly_acc(p, n, p_cost);
  }
  DRSM_CHECK(false, "unreachable");
  return 0.0;
}

}  // namespace drsm::analytic
