// Exact lumped chains for the read-disturbance family.
//
// The generic ProtocolChain enumerates the full product state space, which
// is exponential in the number of disturbing clients `a` (2^a disturber
// configurations).  Under the paper's homogeneous read disturbance the
// disturbers are exchangeable, so the chain lumps exactly: the global
// state reduces to (activity-center copy state, number of disturbers with
// a valid copy), giving O(a) states.  This module hand-derives that lumped
// chain for each protocol — the same reduction the paper applies implicitly
// when it writes acc as a function of a — and solves it exactly.
//
// Validated against the generic engine for small `a` in the test suite;
// usable for a in the thousands.
#pragma once

#include <cstddef>

#include "protocols/protocol.h"

namespace drsm::analytic {

/// Exact steady-state acc of `kind` under read disturbance with activity
/// center write probability p, per-disturber read probability sigma, and
/// `a` disturbing clients, in an N-client system with costs S and P.
/// Equivalent to ProtocolChain over workload::read_disturbance(p, sigma, a)
/// but with O(a) states instead of O(2^a).
double lumped_read_disturbance_acc(protocols::ProtocolKind kind,
                                   std::size_t n, double s_cost,
                                   double p_cost, double p, double sigma,
                                   std::size_t a);

/// Exact steady-state acc under write disturbance (per-disturber write
/// probability xi).  Disturbers never read, so they hold at most the owned
/// copy: the lumped state reduces to (owner class, activity-center state,
/// ex-owner residue), a handful of states regardless of `a`.  Equivalent
/// to ProtocolChain over workload::write_disturbance(p, xi, a).
double lumped_write_disturbance_acc(protocols::ProtocolKind kind,
                                    std::size_t n, double s_cost,
                                    double p_cost, double p, double xi,
                                    std::size_t a);

/// Exact steady-state acc with beta homogeneous activity centers (total
/// write probability p, eqn (5)'s deviation).  The centers are
/// exchangeable, so the lumped state is (owner class, number of valid
/// non-owner centers): O(beta) states.  Equivalent to ProtocolChain over
/// workload::multiple_activity_centers(p, beta).
double lumped_multiple_ac_acc(protocols::ProtocolKind kind, std::size_t n,
                              double s_cost, double p_cost, double p,
                              std::size_t beta);

}  // namespace drsm::analytic
