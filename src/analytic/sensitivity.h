// Sensitivity analysis of the steady-state cost model: how much does acc
// move per unit change of each model parameter (Table 5), and which
// parameter dominates a given operating point?
//
// The paper motivates its model with "eventual fine tuning of the
// computation behavior"; these helpers make the tuning directions
// explicit.  Derivatives are central finite differences on the exact
// analytic model, so they apply uniformly to all eight protocols (no
// per-protocol closed form needed).
#pragma once

#include "analytic/solver.h"

namespace drsm::analytic {

/// Which deviation family a sensitivity query refers to.
enum class Deviation { kReadDisturbance, kWriteDisturbance };

/// Partial derivatives of acc at an operating point of the read/write
/// disturbance families.
struct Sensitivity {
  double wrt_p = 0.0;            // d acc / d p (activity-center writes)
  double wrt_disturbance = 0.0;  // d acc / d sigma (or d xi)
  double wrt_s = 0.0;            // d acc / d S (object transfer cost)
  double wrt_p_cost = 0.0;       // d acc / d P (write-parameter cost)
};

struct OperatingPoint {
  Deviation deviation = Deviation::kReadDisturbance;
  double p = 0.3;
  double disturbance = 0.1;  // sigma or xi
  std::size_t a = 2;
};

/// Central-difference gradient of acc for `kind` at the operating point.
/// `config` supplies N, S, P.  Steps are chosen relative to each
/// parameter's scale; probability steps are clipped to the feasible
/// simplex (p + a*disturbance <= 1).
Sensitivity acc_sensitivity(protocols::ProtocolKind kind,
                            const sim::SystemConfig& config,
                            const OperatingPoint& point);

/// Elasticity (relative sensitivity): (x / acc) * d acc / d x, with zero
/// returned where acc vanishes.  Useful for comparing parameters with
/// different units.
Sensitivity acc_elasticity(protocols::ProtocolKind kind,
                           const sim::SystemConfig& config,
                           const OperatingPoint& point);

}  // namespace drsm::analytic
