#include "analytic/chain.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>

#include "linalg/batch.h"
#include "linalg/sparse.h"
#include "support/error.h"

namespace drsm::analytic {

using sim::SequentialRuntime;

ProtocolChain::ProtocolChain(protocols::ProtocolKind kind,
                             const sim::SystemConfig& config,
                             const workload::WorkloadSpec& spec)
    : events_(spec.events) {
  DRSM_CHECK(!events_.empty(), "chain needs a non-empty sample space");
  // Both clients and the sequencer (node N) may issue operations; the
  // sequencer's traces are the paper's tr5/tr6.
  for (const auto& e : events_)
    DRSM_CHECK(e.node <= config.num_clients,
               "chain event node out of range");

  std::vector<NodeId> roster;
  for (NodeId node : spec.roster())
    if (node < config.num_clients) roster.push_back(node);
  SequentialRuntime initial(kind, config, std::move(roster));

  std::vector<std::uint8_t> key;
  initial.encode_state(key);
  states_.intern(key);

  // Probe whether every machine supports decode(): if so, one scratch
  // runtime re-materialized from state keys replaces a deep runtime copy
  // per transition.
  SequentialRuntime scratch(initial);
  const bool restorable = scratch.restore_state(states_.key(0));

  std::deque<std::uint32_t> frontier;
  std::vector<SequentialRuntime> snapshots;  // fallback path only
  if (!restorable) snapshots.push_back(initial);
  frontier.push_back(0);

  std::uint64_t value_counter = 0;
  while (!frontier.empty()) {
    const std::uint32_t s = frontier.front();
    frontier.pop_front();
    if (transitions_.size() <= s) transitions_.resize(s + 1);
    transitions_[s].resize(events_.size());
    for (std::size_t e = 0; e < events_.size(); ++e) {
      sim::OpResult result;
      if (restorable) {
        DRSM_CHECK(scratch.restore_state(states_.key(s)),
                   "chain: state key failed to restore");
        result = scratch.execute(events_[e].node, events_[e].op,
                                 ++value_counter);
        scratch.encode_state(key);
      } else {
        SequentialRuntime next = snapshots[s];
        result = next.execute(events_[e].node, events_[e].op,
                              ++value_counter);
        next.encode_state(key);
        const auto [index, inserted] = states_.intern(key);
        if (inserted) {
          frontier.push_back(index);
          snapshots.push_back(std::move(next));
        }
        transitions_[s][e] = Transition{index, result.cost};
        continue;
      }
      const auto [index, inserted] = states_.intern(key);
      if (inserted) frontier.push_back(index);
      transitions_[s][e] = Transition{index, result.cost};
    }
  }
  transitions_.resize(states_.size());
  for (auto& row : transitions_)
    if (row.size() != events_.size()) row.resize(events_.size());
}

const std::vector<std::uint8_t>& ProtocolChain::state_key(
    std::size_t state) const {
  DRSM_CHECK(state < states_.size(), "state out of range");
  return states_.key(static_cast<std::uint32_t>(state));
}

const ProtocolChain::Transition& ProtocolChain::transition(
    std::size_t state, std::size_t event) const {
  DRSM_CHECK(state < transitions_.size(), "state out of range");
  DRSM_CHECK(event < events_.size(), "event out of range");
  return transitions_[state][event];
}

ProtocolChain::SolveResult ProtocolChain::solve(
    const std::vector<double>& probs) const {
  DRSM_CHECK(probs.size() == events_.size(),
             "probability vector does not match the sample space");
  double sum = 0.0;
  for (double p : probs) {
    DRSM_CHECK(p >= -1e-12, "negative event probability");
    sum += p;
  }
  DRSM_CHECK(std::fabs(sum - 1.0) < 1e-9, "probabilities must sum to 1");

  // Restrict to states reachable through positive-probability events; the
  // full enumeration may contain states only reachable via events that are
  // switched off in this assignment.
  std::vector<std::uint32_t> reach;
  std::vector<std::uint32_t> local(transitions_.size(), UINT32_MAX);
  std::deque<std::uint32_t> frontier;
  reach.push_back(0);
  local[0] = 0;
  frontier.push_back(0);
  while (!frontier.empty()) {
    const std::uint32_t s = frontier.front();
    frontier.pop_front();
    for (std::size_t e = 0; e < events_.size(); ++e) {
      if (probs[e] <= 0.0) continue;
      const std::uint32_t t = transitions_[s][e].next;
      if (local[t] == UINT32_MAX) {
        local[t] = static_cast<std::uint32_t>(reach.size());
        reach.push_back(t);
        frontier.push_back(t);
      }
    }
  }

  const std::size_t n = reach.size();
  std::vector<linalg::Triplet> trip;
  trip.reserve(n * events_.size());
  for (std::size_t r = 0; r < n; ++r) {
    const std::uint32_t s = reach[r];
    for (std::size_t e = 0; e < events_.size(); ++e) {
      if (probs[e] <= 0.0) continue;
      trip.push_back({r, local[transitions_[s][e].next], probs[e]});
    }
  }
  linalg::CsrMatrix p_matrix(n, n, std::move(trip));
  linalg::check_stochastic(p_matrix);

  SolveResult out;
  out.reachable = std::move(reach);
  linalg::StationaryOptions solver_options;
  linalg::SolveStats solve_stats;
  solver_options.stats = &solve_stats;

  // Warm-start the power iteration from the last stationary vector solved
  // for the same positive-probability mask (the reachable set and its
  // ordering depend only on the mask, so the vectors align).  The direct
  // solver ignores the seed.
  std::vector<std::uint8_t> mask(events_.size());
  for (std::size_t e = 0; e < events_.size(); ++e)
    mask[e] = probs[e] > 0.0 ? 1 : 0;
  linalg::Vector warm;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = warm_pi_.find(mask);
    if (it != warm_pi_.end() && it->second.size() == n) warm = it->second;
  }
  if (!warm.empty()) solver_options.initial = &warm;

  out.pi = linalg::stationary_distribution(p_matrix, solver_options);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    warm_pi_[mask] = out.pi;
    ++telemetry_.solves;
    telemetry_.power_iterations += solve_stats.iterations;
    if (solve_stats.warm_started) ++telemetry_.warm_starts;
    telemetry_.last = solve_stats;
  }
  return out;
}

std::vector<double> ProtocolChain::average_cost_batch(
    const std::vector<std::vector<double>>& probs_list,
    BatchTelemetry* batch_out) const {
  BatchTelemetry tel;
  tel.lanes = probs_list.size();

  // Validate every lane with the scalar solve()'s checks, then group the
  // lanes by positive-probability mask — the reachable set, the transition
  // structure and the CSR assembly order are pure functions of the mask.
  std::map<std::vector<std::uint8_t>, std::vector<std::size_t>> groups;
  std::vector<std::uint8_t> mask(events_.size());
  for (std::size_t lane = 0; lane < probs_list.size(); ++lane) {
    const std::vector<double>& probs = probs_list[lane];
    DRSM_CHECK(probs.size() == events_.size(),
               "probability vector does not match the sample space");
    double sum = 0.0;
    for (double p : probs) {
      DRSM_CHECK(p >= -1e-12, "negative event probability");
      sum += p;
    }
    DRSM_CHECK(std::fabs(sum - 1.0) < 1e-9, "probabilities must sum to 1");
    for (std::size_t e = 0; e < events_.size(); ++e)
      mask[e] = probs[e] > 0.0 ? 1 : 0;
    groups[mask].push_back(lane);
  }
  tel.groups = groups.size();

  std::vector<double> acc(probs_list.size(), 0.0);
  for (const auto& [group_mask, lanes] : groups) {
    // Reachability under this mask — the scalar solve()'s BFS.
    std::vector<std::uint32_t> reach;
    std::vector<std::uint32_t> local(transitions_.size(), UINT32_MAX);
    std::deque<std::uint32_t> frontier;
    reach.push_back(0);
    local[0] = 0;
    frontier.push_back(0);
    while (!frontier.empty()) {
      const std::uint32_t s = frontier.front();
      frontier.pop_front();
      for (std::size_t e = 0; e < events_.size(); ++e) {
        if (!group_mask[e]) continue;
        const std::uint32_t t = transitions_[s][e].next;
        if (local[t] == UINT32_MAX) {
          local[t] = static_cast<std::uint32_t>(reach.size());
          reach.push_back(t);
          frontier.push_back(t);
        }
      }
    }
    const std::size_t n = reach.size();
    tel.max_states = std::max(tel.max_states, n);

    // Emit the triplet sequence once with the emission index as payload
    // and sort it with CsrMatrix's comparator.  std::sort's permutation is
    // a pure function of the comparator outcomes, and the (row, col) key
    // sequence is identical for every lane of the group, so the sorted
    // emission order reproduces — duplicate by duplicate, addend by addend
    // — the summation order CsrMatrix applies to each lane's values.
    std::vector<linalg::Triplet> trip;
    std::vector<std::uint32_t> emission_event;  // event id per emission
    trip.reserve(n * events_.size());
    for (std::size_t r = 0; r < n; ++r) {
      const std::uint32_t s = reach[r];
      for (std::size_t e = 0; e < events_.size(); ++e) {
        if (!group_mask[e]) continue;
        trip.push_back({r, local[transitions_[s][e].next],
                        static_cast<double>(emission_event.size())});
        emission_event.push_back(static_cast<std::uint32_t>(e));
      }
    }
    std::sort(trip.begin(), trip.end(),
              [](const linalg::Triplet& a, const linalg::Triplet& b) {
                return a.row != b.row ? a.row < b.row : a.col < b.col;
              });

    // Deduplicate into the shared pattern plus a flattened sum schedule:
    // nonzero k sums the emissions sum_src[sum_ptr[k] .. sum_ptr[k+1])
    // left to right, exactly the scalar constructor's loop.
    linalg::CsrPattern pattern;
    pattern.rows = pattern.cols = n;
    pattern.row_ptr.assign(n + 1, 0);
    std::vector<std::size_t> sum_ptr = {0};
    std::vector<std::uint32_t> sum_src;
    sum_src.reserve(trip.size());
    for (std::size_t i = 0; i < trip.size();) {
      std::size_t j = i;
      while (j < trip.size() && trip[j].row == trip[i].row &&
             trip[j].col == trip[i].col) {
        sum_src.push_back(static_cast<std::uint32_t>(trip[j].value));
        ++j;
      }
      pattern.col_idx.push_back(trip[i].col);
      sum_ptr.push_back(sum_src.size());
      ++pattern.row_ptr[trip[i].row + 1];
      i = j;
    }
    for (std::size_t r = 0; r < n; ++r)
      pattern.row_ptr[r + 1] += pattern.row_ptr[r];

    // Fill the lane-major SoA value block.
    const std::size_t lane_count = lanes.size();
    const std::size_t nnz = pattern.nonzeros();
    std::vector<double> values(nnz * lane_count);
    for (std::size_t li = 0; li < lane_count; ++li) {
      const std::vector<double>& probs = probs_list[lanes[li]];
      for (std::size_t k = 0; k < nnz; ++k) {
        double sum = 0.0;
        for (std::size_t s = sum_ptr[k]; s < sum_ptr[k + 1]; ++s)
          sum += probs[emission_event[sum_src[s]]];
        values[k * lane_count + li] = sum;
      }
    }
    linalg::check_stochastic_batch(pattern, values, lane_count);

    linalg::StationaryOptions solver_options;  // scalar defaults, cold start
    linalg::BatchSolveStats stats;
    const std::vector<linalg::Vector> pis = linalg::batched_stationary(
        pattern, values, lane_count, solver_options, &stats);
    if (stats.direct)
      tel.direct_lanes += lane_count;
    else
      tel.power_iterations += stats.total_iterations;

    // Per-lane acc in the scalar average_cost loop order.
    for (std::size_t li = 0; li < lane_count; ++li) {
      const std::vector<double>& probs = probs_list[lanes[li]];
      const linalg::Vector& pi = pis[li];
      double lane_acc = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        const std::uint32_t s = reach[r];
        double expected = 0.0;
        for (std::size_t e = 0; e < events_.size(); ++e) {
          if (probs[e] <= 0.0) continue;
          expected += probs[e] * transitions_[s][e].cost;
        }
        lane_acc += pi[r] * expected;
      }
      acc[lanes[li]] = lane_acc;
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      telemetry_.solves += lane_count;
      telemetry_.power_iterations += stats.total_iterations;
      telemetry_.last = {.states = n,
                         .iterations = stats.max_iterations,
                         .residual = 0.0,
                         .direct = stats.direct,
                         .warm_started = false};
    }
  }
  if (batch_out != nullptr) *batch_out = tel;
  return acc;
}

double ProtocolChain::average_cost(const std::vector<double>& probs) const {
  const SolveResult sol = solve(probs);
  double acc = 0.0;
  for (std::size_t r = 0; r < sol.reachable.size(); ++r) {
    const std::uint32_t s = sol.reachable[r];
    double expected = 0.0;
    for (std::size_t e = 0; e < events_.size(); ++e) {
      if (probs[e] <= 0.0) continue;
      expected += probs[e] * transitions_[s][e].cost;
    }
    acc += sol.pi[r] * expected;
  }
  return acc;
}

double ProtocolChain::average_cost() const {
  std::vector<double> probs;
  probs.reserve(events_.size());
  for (const auto& e : events_) probs.push_back(e.probability);
  return average_cost(probs);
}

double ProtocolChain::cost_variance(
    const std::vector<double>& probs) const {
  const SolveResult sol = solve(probs);
  double mean = 0.0, second = 0.0;
  for (std::size_t r = 0; r < sol.reachable.size(); ++r) {
    const std::uint32_t s = sol.reachable[r];
    for (std::size_t e = 0; e < events_.size(); ++e) {
      if (probs[e] <= 0.0) continue;
      const double w = sol.pi[r] * probs[e];
      const double c = transitions_[s][e].cost;
      mean += w * c;
      second += w * c * c;
    }
  }
  return std::max(0.0, second - mean * mean);
}

std::vector<double> ProtocolChain::event_cost_shares(
    const std::vector<double>& probs) const {
  const SolveResult sol = solve(probs);
  std::vector<double> shares(events_.size(), 0.0);
  for (std::size_t r = 0; r < sol.reachable.size(); ++r) {
    const std::uint32_t s = sol.reachable[r];
    for (std::size_t e = 0; e < events_.size(); ++e) {
      if (probs[e] <= 0.0) continue;
      shares[e] += sol.pi[r] * probs[e] * transitions_[s][e].cost;
    }
  }
  return shares;
}

std::vector<double> ProtocolChain::transient_costs(
    const std::vector<double>& probs, std::size_t ops) const {
  DRSM_CHECK(probs.size() == events_.size(),
             "probability vector does not match the sample space");
  // Expected cost of one operation from each state.
  std::vector<double> step_cost(transitions_.size(), 0.0);
  for (std::size_t s = 0; s < transitions_.size(); ++s)
    for (std::size_t e = 0; e < events_.size(); ++e)
      if (probs[e] > 0.0) step_cost[s] += probs[e] * transitions_[s][e].cost;

  std::vector<double> distribution(transitions_.size(), 0.0);
  distribution[0] = 1.0;  // the cold initial state
  std::vector<double> out;
  out.reserve(ops);
  for (std::size_t k = 0; k < ops; ++k) {
    double expected = 0.0;
    for (std::size_t s = 0; s < transitions_.size(); ++s)
      if (distribution[s] > 0.0) expected += distribution[s] * step_cost[s];
    out.push_back(expected);
    // distribution <- distribution * P.
    std::vector<double> next(transitions_.size(), 0.0);
    for (std::size_t s = 0; s < transitions_.size(); ++s) {
      if (distribution[s] <= 0.0) continue;
      for (std::size_t e = 0; e < events_.size(); ++e)
        if (probs[e] > 0.0)
          next[transitions_[s][e].next] += distribution[s] * probs[e];
    }
    distribution = std::move(next);
  }
  return out;
}

std::size_t ProtocolChain::warmup_length(const std::vector<double>& probs,
                                         double tolerance,
                                         std::size_t max_ops) const {
  const double steady = average_cost(probs);
  const double band = std::max(tolerance * std::fabs(steady), 1e-12);

  std::vector<double> step_cost(transitions_.size(), 0.0);
  for (std::size_t s = 0; s < transitions_.size(); ++s)
    for (std::size_t e = 0; e < events_.size(); ++e)
      if (probs[e] > 0.0) step_cost[s] += probs[e] * transitions_[s][e].cost;

  std::vector<double> distribution(transitions_.size(), 0.0);
  distribution[0] = 1.0;
  for (std::size_t k = 0; k < max_ops; ++k) {
    double expected = 0.0;
    for (std::size_t s = 0; s < transitions_.size(); ++s)
      if (distribution[s] > 0.0) expected += distribution[s] * step_cost[s];
    if (std::fabs(expected - steady) <= band) return k;
    std::vector<double> next(transitions_.size(), 0.0);
    for (std::size_t s = 0; s < transitions_.size(); ++s) {
      if (distribution[s] <= 0.0) continue;
      for (std::size_t e = 0; e < events_.size(); ++e)
        if (probs[e] > 0.0)
          next[transitions_[s][e].next] += distribution[s] * probs[e];
    }
    distribution = std::move(next);
  }
  return max_ops;
}

linalg::Vector ProtocolChain::stationary(
    const std::vector<double>& probs) const {
  const SolveResult sol = solve(probs);
  linalg::Vector pi(transitions_.size(), 0.0);
  for (std::size_t r = 0; r < sol.reachable.size(); ++r)
    pi[sol.reachable[r]] = sol.pi[r];
  return pi;
}

}  // namespace drsm::analytic
