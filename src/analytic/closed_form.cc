#include "analytic/closed_form.h"

#include <cmath>

#include "support/error.h"

namespace drsm::analytic::closed_form {

using protocols::ProtocolKind;

namespace {

void check_probability(double value, const char* what) {
  DRSM_CHECK(value >= -1e-12 && value <= 1.0 + 1e-12,
             std::string(what) + " out of [0,1]");
}

/// 0/0 guards: returns num/den, or `fallback` when den vanishes.
double ratio(double num, double den, double fallback = 0.0) {
  return std::fabs(den) < 1e-300 ? fallback : num / den;
}

}  // namespace

WtTraceProbabilities wt_trace_probabilities_read_disturbance(double p,
                                                             double sigma,
                                                             std::size_t a) {
  check_probability(p, "p");
  check_probability(sigma, "sigma");
  const double as = static_cast<double>(a) * sigma;
  const double ar = 1.0 - p - as;  // activity-center read probability
  DRSM_CHECK(ar >= -1e-12, "p + a*sigma exceeds 1");

  WtTraceProbabilities out;
  out.pi1 = ratio(ar * ar, 1.0 - as) +
            static_cast<double>(a) * ratio(sigma * sigma, p + sigma);
  out.pi2 = ratio(p * ar, 1.0 - as) +
            static_cast<double>(a) * ratio(sigma * p, p + sigma);
  out.pi3 = ratio(p * ar, 1.0 - as);
  out.pi4 = ratio(p * p, 1.0 - as);
  return out;
}

WtTraceProbabilities wt_trace_probabilities_write_disturbance(double p,
                                                              double xi,
                                                              std::size_t a) {
  check_probability(p, "p");
  check_probability(xi, "xi");
  const double ax = static_cast<double>(a) * xi;
  const double ar = 1.0 - p - ax;
  DRSM_CHECK(ar >= -1e-12, "p + a*xi exceeds 1");

  WtTraceProbabilities out;
  out.pi1 = ar * ar;
  out.pi2 = (p + ax) * ar;
  out.pi3 = p * ar;
  out.pi4 = p * (p + ax) + ax;
  return out;
}

WtTraceProbabilities wt_trace_probabilities_multiple_ac(double p,
                                                        std::size_t beta) {
  check_probability(p, "p");
  DRSM_CHECK(beta >= 1, "beta must be >= 1");
  const double b = static_cast<double>(beta);
  const double d = 1.0 + (b - 1.0) * p;

  WtTraceProbabilities out;
  out.pi1 = (1.0 - p) * (1.0 - p) / d;
  out.pi2 = b * p * (1.0 - p) / d;
  out.pi3 = p * (1.0 - p) / d;
  out.pi4 = b * p * p / d;
  return out;
}

double wt_read_disturbance(double p, double sigma, std::size_t a,
                           std::size_t n, double s_cost, double p_cost) {
  const WtTraceProbabilities pi =
      wt_trace_probabilities_read_disturbance(p, sigma, a);
  const double nn = static_cast<double>(n);
  return pi.pi2 * (s_cost + 2.0) + (pi.pi3 + pi.pi4) * (p_cost + nn);
}

double wt_read_disturbance_heterogeneous(double p,
                                         const std::vector<double>& sigmas,
                                         std::size_t n, double s_cost,
                                         double p_cost) {
  check_probability(p, "p");
  double total = 0.0;
  for (double sigma : sigmas) {
    check_probability(sigma, "sigma_k");
    total += sigma;
  }
  const double ar = 1.0 - p - total;
  DRSM_CHECK(ar >= -1e-12, "p + sum(sigma) exceeds 1");
  double pi2 = ratio(p * ar, 1.0 - total);
  for (double sigma : sigmas) pi2 += ratio(sigma * p, p + sigma);
  return pi2 * (s_cost + 2.0) +
         p * (p_cost + static_cast<double>(n));
}

double wt_write_disturbance(double p, double xi, std::size_t a,
                            std::size_t n, double s_cost, double p_cost) {
  const WtTraceProbabilities pi =
      wt_trace_probabilities_write_disturbance(p, xi, a);
  const double nn = static_cast<double>(n);
  // pi3 + pi4 = p + a*xi: every write (center or disturber) costs P+N.
  return pi.pi2 * (s_cost + 2.0) + (pi.pi3 + pi.pi4) * (p_cost + nn);
}

double wt_multiple_ac(double p, std::size_t beta, std::size_t n,
                      double s_cost, double p_cost) {
  const WtTraceProbabilities pi = wt_trace_probabilities_multiple_ac(p, beta);
  const double nn = static_cast<double>(n);
  return pi.pi2 * (s_cost + 2.0) + (pi.pi3 + pi.pi4) * (p_cost + nn);
}

double ideal_acc(ProtocolKind kind, double p, std::size_t n, double s_cost,
                 double p_cost) {
  check_probability(p, "p");
  const double nn = static_cast<double>(n);
  switch (kind) {
    case ProtocolKind::kWriteThrough:
      return p * ((1.0 - p) * (s_cost + 2.0) + p_cost + nn);
    case ProtocolKind::kWriteThroughV:
      return p * (p_cost + nn + 2.0);
    case ProtocolKind::kWriteOnce:
    case ProtocolKind::kSynapse:
    case ProtocolKind::kIllinois:
    case ProtocolKind::kBerkeley:
      return 0.0;
    case ProtocolKind::kDragon:
      return p * nn * (p_cost + 1.0);
    case ProtocolKind::kFirefly:
      return p * (nn * (p_cost + 1.0) + 1.0);
  }
  DRSM_CHECK(false, "unreachable");
  return 0.0;
}

double wtv_read_disturbance(double p, double sigma, std::size_t a,
                            std::size_t n, double s_cost, double p_cost) {
  check_probability(p, "p");
  check_probability(sigma, "sigma");
  const double nn = static_cast<double>(n);
  // Disturbing clients miss whenever the most recent event relevant to
  // their copy (center write with prob p, own read with prob sigma) was a
  // write.
  const double miss = static_cast<double>(a) * ratio(sigma * p, p + sigma);
  return miss * (s_cost + 2.0) + p * (p_cost + nn + 2.0);
}

double wtv_write_disturbance(double p, double xi, std::size_t a,
                             std::size_t n, double s_cost, double p_cost) {
  check_probability(p, "p");
  check_probability(xi, "xi");
  const double ax = static_cast<double>(a) * xi;
  const double ar = 1.0 - p - ax;
  DRSM_CHECK(ar >= -1e-12, "p + a*xi exceeds 1");
  const double nn = static_cast<double>(n);
  // The center's copy survives its own writes but not the disturbers'.
  return ar * ax * (s_cost + 2.0) + (p + ax) * (p_cost + nn + 2.0);
}

double berkeley_read_disturbance(double p, double sigma, std::size_t a,
                                 std::size_t n, double s_cost,
                                 double p_cost) {
  (void)p_cost;  // Berkeley never moves write parameters between nodes
  check_probability(p, "p");
  check_probability(sigma, "sigma");
  const double as = static_cast<double>(a) * sigma;
  const double nn = static_cast<double>(n);
  // In the steady state the activity center owns the object.  A disturber
  // read misses (S+2, owner -> SHARED-DIRTY) when the last event relevant
  // to its copy was a write; a center write pays the invalidation broadcast
  // (N) when any disturber re-validated since the previous write.
  const double miss = static_cast<double>(a) * ratio(sigma * p, p + sigma);
  const double shared_write = p * ratio(as, p + as);
  return miss * (s_cost + 2.0) + shared_write * nn;
}

double dragon_acc(double total_write_prob, std::size_t n, double p_cost) {
  check_probability(total_write_prob, "write probability");
  return total_write_prob * static_cast<double>(n) * (p_cost + 1.0);
}

double firefly_acc(double total_write_prob, std::size_t n, double p_cost) {
  check_probability(total_write_prob, "write probability");
  return total_write_prob *
         (static_cast<double>(n) * (p_cost + 1.0) + 1.0);
}

double synapse_read_disturbance_a1(double p, double sigma, std::size_t n,
                                   double s_cost, double p_cost) {
  (void)p_cost;  // Synapse grants ship the whole user information (S)
  check_probability(p, "p");
  check_probability(sigma, "sigma");
  if (p <= 0.0 || sigma <= 0.0) return 0.0;
  const double r = 1.0 - p - sigma;  // activity-center read probability
  DRSM_CHECK(r >= -1e-12, "p + sigma exceeds 1");
  const double nn = static_cast<double>(n);
  // Three-state chain for the center's copy: DIRTY until the disturber's
  // read flushes it (2S+6, -> INVALID), then the center refetches on read
  // (S+2, -> VALID) and re-acquires exclusivity on write (S+N+1, -> DIRTY).
  const double pi_dirty = (1.0 - sigma) * p / (p + sigma * r);
  const double pi_invalid = pi_dirty * sigma / (1.0 - sigma);
  return pi_dirty * sigma *
             ((2.0 * s_cost + 6.0) + (s_cost + nn + 1.0)) +
         pi_invalid * r * (s_cost + 2.0);
}

double illinois_read_disturbance_a1(double p, double sigma, std::size_t n,
                                    double s_cost, double p_cost) {
  (void)p_cost;
  check_probability(p, "p");
  check_probability(sigma, "sigma");
  if (p <= 0.0 || sigma <= 0.0) return 0.0;
  const double nn = static_cast<double>(n);
  // Two-state chain: the flush keeps the center's copy VALID, so the cycle
  // alternates dirty reads (2S+4) and invalidate-only write upgrades (N+1).
  return p * sigma * (2.0 * s_cost + nn + 5.0) / (p + sigma);
}

double wt_read_disturbance_with_eject(double p, double sigma, std::size_t a,
                                      double e, std::size_t n, double s_cost,
                                      double p_cost) {
  check_probability(p, "p");
  check_probability(sigma, "sigma");
  check_probability(e, "e");
  const double as = static_cast<double>(a) * sigma;
  const double r = 1.0 - p - as - e;
  DRSM_CHECK(r >= -1e-12, "p + a*sigma + e exceeds 1");
  const double nn = static_cast<double>(n);
  // The center's copy is invalid whenever the last event relevant to it
  // (own write p, own eject e, own read r) was a write or an eject.
  const double center_miss = r * ratio(p + e, p + e + r);
  const double disturber_miss =
      static_cast<double>(a) * ratio(sigma * p, p + sigma);
  return (center_miss + disturber_miss) * (s_cost + 2.0) +
         p * (p_cost + nn);
}

double wt_wtv_boundary(double sigma, double a, double s_cost) {
  return (1.0 - a * sigma) * s_cost / (s_cost + 2.0);
}

double synapse_wtv_boundary(double sigma, double a, std::size_t n,
                            double s_cost, double p_cost) {
  return a * sigma * (s_cost + static_cast<double>(n) - p_cost) /
         (p_cost + static_cast<double>(n) + 2.0);
}

double dragon_berkeley_boundary(double sigma, std::size_t n, double s_cost,
                                double p_cost) {
  const double nn = static_cast<double>(n);
  return sigma * (s_cost + 2.0 - nn * p_cost) / (nn * (p_cost + 1.0));
}

}  // namespace drsm::analytic::closed_form
