// Closed-form steady-state average communication costs and crossover lines.
//
// Everything the paper states explicitly is implemented here:
//  * the Write-Through acc for all three deviations (eqns 3, 4, 5) together
//    with the trace probabilities pi_1..pi_4 derived in Section 4.3;
//  * the ideal-workload limits for all eight protocols (Section 5.1);
//  * the crossover lines of Section 5.1.
//
// In addition, closed forms we derived with the paper's own methodology are
// provided for Write-Through-V, Berkeley, Dragon, Firefly (all exact) and
// for Synapse/Illinois with a single disturbing client.  Each one is
// checked against the exact Markov-chain engine in the test suite; for the
// remaining (protocol, deviation) pairs the chain engine is the analytic
// reference (the paper's Table 6 is not legible in the available copy; see
// DESIGN.md).
#pragma once

#include <cstddef>
#include <vector>

#include "protocols/protocol.h"

namespace drsm::analytic::closed_form {

/// Steady-state trace probabilities of the Write-Through protocol
/// (traces tr1/tr2: client read on VALID/INVALID; tr3/tr4: client write on
/// VALID/INVALID).  They always sum to 1.
struct WtTraceProbabilities {
  double pi1 = 0.0;
  double pi2 = 0.0;
  double pi3 = 0.0;
  double pi4 = 0.0;
};

/// Section 4.3, read disturbance.
WtTraceProbabilities wt_trace_probabilities_read_disturbance(double p,
                                                             double sigma,
                                                             std::size_t a);
/// Section 4.3, write disturbance.
WtTraceProbabilities wt_trace_probabilities_write_disturbance(double p,
                                                              double xi,
                                                              std::size_t a);
/// Section 4.3, multiple activity centers.
WtTraceProbabilities wt_trace_probabilities_multiple_ac(double p,
                                                        std::size_t beta);

/// Eqn (3): acc of Write-Through under read disturbance.
double wt_read_disturbance(double p, double sigma, std::size_t a,
                           std::size_t n, double s_cost, double p_cost);

/// The paper's general (heterogeneous) read disturbance, before the
/// homogeneous simplification: client k reads with probability sigma_k:
/// acc = [p(1-p-U)/(1-U) + sum_k sigma_k p/(p+sigma_k)](S+2) + p(P+N),
/// with U = sum_k sigma_k.
double wt_read_disturbance_heterogeneous(double p,
                                         const std::vector<double>& sigmas,
                                         std::size_t n, double s_cost,
                                         double p_cost);

/// Eqn (4): acc of Write-Through under write disturbance.
double wt_write_disturbance(double p, double xi, std::size_t a,
                            std::size_t n, double s_cost, double p_cost);

/// Eqn (5): acc of Write-Through with beta activity centers.
double wt_multiple_ac(double p, std::size_t beta, std::size_t n,
                      double s_cost, double p_cost);

/// Ideal-workload acc for any of the eight protocols (Section 5.1):
/// WT = p((1-p)(S+2)+P+N), WTV = p(P+N+2), Dragon = pN(P+1),
/// Firefly = p(N(P+1)+1), and 0 for Write-Once/Synapse/Illinois/Berkeley.
double ideal_acc(protocols::ProtocolKind kind, double p, std::size_t n,
                 double s_cost, double p_cost);

// -- derived closed forms (validated against the chain engine) -------------

/// WTV, read disturbance: a*sigma*p/(p+sigma)*(S+2) + p*(P+N+2).
double wtv_read_disturbance(double p, double sigma, std::size_t a,
                            std::size_t n, double s_cost, double p_cost);

/// WTV, write disturbance: (1-p-a*xi)*a*xi*(S+2) + (p+a*xi)*(P+N+2).
double wtv_write_disturbance(double p, double xi, std::size_t a,
                             std::size_t n, double s_cost, double p_cost);

/// Berkeley, read disturbance:
/// a*sigma*p/(p+sigma)*(S+2) + p*a*sigma/(p+a*sigma)*N.
double berkeley_read_disturbance(double p, double sigma, std::size_t a,
                                 std::size_t n, double s_cost, double p_cost);

/// Dragon: every write costs N(P+1); reads are free.  Holds for all three
/// deviations with total write probability `total_write_prob`.
double dragon_acc(double total_write_prob, std::size_t n, double p_cost);

/// Firefly: every client write costs N(P+1)+1; reads are free.
double firefly_acc(double total_write_prob, std::size_t n, double p_cost);

/// Synapse, read disturbance, a = 1 disturbing client.
double synapse_read_disturbance_a1(double p, double sigma, std::size_t n,
                                   double s_cost, double p_cost);

/// Illinois, read disturbance, a = 1 disturbing client.
double illinois_read_disturbance_a1(double p, double sigma, std::size_t n,
                                    double s_cost, double p_cost);

/// Write-Through with the eject extension: the activity center ejects its
/// replica with probability e per operation (eject is local and free, but
/// each eject turns the next center read into an S+2 miss):
/// acc = [r(p+e)/(p+e+r) + a*sigma*p/(p+sigma)](S+2) + p(P+N)
/// with r = 1-p-a*sigma-e.
double wt_read_disturbance_with_eject(double p, double sigma, std::size_t a,
                                      double e, std::size_t n, double s_cost,
                                      double p_cost);

// -- crossover lines (Section 5.1) ------------------------------------------

/// WT vs WTV boundary: p* = S/(S+2) - a*sigma*S/(S+2); WTV is cheaper for
/// p below the line.
double wt_wtv_boundary(double sigma, double a, double s_cost);

/// Paper's Synapse vs WTV boundary p* = a*sigma*(S+N-P)/(P+N+2), valid for
/// P < S+N (for P > S+N Synapse wins everywhere).
double synapse_wtv_boundary(double sigma, double a, std::size_t n,
                            double s_cost, double p_cost);

/// Dragon vs Berkeley boundary for a = 1: p* = sigma*(S+2-N*P)/(N*(P+1)),
/// valid for N*P < S+2 (for N*P > S+2 Berkeley wins everywhere).
double dragon_berkeley_boundary(double sigma, std::size_t n, double s_cost,
                                double p_cost);

}  // namespace drsm::analytic::closed_form
