// Exact steady-state analysis of a (protocol, workload) pair — the paper's
// methodology (Section 4.3) automated.
//
// The paper derives, by hand, the steady-state probability pi_h of each
// trace tr_h of a coherence protocol under a parameterized workload and
// forms acc = sum_h pi_h * cc_h.  ProtocolChain performs the same
// derivation mechanically and exactly:
//
//  * the interacting Mealy machines are executed atomically per operation
//    (SequentialRuntime), which is precisely the "repeated independent
//    trials" regime of the analysis;
//  * the protocol-relevant global state (all copy states + ownership) is
//    finite; breadth-first exploration over the workload's sample space
//    enumerates every reachable state and the exact trace cost of every
//    (state, event) pair;
//  * the stationary distribution of the induced Markov chain gives the
//    trace probabilities, and acc follows.
//
// For the Write-Through protocol the result matches the paper's closed
// forms (eqns 3-5) to machine precision; for the other seven protocols it
// plays the role of the (unreadable) Table 6 expressions.
//
// The chain is built once per (protocol, system, sample-space *structure*)
// and can be re-solved for any probability assignment — grid sweeps for the
// figure benchmarks reuse one chain per surface.
//
// Enumeration avoids the original per-transition deep copy of the whole
// runtime: states are re-materialized from their byte keys into a single
// scratch runtime (ProtocolMachine::decode), falling back to snapshot
// copies only for machines that do not support decoding.  Re-solves are
// warm-started from the last stationary vector computed for the same
// positive-probability event mask, which cuts power iterations on the
// smooth parameter sweeps of the figure benchmarks.  Solving is
// thread-safe (telemetry and the warm-start cache are mutex-guarded), but
// note that warm starts make the *iteration counts* — not the results —
// depend on solve order.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "analytic/interner.h"
#include "linalg/stationary.h"
#include "protocols/protocol.h"
#include "sim/sequential.h"
#include "workload/spec.h"

namespace drsm::analytic {

class ProtocolChain {
 public:
  /// Enumerates the reachable protocol state space under the sample space
  /// of `spec` (all listed events, regardless of their probability).
  ProtocolChain(protocols::ProtocolKind kind, const sim::SystemConfig& config,
                const workload::WorkloadSpec& spec);

  /// Steady-state average communication cost per operation for the given
  /// event probabilities (aligned with spec.events; must sum to 1).
  double average_cost(const std::vector<double>& probabilities) const;

  /// How a batched solve decomposed (the analytic.batch_* metrics).
  struct BatchTelemetry {
    std::size_t lanes = 0;             // probability assignments solved
    std::size_t groups = 0;            // distinct positive-probability masks
    std::size_t direct_lanes = 0;      // lanes solved by the LU path
    std::size_t power_iterations = 0;  // summed over power-path lanes
    std::size_t max_states = 0;        // largest reachable set of any group
  };

  /// average_cost for a whole batch of probability assignments in one
  /// call.  Lanes are grouped by positive-probability event mask; each
  /// group shares one reachability pass and one transition structure and
  /// is handed to linalg::batched_stationary as a lane-major SoA value
  /// block.  Element i is bit-for-bit what average_cost(probabilities[i])
  /// returns on a freshly built chain (cold start — the batch neither
  /// reads nor seeds the warm-start cache, so results do not depend on
  /// solve order).
  std::vector<double> average_cost_batch(
      const std::vector<std::vector<double>>& probabilities,
      BatchTelemetry* batch = nullptr) const;

  /// Convenience overload using the probabilities stored in the spec.
  double average_cost() const;

  /// Steady-state variance of the per-operation cost (second central
  /// moment over states and events).  Together with acc this sizes the
  /// confidence intervals a simulation of given length can achieve.
  double cost_variance(const std::vector<double>& probabilities) const;

  /// Expected steady-state cost contributed by each event of the sample
  /// space (sums to average_cost).
  std::vector<double> event_cost_shares(
      const std::vector<double>& probabilities) const;

  /// Steady-state probability of being in each enumerated state (states
  /// unreachable under the given probabilities get 0).
  linalg::Vector stationary(const std::vector<double>& probabilities) const;

  /// Transient analysis: expected cost of each of the first `ops`
  /// operations starting cold (all client copies INVALID) — the cost
  /// profile the paper's simulation discards by "neglecting the first 500
  /// operations".  Element k is the expected cost of operation k+1; the
  /// sequence converges to average_cost().
  std::vector<double> transient_costs(
      const std::vector<double>& probabilities, std::size_t ops) const;

  /// Number of operations until the expected per-operation cost stays
  /// within `tolerance` (relative) of the steady-state acc — an analytic
  /// warm-up length.  Returns `max_ops` if not reached.
  std::size_t warmup_length(const std::vector<double>& probabilities,
                            double tolerance = 0.01,
                            std::size_t max_ops = 100000) const;

  std::size_t num_states() const { return transitions_.size(); }
  std::size_t num_events() const { return events_.size(); }

  /// Stationary-solver telemetry, accumulated over every solve this chain
  /// performed (average_cost, cost_variance, stationary, ...).  AccSolver
  /// publishes this into its metrics registry.
  struct SolveTelemetry {
    std::size_t solves = 0;
    std::size_t power_iterations = 0;  // cumulative across solves
    std::size_t warm_starts = 0;       // power solves seeded from the cache
    linalg::SolveStats last;           // most recent solve
  };
  SolveTelemetry telemetry() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return telemetry_;
  }

  /// Deterministic transition: cost and successor of event `e` in state
  /// `s` (exposed for tests).
  struct Transition {
    std::uint32_t next = 0;
    Cost cost = 0.0;
  };
  const Transition& transition(std::size_t state, std::size_t event) const;

  /// The protocol-relevant encoding of state `s` (concatenated machine
  /// encodings in roster order, clients ascending then the sequencer) —
  /// lets callers classify states, e.g. by the activity center's copy
  /// state, to extract the paper's per-trace probabilities.
  const std::vector<std::uint8_t>& state_key(std::size_t state) const;

 private:
  struct SolveResult {
    std::vector<std::uint32_t> reachable;  // chain-state indices
    linalg::Vector pi;                     // aligned with `reachable`
  };
  SolveResult solve(const std::vector<double>& probabilities) const;

  std::vector<workload::EventSpec> events_;
  std::vector<std::vector<Transition>> transitions_;  // [state][event]
  StateInterner states_;                              // key <-> dense index
  mutable std::mutex mutex_;  // guards telemetry_ and warm_pi_
  mutable SolveTelemetry telemetry_;
  /// Last stationary vector per positive-probability event mask, used to
  /// warm-start the next power iteration with the same mask (reachable-set
  /// ordering is a pure function of the mask, so the vectors align).
  mutable std::map<std::vector<std::uint8_t>, linalg::Vector> warm_pi_;
};

}  // namespace drsm::analytic
