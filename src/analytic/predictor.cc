#include "analytic/predictor.h"

#include <map>

#include "support/error.h"

namespace drsm::analytic {

using fsm::OpKind;

namespace {

workload::WorkloadSpec spec_from_counts(
    const std::map<std::pair<NodeId, OpKind>, std::size_t>& counts,
    std::size_t total) {
  workload::WorkloadSpec spec;
  spec.name = "empirical-trace";
  for (const auto& [key, count] : counts) {
    spec.events.push_back({key.first, key.second,
                           static_cast<double>(count) /
                               static_cast<double>(total)});
  }
  spec.validate();
  return spec;
}

}  // namespace

workload::WorkloadSpec spec_from_trace(
    const workload::OperationTrace& trace) {
  std::map<std::pair<NodeId, OpKind>, std::size_t> counts;
  std::size_t total = 0;
  for (const auto& entry : trace.entries) {
    if (entry.op != OpKind::kRead && entry.op != OpKind::kWrite) continue;
    ++counts[{entry.node, entry.op}];
    ++total;
  }
  DRSM_CHECK(total > 0, "spec_from_trace: trace has no read/write entries");
  return spec_from_counts(counts, total);
}

TracePrediction predict_from_trace(protocols::ProtocolKind kind,
                                   const sim::SystemConfig& config,
                                   const workload::OperationTrace& trace) {
  DRSM_CHECK(trace.num_objects >= 1, "trace has no objects");
  std::vector<std::map<std::pair<NodeId, OpKind>, std::size_t>> counts(
      trace.num_objects);
  std::vector<std::size_t> totals(trace.num_objects, 0);
  std::size_t grand_total = 0;
  for (const auto& entry : trace.entries) {
    if (entry.op != OpKind::kRead && entry.op != OpKind::kWrite) continue;
    DRSM_CHECK(entry.object < trace.num_objects,
               "trace entry object out of range");
    ++counts[entry.object][{entry.node, entry.op}];
    ++totals[entry.object];
    ++grand_total;
  }
  DRSM_CHECK(grand_total > 0,
             "predict_from_trace: trace has no read/write entries");

  AccSolver solver(config);
  TracePrediction prediction;
  prediction.object_share.resize(trace.num_objects, 0.0);
  prediction.object_acc.resize(trace.num_objects, 0.0);
  for (ObjectId j = 0; j < trace.num_objects; ++j) {
    if (totals[j] == 0) continue;
    const double share = static_cast<double>(totals[j]) /
                         static_cast<double>(grand_total);
    const double acc =
        solver.acc(kind, spec_from_counts(counts[j], totals[j]));
    prediction.object_share[j] = share;
    prediction.object_acc[j] = acc;
    prediction.acc += share * acc;
  }
  return prediction;
}

PlacementRecommendation recommend_placement(
    const sim::SystemConfig& config, const workload::OperationTrace& trace,
    std::vector<protocols::ProtocolKind> candidates) {
  if (candidates.empty())
    candidates.assign(protocols::kAllProtocols.begin(),
                      protocols::kAllProtocols.end());

  // Predict per (candidate, object) once, then take column minima for the
  // placement and row sums for the uniform comparison.
  std::vector<TracePrediction> per_candidate;
  per_candidate.reserve(candidates.size());
  for (protocols::ProtocolKind kind : candidates)
    per_candidate.push_back(predict_from_trace(kind, config, trace));

  PlacementRecommendation out;
  out.object_protocol.assign(trace.num_objects, candidates.front());
  for (ObjectId j = 0; j < trace.num_objects; ++j) {
    double best = -1.0;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (per_candidate[c].object_share[j] <= 0.0) continue;
      const double acc = per_candidate[c].object_acc[j];
      if (best < 0.0 || acc < best) {
        best = acc;
        out.object_protocol[j] = candidates[c];
      }
    }
    if (best >= 0.0)
      out.acc += per_candidate.front().object_share[j] * best;
  }

  out.uniform_best = candidates.front();
  out.uniform_best_acc = per_candidate.front().acc;
  for (std::size_t c = 1; c < candidates.size(); ++c) {
    if (per_candidate[c].acc < out.uniform_best_acc) {
      out.uniform_best_acc = per_candidate[c].acc;
      out.uniform_best = candidates[c];
    }
  }
  return out;
}

}  // namespace drsm::analytic
