// High-level entry point for analytic predictions: caches ProtocolChains
// per (protocol, sample-space structure) so parameter sweeps re-solve the
// same chain with new probabilities instead of re-enumerating state spaces.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "analytic/chain.h"
#include "obs/metrics.h"

namespace drsm::analytic {

class AccSolver {
 public:
  explicit AccSolver(const sim::SystemConfig& config) : config_(config) {}

  /// Attaches a metrics registry: chain enumeration (count, states, build
  /// time) and every stationary solve (count, power iterations, residual,
  /// solve time) publish into it.  Pass nullptr to detach.  Metric names
  /// are listed in docs/OBSERVABILITY.md.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Exact steady-state average communication cost per operation.
  double acc(protocols::ProtocolKind kind, const workload::WorkloadSpec& spec);

  /// The cached chain for this (protocol, sample-space structure).
  const ProtocolChain& chain(protocols::ProtocolKind kind,
                             const workload::WorkloadSpec& spec);

  /// The protocol with minimum predicted acc for this workload among
  /// `candidates` (all eight when empty) — the paper's "classifier for the
  /// development of adaptive data replication coherence protocols".
  protocols::ProtocolKind best_protocol(
      const workload::WorkloadSpec& spec,
      std::vector<protocols::ProtocolKind> candidates = {});

  const sim::SystemConfig& config() const { return config_; }

 private:
  using Key = std::pair<protocols::ProtocolKind,
                        std::vector<std::pair<NodeId, int>>>;
  static Key make_key(protocols::ProtocolKind kind,
                      const workload::WorkloadSpec& spec);

  sim::SystemConfig config_;
  std::map<Key, std::unique_ptr<ProtocolChain>> chains_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace drsm::analytic
