// High-level entry point for analytic predictions: caches ProtocolChains
// per (protocol, sample-space structure) so parameter sweeps re-solve the
// same chain with new probabilities instead of re-enumerating state spaces.
//
// The cache is a sharded hash table keyed by a 64-bit hash of the
// (protocol, event-structure) pair: a lookup streams the hash straight off
// the spec's events — no per-call key materialization — and touches the
// stored signature only on a hash match (collision verification).  Each
// shard carries its own mutex, so concurrent sweep tasks sharing one
// solver serialize only when they hit the same shard.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "analytic/chain.h"
#include "obs/metrics.h"

namespace drsm::analytic {

class AccSolver {
 public:
  explicit AccSolver(const sim::SystemConfig& config) : config_(config) {}

  /// Attaches a metrics registry: chain enumeration (count, states, build
  /// time) and every stationary solve (count, power iterations, residual,
  /// solve time) publish into it.  Pass nullptr to detach.  Metric names
  /// are listed in docs/OBSERVABILITY.md.  Publication is mutex-guarded,
  /// so a shared registry stays consistent under concurrent acc() calls.
  void set_metrics(obs::MetricsRegistry* metrics) {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_ = metrics;
  }

  /// Exact steady-state average communication cost per operation.
  /// Thread-safe; concurrent calls share cached chains.
  double acc(protocols::ProtocolKind kind, const workload::WorkloadSpec& spec);

  /// acc() for a whole grid of workloads in one call.  Specs are grouped
  /// by sample-space structure (the chain-cache key), each group's chain
  /// is built or fetched once, and the group's probability vectors are
  /// solved by the batched SoA kernel.  Element i is bit-for-bit the value
  /// a fresh solver's acc(kind, specs[i]) returns (cold solves — results
  /// do not depend on the order of cells within the batch).  Publishes
  /// analytic.batch_* metrics when a registry is attached.
  std::vector<double> acc_batch(protocols::ProtocolKind kind,
                                const std::vector<workload::WorkloadSpec>& specs);

  /// The cached chain for this (protocol, sample-space structure).  The
  /// reference stays valid for the solver's lifetime.
  const ProtocolChain& chain(protocols::ProtocolKind kind,
                             const workload::WorkloadSpec& spec);

  /// The protocol with minimum predicted acc for this workload among
  /// `candidates` (all eight when empty) — the paper's "classifier for the
  /// development of adaptive data replication coherence protocols".
  protocols::ProtocolKind best_protocol(
      const workload::WorkloadSpec& spec,
      std::vector<protocols::ProtocolKind> candidates = {});

  const sim::SystemConfig& config() const { return config_; }

 private:
  /// One cached chain.  `signature` holds the exact (node, op) structure
  /// for verification when two structures collide on `hash`.
  struct Entry {
    std::uint64_t hash = 0;
    protocols::ProtocolKind kind = protocols::ProtocolKind::kWriteThrough;
    std::vector<std::pair<NodeId, int>> signature;
    std::unique_ptr<ProtocolChain> chain;
  };
  struct Shard {
    std::mutex mutex;
    std::vector<Entry> entries;
  };
  static constexpr std::size_t kNumShards = 8;

  static std::uint64_t chain_hash(protocols::ProtocolKind kind,
                                  const workload::WorkloadSpec& spec);
  static bool matches(const Entry& entry, protocols::ProtocolKind kind,
                      const workload::WorkloadSpec& spec);

  sim::SystemConfig config_;
  std::array<Shard, kNumShards> shards_;
  std::mutex metrics_mutex_;  // guards metrics_ and all publication into it
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace drsm::analytic
