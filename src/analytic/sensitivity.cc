#include "analytic/sensitivity.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"
#include "workload/spec.h"

namespace drsm::analytic {

namespace {

workload::WorkloadSpec make_spec(const OperatingPoint& point, double p,
                                 double disturbance) {
  return point.deviation == Deviation::kReadDisturbance
             ? workload::read_disturbance(p, disturbance, point.a)
             : workload::write_disturbance(p, disturbance, point.a);
}

double acc_at(protocols::ProtocolKind kind, const sim::SystemConfig& config,
              const OperatingPoint& point, double p, double disturbance) {
  AccSolver solver(config);
  return solver.acc(kind, make_spec(point, p, disturbance));
}

/// Central difference with one-sided fallback at simplex boundaries.
double derivative(const std::function<double(double)>& f, double x,
                  double h, double lo, double hi) {
  const double x_lo = std::max(lo, x - h);
  const double x_hi = std::min(hi, x + h);
  DRSM_CHECK(x_hi > x_lo, "sensitivity: degenerate parameter range");
  return (f(x_hi) - f(x_lo)) / (x_hi - x_lo);
}

}  // namespace

Sensitivity acc_sensitivity(protocols::ProtocolKind kind,
                            const sim::SystemConfig& config,
                            const OperatingPoint& point) {
  const double a = static_cast<double>(point.a);
  DRSM_CHECK(point.p + a * point.disturbance <= 1.0 + 1e-12,
             "operating point outside the probability simplex");

  Sensitivity out;
  const double hp = 1e-4;

  out.wrt_p = derivative(
      [&](double p) { return acc_at(kind, config, point, p,
                                    point.disturbance); },
      point.p, hp, 0.0, 1.0 - a * point.disturbance);

  out.wrt_disturbance = derivative(
      [&](double d) { return acc_at(kind, config, point, point.p, d); },
      point.disturbance, hp, 0.0,
      a > 0.0 ? (1.0 - point.p) / a : point.disturbance + hp);

  // Cost-model parameters: acc is affine in S and P for every protocol
  // (message costs are S+1 / P+1 linear), so one step is exact up to
  // round-off; chains must be rebuilt because transition costs embed S, P.
  const double hs = std::max(1.0, 0.01 * config.costs.s);
  out.wrt_s = derivative(
      [&](double s) {
        sim::SystemConfig c = config;
        c.costs.s = s;
        return acc_at(kind, c, point, point.p, point.disturbance);
      },
      config.costs.s, hs, 0.0, config.costs.s + hs);

  const double hpc = std::max(1.0, 0.01 * config.costs.p);
  out.wrt_p_cost = derivative(
      [&](double pc) {
        sim::SystemConfig c = config;
        c.costs.p = pc;
        return acc_at(kind, c, point, point.p, point.disturbance);
      },
      config.costs.p, hpc, 0.0, config.costs.p + hpc);

  return out;
}

Sensitivity acc_elasticity(protocols::ProtocolKind kind,
                           const sim::SystemConfig& config,
                           const OperatingPoint& point) {
  const double acc =
      acc_at(kind, config, point, point.p, point.disturbance);
  Sensitivity grad = acc_sensitivity(kind, config, point);
  if (acc <= 1e-12) return Sensitivity{};
  grad.wrt_p *= point.p / acc;
  grad.wrt_disturbance *= point.disturbance / acc;
  grad.wrt_s *= config.costs.s / acc;
  grad.wrt_p_cost *= config.costs.p / acc;
  return grad;
}

}  // namespace drsm::analytic
