#include "analytic/interner.h"

#include "support/hash.h"

namespace drsm::analytic {

namespace {
constexpr std::size_t kInitialSlots = 64;  // power of two
}

StateInterner::StateInterner()
    : slots_(kInitialSlots), mask_(kInitialSlots - 1) {}

std::pair<std::uint32_t, bool> StateInterner::intern(
    const std::vector<std::uint8_t>& key) {
  // Grow at 70% load so probe sequences stay short.
  if ((keys_.size() + 1) * 10 >= slots_.size() * 7) grow();
  const std::uint64_t hash = hash_bytes(key.data(), key.size());
  std::size_t i = static_cast<std::size_t>(hash) & mask_;
  for (;;) {
    Slot& slot = slots_[i];
    if (slot.index == kEmpty) {
      const auto index = static_cast<std::uint32_t>(keys_.size());
      slot.hash = hash;
      slot.index = index;
      keys_.push_back(key);
      return {index, true};
    }
    // Key bytes are compared only on a 64-bit hash match, so a lookup
    // hitting a different key in its probe path costs one word compare.
    if (slot.hash == hash && keys_[slot.index] == key)
      return {slot.index, false};
    i = (i + 1) & mask_;
  }
}

void StateInterner::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  for (const Slot& slot : old) {
    if (slot.index == kEmpty) continue;
    std::size_t i = static_cast<std::size_t>(slot.hash) & mask_;
    while (slots_[i].index != kEmpty) i = (i + 1) & mask_;
    slots_[i] = slot;
  }
}

}  // namespace drsm::analytic
