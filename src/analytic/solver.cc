#include "analytic/solver.h"

#include "support/error.h"

namespace drsm::analytic {

AccSolver::Key AccSolver::make_key(protocols::ProtocolKind kind,
                                   const workload::WorkloadSpec& spec) {
  Key key;
  key.first = kind;
  key.second.reserve(spec.events.size());
  for (const auto& e : spec.events)
    key.second.emplace_back(e.node, static_cast<int>(e.op));
  return key;
}

const ProtocolChain& AccSolver::chain(protocols::ProtocolKind kind,
                                      const workload::WorkloadSpec& spec) {
  const Key key = make_key(kind, spec);
  auto it = chains_.find(key);
  if (it == chains_.end()) {
    it = chains_
             .emplace(key,
                      std::make_unique<ProtocolChain>(kind, config_, spec))
             .first;
  }
  return *it->second;
}

double AccSolver::acc(protocols::ProtocolKind kind,
                      const workload::WorkloadSpec& spec) {
  return chain(kind, spec).average_cost(spec.probabilities());
}

protocols::ProtocolKind AccSolver::best_protocol(
    const workload::WorkloadSpec& spec,
    std::vector<protocols::ProtocolKind> candidates) {
  if (candidates.empty())
    candidates.assign(protocols::kAllProtocols.begin(),
                      protocols::kAllProtocols.end());
  DRSM_CHECK(!candidates.empty(), "no candidate protocols");
  protocols::ProtocolKind best = candidates.front();
  double best_acc = acc(best, spec);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const double candidate_acc = acc(candidates[i], spec);
    if (candidate_acc < best_acc) {
      best_acc = candidate_acc;
      best = candidates[i];
    }
  }
  return best;
}

}  // namespace drsm::analytic
