#include "analytic/solver.h"

#include <chrono>

#include "support/error.h"
#include "support/hash.h"

namespace drsm::analytic {

namespace {

/// Millisecond wall-clock bucket ladder: 1us .. ~1s.
std::vector<double> wall_ms_bounds() {
  return obs::Histogram::exponential_bounds(0.001, 4.0, 15);
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::uint64_t AccSolver::chain_hash(protocols::ProtocolKind kind,
                                    const workload::WorkloadSpec& spec) {
  std::uint64_t h = hash_mix(static_cast<std::uint64_t>(kind) + 1);
  for (const auto& e : spec.events) {
    h = hash_combine(h, static_cast<std::uint64_t>(e.node));
    h = hash_combine(h, static_cast<std::uint64_t>(static_cast<int>(e.op)));
  }
  return h;
}

bool AccSolver::matches(const Entry& entry, protocols::ProtocolKind kind,
                        const workload::WorkloadSpec& spec) {
  if (entry.kind != kind || entry.signature.size() != spec.events.size())
    return false;
  for (std::size_t i = 0; i < entry.signature.size(); ++i) {
    if (entry.signature[i].first != spec.events[i].node ||
        entry.signature[i].second != static_cast<int>(spec.events[i].op))
      return false;
  }
  return true;
}

const ProtocolChain& AccSolver::chain(protocols::ProtocolKind kind,
                                      const workload::WorkloadSpec& spec) {
  const std::uint64_t hash = chain_hash(kind, spec);
  Shard& shard = shards_[hash & (kNumShards - 1)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  for (const Entry& entry : shard.entries)
    if (entry.hash == hash && matches(entry, kind, spec))
      return *entry.chain;

  const auto start = std::chrono::steady_clock::now();
  Entry entry;
  entry.hash = hash;
  entry.kind = kind;
  entry.signature.reserve(spec.events.size());
  for (const auto& e : spec.events)
    entry.signature.emplace_back(e.node, static_cast<int>(e.op));
  entry.chain = std::make_unique<ProtocolChain>(kind, config_, spec);
  shard.entries.push_back(std::move(entry));
  const ProtocolChain& built = *shard.entries.back().chain;

  {
    std::lock_guard<std::mutex> metrics_lock(metrics_mutex_);
    if (metrics_ != nullptr) {
      metrics_->counter("analytic.chains_built").inc();
      metrics_->counter("analytic.chain_states").inc(built.num_states());
      metrics_->histogram("analytic.chain_build_ms", wall_ms_bounds())
          .record(ms_since(start));
    }
  }
  return built;
}

double AccSolver::acc(protocols::ProtocolKind kind,
                      const workload::WorkloadSpec& spec) {
  const ProtocolChain& c = chain(kind, spec);
  const auto start = std::chrono::steady_clock::now();
  const double result = c.average_cost(spec.probabilities());
  {
    std::lock_guard<std::mutex> metrics_lock(metrics_mutex_);
    if (metrics_ != nullptr) {
      const ProtocolChain::SolveTelemetry telemetry = c.telemetry();
      metrics_->counter("analytic.solves").inc();
      metrics_->counter("analytic.power_iterations")
          .inc(telemetry.last.iterations);
      if (telemetry.last.warm_started)
        metrics_->counter("analytic.warm_starts").inc();
      metrics_->gauge("analytic.last_residual").set(telemetry.last.residual);
      metrics_->gauge("analytic.last_solve_states")
          .set(static_cast<double>(telemetry.last.states));
      metrics_->histogram("analytic.solve_ms", wall_ms_bounds())
          .record(ms_since(start));
    }
  }
  return result;
}

protocols::ProtocolKind AccSolver::best_protocol(
    const workload::WorkloadSpec& spec,
    std::vector<protocols::ProtocolKind> candidates) {
  if (candidates.empty())
    candidates.assign(protocols::kAllProtocols.begin(),
                      protocols::kAllProtocols.end());
  DRSM_CHECK(!candidates.empty(), "no candidate protocols");
  protocols::ProtocolKind best = candidates.front();
  double best_acc = acc(best, spec);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const double candidate_acc = acc(candidates[i], spec);
    if (candidate_acc < best_acc) {
      best_acc = candidate_acc;
      best = candidates[i];
    }
  }
  return best;
}

}  // namespace drsm::analytic
