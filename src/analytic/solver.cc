#include "analytic/solver.h"

#include <chrono>
#include <map>

#include "support/error.h"
#include "support/hash.h"

namespace drsm::analytic {

namespace {

/// Millisecond wall-clock bucket ladder: 1us .. ~1s.
std::vector<double> wall_ms_bounds() {
  return obs::Histogram::exponential_bounds(0.001, 4.0, 15);
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::uint64_t AccSolver::chain_hash(protocols::ProtocolKind kind,
                                    const workload::WorkloadSpec& spec) {
  std::uint64_t h = hash_mix(static_cast<std::uint64_t>(kind) + 1);
  for (const auto& e : spec.events) {
    h = hash_combine(h, static_cast<std::uint64_t>(e.node));
    h = hash_combine(h, static_cast<std::uint64_t>(static_cast<int>(e.op)));
  }
  return h;
}

bool AccSolver::matches(const Entry& entry, protocols::ProtocolKind kind,
                        const workload::WorkloadSpec& spec) {
  if (entry.kind != kind || entry.signature.size() != spec.events.size())
    return false;
  for (std::size_t i = 0; i < entry.signature.size(); ++i) {
    if (entry.signature[i].first != spec.events[i].node ||
        entry.signature[i].second != static_cast<int>(spec.events[i].op))
      return false;
  }
  return true;
}

const ProtocolChain& AccSolver::chain(protocols::ProtocolKind kind,
                                      const workload::WorkloadSpec& spec) {
  const std::uint64_t hash = chain_hash(kind, spec);
  Shard& shard = shards_[hash & (kNumShards - 1)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  for (const Entry& entry : shard.entries)
    if (entry.hash == hash && matches(entry, kind, spec))
      return *entry.chain;

  const auto start = std::chrono::steady_clock::now();
  Entry entry;
  entry.hash = hash;
  entry.kind = kind;
  entry.signature.reserve(spec.events.size());
  for (const auto& e : spec.events)
    entry.signature.emplace_back(e.node, static_cast<int>(e.op));
  entry.chain = std::make_unique<ProtocolChain>(kind, config_, spec);
  shard.entries.push_back(std::move(entry));
  const ProtocolChain& built = *shard.entries.back().chain;

  {
    std::lock_guard<std::mutex> metrics_lock(metrics_mutex_);
    if (metrics_ != nullptr) {
      metrics_->counter("analytic.chains_built").inc();
      metrics_->counter("analytic.chain_states").inc(built.num_states());
      metrics_->histogram("analytic.chain_build_ms", wall_ms_bounds())
          .record(ms_since(start));
    }
  }
  return built;
}

double AccSolver::acc(protocols::ProtocolKind kind,
                      const workload::WorkloadSpec& spec) {
  const ProtocolChain& c = chain(kind, spec);
  const auto start = std::chrono::steady_clock::now();
  const double result = c.average_cost(spec.probabilities());
  {
    std::lock_guard<std::mutex> metrics_lock(metrics_mutex_);
    if (metrics_ != nullptr) {
      const ProtocolChain::SolveTelemetry telemetry = c.telemetry();
      metrics_->counter("analytic.solves").inc();
      metrics_->counter("analytic.power_iterations")
          .inc(telemetry.last.iterations);
      if (telemetry.last.warm_started)
        metrics_->counter("analytic.warm_starts").inc();
      metrics_->gauge("analytic.last_residual").set(telemetry.last.residual);
      metrics_->gauge("analytic.last_solve_states")
          .set(static_cast<double>(telemetry.last.states));
      metrics_->histogram("analytic.solve_ms", wall_ms_bounds())
          .record(ms_since(start));
    }
  }
  return result;
}

std::vector<double> AccSolver::acc_batch(
    protocols::ProtocolKind kind,
    const std::vector<workload::WorkloadSpec>& specs) {
  std::vector<double> out(specs.size(), 0.0);
  // Group cells by chain-cache key; each group shares one chain and one
  // batched solve.  std::map keeps group order deterministic.
  std::map<std::uint64_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < specs.size(); ++i)
    groups[chain_hash(kind, specs[i])].push_back(i);

  const auto start = std::chrono::steady_clock::now();
  std::size_t total_groups = 0;
  std::size_t total_direct = 0;
  std::size_t total_power_iterations = 0;
  for (const auto& [hash, cells] : groups) {
    const ProtocolChain& c = chain(kind, specs[cells.front()]);
    std::vector<std::vector<double>> probs;
    probs.reserve(cells.size());
    for (std::size_t cell : cells)
      probs.push_back(specs[cell].probabilities());
    ProtocolChain::BatchTelemetry tel;
    const std::vector<double> acc = c.average_cost_batch(probs, &tel);
    for (std::size_t i = 0; i < cells.size(); ++i) out[cells[i]] = acc[i];
    total_groups += tel.groups;
    total_direct += tel.direct_lanes;
    total_power_iterations += tel.power_iterations;
  }
  {
    std::lock_guard<std::mutex> metrics_lock(metrics_mutex_);
    if (metrics_ != nullptr) {
      metrics_->counter("analytic.batch_solves").inc();
      metrics_->counter("analytic.batch_lanes").inc(specs.size());
      metrics_->counter("analytic.batch_groups").inc(total_groups);
      metrics_->counter("analytic.batch_direct_lanes").inc(total_direct);
      metrics_->counter("analytic.batch_power_iterations")
          .inc(total_power_iterations);
      metrics_->histogram("analytic.batch_solve_ms", wall_ms_bounds())
          .record(ms_since(start));
    }
  }
  return out;
}

protocols::ProtocolKind AccSolver::best_protocol(
    const workload::WorkloadSpec& spec,
    std::vector<protocols::ProtocolKind> candidates) {
  if (candidates.empty())
    candidates.assign(protocols::kAllProtocols.begin(),
                      protocols::kAllProtocols.end());
  DRSM_CHECK(!candidates.empty(), "no candidate protocols");
  protocols::ProtocolKind best = candidates.front();
  double best_acc = acc(best, spec);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const double candidate_acc = acc(candidates[i], spec);
    if (candidate_acc < best_acc) {
      best_acc = candidate_acc;
      best = candidates[i];
    }
  }
  return best;
}

}  // namespace drsm::analytic
