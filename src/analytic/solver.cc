#include "analytic/solver.h"

#include <chrono>

#include "support/error.h"

namespace drsm::analytic {

namespace {

/// Millisecond wall-clock bucket ladder: 1us .. ~1s.
std::vector<double> wall_ms_bounds() {
  return obs::Histogram::exponential_bounds(0.001, 4.0, 15);
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

AccSolver::Key AccSolver::make_key(protocols::ProtocolKind kind,
                                   const workload::WorkloadSpec& spec) {
  Key key;
  key.first = kind;
  key.second.reserve(spec.events.size());
  for (const auto& e : spec.events)
    key.second.emplace_back(e.node, static_cast<int>(e.op));
  return key;
}

const ProtocolChain& AccSolver::chain(protocols::ProtocolKind kind,
                                      const workload::WorkloadSpec& spec) {
  const Key key = make_key(kind, spec);
  auto it = chains_.find(key);
  if (it == chains_.end()) {
    const auto start = std::chrono::steady_clock::now();
    it = chains_
             .emplace(key,
                      std::make_unique<ProtocolChain>(kind, config_, spec))
             .first;
    if (metrics_ != nullptr) {
      metrics_->counter("analytic.chains_built").inc();
      metrics_->counter("analytic.chain_states")
          .inc(it->second->num_states());
      metrics_->histogram("analytic.chain_build_ms", wall_ms_bounds())
          .record(ms_since(start));
    }
  }
  return *it->second;
}

double AccSolver::acc(protocols::ProtocolKind kind,
                      const workload::WorkloadSpec& spec) {
  const ProtocolChain& c = chain(kind, spec);
  const auto start = std::chrono::steady_clock::now();
  const double result = c.average_cost(spec.probabilities());
  if (metrics_ != nullptr) {
    const auto& telemetry = c.telemetry();
    metrics_->counter("analytic.solves").inc();
    metrics_->counter("analytic.power_iterations")
        .inc(telemetry.last.iterations);
    metrics_->gauge("analytic.last_residual").set(telemetry.last.residual);
    metrics_->gauge("analytic.last_solve_states")
        .set(static_cast<double>(telemetry.last.states));
    metrics_->histogram("analytic.solve_ms", wall_ms_bounds())
        .record(ms_since(start));
  }
  return result;
}

protocols::ProtocolKind AccSolver::best_protocol(
    const workload::WorkloadSpec& spec,
    std::vector<protocols::ProtocolKind> candidates) {
  if (candidates.empty())
    candidates.assign(protocols::kAllProtocols.begin(),
                      protocols::kAllProtocols.end());
  DRSM_CHECK(!candidates.empty(), "no candidate protocols");
  protocols::ProtocolKind best = candidates.front();
  double best_acc = acc(best, spec);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const double candidate_acc = acc(candidates[i], spec);
    if (candidate_acc < best_acc) {
      best_acc = candidate_acc;
      best = candidates[i];
    }
  }
  return best;
}

}  // namespace drsm::analytic
