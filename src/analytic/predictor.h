// Trace-driven prediction: the paper notes the workload parameters "may
// be obtained by estimating the relative frequencies of events in some
// real distributed computation" (Section 4.2).  This module closes that
// loop: from a recorded operation trace it estimates a per-object
// empirical sample space, solves the exact model for each object, and
// composes the overall expected cost per operation.
#pragma once

#include <vector>

#include "analytic/solver.h"
#include "workload/generator.h"

namespace drsm::analytic {

/// Empirical global sample space (node, op frequencies aggregated over all
/// objects) of a trace.  Requires at least one read/write entry.
workload::WorkloadSpec spec_from_trace(
    const workload::OperationTrace& trace);

/// Per-object prediction composed into an overall acc.
struct TracePrediction {
  double acc = 0.0;                  // expected cost per operation
  std::vector<double> object_share;  // fraction of operations per object
  std::vector<double> object_acc;    // predicted acc per object
};

/// Predicts the steady-state cost of running `trace` under `kind`:
/// each object's operation stream is an independent sample space (the
/// paper analyses objects independently), so
///   acc = sum_j share_j * acc_j.
/// Objects never touched contribute nothing.
TracePrediction predict_from_trace(protocols::ProtocolKind kind,
                                   const sim::SystemConfig& config,
                                   const workload::OperationTrace& trace);

/// Data-placement advice: the acc-minimizing protocol *per object* (the
/// objects are independent, so per-object choice composes), compared with
/// the best single protocol for the whole trace.
struct PlacementRecommendation {
  std::vector<protocols::ProtocolKind> object_protocol;  // per object
  double acc = 0.0;               // expected acc under per-object choice
  protocols::ProtocolKind uniform_best =
      protocols::ProtocolKind::kWriteThrough;
  double uniform_best_acc = 0.0;  // expected acc of the best single choice
};

PlacementRecommendation recommend_placement(
    const sim::SystemConfig& config, const workload::OperationTrace& trace,
    std::vector<protocols::ProtocolKind> candidates = {});

}  // namespace drsm::analytic
