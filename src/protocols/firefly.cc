// Distributed Firefly protocol.
//
// Write-update like Dragon, but the client's write blocks until the
// sequencer confirms it has been sequenced: "the client always passes the
// write operation parameters to the sequencer; the sequencer broadcasts the
// write operation parameters to all clients" (Appendix A).  The completion
// token back to the writer costs one extra unit, matching the paper's
// ideal-workload cost acc = p*(N*(P+1) + 1).
#include "protocols/detail.h"

#include "support/error.h"

namespace drsm::protocols {
namespace {

using namespace drsm::fsm;
using detail::make_msg;

class FireflyClient final : public ProtocolMachine {
 public:
  void on_message(MachineContext& ctx, const Message& msg) override {
    switch (msg.token.type) {
      case MsgType::kReadReq:
        ctx.return_read(value_, version_);
        break;
      case MsgType::kWriteReq:
        ctx.disable_local_queue();
        pending_value_ = msg.value;
        pending_ = true;
        ctx.send(ctx.home(),
                 make_msg(MsgType::kUpdate, ctx.self(), msg.token.object,
                          ParamPresence::kWriteParams, msg.value));
        break;
      case MsgType::kAck:
        value_ = pending_value_;
        version_ = msg.version;
        pending_ = false;
        ctx.commit_write(version_, value_);
        ctx.complete_write(version_);
        ctx.enable_local_queue();
        break;
      case MsgType::kUpdate:
        if (msg.version >= version_) {
          value_ = msg.value;
          version_ = msg.version;
        }
        break;
      default:
        DRSM_CHECK(false, "FF client: unexpected message " +
                              msg.debug_string());
    }
  }

  std::unique_ptr<ProtocolMachine> clone() const override {
    return std::make_unique<FireflyClient>(*this);
  }

  void encode(std::vector<std::uint8_t>& out) const override {
    out.push_back(0);  // single state SHARED
  }

  void encode_full(std::vector<std::uint8_t>& out) const override {
    out.push_back(0);
    out.push_back(pending_ ? 1 : 0);
  }

  bool decode(const std::uint8_t*& p, const std::uint8_t* end) override {
    detail::take_u8(p, end);
    pending_ = false;
    return true;
  }

  bool encode_relabeled(std::vector<std::uint8_t>& out, const NodeId*,
                        std::size_t) const override {
    encode_full(out);  // no NodeIds in the encoding
    return true;
  }

  void encode_state(std::vector<std::uint8_t>& out) const override {
    out.push_back(pending_ ? 1 : 0);
    detail::put_u64(out, value_);
    detail::put_u64(out, version_);
    detail::put_u64(out, pending_value_);
  }

  bool decode_state(const std::uint8_t*& p, const std::uint8_t* end) override {
    pending_ = detail::take_u8(p, end) != 0;
    value_ = detail::take_u64(p, end);
    version_ = detail::take_u64(p, end);
    pending_value_ = detail::take_u64(p, end);
    return true;
  }

  bool quiescent() const override { return !pending_; }

  const char* state_name() const override { return "SHARED"; }

 private:
  std::uint64_t value_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t pending_value_ = 0;
  bool pending_ = false;
};

class FireflySequencer final : public ProtocolMachine {
 public:
  void on_message(MachineContext& ctx, const Message& msg) override {
    switch (msg.token.type) {
      case MsgType::kReadReq:
        ctx.return_read(value_, version_);
        break;
      case MsgType::kWriteReq:
        value_ = msg.value;
        version_ = ctx.next_version();
        ctx.commit_write(version_, value_);
        ctx.send_except({ctx.home()},
                        make_msg(MsgType::kUpdate, ctx.self(),
                                 msg.token.object,
                                 ParamPresence::kWriteParams, value_,
                                 version_));
        ctx.complete_write(version_);
        break;
      case MsgType::kUpdate:
        value_ = msg.value;
        version_ = ctx.next_version();
        ctx.commit_write(version_, value_);
        ctx.send_except({msg.token.initiator, ctx.home()},
                        make_msg(MsgType::kUpdate, msg.token.initiator,
                                 msg.token.object,
                                 ParamPresence::kWriteParams, value_,
                                 version_));
        ctx.send(msg.token.initiator,
                 make_msg(MsgType::kAck, msg.token.initiator,
                          msg.token.object, ParamPresence::kNone, 0,
                          version_));
        break;
      default:
        DRSM_CHECK(false, "FF sequencer: unexpected message " +
                              msg.debug_string());
    }
  }

  std::unique_ptr<ProtocolMachine> clone() const override {
    return std::make_unique<FireflySequencer>(*this);
  }

  void encode(std::vector<std::uint8_t>& out) const override {
    out.push_back(0);  // single state VALID
  }

  bool decode(const std::uint8_t*& p, const std::uint8_t* end) override {
    detail::take_u8(p, end);
    return true;
  }

  bool encode_relabeled(std::vector<std::uint8_t>& out, const NodeId*,
                        std::size_t) const override {
    encode_full(out);  // no NodeIds in the encoding
    return true;
  }

  void encode_state(std::vector<std::uint8_t>& out) const override {
    detail::put_u64(out, value_);
    detail::put_u64(out, version_);
  }

  bool decode_state(const std::uint8_t*& p, const std::uint8_t* end) override {
    value_ = detail::take_u64(p, end);
    version_ = detail::take_u64(p, end);
    return true;
  }

  const char* state_name() const override { return "VALID"; }

 private:
  std::uint64_t value_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace

std::unique_ptr<fsm::ProtocolMachine> make_firefly(NodeId node,
                                                   std::size_t num_clients) {
  if (node == static_cast<NodeId>(num_clients))
    return std::make_unique<FireflySequencer>();
  return std::make_unique<FireflyClient>();
}

}  // namespace drsm::protocols
