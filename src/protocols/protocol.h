// Registry of the eight data-replication coherence protocols analysed by
// the paper: seven decentralized bus-protocol adaptations (Write-Once,
// Synapse, Illinois, Berkeley, Dragon, Firefly) plus the two distributed
// Write-Through variants.
//
// Each protocol is realized as Mealy machines (fsm::ProtocolMachine): one
// machine kind for client nodes 0..N-1 and one for the home node N (the
// paper's sequencer, node N+1).  For Berkeley the sequencer role migrates
// with ownership, so every node runs the same machine there.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fsm/mealy.h"

namespace drsm::protocols {

enum class ProtocolKind : std::uint8_t {
  kWriteThrough,   // WT:  write-invalidate, writer's copy becomes INVALID
  kWriteThroughV,  // WTV: two-phase write-through, writer's copy stays VALID
  kWriteOnce,      // WO:  first write through (RESERVED), then local (DIRTY)
  kSynapse,        // SYN: ownership, flush + retry on dirty misses
  kIllinois,       // ILL: ownership, sequencer forwards to the dirty owner
  kBerkeley,       // BER: migrating ownership; activity center becomes owner
  kDragon,         // DRG: write-update broadcast
  kFirefly,        // FF:  write-update broadcast + completion token
};

inline constexpr std::array<ProtocolKind, 8> kAllProtocols = {
    ProtocolKind::kWriteThrough, ProtocolKind::kWriteThroughV,
    ProtocolKind::kWriteOnce,    ProtocolKind::kSynapse,
    ProtocolKind::kIllinois,     ProtocolKind::kBerkeley,
    ProtocolKind::kDragon,       ProtocolKind::kFirefly,
};

const char* to_string(ProtocolKind kind);

/// Parses "write-through", "wt", "berkeley", ... Throws drsm::Error on
/// unknown names.
ProtocolKind protocol_from_string(std::string_view name);

/// Creates the protocol process that runs at `node` (clients 0..N-1 get the
/// client machine, node N the sequencer machine).
std::unique_ptr<fsm::ProtocolMachine> make_machine(ProtocolKind kind,
                                                   NodeId node,
                                                   std::size_t num_clients);

/// Whether the protocol implements the given application operation.  All
/// protocols implement read and write; the eject/sync extensions are
/// provided for the invalidate protocols that have an INVALID client state.
bool supports(ProtocolKind kind, fsm::OpKind op);

/// Access rights a copy state confers, for the model checker's
/// single-writer/multiple-reader invariant.
///  * kInvalid:   the node may not serve reads from this copy.
///  * kShared:    readable; writes go through the serialization point.
///  * kExclusive: the node may apply writes locally without consulting the
///                sequencer — at most one copy per object may be in an
///                exclusive state at any instant.
enum class CopyClass : std::uint8_t { kInvalid, kShared, kExclusive };

const char* to_string(CopyClass cls);

/// Classifies a ProtocolMachine::state_name() of the given protocol.
/// Throws drsm::Error on a name no machine of the protocol produces.
/// Note the sequencer's "INVALID" (ownership protocols: some client holds
/// the only valid copy) classifies as kInvalid, and Berkeley's
/// "SHARED-DIRTY" as kShared — the owner must broadcast invalidations
/// before writing again.
CopyClass classify_state(ProtocolKind kind, std::string_view state_name);

/// All copy-state names the protocol's machines can report, for
/// reachable-state iteration and coverage checks.  `sequencer` selects the
/// home-node machine's states (for Berkeley both sets coincide: every node
/// runs the same machine).
std::vector<std::string> copy_state_names(ProtocolKind kind, bool sequencer);

/// Strength of the protocol's quiescent-convergence guarantee, which the
/// model checker's read probe asserts at every quiescent state.
///  * kConverges:    once all messages drain, every readable copy holds
///                   the latest serialized write.
///  * kWriterMayLag: as above, except a client whose own fire-and-forget
///                   write raced a concurrent foreign write may hold an
///                   older (but still serialized-consistent) snapshot
///                   until the next update reaches it.  Dragon is the one
///                   protocol in this class: the sequencer's re-broadcast
///                   excludes the write's initiator (keeping the paper's
///                   N(P+1) write cost), so the initiator cannot order its
///                   own optimistic apply against a concurrent update.
enum class ConvergenceLevel : std::uint8_t { kConverges, kWriterMayLag };

ConvergenceLevel convergence_level(ProtocolKind kind);

}  // namespace drsm::protocols
