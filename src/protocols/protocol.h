// Registry of the eight data-replication coherence protocols analysed by
// the paper: seven decentralized bus-protocol adaptations (Write-Once,
// Synapse, Illinois, Berkeley, Dragon, Firefly) plus the two distributed
// Write-Through variants.
//
// Each protocol is realized as Mealy machines (fsm::ProtocolMachine): one
// machine kind for client nodes 0..N-1 and one for the home node N (the
// paper's sequencer, node N+1).  For Berkeley the sequencer role migrates
// with ownership, so every node runs the same machine there.
#pragma once

#include <array>
#include <memory>
#include <string_view>

#include "fsm/mealy.h"

namespace drsm::protocols {

enum class ProtocolKind : std::uint8_t {
  kWriteThrough,   // WT:  write-invalidate, writer's copy becomes INVALID
  kWriteThroughV,  // WTV: two-phase write-through, writer's copy stays VALID
  kWriteOnce,      // WO:  first write through (RESERVED), then local (DIRTY)
  kSynapse,        // SYN: ownership, flush + retry on dirty misses
  kIllinois,       // ILL: ownership, sequencer forwards to the dirty owner
  kBerkeley,       // BER: migrating ownership; activity center becomes owner
  kDragon,         // DRG: write-update broadcast
  kFirefly,        // FF:  write-update broadcast + completion token
};

inline constexpr std::array<ProtocolKind, 8> kAllProtocols = {
    ProtocolKind::kWriteThrough, ProtocolKind::kWriteThroughV,
    ProtocolKind::kWriteOnce,    ProtocolKind::kSynapse,
    ProtocolKind::kIllinois,     ProtocolKind::kBerkeley,
    ProtocolKind::kDragon,       ProtocolKind::kFirefly,
};

const char* to_string(ProtocolKind kind);

/// Parses "write-through", "wt", "berkeley", ... Throws drsm::Error on
/// unknown names.
ProtocolKind protocol_from_string(std::string_view name);

/// Creates the protocol process that runs at `node` (clients 0..N-1 get the
/// client machine, node N the sequencer machine).
std::unique_ptr<fsm::ProtocolMachine> make_machine(ProtocolKind kind,
                                                   NodeId node,
                                                   std::size_t num_clients);

/// Whether the protocol implements the given application operation.  All
/// protocols implement read and write; the eject/sync extensions are
/// provided for the invalidate protocols that have an INVALID client state.
bool supports(ProtocolKind kind, fsm::OpKind op);

}  // namespace drsm::protocols
