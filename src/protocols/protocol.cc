#include "protocols/protocol.h"

#include <algorithm>
#include <cctype>
#include <string>

#include "protocols/detail.h"
#include "support/error.h"

namespace drsm::protocols {

const char* to_string(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kWriteThrough: return "write-through";
    case ProtocolKind::kWriteThroughV: return "write-through-v";
    case ProtocolKind::kWriteOnce: return "write-once";
    case ProtocolKind::kSynapse: return "synapse";
    case ProtocolKind::kIllinois: return "illinois";
    case ProtocolKind::kBerkeley: return "berkeley";
    case ProtocolKind::kDragon: return "dragon";
    case ProtocolKind::kFirefly: return "firefly";
  }
  return "?";
}

ProtocolKind protocol_from_string(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "write-through" || lower == "wt")
    return ProtocolKind::kWriteThrough;
  if (lower == "write-through-v" || lower == "wtv")
    return ProtocolKind::kWriteThroughV;
  if (lower == "write-once" || lower == "wo") return ProtocolKind::kWriteOnce;
  if (lower == "synapse" || lower == "syn") return ProtocolKind::kSynapse;
  if (lower == "illinois" || lower == "ill") return ProtocolKind::kIllinois;
  if (lower == "berkeley" || lower == "ber") return ProtocolKind::kBerkeley;
  if (lower == "dragon" || lower == "drg") return ProtocolKind::kDragon;
  if (lower == "firefly" || lower == "ff") return ProtocolKind::kFirefly;
  throw Error("unknown protocol name: " + std::string(name));
}

std::unique_ptr<fsm::ProtocolMachine> make_machine(ProtocolKind kind,
                                                   NodeId node,
                                                   std::size_t num_clients) {
  DRSM_CHECK(num_clients >= 1, "need at least one client");
  DRSM_CHECK(node <= num_clients, "node index out of range");
  switch (kind) {
    case ProtocolKind::kWriteThrough:
      return make_write_through(node, num_clients);
    case ProtocolKind::kWriteThroughV:
      return make_write_through_v(node, num_clients);
    case ProtocolKind::kWriteOnce:
      return make_write_once(node, num_clients);
    case ProtocolKind::kSynapse:
      return make_synapse(node, num_clients);
    case ProtocolKind::kIllinois:
      return make_illinois(node, num_clients);
    case ProtocolKind::kBerkeley:
      return make_berkeley(node, num_clients);
    case ProtocolKind::kDragon:
      return make_dragon(node, num_clients);
    case ProtocolKind::kFirefly:
      return make_firefly(node, num_clients);
  }
  DRSM_CHECK(false, "unreachable");
  return nullptr;
}

const char* to_string(CopyClass cls) {
  switch (cls) {
    case CopyClass::kInvalid: return "invalid";
    case CopyClass::kShared: return "shared";
    case CopyClass::kExclusive: return "exclusive";
  }
  return "?";
}

CopyClass classify_state(ProtocolKind kind, std::string_view state_name) {
  // Names shared by every protocol that uses them.
  if (state_name == "INVALID") return CopyClass::kInvalid;
  switch (kind) {
    case ProtocolKind::kWriteThrough:
    case ProtocolKind::kWriteThroughV:
      if (state_name == "VALID") return CopyClass::kShared;
      break;
    case ProtocolKind::kWriteOnce:
      if (state_name == "VALID") return CopyClass::kShared;
      // RESERVED is exclusive-clean: the next local write is silent.
      if (state_name == "RESERVED" || state_name == "DIRTY")
        return CopyClass::kExclusive;
      break;
    case ProtocolKind::kSynapse:
    case ProtocolKind::kIllinois:
      if (state_name == "VALID") return CopyClass::kShared;
      if (state_name == "DIRTY") return CopyClass::kExclusive;
      break;
    case ProtocolKind::kBerkeley:
      if (state_name == "VALID" || state_name == "SHARED-DIRTY")
        return CopyClass::kShared;
      if (state_name == "DIRTY") return CopyClass::kExclusive;
      break;
    case ProtocolKind::kDragon:
      if (state_name == "SHARED-CLEAN" || state_name == "SHARED-DIRTY")
        return CopyClass::kShared;
      break;
    case ProtocolKind::kFirefly:
      if (state_name == "SHARED" || state_name == "VALID")
        return CopyClass::kShared;
      break;
  }
  throw Error(std::string("classify_state: protocol ") + to_string(kind) +
              " has no copy state named " + std::string(state_name));
}

std::vector<std::string> copy_state_names(ProtocolKind kind, bool sequencer) {
  switch (kind) {
    case ProtocolKind::kWriteThrough:
    case ProtocolKind::kWriteThroughV:
      if (sequencer) return {"VALID"};
      return {"INVALID", "VALID"};
    case ProtocolKind::kWriteOnce:
      if (sequencer) return {"VALID", "INVALID"};
      return {"INVALID", "VALID", "RESERVED", "DIRTY"};
    case ProtocolKind::kSynapse:
    case ProtocolKind::kIllinois:
      if (sequencer) return {"VALID", "INVALID"};
      return {"INVALID", "VALID", "DIRTY"};
    case ProtocolKind::kBerkeley:
      return {"INVALID", "VALID", "SHARED-DIRTY", "DIRTY"};
    case ProtocolKind::kDragon:
      return sequencer ? std::vector<std::string>{"SHARED-DIRTY"}
                       : std::vector<std::string>{"SHARED-CLEAN"};
    case ProtocolKind::kFirefly:
      return sequencer ? std::vector<std::string>{"VALID"}
                       : std::vector<std::string>{"SHARED"};
  }
  DRSM_CHECK(false, "unreachable");
  return {};
}

ConvergenceLevel convergence_level(ProtocolKind kind) {
  return kind == ProtocolKind::kDragon ? ConvergenceLevel::kWriterMayLag
                                       : ConvergenceLevel::kConverges;
}

bool supports(ProtocolKind kind, fsm::OpKind op) {
  switch (op) {
    case fsm::OpKind::kRead:
    case fsm::OpKind::kWrite:
      return true;
    case fsm::OpKind::kEject:
    case fsm::OpKind::kSync:
      // The extension operations are implemented on the Write-Through
      // family (client machines with an INVALID state and a fixed
      // sequencer).
      return kind == ProtocolKind::kWriteThrough ||
             kind == ProtocolKind::kWriteThroughV;
  }
  return false;
}

}  // namespace drsm::protocols
