// Distributed Dragon protocol, Appendix A Fig. 11.
//
// Write-update: every copy is always readable, and a write broadcasts the
// write parameters to every other node.  The client's copy has the single
// state SHARED-CLEAN, the sequencer's SHARED-DIRTY.  A client write sends
// the parameters to the sequencer (P+1), which re-broadcasts them to the
// other N-1 clients ((N-1)(P+1)): total N(P+1) per write, matching the
// paper's ideal-workload cost acc = p*N*(P+1).  Reads never communicate.
#include "protocols/detail.h"

#include "support/error.h"

namespace drsm::protocols {
namespace {

using namespace drsm::fsm;
using detail::make_msg;

class DragonClient final : public ProtocolMachine {
 public:
  void on_message(MachineContext& ctx, const Message& msg) override {
    switch (msg.token.type) {
      case MsgType::kReadReq:
        ctx.return_read(value_, version_);
        break;
      case MsgType::kWriteReq:
        // Apply optimistically; the sequencer serializes and re-broadcasts.
        value_ = msg.value;
        ctx.send(ctx.home(),
                 make_msg(MsgType::kUpdate, ctx.self(), msg.token.object,
                          ParamPresence::kWriteParams, msg.value));
        ctx.complete_write(0);
        break;
      case MsgType::kUpdate:
        if (msg.version >= version_) {
          value_ = msg.value;
          version_ = msg.version;
        }
        break;
      default:
        DRSM_CHECK(false, "DRG client: unexpected message " +
                              msg.debug_string());
    }
  }

  std::unique_ptr<ProtocolMachine> clone() const override {
    return std::make_unique<DragonClient>(*this);
  }

  void encode(std::vector<std::uint8_t>& out) const override {
    out.push_back(0);  // single state SHARED-CLEAN
  }

  bool decode(const std::uint8_t*& p, const std::uint8_t* end) override {
    detail::take_u8(p, end);
    return true;
  }

  bool encode_relabeled(std::vector<std::uint8_t>& out, const NodeId*,
                        std::size_t) const override {
    encode_full(out);  // no NodeIds in the encoding
    return true;
  }

  void encode_state(std::vector<std::uint8_t>& out) const override {
    detail::put_u64(out, value_);
    detail::put_u64(out, version_);
  }

  bool decode_state(const std::uint8_t*& p, const std::uint8_t* end) override {
    value_ = detail::take_u64(p, end);
    version_ = detail::take_u64(p, end);
    return true;
  }

  const char* state_name() const override { return "SHARED-CLEAN"; }

 private:
  std::uint64_t value_ = 0;
  std::uint64_t version_ = 0;
};

class DragonSequencer final : public ProtocolMachine {
 public:
  void on_message(MachineContext& ctx, const Message& msg) override {
    switch (msg.token.type) {
      case MsgType::kReadReq:
        ctx.return_read(value_, version_);
        break;
      case MsgType::kWriteReq:
        value_ = msg.value;
        version_ = ctx.next_version();
        ctx.commit_write(version_, value_);
        ctx.send_except({ctx.home()},
                        make_msg(MsgType::kUpdate, ctx.self(),
                                 msg.token.object,
                                 ParamPresence::kWriteParams, value_,
                                 version_));
        ctx.complete_write(version_);
        break;
      case MsgType::kUpdate:
        // A client's write: sequence it and propagate to everyone else.
        value_ = msg.value;
        version_ = ctx.next_version();
        ctx.commit_write(version_, value_);
        ctx.send_except({msg.token.initiator, ctx.home()},
                        make_msg(MsgType::kUpdate, msg.token.initiator,
                                 msg.token.object,
                                 ParamPresence::kWriteParams, value_,
                                 version_));
        break;
      default:
        DRSM_CHECK(false, "DRG sequencer: unexpected message " +
                              msg.debug_string());
    }
  }

  std::unique_ptr<ProtocolMachine> clone() const override {
    return std::make_unique<DragonSequencer>(*this);
  }

  void encode(std::vector<std::uint8_t>& out) const override {
    out.push_back(0);  // single state SHARED-DIRTY
  }

  bool decode(const std::uint8_t*& p, const std::uint8_t* end) override {
    detail::take_u8(p, end);
    return true;
  }

  bool encode_relabeled(std::vector<std::uint8_t>& out, const NodeId*,
                        std::size_t) const override {
    encode_full(out);  // no NodeIds in the encoding
    return true;
  }

  void encode_state(std::vector<std::uint8_t>& out) const override {
    detail::put_u64(out, value_);
    detail::put_u64(out, version_);
  }

  bool decode_state(const std::uint8_t*& p, const std::uint8_t* end) override {
    value_ = detail::take_u64(p, end);
    version_ = detail::take_u64(p, end);
    return true;
  }

  const char* state_name() const override { return "SHARED-DIRTY"; }

 private:
  std::uint64_t value_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace

std::unique_ptr<fsm::ProtocolMachine> make_dragon(NodeId node,
                                                  std::size_t num_clients) {
  if (node == static_cast<NodeId>(num_clients))
    return std::make_unique<DragonSequencer>();
  return std::make_unique<DragonClient>();
}

}  // namespace drsm::protocols
