// Distributed Berkeley protocol, Appendix A Fig. 12.
//
// Ownership — and with it the sequencer role — migrates: "the role of the
// sequencer can be taken by different nodes during protocol execution", and
// in the steady state "an activity center becomes the sequencer", which is
// why Berkeley beats the fixed-sequencer invalidate protocols under read
// disturbance (Section 5.1).
//
// Every node runs the same machine.  Owner states: DIRTY (exclusive) and
// SHARED-DIRTY; non-owner states: VALID and INVALID.  The home node starts
// as the owner in DIRTY.  Each node tracks its belief of the current owner;
// the belief is refreshed by every invalidation broadcast (whose sender is
// by construction the current owner), so after any write the whole system
// agrees on the owner.  Requests that reach a stale owner are forwarded.
//
// Costs: read miss S+2 (R-PER + R-GNT(ui)); owner write in SHARED-DIRTY
// N (invalidate broadcast); write migration N+2 from a VALID copy
// (W-PER + bare OWN-XFER + broadcast) or S+N+2 from INVALID (the transfer
// carries the data).  Reads and writes at a DIRTY owner are free — hence
// acc = 0 for the ideal workload.
#include "protocols/detail.h"

#include "support/error.h"

namespace drsm::protocols {
namespace {

using namespace drsm::fsm;
using detail::make_msg;

enum class BerState : std::uint8_t { kInvalid, kValid, kSharedDirty, kDirty };

class BerkeleyNode final : public ProtocolMachine {
 public:
  BerkeleyNode(NodeId self, std::size_t num_clients) {
    const NodeId home = static_cast<NodeId>(num_clients);
    owner_ = home;
    state_ = self == home ? BerState::kDirty : BerState::kInvalid;
  }

  void on_message(MachineContext& ctx, const Message& msg) override {
    switch (msg.token.type) {
      case MsgType::kReadReq:
        if (state_ != BerState::kInvalid) {
          ctx.return_read(value_, version_);
        } else {
          ctx.disable_local_queue();
          pending_ = PendingOp::kRead;
          ctx.send(owner_, make_msg(MsgType::kReadPer, ctx.self(),
                                    msg.token.object, ParamPresence::kNone));
        }
        break;
      case MsgType::kWriteReq:
        switch (state_) {
          case BerState::kDirty:
            value_ = msg.value;
            version_ = ctx.next_version();
            ctx.commit_write(version_, value_);
            ctx.complete_write(version_);
            break;
          case BerState::kSharedDirty:
            value_ = msg.value;
            version_ = ctx.next_version();
            ctx.commit_write(version_, value_);
            ctx.send_except({ctx.self()},
                            make_msg(MsgType::kInval, ctx.self(),
                                     msg.token.object, ParamPresence::kNone));
            state_ = BerState::kDirty;
            ctx.complete_write(version_);
            break;
          case BerState::kValid:
          case BerState::kInvalid:
            ctx.disable_local_queue();
            pending_ = PendingOp::kWrite;
            pending_value_ = msg.value;
            // kReadParams marks "ship the data with the ownership".
            ctx.send(owner_,
                     make_msg(MsgType::kWritePer, ctx.self(),
                              msg.token.object,
                              state_ == BerState::kInvalid
                                  ? ParamPresence::kReadParams
                                  : ParamPresence::kNone));
            break;
        }
        break;
      case MsgType::kReadPer:
        if (is_owner()) {
          ctx.send(msg.token.initiator,
                   make_msg(MsgType::kReadGnt, msg.token.initiator,
                            msg.token.object, ParamPresence::kUserInfo,
                            value_, version_));
          state_ = BerState::kSharedDirty;
        } else {
          forward(ctx, msg);
        }
        break;
      case MsgType::kWritePer:
        if (is_owner()) {
          // Hand over ownership; ship data if the requester misses or if our
          // exclusive copy means its VALID claim went stale in flight.
          const bool ship_data =
              msg.token.params == ParamPresence::kReadParams ||
              state_ == BerState::kDirty;
          state_ = BerState::kInvalid;
          owner_ = msg.token.initiator;
          ctx.send(msg.token.initiator,
                   make_msg(MsgType::kOwnerXfer, msg.token.initiator,
                            msg.token.object,
                            ship_data ? ParamPresence::kUserInfo
                                      : ParamPresence::kNone,
                            value_, version_));
        } else {
          forward(ctx, msg);
        }
        break;
      case MsgType::kOwnerXfer:
        DRSM_CHECK(pending_ == PendingOp::kWrite, "BER: stray OWN-XFER");
        if (msg.token.params == ParamPresence::kUserInfo) {
          value_ = msg.value;
          version_ = msg.version;
        }
        owner_ = ctx.self();
        value_ = pending_value_;
        version_ = ctx.next_version();
        state_ = BerState::kDirty;
        pending_ = PendingOp::kNone;
        ctx.commit_write(version_, value_);
        ctx.send_except({ctx.self()},
                        make_msg(MsgType::kInval, ctx.self(),
                                 msg.token.object, ParamPresence::kNone));
        ctx.complete_write(version_);
        ctx.enable_local_queue();
        break;
      case MsgType::kReadGnt:
        pending_ = PendingOp::kNone;
        if (inval_raced_) {
          // An invalidation broadcast crossed this grant in flight: the
          // grantor lost ownership after granting, so the data is already
          // stale.  Return it to the waiting application (the read
          // serializes before the invalidating write) but do not retain
          // the copy, and keep the owner belief the invalidation carried
          // — it is the newer information.
          inval_raced_ = false;
          ctx.return_read(msg.value, msg.version);
          ctx.enable_local_queue();
          break;
        }
        value_ = msg.value;
        version_ = msg.version;
        state_ = BerState::kValid;
        owner_ = msg.sender;
        ctx.return_read(value_, version_);
        ctx.enable_local_queue();
        break;
      case MsgType::kInval:
        // Invalidation broadcasts always originate at the (new) owner.
        if (!is_owner()) {
          state_ = BerState::kInvalid;
          owner_ = msg.sender;
          if (pending_ == PendingOp::kRead) inval_raced_ = true;
        }
        break;
      default:
        DRSM_CHECK(false, "BER node: unexpected message " +
                              msg.debug_string());
    }
  }

  std::unique_ptr<ProtocolMachine> clone() const override {
    return std::make_unique<BerkeleyNode>(*this);
  }

  void encode(std::vector<std::uint8_t>& out) const override {
    out.push_back(static_cast<std::uint8_t>(state_));
    for (int shift = 0; shift < 32; shift += 8)
      out.push_back(static_cast<std::uint8_t>(owner_ >> shift));
  }

  void encode_full(std::vector<std::uint8_t>& out) const override {
    encode(out);
    out.push_back(static_cast<std::uint8_t>(pending_));
    out.push_back(inval_raced_ ? 1 : 0);
  }

  bool decode(const std::uint8_t*& p, const std::uint8_t* end) override {
    state_ = static_cast<BerState>(detail::take_u8(p, end));
    owner_ = detail::take_u32(p, end);
    pending_ = PendingOp::kNone;
    inval_raced_ = false;
    return true;
  }

  bool encode_relabeled(std::vector<std::uint8_t>& out, const NodeId* map,
                        std::size_t n) const override {
    out.push_back(static_cast<std::uint8_t>(state_));
    detail::put_u32(out, detail::map_node(owner_, map, n));
    out.push_back(static_cast<std::uint8_t>(pending_));
    out.push_back(inval_raced_ ? 1 : 0);
    return true;
  }

  void encode_state(std::vector<std::uint8_t>& out) const override {
    out.push_back(static_cast<std::uint8_t>(state_));
    detail::put_u32(out, owner_);
    detail::put_u64(out, value_);
    detail::put_u64(out, version_);
    detail::put_u64(out, pending_value_);
    out.push_back(static_cast<std::uint8_t>(pending_));
    out.push_back(inval_raced_ ? 1 : 0);
  }

  bool decode_state(const std::uint8_t*& p, const std::uint8_t* end) override {
    state_ = static_cast<BerState>(detail::take_u8(p, end));
    owner_ = detail::take_u32(p, end);
    value_ = detail::take_u64(p, end);
    version_ = detail::take_u64(p, end);
    pending_value_ = detail::take_u64(p, end);
    pending_ = static_cast<PendingOp>(detail::take_u8(p, end));
    inval_raced_ = detail::take_u8(p, end) != 0;
    return true;
  }

  bool quiescent() const override { return pending_ == PendingOp::kNone; }

  const char* state_name() const override {
    switch (state_) {
      case BerState::kInvalid: return "INVALID";
      case BerState::kValid: return "VALID";
      case BerState::kSharedDirty: return "SHARED-DIRTY";
      case BerState::kDirty: return "DIRTY";
    }
    return "?";
  }

 private:
  enum class PendingOp : std::uint8_t { kNone, kRead, kWrite };

  bool is_owner() const {
    return state_ == BerState::kDirty || state_ == BerState::kSharedDirty;
  }

  void forward(MachineContext& ctx, const Message& msg) {
    DRSM_CHECK(msg.hops < 64, "BER: forwarding loop");
    Message fwd = msg;
    ++fwd.hops;
    ctx.send(owner_, fwd);
  }

  BerState state_ = BerState::kInvalid;
  NodeId owner_ = kNoNode;
  std::uint64_t value_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t pending_value_ = 0;
  PendingOp pending_ = PendingOp::kNone;
  bool inval_raced_ = false;  // an inval arrived while a read was pending
};

}  // namespace

std::unique_ptr<fsm::ProtocolMachine> make_berkeley(NodeId node,
                                                    std::size_t num_clients) {
  return std::make_unique<BerkeleyNode>(node, num_clients);
}

}  // namespace drsm::protocols
