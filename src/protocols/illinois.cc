// Distributed Illinois protocol.
//
// Same client state diagram as Synapse (INVALID, VALID, DIRTY) but the
// sequencer "updates all the time the address of the client which has the
// only valid copy" (Appendix A): on a miss that hits a DIRTY copy held
// elsewhere it recalls the copy and serves the requester directly — no NACK
// and no retry round, which is why Illinois is strictly cheaper than
// Synapse.  Additionally, a write to a copy that is still VALID needs no
// data transfer: the sequencer invalidates the other sharers and answers
// with a bare W-GNT token (cost N+1).
//
// The sequencer keeps a per-client valid bit (set on grant, cleared on
// invalidation).  It is authoritative because the sequencer itself
// serializes all grants and invalidations, and it lets a write request be
// answered with or without data depending on whether the requester's copy
// survived the races in flight.
#include "protocols/detail.h"


#include "support/error.h"

namespace drsm::protocols {
namespace {

using namespace drsm::fsm;
using detail::make_msg;

enum class IllState : std::uint8_t { kInvalid, kValid, kDirty };

class IllinoisClient final : public ProtocolMachine {
 public:
  void on_message(MachineContext& ctx, const Message& msg) override {
    switch (msg.token.type) {
      case MsgType::kReadReq:
        if (state_ != IllState::kInvalid) {
          ctx.return_read(value_, version_);
        } else {
          ctx.disable_local_queue();
          ctx.send(ctx.home(), make_msg(MsgType::kReadPer, ctx.self(),
                                        msg.token.object,
                                        ParamPresence::kNone));
        }
        break;
      case MsgType::kWriteReq:
        if (state_ == IllState::kDirty) {
          value_ = msg.value;
          version_ = ctx.next_version();
          ctx.commit_write(version_, value_);
          ctx.complete_write(version_);
        } else {
          ctx.disable_local_queue();
          pending_value_ = msg.value;
          ctx.send(ctx.home(), make_msg(MsgType::kWritePer, ctx.self(),
                                        msg.token.object,
                                        ParamPresence::kNone));
        }
        break;
      case MsgType::kReadGnt:
        value_ = msg.value;
        version_ = msg.version;
        state_ = IllState::kValid;
        ctx.return_read(value_, version_);
        ctx.enable_local_queue();
        break;
      case MsgType::kWriteGnt:
        // With user info: full exclusive fetch.  Bare token: our VALID copy
        // is still current, upgrade in place.
        if (msg.token.params == ParamPresence::kUserInfo) {
          value_ = msg.value;
          version_ = msg.version;
        }
        value_ = pending_value_;
        version_ = ctx.next_version();
        state_ = IllState::kDirty;
        ctx.commit_write(version_, value_);
        ctx.complete_write(version_);
        ctx.enable_local_queue();
        break;
      case MsgType::kInval:
        state_ = IllState::kInvalid;
        break;
      case MsgType::kRecallShared:
        DRSM_CHECK(state_ == IllState::kDirty, "ILL: recall of a clean copy");
        ctx.send(ctx.home(),
                 make_msg(MsgType::kFlushData, msg.token.initiator, msg.token.object,
                          ParamPresence::kUserInfo, value_, version_));
        state_ = IllState::kValid;
        break;
      case MsgType::kRecallInval:
        DRSM_CHECK(state_ == IllState::kDirty, "ILL: recall of a clean copy");
        ctx.send(ctx.home(),
                 make_msg(MsgType::kFlushData, msg.token.initiator, msg.token.object,
                          ParamPresence::kUserInfo, value_, version_));
        state_ = IllState::kInvalid;
        break;
      default:
        DRSM_CHECK(false, "ILL client: unexpected message " +
                              msg.debug_string());
    }
  }

  std::unique_ptr<ProtocolMachine> clone() const override {
    return std::make_unique<IllinoisClient>(*this);
  }

  void encode(std::vector<std::uint8_t>& out) const override {
    out.push_back(static_cast<std::uint8_t>(state_));
  }

  bool decode(const std::uint8_t*& p, const std::uint8_t* end) override {
    state_ = static_cast<IllState>(detail::take_u8(p, end));
    return true;
  }

  bool encode_relabeled(std::vector<std::uint8_t>& out, const NodeId*,
                        std::size_t) const override {
    encode_full(out);  // no NodeIds in the encoding
    return true;
  }

  void encode_state(std::vector<std::uint8_t>& out) const override {
    out.push_back(static_cast<std::uint8_t>(state_));
    detail::put_u64(out, value_);
    detail::put_u64(out, version_);
    detail::put_u64(out, pending_value_);
  }

  bool decode_state(const std::uint8_t*& p, const std::uint8_t* end) override {
    state_ = static_cast<IllState>(detail::take_u8(p, end));
    value_ = detail::take_u64(p, end);
    version_ = detail::take_u64(p, end);
    pending_value_ = detail::take_u64(p, end);
    return true;
  }

  const char* state_name() const override {
    switch (state_) {
      case IllState::kInvalid: return "INVALID";
      case IllState::kValid: return "VALID";
      case IllState::kDirty: return "DIRTY";
    }
    return "?";
  }

 private:
  IllState state_ = IllState::kInvalid;
  std::uint64_t value_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t pending_value_ = 0;
};

class IllinoisSequencer final : public ProtocolMachine {
 public:
  explicit IllinoisSequencer(std::size_t num_clients)
      : valid_(num_clients, false) {}

  void on_message(MachineContext& ctx, const Message& msg) override {
    if (pending_ != Pending::kNone && msg.token.type != MsgType::kFlushData) {
      deferred_.push_back(msg);
      return;
    }
    switch (msg.token.type) {
      case MsgType::kReadReq:  // own application
        if (owner_ == kNoNode) {
          ctx.return_read(value_, version_);
        } else {
          begin_recall(ctx, Pending::kLocalRead, msg, MsgType::kRecallShared);
        }
        break;
      case MsgType::kWriteReq:  // own application
        if (owner_ == kNoNode) {
          apply_local_write(ctx, msg.value, msg.token.object);
        } else {
          pending_value_ = msg.value;
          begin_recall(ctx, Pending::kLocalWrite, msg, MsgType::kRecallInval);
        }
        break;
      case MsgType::kReadPer:
        if (owner_ == kNoNode) {
          grant_read(ctx, msg.token.initiator, msg.token.object);
        } else {
          begin_recall(ctx, Pending::kServeRead, msg, MsgType::kRecallShared);
        }
        break;
      case MsgType::kWritePer:
        if (owner_ == kNoNode) {
          grant_write(ctx, msg.token.initiator, msg.token.object);
        } else {
          begin_recall(ctx, Pending::kServeWrite, msg, MsgType::kRecallInval);
        }
        break;
      case MsgType::kFlushData: {
        value_ = msg.value;
        version_ = msg.version;
        // RecallShared leaves the old owner with a VALID copy.
        if (recall_kept_copy_) valid_[owner_] = true;
        owner_ = kNoNode;
        finish_recall(ctx);
        break;
      }
      default:
        DRSM_CHECK(false, "ILL sequencer: unexpected message " +
                              msg.debug_string());
    }
  }

  std::unique_ptr<ProtocolMachine> clone() const override {
    return std::make_unique<IllinoisSequencer>(*this);
  }

  void encode(std::vector<std::uint8_t>& out) const override {
    DRSM_CHECK(quiescent(), "ILL sequencer encoded mid-recall");
    out.push_back(owner_ == kNoNode ? 0 : 1);
    for (int shift = 0; shift < 32; shift += 8)
      out.push_back(static_cast<std::uint8_t>(
          (owner_ == kNoNode ? 0u : owner_) >> shift));
    // Valid bitset, packed.
    std::uint8_t acc = 0;
    int bits = 0;
    for (std::size_t i = 0; i < valid_.size(); ++i) {
      acc = static_cast<std::uint8_t>(acc | ((valid_[i] ? 1 : 0) << bits));
      if (++bits == 8) {
        out.push_back(acc);
        acc = 0;
        bits = 0;
      }
    }
    if (bits != 0) out.push_back(acc);
  }

  void encode_full(std::vector<std::uint8_t>& out) const override {
    out.push_back(owner_ == kNoNode ? 0 : 1);
    detail::put_u32(out, owner_ == kNoNode ? 0u : owner_);
    std::uint8_t acc = 0;
    int bits = 0;
    for (std::size_t i = 0; i < valid_.size(); ++i) {
      acc = static_cast<std::uint8_t>(acc | ((valid_[i] ? 1 : 0) << bits));
      if (++bits == 8) {
        out.push_back(acc);
        acc = 0;
        bits = 0;
      }
    }
    if (bits != 0) out.push_back(acc);
    out.push_back(static_cast<std::uint8_t>(pending_));
    out.push_back(recall_kept_copy_ ? 1 : 0);
    if (pending_ != Pending::kNone) detail::encode_token(out, pending_msg_);
    out.push_back(static_cast<std::uint8_t>(deferred_.size()));
    for (const Message& msg : deferred_) detail::encode_token(out, msg);
  }

  bool decode(const std::uint8_t*& p, const std::uint8_t* end) override {
    const bool has_owner = detail::take_u8(p, end) != 0;
    const NodeId owner = detail::take_u32(p, end);
    owner_ = has_owner ? owner : kNoNode;
    for (std::size_t i = 0; i < valid_.size(); i += 8) {
      const std::uint8_t acc = detail::take_u8(p, end);
      for (std::size_t bit = 0; bit < 8 && i + bit < valid_.size(); ++bit)
        valid_[i + bit] = ((acc >> bit) & 1) != 0;
    }
    pending_ = Pending::kNone;
    recall_kept_copy_ = false;
    deferred_.clear();
    return true;
  }

  bool encode_relabeled(std::vector<std::uint8_t>& out, const NodeId* map,
                        std::size_t n) const override {
    out.push_back(owner_ == kNoNode ? 0 : 1);
    detail::put_u32(out,
                    owner_ == kNoNode ? 0u : detail::map_node(owner_, map, n));
    // The per-client valid bitset indexes clients by id, so the bits
    // themselves move under the relabeling: new bit map[i] = old bit i.
    std::vector<bool> relabeled(valid_.size(), false);
    for (std::size_t i = 0; i < valid_.size(); ++i)
      if (valid_[i]) relabeled[detail::map_node(static_cast<NodeId>(i), map,
                                                n)] = true;
    std::uint8_t acc = 0;
    int bits = 0;
    for (std::size_t i = 0; i < relabeled.size(); ++i) {
      acc = static_cast<std::uint8_t>(acc | ((relabeled[i] ? 1 : 0) << bits));
      if (++bits == 8) {
        out.push_back(acc);
        acc = 0;
        bits = 0;
      }
    }
    if (bits != 0) out.push_back(acc);
    out.push_back(static_cast<std::uint8_t>(pending_));
    out.push_back(recall_kept_copy_ ? 1 : 0);
    if (pending_ != Pending::kNone)
      detail::encode_token_relabeled(out, pending_msg_, map, n);
    out.push_back(static_cast<std::uint8_t>(deferred_.size()));
    for (const Message& msg : deferred_)
      detail::encode_token_relabeled(out, msg, map, n);
    return true;
  }

  void encode_state(std::vector<std::uint8_t>& out) const override {
    detail::put_u64(out, value_);
    detail::put_u64(out, version_);
    detail::put_u64(out, pending_value_);
    detail::put_u32(out, owner_);
    out.push_back(static_cast<std::uint8_t>(valid_.size()));
    for (std::size_t i = 0; i < valid_.size(); ++i)
      out.push_back(valid_[i] ? 1 : 0);
    out.push_back(static_cast<std::uint8_t>(pending_));
    out.push_back(recall_kept_copy_ ? 1 : 0);
    detail::encode_message(out, pending_msg_);
    out.push_back(static_cast<std::uint8_t>(deferred_.size()));
    for (const Message& msg : deferred_) detail::encode_message(out, msg);
  }

  bool decode_state(const std::uint8_t*& p, const std::uint8_t* end) override {
    value_ = detail::take_u64(p, end);
    version_ = detail::take_u64(p, end);
    pending_value_ = detail::take_u64(p, end);
    owner_ = detail::take_u32(p, end);
    valid_.assign(detail::take_u8(p, end), false);
    for (std::size_t i = 0; i < valid_.size(); ++i)
      valid_[i] = detail::take_u8(p, end) != 0;
    pending_ = static_cast<Pending>(detail::take_u8(p, end));
    recall_kept_copy_ = detail::take_u8(p, end) != 0;
    pending_msg_ = detail::decode_message(p, end);
    deferred_.clear();
    const std::size_t count = detail::take_u8(p, end);
    for (std::size_t i = 0; i < count; ++i)
      deferred_.push_back(detail::decode_message(p, end));
    return true;
  }

  bool quiescent() const override {
    return pending_ == Pending::kNone && deferred_.empty();
  }

  const char* state_name() const override {
    return owner_ == kNoNode ? "VALID" : "INVALID";
  }

 private:
  enum class Pending : std::uint8_t {
    kNone,
    kServeRead,
    kServeWrite,
    kLocalRead,
    kLocalWrite,
  };

  void grant_read(MachineContext& ctx, NodeId requester, ObjectId object) {
    ctx.send(requester, make_msg(MsgType::kReadGnt, requester, object,
                                 ParamPresence::kUserInfo, value_, version_));
    valid_[requester] = true;
  }

  void grant_write(MachineContext& ctx, NodeId requester, ObjectId object) {
    const bool requester_valid = valid_[requester];
    for (std::size_t i = 0; i < valid_.size(); ++i) valid_[i] = false;
    ctx.send_except({requester, ctx.home()},
                    make_msg(MsgType::kInval, requester, object,
                             ParamPresence::kNone));
    // A still-valid copy upgrades with a bare token; otherwise ship data.
    ctx.send(requester,
             make_msg(MsgType::kWriteGnt, requester, object,
                      requester_valid ? ParamPresence::kNone
                                      : ParamPresence::kUserInfo,
                      value_, version_));
    owner_ = requester;
  }

  void apply_local_write(MachineContext& ctx, std::uint64_t value,
                         ObjectId object) {
    value_ = value;
    version_ = ctx.next_version();
    ctx.commit_write(version_, value_);
    for (std::size_t i = 0; i < valid_.size(); ++i) valid_[i] = false;
    ctx.send_except({ctx.home()}, make_msg(MsgType::kInval, ctx.self(),
                                           object, ParamPresence::kNone));
    ctx.complete_write(version_);
  }

  void begin_recall(MachineContext& ctx, Pending pending, const Message& msg,
                    MsgType recall) {
    pending_ = pending;
    pending_msg_ = msg;
    recall_kept_copy_ = recall == MsgType::kRecallShared;
    ctx.send(owner_, make_msg(recall, msg.token.initiator, msg.token.object,
                              ParamPresence::kNone));
  }

  void finish_recall(MachineContext& ctx) {
    const Pending pending = pending_;
    const Message msg = pending_msg_;
    pending_ = Pending::kNone;
    switch (pending) {
      case Pending::kServeRead:
        grant_read(ctx, msg.token.initiator, msg.token.object);
        break;
      case Pending::kServeWrite:
        grant_write(ctx, msg.token.initiator, msg.token.object);
        break;
      case Pending::kLocalRead:
        ctx.return_read(value_, version_);
        break;
      case Pending::kLocalWrite:
        apply_local_write(ctx, pending_value_, msg.token.object);
        break;
      case Pending::kNone:
        DRSM_CHECK(false, "ILL: flush without recall");
    }
    std::vector<Message> backlog;
    backlog.swap(deferred_);
    for (const Message& queued : backlog) on_message(ctx, queued);
  }

  std::uint64_t value_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t pending_value_ = 0;
  NodeId owner_ = kNoNode;
  std::vector<bool> valid_;
  Pending pending_ = Pending::kNone;
  bool recall_kept_copy_ = false;
  Message pending_msg_;
  std::vector<Message> deferred_;
};

}  // namespace

std::unique_ptr<fsm::ProtocolMachine> make_illinois(NodeId node,
                                                    std::size_t num_clients) {
  if (node == static_cast<NodeId>(num_clients))
    return std::make_unique<IllinoisSequencer>(num_clients);
  return std::make_unique<IllinoisClient>();
}

}  // namespace drsm::protocols
