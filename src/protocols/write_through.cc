// Distributed Write-Through protocol (the paper's worked example,
// Sections 2-4).
//
// Client copy states: INVALID (start), VALID.  The sequencer's copy is
// always VALID and is the master: every write is forwarded to it, which
// applies the write parameters and invalidates every other copy.  The
// writer's own copy is NOT updated (write-through without local allocate),
// which is what makes trace tr2 (read after own write) cost S+2.
//
// Trace communication costs reproduced here (Section 4.1):
//   tr1 client read,  VALID copy ............. 0
//   tr2 client read,  INVALID copy ........... S+2   (R-PER + R-GNT(ui))
//   tr3 client write, VALID copy ............. P+N   (W-PER(w) + N-1 W-INV)
//   tr4 client write, INVALID copy ........... P+N
//   tr5 sequencer read ........................ 0
//   tr6 sequencer write ....................... N     (N W-INV)
#include "protocols/detail.h"

#include "support/error.h"

namespace drsm::protocols {
namespace {

using namespace drsm::fsm;
using detail::make_msg;

class WtClient final : public ProtocolMachine {
 public:
  void on_message(MachineContext& ctx, const Message& msg) override {
    switch (msg.token.type) {
      case MsgType::kReadReq:
        if (valid_) {
          ctx.return_read(value_, version_);
        } else {
          ctx.disable_local_queue();
          ctx.send(ctx.home(), make_msg(MsgType::kReadPer, ctx.self(),
                                        msg.token.object,
                                        ParamPresence::kNone));
        }
        break;
      case MsgType::kReadGnt:
        value_ = msg.value;
        version_ = msg.version;
        valid_ = true;
        ctx.return_read(value_, version_);
        ctx.enable_local_queue();
        break;
      case MsgType::kWriteReq:
        // Fire-and-forget: the sequencer serializes and applies the write.
        ctx.send(ctx.home(),
                 make_msg(MsgType::kWritePer, ctx.self(), msg.token.object,
                          ParamPresence::kWriteParams, msg.value));
        valid_ = false;
        ctx.complete_write(0);
        break;
      case MsgType::kInval:
        valid_ = false;
        break;
      case MsgType::kEject:
        valid_ = false;
        ctx.complete_op();
        break;
      case MsgType::kSyncReq:
        // Barrier: a round trip through the sequencer flushes the channel.
        ctx.disable_local_queue();
        ctx.send(ctx.home(), make_msg(MsgType::kSyncReq, ctx.self(),
                                      msg.token.object,
                                      ParamPresence::kNone));
        break;
      case MsgType::kSyncAck:
        ctx.complete_op();
        ctx.enable_local_queue();
        break;
      default:
        DRSM_CHECK(false, "WT client: unexpected message " +
                              msg.debug_string());
    }
  }

  std::unique_ptr<ProtocolMachine> clone() const override {
    return std::make_unique<WtClient>(*this);
  }

  void encode(std::vector<std::uint8_t>& out) const override {
    out.push_back(valid_ ? 1 : 0);
  }

  bool decode(const std::uint8_t*& p, const std::uint8_t* end) override {
    valid_ = detail::take_u8(p, end) != 0;
    return true;
  }

  bool encode_relabeled(std::vector<std::uint8_t>& out, const NodeId*,
                        std::size_t) const override {
    encode_full(out);  // no NodeIds in the encoding
    return true;
  }

  void encode_state(std::vector<std::uint8_t>& out) const override {
    out.push_back(valid_ ? 1 : 0);
    detail::put_u64(out, value_);
    detail::put_u64(out, version_);
  }

  bool decode_state(const std::uint8_t*& p, const std::uint8_t* end) override {
    valid_ = detail::take_u8(p, end) != 0;
    value_ = detail::take_u64(p, end);
    version_ = detail::take_u64(p, end);
    return true;
  }

  const char* state_name() const override {
    return valid_ ? "VALID" : "INVALID";
  }

 private:
  bool valid_ = false;
  std::uint64_t value_ = 0;
  std::uint64_t version_ = 0;
};

class WtSequencer final : public ProtocolMachine {
 public:
  void on_message(MachineContext& ctx, const Message& msg) override {
    switch (msg.token.type) {
      case MsgType::kReadReq:
        ctx.return_read(value_, version_);
        break;
      case MsgType::kWriteReq:
        value_ = msg.value;
        version_ = ctx.next_version();
        ctx.commit_write(version_, value_);
        ctx.send_except({ctx.home()},
                        make_msg(MsgType::kInval, ctx.self(),
                                 msg.token.object, ParamPresence::kNone));
        ctx.complete_write(version_);
        break;
      case MsgType::kReadPer:
        ctx.send(msg.token.initiator,
                 make_msg(MsgType::kReadGnt, msg.token.initiator,
                          msg.token.object, ParamPresence::kUserInfo, value_,
                          version_));
        break;
      case MsgType::kWritePer:
        value_ = msg.value;
        version_ = ctx.next_version();
        ctx.commit_write(version_, value_);
        ctx.send_except({msg.token.initiator, ctx.home()},
                        make_msg(MsgType::kInval, msg.token.initiator,
                                 msg.token.object, ParamPresence::kNone));
        break;
      case MsgType::kSyncReq:
        ctx.send(msg.token.initiator,
                 make_msg(MsgType::kSyncAck, msg.token.initiator,
                          msg.token.object, ParamPresence::kNone));
        break;
      default:
        DRSM_CHECK(false, "WT sequencer: unexpected message " +
                              msg.debug_string());
    }
  }

  std::unique_ptr<ProtocolMachine> clone() const override {
    return std::make_unique<WtSequencer>(*this);
  }

  void encode(std::vector<std::uint8_t>& out) const override {
    out.push_back(1);  // always VALID
  }

  bool decode(const std::uint8_t*& p, const std::uint8_t* end) override {
    detail::take_u8(p, end);
    return true;
  }

  bool encode_relabeled(std::vector<std::uint8_t>& out, const NodeId*,
                        std::size_t) const override {
    encode_full(out);  // no NodeIds in the encoding
    return true;
  }

  void encode_state(std::vector<std::uint8_t>& out) const override {
    detail::put_u64(out, value_);
    detail::put_u64(out, version_);
  }

  bool decode_state(const std::uint8_t*& p, const std::uint8_t* end) override {
    value_ = detail::take_u64(p, end);
    version_ = detail::take_u64(p, end);
    return true;
  }

  const char* state_name() const override { return "VALID"; }

 private:
  std::uint64_t value_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace

std::unique_ptr<fsm::ProtocolMachine> make_write_through(
    NodeId node, std::size_t num_clients) {
  if (node == static_cast<NodeId>(num_clients))
    return std::make_unique<WtSequencer>();
  return std::make_unique<WtClient>();
}

}  // namespace drsm::protocols
