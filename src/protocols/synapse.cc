// Distributed Synapse protocol, Appendix A Figs. 7-8.
//
// Client copy states: INVALID (start), VALID, DIRTY; the sequencer's copy is
// VALID or INVALID (INVALID whenever some client holds a DIRTY copy).
//
// Synapse has no cache-to-cache transfer: when a request hits a DIRTY copy
// held elsewhere, the sequencer first recalls it (the dirty client flushes
// and invalidates itself), then NACKs the requester, which retries.  This
// retry round is what makes Synapse strictly more expensive than Illinois
// on dirty misses (Section 5.1).
//
// Writes always acquire a fresh exclusive copy (there is no invalidate-only
// transaction), so a client write that is not already DIRTY costs
//   S+N+1   (W-PER + N-1 W-INV + W-GNT(ui))           with no dirty owner,
//   2S+N+5  (adds RECALL + FLUSH(ui) + NACK + retry)   with a dirty owner.
#include "protocols/detail.h"


#include "support/error.h"

namespace drsm::protocols {
namespace {

using namespace drsm::fsm;
using detail::make_msg;

enum class SynState : std::uint8_t { kInvalid, kValid, kDirty };

class SynapseClient final : public ProtocolMachine {
 public:
  void on_message(MachineContext& ctx, const Message& msg) override {
    switch (msg.token.type) {
      case MsgType::kReadReq:
        if (state_ != SynState::kInvalid) {
          ctx.return_read(value_, version_);
        } else {
          ctx.disable_local_queue();
          pending_ = PendingOp::kRead;
          send_request(ctx, msg.token.object);
        }
        break;
      case MsgType::kWriteReq:
        if (state_ == SynState::kDirty) {
          value_ = msg.value;
          version_ = ctx.next_version();
          ctx.commit_write(version_, value_);
          ctx.complete_write(version_);
        } else {
          ctx.disable_local_queue();
          pending_ = PendingOp::kWrite;
          pending_value_ = msg.value;
          send_request(ctx, msg.token.object);
        }
        break;
      case MsgType::kNack:
        // The sequencer recalled a dirty copy on our behalf; retry.
        DRSM_CHECK(pending_ != PendingOp::kNone, "SYN: stray NACK");
        send_request(ctx, msg.token.object);
        break;
      case MsgType::kReadGnt:
        value_ = msg.value;
        version_ = msg.version;
        state_ = SynState::kValid;
        pending_ = PendingOp::kNone;
        ctx.return_read(value_, version_);
        ctx.enable_local_queue();
        break;
      case MsgType::kWriteGnt:
        value_ = pending_value_;
        version_ = ctx.next_version();
        state_ = SynState::kDirty;
        pending_ = PendingOp::kNone;
        ctx.commit_write(version_, value_);
        ctx.complete_write(version_);
        ctx.enable_local_queue();
        break;
      case MsgType::kInval:
        state_ = SynState::kInvalid;
        break;
      case MsgType::kRecallInval:
        DRSM_CHECK(state_ == SynState::kDirty, "SYN: recall of a clean copy");
        ctx.send(ctx.home(),
                 make_msg(MsgType::kFlushData, msg.token.initiator, msg.token.object,
                          ParamPresence::kUserInfo, value_, version_));
        state_ = SynState::kInvalid;
        break;
      default:
        DRSM_CHECK(false, "SYN client: unexpected message " +
                              msg.debug_string());
    }
  }

  std::unique_ptr<ProtocolMachine> clone() const override {
    return std::make_unique<SynapseClient>(*this);
  }

  void encode(std::vector<std::uint8_t>& out) const override {
    out.push_back(static_cast<std::uint8_t>(state_));
  }

  void encode_full(std::vector<std::uint8_t>& out) const override {
    out.push_back(static_cast<std::uint8_t>(state_));
    out.push_back(static_cast<std::uint8_t>(pending_));
  }

  bool decode(const std::uint8_t*& p, const std::uint8_t* end) override {
    state_ = static_cast<SynState>(detail::take_u8(p, end));
    pending_ = PendingOp::kNone;
    return true;
  }

  bool encode_relabeled(std::vector<std::uint8_t>& out, const NodeId*,
                        std::size_t) const override {
    encode_full(out);  // no NodeIds in the encoding
    return true;
  }

  void encode_state(std::vector<std::uint8_t>& out) const override {
    out.push_back(static_cast<std::uint8_t>(state_));
    out.push_back(static_cast<std::uint8_t>(pending_));
    detail::put_u64(out, value_);
    detail::put_u64(out, version_);
    detail::put_u64(out, pending_value_);
  }

  bool decode_state(const std::uint8_t*& p, const std::uint8_t* end) override {
    state_ = static_cast<SynState>(detail::take_u8(p, end));
    pending_ = static_cast<PendingOp>(detail::take_u8(p, end));
    value_ = detail::take_u64(p, end);
    version_ = detail::take_u64(p, end);
    pending_value_ = detail::take_u64(p, end);
    return true;
  }

  bool quiescent() const override { return pending_ == PendingOp::kNone; }

  const char* state_name() const override {
    switch (state_) {
      case SynState::kInvalid: return "INVALID";
      case SynState::kValid: return "VALID";
      case SynState::kDirty: return "DIRTY";
    }
    return "?";
  }

 private:
  enum class PendingOp : std::uint8_t { kNone, kRead, kWrite };

  void send_request(MachineContext& ctx, ObjectId object) {
    const MsgType type = pending_ == PendingOp::kRead ? MsgType::kReadPer
                                                      : MsgType::kWritePer;
    ctx.send(ctx.home(),
             make_msg(type, ctx.self(), object, ParamPresence::kNone));
  }

  SynState state_ = SynState::kInvalid;
  std::uint64_t value_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t pending_value_ = 0;
  PendingOp pending_ = PendingOp::kNone;
};

class SynapseSequencer final : public ProtocolMachine {
 public:
  void on_message(MachineContext& ctx, const Message& msg) override {
    if (recalling_ && msg.token.type != MsgType::kFlushData) {
      deferred_.push_back(msg);
      return;
    }
    switch (msg.token.type) {
      case MsgType::kReadReq:  // own application
        if (owner_ == kNoNode) {
          ctx.return_read(value_, version_);
        } else {
          begin_recall(ctx, msg, /*nack_requester=*/false);
          local_op_ = LocalOp::kRead;
        }
        break;
      case MsgType::kWriteReq:  // own application
        if (owner_ == kNoNode) {
          apply_local_write(ctx, msg.value, msg.token.object);
        } else {
          begin_recall(ctx, msg, /*nack_requester=*/false);
          local_op_ = LocalOp::kWrite;
          pending_value_ = msg.value;
        }
        break;
      case MsgType::kReadPer:
        if (owner_ == kNoNode) {
          ctx.send(msg.token.initiator,
                   make_msg(MsgType::kReadGnt, msg.token.initiator,
                            msg.token.object, ParamPresence::kUserInfo,
                            value_, version_));
        } else {
          begin_recall(ctx, msg, /*nack_requester=*/true);
        }
        break;
      case MsgType::kWritePer:
        if (owner_ == kNoNode) {
          ctx.send_except({msg.token.initiator, ctx.home()},
                          make_msg(MsgType::kInval, msg.token.initiator,
                                   msg.token.object, ParamPresence::kNone));
          ctx.send(msg.token.initiator,
                   make_msg(MsgType::kWriteGnt, msg.token.initiator,
                            msg.token.object, ParamPresence::kUserInfo,
                            value_, version_));
          owner_ = msg.token.initiator;
        } else {
          begin_recall(ctx, msg, /*nack_requester=*/true);
        }
        break;
      case MsgType::kFlushData: {
        value_ = msg.value;
        version_ = msg.version;
        owner_ = kNoNode;
        recalling_ = false;
        const Message cause = recall_cause_;
        if (nack_requester_) {
          ctx.send(cause.token.initiator,
                   make_msg(MsgType::kNack, cause.token.initiator,
                            cause.token.object, ParamPresence::kNone));
        } else if (local_op_ == LocalOp::kRead) {
          ctx.return_read(value_, version_);
          local_op_ = LocalOp::kNone;
        } else if (local_op_ == LocalOp::kWrite) {
          apply_local_write(ctx, pending_value_, cause.token.object);
          local_op_ = LocalOp::kNone;
        }
        std::vector<Message> backlog;
        backlog.swap(deferred_);
        for (const Message& queued : backlog) on_message(ctx, queued);
        break;
      }
      default:
        DRSM_CHECK(false, "SYN sequencer: unexpected message " +
                              msg.debug_string());
    }
  }

  std::unique_ptr<ProtocolMachine> clone() const override {
    return std::make_unique<SynapseSequencer>(*this);
  }

  void encode(std::vector<std::uint8_t>& out) const override {
    DRSM_CHECK(quiescent(), "SYN sequencer encoded mid-recall");
    out.push_back(owner_ == kNoNode ? 0 : 1);
    for (int shift = 0; shift < 32; shift += 8)
      out.push_back(static_cast<std::uint8_t>(
          (owner_ == kNoNode ? 0u : owner_) >> shift));
  }

  void encode_full(std::vector<std::uint8_t>& out) const override {
    out.push_back(owner_ == kNoNode ? 0 : 1);
    detail::put_u32(out, owner_ == kNoNode ? 0u : owner_);
    out.push_back(recalling_ ? 1 : 0);
    out.push_back(nack_requester_ ? 1 : 0);
    out.push_back(static_cast<std::uint8_t>(local_op_));
    if (recalling_) detail::encode_token(out, recall_cause_);
    out.push_back(static_cast<std::uint8_t>(deferred_.size()));
    for (const Message& msg : deferred_) detail::encode_token(out, msg);
  }

  bool decode(const std::uint8_t*& p, const std::uint8_t* end) override {
    const bool has_owner = detail::take_u8(p, end) != 0;
    const NodeId owner = detail::take_u32(p, end);
    owner_ = has_owner ? owner : kNoNode;
    recalling_ = false;
    nack_requester_ = false;
    local_op_ = LocalOp::kNone;
    deferred_.clear();
    return true;
  }

  bool encode_relabeled(std::vector<std::uint8_t>& out, const NodeId* map,
                        std::size_t n) const override {
    out.push_back(owner_ == kNoNode ? 0 : 1);
    detail::put_u32(out,
                    owner_ == kNoNode ? 0u : detail::map_node(owner_, map, n));
    out.push_back(recalling_ ? 1 : 0);
    out.push_back(nack_requester_ ? 1 : 0);
    out.push_back(static_cast<std::uint8_t>(local_op_));
    if (recalling_)
      detail::encode_token_relabeled(out, recall_cause_, map, n);
    out.push_back(static_cast<std::uint8_t>(deferred_.size()));
    for (const Message& msg : deferred_)
      detail::encode_token_relabeled(out, msg, map, n);
    return true;
  }

  void encode_state(std::vector<std::uint8_t>& out) const override {
    detail::put_u64(out, value_);
    detail::put_u64(out, version_);
    detail::put_u64(out, pending_value_);
    detail::put_u32(out, owner_);
    out.push_back(recalling_ ? 1 : 0);
    out.push_back(nack_requester_ ? 1 : 0);
    out.push_back(static_cast<std::uint8_t>(local_op_));
    detail::encode_message(out, recall_cause_);
    out.push_back(static_cast<std::uint8_t>(deferred_.size()));
    for (const Message& msg : deferred_) detail::encode_message(out, msg);
  }

  bool decode_state(const std::uint8_t*& p, const std::uint8_t* end) override {
    value_ = detail::take_u64(p, end);
    version_ = detail::take_u64(p, end);
    pending_value_ = detail::take_u64(p, end);
    owner_ = detail::take_u32(p, end);
    recalling_ = detail::take_u8(p, end) != 0;
    nack_requester_ = detail::take_u8(p, end) != 0;
    local_op_ = static_cast<LocalOp>(detail::take_u8(p, end));
    recall_cause_ = detail::decode_message(p, end);
    deferred_.clear();
    const std::size_t count = detail::take_u8(p, end);
    for (std::size_t i = 0; i < count; ++i)
      deferred_.push_back(detail::decode_message(p, end));
    return true;
  }

  bool quiescent() const override { return !recalling_ && deferred_.empty(); }

  const char* state_name() const override {
    return owner_ == kNoNode ? "VALID" : "INVALID";
  }

 private:
  enum class LocalOp : std::uint8_t { kNone, kRead, kWrite };

  void apply_local_write(MachineContext& ctx, std::uint64_t value,
                         ObjectId object) {
    value_ = value;
    version_ = ctx.next_version();
    ctx.commit_write(version_, value_);
    ctx.send_except({ctx.home()}, make_msg(MsgType::kInval, ctx.self(),
                                           object, ParamPresence::kNone));
    ctx.complete_write(version_);
  }

  void begin_recall(MachineContext& ctx, const Message& cause,
                    bool nack_requester) {
    recalling_ = true;
    recall_cause_ = cause;
    nack_requester_ = nack_requester;
    ctx.send(owner_, make_msg(MsgType::kRecallInval, cause.token.initiator,
                              cause.token.object, ParamPresence::kNone));
  }

  std::uint64_t value_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t pending_value_ = 0;
  NodeId owner_ = kNoNode;
  bool recalling_ = false;
  bool nack_requester_ = false;
  LocalOp local_op_ = LocalOp::kNone;
  Message recall_cause_;
  std::vector<Message> deferred_;
};

}  // namespace

std::unique_ptr<fsm::ProtocolMachine> make_synapse(NodeId node,
                                                   std::size_t num_clients) {
  if (node == static_cast<NodeId>(num_clients))
    return std::make_unique<SynapseSequencer>();
  return std::make_unique<SynapseClient>();
}

}  // namespace drsm::protocols
