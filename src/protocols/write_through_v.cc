// Distributed Write-Through-V protocol.
//
// The "V" variant keeps the writer's copy VALID: the client's write updates
// both the sequencer's master copy and its own copy (Appendix A, Fig. 9).
// To apply its local update in the globally sequenced order, the write runs
// in two phases:
//   1. the client sends a bare W-PER token and blocks (cost 1);
//   2. the sequencer reserves the next sequence slot and answers with a
//      W-GNT token (cost 1);
//   3. the client transfers the write parameters (cost P+1) and applies the
//      write locally; the sequencer applies them and invalidates the other
//      N-1 clients (cost N-1).
// Total client-write cost: P+N+2 — which yields the ideal-workload cost
// acc = p(P+N+2) and the WT/WTV crossover line
// p = S/(S+2) - a*sigma*S/(S+2) quoted in Section 5.1.
#include "protocols/detail.h"


#include "support/error.h"

namespace drsm::protocols {
namespace {

using namespace drsm::fsm;
using detail::make_msg;

class WtvClient final : public ProtocolMachine {
 public:
  void on_message(MachineContext& ctx, const Message& msg) override {
    switch (msg.token.type) {
      case MsgType::kReadReq:
        if (valid_) {
          ctx.return_read(value_, version_);
        } else {
          ctx.disable_local_queue();
          ctx.send(ctx.home(), make_msg(MsgType::kReadPer, ctx.self(),
                                        msg.token.object,
                                        ParamPresence::kNone));
        }
        break;
      case MsgType::kReadGnt:
        value_ = msg.value;
        version_ = msg.version;
        valid_ = true;
        ctx.return_read(value_, version_);
        ctx.enable_local_queue();
        break;
      case MsgType::kWriteReq:
        // Phase 1: ask for a write slot.
        ctx.disable_local_queue();
        pending_value_ = msg.value;
        ctx.send(ctx.home(), make_msg(MsgType::kWritePer, ctx.self(),
                                      msg.token.object,
                                      ParamPresence::kNone));
        break;
      case MsgType::kWriteGnt:
        // Phase 2: the grant carries the reserved sequence number; transfer
        // the parameters and apply locally.
        value_ = pending_value_;
        version_ = msg.version;
        valid_ = true;
        ctx.commit_write(version_, value_);
        ctx.send(ctx.home(),
                 make_msg(MsgType::kWriteData, ctx.self(), msg.token.object,
                          ParamPresence::kWriteParams, pending_value_,
                          msg.version));
        ctx.complete_write(version_);
        ctx.enable_local_queue();
        break;
      case MsgType::kInval:
        valid_ = false;
        break;
      case MsgType::kEject:
        valid_ = false;
        ctx.complete_op();
        break;
      case MsgType::kSyncReq:
        ctx.disable_local_queue();
        ctx.send(ctx.home(), make_msg(MsgType::kSyncReq, ctx.self(),
                                      msg.token.object,
                                      ParamPresence::kNone));
        break;
      case MsgType::kSyncAck:
        ctx.complete_op();
        ctx.enable_local_queue();
        break;
      default:
        DRSM_CHECK(false, "WTV client: unexpected message " +
                              msg.debug_string());
    }
  }

  std::unique_ptr<ProtocolMachine> clone() const override {
    return std::make_unique<WtvClient>(*this);
  }

  void encode(std::vector<std::uint8_t>& out) const override {
    out.push_back(valid_ ? 1 : 0);
  }

  bool decode(const std::uint8_t*& p, const std::uint8_t* end) override {
    valid_ = detail::take_u8(p, end) != 0;
    return true;
  }

  bool encode_relabeled(std::vector<std::uint8_t>& out, const NodeId*,
                        std::size_t) const override {
    encode_full(out);  // no NodeIds in the encoding
    return true;
  }

  void encode_state(std::vector<std::uint8_t>& out) const override {
    out.push_back(valid_ ? 1 : 0);
    detail::put_u64(out, value_);
    detail::put_u64(out, version_);
    detail::put_u64(out, pending_value_);
  }

  bool decode_state(const std::uint8_t*& p, const std::uint8_t* end) override {
    valid_ = detail::take_u8(p, end) != 0;
    value_ = detail::take_u64(p, end);
    version_ = detail::take_u64(p, end);
    pending_value_ = detail::take_u64(p, end);
    return true;
  }

  const char* state_name() const override {
    return valid_ ? "VALID" : "INVALID";
  }

 private:
  bool valid_ = false;
  std::uint64_t value_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t pending_value_ = 0;
};

class WtvSequencer final : public ProtocolMachine {
 public:
  void on_message(MachineContext& ctx, const Message& msg) override {
    // While a write grant is outstanding the sequencer defers all other
    // distributed requests; this keeps the grant's reserved sequence slot
    // adjacent to the parameter transfer.
    if (granting_ && msg.token.type != MsgType::kWriteData) {
      deferred_.push_back(msg);
      return;
    }
    switch (msg.token.type) {
      case MsgType::kReadReq:
        ctx.return_read(value_, version_);
        break;
      case MsgType::kWriteReq:
        value_ = msg.value;
        version_ = ctx.next_version();
        ctx.commit_write(version_, value_);
        ctx.send_except({ctx.home()},
                        make_msg(MsgType::kInval, ctx.self(),
                                 msg.token.object, ParamPresence::kNone));
        ctx.complete_write(version_);
        break;
      case MsgType::kReadPer:
        ctx.send(msg.token.initiator,
                 make_msg(MsgType::kReadGnt, msg.token.initiator,
                          msg.token.object, ParamPresence::kUserInfo, value_,
                          version_));
        break;
      case MsgType::kWritePer:
        granting_ = true;
        ctx.send(msg.token.initiator,
                 make_msg(MsgType::kWriteGnt, msg.token.initiator,
                          msg.token.object, ParamPresence::kNone, 0,
                          ctx.next_version()));
        break;
      case MsgType::kWriteData: {
        value_ = msg.value;
        version_ = msg.version;
        granting_ = false;
        ctx.commit_write(version_, value_);
        ctx.send_except({msg.token.initiator, ctx.home()},
                        make_msg(MsgType::kInval, msg.token.initiator,
                                 msg.token.object, ParamPresence::kNone));
        // Drain requests that arrived during the grant window.
        std::vector<Message> backlog;
        backlog.swap(deferred_);
        for (const Message& pending : backlog) on_message(ctx, pending);
        break;
      }
      case MsgType::kSyncReq:
        ctx.send(msg.token.initiator,
                 make_msg(MsgType::kSyncAck, msg.token.initiator,
                          msg.token.object, ParamPresence::kNone));
        break;
      default:
        DRSM_CHECK(false, "WTV sequencer: unexpected message " +
                              msg.debug_string());
    }
  }

  std::unique_ptr<ProtocolMachine> clone() const override {
    return std::make_unique<WtvSequencer>(*this);
  }

  void encode(std::vector<std::uint8_t>& out) const override {
    DRSM_CHECK(quiescent(), "WTV sequencer encoded while granting");
    out.push_back(1);
  }

  void encode_full(std::vector<std::uint8_t>& out) const override {
    out.push_back(1);
    out.push_back(granting_ ? 1 : 0);
    out.push_back(static_cast<std::uint8_t>(deferred_.size()));
    for (const Message& msg : deferred_) detail::encode_token(out, msg);
  }

  bool decode(const std::uint8_t*& p, const std::uint8_t* end) override {
    detail::take_u8(p, end);
    granting_ = false;
    deferred_.clear();
    return true;
  }

  bool encode_relabeled(std::vector<std::uint8_t>& out, const NodeId* map,
                        std::size_t n) const override {
    out.push_back(1);
    out.push_back(granting_ ? 1 : 0);
    out.push_back(static_cast<std::uint8_t>(deferred_.size()));
    for (const Message& msg : deferred_)
      detail::encode_token_relabeled(out, msg, map, n);
    return true;
  }

  void encode_state(std::vector<std::uint8_t>& out) const override {
    detail::put_u64(out, value_);
    detail::put_u64(out, version_);
    out.push_back(granting_ ? 1 : 0);
    out.push_back(static_cast<std::uint8_t>(deferred_.size()));
    for (const Message& msg : deferred_) detail::encode_message(out, msg);
  }

  bool decode_state(const std::uint8_t*& p, const std::uint8_t* end) override {
    value_ = detail::take_u64(p, end);
    version_ = detail::take_u64(p, end);
    granting_ = detail::take_u8(p, end) != 0;
    deferred_.clear();
    const std::size_t count = detail::take_u8(p, end);
    for (std::size_t i = 0; i < count; ++i)
      deferred_.push_back(detail::decode_message(p, end));
    return true;
  }

  bool quiescent() const override { return !granting_ && deferred_.empty(); }

  const char* state_name() const override { return "VALID"; }

 private:
  std::uint64_t value_ = 0;
  std::uint64_t version_ = 0;
  bool granting_ = false;
  std::vector<Message> deferred_;
};

}  // namespace

std::unique_ptr<fsm::ProtocolMachine> make_write_through_v(
    NodeId node, std::size_t num_clients) {
  if (node == static_cast<NodeId>(num_clients))
    return std::make_unique<WtvSequencer>();
  return std::make_unique<WtvClient>();
}

}  // namespace drsm::protocols
