// Distributed Write-Once protocol (Goodman), Appendix A Fig. 10.
//
// Client copy states: INVALID (start), VALID, RESERVED, DIRTY.  A client's
// first write to a VALID copy is written through to the sequencer (copy ->
// RESERVED, sequencer still valid); the second write is executed locally
// (RESERVED -> DIRTY) and from then on the sequencer's copy is stale —
// "the write operation of the kth client changes the state of the
// sequencer's copy from VALID to INVALID only if the kth client's copy is
// in RESERVED or INVALID state" (the write-miss case also hands the client
// an exclusive DIRTY copy).
//
// Because the RESERVED -> DIRTY transition is silent, the sequencer tracks
// the *potential* owner and recalls the copy whenever another node needs
// the data; the owner answers with FLUSH-D (it was dirty, cost S+1) or
// FLUSH-C (still clean, cost 1).
#include "protocols/detail.h"


#include "support/error.h"

namespace drsm::protocols {
namespace {

using namespace drsm::fsm;
using detail::make_msg;

enum class WoState : std::uint8_t { kInvalid, kValid, kReserved, kDirty };

class WoClient final : public ProtocolMachine {
 public:
  void on_message(MachineContext& ctx, const Message& msg) override {
    switch (msg.token.type) {
      case MsgType::kReadReq:
        if (state_ != WoState::kInvalid) {
          ctx.return_read(value_, version_);
        } else {
          ctx.disable_local_queue();
          ctx.send(ctx.home(), make_msg(MsgType::kReadPer, ctx.self(),
                                        msg.token.object,
                                        ParamPresence::kNone));
        }
        break;
      case MsgType::kReadGnt:
        value_ = msg.value;
        version_ = msg.version;
        state_ = WoState::kValid;
        ctx.return_read(value_, version_);
        ctx.enable_local_queue();
        break;
      case MsgType::kWriteReq:
        switch (state_) {
          case WoState::kDirty:
            value_ = msg.value;
            version_ = ctx.next_version();
            ctx.commit_write(version_, value_);
            ctx.complete_write(version_);
            break;
          case WoState::kReserved:
            // Second write: local, the sequencer's copy silently goes stale.
            value_ = msg.value;
            version_ = ctx.next_version();
            state_ = WoState::kDirty;
            ctx.commit_write(version_, value_);
            ctx.complete_write(version_);
            break;
          case WoState::kValid:
            // First write: write through; the RESERVED state is entered only
            // when the sequencer acknowledges (a bare W-GNT token), which
            // closes the race between the write-through and an in-flight
            // invalidation — a silent RESERVED->DIRTY transition must never
            // happen on a copy whose exclusivity was revoked.
            ctx.disable_local_queue();
            pending_value_ = msg.value;
            ctx.send(ctx.home(),
                     make_msg(MsgType::kWritePer, ctx.self(),
                              msg.token.object, ParamPresence::kWriteParams,
                              msg.value));
            break;
          case WoState::kInvalid:
            // Write miss: fetch an exclusive copy.
            ctx.disable_local_queue();
            pending_value_ = msg.value;
            ctx.send(ctx.home(), make_msg(MsgType::kWritePer, ctx.self(),
                                          msg.token.object,
                                          ParamPresence::kNone));
            break;
        }
        break;
      case MsgType::kWriteGnt:
        if (msg.token.params == ParamPresence::kUserInfo) {
          // Write-miss grant: exclusive data copy, apply locally -> DIRTY.
          value_ = pending_value_;
          version_ = ctx.next_version();
          state_ = WoState::kDirty;
          ctx.commit_write(version_, value_);
        } else {
          // Write-through acknowledgement: the sequencer applied and
          // sequenced our parameters -> RESERVED (exclusive, clean).
          value_ = pending_value_;
          version_ = msg.version;
          state_ = WoState::kReserved;
        }
        ctx.complete_write(version_);
        ctx.enable_local_queue();
        break;
      case MsgType::kInval:
        state_ = WoState::kInvalid;
        break;
      case MsgType::kRecallShared:
      case MsgType::kRecallInval: {
        const bool keep = msg.token.type == MsgType::kRecallShared;
        if (state_ == WoState::kDirty) {
          ctx.send(ctx.home(),
                   make_msg(MsgType::kFlushData, msg.token.initiator,
                            msg.token.object, ParamPresence::kUserInfo,
                            value_, version_));
        } else {
          ctx.send(ctx.home(), make_msg(MsgType::kFlushClean, msg.token.initiator,
                                        msg.token.object,
                                        ParamPresence::kNone));
        }
        state_ = keep ? WoState::kValid : WoState::kInvalid;
        break;
      }
      default:
        DRSM_CHECK(false, "WO client: unexpected message " +
                              msg.debug_string());
    }
  }

  std::unique_ptr<ProtocolMachine> clone() const override {
    return std::make_unique<WoClient>(*this);
  }

  void encode(std::vector<std::uint8_t>& out) const override {
    out.push_back(static_cast<std::uint8_t>(state_));
  }

  bool decode(const std::uint8_t*& p, const std::uint8_t* end) override {
    state_ = static_cast<WoState>(detail::take_u8(p, end));
    return true;
  }

  bool encode_relabeled(std::vector<std::uint8_t>& out, const NodeId*,
                        std::size_t) const override {
    encode_full(out);  // no NodeIds in the encoding
    return true;
  }

  void encode_state(std::vector<std::uint8_t>& out) const override {
    out.push_back(static_cast<std::uint8_t>(state_));
    detail::put_u64(out, value_);
    detail::put_u64(out, version_);
    detail::put_u64(out, pending_value_);
  }

  bool decode_state(const std::uint8_t*& p, const std::uint8_t* end) override {
    state_ = static_cast<WoState>(detail::take_u8(p, end));
    value_ = detail::take_u64(p, end);
    version_ = detail::take_u64(p, end);
    pending_value_ = detail::take_u64(p, end);
    return true;
  }

  const char* state_name() const override {
    switch (state_) {
      case WoState::kInvalid: return "INVALID";
      case WoState::kValid: return "VALID";
      case WoState::kReserved: return "RESERVED";
      case WoState::kDirty: return "DIRTY";
    }
    return "?";
  }

 private:
  WoState state_ = WoState::kInvalid;
  std::uint64_t value_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t pending_value_ = 0;
};

class WoSequencer final : public ProtocolMachine {
 public:
  void on_message(MachineContext& ctx, const Message& msg) override {
    // While a recall is outstanding, new requests wait.
    if (pending_ != Pending::kNone &&
        msg.token.type != MsgType::kFlushData &&
        msg.token.type != MsgType::kFlushClean) {
      deferred_.push_back(msg);
      return;
    }
    switch (msg.token.type) {
      case MsgType::kReadReq:  // own application
        if (owner_ == kNoNode) {
          ctx.return_read(value_, version_);
        } else {
          begin_recall(ctx, Pending::kLocalRead, msg,
                       MsgType::kRecallShared);
        }
        break;
      case MsgType::kWriteReq:  // own application
        if (owner_ == kNoNode) {
          apply_and_invalidate_all(ctx, msg.value, msg.token.object);
          ctx.complete_write(version_);
        } else {
          pending_value_ = msg.value;
          begin_recall(ctx, Pending::kLocalWrite, msg, MsgType::kRecallInval);
        }
        break;
      case MsgType::kReadPer:
        if (owner_ == kNoNode) {
          grant_read(ctx, msg.token.initiator, msg.token.object);
        } else {
          DRSM_CHECK(owner_ != msg.token.initiator,
                     "WO: owner cannot read-miss");
          begin_recall(ctx, Pending::kServeRead, msg, MsgType::kRecallShared);
        }
        break;
      case MsgType::kWritePer:
        if (msg.token.params == ParamPresence::kWriteParams) {
          // Write-through from a (possibly stale-)VALID copy.  If a race
          // let another node acquire exclusivity in flight, recall it first;
          // the write-through still wins because it is sequenced later.
          if (owner_ == kNoNode) {
            apply_write_through(ctx, msg);
          } else {
            begin_recall(ctx, Pending::kServeWriteThrough, msg,
                         MsgType::kRecallInval);
          }
        } else if (owner_ == kNoNode) {
          grant_write(ctx, msg.token.initiator, msg.token.object);
        } else {
          begin_recall(ctx, Pending::kServeWrite, msg, MsgType::kRecallInval);
        }
        break;
      case MsgType::kFlushData:
        value_ = msg.value;
        version_ = msg.version;
        finish_recall(ctx);
        break;
      case MsgType::kFlushClean:
        finish_recall(ctx);
        break;
      default:
        DRSM_CHECK(false, "WO sequencer: unexpected message " +
                              msg.debug_string());
    }
  }

  std::unique_ptr<ProtocolMachine> clone() const override {
    return std::make_unique<WoSequencer>(*this);
  }

  void encode(std::vector<std::uint8_t>& out) const override {
    DRSM_CHECK(quiescent(), "WO sequencer encoded mid-recall");
    out.push_back(owner_ == kNoNode ? 0 : 1);
    for (int shift = 0; shift < 32; shift += 8)
      out.push_back(static_cast<std::uint8_t>(
          (owner_ == kNoNode ? 0u : owner_) >> shift));
  }

  void encode_full(std::vector<std::uint8_t>& out) const override {
    out.push_back(owner_ == kNoNode ? 0 : 1);
    detail::put_u32(out, owner_ == kNoNode ? 0u : owner_);
    out.push_back(static_cast<std::uint8_t>(pending_));
    if (pending_ != Pending::kNone) detail::encode_token(out, pending_msg_);
    out.push_back(static_cast<std::uint8_t>(deferred_.size()));
    for (const Message& msg : deferred_) detail::encode_token(out, msg);
  }

  bool decode(const std::uint8_t*& p, const std::uint8_t* end) override {
    const bool has_owner = detail::take_u8(p, end) != 0;
    const NodeId owner = detail::take_u32(p, end);
    owner_ = has_owner ? owner : kNoNode;
    pending_ = Pending::kNone;
    deferred_.clear();
    return true;
  }

  bool encode_relabeled(std::vector<std::uint8_t>& out, const NodeId* map,
                        std::size_t n) const override {
    out.push_back(owner_ == kNoNode ? 0 : 1);
    detail::put_u32(out,
                    owner_ == kNoNode ? 0u : detail::map_node(owner_, map, n));
    out.push_back(static_cast<std::uint8_t>(pending_));
    if (pending_ != Pending::kNone)
      detail::encode_token_relabeled(out, pending_msg_, map, n);
    out.push_back(static_cast<std::uint8_t>(deferred_.size()));
    for (const Message& msg : deferred_)
      detail::encode_token_relabeled(out, msg, map, n);
    return true;
  }

  void encode_state(std::vector<std::uint8_t>& out) const override {
    detail::put_u64(out, value_);
    detail::put_u64(out, version_);
    detail::put_u64(out, pending_value_);
    detail::put_u32(out, owner_);
    out.push_back(static_cast<std::uint8_t>(pending_));
    detail::encode_message(out, pending_msg_);
    out.push_back(static_cast<std::uint8_t>(deferred_.size()));
    for (const Message& msg : deferred_) detail::encode_message(out, msg);
  }

  bool decode_state(const std::uint8_t*& p, const std::uint8_t* end) override {
    value_ = detail::take_u64(p, end);
    version_ = detail::take_u64(p, end);
    pending_value_ = detail::take_u64(p, end);
    owner_ = detail::take_u32(p, end);
    pending_ = static_cast<Pending>(detail::take_u8(p, end));
    pending_msg_ = detail::decode_message(p, end);
    deferred_.clear();
    const std::size_t count = detail::take_u8(p, end);
    for (std::size_t i = 0; i < count; ++i)
      deferred_.push_back(detail::decode_message(p, end));
    return true;
  }

  bool quiescent() const override {
    return pending_ == Pending::kNone && deferred_.empty();
  }

  const char* state_name() const override {
    return owner_ == kNoNode ? "VALID" : "INVALID";
  }

 private:
  enum class Pending : std::uint8_t {
    kNone,
    kServeRead,
    kServeWrite,
    kServeWriteThrough,
    kLocalRead,
    kLocalWrite,
  };

  void apply_write_through(MachineContext& ctx, const Message& msg) {
    value_ = msg.value;
    version_ = ctx.next_version();
    ctx.commit_write(version_, value_);
    ctx.send_except({msg.token.initiator, ctx.home()},
                    make_msg(MsgType::kInval, msg.token.initiator,
                             msg.token.object, ParamPresence::kNone));
    ctx.send(msg.token.initiator,
             make_msg(MsgType::kWriteGnt, msg.token.initiator,
                      msg.token.object, ParamPresence::kNone, 0, version_));
    owner_ = msg.token.initiator;
  }

  void grant_read(MachineContext& ctx, NodeId requester, ObjectId object) {
    ctx.send(requester, make_msg(MsgType::kReadGnt, requester, object,
                                 ParamPresence::kUserInfo, value_, version_));
  }

  void grant_write(MachineContext& ctx, NodeId requester, ObjectId object) {
    ctx.send_except({requester, ctx.home()},
                    make_msg(MsgType::kInval, requester, object,
                             ParamPresence::kNone));
    ctx.send(requester, make_msg(MsgType::kWriteGnt, requester, object,
                                 ParamPresence::kUserInfo, value_, version_));
    owner_ = requester;
  }

  void apply_and_invalidate_all(MachineContext& ctx, std::uint64_t value,
                                ObjectId object) {
    value_ = value;
    version_ = ctx.next_version();
    ctx.commit_write(version_, value_);
    ctx.send_except({ctx.home()}, make_msg(MsgType::kInval, ctx.self(),
                                           object, ParamPresence::kNone));
    owner_ = kNoNode;
  }

  void begin_recall(MachineContext& ctx, Pending pending, const Message& msg,
                    MsgType recall) {
    pending_ = pending;
    pending_msg_ = msg;
    ctx.send(owner_, make_msg(recall, msg.token.initiator, msg.token.object,
                              ParamPresence::kNone));
  }

  void finish_recall(MachineContext& ctx) {
    const Pending pending = pending_;
    const Message msg = pending_msg_;
    pending_ = Pending::kNone;
    owner_ = kNoNode;
    switch (pending) {
      case Pending::kServeRead:
        grant_read(ctx, msg.token.initiator, msg.token.object);
        break;
      case Pending::kServeWrite:
        grant_write(ctx, msg.token.initiator, msg.token.object);
        break;
      case Pending::kServeWriteThrough:
        apply_write_through(ctx, msg);
        break;
      case Pending::kLocalRead:
        ctx.return_read(value_, version_);
        break;
      case Pending::kLocalWrite:
        apply_and_invalidate_all(ctx, pending_value_, msg.token.object);
        ctx.complete_write(version_);
        break;
      case Pending::kNone:
        DRSM_CHECK(false, "WO: flush without recall");
    }
    std::vector<Message> backlog;
    backlog.swap(deferred_);
    for (const Message& queued : backlog) on_message(ctx, queued);
  }

  std::uint64_t value_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t pending_value_ = 0;
  NodeId owner_ = kNoNode;
  Pending pending_ = Pending::kNone;
  Message pending_msg_;
  std::vector<Message> deferred_;
};

}  // namespace

std::unique_ptr<fsm::ProtocolMachine> make_write_once(
    NodeId node, std::size_t num_clients) {
  if (node == static_cast<NodeId>(num_clients))
    return std::make_unique<WoSequencer>();
  return std::make_unique<WoClient>();
}

}  // namespace drsm::protocols
