// Internal helpers shared by the protocol machine implementations.
#pragma once

#include <memory>

#include "fsm/mealy.h"
#include "support/error.h"

namespace drsm::protocols {

/// Per-protocol factory functions (defined in the respective .cc files).
std::unique_ptr<fsm::ProtocolMachine> make_write_through(
    NodeId node, std::size_t num_clients);
std::unique_ptr<fsm::ProtocolMachine> make_write_through_v(
    NodeId node, std::size_t num_clients);
std::unique_ptr<fsm::ProtocolMachine> make_write_once(
    NodeId node, std::size_t num_clients);
std::unique_ptr<fsm::ProtocolMachine> make_synapse(
    NodeId node, std::size_t num_clients);
std::unique_ptr<fsm::ProtocolMachine> make_illinois(
    NodeId node, std::size_t num_clients);
std::unique_ptr<fsm::ProtocolMachine> make_berkeley(
    NodeId node, std::size_t num_clients);
std::unique_ptr<fsm::ProtocolMachine> make_dragon(
    NodeId node, std::size_t num_clients);
std::unique_ptr<fsm::ProtocolMachine> make_firefly(
    NodeId node, std::size_t num_clients);

namespace detail {

/// Bounds-checked reads for ProtocolMachine::decode implementations —
/// the exact inverses of the byte/word writes the encode() overrides use.
inline std::uint8_t take_u8(const std::uint8_t*& p, const std::uint8_t* end) {
  DRSM_CHECK(p < end, "decode: truncated state key");
  return *p++;
}

inline std::uint32_t take_u32(const std::uint8_t*& p,
                              const std::uint8_t* end) {
  DRSM_CHECK(end - p >= 4, "decode: truncated state key");
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8)
    v |= static_cast<std::uint32_t>(*p++) << shift;
  return v;
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<std::uint8_t>(v >> shift));
}

/// Appends the protocol-relevant part of a buffered message for
/// ProtocolMachine::encode_full overrides: the token's type, initiator,
/// object and parameter-presence mark.  Values/versions/hops are excluded
/// by the same argument that lets encode() omit them — they never select a
/// transition.
inline void encode_token(std::vector<std::uint8_t>& out,
                         const fsm::Message& msg) {
  out.push_back(static_cast<std::uint8_t>(msg.token.type));
  put_u32(out, msg.token.initiator);
  put_u32(out, msg.token.object);
  out.push_back(static_cast<std::uint8_t>(msg.token.params));
}

inline fsm::Message make_msg(fsm::MsgType type, NodeId initiator,
                             ObjectId object, fsm::ParamPresence params,
                             std::uint64_t value = 0,
                             std::uint64_t version = 0) {
  fsm::Message msg;
  msg.token.type = type;
  msg.token.initiator = initiator;
  msg.token.object = object;
  msg.token.queue = fsm::QueueKind::kDistributed;
  msg.token.params = params;
  msg.value = value;
  msg.version = version;
  return msg;
}

}  // namespace detail
}  // namespace drsm::protocols
