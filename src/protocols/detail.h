// Internal helpers shared by the protocol machine implementations.
#pragma once

#include <memory>

#include "fsm/mealy.h"
#include "support/error.h"

namespace drsm::protocols {

/// Per-protocol factory functions (defined in the respective .cc files).
std::unique_ptr<fsm::ProtocolMachine> make_write_through(
    NodeId node, std::size_t num_clients);
std::unique_ptr<fsm::ProtocolMachine> make_write_through_v(
    NodeId node, std::size_t num_clients);
std::unique_ptr<fsm::ProtocolMachine> make_write_once(
    NodeId node, std::size_t num_clients);
std::unique_ptr<fsm::ProtocolMachine> make_synapse(
    NodeId node, std::size_t num_clients);
std::unique_ptr<fsm::ProtocolMachine> make_illinois(
    NodeId node, std::size_t num_clients);
std::unique_ptr<fsm::ProtocolMachine> make_berkeley(
    NodeId node, std::size_t num_clients);
std::unique_ptr<fsm::ProtocolMachine> make_dragon(
    NodeId node, std::size_t num_clients);
std::unique_ptr<fsm::ProtocolMachine> make_firefly(
    NodeId node, std::size_t num_clients);

namespace detail {

/// Bounds-checked reads for ProtocolMachine::decode implementations —
/// the exact inverses of the byte/word writes the encode() overrides use.
inline std::uint8_t take_u8(const std::uint8_t*& p, const std::uint8_t* end) {
  DRSM_CHECK(p < end, "decode: truncated state key");
  return *p++;
}

inline std::uint32_t take_u32(const std::uint8_t*& p,
                              const std::uint8_t* end) {
  DRSM_CHECK(end - p >= 4, "decode: truncated state key");
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8)
    v |= static_cast<std::uint32_t>(*p++) << shift;
  return v;
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<std::uint8_t>(v >> shift));
}

/// Appends the protocol-relevant part of a buffered message for
/// ProtocolMachine::encode_full overrides: the token's type, initiator,
/// object and parameter-presence mark.  Values/versions/hops are excluded
/// by the same argument that lets encode() omit them — they never select a
/// transition.
inline void encode_token(std::vector<std::uint8_t>& out,
                         const fsm::Message& msg) {
  out.push_back(static_cast<std::uint8_t>(msg.token.type));
  put_u32(out, msg.token.initiator);
  put_u32(out, msg.token.object);
  out.push_back(static_cast<std::uint8_t>(msg.token.params));
}

inline std::uint64_t take_u64(const std::uint8_t*& p,
                              const std::uint8_t* end) {
  DRSM_CHECK(end - p >= 8, "decode: truncated state key");
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8)
    v |= static_cast<std::uint64_t>(*p++) << shift;
  return v;
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<std::uint8_t>(v >> shift));
}

/// Applies a client relabeling to one NodeId: clients map through `map`,
/// the home node and kNoNode are fixed points (see
/// fsm::ProtocolMachine::encode_relabeled).
inline NodeId map_node(NodeId id, const NodeId* map,
                       std::size_t num_clients) {
  return id < num_clients ? map[id] : id;
}

/// encode_token under a client relabeling — the building block for
/// encode_relabeled overrides with buffered tokens.
inline void encode_token_relabeled(std::vector<std::uint8_t>& out,
                                   const fsm::Message& msg, const NodeId* map,
                                   std::size_t num_clients) {
  out.push_back(static_cast<std::uint8_t>(msg.token.type));
  put_u32(out, map_node(msg.token.initiator, map, num_clients));
  put_u32(out, msg.token.object);
  out.push_back(static_cast<std::uint8_t>(msg.token.params));
}

/// Exact-snapshot codec for a buffered fsm::Message — every field,
/// including the payload and routing metadata encode_token omits.  Used
/// by the encode_state/decode_state overrides so the model checker can
/// re-materialize machines (deferred queues included) from bytes.
inline void encode_message(std::vector<std::uint8_t>& out,
                           const fsm::Message& msg) {
  out.push_back(static_cast<std::uint8_t>(msg.token.type));
  put_u32(out, msg.token.initiator);
  put_u32(out, msg.token.object);
  out.push_back(static_cast<std::uint8_t>(msg.token.queue));
  out.push_back(static_cast<std::uint8_t>(msg.token.params));
  put_u64(out, msg.value);
  put_u64(out, msg.version);
  put_u32(out, msg.hops);
  put_u32(out, msg.sender);
  put_u64(out, msg.span);
}

inline fsm::Message decode_message(const std::uint8_t*& p,
                                   const std::uint8_t* end) {
  fsm::Message msg;
  msg.token.type = static_cast<fsm::MsgType>(take_u8(p, end));
  msg.token.initiator = take_u32(p, end);
  msg.token.object = take_u32(p, end);
  msg.token.queue = static_cast<fsm::QueueKind>(take_u8(p, end));
  msg.token.params = static_cast<fsm::ParamPresence>(take_u8(p, end));
  msg.value = take_u64(p, end);
  msg.version = take_u64(p, end);
  msg.hops = take_u32(p, end);
  msg.sender = take_u32(p, end);
  msg.span = take_u64(p, end);
  return msg;
}

inline fsm::Message make_msg(fsm::MsgType type, NodeId initiator,
                             ObjectId object, fsm::ParamPresence params,
                             std::uint64_t value = 0,
                             std::uint64_t version = 0) {
  fsm::Message msg;
  msg.token.type = type;
  msg.token.initiator = initiator;
  msg.token.object = object;
  msg.token.queue = fsm::QueueKind::kDistributed;
  msg.token.params = params;
  msg.value = value;
  msg.version = version;
  return msg;
}

}  // namespace detail
}  // namespace drsm::protocols
