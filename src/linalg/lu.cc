#include "linalg/lu.h"

#include <cmath>

namespace drsm::linalg {

Lu::Lu(const Matrix& a) : n_(a.rows()), lu_(a), piv_(a.rows()) {
  DRSM_CHECK(a.rows() == a.cols(), "LU requires a square matrix");
  for (std::size_t i = 0; i < n_; ++i) piv_[i] = i;

  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivoting: pick the largest remaining entry in column k.
    std::size_t pivot = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double v = std::fabs(lu_(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) throw Error("Lu: matrix is singular");
    if (pivot != k) {
      for (std::size_t c = 0; c < n_; ++c)
        std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(piv_[k], piv_[pivot]);
      pivot_sign_ = -pivot_sign_;
    }
    const double inv = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double m = lu_(r, k) * inv;
      lu_(r, k) = m;
      if (m == 0.0) continue;
      for (std::size_t c = k + 1; c < n_; ++c) lu_(r, c) -= m * lu_(k, c);
    }
  }
}

Vector Lu::solve(const Vector& b) const {
  DRSM_CHECK(b.size() == n_, "Lu::solve: dimension mismatch");
  Vector x(n_);
  for (std::size_t i = 0; i < n_; ++i) x[i] = b[piv_[i]];
  // Forward substitution (L has unit diagonal).
  for (std::size_t i = 1; i < n_; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

double Lu::determinant() const {
  double det = pivot_sign_;
  for (std::size_t i = 0; i < n_; ++i) det *= lu_(i, i);
  return det;
}

Vector solve(const Matrix& a, const Vector& b) { return Lu(a).solve(b); }

}  // namespace drsm::linalg
