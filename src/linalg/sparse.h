// Compressed-sparse-row matrix for large Markov chains.
//
// Reachable protocol state spaces grow with the number of disturbing
// clients; beyond a few thousand states a dense LU becomes wasteful, so the
// stationary solver switches to power iteration on a CSR transition matrix.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace drsm::linalg {

/// Triplet used while assembling a sparse matrix.
struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class CsrMatrix {
 public:
  /// Builds from triplets; duplicate (row, col) entries are summed.
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<Triplet> triplets);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return values_.size(); }

  /// y = A x.
  Vector multiply(const Vector& x) const;

  /// y = x A (row vector times matrix); this is the Markov-chain update
  /// pi' = pi P.
  Vector multiply_left(const Vector& x) const;

  /// Row sums (used to verify stochasticity of transition matrices).
  Vector row_sums() const;

  Matrix to_dense() const;

  /// Raw nonzero values (CSR order); exposed for validation passes.
  const std::vector<double>& values() const { return values_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace drsm::linalg
