// Stationary-distribution solvers for finite Markov chains.
//
// Given a row-stochastic transition matrix P over the reachable states of a
// (protocol, workload) pair, the stationary distribution pi solves
// pi P = pi with sum(pi) = 1.  Small chains are solved directly (replace one
// balance equation with the normalization constraint and LU-solve); larger
// chains use power iteration, which converges for the aperiodic chains
// produced by the protocol models (every state has a self-loop whenever some
// operation leaves it unchanged; a damping factor covers the rest).
#pragma once

#include "linalg/lu.h"
#include "linalg/sparse.h"

namespace drsm::linalg {

/// How a stationary solve went — published into the observability layer
/// by the analytic engine (see obs/metrics.h and analytic::AccSolver).
struct SolveStats {
  std::size_t states = 0;      // chain size actually solved
  std::size_t iterations = 0;  // power-iteration count (0 for direct)
  double residual = 0.0;       // final max |pi' - pi| (0 for direct)
  bool direct = false;         // LU path taken
  bool warm_started = false;   // power iteration seeded from options.initial
};

struct StationaryOptions {
  /// Chains up to this many states use the direct (LU) solver; larger ones
  /// use damped power iteration (far cheaper on the sparse, fast-mixing
  /// chains the protocol models produce).
  std::size_t direct_limit = 256;
  /// Power-iteration convergence threshold on max |pi' - pi|.
  double tolerance = 1e-13;
  /// Power-iteration cap.
  std::size_t max_iterations = 2'000'000;
  /// Damping applied during power iteration to guarantee aperiodicity:
  /// pi' = (1-d) * pi P + d * pi.  d = 0 disables damping.
  double damping = 0.05;
  /// When non-null, filled with iteration count / residual / method.
  SolveStats* stats = nullptr;
  /// Optional warm start for the power iteration: a probability vector of
  /// the chain's dimension (e.g. the stationary vector of a nearby sweep
  /// point).  Ignored by the direct solver, and ignored (with a cold
  /// uniform start) when the size does not match or the vector does not
  /// normalize.  The converged answer is the same either way — only the
  /// iteration count changes.
  const Vector* initial = nullptr;
};

/// Stationary distribution of a dense row-stochastic matrix.
Vector stationary_distribution(const Matrix& p,
                               const StationaryOptions& options = {});

/// Stationary distribution of a sparse row-stochastic matrix; picks the
/// direct or iterative method based on options.direct_limit.
Vector stationary_distribution(const CsrMatrix& p,
                               const StationaryOptions& options = {});

/// Verifies that every row of P sums to 1 within `tol` and that all entries
/// are non-negative; throws drsm::Error otherwise.
void check_stochastic(const CsrMatrix& p, double tol = 1e-9);

}  // namespace drsm::linalg
