#include "linalg/stationary.h"

#include <cmath>

namespace drsm::linalg {

namespace {

Vector solve_direct(const Matrix& p, const StationaryOptions& options) {
  const std::size_t n = p.rows();
  if (options.stats != nullptr)
    *options.stats = {.states = n, .iterations = 0, .residual = 0.0,
                      .direct = true};
  // Build A = P^T - I, then overwrite the last row with the normalization
  // constraint sum(pi) = 1.  The resulting system is non-singular for any
  // chain with a unique stationary distribution.
  Matrix a = p.transposed() - Matrix::identity(n);
  for (std::size_t c = 0; c < n; ++c) a(n - 1, c) = 1.0;
  Vector b(n, 0.0);
  b[n - 1] = 1.0;
  Vector pi = Lu(a).solve(b);
  // Clean tiny negative round-off and renormalize.
  double sum = 0.0;
  for (double& v : pi) {
    if (v < 0.0 && v > -1e-9) v = 0.0;
    sum += v;
  }
  DRSM_CHECK(sum > 0.0, "stationary: degenerate solution");
  for (double& v : pi) v /= sum;
  return pi;
}

Vector solve_power(const CsrMatrix& p, const StationaryOptions& options) {
  const std::size_t n = p.rows();
  Vector pi(n, 1.0 / static_cast<double>(n));
  bool warm = false;
  if (options.initial != nullptr && options.initial->size() == n) {
    double s = 0.0;
    bool usable = true;
    for (double v : *options.initial) {
      if (v < 0.0 || !std::isfinite(v)) { usable = false; break; }
      s += v;
    }
    if (usable && s > 0.0) {
      pi = *options.initial;
      for (double& v : pi) v /= s;
      warm = true;
    }
  }
  const double d = options.damping;
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    Vector next = p.multiply_left(pi);
    if (d > 0.0)
      for (std::size_t i = 0; i < n; ++i)
        next[i] = (1.0 - d) * next[i] + d * pi[i];
    // Renormalize to counter floating-point drift.
    const double s = norm1(next);
    DRSM_CHECK(s > 0.0, "stationary: vanished iterate");
    for (double& v : next) v /= s;
    const double delta = max_abs_diff(next, pi);
    pi = std::move(next);
    if (options.stats != nullptr)
      *options.stats = {.states = n, .iterations = it + 1,
                        .residual = delta, .direct = false,
                        .warm_started = warm};
    if (delta < options.tolerance) return pi;
  }
  throw Error("stationary_distribution: power iteration did not converge");
}

}  // namespace

Vector stationary_distribution(const Matrix& p,
                               const StationaryOptions& options) {
  DRSM_CHECK(p.rows() == p.cols(), "stationary: matrix must be square");
  if (p.rows() <= options.direct_limit) return solve_direct(p, options);
  // Convert to sparse and iterate.
  std::vector<Triplet> trip;
  for (std::size_t r = 0; r < p.rows(); ++r)
    for (std::size_t c = 0; c < p.cols(); ++c)
      if (p(r, c) != 0.0) trip.push_back({r, c, p(r, c)});
  return solve_power(CsrMatrix(p.rows(), p.cols(), std::move(trip)), options);
}

Vector stationary_distribution(const CsrMatrix& p,
                               const StationaryOptions& options) {
  DRSM_CHECK(p.rows() == p.cols(), "stationary: matrix must be square");
  if (p.rows() <= options.direct_limit)
    return solve_direct(p.to_dense(), options);
  return solve_power(p, options);
}

void check_stochastic(const CsrMatrix& p, double tol) {
  for (double v : p.values())
    if (v < -tol)
      throw Error("check_stochastic: negative transition probability");
  const Vector sums = p.row_sums();
  for (std::size_t r = 0; r < sums.size(); ++r) {
    if (std::fabs(sums[r] - 1.0) > tol)
      throw Error("check_stochastic: row " + std::to_string(r) +
                  " sums to " + std::to_string(sums[r]));
  }
}

}  // namespace drsm::linalg
