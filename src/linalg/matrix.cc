#include "linalg/matrix.h"

#include <cmath>

namespace drsm::linalg {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Vector Matrix::multiply(const Vector& x) const {
  DRSM_CHECK(x.size() == cols_, "multiply: dimension mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Vector Matrix::multiply_transpose(const Vector& x) const {
  DRSM_CHECK(x.size() == rows_, "multiply_transpose: dimension mismatch");
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xv = x[r];
    if (xv == 0.0) continue;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += xv * row[c];
  }
  return y;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  DRSM_CHECK(cols_ == rhs.rows_, "matmul: dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c)
        out(r, c) += a * rhs(k, c);
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  DRSM_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_, "add: shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < out.data_.size(); ++i)
    out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  DRSM_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_, "sub: shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < out.data_.size(); ++i)
    out.data_[i] -= rhs.data_[i];
  return out;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double norm2(const Vector& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double norm1(const Vector& v) {
  double s = 0.0;
  for (double x : v) s += std::fabs(x);
  return s;
}

double max_abs_diff(const Vector& a, const Vector& b) {
  DRSM_CHECK(a.size() == b.size(), "max_abs_diff: size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

double dot(const Vector& a, const Vector& b) {
  DRSM_CHECK(a.size() == b.size(), "dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace drsm::linalg
