// LU decomposition with partial pivoting and the linear solves built on it.
#pragma once

#include "linalg/matrix.h"

namespace drsm::linalg {

/// PA = LU factorization with partial (row) pivoting.
class Lu {
 public:
  /// Factors a square matrix.  Throws drsm::Error if the matrix is singular
  /// to working precision.
  explicit Lu(const Matrix& a);

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

  /// Determinant of A (product of U's diagonal, sign-adjusted).
  double determinant() const;

  std::size_t size() const { return n_; }

 private:
  std::size_t n_;
  Matrix lu_;                    // packed L (unit diagonal) and U
  std::vector<std::size_t> piv_; // row permutation
  int pivot_sign_ = 1;
};

/// Convenience wrapper: solve A x = b with a fresh factorization.
Vector solve(const Matrix& a, const Vector& b);

}  // namespace drsm::linalg
