#include "linalg/batch.h"

#include <cmath>
#include <string>

#include "linalg/lu.h"

namespace drsm::linalg {

namespace {

/// One lane's LU solve — the batched counterpart of the scalar
/// solve_direct in stationary.cc.  The dense system A = P^T - I with the
/// last row replaced by the normalization constraint is assembled
/// straight from the pattern into the shared workspace `a`: every
/// (r, c) appears once in CSR form, so writing value - (r == c) yields
/// element-for-element the matrix the scalar path builds via
/// transposed() - identity().
Vector direct_lane(const CsrPattern& pattern,
                   const std::vector<double>& values, std::size_t lanes,
                   std::size_t lane, Matrix& a, Vector& b) {
  const std::size_t n = pattern.rows;
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = r == c ? -1.0 : 0.0;
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t k = pattern.row_ptr[r]; k < pattern.row_ptr[r + 1]; ++k) {
      const std::size_t c = pattern.col_idx[k];
      // Transposed entry; the diagonal keeps its -1 from the identity.
      a(c, r) = values[k * lanes + lane] - (c == r ? 1.0 : 0.0);
    }
  for (std::size_t c = 0; c < n; ++c) a(n - 1, c) = 1.0;
  b.assign(n, 0.0);
  b[n - 1] = 1.0;
  Vector pi = Lu(a).solve(b);
  double sum = 0.0;
  for (double& v : pi) {
    if (v < 0.0 && v > -1e-9) v = 0.0;
    sum += v;
  }
  DRSM_CHECK(sum > 0.0, "stationary: degenerate solution");
  for (double& v : pi) v /= sum;
  return pi;
}

}  // namespace

void check_stochastic_batch(const CsrPattern& pattern,
                            const std::vector<double>& values,
                            std::size_t lanes, double tol) {
  DRSM_CHECK(values.size() == pattern.nonzeros() * lanes,
             "batch: value block does not match pattern x lanes");
  for (double v : values)
    if (v < -tol)
      throw Error("check_stochastic: negative transition probability");
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    for (std::size_t r = 0; r < pattern.rows; ++r) {
      double sum = 0.0;
      for (std::size_t k = pattern.row_ptr[r]; k < pattern.row_ptr[r + 1];
           ++k)
        sum += values[k * lanes + lane];
      if (std::fabs(sum - 1.0) > tol)
        throw Error("check_stochastic: row " + std::to_string(r) +
                    " sums to " + std::to_string(sum));
    }
  }
}

std::vector<Vector> batched_stationary(const CsrPattern& pattern,
                                       const std::vector<double>& values,
                                       std::size_t lanes,
                                       const StationaryOptions& options,
                                       BatchSolveStats* stats) {
  DRSM_CHECK(pattern.rows == pattern.cols,
             "stationary: matrix must be square");
  DRSM_CHECK(pattern.row_ptr.size() == pattern.rows + 1,
             "batch: malformed row_ptr");
  DRSM_CHECK(values.size() == pattern.nonzeros() * lanes,
             "batch: value block does not match pattern x lanes");
  const std::size_t n = pattern.rows;
  std::vector<Vector> out(lanes);
  if (stats != nullptr) *stats = {.lanes = lanes, .states = n};
  if (lanes == 0) return out;

  if (n <= options.direct_limit) {
    if (stats != nullptr) stats->direct = true;
    Matrix a(n, n);
    Vector b(n);
    for (std::size_t lane = 0; lane < lanes; ++lane)
      out[lane] = direct_lane(pattern, values, lanes, lane, a, b);
    return out;
  }

  // Blocked power iteration: one pass over the shared structure advances
  // every live lane, touching each lane's SoA values column exactly as
  // the scalar CsrMatrix::multiply_left would (same nonzero order, same
  // zero-source skip), so per-lane arithmetic is order-identical to the
  // scalar solver.  A converged lane freezes at its own iteration count.
  const double d = options.damping;
  std::vector<Vector> pi(lanes, Vector(n, 1.0 / static_cast<double>(n)));
  std::vector<Vector> next(lanes);
  std::vector<std::uint8_t> live(lanes, 1);
  std::size_t remaining = lanes;
  for (std::size_t it = 0; it < options.max_iterations && remaining > 0;
       ++it) {
    for (std::size_t lane = 0; lane < lanes; ++lane)
      if (live[lane]) next[lane].assign(n, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        if (!live[lane]) continue;
        const double xv = pi[lane][r];
        if (xv == 0.0) continue;
        Vector& y = next[lane];
        for (std::size_t k = pattern.row_ptr[r]; k < pattern.row_ptr[r + 1];
             ++k)
          y[pattern.col_idx[k]] += xv * values[k * lanes + lane];
      }
    }
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (!live[lane]) continue;
      Vector& nx = next[lane];
      if (d > 0.0)
        for (std::size_t i = 0; i < n; ++i)
          nx[i] = (1.0 - d) * nx[i] + d * pi[lane][i];
      const double s = norm1(nx);
      DRSM_CHECK(s > 0.0, "stationary: vanished iterate");
      for (double& v : nx) v /= s;
      const double delta = max_abs_diff(nx, pi[lane]);
      pi[lane] = std::move(nx);
      nx = Vector();
      if (delta < options.tolerance) {
        live[lane] = 0;
        --remaining;
        out[lane] = std::move(pi[lane]);
        if (stats != nullptr) {
          stats->total_iterations += it + 1;
          stats->max_iterations = std::max(stats->max_iterations, it + 1);
        }
      }
    }
  }
  if (remaining > 0)
    throw Error("stationary_distribution: power iteration did not converge");
  return out;
}

}  // namespace drsm::linalg
