#include "linalg/sparse.h"

#include <algorithm>

namespace drsm::linalg {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  for (const auto& t : triplets)
    DRSM_CHECK(t.row < rows && t.col < cols, "triplet out of range");
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  row_ptr_.assign(rows + 1, 0);
  for (std::size_t i = 0; i < triplets.size();) {
    std::size_t j = i + 1;
    double sum = triplets[i].value;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    col_idx_.push_back(triplets[i].col);
    values_.push_back(sum);
    ++row_ptr_[triplets[i].row + 1];
    i = j;
  }
  for (std::size_t r = 0; r < rows; ++r) row_ptr_[r + 1] += row_ptr_[r];
}

Vector CsrMatrix::multiply(const Vector& x) const {
  DRSM_CHECK(x.size() == cols_, "csr multiply: dimension mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      acc += values_[k] * x[col_idx_[k]];
    y[r] = acc;
  }
  return y;
}

Vector CsrMatrix::multiply_left(const Vector& x) const {
  DRSM_CHECK(x.size() == rows_, "csr multiply_left: dimension mismatch");
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xv = x[r];
    if (xv == 0.0) continue;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      y[col_idx_[k]] += xv * values_[k];
  }
  return y;
}

Vector CsrMatrix::row_sums() const {
  Vector s(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      s[r] += values_[k];
  return s;
}

Matrix CsrMatrix::to_dense() const {
  Matrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      m(r, col_idx_[k]) += values_[k];
  return m;
}

}  // namespace drsm::linalg
