// Dense row-major matrix and vector operations.
//
// The analytic engine reduces each coherence protocol + workload to a finite
// Markov chain; the stationary distribution is obtained by direct linear
// solves on these matrices (small chains) or by iterative methods on the
// sparse form (large chains).  Only the operations the engine needs are
// provided — this is not a general BLAS.
#pragma once

#include <cstddef>
#include <vector>

#include "support/error.h"

namespace drsm::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    DRSM_CHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    DRSM_CHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  const std::vector<double>& data() const { return data_; }

  Matrix transposed() const;

  /// y = A x.
  Vector multiply(const Vector& x) const;

  /// y = A^T x (i.e. row-vector times matrix, as used for x P in chains).
  Vector multiply_transpose(const Vector& x) const;

  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;

  /// Max-abs entry (used in convergence checks and tests).
  double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm.
double norm2(const Vector& v);

/// L1 norm.
double norm1(const Vector& v);

/// Max-abs difference between two equal-length vectors.
double max_abs_diff(const Vector& a, const Vector& b);

/// Dot product.
double dot(const Vector& a, const Vector& b);

}  // namespace drsm::linalg
