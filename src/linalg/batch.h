// Batched stationary solves for Markov chains sharing one sparsity
// pattern.
//
// Parameter sweeps re-solve the same chain shape for hundreds of
// probability assignments: the reachable-state set, the transition
// structure, and every workspace are pure functions of the chain and the
// positive-probability event mask, so only the numeric values differ
// between sweep points.  The batched solver takes that shared structure
// once plus a lane-major structure-of-arrays value block and solves all
// lanes in one call.
//
// Bit-identity contract: each lane's stationary vector is bit-for-bit the
// vector stationary_distribution(CsrMatrix(...), options) computes for
// that lane's matrix with a cold start.  The batch executes the identical
// per-lane operation sequence — same duplicate summation, same LU or
// power-iteration arithmetic in the same order, same per-lane convergence
// cut-off — and batching only amortizes structure traversal, allocation
// and cache traffic.  tests/solver_batch_test.cc enforces this against
// the scalar path for all eight protocols.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/stationary.h"

namespace drsm::linalg {

/// CSR row/column structure without values — the shape shared by every
/// lane of a batch.  Indices follow CsrMatrix: row_ptr has rows+1
/// entries, col_idx has one entry per (deduplicated) nonzero.
struct CsrPattern {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::size_t> row_ptr;
  std::vector<std::size_t> col_idx;

  std::size_t nonzeros() const { return col_idx.size(); }
};

/// How a batched solve went (the analytic.batch_* metrics).
struct BatchSolveStats {
  std::size_t lanes = 0;
  std::size_t states = 0;
  bool direct = false;               // LU path taken (all lanes)
  std::size_t total_iterations = 0;  // power iterations summed over lanes
  std::size_t max_iterations = 0;    // slowest lane (0 for direct)
};

/// Verifies every lane of the batch is row-stochastic (CsrMatrix
/// semantics: entries >= -tol, row sums within tol of 1); throws
/// drsm::Error otherwise.  `values[k * lanes + lane]` is nonzero k of
/// lane `lane`, k in CSR order.
void check_stochastic_batch(const CsrPattern& pattern,
                            const std::vector<double>& values,
                            std::size_t lanes, double tol = 1e-9);

/// Stationary distribution of every lane.  `values` is the lane-major
/// SoA block described above.  Small chains (pattern.rows <=
/// options.direct_limit) run one LU solve per lane over a shared dense
/// workspace; larger chains run a blocked power iteration over the SoA
/// values with a per-lane convergence mask — a lane that reaches
/// options.tolerance is frozen at exactly the iterate the scalar solver
/// would have returned while the remaining lanes continue.
/// options.initial is ignored (lanes start cold, matching a fresh
/// scalar solver).
std::vector<Vector> batched_stationary(const CsrPattern& pattern,
                                       const std::vector<double>& values,
                                       std::size_t lanes,
                                       const StationaryOptions& options = {},
                                       BatchSolveStats* stats = nullptr);

}  // namespace drsm::linalg
