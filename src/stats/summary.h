// Steady-state output analysis for the simulation experiments: running
// moments, batch-means confidence intervals, and the relative-discrepancy
// measure of the paper's Table 7.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace drsm::stats {

/// Numerically stable running mean/variance (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;

  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }
  bool contains(double x) const { return x >= lo() && x <= hi(); }
};

/// Batch-means interval estimate for a (possibly autocorrelated) stationary
/// sequence of per-operation costs: the series is cut into `num_batches`
/// equal batches whose means are treated as approximately independent.
/// `z` is the normal critical value (1.96 ~ 95 %).
ConfidenceInterval batch_means_ci(const std::vector<double>& samples,
                                  std::size_t num_batches, double z = 1.96);

/// Interval from independent replications (one value per seed).
ConfidenceInterval replication_ci(const std::vector<double>& replicates,
                                  double z = 1.96);

/// The paper's Table 7 discrepancy: 100 * (acc_analytic - acc_sim) /
/// acc_analytic, in percent.  Returns 0 when both are (near) zero and +/-100
/// when only the analytic value vanishes.
double relative_discrepancy_percent(double analytical, double simulated);

/// Runs `replications` evaluations of `experiment` (seed passed in) and
/// returns the replication confidence interval of the results.
ConfidenceInterval replicate(std::size_t replications,
                             const std::function<double(std::uint64_t)>&
                                 experiment,
                             double z = 1.96);

}  // namespace drsm::stats
