#include "stats/summary.h"

#include <cmath>

#include "support/error.h"

namespace drsm::stats {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

ConfidenceInterval batch_means_ci(const std::vector<double>& samples,
                                  std::size_t num_batches, double z) {
  DRSM_CHECK(num_batches >= 2, "need at least two batches");
  DRSM_CHECK(samples.size() >= num_batches, "fewer samples than batches");
  const std::size_t batch_size = samples.size() / num_batches;

  RunningStats batches;
  for (std::size_t b = 0; b < num_batches; ++b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < batch_size; ++i)
      sum += samples[b * batch_size + i];
    batches.add(sum / static_cast<double>(batch_size));
  }
  ConfidenceInterval ci;
  ci.mean = batches.mean();
  ci.half_width = z * batches.stddev() /
                  std::sqrt(static_cast<double>(num_batches));
  return ci;
}

ConfidenceInterval replication_ci(const std::vector<double>& replicates,
                                  double z) {
  DRSM_CHECK(replicates.size() >= 2, "need at least two replicates");
  RunningStats stats;
  for (double r : replicates) stats.add(r);
  ConfidenceInterval ci;
  ci.mean = stats.mean();
  ci.half_width =
      z * stats.stddev() / std::sqrt(static_cast<double>(replicates.size()));
  return ci;
}

double relative_discrepancy_percent(double analytical, double simulated) {
  if (std::fabs(analytical) < 1e-12)
    return std::fabs(simulated) < 1e-12 ? 0.0
                                        : (simulated > 0 ? -100.0 : 100.0);
  return 100.0 * (analytical - simulated) / analytical;
}

ConfidenceInterval replicate(
    std::size_t replications,
    const std::function<double(std::uint64_t)>& experiment, double z) {
  std::vector<double> results;
  results.reserve(replications);
  for (std::size_t r = 0; r < replications; ++r)
    results.push_back(experiment(r + 1));
  return replication_ci(results, z);
}

}  // namespace drsm::stats
