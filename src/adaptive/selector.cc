#include "adaptive/selector.h"

#include <algorithm>
#include <array>
#include <chrono>

#include "support/error.h"

namespace drsm::adaptive {

using fsm::OpKind;
using protocols::ProtocolKind;

WorkloadEstimator::WorkloadEstimator(std::size_t num_clients,
                                     std::size_t window)
    : num_clients_(num_clients), window_(window), counts_(num_clients) {
  DRSM_CHECK(window_ >= 1, "estimator window must be positive");
  DRSM_CHECK(num_clients_ >= 1, "need at least one client");
}

void WorkloadEstimator::observe(NodeId node, OpKind op) {
  DRSM_CHECK(node < num_clients_, "estimator observes client operations");
  DRSM_CHECK(op == OpKind::kRead || op == OpKind::kWrite,
             "estimator tracks reads and writes");
  window_contents_.emplace_back(node, op);
  ++counts_[node][op == OpKind::kWrite ? 1 : 0];
  if (window_contents_.size() > window_) {
    auto [old_node, old_op] = window_contents_.front();
    window_contents_.pop_front();
    --counts_[old_node][old_op == OpKind::kWrite ? 1 : 0];
  }
}

workload::WorkloadSpec WorkloadEstimator::empirical_spec() const {
  DRSM_CHECK(!window_contents_.empty(), "no observations yet");
  const double total = static_cast<double>(window_contents_.size());
  workload::WorkloadSpec spec;
  spec.name = "empirical";
  for (NodeId node = 0; node < num_clients_; ++node) {
    const double reads = static_cast<double>(counts_[node][0]);
    const double writes = static_cast<double>(counts_[node][1]);
    if (reads == 0.0 && writes == 0.0) continue;
    // Keep both event kinds for any active node so the cached chain
    // structure stays stable while the mix drifts within an epoch.
    spec.events.push_back({node, OpKind::kRead, reads / total});
    spec.events.push_back({node, OpKind::kWrite, writes / total});
  }
  spec.validate();
  return spec;
}

AdaptiveSelector::AdaptiveSelector(
    const sim::SystemConfig& config,
    std::vector<ProtocolKind> candidates)
    : solver_(config),
      candidates_(std::move(candidates)),
      num_clients_(config.num_clients) {
  if (candidates_.empty())
    candidates_.assign(protocols::kAllProtocols.begin(),
                       protocols::kAllProtocols.end());
}

AdaptiveSelector::Classification AdaptiveSelector::classify(
    const workload::WorkloadSpec& spec) {
  Classification best{candidates_.front(),
                      solver_.acc(candidates_.front(), spec)};
  for (std::size_t i = 1; i < candidates_.size(); ++i) {
    const double acc = solver_.acc(candidates_[i], spec);
    if (acc < best.predicted_acc) best = {candidates_[i], acc};
  }
  return best;
}

workload::WorkloadSpec AdaptiveSelector::spec_from_telemetry(
    const obs::AccessStats& stats, ObjectId object,
    std::size_t num_clients) {
  const std::vector<obs::AccessStats::NodeMix> mix = stats.node_mix(object);
  double total = 0.0;
  const std::size_t nodes = std::min(mix.size(), num_clients);
  for (std::size_t node = 0; node < nodes; ++node)
    total += static_cast<double>(mix[node].reads + mix[node].writes);
  DRSM_CHECK(total > 0.0,
             "spec_from_telemetry: no recent client accesses to the object");
  workload::WorkloadSpec spec;
  spec.name = "telemetry";
  for (NodeId node = 0; node < nodes; ++node) {
    const double reads = static_cast<double>(mix[node].reads);
    const double writes = static_cast<double>(mix[node].writes);
    if (reads == 0.0 && writes == 0.0) continue;
    spec.events.push_back({node, OpKind::kRead, reads / total});
    spec.events.push_back({node, OpKind::kWrite, writes / total});
  }
  spec.validate();
  return spec;
}

AdaptiveSelector::Classification AdaptiveSelector::classify_object(
    const obs::AccessStats& stats, ObjectId object) {
  return classify(spec_from_telemetry(stats, object, num_clients_));
}

namespace {

// Telemetry windows are half the requested recent-mix span: node_mix sums
// the last closed window plus the current partial one.
obs::AccessStatsOptions telemetry_options(std::size_t window) {
  obs::AccessStatsOptions options;
  options.window_ops = std::max<std::size_t>(1, window / 2);
  return options;
}

}  // namespace

AdaptiveSharedMemory::AdaptiveSharedMemory(const Options& options)
    : options_(options),
      memory_(options.memory),
      telemetry_(telemetry_options(options.window)),
      selector_(
          sim::SystemConfig{options.memory.num_clients, options.memory.costs,
                            1},
          options.candidates) {}

std::uint64_t AdaptiveSharedMemory::read(NodeId node, ObjectId object) {
  const std::uint64_t value = memory_.read(node, object);
  observe(node, object, OpKind::kRead);
  return value;
}

void AdaptiveSharedMemory::write(NodeId node, ObjectId object,
                                 std::uint64_t value) {
  memory_.write(node, object, value);
  observe(node, object, OpKind::kWrite);
}

void AdaptiveSharedMemory::observe(NodeId node, ObjectId object,
                                   OpKind op) {
  telemetry_.on_access(node, object, op);
  if (node >= options_.memory.num_clients) return;
  maybe_reclassify();
}

namespace {

// A recent per-node mix as an empirical spec; false when the window holds
// no client accesses (nothing to classify from).
bool spec_from_mix(const std::vector<obs::AccessStats::NodeMix>& mix,
                   workload::WorkloadSpec& out) {
  double total = 0.0;
  for (const auto& m : mix)
    total += static_cast<double>(m.reads + m.writes);
  if (total == 0.0) return false;
  out.name = "telemetry";
  out.events.clear();
  for (std::size_t node = 0; node < mix.size(); ++node) {
    const double reads = static_cast<double>(mix[node].reads);
    const double writes = static_cast<double>(mix[node].writes);
    if (reads == 0.0 && writes == 0.0) continue;
    out.events.push_back(
        {static_cast<NodeId>(node), OpKind::kRead, reads / total});
    out.events.push_back(
        {static_cast<NodeId>(node), OpKind::kWrite, writes / total});
  }
  out.validate();
  return true;
}

}  // namespace

ProtocolKind AdaptiveSharedMemory::pick(ProtocolKind current,
                                        const workload::WorkloadSpec& spec) {
  const auto best = selector_.classify(spec);
  if (best.protocol == current) return current;
  // The incumbent is priced on the same spec; a challenger must clear the
  // hysteresis band, so near-breakeven epochs keep the incumbent.
  const double current_acc = selector_.solver().acc(current, spec);
  return best.predicted_acc < (1.0 - options_.hysteresis) * current_acc
             ? best.protocol
             : current;
}

void AdaptiveSharedMemory::maybe_reclassify() {
  if (++ops_in_epoch_ < options_.epoch_ops) return;
  ops_in_epoch_ = 0;
  ++epochs_;
  const auto start = std::chrono::steady_clock::now();
  const std::size_t clients = options_.memory.num_clients;
  if (!options_.per_object) {
    if (telemetry_.accesses() < options_.min_observations) return;
    // The memory-wide recent mix: every object's window, client rows only.
    std::vector<obs::AccessStats::NodeMix> mix(clients);
    for (std::size_t j = 0; j < telemetry_.num_objects(); ++j) {
      const auto object_mix =
          telemetry_.node_mix(static_cast<ObjectId>(j));
      for (std::size_t n = 0; n < object_mix.size() && n < clients; ++n) {
        mix[n].reads += object_mix[n].reads;
        mix[n].writes += object_mix[n].writes;
      }
    }
    workload::WorkloadSpec spec;
    if (spec_from_mix(mix, spec)) {
      const ProtocolKind next = pick(memory_.protocol(), spec);
      if (next != memory_.protocol()) {
        memory_.switch_protocol(next);
        ++switches_;
      }
    }
  } else {
    const std::size_t objects =
        std::min(telemetry_.num_objects(), options_.memory.num_objects);
    for (std::size_t j = 0; j < objects; ++j) {
      const ObjectId object = static_cast<ObjectId>(j);
      const auto& stats = telemetry_.object(object);
      if (stats.reads + stats.writes < options_.min_observations) continue;
      auto mix = telemetry_.node_mix(object);
      if (mix.size() > clients) mix.resize(clients);
      workload::WorkloadSpec spec;
      if (!spec_from_mix(mix, spec)) continue;
      const ProtocolKind next = pick(memory_.object_protocol(object), spec);
      if (next != memory_.object_protocol(object)) {
        memory_.switch_protocol(object, next);
        ++switches_;
      }
    }
  }
  reclassify_ms_ += std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
}

}  // namespace drsm::adaptive
