#include "adaptive/selector.h"

#include <algorithm>
#include <array>

#include "support/error.h"

namespace drsm::adaptive {

using fsm::OpKind;
using protocols::ProtocolKind;

WorkloadEstimator::WorkloadEstimator(std::size_t num_clients,
                                     std::size_t window)
    : num_clients_(num_clients), window_(window), counts_(num_clients) {
  DRSM_CHECK(window_ >= 1, "estimator window must be positive");
  DRSM_CHECK(num_clients_ >= 1, "need at least one client");
}

void WorkloadEstimator::observe(NodeId node, OpKind op) {
  DRSM_CHECK(node < num_clients_, "estimator observes client operations");
  DRSM_CHECK(op == OpKind::kRead || op == OpKind::kWrite,
             "estimator tracks reads and writes");
  window_contents_.emplace_back(node, op);
  ++counts_[node][op == OpKind::kWrite ? 1 : 0];
  if (window_contents_.size() > window_) {
    auto [old_node, old_op] = window_contents_.front();
    window_contents_.pop_front();
    --counts_[old_node][old_op == OpKind::kWrite ? 1 : 0];
  }
}

workload::WorkloadSpec WorkloadEstimator::empirical_spec() const {
  DRSM_CHECK(!window_contents_.empty(), "no observations yet");
  const double total = static_cast<double>(window_contents_.size());
  workload::WorkloadSpec spec;
  spec.name = "empirical";
  for (NodeId node = 0; node < num_clients_; ++node) {
    const double reads = static_cast<double>(counts_[node][0]);
    const double writes = static_cast<double>(counts_[node][1]);
    if (reads == 0.0 && writes == 0.0) continue;
    // Keep both event kinds for any active node so the cached chain
    // structure stays stable while the mix drifts within an epoch.
    spec.events.push_back({node, OpKind::kRead, reads / total});
    spec.events.push_back({node, OpKind::kWrite, writes / total});
  }
  spec.validate();
  return spec;
}

AdaptiveSelector::AdaptiveSelector(
    const sim::SystemConfig& config,
    std::vector<ProtocolKind> candidates)
    : solver_(config),
      candidates_(std::move(candidates)),
      num_clients_(config.num_clients) {
  if (candidates_.empty())
    candidates_.assign(protocols::kAllProtocols.begin(),
                       protocols::kAllProtocols.end());
}

AdaptiveSelector::Classification AdaptiveSelector::classify(
    const workload::WorkloadSpec& spec) {
  Classification best{candidates_.front(),
                      solver_.acc(candidates_.front(), spec)};
  for (std::size_t i = 1; i < candidates_.size(); ++i) {
    const double acc = solver_.acc(candidates_[i], spec);
    if (acc < best.predicted_acc) best = {candidates_[i], acc};
  }
  return best;
}

workload::WorkloadSpec AdaptiveSelector::spec_from_telemetry(
    const obs::AccessStats& stats, ObjectId object,
    std::size_t num_clients) {
  const std::vector<obs::AccessStats::NodeMix> mix = stats.node_mix(object);
  double total = 0.0;
  const std::size_t nodes = std::min(mix.size(), num_clients);
  for (std::size_t node = 0; node < nodes; ++node)
    total += static_cast<double>(mix[node].reads + mix[node].writes);
  DRSM_CHECK(total > 0.0,
             "spec_from_telemetry: no recent client accesses to the object");
  workload::WorkloadSpec spec;
  spec.name = "telemetry";
  for (NodeId node = 0; node < nodes; ++node) {
    const double reads = static_cast<double>(mix[node].reads);
    const double writes = static_cast<double>(mix[node].writes);
    if (reads == 0.0 && writes == 0.0) continue;
    spec.events.push_back({node, OpKind::kRead, reads / total});
    spec.events.push_back({node, OpKind::kWrite, writes / total});
  }
  spec.validate();
  return spec;
}

AdaptiveSelector::Classification AdaptiveSelector::classify_object(
    const obs::AccessStats& stats, ObjectId object) {
  return classify(spec_from_telemetry(stats, object, num_clients_));
}

AdaptiveSharedMemory::AdaptiveSharedMemory(const Options& options)
    : options_(options),
      memory_(options.memory),
      selector_(
          sim::SystemConfig{options.memory.num_clients, options.memory.costs,
                            1},
          options.candidates) {
  const std::size_t estimator_count =
      options_.per_object ? options_.memory.num_objects : 1;
  estimators_.reserve(estimator_count);
  for (std::size_t i = 0; i < estimator_count; ++i)
    estimators_.emplace_back(options_.memory.num_clients, options_.window);
}

std::uint64_t AdaptiveSharedMemory::read(NodeId node, ObjectId object) {
  const std::uint64_t value = memory_.read(node, object);
  observe(node, object, OpKind::kRead);
  return value;
}

void AdaptiveSharedMemory::write(NodeId node, ObjectId object,
                                 std::uint64_t value) {
  memory_.write(node, object, value);
  observe(node, object, OpKind::kWrite);
}

void AdaptiveSharedMemory::observe(NodeId node, ObjectId object,
                                   OpKind op) {
  telemetry_.on_access(node, object, op);
  if (node >= options_.memory.num_clients) return;
  estimators_[options_.per_object ? object : 0].observe(node, op);
  maybe_reclassify();
}

void AdaptiveSharedMemory::maybe_reclassify() {
  if (++ops_in_epoch_ < options_.epoch_ops) return;
  ops_in_epoch_ = 0;
  ++epochs_;
  if (!options_.per_object) {
    if (estimators_[0].observations() < options_.min_observations) return;
    const auto decision =
        selector_.classify(estimators_[0].empirical_spec());
    if (decision.protocol != memory_.protocol()) {
      memory_.switch_protocol(decision.protocol);
      ++switches_;
    }
    return;
  }
  for (ObjectId j = 0; j < options_.memory.num_objects; ++j) {
    if (estimators_[j].observations() < options_.min_observations) continue;
    const auto decision =
        selector_.classify(estimators_[j].empirical_spec());
    if (decision.protocol != memory_.object_protocol(j)) {
      memory_.switch_protocol(j, decision.protocol);
      ++switches_;
    }
  }
}

}  // namespace drsm::adaptive
