#include "adaptive/online.h"

#include <algorithm>
#include <chrono>

#include "support/error.h"

namespace drsm::adaptive {

using protocols::ProtocolKind;

namespace {

obs::AccessStatsOptions telemetry_options(std::size_t window) {
  obs::AccessStatsOptions options;
  options.window_ops = std::max<std::size_t>(1, window / 2);
  return options;
}

}  // namespace

OnlineController::OnlineController(dsm::ConcurrentSharedMemory& memory,
                                   const Options& options)
    : memory_(memory),
      options_(options),
      selector_(sim::SystemConfig{memory.options().num_clients,
                                  memory.options().costs, 1},
                options.candidates),
      ring_(options.ring_capacity),
      stats_(telemetry_options(options.window)),
      current_(memory.options().num_objects, memory.options().protocol),
      cooldown_until_(memory.options().num_objects, 0) {
  DRSM_CHECK(options_.decide_every >= 1, "decide_every must be positive");
  DRSM_CHECK(options_.hot_k >= 1, "hot_k must be positive");
}

OnlineController::~OnlineController() { stop(); }

std::size_t OnlineController::drain() {
  Record batch[256];
  std::size_t total = 0;
  for (;;) {
    const std::size_t n = ring_.pop_batch(batch, std::size(batch));
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i)
      stats_.on_access(batch[i].node, batch[i].object, batch[i].op);
    records_ += n;
    since_decide_ += n;
    total += n;
  }
  return total;
}

void OnlineController::decide() {
  ++passes_;
  const auto start = std::chrono::steady_clock::now();
  const std::size_t clients = memory_.options().num_clients;
  for (const auto& hot : stats_.hot_set(options_.hot_k)) {
    const ObjectId object = hot.object;
    if (object >= current_.size()) continue;
    if (cooldown_until_[object] > passes_) continue;
    const auto& lifetime = stats_.object(object);
    if (lifetime.reads + lifetime.writes < options_.min_observations)
      continue;
    const auto mix = stats_.node_mix(object);
    std::uint64_t recent = 0;
    for (std::size_t n = 0; n < mix.size() && n < clients; ++n)
      recent += mix[n].reads + mix[n].writes;
    if (recent == 0) continue;
    const workload::WorkloadSpec spec =
        AdaptiveSelector::spec_from_telemetry(stats_, object, clients);
    const auto best = selector_.classify(spec);
    const ProtocolKind incumbent = current_[object];
    if (best.protocol == incumbent) continue;
    const double incumbent_acc = selector_.solver().acc(incumbent, spec);
    if (best.predicted_acc >=
        (1.0 - options_.hysteresis) * incumbent_acc)
      continue;
    memory_.migrate(object, best.protocol);
    current_[object] = best.protocol;
    cooldown_until_[object] = passes_ + options_.cooldown_passes;
    ++migrations_;
  }
  reclassify_ms_ += std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
}

void OnlineController::run() {
  for (;;) {
    const std::size_t n = drain();
    while (since_decide_ >= options_.decide_every) {
      since_decide_ -= options_.decide_every;
      decide();
    }
    if (n != 0) continue;
    if (stop_.load(std::memory_order_acquire)) break;
    const std::uint32_t ticket = ring_.prepare_wait();
    if (ring_.can_pop() || stop_.load(std::memory_order_acquire)) {
      ring_.cancel_wait();
      continue;
    }
    ring_.wait(ticket);
  }
}

void OnlineController::start() {
  DRSM_CHECK(!thread_.joinable(), "controller already started");
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void OnlineController::stop() {
  if (stopped_) return;
  stopped_ = true;
  if (thread_.joinable()) {
    stop_.store(true, std::memory_order_release);
    ring_.poke();
    thread_.join();
  }
  drain();  // anything recorded after the loop exited
  if (options_.metrics == nullptr) return;
  obs::MetricsRegistry& m = *options_.metrics;
  m.counter("adaptive.records").inc(records_);
  m.counter("adaptive.dropped").inc(dropped());
  m.counter("adaptive.passes").inc(passes_);
  m.counter("adaptive.migrations").inc(migrations_);
  m.gauge("adaptive.reclassify_ms").set(reclassify_ms_);
}

void OnlineController::poll() {
  DRSM_CHECK(!thread_.joinable(), "poll() races the controller thread");
  drain();
  while (since_decide_ >= options_.decide_every) {
    since_decide_ -= options_.decide_every;
    decide();
  }
}

}  // namespace drsm::adaptive
