// OnlineController: the self-tuning loop for the concurrent runtime.
//
// AdaptiveSharedMemory closes the selection loop inline — every operation
// runs on the caller's thread, so the epoch-boundary reclassification can
// simply run there too.  Under dsm::ConcurrentSharedMemory that is no
// longer true: operations complete on shard threads and client threads
// must never stall behind an analytic solve.  The controller therefore
// runs the loop *beside* the runtime:
//
//   client threads ──record()──▶ MpscRing ──▶ controller thread drains
//   into its own obs::AccessStats ──▶ every decide_every records, prices
//   the hot set with the warm-started analytic solver ──▶
//   ConcurrentSharedMemory::migrate(object, winner)
//
// record() is one lock-free ring push (drops are counted, not blocked on:
// telemetry is sampling, losing a record under burst cannot corrupt
// anything).  Decisions follow the same discipline as the inline loop —
// per-object hysteresis band over the incumbent's re-priced acc — plus a
// per-object cooldown in decision passes, since a live migration has a
// real cost (drain + seed) that re-pricing does not see.
//
// The controller tracks each object's protocol itself: it is the only
// migration issuer, and the shard applies migrations in ring order, so
// its view converges without reading shard-owned state (no cross-thread
// peeking at the runtimes).  Use start()/stop() for the background
// thread, or poll() to run drain+decide synchronously in deterministic
// tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "adaptive/selector.h"
#include "dsm/concurrent.h"
#include "obs/access_stats.h"
#include "obs/metrics.h"
#include "sim/mpsc_ring.h"

namespace drsm::adaptive {

class OnlineController {
 public:
  struct Options {
    /// Records drained between decision passes.
    std::size_t decide_every = 1024;
    /// Hot objects (by EWMA rate) priced per pass.
    std::size_t hot_k = 8;
    /// Lifetime accesses an object needs before it is ever priced.
    std::size_t min_observations = 64;
    /// Relative acc improvement a challenger needs over the incumbent.
    double hysteresis = 0.05;
    /// Decision passes an object sits out after migrating.
    std::size_t cooldown_passes = 4;
    /// Recent-mix span in records (telemetry window is half: last closed
    /// plus current window).
    std::size_t window = 1024;
    std::size_t ring_capacity = 8192;
    std::vector<protocols::ProtocolKind> candidates;  // empty = all eight
    /// Post-stop metrics publication target (adaptive.* names).
    obs::MetricsRegistry* metrics = nullptr;
  };

  OnlineController(dsm::ConcurrentSharedMemory& memory,
                   const Options& options);
  ~OnlineController();

  OnlineController(const OnlineController&) = delete;
  OnlineController& operator=(const OnlineController&) = delete;

  /// One completed application operation (any thread; typically called
  /// from a session's grant handler).  Never blocks: a full ring drops
  /// the record and counts it.  The push must notify — the controller
  /// thread parks on the ring's gate when idle, and a silent push would
  /// leave it parked until stop() while the ring fills and drops.
  void record(NodeId node, ObjectId object, fsm::OpKind op) {
    if (!ring_.try_push(Record{node, object, op}))
      dropped_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Background mode: a dedicated thread drains and decides until stop().
  void start();
  /// Drains the ring, runs any due decision passes, publishes metrics.
  /// Idempotent; the destructor calls it.
  void stop();

  /// Synchronous mode for deterministic tests: drains everything
  /// currently in the ring and runs a decision pass per decide_every
  /// records drained.  Must not race start()/stop().
  void poll();

  /// The controller's view of an object's protocol (exact once the shard
  /// has applied every issued migration, e.g. after memory.stop()).
  protocols::ProtocolKind object_protocol(ObjectId object) const {
    return current_[object];
  }

  const obs::AccessStats& telemetry() const { return stats_; }
  std::uint64_t records() const { return records_; }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t passes() const { return passes_; }
  std::uint64_t migrations() const { return migrations_; }
  double reclassify_ms() const { return reclassify_ms_; }

 private:
  struct Record {
    NodeId node = 0;
    ObjectId object = 0;
    fsm::OpKind op = fsm::OpKind::kRead;
  };

  std::size_t drain();
  void decide();
  void run();

  dsm::ConcurrentSharedMemory& memory_;
  Options options_;
  AdaptiveSelector selector_;
  sim::MpscRing<Record> ring_;
  obs::AccessStats stats_;
  std::vector<protocols::ProtocolKind> current_;   // controller's view
  std::vector<std::uint64_t> cooldown_until_;      // pass index, per object
  std::uint64_t records_ = 0;
  std::uint64_t since_decide_ = 0;
  std::uint64_t passes_ = 0;
  std::uint64_t migrations_ = 0;
  double reclassify_ms_ = 0.0;
  std::atomic<std::uint64_t> dropped_{0};
  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool stopped_ = false;
};

}  // namespace drsm::adaptive
