// Self-tuning protocol selection — the extension the paper's conclusion
// proposes: "the model can be applied to implement a classifier for the
// development of adaptive data replication coherence protocols with
// self-tuning capability based on run-time information".
//
// WorkloadEstimator turns a window of observed operations into an empirical
// sample space (the paper notes the five parameters "may be obtained by
// estimating the relative frequencies of events in some real distributed
// computation"); AdaptiveSelector classifies it with the analytic model;
// AdaptiveSharedMemory closes the loop by switching a live SharedMemory to
// the predicted-cheapest protocol at epoch boundaries.
#pragma once

#include <array>
#include <deque>
#include <vector>

#include "analytic/solver.h"
#include "dsm/dsm.h"
#include "obs/access_stats.h"
#include "workload/spec.h"

namespace drsm::adaptive {

/// Sliding-window estimator of the per-operation sample space.
class WorkloadEstimator {
 public:
  explicit WorkloadEstimator(std::size_t num_clients,
                             std::size_t window = 512);

  void observe(NodeId node, fsm::OpKind op);

  std::size_t observations() const { return window_contents_.size(); }

  /// Empirical sample space over the client nodes seen in the window.
  /// Requires at least one observation.
  workload::WorkloadSpec empirical_spec() const;

 private:
  std::size_t num_clients_;
  std::size_t window_;
  std::deque<std::pair<NodeId, fsm::OpKind>> window_contents_;
  // counts[node][0] = reads, counts[node][1] = writes, within the window
  std::vector<std::array<std::size_t, 2>> counts_;
};

/// Classifier: picks the acc-minimizing protocol for a workload.
class AdaptiveSelector {
 public:
  AdaptiveSelector(const sim::SystemConfig& config,
                   std::vector<protocols::ProtocolKind> candidates = {});

  struct Classification {
    protocols::ProtocolKind protocol;
    double predicted_acc = 0.0;
  };
  Classification classify(const workload::WorkloadSpec& spec);

  /// Builds an empirical per-object sample space from live telemetry: the
  /// recent (last closed + current window) per-node read/write mix of
  /// `object`, restricted to client nodes.  Requires at least one client
  /// access to the object in that window span.
  static workload::WorkloadSpec spec_from_telemetry(
      const obs::AccessStats& stats, ObjectId object,
      std::size_t num_clients);

  /// Classifies `object` straight from telemetry — the observe-path hook:
  /// feed an AccessStats from the runtime's event stream, ask which
  /// protocol the analytic model predicts cheapest for what the object is
  /// *currently* experiencing.
  Classification classify_object(const obs::AccessStats& stats,
                                 ObjectId object);

  analytic::AccSolver& solver() { return solver_; }

 private:
  analytic::AccSolver solver_;
  std::vector<protocols::ProtocolKind> candidates_;
  std::size_t num_clients_;
};

/// A SharedMemory that re-selects its protocol every `epoch_ops`
/// operations — either one protocol for the whole memory, or (per_object
/// mode) one per shared object, since the paper's analysis treats objects
/// independently.  Decisions are driven by the live obs::AccessStats
/// telemetry (the windowed per-node mix each object is *currently*
/// experiencing), not by a separate estimator: the same sensor that
/// reports hot sets and activity-center drift feeds the classifier.  A
/// hysteresis band keeps the selection stable: the incumbent protocol is
/// re-priced on every epoch's spec, and a challenger wins only by beating
/// it by the configured margin — near-breakeven workloads do not flap.
class AdaptiveSharedMemory {
 public:
  struct Options {
    dsm::SharedMemory::Options memory;
    std::size_t epoch_ops = 512;       // re-classify this often
    std::size_t min_observations = 64; // do not switch before this many ops
    /// Recent-mix span, in accesses: the telemetry window is sized so
    /// that "last closed + current window" covers about this many.
    std::size_t window = 1024;
    std::vector<protocols::ProtocolKind> candidates;  // empty = all eight
    /// Estimate and select per object instead of globally.
    bool per_object = false;
    /// Relative acc improvement a challenger must show over the incumbent
    /// before a switch happens (0 still demands a strict improvement).
    double hysteresis = 0.05;
  };

  explicit AdaptiveSharedMemory(const Options& options);

  std::uint64_t read(NodeId node, ObjectId object);
  void write(NodeId node, ObjectId object, std::uint64_t value);

  dsm::SharedMemory& memory() { return memory_; }

  /// Live access telemetry over everything this memory has served:
  /// hot set, activity centers, drift log (see obs/access_stats.h).
  const obs::AccessStats& telemetry() const { return telemetry_; }

  protocols::ProtocolKind current_protocol() const {
    return memory_.protocol();
  }
  protocols::ProtocolKind object_protocol(ObjectId object) const {
    return memory_.object_protocol(object);
  }
  std::size_t switches() const { return switches_; }
  std::size_t epochs() const { return epochs_; }
  /// Wall time spent inside epoch-boundary reclassification (the price of
  /// self-tuning; benches report it as adaptive.reclassify_ms).
  double reclassify_ms() const { return reclassify_ms_; }

 private:
  void observe(NodeId node, ObjectId object, fsm::OpKind op);
  void maybe_reclassify();
  /// The hysteresis gate: best candidate for `spec`, unless the incumbent
  /// is within the band — then the incumbent stays.
  protocols::ProtocolKind pick(protocols::ProtocolKind current,
                               const workload::WorkloadSpec& spec);

  Options options_;
  dsm::SharedMemory memory_;
  obs::AccessStats telemetry_;
  AdaptiveSelector selector_;
  std::size_t ops_in_epoch_ = 0;
  std::size_t switches_ = 0;
  std::size_t epochs_ = 0;
  double reclassify_ms_ = 0.0;
};

}  // namespace drsm::adaptive
