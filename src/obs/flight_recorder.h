// Flight recorder: always-on bounded recording of the most recent trace
// events, dumped as a JSONL post-mortem when something goes wrong.
//
// The recorder is a TraceRecorder ring behind an EventSink facade plus a
// dump() that writes a one-line JSON header (reason, retained/dropped
// counts) followed by the retained events, oldest first — the file format
// docs/OBSERVABILITY.md's "reading a post-mortem" walkthrough describes.
// Three triggers use it:
//
//  * check::CoherenceOracle dumps on its first violation (the events
//    leading up to the inconsistent read are exactly what is needed to
//    localize it);
//  * check::export_counterexample renders a model-checker counterexample
//    through it, so checker and simulator post-mortems share one format;
//  * install_fatal_dump() registers the recorder with the support-layer
//    fatal hook: a failing DRSM_CHECK writes the post-mortem before the
//    error propagates, turning "invariant X failed" into a replayable
//    event history.
//
// The ring records every event unconditionally; size it for the tail you
// want to keep (default 4096 ≈ the last ~600 simulated operations).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/trace.h"

namespace drsm::obs {

class FlightRecorder final : public EventSink {
 public:
  explicit FlightRecorder(std::size_t capacity = 4096);
  ~FlightRecorder() override;

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void on_event(const TraceEvent& event) override;

  /// Pass-through sink: every event is also forwarded, so the recorder
  /// can sit in front of a TraceRecorder or AccessStats.
  void set_next(EventSink* next) { next_ = next; }

  /// Renders the post-mortem: header line
  ///   {"postmortem":{"reason":...,"retained":R,"dropped":D,"total":T}}
  /// followed by the retained events as JSONL, oldest first.  Writes it
  /// to `path` unless empty; returns the rendered text either way.
  std::string dump(const std::string& path, const std::string& reason);

  /// Registers this recorder as the process-wide fatal-error recorder: a
  /// failing DRSM_CHECK dumps the ring to `path` (reason = the check
  /// message) before the drsm::Error is thrown.  One recorder at a time;
  /// the destructor (or an empty path) deregisters.
  void install_fatal_dump(std::string path);

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return ring_.capacity(); }
  std::uint64_t total() const { return ring_.total(); }
  const TraceRecorder& ring() const { return ring_; }
  void clear() { ring_.clear(); }

  /// Post-mortems produced so far and where the last one went.
  std::uint64_t dumps() const { return dumps_; }
  const std::string& last_dump_path() const { return last_dump_path_; }

 private:
  void uninstall();

  TraceRecorder ring_;
  EventSink* next_ = nullptr;
  std::uint64_t dumps_ = 0;
  std::string last_dump_path_;
  std::string fatal_path_;
};

}  // namespace drsm::obs
