#include "obs/access_stats.h"

#include <algorithm>

#include "support/error.h"

namespace drsm::obs {

AccessStats::AccessStats(AccessStatsOptions options) : opt_(options) {
  DRSM_CHECK(opt_.window_ops >= 1, "telemetry window must be positive");
  DRSM_CHECK(opt_.ewma_alpha > 0.0 && opt_.ewma_alpha <= 1.0,
             "ewma_alpha must be in (0, 1]");
  DRSM_CHECK(opt_.dominance_threshold > 0.0 &&
                 opt_.dominance_threshold <= 1.0,
             "dominance_threshold must be in (0, 1]");
}

void AccessStats::ensure_object(ObjectId object) {
  if (object >= objects_.size()) objects_.resize(object + 1);
  PerObject& po = objects_[object];
  if (po.window_counts.size() < nodes_) {
    po.window_counts.resize(nodes_);
    po.prev_counts.resize(nodes_);
  }
}

void AccessStats::on_access(NodeId node, ObjectId object, fsm::OpKind op) {
  if (node >= nodes_) {
    nodes_ = node + 1;
    for (PerObject& po : objects_) {
      po.window_counts.resize(nodes_);
      po.prev_counts.resize(nodes_);
    }
  }
  ensure_object(object);
  PerObject& po = objects_[object];
  ++accesses_;
  ++po.window_accesses;
  if (op == fsm::OpKind::kRead) {
    ++reads_;
    ++po.stats.reads;
    ++po.window_reads;
    ++po.window_counts[node].reads;
  } else if (op == fsm::OpKind::kWrite) {
    ++writes_;
    ++po.stats.writes;
    ++po.window_writes;
    ++po.window_counts[node].writes;
  }
  if (++in_window_ >= opt_.window_ops) close_window();
}

void AccessStats::on_event(const TraceEvent& event) {
  if (event.kind == EventKind::kOpIssue)
    on_access(event.node, event.object, event.op);
  if (next_ != nullptr) next_->on_event(event);
}

void AccessStats::close_window() {
  in_window_ = 0;
  const double alpha = opt_.ewma_alpha;
  for (ObjectId object = 0; object < objects_.size(); ++object) {
    PerObject& po = objects_[object];
    ObjectStats& s = po.stats;
    s.rate = alpha * static_cast<double>(po.window_accesses) +
             (1.0 - alpha) * s.rate;
    s.write_rate = alpha * static_cast<double>(po.window_writes) +
                   (1.0 - alpha) * s.write_rate;
    if (po.window_accesses > 0) {
      ++s.windows_active;

      // Dominant accessor / top writer of this window; lowest node id
      // wins ties so the result is deterministic.
      NodeId top_node = kNoNode;
      std::uint64_t top_count = 0;
      NodeId top_writer = kNoNode;
      std::uint64_t top_writes = 0;
      for (NodeId node = 0; node < po.window_counts.size(); ++node) {
        const NodeMix& mix = po.window_counts[node];
        const std::uint64_t total = mix.reads + mix.writes;
        if (total > top_count) {
          top_count = total;
          top_node = node;
        }
        if (mix.writes > top_writes) {
          top_writes = mix.writes;
          top_writer = node;
        }
      }
      const double share = static_cast<double>(top_count) /
                           static_cast<double>(po.window_accesses);
      const NodeId center =
          share + 1e-12 >= opt_.dominance_threshold ? top_node : kNoNode;
      if (center != s.center)
        drifts_.push_back({windows_, object, s.center, center});
      s.center = center;
      s.center_share = share;
      s.top_writer = top_writer;
      s.writer_locality =
          po.window_writes == 0
              ? 0.0
              : static_cast<double>(top_writes) /
                    static_cast<double>(po.window_writes);
      po.prev_counts = po.window_counts;
      std::fill(po.window_counts.begin(), po.window_counts.end(), NodeMix{});
    } else {
      // Idle window: the center record is stale by construction but is
      // kept (an object read once per epoch still has a home); only the
      // rates decay, above.
      std::fill(po.prev_counts.begin(), po.prev_counts.end(), NodeMix{});
    }
    po.window_reads = 0;
    po.window_writes = 0;
    po.window_accesses = 0;
  }
  ++windows_;
}

const AccessStats::ObjectStats& AccessStats::object(ObjectId object) const {
  DRSM_CHECK(object < objects_.size(), "object never accessed");
  return objects_[object].stats;
}

NodeId AccessStats::activity_center(ObjectId object) const {
  if (object >= objects_.size()) return kNoNode;
  return objects_[object].stats.center;
}

std::vector<AccessStats::HotObject> AccessStats::hot_set(
    std::size_t k) const {
  std::vector<HotObject> hot;
  for (ObjectId object = 0; object < objects_.size(); ++object)
    if (objects_[object].stats.rate > 0.0)
      hot.push_back({object, objects_[object].stats.rate});
  std::stable_sort(hot.begin(), hot.end(),
                   [](const HotObject& a, const HotObject& b) {
                     return a.rate > b.rate;
                   });
  if (hot.size() > k) hot.resize(k);
  return hot;
}

std::vector<AccessStats::NodeMix> AccessStats::node_mix(
    ObjectId object) const {
  std::vector<NodeMix> mix(nodes_);
  if (object >= objects_.size()) return mix;
  const PerObject& po = objects_[object];
  for (NodeId node = 0; node < po.window_counts.size(); ++node) {
    mix[node].reads =
        po.window_counts[node].reads + po.prev_counts[node].reads;
    mix[node].writes =
        po.window_counts[node].writes + po.prev_counts[node].writes;
  }
  return mix;
}

void AccessStats::publish(MetricsRegistry& metrics) const {
  metrics.counter("telemetry.accesses").inc(accesses_);
  metrics.counter("telemetry.reads").inc(reads_);
  metrics.counter("telemetry.writes").inc(writes_);
  metrics.counter("telemetry.windows").inc(windows_);
  metrics.counter("telemetry.drifts").inc(drifts_.size());
  metrics.gauge("telemetry.objects_seen")
      .set(static_cast<double>(objects_.size()));
  const auto hot = hot_set(1);
  if (!hot.empty()) {
    metrics.gauge("telemetry.hot_object")
        .set(static_cast<double>(hot.front().object));
    metrics.gauge("telemetry.hot_rate").set(hot.front().rate);
    const ObjectStats& s = objects_[hot.front().object].stats;
    metrics.gauge("telemetry.hot_writer_locality").set(s.writer_locality);
  }
}

JsonValue AccessStats::to_json(std::size_t top_k) const {
  JsonValue out = JsonValue::object();
  out["accesses"] = static_cast<double>(accesses_);
  out["reads"] = static_cast<double>(reads_);
  out["writes"] = static_cast<double>(writes_);
  out["windows"] = static_cast<double>(windows_);
  out["window_ops"] = static_cast<double>(opt_.window_ops);

  JsonValue hot = JsonValue::array();
  for (const HotObject& h : hot_set(top_k)) {
    const ObjectStats& s = objects_[h.object].stats;
    JsonValue row = JsonValue::object();
    row["object"] = static_cast<double>(h.object);
    row["rate"] = h.rate;
    row["write_rate"] = s.write_rate;
    row["reads"] = static_cast<double>(s.reads);
    row["writes"] = static_cast<double>(s.writes);
    row["center"] = s.center == kNoNode ? JsonValue()
                                        : JsonValue(static_cast<double>(
                                              s.center));
    row["center_share"] = s.center_share;
    row["writer_locality"] = s.writer_locality;
    hot.push_back(std::move(row));
  }
  out["hot_set"] = std::move(hot);

  JsonValue drifts = JsonValue::array();
  for (const DriftEvent& d : drifts_) {
    JsonValue row = JsonValue::object();
    row["window"] = static_cast<double>(d.window);
    row["object"] = static_cast<double>(d.object);
    row["from"] = d.from == kNoNode
                      ? JsonValue()
                      : JsonValue(static_cast<double>(d.from));
    row["to"] =
        d.to == kNoNode ? JsonValue() : JsonValue(static_cast<double>(d.to));
    drifts.push_back(std::move(row));
  }
  out["drifts"] = std::move(drifts);
  return out;
}

}  // namespace drsm::obs
