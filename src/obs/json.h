// Minimal JSON emission for the observability layer.
//
// Two tools, two jobs:
//  * json_escape / json_number — primitives for code that streams large
//    documents directly into a string (the trace exporters, which would
//    waste memory building a value tree for 10^5 events);
//  * JsonValue — an ordered document tree for code that assembles nested
//    reports incrementally (metrics snapshots, BENCH_*.json emission);
//  * parse_json — a small recursive-descent parser producing JsonValue
//    trees, for the code that consumes our own reports (the
//    drsm_bench_diff regression gate).  It accepts exactly standard JSON;
//    object key order is preserved, duplicate keys keep the last value.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace drsm::obs {

/// Escapes `text` for use inside a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view text);

/// Renders a double the way JSON requires: finite values in shortest
/// round-trip form, non-finite values as null (JSON has no Inf/NaN).
std::string json_number(double value);

/// An ordered JSON document: null, bool, number, string, array or object.
/// Object keys keep insertion order so emitted reports diff cleanly.
class JsonValue {
 public:
  JsonValue() = default;  // null
  JsonValue(bool v) : kind_(Kind::kBool), bool_(v) {}
  JsonValue(double v) : kind_(Kind::kNumber), num_(v) {}
  JsonValue(int v) : JsonValue(static_cast<double>(v)) {}
  JsonValue(std::size_t v) : JsonValue(static_cast<double>(v)) {}
  JsonValue(const char* v) : kind_(Kind::kString), str_(v) {}
  JsonValue(std::string v) : kind_(Kind::kString), str_(std::move(v)) {}

  static JsonValue array();
  static JsonValue object();

  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Value readers with a fallback for kind mismatches — parsed reports
  /// are read defensively, not validated.
  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_number(double fallback = 0.0) const {
    return is_number() ? num_ : fallback;
  }
  const std::string& as_string() const { return str_; }  // empty if not one

  /// Object field lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// i-th array element (or object value, in insertion order); bounds are
  /// DRSM_CHECKed.
  const JsonValue& at(std::size_t i) const;

  /// i-th object key, parallel to at().
  const std::string& key(std::size_t i) const;

  /// Array append; the value must be (or becomes) an array.
  JsonValue& push_back(JsonValue v);

  /// Object field access, creating the field (and object-ness) on demand.
  /// Inserting a new field may reallocate: references returned earlier for
  /// *this* object are invalidated.  Build sub-documents as locals and
  /// move them in rather than holding a reference across insertions.
  JsonValue& operator[](std::string_view key);

  std::size_t size() const { return items_.size(); }

  /// Serializes the document.  `indent` > 0 pretty-prints.
  std::string dump(int indent = 0) const;

 private:
  enum class Kind : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject,
  };

  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // Array elements, or object fields (keys_ parallel) in insertion order.
  std::vector<JsonValue> items_;
  std::vector<std::string> keys_;
};

/// Parses standard JSON.  Throws drsm::Error (with a byte offset) on any
/// syntax error or trailing garbage.
JsonValue parse_json(std::string_view text);

/// Writes `text` to `path` atomically enough for our purposes (truncate +
/// write).  Throws drsm::Error on I/O failure.
void write_file(const std::string& path, std::string_view text);

/// Reads the whole file; throws drsm::Error if it cannot be opened.
std::string read_file(const std::string& path);

}  // namespace drsm::obs
