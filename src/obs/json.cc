#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/error.h"
#include "support/text.h"

namespace drsm::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += strfmt("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  // %.17g round-trips any double but writes 0.1 as 0.10000000000000001;
  // pick the shortest precision that round-trips instead.
  for (int precision = 6; precision <= 17; ++precision) {
    std::string text = strfmt("%.*g", precision, value);
    if (std::strtod(text.c_str(), nullptr) == value) return text;
  }
  return strfmt("%.17g", value);
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::push_back(JsonValue v) {
  DRSM_CHECK(kind_ == Kind::kArray || kind_ == Kind::kNull,
             "JsonValue::push_back on a non-array");
  kind_ = Kind::kArray;
  items_.push_back(std::move(v));
  return items_.back();
}

JsonValue& JsonValue::operator[](std::string_view key) {
  DRSM_CHECK(kind_ == Kind::kObject || kind_ == Kind::kNull,
             "JsonValue::operator[] on a non-object");
  kind_ = Kind::kObject;
  for (std::size_t i = 0; i < keys_.size(); ++i)
    if (keys_[i] == key) return items_[i];
  keys_.emplace_back(key);
  items_.emplace_back();
  return items_.back();
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (std::size_t i = 0; i < keys_.size(); ++i)
    if (keys_[i] == key) return &items_[i];
  return nullptr;
}

const JsonValue& JsonValue::at(std::size_t i) const {
  DRSM_CHECK(i < items_.size(), "JsonValue::at out of range");
  return items_[i];
}

const std::string& JsonValue::key(std::size_t i) const {
  DRSM_CHECK(kind_ == Kind::kObject && i < keys_.size(),
             "JsonValue::key out of range");
  return keys_[i];
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const std::string pad(pretty ? indent * (depth + 1) : 0, ' ');
  const std::string close_pad(pretty ? indent * depth : 0, ' ');
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kNumber: out += json_number(num_); return;
    case Kind::kString:
      out += '"';
      out += json_escape(str_);
      out += '"';
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        if (pretty) {
          out += '\n';
          out += pad;
        }
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (items_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        if (pretty) {
          out += '\n';
          out += pad;
        }
        out += '"';
        out += json_escape(keys_[i]);
        out += pretty ? "\": " : "\":";
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += '}';
      return;
    }
  }
}

namespace {

/// Recursive-descent JSON parser over a string_view; positions are byte
/// offsets for error messages.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error(strfmt("JSON parse error at byte %zu: %s", pos_,
                       what.c_str()));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(strfmt("expected '%c'", c));
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue out = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      out[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return out;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue out = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return out;
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_utf8(out, parse_hex4()); break;
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size())
      fail("bad number");
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse(); }

void write_file(const std::string& path, std::string_view text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  DRSM_CHECK(f != nullptr, "cannot open " + path + " for writing");
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_rc = std::fclose(f);
  DRSM_CHECK(written == text.size() && close_rc == 0,
             "short write to " + path);
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw Error("cannot open " + path + " for reading");
  std::string out;
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
    out.append(buf, got);
  std::fclose(f);
  return out;
}

}  // namespace drsm::obs
