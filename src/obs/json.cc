#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/error.h"
#include "support/text.h"

namespace drsm::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += strfmt("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  // %.17g round-trips any double but writes 0.1 as 0.10000000000000001;
  // pick the shortest precision that round-trips instead.
  for (int precision = 6; precision <= 17; ++precision) {
    std::string text = strfmt("%.*g", precision, value);
    if (std::strtod(text.c_str(), nullptr) == value) return text;
  }
  return strfmt("%.17g", value);
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::push_back(JsonValue v) {
  DRSM_CHECK(kind_ == Kind::kArray || kind_ == Kind::kNull,
             "JsonValue::push_back on a non-array");
  kind_ = Kind::kArray;
  items_.push_back(std::move(v));
  return items_.back();
}

JsonValue& JsonValue::operator[](std::string_view key) {
  DRSM_CHECK(kind_ == Kind::kObject || kind_ == Kind::kNull,
             "JsonValue::operator[] on a non-object");
  kind_ = Kind::kObject;
  for (std::size_t i = 0; i < keys_.size(); ++i)
    if (keys_[i] == key) return items_[i];
  keys_.emplace_back(key);
  items_.emplace_back();
  return items_.back();
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const std::string pad(pretty ? indent * (depth + 1) : 0, ' ');
  const std::string close_pad(pretty ? indent * depth : 0, ' ');
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kNumber: out += json_number(num_); return;
    case Kind::kString:
      out += '"';
      out += json_escape(str_);
      out += '"';
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        if (pretty) {
          out += '\n';
          out += pad;
        }
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (items_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        if (pretty) {
          out += '\n';
          out += pad;
        }
        out += '"';
        out += json_escape(keys_[i]);
        out += pretty ? "\": " : "\":";
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += '}';
      return;
    }
  }
}

void write_file(const std::string& path, std::string_view text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  DRSM_CHECK(f != nullptr, "cannot open " + path + " for writing");
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_rc = std::fclose(f);
  DRSM_CHECK(written == text.size() && close_rc == 0,
             "short write to " + path);
}

}  // namespace drsm::obs
