#include "obs/quantile.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace drsm::obs {

Quantile::Quantile(double epsilon) : epsilon_(epsilon) {
  DRSM_CHECK(epsilon > 0.0 && epsilon < 0.5,
             "quantile epsilon must be in (0, 0.5)");
}

void Quantile::record(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  insert(value);
  ++count_;
  // Compress every 1/(2 epsilon) inserts — the standard GK cadence: often
  // enough to keep the summary near its space bound, rarely enough that
  // the amortized cost per record stays O(log summary).
  if (++since_compress_ >=
      static_cast<std::uint64_t>(1.0 / (2.0 * epsilon_))) {
    since_compress_ = 0;
    compress();
  }
}

void Quantile::insert(double value) {
  // New tuples carry g = 1; interior inserts take the maximal allowed
  // delta = floor(2 epsilon n), extreme inserts delta = 0 so min and max
  // stay exact.
  Tuple t{value, 1, 0};
  if (tuples_.empty() || value < tuples_.front().value) {
    tuples_.insert(tuples_.begin(), t);
    return;
  }
  if (value >= tuples_.back().value) {
    tuples_.push_back(t);
    return;
  }
  const auto it = std::upper_bound(
      tuples_.begin(), tuples_.end(), value,
      [](double v, const Tuple& tuple) { return v < tuple.value; });
  t.delta = static_cast<std::uint64_t>(
      2.0 * epsilon_ * static_cast<double>(count_));
  tuples_.insert(it, t);
}

void Quantile::compress() {
  if (tuples_.size() < 3) return;
  const auto cap = static_cast<std::uint64_t>(
      2.0 * epsilon_ * static_cast<double>(count_));
  // Right-to-left merge of each tuple into its (live) successor where the
  // combined band stays under the 2 epsilon n cap; the first and last
  // tuples are never merged away (exact min/max).  Survivors are
  // compacted toward the tail in the same pass — one O(n) sweep instead
  // of one O(n) erase per merged tuple — then shifted down next to the
  // head.  The resulting tuple list is element-for-element what the
  // erase-per-merge formulation produced.
  std::size_t write = tuples_.size() - 1;  // nearest survivor to the right
  for (std::size_t i = tuples_.size() - 2; i >= 1; --i) {
    Tuple& next = tuples_[write];
    if (tuples_[i].g + next.g + next.delta <= cap) {
      next.g += tuples_[i].g;
    } else {
      tuples_[--write] = tuples_[i];
    }
  }
  if (write > 1) {
    std::move(tuples_.begin() + static_cast<std::ptrdiff_t>(write),
              tuples_.end(), tuples_.begin() + 1);
    tuples_.resize(tuples_.size() - (write - 1));
  }
}

double Quantile::query(double q) const {
  if (count_ == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const auto rank = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(q * static_cast<double>(count_))));
  const double slack = epsilon_ * static_cast<double>(count_);
  // Return the largest summary value whose maximal possible rank does not
  // overshoot rank + epsilon n; the GK invariant guarantees its true rank
  // is within epsilon n of the target.  The first tuple always qualifies
  // (rmax = g + delta <= 1 + 2 epsilon n with rank >= 1).
  std::uint64_t rmin = 0;
  double best = tuples_.front().value;
  for (const Tuple& t : tuples_) {
    rmin += t.g;
    const double rmax = static_cast<double>(rmin + t.delta);
    if (rmax <= static_cast<double>(rank) + slack)
      best = t.value;
    else
      break;
  }
  return best;
}

void Quantile::merge(const Quantile& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  count_ += other.count_;
  epsilon_ = std::max(epsilon_, other.epsilon_);
  // Merge the sorted tuple lists; each kept tuple keeps its (g, delta),
  // which preserves both summaries' rank bands relative to the combined
  // stream (Greenwald–Khanna merge of mergeable-summaries folklore).
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  std::merge(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
             other.tuples_.end(), std::back_inserter(merged),
             [](const Tuple& a, const Tuple& b) { return a.value < b.value; });
  tuples_ = std::move(merged);
  since_compress_ = 0;
  compress();
}

JsonValue Quantile::to_json() const {
  JsonValue out = JsonValue::object();
  out["count"] = static_cast<double>(count_);
  out["min"] = min();
  out["max"] = max();
  out["mean"] = mean();
  out["p50"] = query(0.50);
  out["p90"] = query(0.90);
  out["p99"] = query(0.99);
  out["epsilon"] = epsilon_;
  return out;
}

}  // namespace drsm::obs
