#include "obs/trace.h"

#include <algorithm>

#include "obs/json.h"
#include "support/error.h"
#include "support/text.h"

namespace drsm::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kMsgSend: return "msg_send";
    case EventKind::kMsgRecv: return "msg_recv";
    case EventKind::kQueueDisable: return "queue_disable";
    case EventKind::kQueueEnable: return "queue_enable";
    case EventKind::kOpIssue: return "op_issue";
    case EventKind::kOpComplete: return "op_complete";
    case EventKind::kStateTransition: return "state_transition";
    case EventKind::kCheckStep: return "check_step";
    case EventKind::kViolation: return "violation";
  }
  return "?";
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  buffer_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void TraceRecorder::on_event(const TraceEvent& event) {
  if (buffer_.size() < capacity_) {
    buffer_.push_back(event);
  } else {
    buffer_[next_] = event;
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

const TraceEvent& TraceRecorder::event(std::size_t i) const {
  DRSM_CHECK(i < buffer_.size(), "TraceRecorder::event out of range");
  // next_ is the oldest slot once the ring has wrapped.
  return buffer_[(next_ + i) % buffer_.size()];
}

void TraceRecorder::clear() {
  buffer_.clear();
  next_ = 0;
  total_ = 0;
}

namespace {

void append_common(std::string& out, const TraceEvent& e) {
  out += strfmt("\"t\":%s,\"kind\":\"%s\",\"node\":%u",
                json_number(e.time).c_str(), to_string(e.kind), e.node);
  if (e.span != 0)
    out += strfmt(",\"span\":%llu",
                  static_cast<unsigned long long>(e.span));
  if (e.parent != 0)
    out += strfmt(",\"parent\":%llu",
                  static_cast<unsigned long long>(e.parent));
}

void append_message_fields(std::string& out, const TraceEvent& e) {
  out += strfmt(
      ",\"peer\":%u,\"msg_id\":%llu,\"type\":\"%s\",\"initiator\":%u,"
      "\"object\":%u,\"params\":\"%s\",\"cost\":%s,\"value\":%llu,"
      "\"version\":%llu",
      e.peer, static_cast<unsigned long long>(e.msg_id),
      fsm::to_string(e.token.type), e.token.initiator, e.token.object,
      fsm::to_string(e.token.params), json_number(e.cost).c_str(),
      static_cast<unsigned long long>(e.value),
      static_cast<unsigned long long>(e.version));
}

}  // namespace

std::string TraceRecorder::to_jsonl() const {
  std::string out;
  out.reserve(size() * 96);
  for (std::size_t i = 0; i < size(); ++i) {
    const TraceEvent& e = event(i);
    out += '{';
    append_common(out, e);
    switch (e.kind) {
      case EventKind::kMsgSend:
      case EventKind::kMsgRecv:
        append_message_fields(out, e);
        break;
      case EventKind::kQueueDisable:
      case EventKind::kQueueEnable:
        out += strfmt(",\"object\":%u", e.object);
        break;
      case EventKind::kOpIssue:
        out += strfmt(",\"op\":\"%s\",\"object\":%u", fsm::to_string(e.op),
                      e.object);
        break;
      case EventKind::kOpComplete:
        out += strfmt(",\"op\":\"%s\",\"object\":%u,\"latency\":%s",
                      fsm::to_string(e.op), e.object,
                      json_number(e.cost).c_str());
        break;
      case EventKind::kStateTransition:
        out += strfmt(",\"object\":%u,\"from\":\"%s\",\"to\":\"%s\"",
                      e.object,
                      json_escape(e.detail != nullptr ? e.detail : "")
                          .c_str(),
                      json_escape(e.detail2 != nullptr ? e.detail2 : "")
                          .c_str());
        break;
      case EventKind::kCheckStep:
        out += strfmt(
            ",\"step\":\"%s\",\"peer\":%u,\"type\":\"%s\",\"initiator\":%u,"
            "\"object\":%u,\"params\":\"%s\",\"op\":\"%s\"",
            json_escape(e.detail != nullptr ? e.detail : "").c_str(), e.peer,
            fsm::to_string(e.token.type), e.token.initiator, e.token.object,
            fsm::to_string(e.token.params), fsm::to_string(e.op));
        break;
      case EventKind::kViolation:
        out += strfmt(",\"invariant\":\"%s\"",
                      json_escape(e.detail != nullptr ? e.detail : "")
                          .c_str());
        break;
    }
    out += "}\n";
  }
  return out;
}

std::string TraceRecorder::to_chrome_trace(
    const ChromeTraceOptions& options) const {
  // Track layout (all inside options.pid — one process per runtime):
  //   tid 0..max_node            node lanes: operation duration slices,
  //                              queue/state instants;
  //   tid max_node+1+src         network lanes, one per sending node:
  //                              async begin/end per inter-node message
  //                              (matched by msg_id).
  // Flow arrows (ph "s"/"f", matched by msg_id) connect each send to its
  // delivery across the node lanes, rendering the causal chain of a span.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& record) {
    if (!first) out += ',';
    first = false;
    out += '\n';
    out += record;
  };

  const int pid = options.pid;
  NodeId max_node = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    const TraceEvent& e = event(i);
    max_node = std::max(max_node, e.node);
    if (e.peer != kNoNode) max_node = std::max(max_node, e.peer);
  }
  const NodeId net_base = max_node + 1;

  emit(strfmt("{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
              "\"args\":{\"name\":\"%s\"}}",
              pid, json_escape(options.process_name).c_str()));
  emit(strfmt("{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_sort_index\","
              "\"args\":{\"sort_index\":%d}}",
              pid, pid));
  for (NodeId node = 0; node <= max_node; ++node) {
    const std::string label =
        node == max_node ? std::string("sequencer")
                         : strfmt("client%u", node);
    emit(strfmt("{\"ph\":\"M\",\"pid\":%d,\"tid\":%u,"
                "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                pid, node, label.c_str()));
    emit(strfmt("{\"ph\":\"M\",\"pid\":%d,\"tid\":%u,"
                "\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":%u}}",
                pid, node, node));
    emit(strfmt("{\"ph\":\"M\",\"pid\":%d,\"tid\":%u,"
                "\"name\":\"thread_name\",\"args\":{\"name\":\"net %s\"}}",
                pid, net_base + node, label.c_str()));
    emit(strfmt("{\"ph\":\"M\",\"pid\":%d,\"tid\":%u,"
                "\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":%u}}",
                pid, net_base + node, net_base + node));
  }

  for (std::size_t i = 0; i < size(); ++i) {
    const TraceEvent& e = event(i);
    const std::string ts = json_number(e.time * options.time_scale);
    const std::string span_arg =
        e.span != 0
            ? strfmt(",\"span\":%llu",
                     static_cast<unsigned long long>(e.span))
            : std::string();
    switch (e.kind) {
      case EventKind::kMsgSend:
      case EventKind::kMsgRecv: {
        const bool send = e.kind == EventKind::kMsgSend;
        const NodeId src = send ? e.node : e.peer;
        const NodeId dst = send ? e.peer : e.node;
        emit(strfmt(
            "{\"ph\":\"%s\",\"cat\":\"msg\",\"id\":%llu,\"ts\":%s,"
            "\"pid\":%d,\"tid\":%u,\"name\":\"%s\",\"args\":{\"src\":%u,"
            "\"dst\":%u,\"object\":%u,\"cost\":%s,\"version\":%llu%s}}",
            send ? "b" : "e", static_cast<unsigned long long>(e.msg_id),
            ts.c_str(), pid, net_base + src, fsm::to_string(e.token.type),
            src, dst, e.token.object, json_number(e.cost).c_str(),
            static_cast<unsigned long long>(e.version), span_arg.c_str()));
        if (options.flow_events && e.msg_id != 0) {
          // Flow arrow endpoints live on the node lanes: the send binds
          // to whatever slice is open at the source, the finish (bp "e")
          // to the delivery point at the destination.
          emit(strfmt(
              "{\"ph\":\"%s\",%s\"cat\":\"msgflow\",\"id\":%llu,"
              "\"ts\":%s,\"pid\":%d,\"tid\":%u,\"name\":\"%s\"}",
              send ? "s" : "f", send ? "" : "\"bp\":\"e\",",
              static_cast<unsigned long long>(e.msg_id), ts.c_str(), pid,
              send ? src : dst, fsm::to_string(e.token.type)));
        }
        break;
      }
      case EventKind::kQueueDisable:
      case EventKind::kQueueEnable:
        emit(strfmt(
            "{\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":%d,\"tid\":%u,"
            "\"name\":\"%s\",\"args\":{\"object\":%u%s}}",
            ts.c_str(), pid, e.node,
            e.kind == EventKind::kQueueDisable ? "local queue disabled"
                                               : "local queue enabled",
            e.object, span_arg.c_str()));
        break;
      case EventKind::kOpIssue:
        emit(strfmt(
            "{\"ph\":\"B\",\"ts\":%s,\"pid\":%d,\"tid\":%u,"
            "\"name\":\"%s\",\"args\":{\"object\":%u%s}}",
            ts.c_str(), pid, e.node, fsm::to_string(e.op), e.object,
            span_arg.c_str()));
        break;
      case EventKind::kOpComplete:
        emit(strfmt("{\"ph\":\"E\",\"ts\":%s,\"pid\":%d,\"tid\":%u,"
                    "\"name\":\"%s\",\"args\":{\"latency\":%s%s}}",
                    ts.c_str(), pid, e.node, fsm::to_string(e.op),
                    json_number(e.cost).c_str(), span_arg.c_str()));
        break;
      case EventKind::kStateTransition:
        emit(strfmt(
            "{\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":%d,\"tid\":%u,"
            "\"name\":\"%s -> %s\",\"args\":{\"object\":%u%s}}",
            ts.c_str(), pid, e.node,
            json_escape(e.detail != nullptr ? e.detail : "?").c_str(),
            json_escape(e.detail2 != nullptr ? e.detail2 : "?").c_str(),
            e.object, span_arg.c_str()));
        break;
      case EventKind::kCheckStep:
        emit(strfmt(
            "{\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":%d,\"tid\":%u,"
            "\"name\":\"%s %s\",\"args\":{\"object\":%u}}",
            ts.c_str(), pid, e.node,
            json_escape(e.detail != nullptr ? e.detail : "step").c_str(),
            fsm::to_string(e.token.type), e.token.object));
        break;
      case EventKind::kViolation:
        emit(strfmt(
            "{\"ph\":\"i\",\"s\":\"g\",\"ts\":%s,\"pid\":%d,\"tid\":%u,"
            "\"name\":\"violation: %s\",\"args\":{\"object\":%u}}",
            ts.c_str(), pid, e.node,
            json_escape(e.detail != nullptr ? e.detail : "?").c_str(),
            e.object));
        break;
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void TraceRecorder::write_jsonl(const std::string& path) const {
  write_file(path, to_jsonl());
}

void TraceRecorder::write_chrome_trace(const std::string& path,
                                       double time_scale) const {
  write_file(path, to_chrome_trace(time_scale));
}

void TraceRecorder::write_chrome_trace(
    const std::string& path, const ChromeTraceOptions& options) const {
  write_file(path, to_chrome_trace(options));
}

}  // namespace drsm::obs
