// Structured event tracing for the runtimes.
//
// Every interesting runtime occurrence — message send/recv, local-queue
// enable/disable, operation issue/complete, protocol state transition —
// is one TraceEvent pushed through an EventSink.  The runtimes hold a
// plain sink pointer that is null by default, so tracing compiled in but
// disabled costs one branch per event site (verified by bench_micro).
//
// TraceRecorder is the standard sink: a fixed-capacity ring buffer (old
// events are overwritten, never reallocated mid-run) with two exporters:
//  * JSONL — one JSON object per event, the compact machine-readable form;
//  * Chrome trace-event JSON — loadable in Perfetto / chrome://tracing,
//    with one track per node (operation spans, queue and state-transition
//    instants) and async begin/end pairs per inter-node message.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fsm/token.h"
#include "support/types.h"

namespace drsm::obs {

enum class EventKind : std::uint8_t {
  kMsgSend,          // node -> peer, token describes the message
  kMsgRecv,          // peer -> node delivery (same msg_id as the send)
  kQueueDisable,     // local queue of (node, object) blocked
  kQueueEnable,      // local queue of (node, object) unblocked
  kOpIssue,          // application operation enters the system
  kOpComplete,       // operation finished; cost holds the latency
  kStateTransition,  // copy state changed: detail -> detail2
  kCheckStep,        // one model-checker step of a counterexample replay:
                     //   detail = "issue"/"deliver", node the actor, peer
                     //   the channel source (deliver), token the message
  kViolation,        // counterexample endpoint; detail = invariant name
};

const char* to_string(EventKind kind);

/// One runtime occurrence.  Field meaning varies slightly by kind (see
/// EventKind); unused fields hold their defaults.  `detail`/`detail2`
/// point at static strings (protocol state names), never owned text.
struct TraceEvent {
  double time = 0.0;       // simulator clock (or op index, sequential)
  EventKind kind = EventKind::kMsgSend;
  fsm::OpKind op = fsm::OpKind::kRead;  // op events
  NodeId node = 0;         // acting node
  NodeId peer = kNoNode;   // message destination (send) / source (recv)
  ObjectId object = 0;
  std::uint64_t msg_id = 0;  // pairs a send with its recv; 0 = none
  fsm::Token token;        // message events: the paper's five-tuple
  std::uint64_t value = 0;     // message payload
  std::uint64_t version = 0;   // message payload version
  std::uint32_t hops = 0;      // message forwarding count
  double cost = 0.0;       // message cost, or op latency on kOpComplete
  const char* detail = nullptr;   // state transition: from-state
  const char* detail2 = nullptr;  // state transition: to-state
};

/// Consumer of trace events.  Runtimes call on_event for every occurrence
/// when (and only when) a sink is attached.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

class TraceRecorder final : public EventSink {
 public:
  /// `capacity` bounds memory; once full, the oldest events are dropped.
  explicit TraceRecorder(std::size_t capacity = 1 << 16);

  void on_event(const TraceEvent& event) override;

  /// Events currently retained (<= capacity()).
  std::size_t size() const { return buffer_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Events overwritten by ring wraparound.
  std::uint64_t dropped() const { return total_ - buffer_.size(); }
  /// Total events ever recorded.
  std::uint64_t total() const { return total_; }

  /// i-th retained event, oldest first.
  const TraceEvent& event(std::size_t i) const;

  void clear();

  /// One JSON object per line, oldest first.
  std::string to_jsonl() const;

  /// Chrome trace-event format (the {"traceEvents": [...]} flavour).
  /// `time_scale` multiplies event times into microseconds-equivalent ts
  /// values (the viewer's display unit).
  std::string to_chrome_trace(double time_scale = 1.0) const;

  void write_jsonl(const std::string& path) const;
  void write_chrome_trace(const std::string& path,
                          double time_scale = 1.0) const;

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;       // ring write position
  std::uint64_t total_ = 0;
  std::vector<TraceEvent> buffer_;
};

}  // namespace drsm::obs
