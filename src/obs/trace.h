// Structured event tracing for the runtimes.
//
// Every interesting runtime occurrence — message send/recv, local-queue
// enable/disable, operation issue/complete, protocol state transition —
// is one TraceEvent pushed through an EventSink.  The runtimes hold a
// plain sink pointer that is null by default, so tracing compiled in but
// disabled costs one branch per event site (verified by bench_micro).
//
// TraceRecorder is the standard sink: a fixed-capacity ring buffer (old
// events are overwritten, never reallocated mid-run) with two exporters:
//  * JSONL — one JSON object per event, the compact machine-readable form;
//  * Chrome trace-event JSON — loadable in Perfetto / chrome://tracing:
//    one process per runtime, one lane per node (operation duration
//    slices, queue and state-transition instants), a parallel block of
//    network lanes with an async begin/end pair per inter-node message,
//    and flow arrows connecting each send to its delivery.  Causal span
//    ids (TraceEvent::span) ride along as slice arguments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fsm/token.h"
#include "support/types.h"

namespace drsm::obs {

enum class EventKind : std::uint8_t {
  kMsgSend,          // node -> peer, token describes the message
  kMsgRecv,          // peer -> node delivery (same msg_id as the send)
  kQueueDisable,     // local queue of (node, object) blocked
  kQueueEnable,      // local queue of (node, object) unblocked
  kOpIssue,          // application operation enters the system
  kOpComplete,       // operation finished; cost holds the latency
  kStateTransition,  // copy state changed: detail -> detail2
  kCheckStep,        // one model-checker step of a counterexample replay:
                     //   detail = "issue"/"deliver", node the actor, peer
                     //   the channel source (deliver), token the message
  kViolation,        // counterexample endpoint; detail = invariant name
};

const char* to_string(EventKind kind);

/// One runtime occurrence.  Field meaning varies slightly by kind (see
/// EventKind); unused fields hold their defaults.  `detail`/`detail2`
/// point at static strings (protocol state names), never owned text.
struct TraceEvent {
  double time = 0.0;       // simulator clock (or op index, sequential)
  EventKind kind = EventKind::kMsgSend;
  fsm::OpKind op = fsm::OpKind::kRead;  // op events
  NodeId node = 0;         // acting node
  NodeId peer = kNoNode;   // message destination (send) / source (recv)
  ObjectId object = 0;
  std::uint64_t msg_id = 0;  // pairs a send with its recv; 0 = none
  fsm::Token token;        // message events: the paper's five-tuple
  std::uint64_t value = 0;     // message payload
  std::uint64_t version = 0;   // message payload version
  std::uint32_t hops = 0;      // message forwarding count
  double cost = 0.0;       // message cost, or op latency on kOpComplete
  // Causal span: every application operation gets a unique nonzero span
  // id at issue; every message, queue toggle, state transition and
  // completion *caused* by that operation (transitively, through the
  // protocol's message chains — request, grant, invalidation, recall)
  // carries the same id.  0 = no causal context.
  std::uint64_t span = 0;
  std::uint64_t parent = 0;  // enclosing span (reserved; 0 = root)
  const char* detail = nullptr;   // state transition: from-state
  const char* detail2 = nullptr;  // state transition: to-state
};

/// Consumer of trace events.  Runtimes call on_event for every occurrence
/// when (and only when) a sink is attached.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

class TraceRecorder final : public EventSink {
 public:
  /// `capacity` bounds memory; once full, the oldest events are dropped.
  explicit TraceRecorder(std::size_t capacity = 1 << 16);

  void on_event(const TraceEvent& event) override;

  /// Events currently retained (<= capacity()).
  std::size_t size() const { return buffer_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Events overwritten by ring wraparound.
  std::uint64_t dropped() const { return total_ - buffer_.size(); }
  /// Total events ever recorded.
  std::uint64_t total() const { return total_; }

  /// i-th retained event, oldest first.
  const TraceEvent& event(std::size_t i) const;

  void clear();

  /// One JSON object per line, oldest first.
  std::string to_jsonl() const;

  /// Perfetto-facing track layout of the Chrome export: one pid per
  /// runtime (so traces from several runtimes concatenate cleanly), one
  /// tid lane per simulated node, and a parallel block of network lanes
  /// in the same process.
  struct ChromeTraceOptions {
    /// Multiplies event times into microseconds-equivalent ts values
    /// (the viewer's display unit).
    double time_scale = 1.0;
    /// Process id for this runtime's tracks.
    int pid = 1;
    /// Process name shown by the viewer.
    std::string process_name = "drsm";
    /// Emit flow arrows (ph "s"/"f") from each msg_send to its msg_recv,
    /// so causal chains render as arrows between node lanes.
    bool flow_events = true;
  };

  /// Chrome trace-event format (the {"traceEvents": [...]} flavour).
  std::string to_chrome_trace(const ChromeTraceOptions& options) const;

  /// Compatibility overload: default layout with the given time scale.
  std::string to_chrome_trace(double time_scale = 1.0) const {
    ChromeTraceOptions options;
    options.time_scale = time_scale;
    return to_chrome_trace(options);
  }

  void write_jsonl(const std::string& path) const;
  void write_chrome_trace(const std::string& path,
                          double time_scale = 1.0) const;
  void write_chrome_trace(const std::string& path,
                          const ChromeTraceOptions& options) const;

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;       // ring write position
  std::uint64_t total_ = 0;
  std::vector<TraceEvent> buffer_;
};

}  // namespace drsm::obs
