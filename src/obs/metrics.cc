#include "obs/metrics.h"

#include <algorithm>

#include "support/error.h"

namespace drsm::obs {

// -- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    DRSM_CHECK(bounds_[i - 1] < bounds_[i],
               "histogram bounds must be strictly increasing");
}

std::vector<double> Histogram::exponential_bounds(double first, double factor,
                                                  std::size_t count) {
  DRSM_CHECK(first > 0.0 && factor > 1.0, "bad exponential bucket ladder");
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = first;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

double Histogram::percentile(double q) const {
  DRSM_CHECK(q >= 0.0 && q <= 1.0, "percentile: q outside [0, 1]");
  if (count_ == 0) return 0.0;
  const double rank = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets_[i];
    if (static_cast<double>(seen) < rank) continue;
    // Interpolate within bucket i.  Clamp the bucket's value range to the
    // observed min/max so open-ended edge buckets stay finite.
    double lo = i == 0 ? min_ : bounds_[i - 1];
    double hi = i < bounds_.size() ? bounds_[i] : max_;
    lo = std::max(lo, min_);
    hi = std::min(hi, max_);
    if (hi <= lo) return hi;
    const double frac =
        (rank - before) / static_cast<double>(buckets_[i]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  DRSM_CHECK(bounds_ == other.bounds_,
             "histogram merge: bucket bounds differ");
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

JsonValue Histogram::to_json() const {
  JsonValue v = JsonValue::object();
  v["count"] = static_cast<double>(count_);
  v["sum"] = sum_;
  v["min"] = min();
  v["max"] = max();
  v["mean"] = mean();
  for (const auto& [label, q] :
       {std::pair<const char*, double>{"p50", 0.50},
        {"p90", 0.90},
        {"p99", 0.99}})
    v[label] = percentile(q);
  JsonValue buckets = JsonValue::array();
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;  // sparse: long ladders, few hits
    JsonValue b = JsonValue::object();
    b["le"] = i < bounds_.size() ? JsonValue(bounds_[i])
                                 : JsonValue("inf");
    b["count"] = static_cast<double>(buckets_[i]);
    buckets.push_back(std::move(b));
  }
  v["buckets"] = std::move(buckets);
  return v;
}

// -- TimeSeries -------------------------------------------------------------

TimeSeries::TimeSeries(std::size_t max_samples)
    : max_samples_(std::max<std::size_t>(max_samples, 2)) {
  points_.reserve(max_samples_);
}

void TimeSeries::sample(double time, double value) {
  max_value_ = offered_ == 0 ? value : std::max(max_value_, value);
  if (offered_++ % stride_ != 0) return;
  if (points_.size() == max_samples_) {
    // Thin: keep every other retained point, double the stride.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < points_.size(); i += 2)
      points_[kept++] = points_[i];
    points_.resize(kept);
    stride_ *= 2;
    if ((offered_ - 1) % stride_ != 0) return;
  }
  points_.push_back({time, value});
}

JsonValue TimeSeries::to_json() const {
  JsonValue v = JsonValue::object();
  v["samples"] = static_cast<double>(offered_);
  v["max"] = max_value_;
  v["last"] = last_value();
  JsonValue pts = JsonValue::array();
  for (const Point& p : points_) {
    JsonValue pair = JsonValue::array();
    pair.push_back(p.time);
    pair.push_back(p.value);
    pts.push_back(std::move(pair));
  }
  v["points"] = std::move(pts);
  return v;
}

// -- MetricsRegistry --------------------------------------------------------

MetricsRegistry::Entry* MetricsRegistry::find(std::string_view name) {
  for (Entry& e : entries_)
    if (e.name == name) return &e;
  return nullptr;
}

const MetricsRegistry::Entry* MetricsRegistry::find(
    std::string_view name) const {
  for (const Entry& e : entries_)
    if (e.name == name) return &e;
  return nullptr;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  if (Entry* e = find(name)) {
    DRSM_CHECK(e->counter != nullptr,
               "metric '" + std::string(name) + "' is not a counter");
    return *e->counter;
  }
  entries_.push_back({std::string(name), std::make_unique<Counter>(),
                      nullptr, nullptr, nullptr});
  return *entries_.back().counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  if (Entry* e = find(name)) {
    DRSM_CHECK(e->gauge != nullptr,
               "metric '" + std::string(name) + "' is not a gauge");
    return *e->gauge;
  }
  entries_.push_back({std::string(name), nullptr,
                      std::make_unique<Gauge>(), nullptr, nullptr});
  return *entries_.back().gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  if (Entry* e = find(name)) {
    DRSM_CHECK(e->histogram != nullptr,
               "metric '" + std::string(name) + "' is not a histogram");
    return *e->histogram;
  }
  entries_.push_back({std::string(name), nullptr, nullptr,
                      std::make_unique<Histogram>(std::move(bounds)),
                      nullptr});
  return *entries_.back().histogram;
}

TimeSeries& MetricsRegistry::series(std::string_view name,
                                    std::size_t max_samples) {
  if (Entry* e = find(name)) {
    DRSM_CHECK(e->series != nullptr,
               "metric '" + std::string(name) + "' is not a time series");
    return *e->series;
  }
  entries_.push_back({std::string(name), nullptr, nullptr, nullptr,
                      std::make_unique<TimeSeries>(max_samples)});
  return *entries_.back().series;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const Entry* e = find(name);
  return e != nullptr ? e->counter.get() : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const Entry* e = find(name);
  return e != nullptr ? e->gauge.get() : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  const Entry* e = find(name);
  return e != nullptr ? e->histogram.get() : nullptr;
}

const TimeSeries* MetricsRegistry::find_series(std::string_view name) const {
  const Entry* e = find(name);
  return e != nullptr ? e->series.get() : nullptr;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  DRSM_CHECK(this != &other, "metrics merge: cannot merge into self");
  for (const Entry& e : other.entries_) {
    if (e.counter)
      counter(e.name).inc(e.counter->value());
    else if (e.gauge)
      gauge(e.name).set(e.gauge->value());
    else if (e.histogram)
      histogram(e.name, e.histogram->bounds()).merge(*e.histogram);
    else if (e.series)
      for (const TimeSeries::Point& p : e.series->points())
        series(e.name).sample(p.time, p.value);
  }
}

JsonValue MetricsRegistry::to_json() const {
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const Entry& e : entries_) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) { return a->name < b->name; });

  // Built as locals and moved in at the end: operator[] insertion can
  // reallocate the parent's storage, so references into it must not be
  // held across further insertions.
  JsonValue counters = JsonValue::object();
  JsonValue gauges = JsonValue::object();
  JsonValue histograms = JsonValue::object();
  JsonValue series = JsonValue::object();
  for (const Entry* e : sorted) {
    if (e->counter)
      counters[e->name] = static_cast<double>(e->counter->value());
    else if (e->gauge)
      gauges[e->name] = e->gauge->value();
    else if (e->histogram)
      histograms[e->name] = e->histogram->to_json();
    else if (e->series)
      series[e->name] = e->series->to_json();
  }
  JsonValue v = JsonValue::object();
  v["counters"] = std::move(counters);
  v["gauges"] = std::move(gauges);
  v["histograms"] = std::move(histograms);
  v["series"] = std::move(series);
  return v;
}

}  // namespace drsm::obs
