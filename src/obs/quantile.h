// Streaming quantile estimation (Greenwald–Khanna sketch).
//
// The fixed-bucket Histogram answers percentile queries by interpolating
// inside a geometric bucket, which fabricates values for the discrete,
// zero-heavy latency distributions the simulator produces (a run whose
// operations all complete locally in 0 time units "interpolates" a p50 of
// 0.5 inside the (-inf, 1] bucket).  Quantile keeps an epsilon-approximate
// summary of the *observed sample values* instead: every query returns a
// value that actually occurred, with rank error at most epsilon * count.
//
// The GK summary was chosen over P² because it is deterministic,
// mergeable (replication harness: per-replication sketches concatenate
// and recompress), and answers any quantile from one structure.  Space is
// O((1/epsilon) * log(epsilon * n)) tuples — a few hundred at the default
// epsilon for million-sample runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/json.h"

namespace drsm::obs {

class Quantile {
 public:
  /// `epsilon` is the rank-error bound as a fraction of the sample count;
  /// queries are exact while the summary holds every sample (small runs).
  explicit Quantile(double epsilon = 0.005);

  void record(double value);

  /// Value of rank ceil(q * count) within epsilon * count ranks; q is
  /// clamped to [0, 1].  Returns 0 when empty.  Always a recorded value.
  double query(double q) const;

  /// Concatenates the two summaries and recompresses.  The merged rank
  /// error is bounded by the larger of the two epsilons (plus the
  /// compression slack), which the accuracy tests measure directly.
  void merge(const Quantile& other);

  std::uint64_t count() const { return count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double epsilon() const { return epsilon_; }

  /// Summary size, for the space-bound tests.
  std::size_t tuples() const { return tuples_.size(); }

  /// {"count", "min", "max", "mean", "p50", "p90", "p99", "epsilon"}.
  JsonValue to_json() const;

 private:
  // One GK tuple: `value` covers g ranks ending at rmin(i) = sum of g up
  // to i; delta bounds rmax(i) - rmin(i).
  struct Tuple {
    double value = 0.0;
    std::uint64_t g = 0;
    std::uint64_t delta = 0;
  };

  void insert(double value);
  void compress();

  double epsilon_;
  std::uint64_t count_ = 0;
  std::uint64_t since_compress_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<Tuple> tuples_;  // ordered by value
};

}  // namespace drsm::obs
