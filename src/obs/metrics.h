// Metrics registry: named counters, gauges, fixed-bucket histograms and
// time-series samplers that every runtime layer publishes into.
//
// The registry is the machine-readable counterpart of the tables the
// benches print: EventSimulator publishes message/operation counters and
// latency histograms, ThreadedRuntime its cost tallies, AccSolver its
// chain sizes and stationary-solver iteration counts.  A registry snapshot
// serializes to JSON (obs::JsonValue), which is what BENCH_*.json embeds.
//
// Instruments hand out stable references: registry.counter("x") returns
// the same Counter& for the lifetime of the registry, so hot paths resolve
// the name once and then pay a single increment per event.  The registry
// is not thread-safe; concurrent runtimes aggregate locally and publish at
// the end of the run (see sim/threaded.cc).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace drsm::obs {

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins scalar (utilizations, ratios, wall times).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: bucket i counts samples in
/// (bounds[i-1], bounds[i]], with an implicit overflow bucket above the
/// last bound.  Buckets are fixed at construction, so record() is a small
/// binary search and merging histograms with equal bounds is exact.
class Histogram {
 public:
  /// `bounds` must be strictly increasing; may be empty (count/sum only).
  explicit Histogram(std::vector<double> bounds = default_bounds());

  /// Geometric bucket ladder: `count` bounds starting at `first`, each
  /// `factor` times the previous — the standard shape for latencies that
  /// span orders of magnitude.
  static std::vector<double> exponential_bounds(double first, double factor,
                                                std::size_t count);

  /// The ladder used for operation latencies in simulator time units:
  /// 1, 2, 4, ... 2^19 (~1e6), 21 buckets including overflow.
  static std::vector<double> default_bounds() {
    return exponential_bounds(1.0, 2.0, 20);
  }

  void record(double value) {
    // First bucket holds (-inf, bounds[0]]; bucket i holds
    // (bounds[i-1], bounds[i]]; the last holds (bounds.back(), inf).
    // Inline: the simulator records one sample per completed operation.
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
    if (count_ == 0) {
      min_ = max_ = value;
    } else {
      min_ = std::min(min_, value);
      max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// buckets().size() == bounds().size() + 1 (last bucket = overflow).
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  /// Quantile estimate by linear interpolation within the containing
  /// bucket; exact at bucket boundaries.  q in [0, 1].
  double percentile(double q) const;

  /// Adds another histogram with identical bounds into this one.
  void merge(const Histogram& other);

  JsonValue to_json() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Bounded (time, value) series.  When full it halves itself by dropping
/// every other sample and doubles the keep-stride, so long runs keep an
/// evenly thinned profile instead of truncating the tail.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t max_samples = 2048);

  void sample(double time, double value);

  struct Point {
    double time;
    double value;
  };
  const std::vector<Point>& points() const { return points_; }
  /// Total sample() calls, including thinned-away ones.
  std::uint64_t offered() const { return offered_; }
  double last_value() const {
    return points_.empty() ? 0.0 : points_.back().value;
  }
  double max_value() const { return max_value_; }

  JsonValue to_json() const;

 private:
  std::size_t max_samples_;
  std::uint64_t stride_ = 1;
  std::uint64_t offered_ = 0;
  double max_value_ = 0.0;
  std::vector<Point> points_;
};

/// Name -> instrument registry.  Lookup creates on first use; histogram
/// bounds and series capacity are fixed by the creating call.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::vector<double> bounds = Histogram::default_bounds());
  TimeSeries& series(std::string_view name, std::size_t max_samples = 2048);

  /// nullptr when `name` is absent or a different instrument kind.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;
  const TimeSeries* find_series(std::string_view name) const;

  std::size_t size() const { return entries_.size(); }

  /// Folds another registry into this one: counters add, gauges take the
  /// other's (later) value, histograms merge bucket-wise (bounds must
  /// agree when the name already exists here), series re-offer the other's
  /// retained points in time order.  This is how parallel sweep tasks
  /// aggregate: each task publishes into a private registry, and the
  /// runner merges them in task-index order so the combined registry is
  /// independent of execution schedule.
  void merge(const MetricsRegistry& other);

  /// Snapshot of every instrument, grouped by kind, names sorted.
  JsonValue to_json() const;

 private:
  struct Entry {
    std::string name;
    // Exactly one is set; unique_ptr keeps references stable across
    // registry growth.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<TimeSeries> series;
  };
  Entry* find(std::string_view name);
  const Entry* find(std::string_view name) const;

  std::vector<Entry> entries_;
};

}  // namespace drsm::obs
