// Per-object / per-node access telemetry: the runtime's view of its own
// workload, and the sensor layer for the adaptive selector (ROADMAP
// item 2).
//
// AccessStats consumes the op_issue event stream (it is an EventSink, so
// it attaches anywhere a TraceRecorder does and chains to one) or direct
// on_access() calls, and maintains per shared object:
//
//  * lifetime and sliding-window read/write counts, per accessing node;
//  * an EWMA access rate (accesses per window), the hot-set criterion;
//  * the window's dominant accessor — the *empirical activity center* of
//    the paper's workload model — and a drift log recording every window
//    boundary at which that center moved (the phase changes a self-tuning
//    protocol selector must react to);
//  * writer locality: the top writer's share of the window's writes,
//    which separates single-writer objects (where invalidation protocols
//    shine) from write-shared ones.
//
// The window is counted in accesses, not simulated time, so the same
// tracker serves the event simulator, the sequential runtime and the dsm
// facade unchanged.  Everything is deterministic: no clocks, no sampling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fsm/token.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/types.h"

namespace drsm::obs {

struct AccessStatsOptions {
  /// Accesses per sliding window (across all objects).
  std::size_t window_ops = 256;
  /// EWMA smoothing for per-window rates: rate' = alpha * window_count +
  /// (1 - alpha) * rate.
  double ewma_alpha = 0.3;
  /// Minimum share of a window's accesses a node needs to count as the
  /// object's activity center; below it the center is "contended".
  double dominance_threshold = 0.5;
};

class AccessStats final : public EventSink {
 public:
  explicit AccessStats(AccessStatsOptions options = {});

  /// Record one application access.  Node and object tables grow on
  /// demand.  Eject/sync count as neither read nor write but do advance
  /// the window.
  void on_access(NodeId node, ObjectId object, fsm::OpKind op);

  /// EventSink: consumes kOpIssue events, forwards nothing (chain with
  /// set_next to keep recording too).
  void on_event(const TraceEvent& event) override;

  /// Optional pass-through sink, so one simulator sink slot can feed both
  /// the telemetry and a TraceRecorder / FlightRecorder.
  void set_next(EventSink* next) { next_ = next; }

  struct ObjectStats {
    std::uint64_t reads = 0;   // lifetime
    std::uint64_t writes = 0;  // lifetime
    double rate = 0.0;         // EWMA accesses per window
    double write_rate = 0.0;   // EWMA writes per window
    NodeId center = kNoNode;   // dominant accessor of the last closed window
    double center_share = 0.0; // its share of that window's accesses
    NodeId top_writer = kNoNode;
    double writer_locality = 0.0;  // top writer's share of window writes
    std::uint64_t windows_active = 0;  // closed windows with any access
  };

  struct HotObject {
    ObjectId object = 0;
    double rate = 0.0;
  };

  /// One activity-center move, recorded at the window boundary where the
  /// dominant accessor of `object` changed from `from` to `to` (kNoNode =
  /// previously contended / idle).
  struct DriftEvent {
    std::uint64_t window = 0;  // index of the closed window
    ObjectId object = 0;
    NodeId from = kNoNode;
    NodeId to = kNoNode;
  };

  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  /// Closed windows so far.
  std::uint64_t windows() const { return windows_; }
  std::size_t num_objects() const { return objects_.size(); }
  std::size_t num_nodes() const { return nodes_; }
  const ObjectStats& object(ObjectId object) const;

  /// The k highest-EWMA-rate objects with nonzero rate, rate-descending
  /// (object id ascending among ties — deterministic).
  std::vector<HotObject> hot_set(std::size_t k) const;

  const std::vector<DriftEvent>& drift_events() const { return drifts_; }

  /// Activity center of `object` after the last closed window (kNoNode
  /// when contended or never accessed).
  NodeId activity_center(ObjectId object) const;

  /// Per-node read/write counts of `object` over the last closed window
  /// plus the current partial one — the recent mix the adaptive
  /// selector's observe path classifies from.  Indexed by node.
  struct NodeMix {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
  };
  std::vector<NodeMix> node_mix(ObjectId object) const;

  /// Publishes the telemetry.* metrics (docs/OBSERVABILITY.md).
  void publish(MetricsRegistry& metrics) const;

  /// {"accesses", "windows", "drifts": [...], "hot_set": [...]} with the
  /// top_k hottest objects fully described.
  JsonValue to_json(std::size_t top_k = 8) const;

 private:
  struct PerObject {
    ObjectStats stats;
    // counts[node] = {reads, writes} — current window, then the last
    // closed window (node_mix sums both so early-window queries are not
    // starved).
    std::vector<NodeMix> window_counts;
    std::vector<NodeMix> prev_counts;
    std::uint64_t window_reads = 0;
    std::uint64_t window_writes = 0;
    std::uint64_t window_accesses = 0;
  };

  void ensure_object(ObjectId object);
  void close_window();

  AccessStatsOptions opt_;
  std::vector<PerObject> objects_;
  std::size_t nodes_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t in_window_ = 0;
  std::uint64_t windows_ = 0;
  std::vector<DriftEvent> drifts_;
  EventSink* next_ = nullptr;
};

}  // namespace drsm::obs
