#include "obs/flight_recorder.h"

#include "obs/json.h"
#include "support/error.h"
#include "support/text.h"

namespace drsm::obs {

namespace {

// The fatal hook is a bare function pointer (support/error.h cannot
// depend on obs), so the active recorder rides in a file-local slot.
FlightRecorder* g_fatal_recorder = nullptr;

void fatal_dump_hook(const std::string& what, void* arg) {
  auto* recorder = static_cast<FlightRecorder*>(arg);
  if (recorder != g_fatal_recorder) return;  // stale registration
  recorder->dump(/*path=*/std::string(), what);  // path bound at install
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity) : ring_(capacity) {}

FlightRecorder::~FlightRecorder() { uninstall(); }

void FlightRecorder::uninstall() {
  if (g_fatal_recorder == this) {
    g_fatal_recorder = nullptr;
    set_fatal_hook(nullptr, nullptr);
  }
}

void FlightRecorder::on_event(const TraceEvent& event) {
  ring_.on_event(event);
  if (next_ != nullptr) next_->on_event(event);
}

std::string FlightRecorder::dump(const std::string& path,
                                 const std::string& reason) {
  const std::string target =
      !path.empty() ? path : fatal_path_;
  std::string out = strfmt(
      "{\"postmortem\":{\"reason\":\"%s\",\"retained\":%zu,"
      "\"dropped\":%llu,\"total\":%llu}}\n",
      json_escape(reason).c_str(), ring_.size(),
      static_cast<unsigned long long>(ring_.dropped()),
      static_cast<unsigned long long>(ring_.total()));
  out += ring_.to_jsonl();
  if (!target.empty()) {
    write_file(target, out);
    last_dump_path_ = target;
  }
  ++dumps_;
  return out;
}

void FlightRecorder::install_fatal_dump(std::string path) {
  if (path.empty()) {
    uninstall();
    fatal_path_.clear();
    return;
  }
  fatal_path_ = std::move(path);
  g_fatal_recorder = this;
  set_fatal_hook(&fatal_dump_hook, this);
}

}  // namespace drsm::obs
