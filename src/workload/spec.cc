#include "workload/spec.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"
#include "support/text.h"

namespace drsm::workload {

using fsm::OpKind;

std::vector<NodeId> WorkloadSpec::roster() const {
  std::vector<NodeId> nodes;
  for (const EventSpec& e : events) nodes.push_back(e.node);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

std::vector<double> WorkloadSpec::probabilities() const {
  std::vector<double> probs;
  probs.reserve(events.size());
  for (const EventSpec& e : events) probs.push_back(e.probability);
  return probs;
}

void WorkloadSpec::validate() const {
  DRSM_CHECK(!events.empty(), "workload has no events");
  double sum = 0.0;
  for (const EventSpec& e : events) {
    DRSM_CHECK(e.probability >= -1e-12 && e.probability <= 1.0 + 1e-12,
               "event probability out of [0,1]");
    sum += e.probability;
  }
  DRSM_CHECK(std::fabs(sum - 1.0) < 1e-9,
             strfmt("workload probabilities sum to %.12f", sum));
}

WorkloadSpec ideal_workload(double p) {
  DRSM_CHECK(p >= 0.0 && p <= 1.0, "ideal_workload: p out of [0,1]");
  WorkloadSpec spec;
  spec.name = "ideal";
  spec.events = {{0, OpKind::kWrite, p}, {0, OpKind::kRead, 1.0 - p}};
  spec.validate();
  return spec;
}

WorkloadSpec read_disturbance(double p, double sigma, std::size_t a) {
  DRSM_CHECK(p >= 0.0 && sigma >= 0.0, "read_disturbance: negative parameter");
  const double ar = 1.0 - p - static_cast<double>(a) * sigma;
  DRSM_CHECK(ar >= -1e-12,
             strfmt("read_disturbance: p + a*sigma = %.6f exceeds 1",
                    p + static_cast<double>(a) * sigma));
  WorkloadSpec spec;
  spec.name = "read-disturbance";
  spec.events.push_back({0, OpKind::kWrite, p});
  spec.events.push_back({0, OpKind::kRead, std::max(0.0, ar)});
  for (std::size_t k = 1; k <= a; ++k)
    spec.events.push_back({static_cast<NodeId>(k), OpKind::kRead, sigma});
  spec.validate();
  return spec;
}

WorkloadSpec read_disturbance_heterogeneous(
    double p, const std::vector<double>& sigmas) {
  double total = 0.0;
  for (double sigma : sigmas) {
    DRSM_CHECK(sigma >= 0.0, "negative sigma_k");
    total += sigma;
  }
  const double ar = 1.0 - p - total;
  DRSM_CHECK(p >= 0.0 && ar >= -1e-12,
             strfmt("read_disturbance_heterogeneous: p + sum(sigma) = %.6f "
                    "exceeds 1",
                    p + total));
  WorkloadSpec spec;
  spec.name = "read-disturbance-heterogeneous";
  spec.events.push_back({0, OpKind::kWrite, p});
  spec.events.push_back({0, OpKind::kRead, std::max(0.0, ar)});
  for (std::size_t k = 0; k < sigmas.size(); ++k)
    spec.events.push_back(
        {static_cast<NodeId>(k + 1), OpKind::kRead, sigmas[k]});
  spec.validate();
  return spec;
}

WorkloadSpec write_disturbance_heterogeneous(
    double p, const std::vector<double>& xis) {
  double total = 0.0;
  for (double xi : xis) {
    DRSM_CHECK(xi >= 0.0, "negative xi_k");
    total += xi;
  }
  const double ar = 1.0 - p - total;
  DRSM_CHECK(p >= 0.0 && ar >= -1e-12,
             strfmt("write_disturbance_heterogeneous: p + sum(xi) = %.6f "
                    "exceeds 1",
                    p + total));
  WorkloadSpec spec;
  spec.name = "write-disturbance-heterogeneous";
  spec.events.push_back({0, OpKind::kWrite, p});
  spec.events.push_back({0, OpKind::kRead, std::max(0.0, ar)});
  for (std::size_t k = 0; k < xis.size(); ++k)
    spec.events.push_back(
        {static_cast<NodeId>(k + 1), OpKind::kWrite, xis[k]});
  spec.validate();
  return spec;
}

WorkloadSpec write_disturbance(double p, double xi, std::size_t a) {
  DRSM_CHECK(p >= 0.0 && xi >= 0.0, "write_disturbance: negative parameter");
  const double ar = 1.0 - p - static_cast<double>(a) * xi;
  DRSM_CHECK(ar >= -1e-12,
             strfmt("write_disturbance: p + a*xi = %.6f exceeds 1",
                    p + static_cast<double>(a) * xi));
  WorkloadSpec spec;
  spec.name = "write-disturbance";
  spec.events.push_back({0, OpKind::kWrite, p});
  spec.events.push_back({0, OpKind::kRead, std::max(0.0, ar)});
  for (std::size_t k = 1; k <= a; ++k)
    spec.events.push_back({static_cast<NodeId>(k), OpKind::kWrite, xi});
  spec.validate();
  return spec;
}

WorkloadSpec read_disturbance_with_eject(double p, double sigma,
                                         std::size_t a, double e) {
  DRSM_CHECK(p >= 0.0 && sigma >= 0.0 && e >= 0.0,
             "read_disturbance_with_eject: negative parameter");
  const double ar = 1.0 - p - static_cast<double>(a) * sigma - e;
  DRSM_CHECK(ar >= -1e-12,
             strfmt("read_disturbance_with_eject: p + a*sigma + e = %.6f "
                    "exceeds 1",
                    p + static_cast<double>(a) * sigma + e));
  WorkloadSpec spec;
  spec.name = "read-disturbance-with-eject";
  spec.events.push_back({0, OpKind::kWrite, p});
  spec.events.push_back({0, OpKind::kRead, std::max(0.0, ar)});
  spec.events.push_back({0, OpKind::kEject, e});
  for (std::size_t k = 1; k <= a; ++k)
    spec.events.push_back({static_cast<NodeId>(k), OpKind::kRead, sigma});
  spec.validate();
  return spec;
}

WorkloadSpec multiple_activity_centers(double p, std::size_t beta) {
  DRSM_CHECK(beta >= 1, "multiple_activity_centers: beta must be >= 1");
  DRSM_CHECK(p >= 0.0 && p <= 1.0, "multiple_activity_centers: p out of [0,1]");
  WorkloadSpec spec;
  spec.name = "multiple-activity-centers";
  const double b = static_cast<double>(beta);
  for (std::size_t k = 0; k < beta; ++k) {
    spec.events.push_back({static_cast<NodeId>(k), OpKind::kWrite, p / b});
    spec.events.push_back(
        {static_cast<NodeId>(k), OpKind::kRead, (1.0 - p) / b});
  }
  spec.validate();
  return spec;
}

}  // namespace drsm::workload
