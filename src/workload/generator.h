// Synthetic workload generators and trace record/replay.
//
// Two generation modes mirror the two runtimes:
//  * GlobalSequenceGenerator samples one (node, op) event at a time from the
//    workload's sample space — exactly the "sequence of repeated independent
//    trials" the analysis assumes.  It drives SequentialRuntime.
//  * ConcurrentDriver feeds the discrete-event simulator: each issuing node
//    draws its own operations (conditional on the node) with exponential
//    think times whose rates are proportional to the node's share of the
//    sample space, approximating the global mix while letting operations
//    overlap — the paper's Ada-simulator setup.
//
// OperationTrace records generated operations and can be replayed through
// either runtime; this is the substitution for the paper's "real
// distributed computation" workloads.
#pragma once

#include <optional>
#include <vector>

#include "sim/event_sim.h"
#include "support/rng.h"
#include "workload/spec.h"

namespace drsm::workload {

/// One recorded application operation.
struct TraceEntry {
  NodeId node = 0;
  ObjectId object = 0;
  fsm::OpKind op = fsm::OpKind::kRead;
};

/// A recorded operation stream plus the system shape it was captured on.
struct OperationTrace {
  std::size_t num_clients = 0;
  std::size_t num_objects = 1;
  std::vector<TraceEntry> entries;

  /// Estimates the paper's workload parameters (p-hat and per-client
  /// read/write shares) from relative event frequencies — "they may be
  /// obtained by estimating the relative frequencies of events in some real
  /// distributed computation" (Section 4.2).
  struct Estimate {
    double write_probability = 0.0;           // overall p-hat
    std::vector<double> node_read_share;      // per client, per object avg
    std::vector<double> node_write_share;
  };
  Estimate estimate_parameters() const;
};

/// Zipf(s) popularity weights over m objects: weight_j = 1/(j+1)^s.  With
/// s = 0 this is uniform; larger s concentrates accesses on few objects
/// (the paper assumes uniform access across its M objects; skew is the
/// natural extension for memory-pool studies).
std::vector<double> zipf_weights(std::size_t m, double s);

/// Samples global (node, op) events from a WorkloadSpec.
class GlobalSequenceGenerator {
 public:
  GlobalSequenceGenerator(const WorkloadSpec& spec, std::uint64_t seed,
                          std::size_t num_objects = 1,
                          std::vector<double> object_weights = {});

  TraceEntry next();

  /// Convenience: record `count` operations into a trace.
  OperationTrace record(std::size_t count, std::size_t num_clients);

 private:
  ObjectId sample_object();

  WorkloadSpec spec_;
  CategoricalSampler sampler_;
  Rng rng_;
  std::size_t num_objects_;
  std::optional<CategoricalSampler> object_sampler_;  // empty = uniform
};

/// Closed-loop driver for the discrete-event simulator.
class ConcurrentDriver final : public sim::WorkloadDriver {
 public:
  /// `mean_think_time` is the average think time of a hypothetical node
  /// with event probability 1; a node holding share q of the sample space
  /// thinks for mean_think_time / q on average, so issue rates match the
  /// workload mix.
  ConcurrentDriver(const WorkloadSpec& spec, std::uint64_t seed,
                   std::size_t num_objects = 1,
                   double mean_think_time = 64.0,
                   std::vector<double> object_weights = {});

  std::optional<Op> next_op(NodeId node) override;

 private:
  struct NodeMix {
    bool issues = false;
    double write_fraction = 0.0;  // P(write | node)
    double rate = 0.0;            // ops per unit time
  };
  std::vector<NodeMix> mix_;
  Rng rng_;
  std::size_t num_objects_;
  double mean_think_time_;
  std::optional<CategoricalSampler> object_sampler_;  // empty = uniform
  // Rng::uniform_index(num_objects_) with its per-call rejection
  // threshold hoisted to construction (one object draw per operation;
  // the draw sequence is bit-identical to the library call).
  std::uint64_t object_threshold_ = 0;  // (2^64 - num_objects_) mod it
};

/// Replays a recorded trace through the discrete-event simulator,
/// preserving each node's program order.
class TraceReplayDriver final : public sim::WorkloadDriver {
 public:
  explicit TraceReplayDriver(const OperationTrace& trace,
                             SimTime think_time = 1);

  std::optional<Op> next_op(NodeId node) override;

 private:
  // Per-node queues of that node's operations, in trace order.
  std::vector<std::vector<TraceEntry>> per_node_;
  std::vector<std::size_t> cursor_;
  SimTime think_time_;
};

}  // namespace drsm::workload
