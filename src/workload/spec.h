// Workload characterization (Section 4.2).
//
// The paper models the computation as a stochastic steady state in which
// every operation is one independent trial from a fixed sample space of
// events.  An *ideal* workload touches each object from exactly one node
// (its activity center); three parameterized deviations are studied:
//
//   read disturbance      — the activity center reads (prob 1-p-a*sigma)
//                           and writes (p); each of `a` other clients reads
//                           with probability sigma;
//   write disturbance     — the activity center reads (1-p-a*xi) and
//                           writes (p); each of `a` other clients writes
//                           with probability xi;
//   multiple activity centers — beta clients each read ((1-p)/beta) and
//                           write (p/beta).
//
// Node convention: the activity center is client 0; disturbing clients are
// 1..a; with multiple activity centers the centers are clients 0..beta-1.
// The sequencer (node N) issues no operations in any of these workloads —
// traces tr5/tr6 have probability zero, exactly as in the paper's Section 5.
#pragma once

#include <string>
#include <vector>

#include "fsm/token.h"
#include "support/types.h"

namespace drsm::workload {

/// One outcome of the per-operation sample space.
struct EventSpec {
  NodeId node = 0;
  fsm::OpKind op = fsm::OpKind::kRead;
  double probability = 0.0;
};

/// A complete per-operation sample space.
struct WorkloadSpec {
  std::string name;
  std::vector<EventSpec> events;

  /// Distinct client nodes that appear in the sample space, sorted.
  std::vector<NodeId> roster() const;

  /// Probabilities of the event list (aligned with `events`).
  std::vector<double> probabilities() const;

  /// Throws drsm::Error unless probabilities are in [0,1] and sum to 1
  /// within tolerance.
  void validate() const;
};

/// Ideal workload: only the activity center (client 0) operates;
/// write probability p.
WorkloadSpec ideal_workload(double p);

/// Read disturbance: requires p + a*sigma <= 1 and a >= 0.
WorkloadSpec read_disturbance(double p, double sigma, std::size_t a);

/// The paper's *general* read disturbance (Section 4.2 before the
/// homogeneous simplification): disturbing client k reads with its own
/// probability sigma_k.  Requires p + sum(sigmas) <= 1.
WorkloadSpec read_disturbance_heterogeneous(
    double p, const std::vector<double>& sigmas);

/// General write disturbance: client k writes with probability xi_k.
WorkloadSpec write_disturbance_heterogeneous(
    double p, const std::vector<double>& xis);

/// Write disturbance: requires p + a*xi <= 1 and a >= 0.
WorkloadSpec write_disturbance(double p, double xi, std::size_t a);

/// Multiple activity centers: beta >= 1 centers share total write
/// probability p (homogeneous case of Section 4.2).
WorkloadSpec multiple_activity_centers(double p, std::size_t beta);

/// Extension (paper conclusion: eject operation / free memory pool): read
/// disturbance where the activity center additionally ejects its replica
/// with probability e per operation — the analytic counterpart of a
/// bounded replica pool.  Requires p + a*sigma + e <= 1 and a protocol
/// with an eject operation (the Write-Through family).
WorkloadSpec read_disturbance_with_eject(double p, double sigma,
                                         std::size_t a, double e);

}  // namespace drsm::workload
