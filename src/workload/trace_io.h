// Plain-text persistence for operation traces, so recorded workloads (the
// stand-in for the paper's "real distributed computation") can be captured
// once and re-analysed or replayed later.
//
// Format (one record per line, '#' comments allowed):
//   drsm-trace v1
//   clients <N>
//   objects <M>
//   <node> <object> <r|w|e|s>
#pragma once

#include <iosfwd>
#include <string>

#include "workload/generator.h"

namespace drsm::workload {

void save_trace(std::ostream& out, const OperationTrace& trace);
void save_trace_file(const std::string& path, const OperationTrace& trace);

/// Throws drsm::Error on malformed input.
OperationTrace load_trace(std::istream& in);
OperationTrace load_trace_file(const std::string& path);

}  // namespace drsm::workload
