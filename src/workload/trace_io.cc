#include "workload/trace_io.h"

#include <fstream>
#include <sstream>

#include "support/error.h"
#include "support/text.h"

namespace drsm::workload {

using fsm::OpKind;

namespace {

char op_code(OpKind op) {
  switch (op) {
    case OpKind::kRead: return 'r';
    case OpKind::kWrite: return 'w';
    case OpKind::kEject: return 'e';
    case OpKind::kSync: return 's';
  }
  return '?';
}

OpKind op_from_code(char code) {
  switch (code) {
    case 'r': return OpKind::kRead;
    case 'w': return OpKind::kWrite;
    case 'e': return OpKind::kEject;
    case 's': return OpKind::kSync;
    default:
      throw Error(strfmt("trace: unknown operation code '%c'", code));
  }
}

}  // namespace

void save_trace(std::ostream& out, const OperationTrace& trace) {
  out << "drsm-trace v1\n";
  out << "clients " << trace.num_clients << "\n";
  out << "objects " << trace.num_objects << "\n";
  for (const TraceEntry& e : trace.entries)
    out << e.node << ' ' << e.object << ' ' << op_code(e.op) << '\n';
}

void save_trace_file(const std::string& path, const OperationTrace& trace) {
  std::ofstream out(path);
  DRSM_CHECK(out.good(), "cannot open trace file for writing: " + path);
  save_trace(out, trace);
  DRSM_CHECK(out.good(), "error while writing trace file: " + path);
}

OperationTrace load_trace(std::istream& in) {
  std::string line;
  DRSM_CHECK(std::getline(in, line) && line == "drsm-trace v1",
             "trace: missing or unsupported header");
  OperationTrace trace;
  bool have_clients = false, have_objects = false;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string first;
    fields >> first;
    if (first == "clients") {
      DRSM_CHECK(static_cast<bool>(fields >> trace.num_clients),
                 "trace: bad clients line");
      have_clients = true;
      continue;
    }
    if (first == "objects") {
      DRSM_CHECK(static_cast<bool>(fields >> trace.num_objects),
                 "trace: bad objects line");
      have_objects = true;
      continue;
    }
    DRSM_CHECK(have_clients && have_objects,
               "trace: records before the clients/objects preamble");
    TraceEntry entry;
    char code = 0;
    std::istringstream record(line);
    DRSM_CHECK(
        static_cast<bool>(record >> entry.node >> entry.object >> code),
        strfmt("trace: malformed record at line %zu", line_no));
    entry.op = op_from_code(code);
    DRSM_CHECK(entry.node <= trace.num_clients,
               strfmt("trace: node out of range at line %zu", line_no));
    DRSM_CHECK(entry.object < trace.num_objects,
               strfmt("trace: object out of range at line %zu", line_no));
    trace.entries.push_back(entry);
  }
  DRSM_CHECK(have_clients && have_objects, "trace: incomplete preamble");
  return trace;
}

OperationTrace load_trace_file(const std::string& path) {
  std::ifstream in(path);
  DRSM_CHECK(in.good(), "cannot open trace file: " + path);
  return load_trace(in);
}

}  // namespace drsm::workload
