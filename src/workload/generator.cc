#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace drsm::workload {

using fsm::OpKind;

OperationTrace::Estimate OperationTrace::estimate_parameters() const {
  Estimate est;
  if (entries.empty()) return est;
  est.node_read_share.assign(num_clients + 1, 0.0);
  est.node_write_share.assign(num_clients + 1, 0.0);
  std::size_t writes = 0;
  for (const TraceEntry& e : entries) {
    DRSM_CHECK(e.node <= num_clients, "trace entry node out of range");
    if (e.op == OpKind::kWrite) {
      ++writes;
      est.node_write_share[e.node] += 1.0;
    } else if (e.op == OpKind::kRead) {
      est.node_read_share[e.node] += 1.0;
    }
  }
  const double total = static_cast<double>(entries.size());
  est.write_probability = static_cast<double>(writes) / total;
  for (double& v : est.node_read_share) v /= total;
  for (double& v : est.node_write_share) v /= total;
  return est;
}

std::vector<double> zipf_weights(std::size_t m, double s) {
  DRSM_CHECK(m >= 1, "zipf_weights: need at least one object");
  DRSM_CHECK(s >= 0.0, "zipf_weights: exponent must be non-negative");
  std::vector<double> weights(m);
  for (std::size_t j = 0; j < m; ++j)
    weights[j] = 1.0 / std::pow(static_cast<double>(j + 1), s);
  return weights;
}

GlobalSequenceGenerator::GlobalSequenceGenerator(
    const WorkloadSpec& spec, std::uint64_t seed, std::size_t num_objects,
    std::vector<double> object_weights)
    : spec_(spec),
      sampler_(spec.probabilities()),
      rng_(seed),
      num_objects_(num_objects) {
  spec_.validate();
  DRSM_CHECK(num_objects_ >= 1, "need at least one object");
  if (!object_weights.empty()) {
    DRSM_CHECK(object_weights.size() == num_objects_,
               "object weights must match the object count");
    object_sampler_.emplace(object_weights);
  }
}

ObjectId GlobalSequenceGenerator::sample_object() {
  if (object_sampler_.has_value())
    return static_cast<ObjectId>(object_sampler_->sample(rng_));
  return num_objects_ == 1
             ? 0
             : static_cast<ObjectId>(rng_.uniform_index(num_objects_));
}

TraceEntry GlobalSequenceGenerator::next() {
  const EventSpec& event = spec_.events[sampler_.sample(rng_)];
  TraceEntry entry;
  entry.node = event.node;
  entry.op = event.op;
  entry.object = sample_object();
  return entry;
}

OperationTrace GlobalSequenceGenerator::record(std::size_t count,
                                               std::size_t num_clients) {
  OperationTrace trace;
  trace.num_clients = num_clients;
  trace.num_objects = num_objects_;
  trace.entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) trace.entries.push_back(next());
  return trace;
}

ConcurrentDriver::ConcurrentDriver(const WorkloadSpec& spec,
                                   std::uint64_t seed,
                                   std::size_t num_objects,
                                   double mean_think_time,
                                   std::vector<double> object_weights)
    : rng_(seed),
      num_objects_(num_objects),
      mean_think_time_(mean_think_time) {
  spec.validate();
  DRSM_CHECK(mean_think_time_ > 0.0, "mean think time must be positive");
  if (!object_weights.empty()) {
    DRSM_CHECK(object_weights.size() == num_objects_,
               "object weights must match the object count");
    object_sampler_.emplace(object_weights);
  }
  NodeId max_node = 0;
  for (const EventSpec& e : spec.events) max_node = std::max(max_node, e.node);
  mix_.resize(max_node + 1);
  std::vector<double> write_prob(max_node + 1, 0.0);
  std::vector<double> total_prob(max_node + 1, 0.0);
  for (const EventSpec& e : spec.events) {
    total_prob[e.node] += e.probability;
    if (e.op == OpKind::kWrite) write_prob[e.node] += e.probability;
  }
  for (NodeId n = 0; n <= max_node; ++n) {
    if (total_prob[n] <= 0.0) continue;
    mix_[n].issues = true;
    mix_[n].write_fraction = write_prob[n] / total_prob[n];
    mix_[n].rate = total_prob[n] / mean_think_time_;
  }
  if (!object_sampler_.has_value() && num_objects_ > 1)
    object_threshold_ = (~std::uint64_t{num_objects_} + 1) % num_objects_;
}

std::optional<sim::WorkloadDriver::Op> ConcurrentDriver::next_op(NodeId node) {
  if (node >= mix_.size() || !mix_[node].issues) return std::nullopt;
  Op op;
  op.kind = rng_.bernoulli(mix_[node].write_fraction) ? OpKind::kWrite
                                                      : OpKind::kRead;
  if (object_sampler_.has_value()) {
    op.object = static_cast<ObjectId>(object_sampler_->sample(rng_));
  } else if (num_objects_ == 1) {
    op.object = 0;
  } else {
    // Rng::uniform_index(num_objects_) with the precomputed threshold.
    for (;;) {
      const std::uint64_t r = rng_();
      if (r >= object_threshold_) {
        op.object = static_cast<ObjectId>(r % num_objects_);
        break;
      }
    }
  }
  const double think = rng_.exponential(mix_[node].rate);
  op.think_time = static_cast<SimTime>(std::llround(std::ceil(think)));
  return op;
}

TraceReplayDriver::TraceReplayDriver(const OperationTrace& trace,
                                     SimTime think_time)
    : per_node_(trace.num_clients + 1),
      cursor_(trace.num_clients + 1, 0),
      think_time_(think_time) {
  for (const TraceEntry& e : trace.entries) {
    DRSM_CHECK(e.node <= trace.num_clients, "trace node out of range");
    per_node_[e.node].push_back(e);
  }
}

std::optional<sim::WorkloadDriver::Op> TraceReplayDriver::next_op(
    NodeId node) {
  if (node >= per_node_.size()) return std::nullopt;
  std::size_t& cur = cursor_[node];
  if (cur >= per_node_[node].size()) return std::nullopt;
  const TraceEntry& e = per_node_[node][cur++];
  Op op;
  op.object = e.object;
  op.kind = e.op;
  op.think_time = think_time_;
  return op;
}

}  // namespace drsm::workload
