// The Mealy-machine protocol-process interface (Section 3 of the paper).
//
// A protocol process controls one copy of one shared object at one node.
// It consumes messages (application requests from the local queue, protocol
// messages from the distributed queue) and reacts by sending messages,
// returning data to the application, and enabling/disabling its local
// queue.  The *runtime* (either the sequential AtomicExecutor used by the
// analytic engine, or the discrete-event simulator) owns delivery, cost
// accounting and queue mechanics; machines only express protocol logic.
#pragma once

#include <cstdint>
#include <memory>
#include <initializer_list>
#include <vector>

#include "fsm/token.h"
#include "support/types.h"

namespace drsm::fsm {

/// Runtime services available to a protocol process while it handles one
/// message.  All sends are charged to the current operation's trace.
///
/// Threading contract: a machine and the context it is handed are confined
/// to one thread at a time.  Every runtime in the repo honors this by
/// construction — the sequential/event runtimes are single-threaded, the
/// threaded runtime gives each node's machines to that node's thread, and
/// the sharded concurrent runtime confines each object's machine set to
/// its shard's event-loop thread.  Implementations of this interface that
/// are shared across threads (e.g. ThreadedCtx) must make their own
/// members safe; the machine itself never needs internal synchronization.
class MachineContext {
 public:
  virtual ~MachineContext() = default;

  /// This node's index.  Clients are 0..N-1; the home/sequencer node is N
  /// (the paper's node N+1).
  virtual NodeId self() const = 0;

  /// N: the number of client nodes.
  virtual std::size_t num_clients() const = 0;

  /// The distinguished node whose protocol process is the initial sequencer.
  NodeId home() const { return static_cast<NodeId>(num_clients()); }

  /// N+1 in the paper's terms.
  std::size_t num_nodes() const { return num_clients() + 1; }

  virtual const CostModel& costs() const = 0;

  /// Sends one message to `dest`'s distributed queue.  Inter-node sends are
  /// charged message_cost(token.params); a send to self is free (local
  /// action).
  virtual void send(NodeId dest, Message msg) = 0;

  /// The paper's push(except(list), ...): send to every node whose index is
  /// not in `excluded`.  The caller includes itself in the list.  Takes an
  /// initializer_list — the exclusion sets are tiny brace-lists at every
  /// call site, and a braced std::vector argument would heap-allocate on
  /// each broadcast of the simulator's hot path.
  virtual void send_except(std::initializer_list<NodeId> excluded,
                           Message msg) = 0;

  /// Returns read data to the local application process (the paper's
  /// return(parameters_r, user_information) routine).
  virtual void return_read(std::uint64_t value, std::uint64_t version) = 0;

  /// Signals that the local application's pending write has finished (for
  /// fire-and-forget writes version may be 0 = not yet sequenced).
  virtual void complete_write(std::uint64_t version) = 0;

  /// Completion of an eject/sync extension operation.
  virtual void complete_op() = 0;

  /// Disable/enable the local queue (paper Section 2: a distributed
  /// operation awaiting a sequencer response blocks further local requests).
  virtual void disable_local_queue() = 0;
  virtual void enable_local_queue() = 0;

  /// Draws the next global write sequence number.  Must only be called at
  /// the point that serializes writes for this object (the sequencer or the
  /// current owner), so that version order equals the sequenced write order.
  virtual std::uint64_t next_version() = 0;

  /// Reports that a write's value has been bound to its sequence number —
  /// the serialization point of the write.  Machines call this wherever
  /// they apply a (value, version) pair that defines the sequenced content
  /// of the object; duplicate reports of the same pair are fine (e.g. both
  /// the writer and the sequencer may report a two-phase write).  The
  /// default is a no-op; the coherence oracle and model checker override
  /// it to build the serialized write log they validate reads against.
  virtual void commit_write(std::uint64_t version, std::uint64_t value) {
    (void)version;
    (void)value;
  }
};

/// A protocol process.  Implementations are deterministic: the same message
/// in the same state always produces the same actions (Mealy semantics).
class ProtocolMachine {
 public:
  virtual ~ProtocolMachine() = default;

  /// Handles one dequeued message.
  virtual void on_message(MachineContext& ctx, const Message& msg) = 0;

  virtual std::unique_ptr<ProtocolMachine> clone() const = 0;

  /// Appends this machine's protocol-relevant state (copy state plus any
  /// auxiliary fields that influence future behaviour, e.g. the believed
  /// owner).  Data values/versions are deliberately excluded: the analytic
  /// engine keys its Markov states on this encoding.
  virtual void encode(std::vector<std::uint8_t>& out) const = 0;

  /// Inverse of encode(): restores the protocol-relevant state from the
  /// bytes at `p` (bounded by `end`), advancing `p` past what it consumed.
  /// Keys are produced only at quiescence, so implementations also clear
  /// any transient fields (pending operations, deferred queues).  Data
  /// values/versions are not part of the encoding and stay stale — by the
  /// same argument that lets encode() omit them, they cannot influence
  /// future traces.  Returns false when the machine does not support
  /// restoration (the default); the machine state is then unspecified and
  /// the caller must discard the runtime.  The analytic enumerator uses
  /// this to re-materialize Markov states from their keys instead of
  /// deep-copying whole runtimes per transition.
  virtual bool decode(const std::uint8_t*& p, const std::uint8_t* end) {
    (void)p;
    (void)end;
    return false;
  }

  /// Total-state encoding: like encode(), but defined in *every* state,
  /// including mid-flight (non-quiescent) ones, and covering the transient
  /// fields encode() may omit (pending operations, deferred queues, recall
  /// bookkeeping).  The model checker keys its explored global states on
  /// this, so two machines with equal encodings must behave identically on
  /// every future input.  Data values/versions stay excluded by the same
  /// argument as in encode().  Defaults to encode() for machines with no
  /// transient state.
  virtual void encode_full(std::vector<std::uint8_t>& out) const {
    encode(out);
  }

  /// Role-aware variant of encode_full() for the model checker's symmetry
  /// reduction: appends exactly the bytes encode_full() would, but with
  /// every NodeId embedded in the machine state (believed owners, per-node
  /// bitsets, buffered-token initiators) relabeled through `map`.  `map`
  /// has `num_clients` entries sending client id i to map[i]; the home
  /// node (id == num_clients) and kNoNode are fixed points and must be
  /// passed through unchanged.  Two machines whose relabeled encodings
  /// agree under the same map must behave identically when the whole
  /// system (peers, channels, in-flight messages) is relabeled the same
  /// way — this is what lets the checker collapse permutation-equivalent
  /// global states to one canonical representative.  Returns false when
  /// the machine does not support relabeling (the default); the checker
  /// then disables symmetry reduction for the run.
  virtual bool encode_relabeled(std::vector<std::uint8_t>& out,
                                const NodeId* map,
                                std::size_t num_clients) const {
    (void)out;
    (void)map;
    (void)num_clients;
    return false;
  }

  /// Exact-snapshot codec, the pair the checker's compact frontier uses to
  /// re-materialize a machine from bytes instead of holding live clones.
  /// Unlike encode_full(), which deliberately omits data (values, versions,
  /// buffered message payloads) because data never selects a transition,
  /// encode_state() must capture *every* field: decode_state() on a
  /// freshly constructed machine followed by any message sequence must be
  /// indistinguishable from the original.  Defaults to encode_full() /
  /// unsupported — correct only for machines with no data fields at all
  /// (the hand-built test fragments); every real protocol overrides both.
  virtual void encode_state(std::vector<std::uint8_t>& out) const {
    encode_full(out);
  }

  /// Inverse of encode_state().  Returns false when unsupported (the
  /// default); the checker then falls back to cloning whole machines.
  virtual bool decode_state(const std::uint8_t*& p, const std::uint8_t* end) {
    (void)p;
    (void)end;
    return false;
  }

  /// True when the machine holds no in-flight transient state (no pending
  /// retries or buffered requests).  The analytic engine snapshots states
  /// only at quiescence and asserts this.
  virtual bool quiescent() const { return true; }

  /// Human-readable copy state, for traces and tests.
  virtual const char* state_name() const = 0;
};

}  // namespace drsm::fsm
