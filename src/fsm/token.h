// Message tokens: the paper's five-tuple
//   (type, operation-initiator, object-name, queue, parameter-presence)
// plus the payload that travels with a token, and the communication cost
// model of Section 4.1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "support/error.h"
#include "support/types.h"

namespace drsm::fsm {

/// Message types.  The Write-Through protocol uses the first six (the
/// paper's R-REQ, W-REQ, R-PER, W-PER, R-GNT, W-INV); the remaining types
/// are needed by the other seven protocols and by the eject/sync
/// extensions.
enum class MsgType : std::uint8_t {
  kReadReq,    // R-REQ: application read request
  kWriteReq,   // W-REQ: application write request
  kReadPer,    // R-PER: read permission-asking
  kWritePer,   // W-PER: write permission-asking
  kReadGnt,    // R-GNT: read grant (carries user information)
  kWriteGnt,   // W-GNT: write grant (token or token+user information)
  kWriteData,  // write parameters transfer (second phase of WTV writes)
  kInval,      // W-INV: invalidation
  kUpdate,     // W-UPD: write-update broadcast (Dragon, Firefly)
  kRecallShared,  // ask a dirty owner to flush; owner keeps a shared copy
  kRecallInval,   // ask a dirty owner to flush; owner invalidates its copy
  kFlushData,  // dirty copy returned to the sequencer (carries user info)
  kFlushClean, // recall response when the owner's copy was not dirty
  kNack,       // retry indication (Synapse read/write to a dirty block)
  kAck,        // completion token (Firefly write acknowledgement)
  kOwnerXfer,  // ownership + data transfer (Berkeley)
  kEject,      // extension: drop the local replica
  kSyncReq,    // extension: barrier request
  kSyncAck,    // extension: barrier acknowledgement
};

const char* to_string(MsgType type);

/// Number of message types, for dense per-type arrays (message mixes).
inline constexpr std::size_t kNumMsgTypes =
    static_cast<std::size_t>(MsgType::kSyncAck) + 1;

/// Which queue a message is (to be) delivered to.
enum class QueueKind : std::uint8_t {
  kLocal,        // requests from the node's own application process
  kDistributed,  // messages from other protocol processes
};

/// The paper's parameter-presence mark; determines the message cost.
enum class ParamPresence : std::uint8_t {
  kNone,         // '0': bare token                      -> cost 1
  kReadParams,   // 'r': read operation parameters       -> cost 1
  kWriteParams,  // 'w': write operation parameters      -> cost P+1
  kUserInfo,     // 'ui': full user-information part     -> cost S+1
};

const char* to_string(ParamPresence params);

/// The paper's message token five-tuple.
struct Token {
  MsgType type = MsgType::kReadReq;
  NodeId initiator = 0;
  ObjectId object = 0;
  QueueKind queue = QueueKind::kDistributed;
  ParamPresence params = ParamPresence::kNone;

  bool operator==(const Token&) const = default;
};

/// A token plus the additional parameters riding in the queue behind it.
/// User information is modelled as a single value plus a version number (the
/// global write sequence number) so coherence can be checked end to end.
struct Message {
  Token token;
  std::uint64_t value = 0;    // write parameters or user-information content
  std::uint64_t version = 0;  // write sequence number of `value`
  std::uint32_t hops = 0;     // forwarding count (ownership races)
  NodeId sender = kNoNode;    // filled in by the runtime on send()
  // Causal span id of the application operation this message serves,
  // stamped by the runtime on send(): a message sent while handling
  // another message inherits that message's span, so grants,
  // invalidations, recalls and NACK retries all trace back to the
  // operation that triggered them.  0 = no causal context.
  std::uint64_t span = 0;

  std::string debug_string() const;
};

/// Communication cost model of Section 4.1.  S is the cost of transferring
/// the user-information part of a copy, P the cost of transferring write
/// operation parameters; a bare token costs one unit.
struct CostModel {
  double s = 100.0;
  double p = 30.0;

  Cost message_cost(ParamPresence params) const {
    switch (params) {
      case ParamPresence::kNone:
      case ParamPresence::kReadParams:
        return 1.0;
      case ParamPresence::kWriteParams:
        return p + 1.0;
      case ParamPresence::kUserInfo:
        return s + 1.0;
    }
    DRSM_CHECK(false, "unreachable");
    return 0.0;
  }
};

/// Application-level operation kinds.  Read and Write are the paper's
/// operations; Eject and Sync are the extensions its conclusion proposes.
enum class OpKind : std::uint8_t { kRead, kWrite, kEject, kSync };

const char* to_string(OpKind op);

}  // namespace drsm::fsm
